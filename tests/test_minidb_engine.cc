// Engine basics: DDL/DML/SELECT semantics, constraints, joins, coverage.
#include <memory>

#include "src/minidb/database.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

std::unique_ptr<CreateTableStmt> SimpleTable(const std::string& name,
                                             const std::string& col,
                                             Affinity affinity) {
  auto ct = std::make_unique<CreateTableStmt>();
  ct->table_name = name;
  ColumnDef def;
  def.name = col;
  def.affinity = affinity;
  def.declared_type = affinity == Affinity::kInteger
                          ? "INT"
                          : (affinity == Affinity::kReal ? "REAL" : "TEXT");
  ct->columns.push_back(def);
  return ct;
}

void InsertInt(minidb::Database* db, const std::string& table, int64_t v) {
  InsertStmt ins;
  ins.table_name = table;
  ins.rows.emplace_back();
  ins.rows.back().push_back(MakeIntLiteral(v));
  CHECK(db->Execute(ins).ok());
}

void TestBasicScan() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*SimpleTable("t0", "c0", Affinity::kInteger)).ok());
  for (int64_t v : {1, 2, 3}) InsertInt(&db, "t0", v);
  SelectStmt select;
  select.from_tables = {"t0"};
  StatementResult result = db.Execute(select);
  CHECK(result.ok());
  CHECK_EQ(result.rows.size(), static_cast<size_t>(3));
  select.where = MakeBinary(BinaryOp::kGt, MakeColumnRef("t0", "c0"),
                            MakeIntLiteral(1));
  result = db.Execute(select);
  CHECK(result.ok());
  CHECK_EQ(result.rows.size(), static_cast<size_t>(2));
}

void TestUniqueConstraint() {
  minidb::Database db(Dialect::kSqliteFlex);
  auto ct = SimpleTable("t0", "c0", Affinity::kInteger);
  ct->columns[0].unique = true;
  CHECK(db.Execute(*ct).ok());
  InsertInt(&db, "t0", 5);
  InsertStmt dup;
  dup.table_name = "t0";
  dup.rows.emplace_back();
  dup.rows.back().push_back(MakeIntLiteral(5));
  StatementResult r = db.Execute(dup);
  CHECK(r.status == StatementStatus::kConstraintViolation);
  // NULLs never collide under UNIQUE.
  InsertStmt null_row;
  null_row.table_name = "t0";
  for (int i = 0; i < 2; ++i) {
    null_row.rows.emplace_back();
    null_row.rows.back().push_back(MakeNullLiteral());
  }
  CHECK(db.Execute(null_row).ok());
}

void TestMultiRowAbort() {
  minidb::Database db(Dialect::kSqliteFlex);
  auto ct = SimpleTable("t0", "c0", Affinity::kInteger);
  ct->columns[0].unique = true;
  CHECK(db.Execute(*ct).ok());
  // Second row collides with the first within the same statement: the whole
  // statement must be rolled back.
  InsertStmt ins;
  ins.table_name = "t0";
  for (int i = 0; i < 2; ++i) {
    ins.rows.emplace_back();
    ins.rows.back().push_back(MakeIntLiteral(7));
  }
  CHECK(db.Execute(ins).status == StatementStatus::kConstraintViolation);
  SelectStmt select;
  select.from_tables = {"t0"};
  CHECK_EQ(db.Execute(select).rows.size(), static_cast<size_t>(0));
}

void TestJoin() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*SimpleTable("t0", "c0", Affinity::kInteger)).ok());
  CHECK(db.Execute(*SimpleTable("t1", "c1", Affinity::kInteger)).ok());
  for (int64_t v : {1, 2}) InsertInt(&db, "t0", v);
  for (int64_t v : {10, 20, 30}) InsertInt(&db, "t1", v);
  SelectStmt select;
  select.from_tables = {"t0", "t1"};
  StatementResult result = db.Execute(select);
  CHECK(result.ok());
  CHECK_EQ(result.rows.size(), static_cast<size_t>(6));  // cross product
  CHECK_EQ(result.rows[0].size(), static_cast<size_t>(2));
}

void TestCoverage() {
  minidb::CoverageMap map;
  minidb::Database db(Dialect::kSqliteFlex);
  {
    minidb::CoverageSession session(&db, &map);
    CHECK(db.Execute(*SimpleTable("t0", "c0", Affinity::kInteger)).ok());
    InsertInt(&db, "t0", 1);
    SelectStmt select;
    select.from_tables = {"t0"};
    select.where = MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "c0"),
                              MakeIntLiteral(1));
    CHECK(db.Execute(select).ok());
  }
  CHECK(db.coverage_sink() == nullptr);  // session restored the sink
  CHECK(map.Hits(minidb::Feature::kCreateTable) == 1);
  CHECK(map.Hits(minidb::Feature::kSelectWhere) == 1);
  CHECK(map.Hits(minidb::Feature::kExprComparison) >= 1);
  CHECK(map.CoveredFeatures() > 5);
  CHECK(map.CoveredFeatures() < minidb::kNumFeatures);
}

}  // namespace
}  // namespace pqs

int main() {
  pqs::TestBasicScan();
  pqs::TestUniqueConstraint();
  pqs::TestMultiRowAbort();
  pqs::TestJoin();
  pqs::TestCoverage();
  return pqs::test::Summary("test_minidb_engine");
}
