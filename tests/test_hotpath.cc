// Hot-path substrate tests (DESIGN §11): the bytecode evaluator must be
// value-identical to the tree evaluator over a generated expression corpus
// in every dialect, the arena and node pool must actually recycle memory
// across reset/churn cycles, and the interner must round-trip symbols.
//
// The differential corpus is the safety argument for compiling WHERE /
// ORDER BY / aggregate expressions in the scan hot path: CompiledExpr::Run
// shares the tree evaluator's semantic kernels, so any drift here is a
// compiler bug, never a semantics fork. Run with `--workers N` (the TSan CI
// job uses 4) to drive the thread-local NodePool caches and the interner's
// global table from concurrent compile/eval threads.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/arena.h"
#include "src/common/interner.h"
#include "src/common/rng.h"
#include "src/interp/bytecode.h"
#include "src/interp/eval.h"
#include "src/pqs/generator.h"
#include "src/sqlast/ast.h"
#include "src/sqlparser/render.h"
#include "src/sqlvalue/value.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

struct DtorLogger {
  std::vector<int>* log;
  int id;
  DtorLogger(std::vector<int>* l, int i) : log(l), id(i) {}
  ~DtorLogger() { log->push_back(id); }
};

void TestArenaAlignmentAndNew() {
  Arena arena(1024);
  void* p = arena.Alloc(1, 64);
  CHECK_EQ(reinterpret_cast<uintptr_t>(p) % 64, uintptr_t{0});
  int* n = arena.New<int>(41);
  *n += 1;
  CHECK_EQ(*n, 42);
  // Small arena, large request: the arena must still serve it (oversized
  // dedicated block) without corrupting later small allocations.
  void* big = arena.Alloc(4096);
  std::memset(big, 0xab, 4096);
  int* after = arena.New<int>(7);
  CHECK_EQ(*after, 7);
}

void TestArenaResetReuse() {
  Arena arena(1024);
  auto fill = [&arena]() {
    for (int i = 0; i < 100; ++i) {
      int* p = static_cast<int*>(arena.Alloc(64));
      *p = i;
    }
  };
  fill();
  size_t blocks = arena.block_count();
  size_t reserved = arena.bytes_reserved();
  CHECK(blocks > 1);  // 100 * 64 bytes cannot fit one 1 KiB block
  // Reset + identical refill must be served entirely from recycled blocks:
  // no growth in block count or reserved bytes, ever.
  for (int cycle = 0; cycle < 5; ++cycle) {
    arena.Reset();
    CHECK_EQ(arena.bytes_used(), size_t{0});
    fill();
    CHECK_EQ(arena.block_count(), blocks);
    CHECK_EQ(arena.bytes_reserved(), reserved);
  }
}

void TestArenaOwnedDestructors() {
  std::vector<int> log;
  {
    Arena arena(1024);
    for (int i = 0; i < 4; ++i) arena.NewOwned<DtorLogger>(&log, i);
    CHECK_EQ(log.size(), size_t{0});  // nothing destroyed while live
    arena.Reset();
    // Destroyed exactly once each, in reverse construction (LIFO) order.
    CHECK_EQ(log.size(), size_t{4});
    std::vector<int> expect = {3, 2, 1, 0};
    CHECK(log == expect);
    log.clear();
    arena.NewOwned<DtorLogger>(&log, 9);
  }  // arena destruction also runs owned destructors
  CHECK_EQ(log.size(), size_t{1});
  CHECK_EQ(log[0], 9);
}

// ---------------------------------------------------------------------------
// NodePool (via Expr::operator new/delete)
// ---------------------------------------------------------------------------

void TestNodePoolRecycles() {
  // Warm up: push the pool past one slab's worth of live Expr nodes, then
  // free them all back to the thread cache.
  std::vector<Expr*> live;
  live.reserve(300);
  for (int i = 0; i < 300; ++i) {
    Expr* e = new Expr();
    e->kind = ExprKind::kLiteral;
    e->literal = SqlValue::Int(i);
    live.push_back(e);
  }
  for (Expr* e : live) delete e;
  live.clear();
  CHECK(NodePool::SlabsAllocated() > 0);
  CHECK(NodePool::ThreadCacheSize() > 0);

  // Steady-state churn at the warmed-up live count must be served entirely
  // from recycled slots: the slab count may never grow again.
  size_t slabs = NodePool::SlabsAllocated();
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 300; ++i) live.push_back(new Expr());
    for (Expr* e : live) delete e;
    live.clear();
  }
  CHECK_EQ(NodePool::SlabsAllocated(), slabs);
}

// ---------------------------------------------------------------------------
// Interner
// ---------------------------------------------------------------------------

void TestInternerRoundTrip() {
  size_t size_before = Interner::Size();
  int32_t a = Interner::Intern("hotpath_tbl");
  int32_t b = Interner::Intern("hotpath_col");
  CHECK(a != b);
  CHECK(a != Interner::kInvalidSymbol);
  CHECK_EQ(Interner::Intern("hotpath_tbl"), a);  // stable across calls
  CHECK_EQ(Interner::Name(a), std::string("hotpath_tbl"));
  CHECK_EQ(Interner::Name(b), std::string("hotpath_col"));
  CHECK_EQ(Interner::Name(Interner::kInvalidSymbol), std::string());
  CHECK_EQ(Interner::Name(1 << 30), std::string());
  CHECK(Interner::Size() >= size_before + 2);
}

// ---------------------------------------------------------------------------
// Bytecode-vs-tree differential
// ---------------------------------------------------------------------------

// Strict result identity: same error/value outcome, same storage class,
// exact payload (NaN == NaN so a shared-NaN pair is not a mismatch).
bool SameResult(const EvalResult& a, const EvalResult& b) {
  if (a.error != b.error) return false;
  if (a.error) return a.message == b.message;
  if (a.value.cls != b.value.cls) return false;
  switch (a.value.cls) {
    case StorageClass::kNull:
      return true;
    case StorageClass::kInteger:
      return a.value.i == b.value.i;
    case StorageClass::kReal:
      return a.value.r == b.value.r ||
             (a.value.r != a.value.r && b.value.r != b.value.r);
    case StorageClass::kText:
      return a.value.t == b.value.t;
  }
  return false;
}

// Random cell for `affinity`: mostly affinity-correct (plus NULLs), with a
// small cross-class minority so the comparison kernels' coercion paths run
// under the differential too. Text draws from a tiny alphabet that includes
// LIKE wildcards and the generator's escape character.
SqlValue RandomCell(Affinity affinity, Rng* rng) {
  if (rng->Chance(0.22)) return SqlValue::Null();
  if (rng->Chance(0.1)) affinity = rng->Pick({Affinity::kInteger,
                                              Affinity::kReal,
                                              Affinity::kText});
  switch (affinity) {
    case Affinity::kInteger:
      return SqlValue::Int(rng->IntIn(-6, 18));
    case Affinity::kReal:
      return SqlValue::Real(static_cast<double>(rng->IntIn(-40, 40)) / 4.0);
    case Affinity::kText: {
      static const char kAlphabet[] = "abAB%_!3";
      std::string s;
      for (int64_t n = rng->IntIn(0, 4); n > 0; --n) {
        s.push_back(kAlphabet[rng->Below(sizeof kAlphabet - 1)]);
      }
      return SqlValue::Text(s);
    }
  }
  return SqlValue::Null();
}

struct DiffTally {
  uint64_t exprs = 0;
  uint64_t evals = 0;
  uint64_t compiled_valid = 0;
  uint64_t mismatches = 0;
};

// One worker's slice of the corpus for one dialect: `seeds` generated
// schemas, `preds_per_seed` predicates each, every predicate evaluated on
// several rows (including an all-NULL row) by both evaluators.
DiffTally RunDifferentialSlice(Dialect dialect, uint64_t seed_lo,
                               uint64_t seed_hi, int preds_per_seed) {
  GeneratorOptions gopts;
  // Crank the typed-expression features so the corpus is dense in the
  // constructs the compiler special-cases: functions (kFunc), CAST, CASE /
  // IN / LIKE ESCAPE (kTreeEval fallbacks), and collations.
  gopts.max_predicate_depth = 4;
  gopts.function_probability = 0.5;
  gopts.cast_probability = 0.35;
  gopts.case_probability = 0.25;
  gopts.collate_probability = 0.5;
  gopts.like_escape_probability = 0.5;
  gopts.in_list_null_probability = 0.4;
  Generator gen(gopts, dialect);
  EvalContext ctx;
  ctx.dialect = dialect;

  DiffTally tally;
  for (uint64_t seed = seed_lo; seed < seed_hi; ++seed) {
    Rng rng(Rng::StreamSeed(0x407b47c5ull,
                            seed * 3 + static_cast<uint64_t>(dialect)));
    DatabasePlan plan = gen.GenerateDatabase(&rng);
    std::vector<const TableSchema*> tables;
    RowSchema schema;
    for (const TableSchema& t : plan.tables) {
      tables.push_back(&t);
      for (const ColumnDef& c : t.columns) schema.Add(t.name, c.name);
    }

    // A handful of rows per schema: random cells plus one all-NULL row.
    std::vector<std::vector<SqlValue>> rows;
    for (int r = 0; r < 3; ++r) {
      std::vector<SqlValue> row;
      for (const TableSchema* t : tables) {
        for (const ColumnDef& c : t->columns) {
          row.push_back(RandomCell(c.affinity, &rng));
        }
      }
      rows.push_back(std::move(row));
    }
    rows.emplace_back(schema.cols.size());  // all-NULL row

    for (int p = 0; p < preds_per_seed; ++p) {
      ExprPtr expr = gen.GeneratePredicate(tables, &rng);
      CompiledExpr code = CompileExpr(*expr, schema, dialect);
      ++tally.exprs;
      if (code.valid()) ++tally.compiled_valid;
      for (const std::vector<SqlValue>& row : rows) {
        RowView view{&schema, &row};
        EvalResult tree = Evaluate(*expr, view, ctx);
        EvalResult compiled = code.Run(view, ctx);
        ++tally.evals;
        if (!SameResult(tree, compiled)) {
          ++tally.mismatches;
          if (tally.mismatches <= 5) {
            std::printf("  mismatch [%s] %s\n    tree: %s%s  bytecode: %s%s\n",
                        DialectName(dialect),
                        RenderExpr(*expr, dialect).c_str(),
                        tree.error ? tree.message.c_str()
                                   : tree.value.ToSqlLiteral().c_str(),
                        tree.error ? " (error)" : "",
                        compiled.error ? compiled.message.c_str()
                                       : compiled.value.ToSqlLiteral().c_str(),
                        compiled.error ? " (error)" : "");
          }
        }
      }
    }
  }
  return tally;
}

void TestBytecodeTreeDifferential(int workers) {
  constexpr uint64_t kSeeds = 250;  // per dialect
  constexpr int kPredsPerSeed = 20;  // 250 * 20 = 5000 exprs per dialect
  const Dialect dialects[] = {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                              Dialect::kPostgresStrict};
  for (Dialect dialect : dialects) {
    std::vector<DiffTally> tallies(static_cast<size_t>(workers));
    std::vector<std::thread> threads;
    uint64_t per = (kSeeds + workers - 1) / workers;
    for (int w = 0; w < workers; ++w) {
      uint64_t lo = static_cast<uint64_t>(w) * per;
      uint64_t hi = lo + per < kSeeds ? lo + per : kSeeds;
      if (lo >= hi) break;
      threads.emplace_back([&tallies, w, dialect, lo, hi]() {
        tallies[static_cast<size_t>(w)] =
            RunDifferentialSlice(dialect, lo, hi, kPredsPerSeed);
      });
    }
    for (std::thread& t : threads) t.join();
    DiffTally total;
    for (const DiffTally& t : tallies) {
      total.exprs += t.exprs;
      total.evals += t.evals;
      total.compiled_valid += t.compiled_valid;
      total.mismatches += t.mismatches;
    }
    std::printf(
        "  differential [%s]: %llu exprs, %llu evals, %llu compiled "
        "(%.1f%%), %llu mismatches\n",
        DialectName(dialect), (unsigned long long)total.exprs,
        (unsigned long long)total.evals,
        (unsigned long long)total.compiled_valid,
        100.0 * static_cast<double>(total.compiled_valid) /
            static_cast<double>(total.exprs),
        (unsigned long long)total.mismatches);
    CHECK_EQ(total.exprs, kSeeds * kPredsPerSeed);
    CHECK_EQ(total.mismatches, uint64_t{0});
    // The compiler must actually engage on generated predicates — if the
    // valid fraction collapses, the "bytecode hot path" is silently the
    // tree path and the perf substrate is fiction.
    CHECK(total.compiled_valid * 10 >= total.exprs * 9);
  }
}

// The kill switch must actually force the tree path so the determinism
// test's bytecode-off campaign exercises what it claims to.
void TestBytecodeKillSwitch() {
  CHECK(BytecodeEnabled());
  SetBytecodeEnabled(false);
  CHECK(!BytecodeEnabled());
  SetBytecodeEnabled(true);
  CHECK(BytecodeEnabled());
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  int workers = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[i + 1]);
      if (workers < 1) workers = 1;
    }
  }
  pqs::TestArenaAlignmentAndNew();
  pqs::TestArenaResetReuse();
  pqs::TestArenaOwnedDestructors();
  pqs::TestNodePoolRecycles();
  pqs::TestInternerRoundTrip();
  pqs::TestBytecodeKillSwitch();
  pqs::TestBytecodeTreeDifferential(workers);
  return pqs::test::Summary("test_hotpath");
}
