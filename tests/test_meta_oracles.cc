// PR-6 metamorphic oracle subsystem: NoREC/TLP transform units per dialect,
// TLP plan classification and rejections, the shared grouping/aggregation
// core's engine-level semantics, direct hooks for the six aggregation-
// pipeline bug classes, oracle-level verdicts, default-budget campaign
// detection (every new bug must fall to its intended TLP finder), a
// partition-equivalence property on clean engines, N-worker determinism of
// the new per-oracle RunStats counters, and an always-on differential sweep
// of >= 10k generated aggregate queries against real sqlite3.
//
// Accepts `--workers N` (the CI ThreadSanitizer job passes 4); every
// property is worker-count-invariant.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/interp/eval.h"
#include "src/minidb/bug_registry.h"
#include "src/minidb/database.h"
#include "src/pqs/campaign.h"
#include "src/pqs/runner.h"
#include "src/sqlite3db/sqlite_connection.h"
#include "src/sqlmeta/oracle.h"
#include "src/sqlmeta/transform.h"
#include "src/sqlparser/render.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

int property_workers = 1;

const Dialect kAllDialects[] = {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                                Dialect::kPostgresStrict};

// ---------------------------------------------------------------------------
// Hand-built statement helpers
// ---------------------------------------------------------------------------

ColumnDef Column(const std::string& name, Affinity affinity) {
  ColumnDef def;
  def.name = name;
  def.affinity = affinity;
  def.declared_type = affinity == Affinity::kInteger
                          ? "INT"
                          : (affinity == Affinity::kReal ? "REAL" : "TEXT");
  return def;
}

void MakeTable(Connection* db, const std::string& name,
               std::vector<ColumnDef> columns) {
  CreateTableStmt ct;
  ct.table_name = name;
  ct.columns = std::move(columns);
  CHECK(db->Execute(ct).ok());
}

void InsertRow(Connection* db, const std::string& table,
               std::vector<ExprPtr> values) {
  InsertStmt ins;
  ins.table_name = table;
  ins.rows.push_back(std::move(values));
  CHECK(db->Execute(ins).ok());
}

std::vector<ExprPtr> Row1(ExprPtr a) {
  std::vector<ExprPtr> row;
  row.push_back(std::move(a));
  return row;
}

std::vector<ExprPtr> Row2(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> row;
  row.push_back(std::move(a));
  row.push_back(std::move(b));
  return row;
}

// `SELECT <items> FROM <table> [WHERE] [GROUP BY keys] [HAVING]`.
std::unique_ptr<SelectStmt> MakeSelect(const std::string& table,
                                       std::vector<ExprPtr> items,
                                       ExprPtr where = nullptr,
                                       std::vector<ExprPtr> group_by = {},
                                       ExprPtr having = nullptr) {
  auto q = std::make_unique<SelectStmt>();
  q->from_tables.push_back(table);
  q->select_list = std::move(items);
  q->where = std::move(where);
  q->group_by = std::move(group_by);
  q->having = std::move(having);
  return q;
}

ExprPtr CountStar() {
  ExprPtr e = MakeAggregate(AggFunc::kCount, nullptr, false);
  e->agg_star = true;
  return e;
}

// Executes a query that must succeed; returns its rows.
std::vector<std::vector<SqlValue>> Rows(Connection* db, const SelectStmt& q) {
  StatementResult r = db->Execute(q);
  CHECK_MSG(r.ok(), "query failed (%s): %s",
            RenderStmt(q, db->dialect()).c_str(), r.error.c_str());
  return r.rows;
}

// Asserts a 1x1 result equal to `want` (NULL compares to NULL).
void CellEquals(Connection* db, const SelectStmt& q, const SqlValue& want) {
  std::vector<std::vector<SqlValue>> rows = Rows(db, q);
  CHECK_EQ(rows.size(), static_cast<size_t>(1));
  if (rows.size() != 1 || rows[0].size() != 1) return;
  const SqlValue& got = rows[0][0];
  bool same = (want.is_null() && got.is_null()) ||
              (!want.is_null() && !got.is_null() && ValueEquals(got, want));
  CHECK_MSG(same, "%s: got %s, want %s", RenderStmt(q, db->dialect()).c_str(),
            got.ToDisplay().c_str(), want.ToDisplay().c_str());
}

// ---------------------------------------------------------------------------
// NoREC / TLP transforms (pure AST, checked through the renderer)
// ---------------------------------------------------------------------------

void TestNorecTransformUnits() {
  ExprPtr pred = MakeBinary(BinaryOp::kGt, MakeColumnRef("t0", "c0"),
                            MakeIntLiteral(2));
  auto optimized = sqlmeta::NorecOptimized("t0", *pred);
  auto unoptimized = sqlmeta::NorecUnoptimized("t0", *pred);

  CHECK(optimized->meta_rewrite);
  CHECK(unoptimized->meta_rewrite);
  CHECK(optimized->HasAggregates());
  CHECK(optimized->where != nullptr);
  CHECK(!unoptimized->HasAggregates());
  CHECK(unoptimized->where == nullptr);
  CHECK_EQ(unoptimized->select_list.size(), static_cast<size_t>(1));

  for (Dialect d : kAllDialects) {
    std::string opt_sql = RenderStmt(*optimized, d);
    CHECK_MSG(opt_sql.find("COUNT(*)") != std::string::npos, "%s",
              opt_sql.c_str());
    CHECK_MSG(opt_sql.find("WHERE") != std::string::npos, "%s",
              opt_sql.c_str());
    std::string unopt_sql = RenderStmt(*unoptimized, d);
    CHECK_MSG(unopt_sql.find("WHERE") == std::string::npos, "%s",
              unopt_sql.c_str());
    CHECK_MSG(unopt_sql.find("COUNT") == std::string::npos, "%s",
              unopt_sql.c_str());
    // The predicate itself must appear verbatim as the projection.
    CHECK_MSG(unopt_sql.find(RenderExpr(*pred, d)) != std::string::npos, "%s",
              unopt_sql.c_str());
  }
}

void TestTlpPartitionPredicates() {
  ExprPtr pred = MakeBinary(BinaryOp::kLe, MakeColumnRef("t0", "c0"),
                            MakeIntLiteral(0));
  std::vector<ExprPtr> parts = sqlmeta::TlpPartitionPredicates(*pred);
  CHECK_EQ(parts.size(), static_cast<size_t>(3));
  for (Dialect d : kAllDialects) {
    std::string p0 = RenderExpr(*parts[0], d);
    std::string p1 = RenderExpr(*parts[1], d);
    std::string p2 = RenderExpr(*parts[2], d);
    CHECK_EQ(p0, RenderExpr(*pred, d));
    CHECK_MSG(p1.find("NOT") != std::string::npos, "%s", p1.c_str());
    CHECK_MSG(p2.find("IS NULL") != std::string::npos, "%s", p2.c_str());
    // The IS NULL partition must cover the whole predicate, not a subterm.
    CHECK_MSG(p2.find(p0) != std::string::npos, "%s", p2.c_str());
  }
}

void TestTlpPlanShapes() {
  ExprPtr pred = MakeBinary(BinaryOp::kGe, MakeColumnRef("t0", "c0"),
                            MakeIntLiteral(1));
  std::string error;

  // Plain SELECT * → kRows: three WHERE'd clones of the full query.
  {
    auto q = MakeSelect("t0", {});
    sqlmeta::TlpPlan plan;
    CHECK_MSG(sqlmeta::BuildTlpPlan(*q, *pred, &plan, &error), "%s",
              error.c_str());
    CHECK(plan.shape == sqlmeta::TlpShape::kRows);
    CHECK_EQ(plan.partitions.size(), static_cast<size_t>(3));
    for (const auto& p : plan.partitions) {
      CHECK(p->meta_rewrite);
      CHECK(p->where != nullptr);
    }
    CHECK_EQ(std::string(sqlmeta::TlpShapeName(plan.shape)),
             std::string("rows"));
  }

  // Global aggregates → kAggregate; AVG decomposes into SUM + COUNT.
  {
    auto q = MakeSelect(
        "t0", Row2(MakeAggregate(AggFunc::kAvg, MakeColumnRef("t0", "c0"),
                                 false),
                   CountStar()));
    sqlmeta::TlpPlan plan;
    CHECK_MSG(sqlmeta::BuildTlpPlan(*q, *pred, &plan, &error), "%s",
              error.c_str());
    CHECK(plan.shape == sqlmeta::TlpShape::kAggregate);
    CHECK_EQ(plan.group_cols, 0);
    CHECK_EQ(plan.aggs.size(), static_cast<size_t>(2));
    CHECK(plan.aggs[0].count_index >= 0);  // AVG carries a COUNT partial
    CHECK(plan.aggs[1].count_index < 0);
    // Partition select lists hold the decomposed partials: SUM + COUNT for
    // the AVG, plus the COUNT(*) itself.
    CHECK_EQ(plan.partitions[0]->select_list.size(), static_cast<size_t>(3));
  }

  // COUNT(DISTINCT c) → kCountDistinct: partitions project DISTINCT c.
  {
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kCount, MakeColumnRef("t0", "c0"),
                                 /*distinct=*/true)));
    sqlmeta::TlpPlan plan;
    CHECK_MSG(sqlmeta::BuildTlpPlan(*q, *pred, &plan, &error), "%s",
              error.c_str());
    CHECK(plan.shape == sqlmeta::TlpShape::kCountDistinct);
    for (const auto& p : plan.partitions) {
      CHECK(p->distinct);
      CHECK(!p->HasAggregates());
    }
  }

  // GROUP BY + HAVING → kGroupBy: partitions keep the grouping but shed
  // the HAVING (the oracle re-applies it on recombined aggregates).
  {
    auto q = MakeSelect(
        "t0",
        Row2(MakeColumnRef("t0", "c1"),
             MakeAggregate(AggFunc::kSum, MakeColumnRef("t0", "c0"), false)),
        nullptr, Row1(MakeColumnRef("t0", "c1")),
        MakeBinary(BinaryOp::kGe, CountStar(), MakeIntLiteral(2)));
    sqlmeta::TlpPlan plan;
    CHECK_MSG(sqlmeta::BuildTlpPlan(*q, *pred, &plan, &error), "%s",
              error.c_str());
    CHECK(plan.shape == sqlmeta::TlpShape::kGroupBy);
    CHECK_EQ(plan.group_cols, 1);
    // SUM from the select list + the COUNT(*) discovered in HAVING.
    CHECK_EQ(plan.aggs.size(), static_cast<size_t>(2));
    for (const auto& p : plan.partitions) {
      CHECK_EQ(p->group_by.size(), static_cast<size_t>(1));
      CHECK(p->having == nullptr);
    }
  }
}

void TestTlpPlanRejections() {
  ExprPtr pred = MakeBinary(BinaryOp::kGe, MakeColumnRef("t0", "c0"),
                            MakeIntLiteral(1));
  std::string error;
  sqlmeta::TlpPlan plan;

  auto rejected = [&](std::unique_ptr<SelectStmt> q) {
    error.clear();
    bool ok = sqlmeta::BuildTlpPlan(*q, *pred, &plan, &error);
    CHECK(!ok);
    CHECK(!error.empty());
  };

  // Multi-table FROM.
  {
    auto q = MakeSelect("t0", {});
    q->from_tables.push_back("t1");
    rejected(std::move(q));
  }
  // DISTINCT.
  {
    auto q = MakeSelect("t0", {});
    q->distinct = true;
    rejected(std::move(q));
  }
  // ORDER BY (row order is not a multiset property).
  {
    auto q = MakeSelect("t0", {});
    q->order_by.emplace_back();
    q->order_by.back().expr = MakeColumnRef("t0", "c0");
    rejected(std::move(q));
  }
  // LIMIT.
  {
    auto q = MakeSelect("t0", {});
    q->limit = 3;
    rejected(std::move(q));
  }
  // A non-aggregate, non-group-key select item next to an aggregate: the
  // recombined output row cannot be reconstructed from the group key.
  rejected(MakeSelect(
      "t0", Row2(MakeIntLiteral(7),
                 MakeAggregate(AggFunc::kSum, MakeColumnRef("t0", "c0"),
                               false))));

  // An aggregate-free explicit projection is NOT rejected: it is the
  // plain kRows shape (partition the projected rows, union multisets).
  {
    auto q = MakeSelect("t0", Row1(MakeColumnRef("t0", "c0")));
    error.clear();
    CHECK_MSG(sqlmeta::BuildTlpPlan(*q, *pred, &plan, &error), "%s",
              error.c_str());
    CHECK(plan.shape == sqlmeta::TlpShape::kRows);
  }
}

// ---------------------------------------------------------------------------
// Shared grouping/aggregation core: engine-level semantics (clean engines)
// ---------------------------------------------------------------------------

void TestAggregateExecutionUnits() {
  minidb::Database db(Dialect::kSqliteFlex);
  MakeTable(&db, "t0", {Column("a", Affinity::kInteger),
                        Column("g", Affinity::kInteger)});

  auto agg_a = [](AggFunc f) {
    return MakeAggregate(f, MakeColumnRef("t0", "a"), false);
  };

  // Empty input: COUNT(*) is 0, the value aggregates are NULL.
  CellEquals(&db, *MakeSelect("t0", Row1(CountStar())), SqlValue::Int(0));
  CellEquals(&db, *MakeSelect("t0", Row1(agg_a(AggFunc::kSum))),
             SqlValue::Null());
  CellEquals(&db, *MakeSelect("t0", Row1(agg_a(AggFunc::kMin))),
             SqlValue::Null());

  InsertRow(&db, "t0", Row2(MakeIntLiteral(1), MakeIntLiteral(1)));
  InsertRow(&db, "t0", Row2(MakeIntLiteral(2), MakeIntLiteral(1)));
  InsertRow(&db, "t0", Row2(MakeNullLiteral(), MakeIntLiteral(2)));
  InsertRow(&db, "t0", Row2(MakeIntLiteral(1), MakeIntLiteral(2)));

  // NULLs: counted by COUNT(*), skipped by every value aggregate.
  CellEquals(&db, *MakeSelect("t0", Row1(CountStar())), SqlValue::Int(4));
  CellEquals(&db, *MakeSelect("t0", Row1(agg_a(AggFunc::kCount))),
             SqlValue::Int(3));
  CellEquals(&db, *MakeSelect("t0", Row1(agg_a(AggFunc::kSum))),
             SqlValue::Int(4));
  CellEquals(&db, *MakeSelect("t0", Row1(agg_a(AggFunc::kMin))),
             SqlValue::Int(1));
  CellEquals(&db, *MakeSelect("t0", Row1(agg_a(AggFunc::kMax))),
             SqlValue::Int(2));
  // All-integer AVG is still real division.
  CellEquals(&db, *MakeSelect("t0", Row1(agg_a(AggFunc::kAvg))),
             SqlValue::Real(4.0 / 3.0));
  // COUNT(DISTINCT a): {1, 2}, the NULL excluded.
  CellEquals(&db,
             *MakeSelect("t0", Row1(MakeAggregate(AggFunc::kCount,
                                                  MakeColumnRef("t0", "a"),
                                                  /*distinct=*/true))),
             SqlValue::Int(2));

  // GROUP BY with a NULL key: NULLs form one group (grouping equality,
  // not SQL `=`).
  MakeTable(&db, "t1", {Column("g", Affinity::kInteger),
                        Column("v", Affinity::kInteger)});
  InsertRow(&db, "t1", Row2(MakeIntLiteral(1), MakeIntLiteral(10)));
  InsertRow(&db, "t1", Row2(MakeIntLiteral(1), MakeIntLiteral(20)));
  InsertRow(&db, "t1", Row2(MakeNullLiteral(), MakeIntLiteral(5)));
  InsertRow(&db, "t1", Row2(MakeNullLiteral(), MakeIntLiteral(7)));
  {
    auto q = MakeSelect(
        "t1",
        Row2(MakeColumnRef("t1", "g"),
             MakeAggregate(AggFunc::kSum, MakeColumnRef("t1", "v"), false)),
        nullptr, Row1(MakeColumnRef("t1", "g")));
    std::vector<std::vector<SqlValue>> want;
    want.push_back({SqlValue::Int(1), SqlValue::Int(30)});
    want.push_back({SqlValue::Null(), SqlValue::Int(12)});
    CHECK(SameRowMultiset(Rows(&db, *q), want));
  }
  // HAVING filters whole groups on their true aggregates.
  {
    auto q = MakeSelect(
        "t1",
        Row2(MakeColumnRef("t1", "g"),
             MakeAggregate(AggFunc::kSum, MakeColumnRef("t1", "v"), false)),
        nullptr, Row1(MakeColumnRef("t1", "g")),
        MakeBinary(BinaryOp::kGe,
                   MakeAggregate(AggFunc::kSum, MakeColumnRef("t1", "v"),
                                 false),
                   MakeIntLiteral(20)));
    std::vector<std::vector<SqlValue>> want;
    want.push_back({SqlValue::Int(1), SqlValue::Int(30)});
    CHECK(SameRowMultiset(Rows(&db, *q), want));
  }

  // 1 and 1.0 collide under DISTINCT (storage-numeric equality).
  minidb::Database rdb(Dialect::kSqliteFlex);
  MakeTable(&rdb, "t0", {Column("r", Affinity::kReal)});
  InsertRow(&rdb, "t0", Row1(MakeRealLiteral(1.0)));
  InsertRow(&rdb, "t0", Row1(MakeIntLiteral(1)));
  InsertRow(&rdb, "t0", Row1(MakeRealLiteral(2.5)));
  CellEquals(&rdb,
             *MakeSelect("t0", Row1(MakeAggregate(AggFunc::kCount,
                                                  MakeColumnRef("t0", "r"),
                                                  /*distinct=*/true))),
             SqlValue::Int(2));

  // Strict dialect: SUM over a text column is a static type error.
  minidb::Database strict(Dialect::kPostgresStrict);
  MakeTable(&strict, "t0", {Column("s", Affinity::kText)});
  InsertRow(&strict, "t0", Row1(MakeTextLiteral("x")));
  {
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kSum, MakeColumnRef("t0", "s"),
                                 false)));
    StatementResult r = strict.Execute(*q);
    CHECK(!r.ok());
    CHECK_EQ(static_cast<int>(r.status),
             static_cast<int>(StatementStatus::kError));
  }
}

// ---------------------------------------------------------------------------
// The six injected aggregation-pipeline bugs, hooked directly
// ---------------------------------------------------------------------------

void TestAggregateBugHooksDirect() {
  // agg-empty-group-zero (sqlite): SUM/MIN/MAX over empty input → 0.
  {
    minidb::Database clean(Dialect::kSqliteFlex);
    minidb::Database buggy(Dialect::kSqliteFlex,
                           BugConfig::Single(BugId::kAggEmptyGroupZero));
    for (minidb::Database* db : {&clean, &buggy}) {
      MakeTable(db, "t0", {Column("a", Affinity::kInteger)});
    }
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kMin, MakeColumnRef("t0", "a"),
                                 false)));
    CellEquals(&clean, *q, SqlValue::Null());
    CellEquals(&buggy, *q, SqlValue::Int(0));
  }

  // sum-overflow-wrap (sqlite): integer SUM wraps once past 25.
  {
    minidb::Database clean(Dialect::kSqliteFlex);
    minidb::Database buggy(Dialect::kSqliteFlex,
                           BugConfig::Single(BugId::kSumOverflowWrap));
    for (minidb::Database* db : {&clean, &buggy}) {
      MakeTable(db, "t0", {Column("a", Affinity::kInteger)});
      for (int i = 0; i < 4; ++i) {
        InsertRow(db, "t0", Row1(MakeIntLiteral(9)));
      }
    }
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kSum, MakeColumnRef("t0", "a"),
                                 false)));
    CellEquals(&clean, *q, SqlValue::Int(36));
    CellEquals(&buggy, *q, SqlValue::Int(36 - 51));
  }

  // avg-integer-div (mysql): all-integer AVG truncates.
  {
    minidb::Database clean(Dialect::kMysqlLike);
    minidb::Database buggy(Dialect::kMysqlLike,
                           BugConfig::Single(BugId::kAvgIntegerDiv));
    for (minidb::Database* db : {&clean, &buggy}) {
      MakeTable(db, "t0", {Column("a", Affinity::kInteger)});
      InsertRow(db, "t0", Row1(MakeIntLiteral(1)));
      InsertRow(db, "t0", Row1(MakeIntLiteral(2)));
    }
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kAvg, MakeColumnRef("t0", "a"),
                                 false)));
    CellEquals(&clean, *q, SqlValue::Real(1.5));
    CellEquals(&buggy, *q, SqlValue::Int(1));
  }

  // count-distinct-dup (mysql): COUNT(DISTINCT) counts duplicates.
  {
    minidb::Database clean(Dialect::kMysqlLike);
    minidb::Database buggy(Dialect::kMysqlLike,
                           BugConfig::Single(BugId::kCountDistinctDup));
    for (minidb::Database* db : {&clean, &buggy}) {
      MakeTable(db, "t0", {Column("a", Affinity::kInteger)});
      InsertRow(db, "t0", Row1(MakeIntLiteral(1)));
      InsertRow(db, "t0", Row1(MakeIntLiteral(1)));
      InsertRow(db, "t0", Row1(MakeIntLiteral(2)));
    }
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kCount, MakeColumnRef("t0", "a"),
                                 /*distinct=*/true)));
    CellEquals(&clean, *q, SqlValue::Int(2));
    CellEquals(&buggy, *q, SqlValue::Int(3));
  }

  // having-before-group (postgres): HAVING aggregates see only the group's
  // first row, so a group that earns its keep on later rows is dropped.
  {
    minidb::Database clean(Dialect::kPostgresStrict);
    minidb::Database buggy(Dialect::kPostgresStrict,
                           BugConfig::Single(BugId::kHavingBeforeGroup));
    for (minidb::Database* db : {&clean, &buggy}) {
      MakeTable(db, "t0", {Column("g", Affinity::kInteger),
                           Column("v", Affinity::kInteger)});
      InsertRow(db, "t0", Row2(MakeIntLiteral(1), MakeIntLiteral(7)));
      InsertRow(db, "t0", Row2(MakeIntLiteral(1), MakeIntLiteral(8)));
      InsertRow(db, "t0", Row2(MakeIntLiteral(2), MakeIntLiteral(9)));
    }
    auto q = MakeSelect(
        "t0", Row2(MakeColumnRef("t0", "g"), CountStar()), nullptr,
        Row1(MakeColumnRef("t0", "g")),
        MakeBinary(BinaryOp::kGe, CountStar(), MakeIntLiteral(2)));
    std::vector<std::vector<SqlValue>> want;
    want.push_back({SqlValue::Int(1), SqlValue::Int(2)});
    CHECK(SameRowMultiset(Rows(&clean, *q), want));
    CHECK(Rows(&buggy, *q).empty());
  }

  // tlp-null-partition-drop (postgres): an aggregate query whose WHERE is
  // a bare top-level IS NULL loses every matching row — the exact shape of
  // TLP's third partition.
  {
    minidb::Database clean(Dialect::kPostgresStrict);
    minidb::Database buggy(Dialect::kPostgresStrict,
                           BugConfig::Single(BugId::kTlpNullPartitionDrop));
    for (minidb::Database* db : {&clean, &buggy}) {
      MakeTable(db, "t0", {Column("a", Affinity::kInteger)});
      InsertRow(db, "t0", Row1(MakeIntLiteral(1)));
      InsertRow(db, "t0", Row1(MakeNullLiteral()));
      InsertRow(db, "t0", Row1(MakeIntLiteral(2)));
    }
    auto q = MakeSelect(
        "t0", Row1(CountStar()),
        MakeIsNull(MakeBinary(BinaryOp::kGt, MakeColumnRef("t0", "a"),
                              MakeIntLiteral(1)),
                   /*negated=*/false));
    CellEquals(&clean, *q, SqlValue::Int(1));
    CellEquals(&buggy, *q, SqlValue::Int(0));
  }
}

// ---------------------------------------------------------------------------
// Oracle-level verdicts: RunNorecCheck / RunTlpCheck against live engines
// ---------------------------------------------------------------------------

void TestNorecOracleVerdicts() {
  // Clean engine: agreement.
  {
    minidb::Database db(Dialect::kSqliteFlex);
    MakeTable(&db, "t0", {Column("a", Affinity::kInteger)});
    InsertRow(&db, "t0", Row1(MakeIntLiteral(1)));
    InsertRow(&db, "t0", Row1(MakeNullLiteral()));
    InsertRow(&db, "t0", Row1(MakeIntLiteral(3)));
    ExprPtr pred = MakeBinary(BinaryOp::kGt, MakeColumnRef("t0", "a"),
                              MakeIntLiteral(1));
    sqlmeta::MetaOutcome out = sqlmeta::RunNorecCheck(db, "t0", *pred);
    CHECK(out.verdict == sqlmeta::MetaVerdict::kOk);
    CHECK_EQ(out.executed.size(), static_cast<size_t>(2));
  }

  // tlp-null-partition-drop also breaks NoREC when the predicate itself is
  // a top-level IS NULL: the optimized COUNT(*) side drops the matching
  // rows, the projected-predicate side is untouched.
  {
    minidb::Database db(Dialect::kPostgresStrict,
                        BugConfig::Single(BugId::kTlpNullPartitionDrop));
    MakeTable(&db, "t0", {Column("a", Affinity::kInteger)});
    InsertRow(&db, "t0", Row1(MakeIntLiteral(1)));
    InsertRow(&db, "t0", Row1(MakeNullLiteral()));
    InsertRow(&db, "t0", Row1(MakeIntLiteral(2)));
    ExprPtr pred =
        MakeIsNull(MakeBinary(BinaryOp::kGt, MakeColumnRef("t0", "a"),
                              MakeIntLiteral(1)),
                   /*negated=*/false);
    sqlmeta::MetaOutcome out = sqlmeta::RunNorecCheck(db, "t0", *pred);
    CHECK(out.verdict == sqlmeta::MetaVerdict::kMismatch);
    CHECK(!out.message.empty());
    CHECK(!out.executed.empty());
  }
}

void TestTlpOracleVerdicts() {
  // Clean engine, every shape: kOk.
  {
    minidb::Database db(Dialect::kSqliteFlex);
    MakeTable(&db, "t0", {Column("g", Affinity::kInteger),
                          Column("v", Affinity::kInteger)});
    InsertRow(&db, "t0", Row2(MakeIntLiteral(1), MakeIntLiteral(7)));
    InsertRow(&db, "t0", Row2(MakeIntLiteral(1), MakeNullLiteral()));
    InsertRow(&db, "t0", Row2(MakeIntLiteral(2), MakeIntLiteral(9)));
    InsertRow(&db, "t0", Row2(MakeNullLiteral(), MakeIntLiteral(4)));
    ExprPtr pred = MakeBinary(BinaryOp::kGt, MakeColumnRef("t0", "v"),
                              MakeIntLiteral(5));

    std::vector<std::unique_ptr<SelectStmt>> queries;
    queries.push_back(MakeSelect("t0", {}));  // kRows
    queries.push_back(MakeSelect(              // kAggregate
        "t0", Row2(MakeAggregate(AggFunc::kAvg, MakeColumnRef("t0", "v"),
                                 false),
                   CountStar())));
    queries.push_back(MakeSelect(  // kCountDistinct
        "t0", Row1(MakeAggregate(AggFunc::kCount, MakeColumnRef("t0", "v"),
                                 /*distinct=*/true))));
    queries.push_back(MakeSelect(  // kGroupBy + HAVING
        "t0",
        Row2(MakeColumnRef("t0", "g"),
             MakeAggregate(AggFunc::kSum, MakeColumnRef("t0", "v"), false)),
        nullptr, Row1(MakeColumnRef("t0", "g")),
        MakeBinary(BinaryOp::kGe, CountStar(), MakeIntLiteral(1))));
    for (const auto& q : queries) {
      sqlmeta::MetaOutcome out = sqlmeta::RunTlpCheck(db, *q, *pred);
      CHECK_MSG(out.verdict == sqlmeta::MetaVerdict::kOk, "%s: %s",
                RenderStmt(*q, db.dialect()).c_str(), out.message.c_str());
      // 3 partitions + the full query, full query last.
      CHECK_EQ(out.executed.size(), static_cast<size_t>(4));
    }

    // Unsupported shape: kSkipped, not a check.
    auto ordered = MakeSelect("t0", {});
    ordered->order_by.emplace_back();
    ordered->order_by.back().expr = MakeColumnRef("t0", "v");
    sqlmeta::MetaOutcome out = sqlmeta::RunTlpCheck(db, *ordered, *pred);
    CHECK(out.verdict == sqlmeta::MetaVerdict::kSkipped);
  }

  auto expect_mismatch = [](minidb::Database& db, const SelectStmt& q,
                            const Expr& pred) {
    sqlmeta::MetaOutcome out = sqlmeta::RunTlpCheck(db, q, pred);
    CHECK_MSG(out.verdict == sqlmeta::MetaVerdict::kMismatch,
              "wanted mismatch on %s (verdict %d: %s)",
              RenderStmt(q, db.dialect()).c_str(),
              static_cast<int>(out.verdict), out.message.c_str());
    CHECK(!out.executed.empty());
    // The decisive full query is the last executed statement.
    CHECK(out.executed.back()->kind() == StmtKind::kSelect);
  };

  // sum-overflow-wrap: the full-table SUM wraps; the per-partition sums
  // stay in range, so the recombination is exact.
  {
    minidb::Database db(Dialect::kSqliteFlex,
                        BugConfig::Single(BugId::kSumOverflowWrap));
    MakeTable(&db, "t0", {Column("a", Affinity::kInteger),
                          Column("b", Affinity::kInteger)});
    InsertRow(&db, "t0", Row2(MakeIntLiteral(9), MakeIntLiteral(0)));
    InsertRow(&db, "t0", Row2(MakeIntLiteral(9), MakeIntLiteral(1)));
    InsertRow(&db, "t0", Row2(MakeIntLiteral(9), MakeIntLiteral(0)));
    InsertRow(&db, "t0", Row2(MakeIntLiteral(9), MakeIntLiteral(1)));
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kSum, MakeColumnRef("t0", "a"),
                                 false)));
    ExprPtr pred = MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "b"),
                              MakeIntLiteral(0));
    expect_mismatch(db, *q, *pred);
  }

  // agg-empty-group-zero: an empty partition's MIN partial is a spurious 0
  // that wins the recombined minimum.
  {
    minidb::Database db(Dialect::kSqliteFlex,
                        BugConfig::Single(BugId::kAggEmptyGroupZero));
    MakeTable(&db, "t0", {Column("a", Affinity::kInteger)});
    InsertRow(&db, "t0", Row1(MakeIntLiteral(5)));
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kMin, MakeColumnRef("t0", "a"),
                                 false)));
    ExprPtr pred = MakeBinary(BinaryOp::kLt, MakeColumnRef("t0", "a"),
                              MakeIntLiteral(0));
    expect_mismatch(db, *q, *pred);
  }

  // avg-integer-div: the full query truncates; the SUM+COUNT partials are
  // exact.
  {
    minidb::Database db(Dialect::kMysqlLike,
                        BugConfig::Single(BugId::kAvgIntegerDiv));
    MakeTable(&db, "t0", {Column("a", Affinity::kInteger)});
    InsertRow(&db, "t0", Row1(MakeIntLiteral(1)));
    InsertRow(&db, "t0", Row1(MakeIntLiteral(2)));
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kAvg, MakeColumnRef("t0", "a"),
                                 false)));
    ExprPtr pred = MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "a"),
                              MakeIntLiteral(1));
    expect_mismatch(db, *q, *pred);
  }

  // count-distinct-dup: the partitions use engine DISTINCT (unaffected);
  // the full COUNT(DISTINCT) overcounts.
  {
    minidb::Database db(Dialect::kMysqlLike,
                        BugConfig::Single(BugId::kCountDistinctDup));
    MakeTable(&db, "t0", {Column("a", Affinity::kInteger)});
    InsertRow(&db, "t0", Row1(MakeIntLiteral(1)));
    InsertRow(&db, "t0", Row1(MakeIntLiteral(1)));
    InsertRow(&db, "t0", Row1(MakeIntLiteral(2)));
    auto q = MakeSelect(
        "t0", Row1(MakeAggregate(AggFunc::kCount, MakeColumnRef("t0", "a"),
                                 /*distinct=*/true)));
    ExprPtr pred = MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "a"),
                              MakeIntLiteral(1));
    expect_mismatch(db, *q, *pred);
  }

  // having-before-group: the partitions run HAVING-free; the oracle
  // re-applies HAVING on true recombined aggregates and keeps the group
  // the buggy engine dropped.
  {
    minidb::Database db(Dialect::kPostgresStrict,
                        BugConfig::Single(BugId::kHavingBeforeGroup));
    MakeTable(&db, "t0", {Column("g", Affinity::kInteger),
                          Column("v", Affinity::kInteger)});
    InsertRow(&db, "t0", Row2(MakeIntLiteral(1), MakeIntLiteral(7)));
    InsertRow(&db, "t0", Row2(MakeIntLiteral(1), MakeIntLiteral(8)));
    InsertRow(&db, "t0", Row2(MakeIntLiteral(2), MakeIntLiteral(9)));
    auto q = MakeSelect(
        "t0", Row2(MakeColumnRef("t0", "g"), CountStar()), nullptr,
        Row1(MakeColumnRef("t0", "g")),
        MakeBinary(BinaryOp::kGe, CountStar(), MakeIntLiteral(2)));
    ExprPtr pred = MakeBinary(BinaryOp::kGe, MakeColumnRef("t0", "v"),
                              MakeIntLiteral(8));
    expect_mismatch(db, *q, *pred);
  }

  // tlp-null-partition-drop: the third partition silently loses its rows;
  // the recombined COUNT(*) comes up short of the full query's.
  {
    minidb::Database db(Dialect::kPostgresStrict,
                        BugConfig::Single(BugId::kTlpNullPartitionDrop));
    MakeTable(&db, "t0", {Column("a", Affinity::kInteger)});
    InsertRow(&db, "t0", Row1(MakeIntLiteral(1)));
    InsertRow(&db, "t0", Row1(MakeNullLiteral()));
    InsertRow(&db, "t0", Row1(MakeIntLiteral(2)));
    auto q = MakeSelect("t0", Row1(CountStar()));
    ExprPtr pred = MakeBinary(BinaryOp::kGt, MakeColumnRef("t0", "a"),
                              MakeIntLiteral(1));
    expect_mismatch(db, *q, *pred);
  }
}

// ---------------------------------------------------------------------------
// Campaign integration: every new bug falls to its intended oracle within
// the default budget
// ---------------------------------------------------------------------------

void TestHuntNewBugsDefaultBudget() {
  const BugId new_bugs[] = {
      BugId::kAggEmptyGroupZero, BugId::kSumOverflowWrap,
      BugId::kAvgIntegerDiv,     BugId::kCountDistinctDup,
      BugId::kHavingBeforeGroup, BugId::kTlpNullPartitionDrop,
  };
  CampaignOptions options;
  options.reduce = false;
  options.workers = property_workers;
  for (BugId bug : new_bugs) {
    const minidb::BugInfo& info = minidb::LookupBug(bug);
    BugHuntResult result = HuntBug(bug, options);
    CHECK_MSG(result.detected, "%s not detected within default budget",
              info.name);
    if (!result.detected) continue;
    CHECK_MSG(result.oracle == OracleKind::kTlp,
              "%s fired %s, expected the TLP oracle", info.name,
              OracleName(result.oracle));
  }

  // One reduced hunt: the ddmin'd finding still ends in the decisive
  // transformed query.
  CampaignOptions reduced = options;
  reduced.reduce = true;
  BugHuntResult result = HuntBug(BugId::kAvgIntegerDiv, reduced);
  CHECK(result.detected);
  CHECK(!result.reduced.statements.empty());
  if (!result.reduced.statements.empty()) {
    CHECK(result.reduced.statements.back()->kind() == StmtKind::kSelect);
  }
}

// ---------------------------------------------------------------------------
// Partition-equivalence property: clean engines never trip NoREC/TLP
// ---------------------------------------------------------------------------

void TestMetaPropertiesOnCleanEngines() {
  // 100 databases x 20 queries = 2000 TLP generations on the sqlite
  // dialect, plus smaller sweeps of the other dialects and NoREC.
  struct Case {
    Dialect dialect;
    OracleFamily family;
    int databases;
  };
  const Case cases[] = {
      {Dialect::kSqliteFlex, OracleFamily::kTlp, 100},
      {Dialect::kMysqlLike, OracleFamily::kTlp, 40},
      {Dialect::kPostgresStrict, OracleFamily::kTlp, 40},
      {Dialect::kSqliteFlex, OracleFamily::kNorec, 40},
      {Dialect::kPostgresStrict, OracleFamily::kNorec, 40},
  };
  for (const Case& c : cases) {
    RunnerOptions opts;
    opts.seed = 0x9e3779b9;
    opts.databases = c.databases;
    opts.queries_per_database = 20;
    opts.workers = property_workers;
    opts.family = c.family;
    Dialect d = c.dialect;
    PqsRunner runner(
        [d]() -> ConnectionPtr { return std::make_unique<minidb::Database>(d); },
        opts);
    RunReport report = runner.Run();
    CHECK_MSG(report.findings.empty(),
              "dialect %d family %d: %zu finding(s) on a clean engine: %s",
              static_cast<int>(c.dialect), static_cast<int>(c.family),
              report.findings.size(),
              report.findings.empty() ? ""
                                      : report.findings[0].message.c_str());
    // The run must consist of real checks, not silent skips.
    uint64_t floor = static_cast<uint64_t>(c.databases) * 18;
    if (c.family == OracleFamily::kTlp) {
      CHECK_MSG(report.stats.tlp_checks > floor,
                "only %llu TLP checks completed",
                static_cast<unsigned long long>(report.stats.tlp_checks));
      CHECK(report.stats.tlp_partition_queries >= 3 * report.stats.tlp_checks);
      CHECK(report.stats.aggregate_queries > 0);
      CHECK(report.stats.group_by_queries > 0);
      CHECK(report.stats.having_queries > 0);
      CHECK_EQ(report.stats.norec_checks, static_cast<uint64_t>(0));
    } else {
      CHECK_MSG(report.stats.norec_checks > floor,
                "only %llu NoREC checks completed",
                static_cast<unsigned long long>(report.stats.norec_checks));
      CHECK_EQ(report.stats.tlp_checks, static_cast<uint64_t>(0));
    }
  }
}

// ---------------------------------------------------------------------------
// N-worker determinism of the merged report, new counters included
// ---------------------------------------------------------------------------

void CheckStatsEqual(const RunStats& a, const RunStats& b) {
  CHECK_EQ(a.statements_executed, b.statements_executed);
  CHECK_EQ(a.queries_checked, b.queries_checked);
  CHECK_EQ(a.queries_skipped, b.queries_skipped);
  CHECK_EQ(a.databases_created, b.databases_created);
  CHECK_EQ(a.rectified_true, b.rectified_true);
  CHECK_EQ(a.rectified_false, b.rectified_false);
  CHECK_EQ(a.rectified_null, b.rectified_null);
  CHECK_EQ(a.constraint_violations, b.constraint_violations);
  CHECK_EQ(a.join_conditions_rectified, b.join_conditions_rectified);
  CHECK_EQ(a.limited_queries, b.limited_queries);
  for (int i = 0; i < RunStats::kDepthBuckets; ++i) {
    CHECK_EQ(a.predicate_depth_buckets[i], b.predicate_depth_buckets[i]);
  }
  CHECK_EQ(a.predicates_with_function, b.predicates_with_function);
  CHECK_EQ(a.function_calls_generated, b.function_calls_generated);
  CHECK_EQ(a.norec_checks, b.norec_checks);
  CHECK_EQ(a.tlp_checks, b.tlp_checks);
  CHECK_EQ(a.tlp_partition_queries, b.tlp_partition_queries);
  CHECK_EQ(a.aggregate_queries, b.aggregate_queries);
  CHECK_EQ(a.group_by_queries, b.group_by_queries);
  CHECK_EQ(a.having_queries, b.having_queries);
  CHECK_EQ(a.actions_insert, b.actions_insert);
  CHECK_EQ(a.actions_update, b.actions_update);
  CHECK_EQ(a.actions_delete, b.actions_delete);
  CHECK_EQ(a.actions_create_index, b.actions_create_index);
  CHECK_EQ(a.actions_drop_index, b.actions_drop_index);
  CHECK_EQ(a.actions_maintenance, b.actions_maintenance);
  CHECK_EQ(a.state_compares, b.state_compares);
}

void TestWorkerDeterminism() {
  // A buggy engine so the merged reports carry findings too.
  auto run = [](int workers) {
    RunnerOptions opts;
    opts.seed = 20200707;
    opts.databases = 24;
    opts.queries_per_database = 10;
    opts.workers = workers;
    opts.family = OracleFamily::kTlp;
    PqsRunner runner(
        []() -> ConnectionPtr {
          return std::make_unique<minidb::Database>(
              Dialect::kSqliteFlex,
              BugConfig::Single(BugId::kSumOverflowWrap));
        },
        opts);
    return runner.Run();
  };
  RunReport base = run(1);
  CHECK(!base.findings.empty());
  for (int workers : {2, 4, property_workers}) {
    RunReport sharded = run(workers);
    CheckStatsEqual(base.stats, sharded.stats);
    CHECK_EQ(base.findings.size(), sharded.findings.size());
    for (size_t i = 0; i < base.findings.size() && i < sharded.findings.size();
         ++i) {
      CHECK(base.findings[i].oracle == sharded.findings[i].oracle);
      CHECK_EQ(base.findings[i].message, sharded.findings[i].message);
      CHECK_EQ(base.findings[i].statements.size(),
               sharded.findings[i].statements.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Differential safety net: generated aggregate queries vs real sqlite3
// ---------------------------------------------------------------------------

void TestAggregateDifferentialSweep() {
  if (!SqliteConnection::Available()) {
    std::printf("  (real sqlite3 unavailable; aggregate differential sweep "
                "skipped)\n");
    return;
  }
  GeneratorOptions gen_options;
  Generator generator(gen_options, Dialect::kSqliteFlex);
  Rng rng(0x5eed5eedULL);
  uint64_t checked = 0;
  int divergences = 0;
  for (int db_i = 0; db_i < 300 && divergences == 0; ++db_i) {
    DatabasePlan plan = generator.GenerateDatabase(&rng);
    minidb::Database model(Dialect::kSqliteFlex);
    SqliteConnection real;
    for (const StmtPtr& stmt : plan.statements) {
      StatementResult m = model.Execute(*stmt);
      StatementResult r = real.Execute(*stmt);
      CHECK_MSG(m.ok() == r.ok(), "setup disagreement on %s: %s / %s",
                RenderStmt(*stmt, Dialect::kSqliteFlex).c_str(),
                m.error.c_str(), r.error.c_str());
    }
    for (int q = 0; q < 40; ++q) {
      const TableSchema& table = plan.tables[rng.Below(plan.tables.size())];
      std::unique_ptr<SelectStmt> query =
          generator.GenerateAggregateQuery(table, &rng);
      StatementResult m = model.Execute(*query);
      StatementResult r = real.Execute(*query);
      CHECK_MSG(m.ok() == r.ok(), "status disagreement on %s: %s / %s",
                RenderStmt(*query, Dialect::kSqliteFlex).c_str(),
                m.error.c_str(), r.error.c_str());
      if (m.ok() && r.ok() && !SameRowMultiset(m.rows, r.rows)) {
        ++divergences;
        CHECK_MSG(false, "aggregate divergence vs sqlite3 on %s",
                  RenderStmt(*query, Dialect::kSqliteFlex).c_str());
      }
      ++checked;
    }
  }
  CHECK_MSG(checked >= 10000,
            "sweep undersized: only %llu aggregate queries compared",
            static_cast<unsigned long long>(checked));

  // And the oracles end-to-end against the real engine: a correct DBMS
  // must survive both metamorphic families with zero findings.
  for (OracleFamily family : {OracleFamily::kTlp, OracleFamily::kNorec}) {
    RunnerOptions opts;
    opts.seed = 424242;
    opts.databases = 30;
    opts.queries_per_database = 25;
    opts.workers = property_workers;
    opts.family = family;
    PqsRunner runner(
        []() -> ConnectionPtr { return std::make_unique<SqliteConnection>(); },
        opts);
    RunReport report = runner.Run();
    CHECK(!report.unsupported_engine);
    CHECK_MSG(report.findings.empty(),
              "family %d: %zu finding(s) against real sqlite3: %s",
              static_cast<int>(family), report.findings.size(),
              report.findings.empty() ? ""
                                      : report.findings[0].message.c_str());
  }
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      pqs::property_workers = std::atoi(argv[i + 1]);
      if (pqs::property_workers < 1) pqs::property_workers = 1;
      ++i;
    }
  }
  pqs::TestNorecTransformUnits();
  pqs::TestTlpPartitionPredicates();
  pqs::TestTlpPlanShapes();
  pqs::TestTlpPlanRejections();
  pqs::TestAggregateExecutionUnits();
  pqs::TestAggregateBugHooksDirect();
  pqs::TestNorecOracleVerdicts();
  pqs::TestTlpOracleVerdicts();
  pqs::TestHuntNewBugsDefaultBudget();
  pqs::TestMetaPropertiesOnCleanEngines();
  pqs::TestWorkerDeterminism();
  pqs::TestAggregateDifferentialSweep();
  return pqs::test::Summary("test_meta_oracles");
}
