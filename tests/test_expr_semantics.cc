// Typed expression subsystem (PR 4): per-function semantics checks against
// the shared evaluator, registry shape/availability checks, the new
// injected bug classes, GeneratorOptions validation, a rectified-
// containment property over deep expression-heavy predicates, and an
// always-on differential sweep of generated expression queries against
// real sqlite3 (0 false findings expected).
//
// Accepts `--workers N` (the CI ThreadSanitizer job passes 4); every
// property here is worker-count-invariant.
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/minidb/bug_registry.h"
#include "src/minidb/database.h"
#include "src/pqs/campaign.h"
#include "src/pqs/runner.h"
#include "src/sqlexpr/rectify.h"
#include "src/sqlexpr/registry.h"
#include "src/sqlite3db/sqlite_connection.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

int expr_workers = 1;

// Cranked expression-feature probabilities shared by the property tests
// and the differential sweep.
GeneratorOptions DenseExprOptions() {
  GeneratorOptions gen;
  gen.max_predicate_depth = 5;
  gen.function_probability = 0.5;
  gen.cast_probability = 0.3;
  gen.case_probability = 0.25;
  gen.collate_probability = 0.5;
  gen.like_escape_probability = 0.5;
  gen.in_list_null_probability = 0.4;
  return gen;
}

// ---------------------------------------------------------------------------
// Evaluator unit checks (no engine, no rows)
// ---------------------------------------------------------------------------

SqlValue Eval(ExprPtr e, Dialect d = Dialect::kSqliteFlex,
              const BugConfig* bugs = nullptr, bool* error = nullptr) {
  EvalContext ctx{d, bugs};
  RowView no_row;
  EvalResult r = Evaluate(*e, no_row, ctx);
  if (error != nullptr) *error = r.error;
  return r.error ? SqlValue::Null() : r.value;
}

ExprPtr Call(FuncId f, std::vector<ExprPtr> args) {
  return MakeFunctionCall(f, std::move(args));
}

std::vector<ExprPtr> Args(ExprPtr a) {
  std::vector<ExprPtr> out;
  out.push_back(std::move(a));
  return out;
}

std::vector<ExprPtr> Args(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> out;
  out.push_back(std::move(a));
  out.push_back(std::move(b));
  return out;
}

std::vector<ExprPtr> Args(ExprPtr a, ExprPtr b, ExprPtr c) {
  std::vector<ExprPtr> out;
  out.push_back(std::move(a));
  out.push_back(std::move(b));
  out.push_back(std::move(c));
  return out;
}

void TestFunctionSemantics() {
  // ABS: integer stays integer, real stays real, NULL propagates.
  CHECK(ValueEquals(Eval(Call(FuncId::kAbs, Args(MakeIntLiteral(-3)))),
                    SqlValue::Int(3)));
  SqlValue abs_real = Eval(Call(FuncId::kAbs, Args(MakeRealLiteral(-0.5))));
  CHECK(abs_real.cls == StorageClass::kReal && abs_real.r == 0.5);
  CHECK(Eval(Call(FuncId::kAbs, Args(MakeNullLiteral()))).is_null());

  // LENGTH: byte count of text; NULL propagates.
  CHECK(ValueEquals(Eval(Call(FuncId::kLength, Args(MakeTextLiteral("ab")))),
                    SqlValue::Int(2)));
  CHECK(ValueEquals(Eval(Call(FuncId::kLength, Args(MakeTextLiteral("")))),
                    SqlValue::Int(0)));
  CHECK(Eval(Call(FuncId::kLength, Args(MakeNullLiteral()))).is_null());

  // UPPER / LOWER: ASCII folding.
  CHECK(ValueEquals(Eval(Call(FuncId::kUpper, Args(MakeTextLiteral("aB1")))),
                    SqlValue::Text("AB1")));
  CHECK(ValueEquals(Eval(Call(FuncId::kLower, Args(MakeTextLiteral("aB1")))),
                    SqlValue::Text("ab1")));

  // COALESCE: first non-NULL, lazily; all NULL → NULL.
  CHECK(ValueEquals(Eval(Call(FuncId::kCoalesce,
                              Args(MakeNullLiteral(), MakeIntLiteral(2)))),
                    SqlValue::Int(2)));
  CHECK(ValueEquals(
      Eval(Call(FuncId::kCoalesce,
                Args(MakeIntLiteral(1), MakeNullLiteral()))),
      SqlValue::Int(1)));
  CHECK(Eval(Call(FuncId::kCoalesce,
                  Args(MakeNullLiteral(), MakeNullLiteral())))
            .is_null());

  // NULLIF: NULL on equality, first arg otherwise; NULL probe stays NULL.
  CHECK(Eval(Call(FuncId::kNullif, Args(MakeIntLiteral(1),
                                        MakeIntLiteral(1))))
            .is_null());
  CHECK(ValueEquals(Eval(Call(FuncId::kNullif, Args(MakeIntLiteral(1),
                                                    MakeIntLiteral(2)))),
                    SqlValue::Int(1)));
  CHECK(Eval(Call(FuncId::kNullif, Args(MakeNullLiteral(),
                                        MakeIntLiteral(2))))
            .is_null());

  // Scalar MIN/MAX (LEAST/GREATEST): any NULL argument wins, else order.
  CHECK(ValueEquals(Eval(Call(FuncId::kLeast,
                              Args(MakeIntLiteral(2), MakeIntLiteral(1),
                                   MakeIntLiteral(3)))),
                    SqlValue::Int(1)));
  CHECK(ValueEquals(Eval(Call(FuncId::kGreatest,
                              Args(MakeIntLiteral(2), MakeIntLiteral(1),
                                   MakeIntLiteral(3)))),
                    SqlValue::Int(3)));
  CHECK(Eval(Call(FuncId::kLeast, Args(MakeIntLiteral(2),
                                       MakeNullLiteral())))
            .is_null());
  // SQLite's binary text order: 'B' < 'a'.
  CHECK(ValueEquals(Eval(Call(FuncId::kLeast, Args(MakeTextLiteral("a"),
                                                   MakeTextLiteral("B")))),
                    SqlValue::Text("B")));

  // IFNULL: two-argument COALESCE where available.
  CHECK(ValueEquals(Eval(Call(FuncId::kIfnull,
                              Args(MakeNullLiteral(),
                                   MakeTextLiteral("x")))),
                    SqlValue::Text("x")));
  // ...and an error where the registry says it does not exist.
  bool error = false;
  Eval(Call(FuncId::kIfnull, Args(MakeNullLiteral(), MakeIntLiteral(1))),
       Dialect::kPostgresStrict, nullptr, &error);
  CHECK_MSG(error, "IFNULL must not exist in the strict dialect");

  // Strict typing: text into numeric-only functions is an error.
  error = false;
  Eval(Call(FuncId::kAbs, Args(MakeTextLiteral("x"))),
       Dialect::kPostgresStrict, nullptr, &error);
  CHECK_MSG(error, "abs(text) must error in the strict dialect");
}

void TestCastSemantics() {
  // REAL → INTEGER truncates toward zero (both signs).
  CHECK(ValueEquals(Eval(MakeCast(MakeRealLiteral(1.5), Affinity::kInteger)),
                    SqlValue::Int(1)));
  CHECK(ValueEquals(Eval(MakeCast(MakeRealLiteral(-0.5),
                                  Affinity::kInteger)),
                    SqlValue::Int(0)));
  // TEXT → INTEGER takes the integer prefix; no prefix → 0.
  CHECK(ValueEquals(Eval(MakeCast(MakeTextLiteral("12ab"),
                                  Affinity::kInteger)),
                    SqlValue::Int(12)));
  CHECK(ValueEquals(Eval(MakeCast(MakeTextLiteral("abc"),
                                  Affinity::kInteger)),
                    SqlValue::Int(0)));
  // TEXT → REAL takes the numeric prefix.
  SqlValue r = Eval(MakeCast(MakeTextLiteral("-3"), Affinity::kReal));
  CHECK(r.cls == StorageClass::kReal && r.r == -3.0);
  // Anything → TEXT renders like the engine ('2.0', not '2').
  CHECK(ValueEquals(Eval(MakeCast(MakeRealLiteral(2.0), Affinity::kText)),
                    SqlValue::Text("2.0")));
  CHECK(Eval(MakeCast(MakeNullLiteral(), Affinity::kInteger)).is_null());
  // Strict: text → numeric cast is a runtime error.
  bool error = false;
  Eval(MakeCast(MakeTextLiteral("abc"), Affinity::kInteger),
       Dialect::kPostgresStrict, nullptr, &error);
  CHECK_MSG(error, "strict CAST(text AS INTEGER) must error");
}

ExprPtr CaseOf(std::vector<std::pair<ExprPtr, ExprPtr>> arms,
               ExprPtr else_value) {
  return MakeCase(std::move(arms), std::move(else_value));
}

void TestCaseSemantics() {
  // First true WHEN wins.
  std::vector<std::pair<ExprPtr, ExprPtr>> arms;
  arms.emplace_back(MakeIntLiteral(0), MakeTextLiteral("first"));
  arms.emplace_back(MakeIntLiteral(1), MakeTextLiteral("second"));
  CHECK(ValueEquals(Eval(CaseOf(std::move(arms), MakeTextLiteral("else"))),
                    SqlValue::Text("second")));
  // No match → ELSE.
  arms.clear();
  arms.emplace_back(MakeIntLiteral(0), MakeTextLiteral("x"));
  CHECK(ValueEquals(Eval(CaseOf(std::move(arms), MakeTextLiteral("else"))),
                    SqlValue::Text("else")));
  // No match, no ELSE → NULL; a NULL WHEN is not a match.
  arms.clear();
  arms.emplace_back(MakeNullLiteral(), MakeTextLiteral("x"));
  CHECK(Eval(CaseOf(std::move(arms), nullptr)).is_null());
}

void TestLikeEscapeAndCollate() {
  // Escaped wildcard matches itself literally; unescaped stays a wildcard.
  CHECK(LikeMatch("a%b", "a!%%", /*case_insensitive=*/true, '!'));
  CHECK(!LikeMatch("axb", "a!%%", /*case_insensitive=*/true, '!'));
  CHECK(LikeMatch("axb", "a%", /*case_insensitive=*/true, '!'));
  CHECK(LikeMatch("_x", "!_%", /*case_insensitive=*/true, '!'));
  CHECK(!LikeMatch("ax", "!_%", /*case_insensitive=*/true, '!'));
  // Escape folding: escaped literals still compare case-insensitively.
  CHECK(LikeMatch("A%B", "a!%b", /*case_insensitive=*/true, '!'));
  // A pattern ending in a bare escape character matches nothing (real
  // SQLite: 'ab!' LIKE 'ab!' ESCAPE '!' is 0).
  CHECK(!LikeMatch("ab!", "ab!", /*case_insensitive=*/true, '!'));
  CHECK(!LikeMatch("ab", "ab!", /*case_insensitive=*/true, '!'));

  // The evaluator end: value LIKE pattern ESCAPE '!'.
  CHECK(ValueEquals(Eval(MakeLikeEscape(MakeTextLiteral("a%b"),
                                        MakeTextLiteral("a!%%"),
                                        MakeTextLiteral("!"),
                                        /*negated=*/false)),
                    SqlValue::Bool(true)));
  // A multi-character ESCAPE expression is an error.
  bool error = false;
  Eval(MakeLikeEscape(MakeTextLiteral("a"), MakeTextLiteral("a"),
                      MakeTextLiteral("!!"), false),
       Dialect::kSqliteFlex, nullptr, &error);
  CHECK_MSG(error, "multi-character ESCAPE must error");

  // COLLATE NOCASE flips equality and ordering of ASCII text.
  auto nocase_cmp = [](BinaryOp op, const char* a, const char* b) {
    return Eval(MakeBinary(op,
                           MakeCollate(MakeTextLiteral(a),
                                       Collation::kNocase),
                           MakeTextLiteral(b)));
  };
  CHECK(ValueEquals(nocase_cmp(BinaryOp::kEq, "aB", "Ab"),
                    SqlValue::Bool(true)));
  // Ordering flips: binary has 'B'(0x42) < 'a'(0x61), NOCASE folds to
  // 'a' < 'b'.
  CHECK(ValueEquals(nocase_cmp(BinaryOp::kLt, "a", "B"),
                    SqlValue::Bool(true)));
  CHECK(ValueEquals(Eval(MakeBinary(BinaryOp::kLt,
                                    MakeCollate(MakeTextLiteral("B"),
                                                Collation::kBinary),
                                    MakeTextLiteral("a"))),
                    SqlValue::Bool(true)));
}

void TestRegistryShape() {
  CHECK_EQ(FunctionRegistry().size(),
           static_cast<size_t>(FuncId::kNumFuncs));
  for (size_t i = 0; i < FunctionRegistry().size(); ++i) {
    CHECK(FunctionRegistry()[i].id == static_cast<FuncId>(i));
  }
  // Per-dialect naming: SQLite spells scalar min/max MIN/MAX, the other
  // dialects LEAST/GREATEST.
  const FunctionSig& least = LookupFunction(FuncId::kLeast);
  CHECK_EQ(std::string(least.NameFor(Dialect::kSqliteFlex)), "MIN");
  CHECK_EQ(std::string(least.NameFor(Dialect::kMysqlLike)), "LEAST");
  CHECK_EQ(std::string(least.NameFor(Dialect::kPostgresStrict)), "LEAST");
  // Availability: IFNULL exists in SQLite/MySQL, not PostgreSQL.
  const FunctionSig& ifnull = LookupFunction(FuncId::kIfnull);
  CHECK(ifnull.available(Dialect::kSqliteFlex));
  CHECK(ifnull.available(Dialect::kMysqlLike));
  CHECK(!ifnull.available(Dialect::kPostgresStrict));
  CHECK_EQ(FunctionsForDialect(Dialect::kPostgresStrict).size(),
           FunctionRegistry().size() - 1);
}

// ---------------------------------------------------------------------------
// Injected expression bug classes flip exactly the modeled behavior
// ---------------------------------------------------------------------------

void TestExpressionBugHooks() {
  // like-escape-miss: the ESCAPE clause is ignored.
  BugConfig like_bug = BugConfig::Single(BugId::kLikeEscapeMiss);
  ExprPtr like = MakeLikeEscape(MakeTextLiteral("a%b"),
                                MakeTextLiteral("a!%%"),
                                MakeTextLiteral("!"), false);
  CHECK(ValueEquals(Eval(like->Clone()), SqlValue::Bool(true)));
  CHECK(ValueEquals(Eval(like->Clone(), Dialect::kSqliteFlex, &like_bug),
                    SqlValue::Bool(false)));

  // cast-trunc-affinity: REAL → INTEGER rounds instead of truncating.
  BugConfig cast_bug = BugConfig::Single(BugId::kCastTruncAffinity);
  ExprPtr cast = MakeCast(MakeRealLiteral(1.5), Affinity::kInteger);
  CHECK(ValueEquals(Eval(cast->Clone()), SqlValue::Int(1)));
  CHECK(ValueEquals(Eval(cast->Clone(), Dialect::kSqliteFlex, &cast_bug),
                    SqlValue::Int(2)));

  // collate-nocase-range: NOCASE honored for equality, lost for ranges.
  BugConfig coll_bug = BugConfig::Single(BugId::kCollateNocaseRange);
  ExprPtr range = MakeBinary(BinaryOp::kLt,
                             MakeCollate(MakeTextLiteral("a"),
                                         Collation::kNocase),
                             MakeTextLiteral("B"));
  CHECK(ValueEquals(Eval(range->Clone()), SqlValue::Bool(true)));
  CHECK(ValueEquals(Eval(range->Clone(), Dialect::kSqliteFlex, &coll_bug),
                    SqlValue::Bool(false)));
  ExprPtr eq = MakeBinary(BinaryOp::kEq,
                          MakeCollate(MakeTextLiteral("aB"),
                                      Collation::kNocase),
                          MakeTextLiteral("Ab"));
  CHECK(ValueEquals(Eval(eq->Clone(), Dialect::kSqliteFlex, &coll_bug),
                    SqlValue::Bool(true)));

  // coalesce-first-null: a NULL first argument poisons the whole call.
  BugConfig coal_bug = BugConfig::Single(BugId::kCoalesceFirstNull);
  ExprPtr coal = Call(FuncId::kCoalesce,
                      Args(MakeNullLiteral(), MakeIntLiteral(7)));
  CHECK(ValueEquals(Eval(coal->Clone()), SqlValue::Int(7)));
  CHECK(Eval(coal->Clone(), Dialect::kSqliteFlex, &coal_bug).is_null());

  // case-else-skip: the ELSE arm is skipped when no WHEN matches.
  BugConfig case_bug = BugConfig::Single(BugId::kCaseElseSkip);
  std::vector<std::pair<ExprPtr, ExprPtr>> arms;
  arms.emplace_back(MakeIntLiteral(0), MakeIntLiteral(1));
  ExprPtr case_expr = CaseOf(std::move(arms), MakeIntLiteral(9));
  CHECK(ValueEquals(Eval(case_expr->Clone()), SqlValue::Int(9)));
  CHECK(Eval(case_expr->Clone(), Dialect::kSqliteFlex, &case_bug).is_null());

  // in-list-null-semantics: UNKNOWN from a NULL element collapses.
  BugConfig in_bug = BugConfig::Single(BugId::kInListNullSemantics);
  std::vector<ExprPtr> list;
  list.push_back(MakeIntLiteral(1));
  list.push_back(MakeNullLiteral());
  ExprPtr in = MakeInList(MakeIntLiteral(2), std::move(list), false);
  CHECK(Eval(in->Clone()).is_null());
  CHECK(ValueEquals(Eval(in->Clone(), Dialect::kSqliteFlex, &in_bug),
                    SqlValue::Bool(false)));
}

// ---------------------------------------------------------------------------
// Structure-aware rectification
// ---------------------------------------------------------------------------

void TestRectifyStructure() {
  // TRUE keeps φ.
  ExprPtr t = RectifyToTrue(MakeIntLiteral(1), Bool3::kTrue);
  CHECK(t->kind == ExprKind::kLiteral);
  // FALSE on a negatable node flips the flag instead of wrapping.
  ExprPtr like = MakeLike(MakeTextLiteral("a"), MakeTextLiteral("b"),
                          /*negated=*/false);
  ExprPtr flipped = RectifyToTrue(std::move(like), Bool3::kFalse);
  CHECK(flipped->kind == ExprKind::kLike && flipped->negated);
  // FALSE on NOT φ unwraps to φ.
  ExprPtr not_cmp = MakeUnary(UnaryOp::kNot,
                              MakeBinary(BinaryOp::kEq, MakeIntLiteral(1),
                                         MakeIntLiteral(1)));
  ExprPtr unwrapped = RectifyToTrue(std::move(not_cmp), Bool3::kFalse);
  CHECK(unwrapped->kind == ExprKind::kBinary);
  // NULL wraps in IS NULL — also for function results.
  ExprPtr call = Call(FuncId::kCoalesce,
                      Args(MakeNullLiteral(), MakeNullLiteral()));
  ExprPtr wrapped = RectifyToTrue(std::move(call), Bool3::kNull);
  CHECK(wrapped->kind == ExprKind::kIsNull && !wrapped->negated);

  // Depth buckets: 1-2 / 3-4 / 5-6 / 7-8 / ≥9.
  CHECK_EQ(ExprDepthBucket(1), 0);
  CHECK_EQ(ExprDepthBucket(2), 0);
  CHECK_EQ(ExprDepthBucket(3), 1);
  CHECK_EQ(ExprDepthBucket(8), 3);
  CHECK_EQ(ExprDepthBucket(40), 4);
}

// ---------------------------------------------------------------------------
// GeneratorOptions validation
// ---------------------------------------------------------------------------

void TestGeneratorOptionsValidate() {
  GeneratorOptions ok;
  CHECK_EQ(ok.Validate(), std::string(""));

  GeneratorOptions bad_depth;
  bad_depth.max_predicate_depth = -1;
  CHECK(!bad_depth.Validate().empty());

  GeneratorOptions bad_rows;
  bad_rows.min_rows = 10;
  bad_rows.max_rows = 3;
  CHECK(!bad_rows.Validate().empty());

  GeneratorOptions bad_prob;
  bad_prob.function_probability = 1.5;
  CHECK(!bad_prob.Validate().empty());
  bad_prob.function_probability = -0.1;
  CHECK(!bad_prob.Validate().empty());

  // The runner refuses to run on invalid options and says why.
  RunnerOptions ro;
  ro.gen.case_probability = 2.0;
  PqsRunner runner(
      []() -> ConnectionPtr {
        return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
      },
      ro);
  RunReport report = runner.Run();
  CHECK(!report.invalid_options.empty());
  CHECK_EQ(report.stats.databases_created, uint64_t{0});

  // The campaign layer refuses too.
  CampaignOptions co;
  co.gen.null_probability = -1.0;
  BugHuntResult hunt = HuntBug(BugId::kLikeEscapeMiss, co);
  CHECK(!hunt.detected);
  CHECK(!hunt.invalid_options.empty());  // never-hunted is distinguishable
  CHECK_EQ(hunt.databases_used, uint64_t{0});
}

// ---------------------------------------------------------------------------
// Rectified-containment property at depth 5 with dense expression features
// ---------------------------------------------------------------------------

void TestRectifiedExpressionContainment() {
  uint64_t total_checked = 0;
  for (Dialect dialect : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                          Dialect::kPostgresStrict}) {
    RunnerOptions opts;
    opts.seed = 0x5eed4 + static_cast<uint64_t>(dialect);
    opts.databases = 80;
    opts.queries_per_database = 10;
    opts.workers = expr_workers;
    opts.gen = DenseExprOptions();
    int workers = expr_workers > 0 ? expr_workers : 1;
    std::vector<minidb::CoverageMap> per_worker(
        static_cast<size_t>(workers));
    WorkerEngineFactory factory = [dialect, &per_worker](int worker)
        -> ConnectionPtr {
      auto db = std::make_unique<minidb::Database>(dialect);
      db->set_coverage_sink(&per_worker[static_cast<size_t>(worker)]);
      return db;
    };
    PqsRunner runner(std::move(factory), opts);
    RunReport report = runner.Run();
    CHECK_MSG(report.findings.empty(),
              "dialect %s: %zu false finding(s) on a clean engine",
              DialectName(dialect), report.findings.size());
    total_checked += report.stats.queries_checked;

    // Every new expression feature is actually reached (COLLATE only
    // exists in the SQLite dialect).
    minidb::CoverageMap merged;
    for (const minidb::CoverageMap& m : per_worker) merged.Merge(m);
    std::vector<minidb::Feature> expected = {
        minidb::Feature::kExprFunction,
        minidb::Feature::kExprFunctionVariadic,
        minidb::Feature::kExprCast,
        minidb::Feature::kExprCase,
        minidb::Feature::kExprCaseElse,
        minidb::Feature::kExprLikeEscape,
        minidb::Feature::kExprInListNull,
    };
    if (dialect == Dialect::kSqliteFlex) {
      expected.push_back(minidb::Feature::kExprCollate);
    }
    for (minidb::Feature f : expected) {
      CHECK_MSG(merged.Hits(f) > 0, "dialect %s: feature %s never exercised",
                DialectName(dialect), minidb::FeatureName(f));
    }

    // Depth-bucketed stats: depth-5 generation reaches past the first
    // histogram bucket, and the tallies cover every checked predicate.
    uint64_t bucket_sum = 0;
    for (int b = 0; b < RunStats::kDepthBuckets; ++b) {
      bucket_sum += report.stats.predicate_depth_buckets[b];
    }
    CHECK(bucket_sum >= report.stats.queries_checked);
    CHECK(report.stats.predicate_depth_buckets[2] +
              report.stats.predicate_depth_buckets[3] +
              report.stats.predicate_depth_buckets[4] >
          0);
    CHECK(report.stats.predicates_with_function > 0);
    CHECK(report.stats.function_calls_generated >=
          report.stats.predicates_with_function);
  }
  CHECK_MSG(total_checked >= 2000,
            "only %llu rectified queries checked across dialects",
            static_cast<unsigned long long>(total_checked));
}

// ---------------------------------------------------------------------------
// Differential sweep vs real sqlite3 (always on when the library exists)
// ---------------------------------------------------------------------------

void TestRealSqliteExpressionSweep() {
  if (!SqliteConnection::Available()) {
    std::printf("  (real sqlite3 unavailable; sweep skipped)\n");
    return;
  }
  RunnerOptions opts;
  opts.seed = 0xE445;
  opts.databases = 120;
  opts.queries_per_database = 12;
  opts.workers = expr_workers;
  opts.gen = DenseExprOptions();
  EngineFactory factory = []() -> ConnectionPtr {
    return std::make_unique<SqliteConnection>();
  };
  PqsRunner runner(factory, opts);
  RunReport report = runner.Run();
  CHECK_MSG(report.findings.empty(),
            "real sqlite: %zu false finding(s) in %llu checked queries",
            report.findings.size(),
            static_cast<unsigned long long>(report.stats.queries_checked));
  CHECK(report.stats.queries_checked > 700);
  CHECK(report.stats.predicates_with_function > 0);
}

// ---------------------------------------------------------------------------
// Every new bug class is found by HuntBug within the default budget
// ---------------------------------------------------------------------------

void TestNewBugsDetectedByExpectedOracle() {
  CampaignOptions options;
  options.seed = 20200604;
  options.reduce = false;  // reduction has its own test
  options.workers = expr_workers;
  for (BugId bug : {BugId::kLikeEscapeMiss, BugId::kCastTruncAffinity,
                    BugId::kCollateNocaseRange, BugId::kCoalesceFirstNull,
                    BugId::kCaseElseSkip, BugId::kInListNullSemantics}) {
    BugHuntResult r = HuntBug(bug, options);
    CHECK_MSG(r.detected, "bug %s not detected within the default budget",
              r.name);
    CHECK_MSG(r.oracle == minidb::LookupBug(bug).oracle,
              "bug %s fired the %s oracle", r.name, OracleName(r.oracle));
  }
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      pqs::expr_workers = std::atoi(argv[i + 1]);
      ++i;
    }
  }
  pqs::TestFunctionSemantics();
  pqs::TestCastSemantics();
  pqs::TestCaseSemantics();
  pqs::TestLikeEscapeAndCollate();
  pqs::TestRegistryShape();
  pqs::TestExpressionBugHooks();
  pqs::TestRectifyStructure();
  pqs::TestGeneratorOptionsValidate();
  pqs::TestRectifiedExpressionContainment();
  pqs::TestRealSqliteExpressionSweep();
  pqs::TestNewBugsDetectedByExpectedOracle();
  return pqs::test::Summary("test_expr_semantics");
}
