// LatencyRecorder percentile correctness: exact integer nearest-rank at
// the boundaries where the old floating-point "+ 0.9999999" ceil hack was
// off by one (exactly integral ranks like p=20 over n=5), plus the
// clamping and small-n behavior JsonFields depends on.
#include <string>

#include "bench/recorder.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

// LatencyRecorder owns a mutex, so it is filled in place rather than
// returned by value. Records in descending order so the tests also cover
// the sort.
void Fill(bench::LatencyRecorder* r, int n) {
  for (int i = n; i >= 1; --i) r->Record(static_cast<double>(i));
}

void TestEmptyAndSingle() {
  bench::LatencyRecorder empty;
  CHECK_EQ(empty.count(), static_cast<size_t>(0));
  CHECK_EQ(empty.Percentile(50), 0.0);
  CHECK_EQ(empty.Mean(), 0.0);

  bench::LatencyRecorder one;
  one.Record(7.5);
  // n=1: every percentile is the single sample.
  CHECK_EQ(one.Percentile(0), 7.5);
  CHECK_EQ(one.Percentile(0.1), 7.5);
  CHECK_EQ(one.Percentile(50), 7.5);
  CHECK_EQ(one.Percentile(99.9), 7.5);
  CHECK_EQ(one.Percentile(100), 7.5);
}

void TestIntegralRanks() {
  // Samples 1..5. Nearest-rank: rank = ceil(p/100 * 5), 1-based.
  // p=20 → rank 1 exactly; the old FP version computed
  // 0.2*5 = 1.0000000000000002, added 0.9999999, and returned rank 2.
  bench::LatencyRecorder r;
  Fill(&r, 5);
  CHECK_EQ(r.Percentile(20), 1.0);
  CHECK_EQ(r.Percentile(40), 2.0);
  CHECK_EQ(r.Percentile(60), 3.0);
  CHECK_EQ(r.Percentile(80), 4.0);
  CHECK_EQ(r.Percentile(100), 5.0);
  // Just past an integral rank steps to the next element.
  CHECK_EQ(r.Percentile(20.1), 2.0);
  CHECK_EQ(r.Percentile(80.1), 5.0);

  // Samples 1..4: p=25/50/75 are integral ranks 1/2/3.
  bench::LatencyRecorder q;
  Fill(&q, 4);
  CHECK_EQ(q.Percentile(25), 1.0);
  CHECK_EQ(q.Percentile(50), 2.0);
  CHECK_EQ(q.Percentile(75), 3.0);

  // Samples 1..10: p=50 → rank 5, p=99 → rank ceil(9.9)=10.
  bench::LatencyRecorder d;
  Fill(&d, 10);
  CHECK_EQ(d.Percentile(50), 5.0);
  CHECK_EQ(d.Percentile(99), 10.0);
}

void TestTailWithFewSamples() {
  // p=99.9 with n far below 1000 must clamp into range, not overflow or
  // skip the last element: rank = ceil(0.999 * n).
  for (int n : {3, 10, 100}) {
    bench::LatencyRecorder r;
    Fill(&r, n);
    CHECK_EQ(r.Percentile(99.9), static_cast<double>(n));
  }
}

void TestExactPerMilleRanks() {
  // n=1000, samples 1..1000: p=99.9 → rank exactly 999 (not 1000),
  // p=50 → rank exactly 500.
  bench::LatencyRecorder r;
  Fill(&r, 1000);
  CHECK_EQ(r.Percentile(99.9), 999.0);
  CHECK_EQ(r.Percentile(50), 500.0);
  CHECK_EQ(r.Percentile(99), 990.0);
  // n=2000: p=99.9 → ceil(1998.0) = 1998.
  bench::LatencyRecorder big;
  Fill(&big, 2000);
  CHECK_EQ(big.Percentile(99.9), 1998.0);
}

void TestClamps() {
  bench::LatencyRecorder r;
  Fill(&r, 9);
  CHECK_EQ(r.Percentile(-5), 1.0);
  CHECK_EQ(r.Percentile(0), 1.0);
  CHECK_EQ(r.Percentile(100), 9.0);
  CHECK_EQ(r.Percentile(250), 9.0);
}

void TestJsonFieldsMatchesComponents() {
  bench::LatencyRecorder r;
  Fill(&r, 200);
  char expected[256];
  std::snprintf(expected, sizeof expected,
                "\"count\": %zu, \"mean_ms\": %.4f, \"p50_ms\": %.4f, "
                "\"p99_ms\": %.4f, \"p999_ms\": %.4f",
                r.count(), r.Mean() * 1e3, r.Percentile(50) * 1e3,
                r.Percentile(99) * 1e3, r.Percentile(99.9) * 1e3);
  // The single-snapshot JsonFields must agree exactly with the individual
  // accessors when nothing records concurrently.
  CHECK_EQ(r.JsonFields(), std::string(expected));

  bench::LatencyRecorder empty;
  CHECK_EQ(empty.JsonFields(),
           std::string("\"count\": 0, \"mean_ms\": 0.0000, "
                       "\"p50_ms\": 0.0000, \"p99_ms\": 0.0000, "
                       "\"p999_ms\": 0.0000"));
}

}  // namespace
}  // namespace pqs

int main() {
  pqs::TestEmptyAndSingle();
  pqs::TestIntegralRanks();
  pqs::TestTailWithFewSamples();
  pqs::TestExactPerMilleRanks();
  pqs::TestClamps();
  pqs::TestJsonFieldsMatchesComponents();
  return pqs::test::Summary("test_recorder");
}
