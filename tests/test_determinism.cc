// Same-seed determinism: two runs with identical options must produce
// identical reports, down to the rendered SQL of every finding.
#include <memory>

#include "src/minidb/database.h"
#include "src/pqs/runner.h"
#include "src/sqlparser/render.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

RunReport BuggyRun(uint64_t seed) {
  RunnerOptions options;
  options.seed = seed;
  options.databases = 30;
  options.queries_per_database = 15;
  EngineFactory factory = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(
        Dialect::kSqliteFlex,
        BugConfig::Single(BugId::kPartialIndexIsNotInference));
  };
  PqsRunner runner(factory, options);
  return runner.Run();
}

void TestSameSeedSameReport() {
  RunReport a = BuggyRun(123);
  RunReport b = BuggyRun(123);
  CHECK_EQ(a.stats.statements_executed, b.stats.statements_executed);
  CHECK_EQ(a.stats.queries_checked, b.stats.queries_checked);
  CHECK_EQ(a.stats.rectified_true, b.stats.rectified_true);
  CHECK_EQ(a.stats.rectified_false, b.stats.rectified_false);
  CHECK_EQ(a.stats.rectified_null, b.stats.rectified_null);
  CHECK_EQ(a.stats.constraint_violations, b.stats.constraint_violations);
  CHECK_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size() && i < b.findings.size(); ++i) {
    CHECK_EQ(RenderScript(a.findings[i].statements, Dialect::kSqliteFlex),
             RenderScript(b.findings[i].statements, Dialect::kSqliteFlex));
    CHECK(a.findings[i].oracle == b.findings[i].oracle);
  }
}

void TestDifferentSeedsDiffer() {
  // Not a strict requirement of the API, but a sanity check that the seed
  // actually feeds the generator.
  RunReport a = BuggyRun(1);
  RunReport b = BuggyRun(2);
  CHECK(a.stats.statements_executed != b.stats.statements_executed ||
        a.stats.rectified_true != b.stats.rectified_true);
}

}  // namespace
}  // namespace pqs

int main() {
  pqs::TestSameSeedSameReport();
  pqs::TestDifferentSeedsDiffer();
  return pqs::test::Summary("test_determinism");
}
