// Same-seed determinism: two runs with identical options must produce
// identical reports, down to the rendered SQL of every finding — and a
// sharded N-worker run must merge to exactly the 1-worker report.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/interp/bytecode.h"
#include "src/minidb/database.h"
#include "src/obs/telemetry.h"
#include "src/pqs/campaign.h"
#include "src/pqs/runner.h"
#include "src/sqlparser/render.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

RunReport BuggyRun(uint64_t seed, int workers = 1,
                   bool stop_on_first_finding = false,
                   BugId bug = BugId::kPartialIndexIsNotInference) {
  RunnerOptions options;
  options.seed = seed;
  options.databases = 30;
  options.queries_per_database = 15;
  options.workers = workers;
  options.stop_on_first_finding = stop_on_first_finding;
  // Crank the widened query-space features so the byte-identity guarantee
  // demonstrably covers joins, DISTINCT, ORDER BY, LIMIT — and the typed
  // expression subsystem (functions, CAST, CASE, COLLATE, LIKE ESCAPE).
  options.gen.explicit_join_probability = 0.8;
  options.gen.third_table_probability = 0.6;
  options.gen.distinct_probability = 0.5;
  options.gen.order_by_probability = 0.6;
  options.gen.limit_probability = 0.6;
  options.gen.function_probability = 0.5;
  options.gen.cast_probability = 0.3;
  options.gen.case_probability = 0.25;
  options.gen.collate_probability = 0.5;
  options.gen.like_escape_probability = 0.5;
  EngineFactory factory = [bug]() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(Dialect::kSqliteFlex,
                                              BugConfig::Single(bug));
  };
  PqsRunner runner(factory, options);
  return runner.Run();
}

void TestSameSeedSameReport() {
  RunReport a = BuggyRun(123);
  RunReport b = BuggyRun(123);
  CHECK_EQ(a.stats.statements_executed, b.stats.statements_executed);
  CHECK_EQ(a.stats.queries_checked, b.stats.queries_checked);
  CHECK_EQ(a.stats.rectified_true, b.stats.rectified_true);
  CHECK_EQ(a.stats.rectified_false, b.stats.rectified_false);
  CHECK_EQ(a.stats.rectified_null, b.stats.rectified_null);
  CHECK_EQ(a.stats.constraint_violations, b.stats.constraint_violations);
  for (int i = 0; i < RunStats::kDepthBuckets; ++i) {
    CHECK_EQ(a.stats.predicate_depth_buckets[i],
             b.stats.predicate_depth_buckets[i]);
  }
  CHECK_EQ(a.stats.predicates_with_function,
           b.stats.predicates_with_function);
  CHECK_EQ(a.stats.function_calls_generated,
           b.stats.function_calls_generated);
  CHECK_EQ(a.stats.actions_insert, b.stats.actions_insert);
  CHECK_EQ(a.stats.actions_update, b.stats.actions_update);
  CHECK_EQ(a.stats.actions_delete, b.stats.actions_delete);
  CHECK_EQ(a.stats.actions_create_index, b.stats.actions_create_index);
  CHECK_EQ(a.stats.actions_drop_index, b.stats.actions_drop_index);
  CHECK_EQ(a.stats.actions_maintenance, b.stats.actions_maintenance);
  CHECK_EQ(a.stats.state_compares, b.stats.state_compares);
  CHECK_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size() && i < b.findings.size(); ++i) {
    CHECK_EQ(RenderScript(a.findings[i].statements, Dialect::kSqliteFlex),
             RenderScript(b.findings[i].statements, Dialect::kSqliteFlex));
    CHECK(a.findings[i].oracle == b.findings[i].oracle);
  }
}

// Sharded execution is invisible in the merged report: stats, finding
// order, and rendered SQL all match the sequential run exactly, with and
// without stop_on_first_finding (where the merge truncates at the first
// finding-bearing database, just as the sequential loop returns there).
void TestShardedRunnerMatchesSequential() {
  // A scan-path bug, a join-path bug, an expression-subsystem bug, and an
  // index-maintenance bug: the sharding guarantee must hold for campaigns
  // exercising the widened query space, the typed expression grammar, and
  // the mutating statement stream alike.
  for (BugId bug : {BugId::kPartialIndexIsNotInference,
                    BugId::kJoinDupRightMatch, BugId::kLikeEscapeMiss,
                    BugId::kUpdateIndexStale}) {
    for (bool stop_on_first : {false, true}) {
      RunReport sequential = BuggyRun(123, /*workers=*/1, stop_on_first, bug);
      for (int workers : {2, 4}) {
        RunReport sharded = BuggyRun(123, workers, stop_on_first, bug);
        CHECK_EQ(sharded.stats.statements_executed,
                 sequential.stats.statements_executed);
        CHECK_EQ(sharded.stats.queries_checked,
                 sequential.stats.queries_checked);
        CHECK_EQ(sharded.stats.queries_skipped,
                 sequential.stats.queries_skipped);
        CHECK_EQ(sharded.stats.databases_created,
                 sequential.stats.databases_created);
        CHECK_EQ(sharded.stats.rectified_true,
                 sequential.stats.rectified_true);
        CHECK_EQ(sharded.stats.rectified_false,
                 sequential.stats.rectified_false);
        CHECK_EQ(sharded.stats.rectified_null,
                 sequential.stats.rectified_null);
        CHECK_EQ(sharded.stats.constraint_violations,
                 sequential.stats.constraint_violations);
        CHECK_EQ(sharded.stats.join_conditions_rectified,
                 sequential.stats.join_conditions_rectified);
        CHECK_EQ(sharded.stats.limited_queries,
                 sequential.stats.limited_queries);
        for (int i = 0; i < RunStats::kDepthBuckets; ++i) {
          CHECK_EQ(sharded.stats.predicate_depth_buckets[i],
                   sequential.stats.predicate_depth_buckets[i]);
        }
        CHECK_EQ(sharded.stats.predicates_with_function,
                 sequential.stats.predicates_with_function);
        CHECK_EQ(sharded.stats.function_calls_generated,
                 sequential.stats.function_calls_generated);
        CHECK_EQ(sharded.stats.actions_insert,
                 sequential.stats.actions_insert);
        CHECK_EQ(sharded.stats.actions_update,
                 sequential.stats.actions_update);
        CHECK_EQ(sharded.stats.actions_delete,
                 sequential.stats.actions_delete);
        CHECK_EQ(sharded.stats.actions_create_index,
                 sequential.stats.actions_create_index);
        CHECK_EQ(sharded.stats.actions_drop_index,
                 sequential.stats.actions_drop_index);
        CHECK_EQ(sharded.stats.actions_maintenance,
                 sequential.stats.actions_maintenance);
        CHECK_EQ(sharded.stats.state_compares,
                 sequential.stats.state_compares);
        CHECK_EQ(sharded.findings.size(), sequential.findings.size());
        for (size_t i = 0;
             i < sharded.findings.size() && i < sequential.findings.size();
             ++i) {
          CHECK(sharded.findings[i].oracle == sequential.findings[i].oracle);
          CHECK_EQ(RenderScript(sharded.findings[i].statements,
                                Dialect::kSqliteFlex),
                   RenderScript(sequential.findings[i].statements,
                                Dialect::kSqliteFlex));
        }
      }
    }
  }
}

// The acceptance invariant of the sharded campaign engine: a 4-worker
// RunCampaign merges to the same finding set and the same per-bug
// statement / oracle tallies as the 1-worker campaign (order-insensitive:
// finding scripts are compared as sorted multisets).
void TestShardedCampaignMatchesSequential() {
  CampaignOptions options;
  options.seed = 20200604;
  options.databases_per_bug = 120;
  options.queries_per_database = 20;
  options.reduce = true;  // reduction must be deterministic too
  // The sqlite-dialect registry now carries join/DISTINCT-path bugs, so
  // this campaign covers the widened query space; crank the feature
  // probabilities to make that coverage dense.
  options.gen.explicit_join_probability = 0.7;
  options.gen.distinct_probability = 0.4;
  options.gen.order_by_probability = 0.5;

  auto run = [&](int workers) {
    CampaignOptions o = options;
    o.workers = workers;
    return RunCampaign(Dialect::kSqliteFlex, o);
  };
  CampaignReport sequential = run(1);
  CampaignReport sharded = run(4);

  CHECK_EQ(sharded.results.size(), sequential.results.size());
  for (size_t i = 0;
       i < sharded.results.size() && i < sequential.results.size(); ++i) {
    const BugHuntResult& a = sharded.results[i];
    const BugHuntResult& b = sequential.results[i];
    CHECK_EQ(a.detected, b.detected);
    CHECK(a.oracle == b.oracle);
    CHECK_EQ(a.statements_used, b.statements_used);
    CHECK_EQ(a.databases_used, b.databases_used);
  }
  for (OracleKind kind : {OracleKind::kContainment, OracleKind::kError,
                          OracleKind::kCrash}) {
    CHECK_EQ(sharded.CountByOracle(kind), sequential.CountByOracle(kind));
  }

  auto finding_set = [](const CampaignReport& report) {
    std::vector<std::string> scripts;
    for (const BugHuntResult& r : report.results) {
      if (!r.detected) continue;
      scripts.push_back(RenderScript(r.reduced.statements, report.dialect));
    }
    std::sort(scripts.begin(), scripts.end());
    return scripts;
  };
  CHECK(finding_set(sharded) == finding_set(sequential));
}

// Serializes everything a report asserts on — the oracle-visible stats and
// every finding's rendered script — so two reports can be compared as one
// byte string.
std::string Fingerprint(const RunReport& r) {
  std::string out;
  auto num = [&out](uint64_t v) {
    out += std::to_string(v);
    out += '|';
  };
  num(r.stats.statements_executed);
  num(r.stats.queries_checked);
  num(r.stats.queries_skipped);
  num(r.stats.databases_created);
  num(r.stats.rectified_true);
  num(r.stats.rectified_false);
  num(r.stats.rectified_null);
  num(r.stats.constraint_violations);
  num(r.stats.join_conditions_rectified);
  num(r.stats.limited_queries);
  for (int i = 0; i < RunStats::kDepthBuckets; ++i) {
    num(r.stats.predicate_depth_buckets[i]);
  }
  num(r.stats.predicates_with_function);
  num(r.stats.function_calls_generated);
  num(r.stats.norec_checks);
  num(r.stats.tlp_checks);
  num(r.stats.tlp_partition_queries);
  num(r.stats.aggregate_queries);
  num(r.stats.group_by_queries);
  num(r.stats.having_queries);
  num(r.stats.actions_insert);
  num(r.stats.actions_update);
  num(r.stats.actions_delete);
  num(r.stats.actions_create_index);
  num(r.stats.actions_drop_index);
  num(r.stats.actions_maintenance);
  num(r.stats.state_compares);
  num(r.stats.txn_begins);
  num(r.stats.txn_commits);
  num(r.stats.txn_rollbacks);
  num(r.stats.txn_conflicts);
  num(r.stats.txn_snapshot_checks);
  num(r.stats.txn_serial_replays);
  num(r.findings.size());
  for (const Finding& f : r.findings) {
    num(static_cast<uint64_t>(f.oracle));
    out += RenderScript(f.statements, Dialect::kSqliteFlex);
    out += '|';
  }
  return out;
}

// The bytecode evaluator is a pure hot-path substitution: flipping the
// process-wide kill switch (tree evaluator everywhere) must leave every
// report byte-identical, for the containment family and the metamorphic
// families alike (DESIGN §11 differential safety).
void TestBytecodeOnOffSameReport() {
  for (OracleFamily family :
       {OracleFamily::kContainment, OracleFamily::kNorec, OracleFamily::kTlp}) {
    auto run = [family]() {
      RunnerOptions options;
      options.seed = 77;
      options.databases = 20;
      options.queries_per_database = 15;
      options.family = family;
      options.gen.explicit_join_probability = 0.6;
      options.gen.distinct_probability = 0.4;
      options.gen.order_by_probability = 0.5;
      options.gen.function_probability = 0.5;
      options.gen.cast_probability = 0.3;
      options.gen.case_probability = 0.25;
      EngineFactory factory = []() -> ConnectionPtr {
        return std::make_unique<minidb::Database>(
            Dialect::kSqliteFlex,
            BugConfig::Single(BugId::kPartialIndexIsNotInference));
      };
      PqsRunner runner(factory, options);
      return runner.Run();
    };
    CHECK(BytecodeEnabled());
    RunReport with_bytecode = run();
    SetBytecodeEnabled(false);
    RunReport tree_only = run();
    SetBytecodeEnabled(true);
    CHECK_EQ(Fingerprint(with_bytecode), Fingerprint(tree_only));
  }
}

// Telemetry is observe-only: flipping its process-wide kill switch must
// leave every report byte-identical (same pattern as the bytecode switch).
// With telemetry off the merged metrics registry is additionally all-zero.
void TestTelemetryOnOffSameReport() {
  for (OracleFamily family :
       {OracleFamily::kContainment, OracleFamily::kNorec, OracleFamily::kTlp}) {
    auto run = [family]() {
      RunnerOptions options;
      options.seed = 99;
      options.databases = 20;
      options.queries_per_database = 15;
      options.family = family;
      options.gen.explicit_join_probability = 0.6;
      options.gen.distinct_probability = 0.4;
      options.gen.order_by_probability = 0.5;
      EngineFactory factory = []() -> ConnectionPtr {
        return std::make_unique<minidb::Database>(
            Dialect::kSqliteFlex,
            BugConfig::Single(BugId::kPartialIndexIsNotInference));
      };
      PqsRunner runner(factory, options);
      return runner.Run();
    };
    CHECK(obs::TelemetryEnabled());
    RunReport with_telemetry = run();
    obs::SetTelemetryEnabled(false);
    RunReport without_telemetry = run();
    obs::SetTelemetryEnabled(true);
    CHECK_EQ(Fingerprint(with_telemetry), Fingerprint(without_telemetry));
    // The registry itself is part of what telemetry adds: off ⇒ all-zero.
    CHECK_EQ(without_telemetry.metrics.ToJson(false),
             obs::MetricsRegistry().ToJson(false));
    CHECK(with_telemetry.metrics.counter(
              obs::Counter::kStatementsExecuted) > 0);
    // Findings carry flight provenance exactly when telemetry was on.
    for (const Finding& f : with_telemetry.findings) {
      CHECK(!f.flight.empty());
    }
    for (const Finding& f : without_telemetry.findings) {
      CHECK(f.flight.empty());
    }
  }
}

// Transaction workloads (gen.txn_sessions > 1 routes the runner into the
// interleaved K-session branch, DESIGN §14) obey the same sharding
// contract: an N-worker run merges byte-identically to the sequential one,
// the transaction counters included, and every finding's flight ring
// carries the transaction lifecycle events of the session that found it.
void TestShardedTxnWorkloadMatchesSequential() {
  auto run = [](int workers, bool stop_on_first) {
    RunnerOptions options;
    options.seed = 777;
    options.databases = 40;
    options.queries_per_database = 5;
    options.workers = workers;
    options.stop_on_first_finding = stop_on_first;
    options.gen.txn_sessions = 3;
    EngineFactory factory = []() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(
          Dialect::kSqliteFlex, BugConfig::Single(BugId::kTxnLostUpdate));
    };
    PqsRunner runner(factory, options);
    return runner.Run();
  };
  for (bool stop_on_first : {false, true}) {
    RunReport sequential = run(1, stop_on_first);
    CHECK(!sequential.findings.empty());
    CHECK(sequential.stats.txn_commits > 0);
    for (const Finding& f : sequential.findings) {
      bool saw_txn_event = false;
      for (const obs::FlightEvent& e : f.flight) {
        saw_txn_event |= e.kind == obs::EventKind::kTxnBegin ||
                         e.kind == obs::EventKind::kTxnCommit ||
                         e.kind == obs::EventKind::kTxnAbort;
      }
      CHECK(saw_txn_event);
    }
    for (int workers : {2, 4}) {
      CHECK_EQ(Fingerprint(run(workers, stop_on_first)),
               Fingerprint(sequential));
    }
  }
}

void TestDifferentSeedsDiffer() {
  // Not a strict requirement of the API, but a sanity check that the seed
  // actually feeds the generator.
  RunReport a = BuggyRun(1);
  RunReport b = BuggyRun(2);
  CHECK(a.stats.statements_executed != b.stats.statements_executed ||
        a.stats.rectified_true != b.stats.rectified_true);
}

}  // namespace
}  // namespace pqs

int main() {
  pqs::TestSameSeedSameReport();
  pqs::TestShardedRunnerMatchesSequential();
  pqs::TestShardedCampaignMatchesSequential();
  pqs::TestBytecodeOnOffSameReport();
  pqs::TestTelemetryOnOffSameReport();
  pqs::TestShardedTxnWorkloadMatchesSequential();
  pqs::TestDifferentSeedsDiffer();
  return pqs::test::Summary("test_determinism");
}
