// Delta-debugging reduction: the reduced finding must still reproduce the
// bug against the reference engine and must not be larger than the input.
#include <memory>

#include "src/minidb/database.h"
#include "src/pqs/campaign.h"
#include "src/pqs/reducer.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

void TestReductionKeepsReproducing() {
  CampaignOptions options;
  options.seed = 20200604;
  options.databases_per_bug = 200;
  options.queries_per_database = 25;
  options.reduce = false;  // get the raw finding
  BugHuntResult hunt = HuntBug(BugId::kPartialIndexIsNotInference, options);
  CHECK_MSG(hunt.detected, "bug not detected within the test budget");
  if (!hunt.detected) return;

  EngineFactory buggy = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(
        Dialect::kSqliteFlex,
        BugConfig::Single(BugId::kPartialIndexIsNotInference));
  };
  EngineFactory reference = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
  };

  CHECK(FindingReproduces(buggy, hunt.reduced, &reference));
  Finding reduced = ReduceFinding(buggy, hunt.reduced, &reference);
  CHECK(FindingReproduces(buggy, reduced, &reference));
  CHECK(reduced.statements.size() <= hunt.reduced.statements.size() + 1);
  CHECK(reduced.statements.size() >= 2);  // at least CREATE TABLE + query
  CHECK(reduced.oracle == hunt.reduced.oracle);

  // A clean engine must NOT reproduce the reduced finding against itself.
  CHECK(!FindingReproduces(reference, reduced, &reference));
}

void TestReductionShrinksTypicalFinding() {
  CampaignOptions options;
  options.seed = 99;
  options.databases_per_bug = 200;
  options.queries_per_database = 25;
  options.reduce = true;
  BugHuntResult hunt = HuntBug(BugId::kUniqueNullLost, options);
  CHECK_MSG(hunt.detected, "bug not detected within the test budget");
  if (!hunt.detected) return;
  // Paper Figure 2: reduced cases average ~3.7 statements, max 8. Allow
  // slack but insist on real reduction.
  CHECK_MSG(hunt.reduced.statements.size() <= 10,
            "reduced to %zu statements", hunt.reduced.statements.size());
}

}  // namespace
}  // namespace pqs

int main() {
  pqs::TestReductionKeepsReproducing();
  pqs::TestReductionShrinksTypicalFinding();
  return pqs::test::Summary("test_reducer");
}
