// PR-3 query-space widening: join-aware pivot rectification property test
// plus direct engine semantics checks for the new SELECT features.
//
// The property (paper §3.2/§3.3, extended to multi-table pivots): for every
// seeded generation, the rectified query — joins, DISTINCT, ORDER BY and
// pivot-safe LIMIT included — evaluated on a clean MiniDB engine must
// contain the pivot row, i.e. a clean engine yields zero findings. The
// same sessions' coverage maps prove each new AST node (INNER/LEFT/CROSS
// join, DISTINCT, ORDER BY, LIMIT) was actually exercised.
//
// Accepts `--workers N` (the CI ThreadSanitizer job passes 4); the
// property is worker-count-invariant.
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "src/minidb/database.h"
#include "src/pqs/runner.h"
#include "src/sqlite3db/sqlite_connection.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

int property_workers = 1;

void TestRectifiedJoinQueriesContainPivot() {
  uint64_t total_checked = 0;
  for (Dialect dialect : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                          Dialect::kPostgresStrict}) {
    RunnerOptions opts;
    opts.seed = 0x9a1b2c3d + static_cast<uint64_t>(dialect);
    opts.databases = 50;
    opts.queries_per_database = 10;
    opts.workers = property_workers;
    int workers = property_workers > 0 ? property_workers : 1;
    std::vector<minidb::CoverageMap> per_worker(
        static_cast<size_t>(workers));
    WorkerEngineFactory factory = [dialect, &per_worker](int worker)
        -> ConnectionPtr {
      auto db = std::make_unique<minidb::Database>(dialect);
      db->set_coverage_sink(&per_worker[static_cast<size_t>(worker)]);
      return db;
    };
    PqsRunner runner(std::move(factory), opts);
    RunReport report = runner.Run();

    // The containment property: a clean engine never trips any oracle.
    CHECK_MSG(report.findings.empty(),
              "dialect %s: %zu false finding(s) on a clean engine",
              DialectName(dialect), report.findings.size());
    CHECK(!report.unsupported_engine);
    total_checked += report.stats.queries_checked;

    // The widened grammar is actually reached: every new AST node shows up
    // in the session's feature coverage.
    minidb::CoverageMap merged;
    for (const minidb::CoverageMap& m : per_worker) merged.Merge(m);
    for (minidb::Feature f :
         {minidb::Feature::kJoinInner, minidb::Feature::kJoinLeft,
          minidb::Feature::kJoinCross, minidb::Feature::kLeftJoinNullPad,
          minidb::Feature::kSelectDistinct, minidb::Feature::kSelectOrderBy,
          minidb::Feature::kSelectLimit}) {
      CHECK_MSG(merged.Hits(f) > 0, "dialect %s: feature %s never exercised",
                DialectName(dialect), minidb::FeatureName(f));
    }
    CHECK(report.stats.join_conditions_rectified > 0);
    CHECK(report.stats.limited_queries > 0);
  }
  CHECK_MSG(total_checked >= 1000,
            "only %llu rectified queries checked across dialects",
            static_cast<unsigned long long>(total_checked));
}

// When real libsqlite3 is linked in, the same property must hold against
// the genuine engine: rendered join/DISTINCT/ORDER/LIMIT queries replayed
// through sqlite3 never lose the pivot.
void TestRealSqliteSweepHasNoFalseFindings() {
  if (!SqliteConnection::Available()) {
    std::printf("  (real sqlite3 unavailable; sweep skipped)\n");
    return;
  }
  RunnerOptions opts;
  opts.seed = 0xCAFE2020;
  opts.databases = 60;
  opts.queries_per_database = 10;
  opts.workers = property_workers;
  EngineFactory factory = []() -> ConnectionPtr {
    return std::make_unique<SqliteConnection>();
  };
  PqsRunner runner(factory, opts);
  RunReport report = runner.Run();
  CHECK_MSG(report.findings.empty(),
            "real sqlite: %zu false finding(s) in %llu checked queries",
            report.findings.size(),
            static_cast<unsigned long long>(report.stats.queries_checked));
  CHECK(report.stats.queries_checked > 300);
}

std::unique_ptr<CreateTableStmt> IntTable(const std::string& table,
                                          const std::string& column) {
  auto ct = std::make_unique<CreateTableStmt>();
  ct->table_name = table;
  ColumnDef def;
  def.name = column;
  def.declared_type = "INT";
  def.affinity = Affinity::kInteger;
  ct->columns.push_back(def);
  return ct;
}

void InsertInts(minidb::Database* db, const std::string& table,
                std::initializer_list<int64_t> values) {
  for (int64_t v : values) {
    InsertStmt ins;
    ins.table_name = table;
    ins.rows.emplace_back();
    ins.rows.back().push_back(MakeIntLiteral(v));
    CHECK(db->Execute(ins).ok());
  }
}

JoinClause EqJoin(JoinKind kind, const std::string& right,
                  const std::string& lt, const std::string& lc,
                  const std::string& rc) {
  JoinClause join;
  join.kind = kind;
  join.table = right;
  join.on = MakeBinary(BinaryOp::kEq, MakeColumnRef(lt, lc),
                       MakeColumnRef(right, rc));
  return join;
}

void TestEngineJoinSemantics() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*IntTable("t0", "c0")).ok());
  CHECK(db.Execute(*IntTable("t1", "c1")).ok());
  InsertInts(&db, "t0", {1, 2});
  InsertInts(&db, "t1", {1, 3});

  // INNER: only the matching combination.
  SelectStmt inner;
  inner.from_tables = {"t0"};
  inner.joins.push_back(EqJoin(JoinKind::kInner, "t1", "t0", "c0", "c1"));
  StatementResult r = db.Execute(inner);
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(1));

  // LEFT: the unmatched left row survives null-padded.
  SelectStmt left;
  left.from_tables = {"t0"};
  left.joins.push_back(EqJoin(JoinKind::kLeft, "t1", "t0", "c0", "c1"));
  r = db.Execute(left);
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(2));
  bool saw_padded = false;
  for (const auto& row : r.rows) {
    CHECK_EQ(row.size(), static_cast<size_t>(2));
    saw_padded |= !row[0].is_null() && row[1].is_null();
  }
  CHECK(saw_padded);

  // CROSS: full product, no ON.
  SelectStmt cross;
  cross.from_tables = {"t0"};
  JoinClause cj;
  cj.kind = JoinKind::kCross;
  cj.table = "t1";
  cross.joins.push_back(std::move(cj));
  r = db.Execute(cross);
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(4));
}

void TestEngineDistinctOrderLimit() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*IntTable("t0", "c0")).ok());
  InsertInts(&db, "t0", {3, 1, 3, 2, 1});

  SelectStmt select;
  select.from_tables = {"t0"};
  select.distinct = true;
  OrderByItem key;
  key.expr = MakeColumnRef("t0", "c0");
  key.descending = true;
  select.order_by.push_back(std::move(key));
  StatementResult r = db.Execute(select);
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(3));  // DISTINCT dedup
  CHECK(ValueEquals(r.rows[0][0], SqlValue::Int(3)));  // DESC order
  CHECK(ValueEquals(r.rows[1][0], SqlValue::Int(2)));
  CHECK(ValueEquals(r.rows[2][0], SqlValue::Int(1)));

  select.limit = 2;
  r = db.Execute(select);
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(2));
  CHECK(ValueEquals(r.rows[1][0], SqlValue::Int(2)));

  // NULLs sort first ascending (the model all dialect renderings pin).
  InsertStmt null_row;
  null_row.table_name = "t0";
  null_row.rows.emplace_back();
  null_row.rows.back().push_back(MakeNullLiteral());
  CHECK(db.Execute(null_row).ok());
  SelectStmt asc;
  asc.from_tables = {"t0"};
  OrderByItem asc_key;
  asc_key.expr = MakeColumnRef("t0", "c0");
  asc.order_by.push_back(std::move(asc_key));
  r = db.Execute(asc);
  CHECK(r.ok());
  CHECK(!r.rows.empty() && r.rows[0][0].is_null());
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      pqs::property_workers = std::atoi(argv[i + 1]);
      ++i;
    }
  }
  pqs::TestRectifiedJoinQueriesContainPivot();
  pqs::TestRealSqliteSweepHasNoFalseFindings();
  pqs::TestEngineJoinSemantics();
  pqs::TestEngineDistinctOrderLimit();
  return pqs::test::Summary("test_join_pivot");
}
