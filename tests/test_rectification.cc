// Algorithm-3 rectification: on a clean engine the rectified query must
// always contain the pivot row (zero containment findings), and over enough
// queries all three raw-outcome branches (T/F/N) must fire.
#include <memory>

#include "src/minidb/database.h"
#include "src/pqs/runner.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

RunReport CleanRun(Dialect dialect, bool rectify, uint64_t seed) {
  RunnerOptions options;
  options.seed = seed;
  options.databases = 12;
  options.queries_per_database = 25;
  options.gen.rectify = rectify;
  EngineFactory factory = [dialect]() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(dialect);
  };
  PqsRunner runner(factory, options);
  return runner.Run();
}

void TestCleanEngineHasNoFindings() {
  for (Dialect dialect : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                          Dialect::kPostgresStrict}) {
    RunReport report = CleanRun(dialect, /*rectify=*/true, /*seed=*/42);
    CHECK_MSG(report.findings.empty(),
              "dialect %d produced %zu findings on a clean engine",
              static_cast<int>(dialect), report.findings.size());
    CHECK(report.stats.queries_checked > 100);
  }
}

void TestAllThreeBranchesFire() {
  RunReport report =
      CleanRun(Dialect::kSqliteFlex, /*rectify=*/true, /*seed=*/7);
  CHECK(report.stats.rectified_true > 0);
  CHECK(report.stats.rectified_false > 0);
  CHECK(report.stats.rectified_null > 0);
  CHECK_EQ(report.stats.rectified_true + report.stats.rectified_false +
               report.stats.rectified_null,
           report.stats.queries_checked);
}

void TestNoRectifyStillTalliesAndSkipsCheck() {
  RunReport report =
      CleanRun(Dialect::kSqliteFlex, /*rectify=*/false, /*seed=*/7);
  // Raw outcomes are still tallied; without rectification the containment
  // check is undefined, so a clean engine must still yield zero findings.
  CHECK(report.stats.rectified_false > 0);
  CHECK(report.findings.empty());
}

}  // namespace
}  // namespace pqs

int main() {
  pqs::TestCleanEngineHasNoFindings();
  pqs::TestAllThreeBranchesFire();
  pqs::TestNoRectifyStillTalliesAndSkipsCheck();
  return pqs::test::Summary("test_rectification");
}
