// Golden-corpus rendering test for the widened SQL grammar.
//
// A fixed corpus of representative ASTs — explicit INNER/LEFT/CROSS join
// chains, DISTINCT, ORDER BY (asc/desc, multi-key), LIMIT, and the
// Algorithm-3 rectification wrappers — is rendered in all three dialects
// and compared against the checked-in golden file (regenerate with
// PQS_UPDATE_GOLDEN=1 after reviewing a deliberate renderer change). When
// real libsqlite3 is linked in, the corpus is additionally replayed
// through sqlite3: every statement must parse and run, and each SELECT's
// row multiset must match MiniDB's kSqliteFlex evaluation exactly.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/minidb/database.h"
#include "src/sqlite3db/sqlite_connection.h"
#include "src/sqlmeta/transform.h"
#include "src/sqlparser/render.h"
#include "tests/test_util.h"

#ifndef PQS_SOURCE_DIR
#define PQS_SOURCE_DIR "."
#endif

namespace pqs {
namespace {

ColumnDef Column(const std::string& name, Affinity affinity,
                 bool unique = false, bool not_null = false) {
  ColumnDef def;
  def.name = name;
  def.affinity = affinity;
  def.declared_type = affinity == Affinity::kInteger
                          ? "INT"
                          : (affinity == Affinity::kReal ? "REAL" : "TEXT");
  def.unique = unique;
  def.not_null = not_null;
  return def;
}

JoinClause Join(JoinKind kind, const std::string& table, ExprPtr on) {
  JoinClause join;
  join.kind = kind;
  join.table = table;
  join.on = std::move(on);
  return join;
}

OrderByItem Key(ExprPtr expr, bool descending) {
  OrderByItem item;
  item.expr = std::move(expr);
  item.descending = descending;
  return item;
}

// The corpus: schema + data first (so the whole list replays as a script),
// then the representative queries.
std::vector<StmtPtr> BuildCorpus() {
  std::vector<StmtPtr> corpus;

  auto t0 = std::make_unique<CreateTableStmt>();
  t0->table_name = "t0";
  t0->columns = {Column("c0", Affinity::kInteger, /*unique=*/true),
                 Column("c1", Affinity::kText)};
  corpus.push_back(std::move(t0));

  auto t1 = std::make_unique<CreateTableStmt>();
  t1->table_name = "t1";
  t1->columns = {Column("c2", Affinity::kInteger),
                 Column("c3", Affinity::kReal)};
  corpus.push_back(std::move(t1));

  auto t2 = std::make_unique<CreateTableStmt>();
  t2->table_name = "t2";
  t2->columns = {Column("c4", Affinity::kText)};
  corpus.push_back(std::move(t2));

  auto index = std::make_unique<CreateIndexStmt>();
  index->index_name = "i0";
  index->table_name = "t1";
  index->columns = {"c2"};
  index->unique = false;
  index->where = MakeIsNull(MakeColumnRef("t1", "c2"), /*negated=*/true);
  corpus.push_back(std::move(index));

  auto ins0 = std::make_unique<InsertStmt>();
  ins0->table_name = "t0";
  for (int64_t v : {1, 2, 3}) {
    ins0->rows.emplace_back();
    ins0->rows.back().push_back(MakeIntLiteral(v));
    ins0->rows.back().push_back(
        MakeTextLiteral(v % 2 == 0 ? "ab" : "xy"));
  }
  corpus.push_back(std::move(ins0));

  auto ins1 = std::make_unique<InsertStmt>();
  ins1->table_name = "t1";
  const double reals[] = {0.5, 1.5, 0.5};
  for (int r = 0; r < 3; ++r) {
    ins1->rows.emplace_back();
    ins1->rows.back().push_back(r == 2 ? MakeNullLiteral()
                                       : MakeIntLiteral(r + 1));
    ins1->rows.back().push_back(MakeRealLiteral(reals[r]));
  }
  corpus.push_back(std::move(ins1));

  auto ins2 = std::make_unique<InsertStmt>();
  ins2->table_name = "t2";
  for (const char* v : {"ab", "ba", "ab"}) {
    ins2->rows.emplace_back();
    ins2->rows.back().push_back(MakeTextLiteral(v));
  }
  corpus.push_back(std::move(ins2));

  // Q1: comma-list join + WHERE (the pre-existing query space).
  auto q1 = std::make_unique<SelectStmt>();
  q1->from_tables = {"t0", "t1"};
  q1->where = MakeBinary(BinaryOp::kLt, MakeColumnRef("t0", "c0"),
                         MakeColumnRef("t1", "c2"));
  corpus.push_back(std::move(q1));

  // Q2: INNER equi-join.
  auto q2 = std::make_unique<SelectStmt>();
  q2->from_tables = {"t0"};
  q2->joins.push_back(Join(
      JoinKind::kInner, "t1",
      MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "c0"),
                 MakeColumnRef("t1", "c2"))));
  corpus.push_back(std::move(q2));

  // Q3: LEFT JOIN with a rectified-looking NOT wrapper on the ON.
  auto q3 = std::make_unique<SelectStmt>();
  q3->from_tables = {"t0"};
  q3->joins.push_back(Join(
      JoinKind::kLeft, "t1",
      MakeUnary(UnaryOp::kNot,
                MakeBinary(BinaryOp::kGe, MakeColumnRef("t0", "c0"),
                           MakeColumnRef("t1", "c2")))));
  corpus.push_back(std::move(q3));

  // Q4: CROSS JOIN + DISTINCT.
  auto q4 = std::make_unique<SelectStmt>();
  q4->distinct = true;
  q4->from_tables = {"t2"};
  q4->joins.push_back(Join(JoinKind::kCross, "t0", nullptr));
  corpus.push_back(std::move(q4));

  // Q5: three-table chain, two-key ORDER BY (asc + desc), LIMIT.
  auto q5 = std::make_unique<SelectStmt>();
  q5->from_tables = {"t0"};
  q5->joins.push_back(Join(
      JoinKind::kInner, "t1",
      MakeBinary(BinaryOp::kLe, MakeColumnRef("t0", "c0"),
                 MakeColumnRef("t1", "c2"))));
  q5->joins.push_back(Join(JoinKind::kCross, "t2", nullptr));
  q5->order_by.push_back(Key(MakeColumnRef("t1", "c3"), false));
  q5->order_by.push_back(Key(MakeColumnRef("t0", "c0"), true));
  q5->limit = 4;
  corpus.push_back(std::move(q5));

  // Q6: DISTINCT + ORDER BY DESC + LIMIT on one table (NULL key rows).
  auto q6 = std::make_unique<SelectStmt>();
  q6->distinct = true;
  q6->from_tables = {"t1"};
  q6->order_by.push_back(Key(MakeColumnRef("t1", "c2"), true));
  q6->limit = 2;
  corpus.push_back(std::move(q6));

  // Q7: rectified NULL branch (φ IS NULL) with BETWEEN and IN.
  auto q7 = std::make_unique<SelectStmt>();
  q7->from_tables = {"t1"};
  std::vector<ExprPtr> in_list;
  in_list.push_back(MakeIntLiteral(1));
  in_list.push_back(MakeIntLiteral(4));
  q7->where = MakeIsNull(
      MakeBinary(
          BinaryOp::kAnd,
          MakeBetween(MakeColumnRef("t1", "c3"), MakeRealLiteral(0.0),
                      MakeRealLiteral(2.0), /*negated=*/false),
          MakeInList(MakeColumnRef("t1", "c2"), std::move(in_list),
                     /*negated=*/true)),
      /*negated=*/false);
  corpus.push_back(std::move(q7));

  // Q8: LIKE over concat, ORDER BY the text column.
  auto q8 = std::make_unique<SelectStmt>();
  q8->from_tables = {"t0"};
  q8->where = MakeLike(
      MakeBinary(BinaryOp::kConcat, MakeColumnRef("t0", "c1"),
                 MakeTextLiteral("z")),
      MakeTextLiteral("%bz"), /*negated=*/false);
  q8->order_by.push_back(Key(MakeColumnRef("t0", "c1"), false));
  corpus.push_back(std::move(q8));

  // Q9: LEFT JOIN + WHERE IS NULL over the padded side + ORDER BY + LIMIT.
  auto q9 = std::make_unique<SelectStmt>();
  q9->from_tables = {"t0"};
  q9->joins.push_back(Join(
      JoinKind::kLeft, "t1",
      MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "c0"),
                 MakeColumnRef("t1", "c2"))));
  q9->where = MakeIsNull(MakeColumnRef("t1", "c3"), /*negated=*/false);
  q9->order_by.push_back(Key(MakeColumnRef("t0", "c0"), false));
  q9->limit = 10;
  corpus.push_back(std::move(q9));

  // Q10: DISTINCT projection over a join with arithmetic ORDER BY key.
  auto q10 = std::make_unique<SelectStmt>();
  q10->distinct = true;
  q10->from_tables = {"t0"};
  q10->joins.push_back(Join(
      JoinKind::kInner, "t1",
      MakeBinary(BinaryOp::kNe, MakeColumnRef("t0", "c0"),
                 MakeColumnRef("t1", "c2"))));
  q10->order_by.push_back(Key(
      MakeBinary(BinaryOp::kAdd, MakeColumnRef("t0", "c0"),
                 MakeColumnRef("t1", "c2")),
      false));
  corpus.push_back(std::move(q10));

  // A fourth table with the remaining DDL shapes: PRIMARY KEY, NOT NULL,
  // and a unique (non-partial) index; data includes NULLs.
  auto t3 = std::make_unique<CreateTableStmt>();
  t3->table_name = "t3";
  t3->columns = {Column("c5", Affinity::kInteger, /*unique=*/false,
                        /*not_null=*/true),
                 Column("c6", Affinity::kReal)};
  t3->columns[0].primary_key = true;
  corpus.push_back(std::move(t3));

  auto uindex = std::make_unique<CreateIndexStmt>();
  uindex->index_name = "i1";
  uindex->table_name = "t3";
  uindex->columns = {"c5", "c6"};
  uindex->unique = true;
  corpus.push_back(std::move(uindex));

  auto ins3 = std::make_unique<InsertStmt>();
  ins3->table_name = "t3";
  const double more_reals[] = {2.0, -0.5};
  for (int r = 0; r < 2; ++r) {
    ins3->rows.emplace_back();
    ins3->rows.back().push_back(MakeIntLiteral(10 + r));
    ins3->rows.back().push_back(r == 1 ? MakeNullLiteral()
                                       : MakeRealLiteral(more_reals[r]));
  }
  corpus.push_back(std::move(ins3));

  // Q11: NOT LIKE, ORDER BY DESC, LIMIT.
  auto q11 = std::make_unique<SelectStmt>();
  q11->from_tables = {"t2"};
  q11->where = MakeLike(MakeColumnRef("t2", "c4"), MakeTextLiteral("a%"),
                        /*negated=*/true);
  q11->order_by.push_back(Key(MakeColumnRef("t2", "c4"), true));
  q11->limit = 5;
  corpus.push_back(std::move(q11));

  // Q12: NOT BETWEEN over an INNER join on t3.
  auto q12 = std::make_unique<SelectStmt>();
  q12->from_tables = {"t1"};
  q12->joins.push_back(Join(
      JoinKind::kInner, "t3",
      MakeBinary(BinaryOp::kLt, MakeColumnRef("t1", "c2"),
                 MakeColumnRef("t3", "c5"))));
  q12->where = MakeBetween(MakeColumnRef("t3", "c6"), MakeRealLiteral(-1.0),
                           MakeRealLiteral(1.0), /*negated=*/true);
  corpus.push_back(std::move(q12));

  // Q13: chained LEFT JOINs with a literal ON comparison.
  auto q13 = std::make_unique<SelectStmt>();
  q13->from_tables = {"t0"};
  q13->joins.push_back(Join(
      JoinKind::kLeft, "t1",
      MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "c0"),
                 MakeColumnRef("t1", "c2"))));
  q13->joins.push_back(Join(JoinKind::kLeft, "t3",
                            MakeBinary(BinaryOp::kEq,
                                       MakeColumnRef("t3", "c5"),
                                       MakeIntLiteral(10))));
  corpus.push_back(std::move(q13));

  // Q14: comma-list FROM + DISTINCT (the widening composes with the old
  // cross-product syntax too).
  auto q14 = std::make_unique<SelectStmt>();
  q14->distinct = true;
  q14->from_tables = {"t2", "t3"};
  q14->where = MakeBinary(BinaryOp::kGt, MakeColumnRef("t3", "c5"),
                          MakeIntLiteral(9));
  corpus.push_back(std::move(q14));

  // Q15: unary minus and subtraction in WHERE, ordered.
  auto q15 = std::make_unique<SelectStmt>();
  q15->from_tables = {"t3"};
  q15->where = MakeBinary(
      BinaryOp::kLe, MakeUnary(UnaryOp::kNeg, MakeColumnRef("t3", "c5")),
      MakeBinary(BinaryOp::kSub, MakeColumnRef("t3", "c5"),
                 MakeIntLiteral(5)));
  q15->order_by.push_back(Key(MakeColumnRef("t3", "c5"), false));
  corpus.push_back(std::move(q15));

  // Q16: IS NOT NULL over division.
  auto q16 = std::make_unique<SelectStmt>();
  q16->from_tables = {"t1"};
  q16->where = MakeIsNull(
      MakeBinary(BinaryOp::kDiv, MakeColumnRef("t1", "c3"),
                 MakeColumnRef("t1", "c2")),
      /*negated=*/true);
  corpus.push_back(std::move(q16));

  // Q17: DISTINCT + LIMIT without ORDER BY.
  auto q17 = std::make_unique<SelectStmt>();
  q17->distinct = true;
  q17->from_tables = {"t2"};
  q17->limit = 3;
  corpus.push_back(std::move(q17));

  // Q18: CROSS then INNER step in one chain.
  auto q18 = std::make_unique<SelectStmt>();
  q18->from_tables = {"t2"};
  q18->joins.push_back(Join(JoinKind::kCross, "t3", nullptr));
  q18->joins.push_back(Join(
      JoinKind::kInner, "t0",
      MakeBinary(BinaryOp::kGe, MakeColumnRef("t0", "c0"),
                 MakeIntLiteral(2))));
  corpus.push_back(std::move(q18));

  // Q19: LIMIT 0 boundary (empty result is still well-formed SQL).
  auto q19 = std::make_unique<SelectStmt>();
  q19->from_tables = {"t0"};
  q19->order_by.push_back(Key(MakeColumnRef("t0", "c1"), false));
  q19->order_by.push_back(Key(MakeColumnRef("t0", "c0"), false));
  q19->limit = 0;
  corpus.push_back(std::move(q19));

  // Q20: deep AND/OR/NOT nesting around the new clause set.
  auto q20 = std::make_unique<SelectStmt>();
  q20->distinct = true;
  q20->from_tables = {"t0"};
  q20->joins.push_back(Join(
      JoinKind::kInner, "t2",
      MakeBinary(BinaryOp::kNe, MakeColumnRef("t2", "c4"),
                 MakeColumnRef("t0", "c1"))));
  q20->where = MakeUnary(
      UnaryOp::kNot,
      MakeBinary(
          BinaryOp::kOr,
          MakeBinary(BinaryOp::kAnd,
                     MakeIsNull(MakeColumnRef("t0", "c0"), false),
                     MakeLike(MakeColumnRef("t2", "c4"),
                              MakeTextLiteral("_b"), false)),
          MakeBinary(BinaryOp::kGt, MakeColumnRef("t0", "c0"),
                     MakeIntLiteral(5))));
  q20->order_by.push_back(Key(MakeColumnRef("t0", "c0"), true));
  q20->limit = 7;
  corpus.push_back(std::move(q20));

  // --- Typed expression subsystem (PR 4): registry functions, CAST, CASE,
  // --- COLLATE, LIKE ESCAPE, NULL-bearing IN lists. -----------------------

  auto fn = [](FuncId f, std::vector<ExprPtr> args) {
    return MakeFunctionCall(f, std::move(args));
  };
  auto args1 = [](ExprPtr a) {
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    return v;
  };
  auto args2 = [](ExprPtr a, ExprPtr b) {
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    return v;
  };

  // Q21: ABS over an integer column AND LENGTH over text.
  auto q21 = std::make_unique<SelectStmt>();
  q21->from_tables = {"t0"};
  q21->where = MakeBinary(
      BinaryOp::kAnd,
      MakeBinary(BinaryOp::kGt,
                 fn(FuncId::kAbs, args1(MakeColumnRef("t0", "c0"))),
                 MakeIntLiteral(1)),
      MakeBinary(BinaryOp::kEq,
                 fn(FuncId::kLength, args1(MakeColumnRef("t0", "c1"))),
                 MakeIntLiteral(2)));
  corpus.push_back(std::move(q21));

  // Q22: UPPER / LOWER case folding.
  auto q22 = std::make_unique<SelectStmt>();
  q22->from_tables = {"t2"};
  q22->where = MakeBinary(
      BinaryOp::kOr,
      MakeBinary(BinaryOp::kEq,
                 fn(FuncId::kUpper, args1(MakeColumnRef("t2", "c4"))),
                 MakeTextLiteral("AB")),
      MakeBinary(BinaryOp::kNe,
                 fn(FuncId::kLower, args1(MakeColumnRef("t2", "c4"))),
                 MakeTextLiteral("ba")));
  corpus.push_back(std::move(q22));

  // Q23: COALESCE across a nullable column, ordered.
  auto q23 = std::make_unique<SelectStmt>();
  q23->from_tables = {"t1"};
  q23->where = MakeBinary(
      BinaryOp::kGe,
      fn(FuncId::kCoalesce, args2(MakeColumnRef("t1", "c2"),
                                  MakeIntLiteral(0))),
      MakeIntLiteral(1));
  q23->order_by.push_back(Key(MakeColumnRef("t1", "c2"), false));
  corpus.push_back(std::move(q23));

  // Q24: scalar MIN/MAX — the per-dialect naming showcase (SQLite MIN/MAX,
  // MySQL/PostgreSQL LEAST/GREATEST).
  auto q24 = std::make_unique<SelectStmt>();
  q24->from_tables = {"t1"};
  q24->where = MakeBinary(
      BinaryOp::kAnd,
      MakeBinary(BinaryOp::kLe,
                 fn(FuncId::kGreatest, args2(MakeColumnRef("t1", "c2"),
                                             MakeIntLiteral(3))),
                 MakeIntLiteral(5)),
      MakeBinary(BinaryOp::kGt,
                 fn(FuncId::kLeast, args2(MakeColumnRef("t1", "c3"),
                                          MakeRealLiteral(2.0))),
                 MakeRealLiteral(0.0)));
  corpus.push_back(std::move(q24));

  // Q25: NULLIF under an IS NULL observer.
  auto q25 = std::make_unique<SelectStmt>();
  q25->from_tables = {"t1"};
  q25->where = MakeIsNull(
      fn(FuncId::kNullif, args2(MakeColumnRef("t1", "c2"),
                                MakeIntLiteral(1))),
      /*negated=*/false);
  corpus.push_back(std::move(q25));

  // Q26: CAST REAL → INTEGER compared against its own operand (the
  // truncation-sensitive metamorphic shape).
  auto q26 = std::make_unique<SelectStmt>();
  q26->from_tables = {"t1"};
  q26->where = MakeBinary(BinaryOp::kLe,
                          MakeCast(MakeColumnRef("t1", "c3"),
                                   Affinity::kInteger),
                          MakeColumnRef("t1", "c3"));
  corpus.push_back(std::move(q26));

  // Q27: CAST to TEXT and to REAL from an integer source.
  auto q27 = std::make_unique<SelectStmt>();
  q27->from_tables = {"t0"};
  q27->where = MakeBinary(
      BinaryOp::kAnd,
      MakeBinary(BinaryOp::kNe,
                 MakeCast(MakeColumnRef("t0", "c0"), Affinity::kText),
                 MakeTextLiteral("1")),
      MakeBinary(BinaryOp::kLt,
                 MakeCast(MakeColumnRef("t0", "c0"), Affinity::kReal),
                 MakeRealLiteral(2.5)));
  corpus.push_back(std::move(q27));

  // Q28: searched CASE with an ELSE arm as the WHERE predicate.
  auto q28 = std::make_unique<SelectStmt>();
  q28->from_tables = {"t0"};
  {
    std::vector<std::pair<ExprPtr, ExprPtr>> arms;
    arms.emplace_back(
        MakeBinary(BinaryOp::kGt, MakeColumnRef("t0", "c0"),
                   MakeIntLiteral(1)),
        MakeLike(MakeColumnRef("t0", "c1"), MakeTextLiteral("a%"),
                 /*negated=*/false));
    q28->where = MakeCase(std::move(arms),
                          MakeBinary(BinaryOp::kEq,
                                     MakeColumnRef("t0", "c0"),
                                     MakeIntLiteral(1)));
  }
  corpus.push_back(std::move(q28));

  // Q29: ELSE-less CASE rectified the NULL way (φ IS NULL).
  auto q29 = std::make_unique<SelectStmt>();
  q29->from_tables = {"t1"};
  {
    std::vector<std::pair<ExprPtr, ExprPtr>> arms;
    arms.emplace_back(
        MakeBinary(BinaryOp::kGt, MakeColumnRef("t1", "c2"),
                   MakeIntLiteral(5)),
        MakeBinary(BinaryOp::kLt, MakeColumnRef("t1", "c2"),
                   MakeIntLiteral(9)));
    q29->where = MakeIsNull(MakeCase(std::move(arms), nullptr),
                            /*negated=*/false);
  }
  corpus.push_back(std::move(q29));

  // Q30: explicit collations on text comparisons.
  auto q30 = std::make_unique<SelectStmt>();
  q30->from_tables = {"t2"};
  q30->where = MakeBinary(
      BinaryOp::kOr,
      MakeBinary(BinaryOp::kEq,
                 MakeCollate(MakeColumnRef("t2", "c4"), Collation::kNocase),
                 MakeTextLiteral("AB")),
      MakeBinary(BinaryOp::kLt,
                 MakeCollate(MakeColumnRef("t2", "c4"), Collation::kBinary),
                 MakeTextLiteral("b")));
  corpus.push_back(std::move(q30));

  // Q31: LIKE with an ESCAPE clause (escaped wildcard is literal).
  auto q31 = std::make_unique<SelectStmt>();
  q31->from_tables = {"t2"};
  q31->where = MakeLikeEscape(MakeColumnRef("t2", "c4"),
                              MakeTextLiteral("%a!%%"),
                              MakeTextLiteral("!"), /*negated=*/false);
  q31->order_by.push_back(Key(MakeColumnRef("t2", "c4"), false));
  corpus.push_back(std::move(q31));

  // Q32: IN list carrying a NULL element (UNKNOWN on a miss).
  auto q32 = std::make_unique<SelectStmt>();
  q32->from_tables = {"t0"};
  {
    std::vector<ExprPtr> in_items;
    in_items.push_back(MakeIntLiteral(1));
    in_items.push_back(MakeNullLiteral());
    in_items.push_back(MakeIntLiteral(3));
    q32->where = MakeIsNull(
        MakeInList(MakeColumnRef("t0", "c0"), std::move(in_items),
                   /*negated=*/true),
        /*negated=*/false);
  }
  corpus.push_back(std::move(q32));

  // Q33: nested calls — LENGTH(UPPER(x)) and COALESCE(NULLIF(x, 'ab'), y).
  auto q33 = std::make_unique<SelectStmt>();
  q33->from_tables = {"t0"};
  q33->joins.push_back(Join(
      JoinKind::kInner, "t2",
      MakeBinary(BinaryOp::kEq,
                 fn(FuncId::kLength,
                    args1(fn(FuncId::kUpper,
                             args1(MakeColumnRef("t2", "c4"))))),
                 MakeIntLiteral(2))));
  q33->where = MakeBinary(
      BinaryOp::kNe,
      fn(FuncId::kCoalesce,
         args2(fn(FuncId::kNullif, args2(MakeColumnRef("t2", "c4"),
                                         MakeTextLiteral("ab"))),
               MakeColumnRef("t0", "c1"))),
      MakeTextLiteral("zz"));
  corpus.push_back(std::move(q33));

  // --- Statement-level mutation engine (PR 5): UPDATE / DELETE /
  // --- DROP INDEX / maintenance, with follow-up queries probing the
  // --- mutated state through the index-scan paths. The mutations sit
  // --- after Q1-Q33 so those keep querying the pristine data. ------------

  // The SQLite PRIMARY KEY quirk, replayed differentially: a non-INTEGER
  // ("INT") PK column without NOT NULL admits a NULL row.
  auto t4 = std::make_unique<CreateTableStmt>();
  t4->table_name = "t4";
  t4->columns = {Column("c7", Affinity::kInteger),
                 Column("c8", Affinity::kText)};
  t4->columns[0].primary_key = true;
  corpus.push_back(std::move(t4));

  auto ins4 = std::make_unique<InsertStmt>();
  ins4->table_name = "t4";
  for (int r = 0; r < 2; ++r) {
    ins4->rows.emplace_back();
    ins4->rows.back().push_back(r == 0 ? MakeNullLiteral()
                                       : MakeIntLiteral(41));
    ins4->rows.back().push_back(MakeTextLiteral(r == 0 ? "pk-null" : "pk"));
  }
  corpus.push_back(std::move(ins4));

  // M1: single-assignment UPDATE with a WHERE over the partial-index
  // column.
  auto m1 = std::make_unique<UpdateStmt>();
  m1->table_name = "t1";
  {
    UpdateStmt::Assignment a;
    a.column = "c3";
    a.value = MakeBinary(BinaryOp::kAdd, MakeColumnRef("t1", "c3"),
                         MakeRealLiteral(1.5));
    m1->assignments.push_back(std::move(a));
  }
  m1->where = MakeIsNull(MakeColumnRef("t1", "c2"), /*negated=*/true);
  corpus.push_back(std::move(m1));

  // M2: multi-assignment UPDATE — both values read the pre-update row.
  auto m2 = std::make_unique<UpdateStmt>();
  m2->table_name = "t0";
  {
    UpdateStmt::Assignment a;
    a.column = "c0";
    a.value = MakeBinary(BinaryOp::kAdd, MakeColumnRef("t0", "c0"),
                         MakeIntLiteral(10));
    m2->assignments.push_back(std::move(a));
    UpdateStmt::Assignment b;
    b.column = "c1";
    b.value = MakeBinary(BinaryOp::kConcat, MakeColumnRef("t0", "c1"),
                         MakeTextLiteral("q"));
    m2->assignments.push_back(std::move(b));
  }
  m2->where = MakeBinary(BinaryOp::kGe, MakeColumnRef("t0", "c0"),
                         MakeIntLiteral(2));
  corpus.push_back(std::move(m2));

  // M3: UPDATE without a WHERE (every row).
  auto m3 = std::make_unique<UpdateStmt>();
  m3->table_name = "t2";
  {
    UpdateStmt::Assignment a;
    a.column = "c4";
    a.value = MakeTextLiteral("ab");
    m3->assignments.push_back(std::move(a));
  }
  corpus.push_back(std::move(m3));

  // Q34: partial-index probe — the WHERE carries i0's predicate verbatim
  // as a conjunct, so MiniDB answers it through the partial index.
  auto q34 = std::make_unique<SelectStmt>();
  q34->from_tables = {"t1"};
  q34->where = MakeBinary(
      BinaryOp::kAnd,
      MakeIsNull(MakeColumnRef("t1", "c2"), /*negated=*/true),
      MakeBinary(BinaryOp::kGt, MakeColumnRef("t1", "c3"),
                 MakeRealLiteral(1.0)));
  corpus.push_back(std::move(q34));

  // M4: DELETE with a WHERE.
  auto m4 = std::make_unique<DeleteStmt>();
  m4->table_name = "t1";
  m4->where = MakeIsNull(MakeColumnRef("t1", "c2"), /*negated=*/false);
  corpus.push_back(std::move(m4));

  // M5: maintenance rebuild — REINDEX t1 / OPTIMIZE TABLE t1 / REINDEX
  // TABLE t1 per dialect.
  auto m5 = std::make_unique<MaintenanceStmt>();
  m5->table_name = "t1";
  corpus.push_back(std::move(m5));

  // M6: DROP INDEX (MySQL spells the table, the others don't).
  auto m6 = std::make_unique<DropIndexStmt>();
  m6->index_name = "i0";
  m6->table_name = "t1";
  corpus.push_back(std::move(m6));

  // Q35: index probe over the unique two-column index i1 after mutation.
  auto q35 = std::make_unique<SelectStmt>();
  q35->from_tables = {"t3"};
  q35->where = MakeBinary(BinaryOp::kGt, MakeColumnRef("t3", "c5"),
                          MakeIntLiteral(9));
  corpus.push_back(std::move(q35));

  // Q36-Q39: whole-table fetches — the mutated end state must match the
  // model row-for-row (the runner's state-compare shape).
  for (const char* table : {"t0", "t1", "t2", "t4"}) {
    auto fetch = std::make_unique<SelectStmt>();
    fetch->from_tables = {table};
    corpus.push_back(std::move(fetch));
  }

  // --- Metamorphic oracle subsystem (PR 6): aggregates, GROUP BY/HAVING,
  // --- and the NoREC/TLP rewrite texts themselves, over the mutated end
  // --- state (t1 is down to (1, 2.0) and (2, 3.0); t2 is all 'ab'). ------

  // Q40: every global aggregate at once, mixing * / column / real args.
  auto q40 = std::make_unique<SelectStmt>();
  q40->from_tables = {"t1"};
  q40->select_list.push_back(MakeCountStar());
  q40->select_list.push_back(
      MakeAggregate(AggFunc::kSum, MakeColumnRef("t1", "c2"), false));
  q40->select_list.push_back(
      MakeAggregate(AggFunc::kAvg, MakeColumnRef("t1", "c3"), false));
  q40->select_list.push_back(
      MakeAggregate(AggFunc::kMin, MakeColumnRef("t1", "c3"), false));
  q40->select_list.push_back(
      MakeAggregate(AggFunc::kMax, MakeColumnRef("t1", "c2"), false));
  corpus.push_back(std::move(q40));

  // Q41: COUNT(DISTINCT) after M3 collapsed t2 to a single value.
  auto q41 = std::make_unique<SelectStmt>();
  q41->from_tables = {"t2"};
  q41->select_list.push_back(
      MakeAggregate(AggFunc::kCount, MakeColumnRef("t2", "c4"), true));
  corpus.push_back(std::move(q41));

  // Q42: GROUP BY with a multi-row group.
  auto q42 = std::make_unique<SelectStmt>();
  q42->from_tables = {"t2"};
  q42->select_list.push_back(MakeColumnRef("t2", "c4"));
  q42->select_list.push_back(MakeCountStar());
  q42->group_by.push_back(MakeColumnRef("t2", "c4"));
  corpus.push_back(std::move(q42));

  // Q43: GROUP BY over t4's NULL-keyed PK rows — NULLs form their own
  // group, and COUNT(c8) counts within it.
  auto q43 = std::make_unique<SelectStmt>();
  q43->from_tables = {"t4"};
  q43->select_list.push_back(MakeColumnRef("t4", "c7"));
  q43->select_list.push_back(
      MakeAggregate(AggFunc::kCount, MakeColumnRef("t4", "c8"), false));
  q43->group_by.push_back(MakeColumnRef("t4", "c7"));
  corpus.push_back(std::move(q43));

  // Q44: GROUP BY + HAVING, the HAVING aggregate not in the select list.
  auto q44 = std::make_unique<SelectStmt>();
  q44->from_tables = {"t2"};
  q44->select_list.push_back(MakeColumnRef("t2", "c4"));
  q44->select_list.push_back(
      MakeAggregate(AggFunc::kMin, MakeColumnRef("t2", "c4"), false));
  q44->group_by.push_back(MakeColumnRef("t2", "c4"));
  q44->having = MakeBinary(BinaryOp::kGt, MakeCountStar(), MakeIntLiteral(1));
  corpus.push_back(std::move(q44));

  // N1/N2: the NoREC pair for `t1.c2 > 1` — the optimized COUNT(*) side
  // and the predicate-as-projection side must agree in cardinality.
  {
    ExprPtr pred = MakeBinary(BinaryOp::kGt, MakeColumnRef("t1", "c2"),
                              MakeIntLiteral(1));
    corpus.push_back(sqlmeta::NorecOptimized("t1", *pred));
    corpus.push_back(sqlmeta::NorecUnoptimized("t1", *pred));
  }

  // T1a-T1c: TLP partitions of the global-aggregate query
  // `SELECT SUM(c2), COUNT(*) FROM t1` under `c3 > 2.25` — the IS NULL
  // partition is empty, so its SUM partial is NULL and its COUNT is 0.
  {
    SelectStmt full;
    full.from_tables = {"t1"};
    full.select_list.push_back(
        MakeAggregate(AggFunc::kSum, MakeColumnRef("t1", "c2"), false));
    full.select_list.push_back(MakeCountStar());
    ExprPtr pred = MakeBinary(BinaryOp::kGt, MakeColumnRef("t1", "c3"),
                              MakeRealLiteral(2.25));
    sqlmeta::TlpPlan plan;
    std::string error;
    if (sqlmeta::BuildTlpPlan(full, *pred, &plan, &error)) {
      for (auto& partition : plan.partitions) {
        corpus.push_back(std::move(partition));
      }
    }
  }

  // T2a-T2c: TLP partitions of the GROUP BY + HAVING query Q44 under
  // `c4 = 'ab'` — partitions keep the grouping but drop the HAVING (the
  // oracle re-applies it on recombined aggregates), and the NOT / IS NULL
  // partitions select no rows at all.
  {
    SelectStmt full;
    full.from_tables = {"t2"};
    full.select_list.push_back(MakeColumnRef("t2", "c4"));
    full.select_list.push_back(
        MakeAggregate(AggFunc::kMin, MakeColumnRef("t2", "c4"), false));
    full.group_by.push_back(MakeColumnRef("t2", "c4"));
    full.having =
        MakeBinary(BinaryOp::kGt, MakeCountStar(), MakeIntLiteral(1));
    ExprPtr pred = MakeBinary(BinaryOp::kEq, MakeColumnRef("t2", "c4"),
                              MakeTextLiteral("ab"));
    sqlmeta::TlpPlan plan;
    std::string error;
    if (sqlmeta::BuildTlpPlan(full, *pred, &plan, &error)) {
      for (auto& partition : plan.partitions) {
        corpus.push_back(std::move(partition));
      }
    }
  }

  // --- Transaction statements (PR 10): BEGIN / COMMIT / ROLLBACK in every
  // --- dialect (MySQL spells BEGIN as START TRANSACTION). The committed
  // --- block lands one row; the rolled-back block must leave no trace —
  // --- and the corpus ends back in autocommit so the replay engines stay
  // --- comparable statement-for-statement. -------------------------------

  corpus.push_back(std::make_unique<BeginStmt>());
  auto txn_ins = std::make_unique<InsertStmt>();
  txn_ins->table_name = "t4";
  txn_ins->rows.emplace_back();
  txn_ins->rows.back().push_back(MakeIntLiteral(77));
  txn_ins->rows.back().push_back(MakeTextLiteral("committed"));
  corpus.push_back(std::move(txn_ins));
  corpus.push_back(std::make_unique<CommitStmt>());

  corpus.push_back(std::make_unique<BeginStmt>());
  auto txn_upd = std::make_unique<UpdateStmt>();
  txn_upd->table_name = "t4";
  {
    UpdateStmt::Assignment a;
    a.column = "c8";
    a.value = MakeTextLiteral("rolled-back");
    txn_upd->assignments.push_back(std::move(a));
  }
  corpus.push_back(std::move(txn_upd));
  auto txn_del = std::make_unique<DeleteStmt>();
  txn_del->table_name = "t4";
  txn_del->where = MakeBinary(BinaryOp::kEq, MakeColumnRef("t4", "c7"),
                              MakeIntLiteral(41));
  corpus.push_back(std::move(txn_del));
  corpus.push_back(std::make_unique<RollbackStmt>());

  // Q45: t4's end state — the committed row present, the aborted update
  // and delete absent.
  auto q45 = std::make_unique<SelectStmt>();
  q45->from_tables = {"t4"};
  corpus.push_back(std::move(q45));

  return corpus;
}

void TestGoldenRendering() {
  std::vector<StmtPtr> corpus = BuildCorpus();
  std::string rendered;
  for (Dialect dialect : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                          Dialect::kPostgresStrict}) {
    rendered += std::string("-- dialect: ") + DialectName(dialect) + "\n";
    for (const StmtPtr& stmt : corpus) {
      rendered += RenderStmt(*stmt, dialect);
      rendered += ";\n";
    }
  }
  test::CheckGolden(std::string(PQS_SOURCE_DIR) +
                        "/tests/golden/render_roundtrip.golden",
                    rendered);
}

// Row-multiset comparison comes from the shared interp helper
// (pqs::SameRowMultiset), the same code the runner's mutation state
// compare uses.

void TestCorpusReplaysThroughRealSqlite() {
  if (!SqliteConnection::Available()) {
    std::printf("  (real sqlite3 unavailable; replay skipped)\n");
    return;
  }
  std::vector<StmtPtr> corpus = BuildCorpus();
  SqliteConnection real;
  minidb::Database model(Dialect::kSqliteFlex);
  for (const StmtPtr& stmt : corpus) {
    StatementResult from_real = real.Execute(*stmt);
    StatementResult from_model = model.Execute(*stmt);
    std::string sql = RenderStmt(*stmt, Dialect::kSqliteFlex);
    CHECK_MSG(from_real.ok(), "real sqlite rejected: %s (%s)", sql.c_str(),
              from_real.error.c_str());
    CHECK_MSG(from_model.ok(), "minidb rejected: %s (%s)", sql.c_str(),
              from_model.error.c_str());
    if (!from_real.ok() || !from_model.ok()) continue;
    if (stmt->kind() != StmtKind::kSelect) continue;
    const auto& sel = static_cast<const SelectStmt&>(*stmt);
    // LIMIT results are order-dependent only up to ties, so compare sizes
    // there; everything else must match as a row multiset.
    if (sel.limit >= 0) {
      CHECK_MSG(from_real.rows.size() == from_model.rows.size(),
                "row count diverged on: %s (real %zu vs model %zu)",
                sql.c_str(), from_real.rows.size(), from_model.rows.size());
    } else {
      CHECK_MSG(SameRowMultiset(from_real.rows, from_model.rows),
                "result diverged on: %s", sql.c_str());
    }
  }
}

}  // namespace
}  // namespace pqs

int main() {
  pqs::TestGoldenRendering();
  pqs::TestCorpusReplaysThroughRealSqlite();
  return pqs::test::Summary("test_render_roundtrip");
}
