// Campaign layer: every registered bug is huntable, and the per-dialect
// detection shape matches the paper's (SQLite most findings, containment
// the dominant oracle).
//
// Accepts `--workers N` to run the campaigns through the sharded engine
// (the CI ThreadSanitizer job passes 4); the expected results are
// identical for every worker count.
#include <cstdlib>
#include <cstring>

#include "src/minidb/bug_registry.h"
#include "src/pqs/campaign.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

int campaign_workers = 1;

void TestRegistryShape() {
  const auto& registry = minidb::BugRegistry();
  CHECK_EQ(registry.size(), static_cast<size_t>(kNumBugIds));
  size_t sqlite = minidb::BugsForDialect(Dialect::kSqliteFlex).size();
  size_t mysql = minidb::BugsForDialect(Dialect::kMysqlLike).size();
  size_t postgres = minidb::BugsForDialect(Dialect::kPostgresStrict).size();
  CHECK_EQ(sqlite + mysql + postgres, registry.size());
  CHECK(sqlite > mysql);
  CHECK(mysql > postgres);
}

void TestCampaignDetectsMostBugs() {
  CampaignOptions options;
  options.seed = 20200604;
  options.databases_per_bug = 250;
  options.queries_per_database = 25;
  options.reduce = false;  // speed: reduction has its own test
  options.workers = campaign_workers;
  size_t total = 0;
  size_t detected = 0;
  for (Dialect dialect : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                          Dialect::kPostgresStrict}) {
    CampaignReport report = RunCampaign(dialect, options);
    total += report.results.size();
    detected += report.DetectedCount();
    for (const BugHuntResult& r : report.results) {
      if (!r.detected) {
        printf("  (undetected in budget: %s)\n", r.name);
      } else {
        // The firing oracle should match the registry's expectation.
        CHECK_MSG(r.oracle == minidb::LookupBug(r.bug).oracle,
                  "bug %s fired %s", r.name, OracleName(r.oracle));
      }
    }
  }
  CHECK_MSG(detected * 4 >= total * 3, "detected only %zu of %zu bugs",
            detected, total);
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      pqs::campaign_workers = std::atoi(argv[i + 1]);
      ++i;
    }
  }
  pqs::TestRegistryShape();
  pqs::TestCampaignDetectsMostBugs();
  return pqs::test::Summary("test_campaign");
}
