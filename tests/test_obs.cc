// PR-9 telemetry subsystem: JSON serializer units, exact-bucket histogram
// merge identity (the property that makes N-worker metric output byte-
// identical to 1-worker), flight-recorder ring wraparound, phase-span
// nesting under the logical clock, kill-switch no-op behavior, and
// end-to-end checks that runner/campaign findings carry a non-empty
// flight-recorder dump whose merged metrics are worker-count-invariant.
//
// Accepts `--workers N` (the CI ThreadSanitizer job passes 4); every
// property is worker-count-invariant.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/minidb/database.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/pqs/campaign.h"
#include "src/pqs/runner.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

int property_workers = 4;

// ---------------------------------------------------------------------------
// JSON serializer
// ---------------------------------------------------------------------------

void TestJsonBuilder() {
  CHECK_EQ(obs::JsonEscape("plain"), std::string("plain"));
  CHECK_EQ(obs::JsonEscape("a\"b\\c\nd"), std::string("a\\\"b\\\\c\\nd"));
  CHECK_EQ(obs::JsonEscape(std::string(1, '\x01')), std::string("\\u0001"));
  CHECK_EQ(obs::JsonNumber(1.25, 2), std::string("1.25"));
  CHECK_EQ(obs::JsonNumber(0.0 / 0.0, 2), std::string("0.00"));

  obs::JsonBuilder jb;
  jb.BeginObject();
  jb.Field("n", static_cast<uint64_t>(7));
  jb.Field("s", std::string("a\"b"));
  jb.Field("f", 2.5, 1);
  jb.Field("b", true);
  jb.BeginArray("arr");
  jb.Element(static_cast<uint64_t>(1));
  jb.Element(static_cast<uint64_t>(2));
  jb.EndArray();
  jb.BeginObject("o");
  jb.EndObject();
  jb.EndObject();
  CHECK_EQ(jb.str(),
           std::string("{\"n\": 7, \"s\": \"a\\\"b\", \"f\": 2.5, "
                       "\"b\": true, \"arr\": [1, 2], \"o\": {}}"));
}

// ---------------------------------------------------------------------------
// Histogram / registry merge identity
// ---------------------------------------------------------------------------

void TestHistogramExactBucketMerge() {
  // Exact buckets: splitting a value stream across N histograms and
  // merging equals recording it all into one — byte-level, via ToJson.
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 500; ++i) values.push_back((i * 37) % 4096);
  values.push_back(0);
  values.push_back(1u << 20);  // clamps to the open-ended last bucket

  obs::MetricsRegistry single;
  for (uint64_t v : values) single.RecordPhaseTicks(obs::Phase::kGenerate, v);

  constexpr int kShards = 4;
  obs::MetricsRegistry shards[kShards];
  for (size_t i = 0; i < values.size(); ++i) {
    shards[i % kShards].RecordPhaseTicks(obs::Phase::kGenerate, values[i]);
  }
  obs::MetricsRegistry merged;
  for (int s = 0; s < kShards; ++s) merged.Merge(shards[s]);

  CHECK_EQ(merged.ToJson(false), single.ToJson(false));
  const obs::Histogram& h = merged.phase_ticks(obs::Phase::kGenerate);
  CHECK_EQ(h.count(), static_cast<uint64_t>(values.size()));
  CHECK_EQ(h.max(), static_cast<uint64_t>(1u << 20));
  CHECK(h.bucket(0) > 0);  // the explicit zero landed in bucket 0

  // Counters add, gauges take the max.
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.Count(obs::Counter::kPoolHits, 3);
  b.Count(obs::Counter::kPoolHits, 4);
  a.GaugeMax(obs::Gauge::kMaxSpanDepth, 2);
  b.GaugeMax(obs::Gauge::kMaxSpanDepth, 5);
  a.Merge(b);
  CHECK_EQ(a.counter(obs::Counter::kPoolHits), static_cast<uint64_t>(7));
  CHECK_EQ(a.gauge(obs::Gauge::kMaxSpanDepth), static_cast<uint64_t>(5));

  // Wall-clock histograms appear only under include_wall.
  CHECK(single.ToJson(false).find("phase_wall_micros") == std::string::npos);
  CHECK(single.ToJson(true).find("phase_wall_micros") != std::string::npos);
  CHECK(single.ToJson(false).find("phase_profile") != std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder ring
// ---------------------------------------------------------------------------

void TestRingWraparound() {
  obs::FlightRecorder ring(8);
  CHECK_EQ(ring.capacity(), static_cast<size_t>(8));
  for (uint32_t i = 1; i <= 20; ++i) {
    ring.Emit(i, obs::EventKind::kStatement, i, 0);
  }
  CHECK_EQ(ring.total_emitted(), static_cast<uint64_t>(20));
  std::vector<obs::FlightEvent> dump = ring.Dump();
  CHECK_EQ(dump.size(), static_cast<size_t>(8));
  // Oldest-first: events 13..20 survive, in emission order.
  for (size_t i = 0; i < dump.size(); ++i) {
    CHECK_EQ(dump[i].tick, static_cast<uint64_t>(13 + i));
    CHECK_EQ(dump[i].a, static_cast<uint32_t>(13 + i));
  }
  // A short ring dumps exactly what was emitted.
  obs::FlightRecorder small(8);
  small.Emit(1, obs::EventKind::kEviction, 2, 3);
  std::vector<obs::FlightEvent> one = small.Dump();
  CHECK_EQ(one.size(), static_cast<size_t>(1));
  CHECK(one[0].kind == obs::EventKind::kEviction);
  CHECK_EQ(obs::FormatFlightEvent(one[0]), std::string("t=1 evict a=2 b=3"));
}

// ---------------------------------------------------------------------------
// Span nesting under the logical clock
// ---------------------------------------------------------------------------

void TestSpanNestingLogicalClock() {
  obs::SessionTelemetry session;
  {
    obs::ScopedSessionTelemetry install(&session);
    obs::ScopedPhase outer(obs::Phase::kOracleCheck);
    {
      obs::ScopedPhase inner(obs::Phase::kEngineExecute);
      obs::CountStatement(0, false);
      obs::CountStatement(0, true);
    }
    obs::CountStatement(0, false);
  }
  // Logical clock advanced once per statement; spans recorded tick deltas.
  CHECK_EQ(session.clock, static_cast<uint64_t>(3));
  CHECK_EQ(session.metrics.counter(obs::Counter::kStatementsExecuted),
           static_cast<uint64_t>(3));
  CHECK_EQ(session.metrics.counter(obs::Counter::kStatementErrors),
           static_cast<uint64_t>(1));
  CHECK_EQ(session.metrics.gauge(obs::Gauge::kMaxSpanDepth),
           static_cast<uint64_t>(2));
  const obs::Histogram& inner_h =
      session.metrics.phase_ticks(obs::Phase::kEngineExecute);
  CHECK_EQ(inner_h.count(), static_cast<uint64_t>(1));
  CHECK_EQ(inner_h.sum(), static_cast<uint64_t>(2));  // two stmts inside
  const obs::Histogram& outer_h =
      session.metrics.phase_ticks(obs::Phase::kOracleCheck);
  CHECK_EQ(outer_h.count(), static_cast<uint64_t>(1));
  CHECK_EQ(outer_h.sum(), static_cast<uint64_t>(3));  // all three stmts

  // Ring order: begin(outer), begin(inner), stmt, stmt, end(inner), stmt,
  // end(outer) — phase begin/end events bracket correctly.
  std::vector<obs::FlightEvent> dump = session.recorder.Dump();
  CHECK_EQ(dump.size(), static_cast<size_t>(7));
  CHECK(dump[0].kind == obs::EventKind::kPhaseBegin);
  CHECK_EQ(dump[0].a, static_cast<uint32_t>(obs::Phase::kOracleCheck));
  CHECK_EQ(dump[0].b, static_cast<uint32_t>(1));  // depth 1
  CHECK(dump[1].kind == obs::EventKind::kPhaseBegin);
  CHECK_EQ(dump[1].b, static_cast<uint32_t>(2));  // depth 2
  CHECK(dump[2].kind == obs::EventKind::kStatement);
  CHECK(dump[4].kind == obs::EventKind::kPhaseEnd);
  CHECK_EQ(dump[4].a, static_cast<uint32_t>(obs::Phase::kEngineExecute));
  CHECK_EQ(dump[4].b, static_cast<uint32_t>(2));  // tick delta
  CHECK(dump[6].kind == obs::EventKind::kPhaseEnd);
  CHECK_EQ(dump[6].a, static_cast<uint32_t>(obs::Phase::kOracleCheck));
  // Spans closed cleanly.
  CHECK_EQ(session.span_depth, static_cast<uint32_t>(0));
}

// ---------------------------------------------------------------------------
// Kill switch
// ---------------------------------------------------------------------------

void TestKillSwitchNoOp() {
  CHECK(obs::TelemetryEnabled());
  obs::SetTelemetryEnabled(false);
  obs::SessionTelemetry session;
  {
    // Installation under a disabled switch leaves the TLS slot null, so
    // every emit in scope is a no-op.
    obs::ScopedSessionTelemetry install(&session);
    CHECK(obs::CurrentTelemetry() == nullptr);
    obs::Count(obs::Counter::kPoolHits);
    obs::CountStatement(0, false);
    obs::Emit(obs::EventKind::kEviction, 1, 2);
    obs::ScopedPhase span(obs::Phase::kGenerate);
  }
  obs::SetTelemetryEnabled(true);
  CHECK_EQ(session.clock, static_cast<uint64_t>(0));
  CHECK_EQ(session.recorder.total_emitted(), static_cast<uint64_t>(0));
  CHECK_EQ(session.metrics.ToJson(false),
           obs::MetricsRegistry().ToJson(false));
}

// ---------------------------------------------------------------------------
// End-to-end: runner metrics worker identity + finding provenance
// ---------------------------------------------------------------------------

RunReport BuggyRun(OracleFamily family, int workers) {
  RunnerOptions options;
  options.seed = 2020;
  options.databases = 24;
  options.queries_per_database = 12;
  options.workers = workers;
  options.family = family;
  options.gen.explicit_join_probability = 0.5;
  options.gen.order_by_probability = 0.4;
  EngineFactory factory = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(
        Dialect::kSqliteFlex,
        BugConfig::Single(BugId::kPartialIndexIsNotInference));
  };
  PqsRunner runner(factory, options);
  return runner.Run();
}

void TestWorkerMetricIdentity() {
  for (OracleFamily family : {OracleFamily::kContainment,
                              OracleFamily::kNorec, OracleFamily::kTlp}) {
    RunReport sequential = BuggyRun(family, 1);
    RunReport sharded = BuggyRun(family, property_workers);
    // The merged registry is byte-identical across worker counts — the
    // same guarantee RunStats::Merge gives the classic counters.
    CHECK_EQ(sharded.metrics.ToJson(false), sequential.metrics.ToJson(false));
    // The registry actually carried the migrated stats.
    CHECK(sequential.metrics.counter(obs::Counter::kStatementsExecuted) > 0);
    CHECK_EQ(sequential.metrics.counter(obs::Counter::kStatementsExecuted),
             sequential.stats.statements_executed);
    CHECK(sequential.metrics.counter(obs::Counter::kPoolHits) > 0);
    CHECK(sequential.metrics.counter(obs::Counter::kPivotSelections) > 0 ||
          family != OracleFamily::kContainment);
    // Phase spans fired for the pipeline stages every family exercises.
    for (obs::Phase p : {obs::Phase::kGenerate, obs::Phase::kEngineExecute,
                         obs::Phase::kGroundTruthReplay}) {
      CHECK(sequential.metrics.phase_ticks(p).count() > 0);
    }
    // Finding provenance: every finding ships a non-empty flight dump
    // whose final event is its own kFindingRecorded marker, identically
    // across worker counts (the ring is per-session, not per-worker).
    CHECK(!sequential.findings.empty());
    CHECK_EQ(sharded.findings.size(), sequential.findings.size());
    for (size_t i = 0; i < sequential.findings.size(); ++i) {
      const Finding& f = sequential.findings[i];
      CHECK(!f.flight.empty());
      CHECK(f.flight.back().kind == obs::EventKind::kFindingRecorded);
      CHECK_EQ(f.flight.back().a, static_cast<uint32_t>(f.oracle));
      if (i < sharded.findings.size()) {
        const Finding& g = sharded.findings[i];
        CHECK_EQ(g.flight.size(), f.flight.size());
        for (size_t e = 0; e < f.flight.size() && e < g.flight.size(); ++e) {
          CHECK(f.flight[e].kind == g.flight[e].kind);
          CHECK_EQ(f.flight[e].tick, g.flight[e].tick);
          CHECK_EQ(f.flight[e].a, g.flight[e].a);
          CHECK_EQ(f.flight[e].b, g.flight[e].b);
        }
      }
    }
  }
}

// Campaign sweep over the whole bug registry: every detected finding —
// whatever oracle fired (containment, error, crash, NoREC, TLP) — still
// carries its flight dump after reduction.
void TestCampaignFindingsCarryFlight() {
  CampaignOptions options;
  options.seed = 20200604;
  options.databases_per_bug = 120;
  options.queries_per_database = 20;
  options.reduce = true;
  options.workers = property_workers;
  CampaignReport report = RunCampaign(Dialect::kSqliteFlex, options);
  size_t detected = 0;
  for (const BugHuntResult& r : report.results) {
    if (!r.detected) continue;
    ++detected;
    CHECK_MSG(!r.reduced.flight.empty(),
              "bug %s: reduced finding lost its flight dump", r.name);
  }
  CHECK(detected > 0);
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      pqs::property_workers = std::atoi(argv[i + 1]);
      if (pqs::property_workers < 1) pqs::property_workers = 1;
      ++i;
    }
  }
  pqs::TestJsonBuilder();
  pqs::TestHistogramExactBucketMerge();
  pqs::TestRingWraparound();
  pqs::TestSpanNestingLogicalClock();
  pqs::TestKillSwitchNoOp();
  pqs::TestWorkerMetricIdentity();
  pqs::TestCampaignFindingsCarryFlight();
  return pqs::test::Summary("test_obs");
}
