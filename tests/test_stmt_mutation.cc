// PR-5 statement-level state mutation engine: per-statement unit checks,
// the index-consistency property (a session answered through the scan
// planner's secondary indexes must equal the same session with the planner
// disabled), default-budget detection of the new index/mutation bug
// classes, the SqliteConnection statement-cache invalidation regression,
// and an always-on differential sweep of mutating sessions against real
// sqlite3.
//
// Accepts `--workers N` (the CI ThreadSanitizer job passes 4); every
// property is worker-count-invariant.
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/minidb/bug_registry.h"
#include "src/minidb/database.h"
#include "src/pqs/campaign.h"
#include "src/pqs/runner.h"
#include "src/pqs/scheduler.h"
#include "src/sqlite3db/sqlite_connection.h"
#include "src/sqlparser/render.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

int property_workers = 1;

// ---------------------------------------------------------------------------
// Hand-built statement helpers
// ---------------------------------------------------------------------------

ColumnDef Column(const std::string& name, Affinity affinity,
                 bool unique = false) {
  ColumnDef def;
  def.name = name;
  def.affinity = affinity;
  def.declared_type = affinity == Affinity::kInteger
                          ? "INT"
                          : (affinity == Affinity::kReal ? "REAL" : "TEXT");
  def.unique = unique;
  return def;
}

void MakeTable(minidb::Database* db, const std::string& name,
               std::vector<ColumnDef> columns) {
  CreateTableStmt ct;
  ct.table_name = name;
  ct.columns = std::move(columns);
  CHECK(db->Execute(ct).ok());
}

void InsertRow(minidb::Database* db, const std::string& table,
               std::vector<ExprPtr> values,
               StatementStatus expect = StatementStatus::kOk) {
  InsertStmt ins;
  ins.table_name = table;
  ins.rows.push_back(std::move(values));
  CHECK_EQ(static_cast<int>(db->Execute(ins).status),
           static_cast<int>(expect));
}

std::vector<ExprPtr> Row2(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> row;
  row.push_back(std::move(a));
  row.push_back(std::move(b));
  return row;
}

UpdateStmt MakeUpdate(const std::string& table, const std::string& column,
                      ExprPtr value, ExprPtr where) {
  UpdateStmt up;
  up.table_name = table;
  UpdateStmt::Assignment assign;
  assign.column = column;
  assign.value = std::move(value);
  up.assignments.push_back(std::move(assign));
  up.where = std::move(where);
  return up;
}

StatementResult Fetch(minidb::Database* db, const std::string& table) {
  SelectStmt fetch;
  fetch.from_tables = {table};
  return db->Execute(fetch);
}

ExprPtr ColEq(const std::string& table, const std::string& column,
              int64_t value) {
  return MakeBinary(BinaryOp::kEq, MakeColumnRef(table, column),
                    MakeIntLiteral(value));
}

// ---------------------------------------------------------------------------
// Per-statement unit semantics
// ---------------------------------------------------------------------------

void TestUpdateSemantics() {
  minidb::Database db(Dialect::kSqliteFlex);
  MakeTable(&db, "t", {Column("a", Affinity::kInteger),
                       Column("b", Affinity::kInteger)});
  InsertRow(&db, "t", Row2(MakeIntLiteral(1), MakeIntLiteral(10)));
  InsertRow(&db, "t", Row2(MakeIntLiteral(2), MakeIntLiteral(20)));

  // Matched rows only; unmatched rows untouched.
  UpdateStmt up = MakeUpdate(
      "t", "a",
      MakeBinary(BinaryOp::kAdd, MakeColumnRef("t", "a"), MakeIntLiteral(5)),
      ColEq("t", "a", 2));
  CHECK(db.Execute(up).ok());
  StatementResult rows = Fetch(&db, "t");
  CHECK_EQ(rows.rows.size(), static_cast<size_t>(2));
  CHECK(ValueEquals(rows.rows[0][0], SqlValue::Int(1)));
  CHECK(ValueEquals(rows.rows[1][0], SqlValue::Int(7)));

  // Multi-assignment reads the pre-update row: a swap really swaps.
  UpdateStmt swap;
  swap.table_name = "t";
  {
    UpdateStmt::Assignment a;
    a.column = "a";
    a.value = MakeColumnRef("t", "b");
    swap.assignments.push_back(std::move(a));
    UpdateStmt::Assignment b;
    b.column = "b";
    b.value = MakeColumnRef("t", "a");
    swap.assignments.push_back(std::move(b));
  }
  CHECK(db.Execute(swap).ok());
  rows = Fetch(&db, "t");
  CHECK(ValueEquals(rows.rows[0][0], SqlValue::Int(10)));
  CHECK(ValueEquals(rows.rows[0][1], SqlValue::Int(1)));
  CHECK(ValueEquals(rows.rows[1][0], SqlValue::Int(20)));
  CHECK(ValueEquals(rows.rows[1][1], SqlValue::Int(7)));

  // Unknown column / missing table are statement errors.
  UpdateStmt bad = MakeUpdate("t", "zz", MakeIntLiteral(0), nullptr);
  CHECK_EQ(static_cast<int>(db.Execute(bad).status),
           static_cast<int>(StatementStatus::kError));
  UpdateStmt missing = MakeUpdate("nope", "a", MakeIntLiteral(0), nullptr);
  CHECK_EQ(static_cast<int>(db.Execute(missing).status),
           static_cast<int>(StatementStatus::kError));
}

void TestUpdateConstraintRollback() {
  minidb::Database db(Dialect::kSqliteFlex);
  MakeTable(&db, "t", {Column("a", Affinity::kInteger, /*unique=*/true),
                       Column("b", Affinity::kInteger)});
  InsertRow(&db, "t", Row2(MakeIntLiteral(1), MakeIntLiteral(10)));
  InsertRow(&db, "t", Row2(MakeIntLiteral(2), MakeIntLiteral(20)));
  InsertRow(&db, "t", Row2(MakeIntLiteral(3), MakeIntLiteral(30)));

  // Updating rows 2 and 3 to a=1 collides with row 1: the whole statement
  // rolls back — including row 2, which was already applied when row 3
  // failed... actually row 2 already collides. Either way: no change.
  UpdateStmt up = MakeUpdate("t", "a", MakeIntLiteral(1),
                             MakeBinary(BinaryOp::kGt,
                                        MakeColumnRef("t", "a"),
                                        MakeIntLiteral(1)));
  CHECK_EQ(static_cast<int>(db.Execute(up).status),
           static_cast<int>(StatementStatus::kConstraintViolation));
  StatementResult rows = Fetch(&db, "t");
  CHECK(ValueEquals(rows.rows[0][0], SqlValue::Int(1)));
  CHECK(ValueEquals(rows.rows[1][0], SqlValue::Int(2)));
  CHECK(ValueEquals(rows.rows[2][0], SqlValue::Int(3)));

  // A row may keep its own unique value (self-collision excluded).
  UpdateStmt self = MakeUpdate("t", "a", MakeIntLiteral(2),
                               ColEq("t", "a", 2));
  CHECK(db.Execute(self).ok());
}

void TestDeleteSemantics() {
  minidb::Database db(Dialect::kSqliteFlex);
  MakeTable(&db, "t", {Column("a", Affinity::kInteger)});
  for (int64_t v : {1, 2, 3, 4}) {
    std::vector<ExprPtr> row;
    row.push_back(MakeIntLiteral(v));
    InsertRow(&db, "t", std::move(row));
  }
  DeleteStmt del;
  del.table_name = "t";
  del.where = MakeBinary(BinaryOp::kLt, MakeColumnRef("t", "a"),
                         MakeIntLiteral(3));
  CHECK(db.Execute(del).ok());
  StatementResult rows = Fetch(&db, "t");
  CHECK_EQ(rows.rows.size(), static_cast<size_t>(2));
  CHECK(ValueEquals(rows.rows[0][0], SqlValue::Int(3)));

  // DELETE without WHERE empties the table; missing table errors.
  DeleteStmt all;
  all.table_name = "t";
  CHECK(db.Execute(all).ok());
  CHECK_EQ(Fetch(&db, "t").rows.size(), static_cast<size_t>(0));
  DeleteStmt missing;
  missing.table_name = "nope";
  CHECK_EQ(static_cast<int>(db.Execute(missing).status),
           static_cast<int>(StatementStatus::kError));
}

void TestIndexDdlSemantics() {
  minidb::Database db(Dialect::kSqliteFlex);
  MakeTable(&db, "t", {Column("a", Affinity::kInteger)});

  CreateIndexStmt ci;
  ci.index_name = "ix";
  ci.table_name = "t";
  ci.columns = {"a"};
  CHECK(db.Execute(ci).ok());
  CHECK_EQ(db.index_count(), static_cast<size_t>(1));
  // Duplicate names collide (matches real SQLite).
  CHECK_EQ(static_cast<int>(db.Execute(ci).status),
           static_cast<int>(StatementStatus::kError));

  MaintenanceStmt reindex;
  reindex.table_name = "t";
  CHECK(db.Execute(reindex).ok());
  MaintenanceStmt bad_table;
  bad_table.table_name = "nope";
  CHECK_EQ(static_cast<int>(db.Execute(bad_table).status),
           static_cast<int>(StatementStatus::kError));

  DropIndexStmt drop;
  drop.index_name = "ix";
  drop.table_name = "t";
  CHECK(db.Execute(drop).ok());
  CHECK_EQ(db.index_count(), static_cast<size_t>(0));
  CHECK_EQ(static_cast<int>(db.Execute(drop).status),
           static_cast<int>(StatementStatus::kError));
}

void TestSqlitePrimaryKeyNullQuirk() {
  // "INT PRIMARY KEY" (not INTEGER) admits NULLs in real SQLite; the
  // strict dialects enforce PK ⇒ NOT NULL.
  minidb::Database lite(Dialect::kSqliteFlex);
  ColumnDef pk = Column("a", Affinity::kInteger);
  pk.primary_key = true;
  MakeTable(&lite, "t", {pk, Column("b", Affinity::kText)});
  InsertRow(&lite, "t", Row2(MakeNullLiteral(), MakeTextLiteral("x")));
  InsertRow(&lite, "t", Row2(MakeNullLiteral(), MakeTextLiteral("y")));
  CHECK_EQ(Fetch(&lite, "t").rows.size(), static_cast<size_t>(2));

  minidb::Database strict(Dialect::kPostgresStrict);
  MakeTable(&strict, "t", {pk, Column("b", Affinity::kText)});
  InsertRow(&strict, "t", Row2(MakeNullLiteral(), MakeTextLiteral("x")),
            StatementStatus::kConstraintViolation);
}

// ---------------------------------------------------------------------------
// Index-engine bug hooks (direct, single-connection)
// ---------------------------------------------------------------------------

// One indexed table with rows 1..4; probing WHERE a >= 2 goes through the
// scan planner.
void SetupIndexedTable(minidb::Database* db) {
  MakeTable(db, "t", {Column("a", Affinity::kInteger)});
  CreateIndexStmt ci;
  ci.index_name = "ix";
  ci.table_name = "t";
  ci.columns = {"a"};
  CHECK(db->Execute(ci).ok());
  for (int64_t v : {1, 2, 3, 4}) {
    std::vector<ExprPtr> row;
    row.push_back(MakeIntLiteral(v));
    InsertRow(db, "t", std::move(row));
  }
}

StatementResult ProbeGe2(minidb::Database* db) {
  SelectStmt sel;
  sel.from_tables = {"t"};
  sel.where = MakeBinary(BinaryOp::kGe, MakeColumnRef("t", "a"),
                         MakeIntLiteral(2));
  return db->Execute(sel);
}

void TestIndexBugHooks() {
  {
    // Clean engine: the index scan answers exactly like a full scan.
    minidb::Database db(Dialect::kSqliteFlex);
    SetupIndexedTable(&db);
    CHECK_EQ(ProbeGe2(&db).rows.size(), static_cast<size_t>(3));
  }
  {
    // index-lookup-skip-last drops the greatest-key match.
    minidb::Database db(Dialect::kSqliteFlex,
                        BugConfig::Single(BugId::kIndexLookupSkipLast));
    SetupIndexedTable(&db);
    StatementResult r = ProbeGe2(&db);
    CHECK_EQ(r.rows.size(), static_cast<size_t>(2));
    for (const auto& row : r.rows) {
      CHECK(!ValueEquals(row[0], SqlValue::Int(4)));
    }
  }
  {
    // update-index-stale: the updated row keeps its old key, so probing
    // its new value misses it while the table itself is correct.
    minidb::Database db(Dialect::kSqliteFlex,
                        BugConfig::Single(BugId::kUpdateIndexStale));
    SetupIndexedTable(&db);
    UpdateStmt up = MakeUpdate("t", "a", MakeIntLiteral(9),
                               ColEq("t", "a", 1));
    CHECK(db.Execute(up).ok());
    CHECK_EQ(Fetch(&db, "t").rows.size(), static_cast<size_t>(4));
    SelectStmt sel;
    sel.from_tables = {"t"};
    sel.where = ColEq("t", "a", 9);
    CHECK_EQ(db.Execute(sel).rows.size(), static_cast<size_t>(0));
    // Maintenance repairs the corruption.
    MaintenanceStmt reindex;
    reindex.table_name = "t";
    CHECK(db.Execute(reindex).ok());
    CHECK_EQ(db.Execute(sel).rows.size(), static_cast<size_t>(1));
  }
  {
    // reindex-truncate: the rebuild keeps only half the entries.
    minidb::Database db(Dialect::kSqliteFlex,
                        BugConfig::Single(BugId::kReindexTruncate));
    SetupIndexedTable(&db);
    MaintenanceStmt reindex;
    reindex.table_name = "t";
    CHECK(db.Execute(reindex).ok());
    CHECK_EQ(ProbeGe2(&db).rows.size(), static_cast<size_t>(1));
  }
  {
    // delete-overrun sweeps up the row after the last match.
    minidb::Database db(Dialect::kMysqlLike,
                        BugConfig::Single(BugId::kDeleteOverrun));
    SetupIndexedTable(&db);
    DeleteStmt del;
    del.table_name = "t";
    del.where = MakeBinary(BinaryOp::kLe, MakeColumnRef("t", "a"),
                           MakeIntLiteral(2));
    CHECK(db.Execute(del).ok());
    CHECK_EQ(Fetch(&db, "t").rows.size(), static_cast<size_t>(1));
  }
  {
    // update-set-or-crash: ≥2 assignments + OR in the WHERE → SEGFAULT.
    minidb::Database db(Dialect::kMysqlLike,
                        BugConfig::Single(BugId::kUpdateSetOrCrash));
    MakeTable(&db, "t", {Column("a", Affinity::kInteger),
                         Column("b", Affinity::kInteger)});
    InsertRow(&db, "t", Row2(MakeIntLiteral(1), MakeIntLiteral(2)));
    UpdateStmt up;
    up.table_name = "t";
    for (const char* col : {"a", "b"}) {
      UpdateStmt::Assignment a;
      a.column = col;
      a.value = MakeIntLiteral(0);
      up.assignments.push_back(std::move(a));
    }
    up.where = MakeBinary(BinaryOp::kOr, ColEq("t", "a", 1),
                          ColEq("t", "b", 2));
    CHECK_EQ(static_cast<int>(db.Execute(up).status),
             static_cast<int>(StatementStatus::kCrash));
    CHECK(!db.alive());
  }
  {
    // partial-index-update-miss: membership is not recomputed on UPDATE,
    // so a row moved *into* the predicate stays invisible to the
    // partial-index scan.
    minidb::Database db(Dialect::kPostgresStrict,
                        BugConfig::Single(BugId::kPartialIndexUpdateMiss));
    MakeTable(&db, "t", {Column("a", Affinity::kInteger)});
    CreateIndexStmt ci;
    ci.index_name = "ix";
    ci.table_name = "t";
    ci.columns = {"a"};
    ci.where = MakeBinary(BinaryOp::kGt, MakeColumnRef("t", "a"),
                          MakeIntLiteral(5));
    CHECK(db.Execute(ci).ok());
    for (int64_t v : {1, 7}) {
      std::vector<ExprPtr> row;
      row.push_back(MakeIntLiteral(v));
      InsertRow(&db, "t", std::move(row));
    }
    UpdateStmt up = MakeUpdate("t", "a", MakeIntLiteral(8),
                               ColEq("t", "a", 1));
    CHECK(db.Execute(up).ok());
    // WHERE = (a > 5) AND (a >= 2): the first conjunct is the partial
    // predicate, so the planner uses the stale index — which still only
    // knows the old 7-row.
    SelectStmt sel;
    sel.from_tables = {"t"};
    sel.where = MakeBinary(
        BinaryOp::kAnd,
        MakeBinary(BinaryOp::kGt, MakeColumnRef("t", "a"),
                   MakeIntLiteral(5)),
        MakeBinary(BinaryOp::kGe, MakeColumnRef("t", "a"),
                   MakeIntLiteral(2)));
    StatementResult r = db.Execute(sel);
    CHECK_EQ(r.rows.size(), static_cast<size_t>(1));
  }
  {
    // reindex-partial-error: maintenance over a partial index errors.
    minidb::Database db(Dialect::kPostgresStrict,
                        BugConfig::Single(BugId::kReindexPartialError));
    MakeTable(&db, "t", {Column("a", Affinity::kInteger)});
    CreateIndexStmt ci;
    ci.index_name = "ix";
    ci.table_name = "t";
    ci.columns = {"a"};
    ci.where = MakeIsNull(MakeColumnRef("t", "a"), /*negated=*/true);
    CHECK(db.Execute(ci).ok());
    MaintenanceStmt reindex;
    reindex.table_name = "t";
    CHECK_EQ(static_cast<int>(db.Execute(reindex).status),
             static_cast<int>(StatementStatus::kError));
  }
}

// ---------------------------------------------------------------------------
// Index-consistency property
// ---------------------------------------------------------------------------

// Scan-with-index == scan-without-index over generated mutating sessions:
// two clean engines execute the identical statement stream, one with the
// scan planner disabled; every single-table SELECT must come back
// row-for-row identical (the planner preserves table order).
void TestIndexConsistencyProperty() {
  uint64_t sessions = 0;
  uint64_t selects_compared = 0;
  minidb::CoverageMap coverage;
  for (Dialect dialect : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                          Dialect::kPostgresStrict}) {
    GeneratorOptions gopts;
    Generator generator(gopts, dialect);
    for (uint64_t s = 0; s < 667; ++s) {
      Rng rng(Rng::StreamSeed(0x1d5 + static_cast<uint64_t>(dialect), s));
      DatabasePlan plan = generator.GenerateDatabase(&rng);
      minidb::Database with_index(dialect);
      with_index.set_coverage_sink(&coverage);
      minidb::Database without_index(dialect);
      without_index.set_use_index_scan(false);
      ActionScheduler scheduler(&generator, gopts, &plan);
      auto exec_both = [&](const Stmt& stmt) {
        StatementResult a = with_index.Execute(stmt);
        StatementResult b = without_index.Execute(stmt);
        CHECK_EQ(static_cast<int>(a.status), static_cast<int>(b.status));
        scheduler.Observe(stmt, a.ok());
      };
      for (const StmtPtr& stmt : plan.statements) exec_both(*stmt);
      for (int q = 0; q < 6; ++q) {
        for (const StmtPtr& action : scheduler.NextBatch(&rng)) {
          exec_both(*action);
        }
        const TableSchema& table =
            plan.tables[rng.Below(plan.tables.size())];
        std::vector<const TableSchema*> tables{&table};
        ExprPtr where = generator.GeneratePredicate(tables, &rng);
        if (ExprPtr probe =
                scheduler.MaybePartialIndexProbe(table.name, &rng)) {
          where = MakeBinary(BinaryOp::kAnd, std::move(probe),
                             std::move(where));
        }
        SelectStmt sel;
        sel.from_tables = {table.name};
        sel.where = std::move(where);
        StatementResult a = with_index.Execute(sel);
        StatementResult b = without_index.Execute(sel);
        CHECK_EQ(static_cast<int>(a.status), static_cast<int>(b.status));
        if (!a.ok()) continue;
        bool identical = a.rows.size() == b.rows.size();
        for (size_t r = 0; identical && r < a.rows.size(); ++r) {
          identical = a.rows[r].size() == b.rows[r].size();
          for (size_t c = 0; identical && c < a.rows[r].size(); ++c) {
            identical = ValueEquals(a.rows[r][c], b.rows[r][c]);
          }
        }
        CHECK_MSG(identical, "index scan diverged on: %s",
                  RenderStmt(sel, dialect).c_str());
        ++selects_compared;
      }
      ++sessions;
    }
  }
  CHECK_MSG(sessions >= 2000, "only %llu sessions generated",
            static_cast<unsigned long long>(sessions));
  CHECK(selects_compared > 5000);
  // The property only means something if the planner actually ran.
  CHECK(coverage.Hits(minidb::Feature::kIndexScan) > 100);
  CHECK(coverage.Hits(minidb::Feature::kPartialIndexScan) > 10);
  CHECK(coverage.Hits(minidb::Feature::kUpdate) > 100);
  CHECK(coverage.Hits(minidb::Feature::kDelete) > 100);
  CHECK(coverage.Hits(minidb::Feature::kDropIndex) > 10);
  CHECK(coverage.Hits(minidb::Feature::kMaintenance) > 10);
}

// ---------------------------------------------------------------------------
// Clean sharded mutating sessions + real-SQLite differential sweep
// ---------------------------------------------------------------------------

void TestCleanMutatingSessionsHaveNoFindings() {
  for (Dialect dialect : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                          Dialect::kPostgresStrict}) {
    RunnerOptions opts;
    opts.seed = 0x57a7e + static_cast<uint64_t>(dialect);
    opts.databases = 40;
    opts.queries_per_database = 12;
    opts.workers = property_workers;
    EngineFactory factory = [dialect]() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(dialect);
    };
    PqsRunner runner(factory, opts);
    RunReport report = runner.Run();
    CHECK_MSG(report.findings.empty(),
              "dialect %s: %zu false finding(s) on a clean engine",
              DialectName(dialect), report.findings.size());
    // The stream really mutates: every action kind occurred, and the
    // state compare ran at every pivot fetch.
    CHECK(report.stats.actions_insert > 0);
    CHECK(report.stats.actions_update > 0);
    CHECK(report.stats.actions_delete > 0);
    CHECK(report.stats.actions_create_index > 0);
    CHECK(report.stats.actions_drop_index > 0);
    CHECK(report.stats.actions_maintenance > 0);
    CHECK(report.stats.state_compares > 0);
  }
}

void TestRealSqliteMutatingSweepHasNoFalseFindings() {
  if (!SqliteConnection::Available()) {
    std::printf("  (real sqlite3 unavailable; sweep skipped)\n");
    return;
  }
  RunnerOptions opts;
  opts.seed = 0x5EED5;
  opts.databases = 80;
  opts.queries_per_database = 15;
  opts.workers = property_workers;
  EngineFactory factory = []() -> ConnectionPtr {
    return std::make_unique<SqliteConnection>();
  };
  PqsRunner runner(factory, opts);
  RunReport report = runner.Run();
  CHECK_MSG(report.findings.empty(),
            "real sqlite: %zu false finding(s) in %llu checked queries",
            report.findings.size(),
            static_cast<unsigned long long>(report.stats.queries_checked));
  CHECK(report.stats.queries_checked > 500);
  uint64_t mutations = report.stats.actions_update +
                       report.stats.actions_delete +
                       report.stats.actions_create_index +
                       report.stats.actions_drop_index +
                       report.stats.actions_maintenance;
  CHECK_MSG(mutations > 300,
            "only %llu mutation statements reached real sqlite",
            static_cast<unsigned long long>(mutations));
}

// ---------------------------------------------------------------------------
// Default-budget bug detection
// ---------------------------------------------------------------------------

void TestNewBugsDetectedInDefaultBudget() {
  CampaignOptions options;
  options.seed = 20200604;
  options.workers = property_workers;
  for (BugId bug :
       {BugId::kIndexLookupSkipLast, BugId::kUpdateIndexStale,
        BugId::kReindexTruncate, BugId::kDeleteOverrun,
        BugId::kUpdateSetOrCrash, BugId::kPartialIndexUpdateMiss,
        BugId::kReindexPartialError}) {
    BugHuntResult result = HuntBug(bug, options);
    const minidb::BugInfo& info = minidb::LookupBug(bug);
    CHECK_MSG(result.detected, "bug %s not detected in default budget",
              info.name);
    if (!result.detected) continue;
    CHECK_MSG(result.oracle == info.oracle, "bug %s fired %s, expected %s",
              info.name, OracleName(result.oracle), OracleName(info.oracle));
    // The reduced test case still replays differentially.
    CHECK(!result.reduced.statements.empty());
  }
}

// ---------------------------------------------------------------------------
// SqliteConnection statement-cache persistence
// ---------------------------------------------------------------------------

// Cached prepared statements survive every mutation statement kind — the
// sqlite3 v2 interface re-prepares transparently on schema change, and
// data changes are visible to a reset statement — and still return correct
// post-mutation results. An earlier revision flushed the cache on each
// DDL/UPDATE/DELETE, which silently erased the cache's benefit on the
// mutation-heavy workload; this test pins the persistence behavior.
void TestSqliteStatementCachePersistence() {
  if (!SqliteConnection::Available()) {
    std::printf("  (real sqlite3 unavailable; cache test skipped)\n");
    return;
  }
  SqliteConnection conn;
  CreateTableStmt ct;
  ct.table_name = "t";
  ct.columns = {Column("a", Affinity::kInteger)};
  CHECK(conn.Execute(ct).ok());
  InsertStmt ins;
  ins.table_name = "t";
  ins.rows.emplace_back();
  ins.rows.back().push_back(MakeIntLiteral(1));
  CHECK(conn.Execute(ins).ok());

  SelectStmt sel;
  sel.from_tables = {"t"};
  auto select_rows = [&]() {
    StatementResult r = conn.Execute(sel);
    CHECK(r.ok());
    return r.rows;
  };

  select_rows();  // miss: first preparation
  select_rows();  // hit: cached
  CHECK_EQ(conn.statement_cache_misses(), static_cast<uint64_t>(1));
  CHECK_EQ(conn.statement_cache_hits(), static_cast<uint64_t>(1));

  // Every mutation statement kind leaves the cache intact: the next SELECT
  // is a hit (no re-prepare) and its rows reflect the mutation.
  uint64_t expected_hits = 1;
  auto expect_persistence = [&](const Stmt& stmt) {
    CHECK(conn.Execute(stmt).ok());
    auto rows = select_rows();
    ++expected_hits;
    CHECK_EQ(conn.statement_cache_misses(), static_cast<uint64_t>(1));
    CHECK_EQ(conn.statement_cache_hits(), expected_hits);
    return rows;
  };

  CreateIndexStmt ci;
  ci.index_name = "ix";
  ci.table_name = "t";
  ci.columns = {"a"};
  expect_persistence(ci);

  // The cached SELECT sees the updated value, not the prepared-time rows.
  UpdateStmt up = MakeUpdate("t", "a", MakeIntLiteral(2), nullptr);
  auto rows = expect_persistence(up);
  CHECK_EQ(rows.size(), static_cast<size_t>(1));
  CHECK(rows[0][0].cls == StorageClass::kInteger && rows[0][0].i == 2);

  MaintenanceStmt reindex;
  reindex.table_name = "t";
  expect_persistence(reindex);

  DropIndexStmt drop;
  drop.index_name = "ix";
  drop.table_name = "t";
  expect_persistence(drop);

  // Appended rows are visible to the cached statement without re-preparing.
  CHECK(conn.Execute(ins).ok());
  rows = select_rows();
  ++expected_hits;
  CHECK_EQ(rows.size(), static_cast<size_t>(2));
  CHECK_EQ(conn.statement_cache_hits(), expected_hits);

  // A matching DELETE is reflected too.
  DeleteStmt del;
  del.table_name = "t";
  del.where = ColEq("t", "a", 1);
  rows = expect_persistence(del);
  CHECK_EQ(rows.size(), static_cast<size_t>(1));
  CHECK_EQ(conn.statement_cache_misses(), static_cast<uint64_t>(1));

  // Filtered SELECTs share one parameterized template: the same shape with
  // a different literal re-binds the cached statement instead of preparing
  // a second one, and each execution filters by its own literal.
  SelectStmt filtered;
  filtered.from_tables = {"t"};
  filtered.where = ColEq("t", "a", 2);
  StatementResult match = conn.Execute(filtered);  // miss: new template
  CHECK(match.ok());
  CHECK_EQ(match.rows.size(), static_cast<size_t>(1));
  uint64_t hits_before = conn.statement_cache_hits();
  filtered.where = ColEq("t", "a", 99);
  StatementResult none = conn.Execute(filtered);  // hit: same template
  CHECK(none.ok());
  CHECK_EQ(none.rows.size(), static_cast<size_t>(0));
  CHECK_EQ(conn.statement_cache_misses(), static_cast<uint64_t>(2));
  CHECK_EQ(conn.statement_cache_hits(), hits_before + 1);
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      pqs::property_workers = std::atoi(argv[i + 1]);
      ++i;
    }
  }
  pqs::TestUpdateSemantics();
  pqs::TestUpdateConstraintRollback();
  pqs::TestDeleteSemantics();
  pqs::TestIndexDdlSemantics();
  pqs::TestSqlitePrimaryKeyNullQuirk();
  pqs::TestIndexBugHooks();
  pqs::TestIndexConsistencyProperty();
  pqs::TestCleanMutatingSessionsHaveNoFindings();
  pqs::TestRealSqliteMutatingSweepHasNoFalseFindings();
  pqs::TestNewBugsDetectedInDefaultBudget();
  pqs::TestSqliteStatementCachePersistence();
  return pqs::test::Summary("test_stmt_mutation");
}
