// Minimal assertion helpers for the ctest unit tests (no external test
// framework is baked into the image, and these tests don't need one).
#ifndef PQS_TESTS_TEST_UTIL_H_
#define PQS_TESTS_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pqs {
namespace test {

inline int failures = 0;

#define CHECK_MSG(cond, ...)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ++pqs::test::failures;                                          \
      std::printf("FAIL %s:%d: %s\n     ", __FILE__, __LINE__, #cond); \
      std::printf(__VA_ARGS__);                                       \
      std::printf("\n");                                              \
    }                                                                 \
  } while (0)

#define CHECK(cond) CHECK_MSG(cond, "%s", "")

#define CHECK_EQ(a, b)                                                       \
  do {                                                                       \
    auto va = (a);                                                           \
    auto vb = (b);                                                           \
    if (!(va == vb)) {                                                       \
      ++pqs::test::failures;                                                 \
      std::printf("FAIL %s:%d: %s == %s\n", __FILE__, __LINE__, #a, #b);     \
    }                                                                        \
  } while (0)

inline int Summary(const char* name) {
  if (failures == 0) {
    std::printf("PASS: %s\n", name);
    return 0;
  }
  std::printf("%d failure(s) in %s\n", failures, name);
  return 1;
}

}  // namespace test
}  // namespace pqs

#endif  // PQS_TESTS_TEST_UTIL_H_
