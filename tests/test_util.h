// Minimal assertion helpers for the ctest unit tests (no external test
// framework is baked into the image, and these tests don't need one).
#ifndef PQS_TESTS_TEST_UTIL_H_
#define PQS_TESTS_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pqs {
namespace test {

inline int failures = 0;

#define CHECK_MSG(cond, ...)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ++pqs::test::failures;                                          \
      std::printf("FAIL %s:%d: %s\n     ", __FILE__, __LINE__, #cond); \
      std::printf(__VA_ARGS__);                                       \
      std::printf("\n");                                              \
    }                                                                 \
  } while (0)

#define CHECK(cond) CHECK_MSG(cond, "%s", "")

#define CHECK_EQ(a, b)                                                       \
  do {                                                                       \
    auto va = (a);                                                           \
    auto vb = (b);                                                           \
    if (!(va == vb)) {                                                       \
      ++pqs::test::failures;                                                 \
      std::printf("FAIL %s:%d: %s == %s\n", __FILE__, __LINE__, #a, #b);     \
    }                                                                        \
  } while (0)

inline int Summary(const char* name) {
  if (failures == 0) {
    std::printf("PASS: %s\n", name);
    return 0;
  }
  std::printf("%d failure(s) in %s\n", failures, name);
  return 1;
}

// ---------------------------------------------------------------------------
// Golden-file comparison
// ---------------------------------------------------------------------------

inline bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    out->append(buffer, n);
  }
  std::fclose(f);
  return true;
}

// Compares `actual` against the checked-in golden file at `path`. Running
// the test with PQS_UPDATE_GOLDEN=1 regenerates the file instead (commit
// the result after reviewing the diff). On mismatch the first diverging
// line is printed.
inline void CheckGolden(const std::string& path, const std::string& actual) {
  if (std::getenv("PQS_UPDATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      ++failures;
      std::printf("FAIL: cannot write golden file %s\n", path.c_str());
      return;
    }
    std::fwrite(actual.data(), 1, actual.size(), f);
    std::fclose(f);
    std::printf("  (golden file %s regenerated)\n", path.c_str());
    return;
  }
  std::string expected;
  if (!ReadWholeFile(path, &expected)) {
    ++failures;
    std::printf("FAIL: missing golden file %s (run with "
                "PQS_UPDATE_GOLDEN=1 to create it)\n",
                path.c_str());
    return;
  }
  if (expected == actual) return;
  ++failures;
  std::printf("FAIL: golden mismatch against %s\n", path.c_str());
  size_t line = 1;
  size_t i = 0;
  size_t n = expected.size() < actual.size() ? expected.size() : actual.size();
  while (i < n && expected[i] == actual[i]) {
    if (expected[i] == '\n') ++line;
    ++i;
  }
  auto line_at = [](const std::string& s, size_t pos) {
    size_t begin = s.rfind('\n', pos == 0 ? 0 : pos - 1);
    begin = begin == std::string::npos ? 0 : begin + 1;
    size_t end = s.find('\n', pos);
    return s.substr(begin, end == std::string::npos ? std::string::npos
                                                    : end - begin);
  };
  std::printf("  first difference at line %zu:\n", line);
  std::printf("  expected: %s\n", line_at(expected, i).c_str());
  std::printf("  actual:   %s\n", line_at(actual, i).c_str());
}

}  // namespace test
}  // namespace pqs

#endif  // PQS_TESTS_TEST_UTIL_H_
