// Each Dialect's documented quirk (DESIGN.md §3):
//  - kSqliteFlex: flexible typing — numeric text coerces on insert into a
//    numeric-affinity column; unparseable text is stored as-is.
//  - kMysqlLike: numeric prefix coercion in comparisons ('12ab' = 12) and
//    case-insensitive text comparison; division by zero yields NULL.
//  - kPostgresStrict: type mismatches are statement errors, both at INSERT
//    and in comparisons.
#include <memory>

#include "src/minidb/database.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

std::unique_ptr<CreateTableStmt> IntTextTable() {
  auto ct = std::make_unique<CreateTableStmt>();
  ct->table_name = "t0";
  ColumnDef i;
  i.name = "c0";
  i.affinity = Affinity::kInteger;
  i.declared_type = "INT";
  ct->columns.push_back(i);
  ColumnDef t;
  t.name = "c1";
  t.affinity = Affinity::kText;
  t.declared_type = "TEXT";
  ct->columns.push_back(t);
  return ct;
}

StatementResult InsertRow(minidb::Database* db, ExprPtr a, ExprPtr b) {
  InsertStmt ins;
  ins.table_name = "t0";
  ins.rows.emplace_back();
  ins.rows.back().push_back(std::move(a));
  ins.rows.back().push_back(std::move(b));
  return db->Execute(ins);
}

StatementResult Select(minidb::Database* db, ExprPtr where) {
  SelectStmt select;
  select.from_tables = {"t0"};
  select.where = std::move(where);
  return db->Execute(select);
}

void TestSqliteFlexAffinity() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*IntTextTable()).ok());
  // Text '42' into the INT column coerces to INTEGER 42.
  CHECK(InsertRow(&db, MakeTextLiteral("42"), MakeTextLiteral("x")).ok());
  StatementResult r = Select(
      &db, MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "c0"),
                      MakeIntLiteral(42)));
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(1));
  CHECK(r.rows[0][0].cls == StorageClass::kInteger);
  // Unparseable text keeps its TEXT storage class (flexible typing).
  CHECK(InsertRow(&db, MakeTextLiteral("abc"), MakeTextLiteral("y")).ok());
  r = Select(&db, MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "c1"),
                             MakeTextLiteral("y")));
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(1));
  CHECK(r.rows[0][0].cls == StorageClass::kText);
}

void TestMysqlLikeCoercion() {
  minidb::Database db(Dialect::kMysqlLike);
  CHECK(db.Execute(*IntTextTable()).ok());
  CHECK(InsertRow(&db, MakeIntLiteral(12), MakeTextLiteral("Ab")).ok());
  // '12ab' compares equal to 12 via numeric prefix coercion.
  StatementResult r = Select(
      &db, MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "c0"),
                      MakeTextLiteral("12ab")));
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(1));
  // Case-insensitive default collation: 'AB' = 'ab'.
  r = Select(&db, MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "c1"),
                             MakeTextLiteral("aB")));
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(1));
  // Division by zero yields NULL, not an error: WHERE (c0/0) IS NULL.
  r = Select(&db, MakeIsNull(MakeBinary(BinaryOp::kDiv,
                                        MakeColumnRef("t0", "c0"),
                                        MakeIntLiteral(0)),
                             /*negated=*/false));
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), static_cast<size_t>(1));
}

void TestPostgresStrictTyping() {
  minidb::Database db(Dialect::kPostgresStrict);
  CHECK(db.Execute(*IntTextTable()).ok());
  // Text into an INT column is a statement error, not a coercion.
  StatementResult r =
      InsertRow(&db, MakeTextLiteral("42"), MakeTextLiteral("x"));
  CHECK(r.status == StatementStatus::kError);
  CHECK(InsertRow(&db, MakeIntLiteral(1), MakeTextLiteral("x")).ok());
  // Comparing an INT column to a text literal is a statement error.
  r = Select(&db, MakeBinary(BinaryOp::kEq, MakeColumnRef("t0", "c0"),
                             MakeTextLiteral("abc")));
  CHECK(r.status == StatementStatus::kError);
  // Division by zero is an error in the strict dialect.
  r = Select(&db, MakeIsNull(MakeBinary(BinaryOp::kDiv,
                                        MakeColumnRef("t0", "c0"),
                                        MakeIntLiteral(0)),
                             /*negated=*/false));
  CHECK(r.status == StatementStatus::kError);
}

}  // namespace
}  // namespace pqs

int main() {
  pqs::TestSqliteFlexAffinity();
  pqs::TestMysqlLikeCoercion();
  pqs::TestPostgresStrictTyping();
  return pqs::test::Summary("test_dialect_quirks");
}
