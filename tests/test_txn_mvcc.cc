// MVCC transaction layer tests (DESIGN §14): statement-level semantics of
// BEGIN/COMMIT/ROLLBACK under snapshot isolation, direct hooks for every
// injected transaction bug class, the K-session interleaved property
// (committed state == serial replay on clean engines, zero false findings),
// seeded schedule-replay identity across worker counts, default-budget
// HuntBug detection of the transaction bugs, a serial differential sweep
// against real sqlite3, and the Reset-with-open-transaction regression.
//
// Usage: test_txn_mvcc [--workers N]   (N also exercises the sharded path)
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/interp/eval.h"
#include "src/minidb/bug_registry.h"
#include "src/minidb/database.h"
#include "src/obs/flight_recorder.h"
#include "src/pqs/campaign.h"
#include "src/pqs/runner.h"
#include "src/pqs/scheduler.h"
#include "src/sqlite3db/sqlite_connection.h"
#include "src/sqlparser/render.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

int g_workers = 4;  // overridden by --workers

// --- Statement construction helpers. ----------------------------------

StmtPtr MakeTable(const std::string& name) {
  auto create = std::make_unique<CreateTableStmt>();
  create->table_name = name;
  ColumnDef a;
  a.name = "a";
  a.declared_type = "INT";
  a.affinity = Affinity::kInteger;
  ColumnDef b;
  b.name = "b";
  b.declared_type = "TEXT";
  b.affinity = Affinity::kText;
  create->columns = {a, b};
  return create;
}

StmtPtr InsertRow(const std::string& table, int64_t a, const std::string& b) {
  auto insert = std::make_unique<InsertStmt>();
  insert->table_name = table;
  insert->rows.emplace_back();
  insert->rows.back().push_back(MakeLiteral(SqlValue::Int(a)));
  insert->rows.back().push_back(MakeLiteral(SqlValue::Text(b)));
  return insert;
}

SelectStmt SelectAll(const std::string& table) {
  SelectStmt s;
  s.from_tables = {table};
  return s;
}

SelectStmt SelectWhereAEq(const std::string& table, int64_t v) {
  SelectStmt s;
  s.from_tables = {table};
  s.where = MakeBinary(BinaryOp::kEq, MakeColumnRef(table, "a"),
                       MakeLiteral(SqlValue::Int(v)));
  return s;
}

StmtPtr UpdateBWhereAEq(const std::string& table, int64_t a,
                        const std::string& new_b) {
  auto update = std::make_unique<UpdateStmt>();
  update->table_name = table;
  update->assignments.emplace_back();
  update->assignments.back().column = "b";
  update->assignments.back().value = MakeLiteral(SqlValue::Text(new_b));
  update->where = MakeBinary(BinaryOp::kEq, MakeColumnRef(table, "a"),
                             MakeLiteral(SqlValue::Int(a)));
  return update;
}

StmtPtr DeleteWhereAEq(const std::string& table, int64_t a) {
  auto del = std::make_unique<DeleteStmt>();
  del->table_name = table;
  del->where = MakeBinary(BinaryOp::kEq, MakeColumnRef(table, "a"),
                          MakeLiteral(SqlValue::Int(a)));
  return del;
}

StatementResult Session(Connection* db, int session) {
  SetSessionStmt set;
  set.session = session;
  return db->Execute(set);
}

StatementResult Begin(Connection* db) {
  BeginStmt begin;
  return db->Execute(begin);
}

StatementResult Commit(Connection* db) {
  CommitStmt commit;
  return db->Execute(commit);
}

StatementResult Rollback(Connection* db) {
  RollbackStmt rollback;
  return db->Execute(rollback);
}

size_t RowCount(Connection* db, const std::string& table) {
  SelectStmt s = SelectAll(table);
  StatementResult r = db->Execute(s);
  CHECK(r.ok());
  return r.rows.size();
}

// --- Per-statement semantics. -----------------------------------------

void TestBeginCommitVisibility() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*MakeTable("t")).ok());
  CHECK(db.Execute(*InsertRow("t", 1, "a")).ok());
  CHECK(!db.in_mvcc_epoch());

  CHECK(Session(&db, 0).ok());
  CHECK(Begin(&db).ok());
  CHECK(db.in_mvcc_epoch());
  CHECK_EQ(db.open_transactions(), size_t{1});
  CHECK(db.Execute(*InsertRow("t", 2, "b")).ok());
  // Own uncommitted write is visible to the writer...
  CHECK_EQ(RowCount(&db, "t"), size_t{2});
  // ...and invisible to every other session's snapshot.
  CHECK(Session(&db, 1).ok());
  CHECK_EQ(RowCount(&db, "t"), size_t{1});

  CHECK(Session(&db, 0).ok());
  CHECK(Commit(&db).ok());
  CHECK(Session(&db, 1).ok());
  CHECK_EQ(RowCount(&db, "t"), size_t{2});
  // All transactions resolved: the engine pruned back out of the epoch.
  CHECK_EQ(db.open_transactions(), size_t{0});
  CHECK(!db.in_mvcc_epoch());
}

void TestRollbackDiscards() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*MakeTable("t")).ok());
  CHECK(db.Execute(*InsertRow("t", 1, "a")).ok());
  CHECK(db.Execute(*InsertRow("t", 2, "b")).ok());

  CHECK(Begin(&db).ok());
  CHECK(db.Execute(*UpdateBWhereAEq("t", 1, "z")).ok());
  CHECK(db.Execute(*DeleteWhereAEq("t", 2)).ok());
  CHECK(db.Execute(*InsertRow("t", 3, "c")).ok());
  CHECK_EQ(RowCount(&db, "t"), size_t{2});  // {1,z} and {3,c}
  CHECK(Rollback(&db).ok());
  CHECK(!db.in_mvcc_epoch());

  SelectStmt probe = SelectWhereAEq("t", 1);
  StatementResult r = db.Execute(probe);
  CHECK(r.ok());
  CHECK_EQ(r.rows.size(), size_t{1});
  CHECK(r.rows[0][1].cls == StorageClass::kText && r.rows[0][1].t == "a");
  CHECK_EQ(RowCount(&db, "t"), size_t{2});  // original {1,a}, {2,b}
}

void TestTransactionStatementErrors() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*MakeTable("t")).ok());
  CHECK(Commit(&db).status == StatementStatus::kError);
  CHECK(Rollback(&db).status == StatementStatus::kError);
  CHECK(Begin(&db).ok());
  CHECK(Begin(&db).status == StatementStatus::kError);  // nested
  CHECK(Commit(&db).ok());
  CHECK(Commit(&db).status == StatementStatus::kError);
}

void TestFirstCommitterWins() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*MakeTable("t")).ok());
  CHECK(db.Execute(*InsertRow("t", 1, "a")).ok());
  CHECK(db.Execute(*InsertRow("t", 2, "b")).ok());

  CHECK(Session(&db, 0).ok());
  CHECK(Begin(&db).ok());
  CHECK(db.Execute(*UpdateBWhereAEq("t", 1, "x")).ok());
  CHECK(Session(&db, 1).ok());
  CHECK(Begin(&db).ok());
  CHECK(db.Execute(*UpdateBWhereAEq("t", 2, "y")).ok());

  CHECK(Session(&db, 0).ok());
  CHECK(Commit(&db).ok());
  // Second committer wrote the same table after the first's snapshot:
  // first-committer-wins aborts it, and nothing of its write set lands.
  CHECK(Session(&db, 1).ok());
  CHECK(Commit(&db).status == StatementStatus::kTxnConflict);
  CHECK(!db.in_mvcc_epoch());

  StatementResult r1 = db.Execute(SelectWhereAEq("t", 1));
  StatementResult r2 = db.Execute(SelectWhereAEq("t", 2));
  CHECK(r1.ok() && r1.rows.size() == 1 && r1.rows[0][1].t == "x");
  CHECK(r2.ok() && r2.rows.size() == 1 && r2.rows[0][1].t == "b");
}

void TestAutocommitDuringEpoch() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*MakeTable("t")).ok());
  CHECK(db.Execute(*InsertRow("t", 1, "a")).ok());

  CHECK(Session(&db, 0).ok());
  CHECK(Begin(&db).ok());
  CHECK_EQ(RowCount(&db, "t"), size_t{1});  // snapshot pinned

  // Another session's autocommit DML is an implicit single-statement
  // transaction: immediately committed and visible to new snapshots...
  CHECK(Session(&db, 1).ok());
  CHECK(db.Execute(*InsertRow("t", 2, "b")).ok());
  CHECK_EQ(RowCount(&db, "t"), size_t{2});

  // ...but session 0's open snapshot predates it.
  CHECK(Session(&db, 0).ok());
  CHECK_EQ(RowCount(&db, "t"), size_t{1});
  CHECK(Commit(&db).ok());
  CHECK_EQ(RowCount(&db, "t"), size_t{2});
}

// Regression (satellite 4): a reset must roll back transactions an aborted
// session left open, for MiniDB and for the real-sqlite adapter alike.
void TestResetWithOpenTransaction() {
  minidb::Database db(Dialect::kSqliteFlex);
  CHECK(db.Execute(*MakeTable("t")).ok());
  CHECK(Begin(&db).ok());
  CHECK(db.Execute(*InsertRow("t", 1, "a")).ok());
  CHECK_EQ(db.open_transactions(), size_t{1});
  CHECK(db.Reset());
  CHECK_EQ(db.open_transactions(), size_t{0});
  CHECK(!db.in_mvcc_epoch());
  // The reset engine is a fresh database: same DDL re-applies, and a new
  // transaction opens cleanly.
  CHECK(db.Execute(*MakeTable("t")).ok());
  CHECK(Begin(&db).ok());
  CHECK(Commit(&db).ok());
}

void TestSqliteResetWithOpenTransaction() {
  if (!SqliteConnection::Available()) return;
  SqliteConnection conn;
  CHECK(conn.Execute(*MakeTable("t")).ok());
  CHECK(conn.Execute(*InsertRow("t", 1, "a")).ok());
  // Session markers are a no-op on the one-writer adapter.
  CHECK(Session(&conn, 3).ok());
  CHECK(Begin(&conn).ok());
  CHECK(conn.Execute(*InsertRow("t", 2, "b")).ok());
  // Simulates the reducer recycling a connection an aborted session left
  // mid-transaction: without the ROLLBACK-on-reset, the DROP TABLE teardown
  // would be rolled back with the transaction and the next session would
  // see stale objects.
  CHECK(conn.Reset());
  CHECK(conn.Execute(*MakeTable("t")).ok());  // name free again
  CHECK_EQ(RowCount(&conn, "t"), size_t{0});
  CHECK(Begin(&conn).ok());  // no transaction carried over
  CHECK(Rollback(&conn).ok());
}

// --- Direct hooks for the injected transaction bug classes. ------------

void TestLostUpdateHook() {
  for (bool buggy : {false, true}) {
    minidb::Database db(Dialect::kSqliteFlex,
                        buggy ? BugConfig::Single(BugId::kTxnLostUpdate)
                              : BugConfig());
    CHECK(db.Execute(*MakeTable("t")).ok());
    CHECK(db.Execute(*InsertRow("t", 1, "a")).ok());
    Session(&db, 0);
    CHECK(Begin(&db).ok());
    CHECK(db.Execute(*UpdateBWhereAEq("t", 1, "first")).ok());
    Session(&db, 1);
    CHECK(Begin(&db).ok());
    CHECK(db.Execute(*UpdateBWhereAEq("t", 1, "second")).ok());
    Session(&db, 0);
    CHECK(Commit(&db).ok());
    Session(&db, 1);
    StatementResult second = Commit(&db);
    if (buggy) {
      // Update-only write sets skip the conflict check: the second commit
      // silently overwrites the first (the classic lost update).
      CHECK(second.ok());
      StatementResult r = db.Execute(SelectWhereAEq("t", 1));
      CHECK(r.ok() && r.rows.size() == 1 && r.rows[0][1].t == "second");
    } else {
      CHECK(second.status == StatementStatus::kTxnConflict);
      StatementResult r = db.Execute(SelectWhereAEq("t", 1));
      CHECK(r.ok() && r.rows.size() == 1 && r.rows[0][1].t == "first");
    }
  }
}

void TestDirtyReadHook() {
  for (bool buggy : {false, true}) {
    minidb::Database db(Dialect::kMysqlLike,
                        buggy ? BugConfig::Single(BugId::kTxnDirtyRead)
                              : BugConfig());
    CHECK(db.Execute(*MakeTable("t")).ok());
    CHECK(db.Execute(*InsertRow("t", 1, "a")).ok());
    Session(&db, 0);
    CHECK(Begin(&db).ok());
    CHECK(db.Execute(*InsertRow("t", 2, "uncommitted")).ok());
    Session(&db, 1);
    CHECK(Begin(&db).ok());
    // Session 1's snapshot must not contain session 0's open insert; the
    // bug leaks it into the read image.
    CHECK_EQ(RowCount(&db, "t"), buggy ? size_t{2} : size_t{1});
    Commit(&db);
    Session(&db, 0);
    Rollback(&db);
  }
}

void TestWriteSkewHook() {
  for (bool buggy : {false, true}) {
    minidb::Database db(Dialect::kPostgresStrict,
                        buggy ? BugConfig::Single(BugId::kTxnWriteSkew)
                              : BugConfig());
    CHECK(db.Execute(*MakeTable("t")).ok());
    CHECK(db.Execute(*InsertRow("t", 1, "a")).ok());
    Session(&db, 0);
    CHECK(Begin(&db).ok());
    CHECK(db.Execute(*UpdateBWhereAEq("t", 1, "x")).ok());
    Session(&db, 1);
    CHECK(Begin(&db).ok());
    CHECK(db.Execute(*InsertRow("t", 2, "phantom")).ok());
    Session(&db, 0);
    CHECK(Commit(&db).ok());
    Session(&db, 1);
    StatementResult second = Commit(&db);
    if (buggy) {
      // Row-granular conflict detection under claimed SI: the second
      // transaction wrote no existing row, so its insert slips past the
      // first committer even though both wrote the same table.
      CHECK(second.ok());
    } else {
      CHECK(second.status == StatementStatus::kTxnConflict);
    }
  }
}

void TestRollbackStaleIndexHook() {
  for (bool buggy : {false, true}) {
    minidb::Database db(
        Dialect::kSqliteFlex,
        buggy ? BugConfig::Single(BugId::kTxnRollbackStaleIndex)
              : BugConfig());
    CHECK(db.Execute(*MakeTable("t")).ok());
    CreateIndexStmt index;
    index.index_name = "i0";
    index.table_name = "t";
    index.columns = {"a"};
    CHECK(db.Execute(index).ok());
    for (int64_t v = 1; v <= 4; ++v) {
      CHECK(db.Execute(*InsertRow("t", v, "r")).ok());
    }
    CHECK(Begin(&db).ok());
    CHECK(db.Execute(*DeleteWhereAEq("t", 2)).ok());
    CHECK(Rollback(&db).ok());
    CHECK(!db.in_mvcc_epoch());
    // The rollback must restore the index too. The bug rebuilds it from
    // the aborted transaction's overlay image, so the indexed probe loses
    // the row the transaction had deleted — while a full scan still
    // returns it (a containment violation, not a snapshot one).
    StatementResult probe = db.Execute(SelectWhereAEq("t", 2));
    CHECK(probe.ok());
    CHECK_EQ(probe.rows.size(), buggy ? size_t{0} : size_t{1});
    CHECK_EQ(RowCount(&db, "t"), size_t{4});
  }
}

void TestSnapshotUncommittedReadHook() {
  for (bool buggy : {false, true}) {
    minidb::Database db(
        Dialect::kMysqlLike,
        buggy ? BugConfig::Single(BugId::kTxnSnapshotUncommittedRead)
              : BugConfig());
    CHECK(db.Execute(*MakeTable("t")).ok());
    CHECK(db.Execute(*InsertRow("t", 1, "committed")).ok());
    Session(&db, 0);
    CHECK(Begin(&db).ok());
    CHECK_EQ(RowCount(&db, "t"), size_t{1});  // snapshot pinned
    Session(&db, 1);
    CHECK(Begin(&db).ok());
    CHECK(db.Execute(*UpdateBWhereAEq("t", 1, "pending")).ok());
    Session(&db, 0);
    StatementResult r = db.Execute(SelectWhereAEq("t", 1));
    CHECK(r.ok() && r.rows.size() == 1);
    // The bug substitutes the other transaction's pending (uncommitted)
    // version into session 0's snapshot read.
    CHECK_EQ(r.rows[0][1].t, std::string(buggy ? "pending" : "committed"));
    Rollback(&db);
    Session(&db, 1);
    Rollback(&db);
  }
}

// --- Runner-level properties. -----------------------------------------

RunnerOptions TxnRunnerOptions(uint64_t seed, int sessions, int databases,
                               int workers) {
  RunnerOptions options;
  options.seed = seed;
  options.databases = databases;
  options.queries_per_database = 5;
  options.workers = workers;
  options.gen.txn_sessions = sessions;
  return options;
}

// Clean engines across K interleaved sessions: the snapshot checks, the
// serial-replay comparisons, and the index probes must all stay silent —
// the zero-false-positive property the transaction oracle rests on.
// Runs 2000 fuzzing sessions total across K ∈ {2, 3, 4}.
void TestInterleavedCleanProperty() {
  struct KPlan {
    int sessions;
    int databases;
  };
  const KPlan plans[] = {{2, 700}, {3, 700}, {4, 600}};
  for (const KPlan& plan : plans) {
    RunnerOptions options =
        TxnRunnerOptions(4242 + plan.sessions, plan.sessions, plan.databases,
                         g_workers);
    EngineFactory factory = []() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
    };
    PqsRunner runner(factory, options);
    RunReport report = runner.Run();
    CHECK_EQ(report.invalid_options, std::string());
    CHECK(!report.unsupported_engine);
    CHECK_MSG(report.findings.empty(),
              "K=%d produced %zu false finding(s): %s", plan.sessions,
              report.findings.size(),
              report.findings.empty()
                  ? ""
                  : report.findings[0].message.c_str());
    // The schedule actually exercised the machinery.
    CHECK(report.stats.txn_begins > 0);
    CHECK(report.stats.txn_commits > 0);
    CHECK(report.stats.txn_rollbacks > 0);
    CHECK(report.stats.txn_snapshot_checks > 0);
    CHECK(report.stats.txn_serial_replays > 0);
    CHECK(report.stats.txn_conflicts > 0);  // contention is generated too
  }
}

// Everything a transaction-workload report asserts on, as one byte string.
std::string Fingerprint(const RunReport& r) {
  std::string out;
  auto num = [&out](uint64_t v) {
    out += std::to_string(v);
    out += '|';
  };
  num(r.stats.statements_executed);
  num(r.stats.databases_created);
  num(r.stats.constraint_violations);
  num(r.stats.actions_insert);
  num(r.stats.actions_update);
  num(r.stats.actions_delete);
  num(r.stats.txn_begins);
  num(r.stats.txn_commits);
  num(r.stats.txn_rollbacks);
  num(r.stats.txn_conflicts);
  num(r.stats.txn_snapshot_checks);
  num(r.stats.txn_serial_replays);
  num(r.findings.size());
  for (const Finding& f : r.findings) {
    num(static_cast<uint64_t>(f.oracle));
    out += RenderScript(f.statements, Dialect::kSqliteFlex);
    out += '|';
  }
  return out;
}

// Same seed ⇒ byte-identical schedule and report, including across worker
// counts: the interleaving is a pure function of the shard plan's seeds.
void TestSeededInterleavingReplayIdentity() {
  auto run = [](int workers) {
    RunnerOptions options = TxnRunnerOptions(777, 3, 40, workers);
    EngineFactory factory = []() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(
          Dialect::kSqliteFlex, BugConfig::Single(BugId::kTxnLostUpdate));
    };
    PqsRunner runner(factory, options);
    return runner.Run();
  };
  RunReport one = run(1);
  RunReport again = run(1);
  CHECK_EQ(Fingerprint(one), Fingerprint(again));
  for (int workers : {2, 4}) {
    CHECK_EQ(Fingerprint(one), Fingerprint(run(workers)));
  }
  // The buggy engine actually produced transaction findings to compare.
  CHECK(!one.findings.empty());
}

// Findings from the transaction branch carry flight-recorder provenance
// with the transaction lifecycle events in it.
void TestFlightRecorderCarriesTxnEvents() {
  RunnerOptions options = TxnRunnerOptions(777, 3, 40, 1);
  options.stop_on_first_finding = true;
  EngineFactory factory = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(
        Dialect::kSqliteFlex, BugConfig::Single(BugId::kTxnLostUpdate));
  };
  PqsRunner runner(factory, options);
  RunReport report = runner.Run();
  CHECK(!report.findings.empty());
  if (report.findings.empty()) return;
  const Finding& finding = report.findings.front();
  CHECK(!finding.flight.empty());
  bool saw_begin = false;
  bool saw_resolution = false;  // commit or abort
  for (const obs::FlightEvent& e : finding.flight) {
    saw_begin |= e.kind == obs::EventKind::kTxnBegin;
    saw_resolution |= e.kind == obs::EventKind::kTxnCommit ||
                      e.kind == obs::EventKind::kTxnAbort;
  }
  CHECK(saw_begin);
  CHECK(saw_resolution);
  // The merged registry carries the runner-side transaction counters.
  CHECK(report.metrics.counter(obs::Counter::kTxnBegins) > 0);
  CHECK(report.metrics.counter(obs::Counter::kTxnCommits) > 0);
}

// Every injected transaction bug is detected within HuntBug's default
// database budget, firing the oracle its registry entry declares.
void TestHuntBugDetectsTransactionBugs() {
  const BugId bugs[] = {
      BugId::kTxnLostUpdate,         BugId::kTxnDirtyRead,
      BugId::kTxnWriteSkew,          BugId::kTxnRollbackStaleIndex,
      BugId::kTxnSnapshotUncommittedRead,
  };
  for (BugId bug : bugs) {
    CampaignOptions options;  // default 480-database budget
    options.seed = 99;
    options.workers = g_workers;
    // Reduction is exercised for the serial oracle below; the detection
    // sweep keeps the raw findings.
    options.reduce = bug == BugId::kTxnLostUpdate;
    BugHuntResult result = HuntBug(bug, options);
    const minidb::BugInfo& info = minidb::LookupBug(bug);
    CHECK_MSG(result.detected, "bug %s not detected within %d databases",
              info.name, options.databases_per_bug);
    if (!result.detected) continue;
    CHECK_MSG(result.oracle == info.oracle,
              "bug %s fired oracle %s, registry declares %s", info.name,
              OracleName(result.oracle), OracleName(info.oracle));
    CHECK(!result.reduced.statements.empty());
  }
}

// --- Differential sweep against real sqlite3 (always on when the build
// --- has libsqlite3). The interleaved schedule is replayed *serially*
// --- through one connection — SQLite's one-writer model — and MiniDB,
// --- fed the identical flat stream, must agree on every statement's
// --- outcome class and on the final committed state. ------------------

enum class OutcomeClass { kOk, kConstraint, kError };

OutcomeClass Classify(const StatementResult& r) {
  if (r.ok()) return OutcomeClass::kOk;
  if (r.status == StatementStatus::kConstraintViolation) {
    return OutcomeClass::kConstraint;
  }
  return OutcomeClass::kError;
}

void TestDifferentialTxnSweepVsSqlite() {
  if (!SqliteConnection::Available()) return;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    GeneratorOptions gen;
    gen.txn_sessions = 3;  // richer BEGIN/COMMIT/ROLLBACK mix
    Generator generator(gen, Dialect::kSqliteFlex);
    DatabasePlan plan = generator.GenerateDatabase(&rng);
    ActionScheduler scheduler(&generator, gen, &plan);

    SqliteConnection real;
    minidb::Database mini(Dialect::kSqliteFlex);
    for (const StmtPtr& stmt : plan.statements) {
      StatementResult a = real.Execute(*stmt);
      StatementResult b = mini.Execute(*stmt);
      CHECK_MSG(Classify(a) == Classify(b),
                "seed %llu setup outcome diverged on %s",
                static_cast<unsigned long long>(seed),
                RenderStmt(*stmt, Dialect::kSqliteFlex).c_str());
      scheduler.Observe(*stmt, b.ok());
    }

    // Serial replay: the flat action stream, session markers dropped. A
    // BEGIN landing inside the open transaction errors identically on
    // both engines; COMMIT/ROLLBACK pair up the same way.
    bool in_txn = false;
    for (int q = 0; q < 8; ++q) {
      for (SessionAction& action : scheduler.NextTxnBatch(&rng)) {
        StatementResult a = real.Execute(*action.stmt);
        StatementResult b = mini.Execute(*action.stmt);
        CHECK_MSG(Classify(a) == Classify(b),
                  "seed %llu stream outcome diverged (%d vs %d) on %s",
                  static_cast<unsigned long long>(seed),
                  static_cast<int>(a.status), static_cast<int>(b.status),
                  RenderStmt(*action.stmt, Dialect::kSqliteFlex).c_str());
        if (b.ok()) {
          if (action.stmt->kind() == StmtKind::kBegin) in_txn = true;
          if (action.stmt->kind() == StmtKind::kCommit ||
              action.stmt->kind() == StmtKind::kRollback) {
            in_txn = false;
          }
        }
      }
    }
    if (in_txn) {
      CHECK(Commit(&real).ok());
      CHECK(Commit(&mini).ok());
    }
    for (const TableSchema& table : plan.tables) {
      SelectStmt fetch = SelectAll(table.name);
      StatementResult a = real.Execute(fetch);
      StatementResult b = mini.Execute(fetch);
      CHECK(a.ok() && b.ok());
      CHECK_MSG(SameRowMultiset(a.rows, b.rows),
                "seed %llu: table %s diverged after serial transaction "
                "replay (sqlite %zu rows, minidb %zu rows)",
                static_cast<unsigned long long>(seed), table.name.c_str(),
                a.rows.size(), b.rows.size());
    }
  }
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0) {
      pqs::g_workers = std::atoi(argv[i + 1]);
      if (pqs::g_workers < 1) pqs::g_workers = 1;
    }
  }
  pqs::TestBeginCommitVisibility();
  pqs::TestRollbackDiscards();
  pqs::TestTransactionStatementErrors();
  pqs::TestFirstCommitterWins();
  pqs::TestAutocommitDuringEpoch();
  pqs::TestResetWithOpenTransaction();
  pqs::TestSqliteResetWithOpenTransaction();
  pqs::TestLostUpdateHook();
  pqs::TestDirtyReadHook();
  pqs::TestWriteSkewHook();
  pqs::TestRollbackStaleIndexHook();
  pqs::TestSnapshotUncommittedReadHook();
  pqs::TestInterleavedCleanProperty();
  pqs::TestSeededInterleavingReplayIdentity();
  pqs::TestFlightRecorderCarriesTxnEvents();
  pqs::TestHuntBugDetectsTransactionBugs();
  pqs::TestDifferentialTxnSweepVsSqlite();
  return pqs::test::Summary("test_txn_mvcc");
}
