// PR-8 paged storage layer: buffer-pool unit checks (pin/unpin, clock
// eviction determinism, dirty write-back, emergency growth), TableStore
// page layout and cursor bounds, the auto-Stress arming rule for storage
// bug classes, a 2k-session paged property run at the forced-tiny pool
// (scan-with-index == scan-without, paged state == flat ground truth),
// byte-identical runner reports with paging on/off and 1 vs N workers,
// and default-budget HuntBug detection of the four storage bug classes.
//
// Accepts `--workers N` (the CI ThreadSanitizer job passes 4); every
// property is worker-count-invariant.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/minidb/buffer_pool.h"
#include "src/obs/telemetry.h"
#include "src/minidb/coverage.h"
#include "src/minidb/database.h"
#include "src/pqs/campaign.h"
#include "src/pqs/generator.h"
#include "src/pqs/runner.h"
#include "src/pqs/scheduler.h"
#include "src/sqlite3db/sqlite_connection.h"
#include "src/sqlparser/render.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

int property_workers = 1;

using minidb::BufferPool;
using minidb::DiskPage;
using minidb::StorageOptions;

// ---------------------------------------------------------------------------
// Buffer pool units
// ---------------------------------------------------------------------------

std::vector<DiskPage> MakeDisk(int pages) {
  std::vector<DiskPage> disk(pages);
  for (int p = 0; p < pages; ++p) {
    disk[p].rows = {{SqlValue::Int(p)}};
  }
  return disk;
}

void TestPoolPinUnpin() {
  BufferPool pool(4, 1, nullptr);
  std::vector<DiskPage> disk = MakeDisk(8);

  int f = pool.Fetch(0, 0, &disk[0], BufferPool::Intent::kRead);
  CHECK_EQ(pool.frame(f).pins, 1);
  CHECK_EQ(pool.stats().misses, static_cast<uint64_t>(1));
  // A hit pins the same frame again.
  int f2 = pool.Fetch(0, 0, &disk[0], BufferPool::Intent::kRead);
  CHECK_EQ(f, f2);
  CHECK_EQ(pool.frame(f).pins, 2);
  CHECK_EQ(pool.stats().hits, static_cast<uint64_t>(1));
  pool.Unpin(f);
  pool.Unpin(f);
  CHECK_EQ(pool.frame(f).pins, 0);
  CHECK_EQ(pool.pinned_frames(), 0);
}

void TestPoolDirtyWriteBack() {
  BufferPool pool(4, 1, nullptr);
  std::vector<DiskPage> disk = MakeDisk(8);

  int f = pool.Fetch(0, 1, &disk[1], BufferPool::Intent::kWrite);
  pool.frame(f).rows[0][0] = SqlValue::Int(100);
  pool.Unpin(f);
  // Cycle enough other pages through the 4-frame pool to force page 1 out.
  for (uint32_t p = 2; p < 8; ++p) {
    int g = pool.Fetch(0, p, &disk[p], BufferPool::Intent::kRead);
    pool.Unpin(g);
  }
  CHECK(pool.stats().evictions > 0);
  CHECK(pool.stats().dirty_writebacks > 0);
  CHECK_EQ(disk[1].rows[0][0].i, static_cast<int64_t>(100));
  // Clean pages are never written back: page 2's disk image is untouched.
  CHECK_EQ(disk[2].rows[0][0].i, static_cast<int64_t>(2));
}

void TestPoolEmergencyGrowth() {
  BufferPool pool(4, 1, nullptr);
  std::vector<DiskPage> disk = MakeDisk(8);
  std::vector<int> held;
  for (uint32_t p = 0; p < 4; ++p) {
    held.push_back(pool.Fetch(0, p, &disk[p], BufferPool::Intent::kRead));
  }
  CHECK_EQ(pool.pinned_frames(), 4);
  // Every frame pinned: the fifth fetch must grow, not deadlock or evict.
  int extra = pool.Fetch(0, 4, &disk[4], BufferPool::Intent::kRead);
  CHECK_EQ(pool.frame_count(), static_cast<size_t>(5));
  CHECK_EQ(pool.stats().emergency_frames, static_cast<uint64_t>(1));
  CHECK_EQ(pool.stats().evictions, static_cast<uint64_t>(0));
  pool.Unpin(extra);
  for (int h : held) pool.Unpin(h);
  // Reset shrinks back to the configured frame count.
  pool.Reset();
  CHECK_EQ(pool.frame_count(), static_cast<size_t>(4));
}

// The pool's eviction trace now arrives through the flight recorder
// (src/obs): each eviction is a kEviction event carrying (table, page).
// These tests install a session telemetry context and read the events
// back, replacing the old bespoke set_trace()/eviction_log() API.
std::vector<std::pair<uint32_t, uint32_t>> EvictionsFrom(
    const obs::FlightRecorder& recorder) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (const obs::FlightEvent& e : recorder.Dump()) {
    if (e.kind == obs::EventKind::kEviction) out.emplace_back(e.a, e.b);
  }
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> DriveEvictions(uint64_t seed) {
  // A ring large enough that no eviction of this drive is overwritten.
  obs::SessionTelemetry session(4096);
  obs::ScopedSessionTelemetry install(&session);
  BufferPool pool(4, seed, nullptr);
  std::vector<DiskPage> disk = MakeDisk(16);
  for (int i = 0; i < 200; ++i) {
    uint32_t p = static_cast<uint32_t>((i * 7 + 3) % 16);
    int f = pool.Fetch(0, p, &disk[p], BufferPool::Intent::kRead);
    pool.Unpin(f);
  }
  return EvictionsFrom(session.recorder);
}

void TestEvictionOrderDeterministic() {
  // Same seed + same access sequence ⇒ identical eviction order, run to
  // run — the property every replay and N-worker byte-identity claim
  // leans on.
  std::vector<std::pair<uint32_t, uint32_t>> log = DriveEvictions(7);
  CHECK(!log.empty());
  CHECK(log == DriveEvictions(7));
  CHECK(log == DriveEvictions(7));

  // Reset rewinds the clock hand to its seed-derived start: driving the
  // same sequence after a Reset evicts the same pages in the same order
  // (each drive recorded under its own session ring).
  BufferPool pool(4, 7, nullptr);
  std::vector<DiskPage> disk = MakeDisk(16);
  auto drive = [&]() {
    obs::SessionTelemetry session(4096);
    obs::ScopedSessionTelemetry install(&session);
    for (int i = 0; i < 200; ++i) {
      uint32_t p = static_cast<uint32_t>((i * 7 + 3) % 16);
      int f = pool.Fetch(0, p, &disk[p], BufferPool::Intent::kRead);
      pool.Unpin(f);
    }
    return EvictionsFrom(session.recorder);
  };
  std::vector<std::pair<uint32_t, uint32_t>> first = drive();
  CHECK(!first.empty());
  pool.Reset();
  CHECK(first == drive());
}

// ---------------------------------------------------------------------------
// TableStore layout + Database storage arming
// ---------------------------------------------------------------------------

void MakeIntTable(minidb::Database* db, const std::string& name) {
  CreateTableStmt ct;
  ct.table_name = name;
  ColumnDef def;
  def.name = "a";
  def.declared_type = "INT";
  def.affinity = Affinity::kInteger;
  ct.columns.push_back(def);
  CHECK(db->Execute(ct).ok());
}

void InsertInts(minidb::Database* db, const std::string& table, int from,
                int to) {
  InsertStmt ins;
  ins.table_name = table;
  for (int v = from; v < to; ++v) {
    std::vector<ExprPtr> row;
    row.push_back(MakeIntLiteral(v));
    ins.rows.push_back(std::move(row));
  }
  CHECK(db->Execute(ins).ok());
}

void TestTableStorePagedLayout() {
  minidb::Database db(Dialect::kSqliteFlex, BugConfig(),
                      StorageOptions::Stress());
  MakeIntTable(&db, "t");
  InsertInts(&db, "t", 0, 7);

  const minidb::TableStore* store = db.table_store("t");
  CHECK(store != nullptr);
  CHECK(store->paged());
  CHECK_EQ(store->page_rows(), static_cast<uint32_t>(2));
  CHECK_EQ(store->size(), static_cast<size_t>(7));
  CHECK_EQ(store->page_count(), static_cast<size_t>(4));

  // Materialized returns the rows in position (= insertion) order.
  const std::vector<std::vector<SqlValue>>& rows = store->Materialized();
  CHECK_EQ(rows.size(), static_cast<size_t>(7));
  for (size_t i = 0; i < rows.size(); ++i) {
    CHECK_EQ(rows[i][0].i, static_cast<int64_t>(i));
  }

  // Cursor resolves every live position and bounds-guards the rest.
  minidb::TableStore::Cursor cursor(*store);
  for (size_t pos = 0; pos < 7; ++pos) {
    const std::vector<SqlValue>* row = cursor.TryRow(pos);
    CHECK(row != nullptr);
    if (row != nullptr) CHECK_EQ((*row)[0].i, static_cast<int64_t>(pos));
  }
  CHECK(cursor.TryRow(7) == nullptr);     // tail slot of the last page
  CHECK(cursor.TryRow(1000) == nullptr);  // far past the extent
}

void TestStorageBugArmsStressPool() {
  minidb::Database clean(Dialect::kSqliteFlex);
  CHECK_EQ(clean.storage_options().page_rows, StorageOptions().page_rows);

  // A storage bug on a paged engine tightens to the Stress geometry so
  // generator-scale tables reach splits and eviction.
  minidb::Database buggy(Dialect::kSqliteFlex,
                         BugConfig::Single(BugId::kEvictDropsDirtyPage));
  CHECK_EQ(buggy.storage_options().page_rows,
           StorageOptions::Stress().page_rows);
  CHECK_EQ(buggy.storage_options().pool_frames,
           StorageOptions::Stress().pool_frames);

  // A non-storage bug leaves the default geometry alone.
  minidb::Database other(Dialect::kSqliteFlex,
                         BugConfig::Single(BugId::kLikeAnchored));
  CHECK_EQ(other.storage_options().page_rows, StorageOptions().page_rows);

  // An explicitly flat configuration is never forced into paging.
  minidb::Database flat(Dialect::kSqliteFlex,
                        BugConfig::Single(BugId::kEvictDropsDirtyPage),
                        StorageOptions::Flat());
  CHECK(!flat.storage_options().paged);
}

// ---------------------------------------------------------------------------
// Paged session property: index on == index off == flat ground truth
// ---------------------------------------------------------------------------

void TestPagedSessionProperty() {
  uint64_t sessions = 0;
  uint64_t selects_compared = 0;
  uint64_t tables_compared = 0;
  uint64_t paged_evictions = 0;
  minidb::CoverageMap coverage;
  for (Dialect dialect : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                          Dialect::kPostgresStrict}) {
    GeneratorOptions gopts;
    Generator generator(gopts, dialect);
    for (uint64_t s = 0; s < 667; ++s) {
      Rng rng(Rng::StreamSeed(0xba6e + static_cast<uint64_t>(dialect), s));
      DatabasePlan plan = generator.GenerateDatabase(&rng);
      // Forced-tiny pool: every multi-row table spans pages, every scan
      // cycles the 4 frames.
      minidb::Database paged(dialect, BugConfig(), StorageOptions::Stress());
      paged.set_coverage_sink(&coverage);
      minidb::Database paged_noindex(dialect, BugConfig(),
                                     StorageOptions::Stress());
      paged_noindex.set_use_index_scan(false);
      minidb::Database flat(dialect, BugConfig(), StorageOptions::Flat());
      ActionScheduler scheduler(&generator, gopts, &plan);
      auto exec_all = [&](const Stmt& stmt) {
        StatementResult a = paged.Execute(stmt);
        StatementResult b = paged_noindex.Execute(stmt);
        StatementResult c = flat.Execute(stmt);
        CHECK_EQ(static_cast<int>(a.status), static_cast<int>(b.status));
        CHECK_EQ(static_cast<int>(a.status), static_cast<int>(c.status));
        scheduler.Observe(stmt, a.ok());
      };
      for (const StmtPtr& stmt : plan.statements) exec_all(*stmt);
      for (int q = 0; q < 4; ++q) {
        for (const StmtPtr& action : scheduler.NextBatch(&rng)) {
          exec_all(*action);
        }
        const TableSchema& table = plan.tables[rng.Below(plan.tables.size())];
        std::vector<const TableSchema*> tables{&table};
        ExprPtr where = generator.GeneratePredicate(tables, &rng);
        if (ExprPtr probe =
                scheduler.MaybePartialIndexProbe(table.name, &rng)) {
          where = MakeBinary(BinaryOp::kAnd, std::move(probe),
                             std::move(where));
        }
        SelectStmt sel;
        sel.from_tables = {table.name};
        sel.where = std::move(where);
        StatementResult a = paged.Execute(sel);
        StatementResult b = paged_noindex.Execute(sel);
        CHECK_EQ(static_cast<int>(a.status), static_cast<int>(b.status));
        if (!a.ok()) continue;
        bool identical = a.rows.size() == b.rows.size();
        for (size_t r = 0; identical && r < a.rows.size(); ++r) {
          identical = a.rows[r].size() == b.rows[r].size();
          for (size_t c = 0; identical && c < a.rows[r].size(); ++c) {
            identical = ValueEquals(a.rows[r][c], b.rows[r][c]);
          }
        }
        CHECK_MSG(identical, "paged index scan diverged on: %s",
                  RenderStmt(sel, dialect).c_str());
        ++selects_compared;
      }
      // Session end: the paged heap must hold exactly the flat model's
      // rows (position order is dense on a clean engine, so this is the
      // multiset claim and more).
      for (const TableSchema& table : plan.tables) {
        const std::vector<std::vector<SqlValue>>* p =
            paged.TableRows(table.name);
        const std::vector<std::vector<SqlValue>>* f =
            flat.TableRows(table.name);
        CHECK(p != nullptr && f != nullptr);
        if (p == nullptr || f == nullptr) continue;
        bool same = p->size() == f->size();
        for (size_t r = 0; same && r < p->size(); ++r) {
          same = (*p)[r].size() == (*f)[r].size();
          for (size_t c = 0; same && c < (*p)[r].size(); ++c) {
            same = ValueEquals((*p)[r][c], (*f)[r][c]);
          }
        }
        CHECK_MSG(same, "paged table %s diverged from flat ground truth",
                  table.name.c_str());
        ++tables_compared;
      }
      paged_evictions += paged.buffer_pool().stats().evictions;
      ++sessions;
    }
  }
  CHECK_MSG(sessions >= 2000, "only %llu sessions generated",
            static_cast<unsigned long long>(sessions));
  CHECK(selects_compared > 4000);
  CHECK(tables_compared > 2000);
  // The property only means something if the planner and the pool actually
  // worked: index scans ran, and the tiny pool was cycling pages.
  CHECK(coverage.Hits(minidb::Feature::kIndexScan) > 100);
  CHECK_MSG(paged_evictions > 10000, "only %llu evictions",
            static_cast<unsigned long long>(paged_evictions));
}

// ---------------------------------------------------------------------------
// Paging on/off and 1 vs N workers: byte-identical reports
// ---------------------------------------------------------------------------

RunReport StorageRun(StorageOptions storage, int workers) {
  RunnerOptions options;
  options.seed = 0x9a6ed;
  options.databases = 40;
  options.queries_per_database = 15;
  options.workers = workers;
  // A scan-level (non-storage) bug: findings must be identical for every
  // storage configuration, because row positions are dense and scans run
  // in position order whether or not pages are involved.
  EngineFactory factory = [storage]() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(
        Dialect::kSqliteFlex, BugConfig::Single(BugId::kLikeAnchored),
        storage);
  };
  PqsRunner runner(factory, options);
  return runner.Run();
}

void CheckReportsIdentical(const RunReport& a, const RunReport& b,
                           const char* what) {
  CHECK_MSG(a.stats.statements_executed == b.stats.statements_executed,
            "%s: statements diverged", what);
  CHECK_MSG(a.stats.queries_checked == b.stats.queries_checked,
            "%s: queries diverged", what);
  CHECK_MSG(a.stats.rectified_true == b.stats.rectified_true &&
                a.stats.rectified_false == b.stats.rectified_false &&
                a.stats.rectified_null == b.stats.rectified_null,
            "%s: rectification tallies diverged", what);
  CHECK_MSG(a.stats.state_compares == b.stats.state_compares,
            "%s: state compares diverged", what);
  CHECK_MSG(a.findings.size() == b.findings.size(),
            "%s: finding counts diverged (%zu vs %zu)", what,
            a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size() && i < b.findings.size(); ++i) {
    CHECK_MSG(RenderScript(a.findings[i].statements, Dialect::kSqliteFlex) ==
                  RenderScript(b.findings[i].statements,
                               Dialect::kSqliteFlex),
              "%s: finding %zu script diverged", what, i);
    CHECK(a.findings[i].oracle == b.findings[i].oracle);
  }
}

void TestPagingOnOffByteIdenticalReports() {
  RunReport paged = StorageRun(StorageOptions(), 1);
  CHECK(!paged.findings.empty());  // the workload must actually find LIKE bugs
  RunReport flat = StorageRun(StorageOptions::Flat(), 1);
  RunReport stress = StorageRun(StorageOptions::Stress(), 1);
  RunReport sharded = StorageRun(StorageOptions(), property_workers > 1
                                                       ? property_workers
                                                       : 4);
  CheckReportsIdentical(paged, flat, "paged vs flat");
  CheckReportsIdentical(paged, stress, "paged vs stress");
  CheckReportsIdentical(paged, sharded, "1 vs N workers");
}

// ---------------------------------------------------------------------------
// Million-row differential vs real sqlite3
// ---------------------------------------------------------------------------

void TestMillionRowScanMatchesRealSqlite() {
  if (!SqliteConnection::Available()) {
    std::printf("  (real sqlite3 unavailable; million-row sweep skipped)\n");
    return;
  }
  constexpr int kRows = 1000000;
  minidb::Database paged(Dialect::kSqliteFlex);  // default paged geometry
  SqliteConnection real;
  auto exec_both = [&](const Stmt& stmt) {
    CHECK(paged.Execute(stmt).ok());
    CHECK(real.Execute(stmt).ok());
  };
  CreateTableStmt ct;
  ct.table_name = "big";
  for (const char* name : {"c0", "c1"}) {
    ColumnDef def;
    def.name = name;
    def.declared_type = "INT";
    def.affinity = Affinity::kInteger;
    ct.columns.push_back(def);
  }
  exec_both(ct);
  for (int base = 0; base < kRows; base += 1000) {
    InsertStmt ins;
    ins.table_name = "big";
    ins.rows.reserve(1000);
    for (int i = base; i < base + 1000; ++i) {
      std::vector<ExprPtr> row;
      row.push_back(MakeIntLiteral(i));
      // Every 101st c1 is NULL so IS NULL predicates have hits.
      row.push_back(i % 101 == 0 ? MakeNullLiteral()
                                 : MakeIntLiteral((i * 7) % 9973));
      ins.rows.push_back(std::move(row));
    }
    exec_both(ins);
  }
  auto compare = [&](ExprPtr where) {
    SelectStmt sel;
    sel.from_tables = {"big"};
    sel.where = std::move(where);
    StatementResult a = paged.Execute(sel);
    StatementResult b = real.Execute(sel);
    CHECK(a.ok() && b.ok());
    // Both engines scan in insertion order (positions / rowids), so the
    // comparison can be element-wise, which subsumes the multiset claim.
    CHECK_EQ(a.rows.size(), b.rows.size());
    bool same = a.rows.size() == b.rows.size();
    for (size_t r = 0; same && r < a.rows.size(); ++r) {
      for (size_t c = 0; same && c < a.rows[r].size(); ++c) {
        same = ValueEquals(a.rows[r][c], b.rows[r][c]);
      }
    }
    CHECK_MSG(same, "million-row scan diverged from real sqlite3: %s",
              RenderStmt(sel, Dialect::kSqliteFlex).c_str());
    return a.rows.size();
  };
  auto lt = [](const char* col, int64_t v) {
    return MakeBinary(BinaryOp::kLt, MakeColumnRef("big", col),
                      MakeIntLiteral(v));
  };
  // ~5% range, a point lookup, NULL hits, and a compound predicate.
  CHECK_EQ(compare(lt("c0", kRows / 20)), static_cast<size_t>(kRows / 20));
  CHECK_EQ(compare(MakeBinary(BinaryOp::kEq, MakeColumnRef("big", "c0"),
                              MakeIntLiteral(123456))),
           static_cast<size_t>(1));
  CHECK(compare(MakeIsNull(MakeColumnRef("big", "c1"), false)) > 9000);
  compare(MakeBinary(BinaryOp::kAnd, lt("c1", 500), lt("c0", kRows / 2)));

  // The same range once more through a secondary index: probes resolve
  // through pinned pages at the million-row scale.
  CreateIndexStmt ci;
  ci.index_name = "big_c0";
  ci.table_name = "big";
  ci.columns = {"c0"};
  exec_both(ci);
  CHECK_EQ(compare(lt("c0", kRows / 20)), static_cast<size_t>(kRows / 20));
}

// ---------------------------------------------------------------------------
// Storage bug classes are huntable within the default budget
// ---------------------------------------------------------------------------

void TestStorageBugsDetectedWithinBudget() {
  CampaignOptions options;
  options.seed = 20200604;
  options.databases_per_bug = 480;
  options.queries_per_database = 20;
  options.reduce = false;
  options.workers = property_workers;
  for (BugId bug :
       {BugId::kEvictDropsDirtyPage, BugId::kPageSplitRowLoss,
        BugId::kStalePageReadAfterUpdate, BugId::kIndexHeapDesync}) {
    BugHuntResult r = HuntBug(bug, options);
    CHECK_MSG(r.detected, "storage bug %s not detected in %zu databases",
              r.name, r.databases_used);
    if (r.detected) {
      CHECK_MSG(r.oracle == OracleKind::kContainment,
                "storage bug %s fired %s, expected containment", r.name,
                OracleName(r.oracle));
    }
  }
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      pqs::property_workers = std::atoi(argv[i + 1]);
      ++i;
    }
  }
  if (pqs::property_workers < 1) pqs::property_workers = 1;
  pqs::TestPoolPinUnpin();
  pqs::TestPoolDirtyWriteBack();
  pqs::TestPoolEmergencyGrowth();
  pqs::TestEvictionOrderDeterministic();
  pqs::TestTableStorePagedLayout();
  pqs::TestStorageBugArmsStressPool();
  pqs::TestPagedSessionProperty();
  pqs::TestPagingOnOffByteIdenticalReports();
  pqs::TestMillionRowScanMatchesRealSqlite();
  pqs::TestStorageBugsDetectedWithinBudget();
  return pqs::test::Summary("test_storage");
}
