// Sharding building blocks: splitmix64 stream splitting gives workers
// disjoint RNG streams, the shard plan is a pure function of the seed, and
// the value-merge operations (RunStats, CoverageMap, AggregateStats)
// reassemble per-shard results into exactly the single-run totals.
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/minidb/coverage.h"
#include "src/minidb/database.h"
#include "src/pqs/runner.h"
#include "tests/test_util.h"

namespace pqs {
namespace {

void TestStreamSeedsNeverCollide() {
  std::set<uint64_t> seeds;
  for (uint64_t base : {uint64_t{0}, uint64_t{1}, uint64_t{20200604}}) {
    seeds.clear();
    for (uint64_t stream = 0; stream < 10000; ++stream) {
      seeds.insert(Rng::StreamSeed(base, stream));
    }
    CHECK_EQ(seeds.size(), size_t{10000});
  }
}

void TestWorkerStreamsDisjoint() {
  // Distinct workers must see disjoint random sequences: collect the first
  // 1k outputs of 8 worker streams and require no value in common.
  constexpr int kWorkers = 8;
  constexpr int kDraws = 1000;
  std::set<uint64_t> all;
  size_t expected = 0;
  for (int w = 0; w < kWorkers; ++w) {
    Rng rng(Rng::StreamSeed(/*seed=*/42, static_cast<uint64_t>(w)));
    for (int i = 0; i < kDraws; ++i) all.insert(rng.Next());
    expected += kDraws;
  }
  CHECK_EQ(all.size(), expected);
}

void TestShardPlanDeterministic() {
  ShardPlan a = ShardPlan::Build(7, 64);
  ShardPlan b = ShardPlan::Build(7, 64);
  CHECK_EQ(a.tasks.size(), size_t{64});
  std::set<uint64_t> seeds;
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    CHECK_EQ(a.tasks[i].db_index, static_cast<int>(i));
    CHECK_EQ(a.tasks[i].seed, b.tasks[i].seed);
    seeds.insert(a.tasks[i].seed);
  }
  CHECK_EQ(seeds.size(), a.tasks.size());  // per-database seeds distinct
}

void TestRunStatsMerge() {
  RunStats total;
  RunStats shard1;
  shard1.statements_executed = 10;
  shard1.queries_checked = 4;
  shard1.queries_skipped = 1;
  shard1.databases_created = 2;
  shard1.rectified_true = 3;
  shard1.rectified_false = 2;
  shard1.rectified_null = 1;
  shard1.constraint_violations = 5;
  shard1.join_conditions_rectified = 6;
  shard1.limited_queries = 2;
  shard1.predicate_depth_buckets[0] = 2;
  shard1.predicate_depth_buckets[2] = 1;
  shard1.predicates_with_function = 3;
  shard1.function_calls_generated = 5;
  shard1.actions_insert = 4;
  shard1.actions_update = 3;
  shard1.actions_delete = 2;
  shard1.actions_create_index = 1;
  shard1.actions_drop_index = 1;
  shard1.actions_maintenance = 2;
  shard1.state_compares = 6;
  shard1.txn_begins = 4;
  shard1.txn_commits = 3;
  shard1.txn_rollbacks = 1;
  shard1.txn_conflicts = 2;
  shard1.txn_snapshot_checks = 5;
  shard1.txn_serial_replays = 3;
  RunStats shard2;
  shard2.statements_executed = 7;
  shard2.queries_checked = 2;
  shard2.databases_created = 1;
  shard2.rectified_null = 4;
  shard2.join_conditions_rectified = 1;
  shard2.limited_queries = 3;
  shard2.predicate_depth_buckets[0] = 1;
  shard2.predicate_depth_buckets[4] = 2;
  shard2.predicates_with_function = 1;
  shard2.function_calls_generated = 1;
  shard2.actions_insert = 1;
  shard2.actions_update = 2;
  shard2.actions_maintenance = 1;
  shard2.state_compares = 3;
  shard2.txn_begins = 2;
  shard2.txn_commits = 1;
  shard2.txn_conflicts = 1;
  shard2.txn_snapshot_checks = 2;
  shard2.txn_serial_replays = 1;
  total.Merge(shard1);
  total.Merge(shard2);
  CHECK_EQ(total.statements_executed, uint64_t{17});
  CHECK_EQ(total.queries_checked, uint64_t{6});
  CHECK_EQ(total.queries_skipped, uint64_t{1});
  CHECK_EQ(total.databases_created, uint64_t{3});
  CHECK_EQ(total.rectified_true, uint64_t{3});
  CHECK_EQ(total.rectified_false, uint64_t{2});
  CHECK_EQ(total.rectified_null, uint64_t{5});
  CHECK_EQ(total.constraint_violations, uint64_t{5});
  CHECK_EQ(total.join_conditions_rectified, uint64_t{7});
  CHECK_EQ(total.limited_queries, uint64_t{5});
  CHECK_EQ(total.predicate_depth_buckets[0], uint64_t{3});
  CHECK_EQ(total.predicate_depth_buckets[2], uint64_t{1});
  CHECK_EQ(total.predicate_depth_buckets[4], uint64_t{2});
  CHECK_EQ(total.predicates_with_function, uint64_t{4});
  CHECK_EQ(total.function_calls_generated, uint64_t{6});
  CHECK_EQ(total.actions_insert, uint64_t{5});
  CHECK_EQ(total.actions_update, uint64_t{5});
  CHECK_EQ(total.actions_delete, uint64_t{2});
  CHECK_EQ(total.actions_create_index, uint64_t{1});
  CHECK_EQ(total.actions_drop_index, uint64_t{1});
  CHECK_EQ(total.actions_maintenance, uint64_t{3});
  CHECK_EQ(total.state_compares, uint64_t{9});
  CHECK_EQ(total.txn_begins, uint64_t{6});
  CHECK_EQ(total.txn_commits, uint64_t{4});
  CHECK_EQ(total.txn_rollbacks, uint64_t{1});
  CHECK_EQ(total.txn_conflicts, uint64_t{3});
  CHECK_EQ(total.txn_snapshot_checks, uint64_t{7});
  CHECK_EQ(total.txn_serial_replays, uint64_t{4});
}

void TestCoverageMapMerge() {
  using minidb::CoverageMap;
  using minidb::Feature;
  CoverageMap a;
  a.Mark(Feature::kInsert);
  a.Mark(Feature::kInsert);
  a.Mark(Feature::kSelect);
  CoverageMap b;
  b.Mark(Feature::kInsert);
  b.Mark(Feature::kCreateTable);
  CoverageMap merged;
  merged.Merge(a);
  merged.Merge(b);
  CHECK_EQ(merged.Hits(Feature::kInsert), uint64_t{3});
  CHECK_EQ(merged.Hits(Feature::kSelect), uint64_t{1});
  CHECK_EQ(merged.Hits(Feature::kCreateTable), uint64_t{1});
  CHECK_EQ(merged.CoveredFeatures(), size_t{3});
  CHECK_EQ(merged.TotalHits(), a.TotalHits() + b.TotalHits());
}

// Merge of shards == single-run totals, on a real run: the same session
// executed by 1 worker on one coverage map and by 4 workers on per-worker
// maps must agree on stats and on every feature's merged hit count.
void TestShardedCoverageMatchesSingleRun() {
  auto run = [](int workers, minidb::CoverageMap* maps) {
    RunnerOptions opts;
    opts.seed = 99;
    opts.databases = 24;
    opts.queries_per_database = 12;
    opts.workers = workers;
    // Dense query-space features: the per-feature hit-count identity below
    // then covers the join / DISTINCT / ORDER BY / LIMIT buckets and the
    // typed expression grammar too.
    opts.gen.explicit_join_probability = 0.8;
    opts.gen.third_table_probability = 0.6;
    opts.gen.distinct_probability = 0.5;
    opts.gen.order_by_probability = 0.6;
    opts.gen.limit_probability = 0.6;
    opts.gen.function_probability = 0.5;
    opts.gen.cast_probability = 0.3;
    opts.gen.case_probability = 0.25;
    opts.gen.collate_probability = 0.5;
    opts.gen.like_escape_probability = 0.5;
    WorkerEngineFactory factory = [maps](int worker) -> ConnectionPtr {
      auto db = std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
      db->set_coverage_sink(&maps[worker]);
      return db;
    };
    PqsRunner runner(std::move(factory), opts);
    return runner.Run();
  };

  minidb::CoverageMap single[1];
  RunReport sequential = run(1, single);

  minidb::CoverageMap shards[4];
  RunReport sharded = run(4, shards);
  minidb::CoverageMap merged;
  for (const minidb::CoverageMap& m : shards) merged.Merge(m);

  CHECK_EQ(sharded.stats.statements_executed,
           sequential.stats.statements_executed);
  CHECK_EQ(sharded.stats.queries_checked, sequential.stats.queries_checked);
  CHECK_EQ(sharded.stats.databases_created,
           sequential.stats.databases_created);
  CHECK_EQ(sharded.findings.size(), sequential.findings.size());
  for (size_t i = 0; i < minidb::kNumFeatures; ++i) {
    auto f = static_cast<minidb::Feature>(i);
    CHECK_MSG(merged.Hits(f) == single[0].Hits(f),
              "feature %s: merged %llu != single %llu", minidb::FeatureName(f),
              static_cast<unsigned long long>(merged.Hits(f)),
              static_cast<unsigned long long>(single[0].Hits(f)));
  }
  // The identity above is only meaningful for the new buckets if the
  // session actually reached them.
  for (minidb::Feature f :
       {minidb::Feature::kJoinInner, minidb::Feature::kJoinLeft,
        minidb::Feature::kSelectDistinct, minidb::Feature::kSelectOrderBy,
        minidb::Feature::kSelectLimit, minidb::Feature::kExprFunction,
        minidb::Feature::kExprCast, minidb::Feature::kExprCase,
        minidb::Feature::kExprCollate, minidb::Feature::kExprLikeEscape}) {
    CHECK_MSG(merged.Hits(f) > 0, "feature %s never exercised",
              minidb::FeatureName(f));
  }
}

}  // namespace
}  // namespace pqs

int main() {
  pqs::TestStreamSeedsNeverCollide();
  pqs::TestWorkerStreamsDisjoint();
  pqs::TestShardPlanDeterministic();
  pqs::TestRunStatsMerge();
  pqs::TestCoverageMapMerge();
  pqs::TestShardedCoverageMatchesSingleRun();
  return pqs::test::Summary("test_shard_merge");
}
