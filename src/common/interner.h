// Process-global symbol interner for table and column names.
//
// Maps each distinct name to a dense int32 id, so the hot comparisons of
// the session loop — ColumnRef resolution against a RowSchema, index-key
// and table lookups in MiniDB, schema identity checks — become integer
// equality instead of string compares.
//
// Ids are assigned first-come-first-served across every thread of the
// campaign, which makes the *numeric value* of an id dependent on thread
// timing. That is safe precisely because ids are only ever used for
// EQUALITY: nothing orders, hashes into reports, or prints an id, so the
// byte-identical N-worker determinism guarantee is untouched (DESIGN §11).
//
// The global table lives behind a mutex; a thread-local cache in front of
// it makes the steady state (every campaign reuses the same few dozen
// names) lock-free.
#ifndef PQS_SRC_COMMON_INTERNER_H_
#define PQS_SRC_COMMON_INTERNER_H_

#include <cstdint>
#include <string>

namespace pqs {

class Interner {
 public:
  static constexpr int32_t kInvalidSymbol = -1;

  // Id of `name`, interning it on first sight. Never fails.
  static int32_t Intern(const std::string& name);

  // The interned string for an id. Returns the empty string for
  // kInvalidSymbol or an id never handed out.
  static std::string Name(int32_t id);

  // Number of distinct symbols interned so far (test telemetry).
  static size_t Size();
};

}  // namespace pqs

#endif  // PQS_SRC_COMMON_INTERNER_H_
