// Deterministic PRNG used by every random decision in the repository.
//
// PQS runs must be exactly reproducible from a 64-bit seed (the determinism
// unit test replays a whole campaign and compares reports), so nothing may
// touch std::random_device or rely on unspecified distribution algorithms.
// splitmix64 is small, fast, and has a well-understood output sequence.
#ifndef PQS_SRC_COMMON_RNG_H_
#define PQS_SRC_COMMON_RNG_H_

#include <cstdint>
#include <initializer_list>

namespace pqs {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + kGolden) {}

  uint64_t Next() {
    uint64_t z = (state_ += kGolden);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n). n == 0 is treated as n == 1.
  uint64_t Below(uint64_t n) { return n <= 1 ? 0 : Next() % n; }

  // Uniform in [lo, hi] inclusive.
  int64_t IntIn(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double Unit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool Chance(double p) { return Unit() < p; }

  // Split off an independent stream (used per-database so that adding a
  // query to one database does not shift every later database's choices).
  Rng Fork() { return Rng(Next()); }

  // Derives the seed of the `stream`-th independent substream of `seed`
  // (splitmix64 stream splitting). Distinct stream indexes provably yield
  // distinct seeds for the same base: stream -> seed is a composition of
  // bijections on uint64 (odd-constant multiply, add, finalizer), so the
  // worker/per-database streams split from one run seed can never collide
  // with each other. The finalizer additionally decorrelates the derived
  // state from the base orbit, so the derivation nests well (campaign seed
  // -> per-bug seed -> per-database seed); across *different* bases the
  // distinctness is only statistical (~2^-64 per pair), as with any seed
  // hashing.
  static uint64_t StreamSeed(uint64_t seed, uint64_t stream) {
    uint64_t z = seed + (stream + 1) * kStreamGolden;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  template <typename T>
  T Pick(std::initializer_list<T> options) {
    auto it = options.begin();
    for (uint64_t skip = Below(options.size()); skip > 0; --skip) ++it;
    return *it;
  }

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  // Distinct odd constant for stream derivation so substream seeds are not
  // drawn from the master sequence's own additive orbit.
  static constexpr uint64_t kStreamGolden = 0xd1b54a32d192ed03ULL;
  uint64_t state_;
};

}  // namespace pqs

#endif  // PQS_SRC_COMMON_RNG_H_
