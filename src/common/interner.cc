#include "src/common/interner.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace pqs {

namespace {

struct GlobalTable {
  std::mutex mu;
  std::unordered_map<std::string, int32_t> ids;
  std::deque<std::string> names;  // deque: stable references across growth
};

GlobalTable* global() {
  static GlobalTable* t = new GlobalTable;  // leaked: outlives thread caches
  return t;
}

// Per-thread read-through cache. Campaigns reuse a few dozen names, so
// after warmup every Intern() is one local hash lookup, no lock.
std::unordered_map<std::string, int32_t>& thread_cache() {
  static thread_local std::unordered_map<std::string, int32_t> cache;
  return cache;
}

}  // namespace

int32_t Interner::Intern(const std::string& name) {
  auto& cache = thread_cache();
  auto hit = cache.find(name);
  if (hit != cache.end()) return hit->second;

  GlobalTable* t = global();
  int32_t id;
  {
    std::lock_guard<std::mutex> lock(t->mu);
    auto [it, inserted] =
        t->ids.emplace(name, static_cast<int32_t>(t->names.size()));
    if (inserted) t->names.push_back(name);
    id = it->second;
  }
  cache.emplace(name, id);
  return id;
}

std::string Interner::Name(int32_t id) {
  if (id < 0) return std::string();
  GlobalTable* t = global();
  std::lock_guard<std::mutex> lock(t->mu);
  if (static_cast<size_t>(id) >= t->names.size()) return std::string();
  return t->names[static_cast<size_t>(id)];
}

size_t Interner::Size() {
  GlobalTable* t = global();
  std::lock_guard<std::mutex> lock(t->mu);
  return t->names.size();
}

}  // namespace pqs
