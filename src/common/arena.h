// Bump-pointer arena and a pooled fixed-size node allocator.
//
// Two allocation disciplines back the session hot path (DESIGN §11):
//
//  - Arena: a classic bump allocator over chained blocks. Allocation is a
//    pointer increment; Reset() rewinds every block for reuse without
//    returning memory to the system, so a session that builds and discards
//    temporary rows per statement stops paying malloc/free per value.
//    Objects with non-trivial destructors must be created through NewOwned,
//    which registers the destructor to run (in reverse creation order) on
//    Reset/destruction; trivially-destructible data can use Alloc/New.
//
//  - NodePool: a freelist of fixed-size slots carved from slabs that are
//    intentionally never freed, fronted by a thread-local cache. Expr's
//    class-level operator new/delete route through it (src/sqlast/ast.cc),
//    which removes the per-node heap round trip on the generate / clone /
//    rectify / reduce path. Slots freed on any thread go onto that thread's
//    cache; a thread donates its cache to the global pool on exit, and new
//    threads adopt from the pool. Because slabs are immortal, a node
//    allocated on a worker and destroyed on the main thread (findings moved
//    across the shard merge) is always safe.
#ifndef PQS_SRC_COMMON_ARENA_H_
#define PQS_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace pqs {

class Arena {
 public:
  explicit Arena(size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes < 256 ? 256 : block_bytes) {}
  ~Arena() {
    RunDestructors();
    for (Block& b : blocks_) ::operator delete(b.data);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw bytes; the caller is responsible for destruction (use for
  // trivially-destructible data only).
  void* Alloc(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      // Align the address, not the offset: the block base itself only
      // carries operator-new alignment, so over-aligned requests must
      // account for it.
      size_t base = reinterpret_cast<size_t>(b.data);
      size_t aligned = ((base + b.used + align - 1) & ~(align - 1)) - base;
      if (aligned + bytes <= b.size) {
        b.used = aligned + bytes;
        return b.data + aligned;
      }
      // Try the next recycled block (after Reset) before growing.
      if (current_ + 1 < blocks_.size()) {
        ++current_;
        blocks_[current_].used = 0;
        return Alloc(bytes, align);
      }
    }
    size_t size = bytes + align > block_bytes_ ? bytes + align : block_bytes_;
    Block b;
    b.data = static_cast<char*>(::operator new(size));
    b.size = size;
    b.used = 0;
    blocks_.push_back(b);
    current_ = blocks_.size() - 1;
    return Alloc(bytes, align);
  }

  template <typename T, typename... A>
  T* New(A&&... args) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "use NewOwned for types with destructors");
    void* p = Alloc(sizeof(T), alignof(T));
    return new (p) T(std::forward<A>(args)...);
  }

  // Arena-owned object whose destructor runs on Reset()/destruction.
  template <typename T, typename... A>
  T* NewOwned(A&&... args) {
    void* p = Alloc(sizeof(T), alignof(T));
    T* obj = new (p) T(std::forward<A>(args)...);
    owned_.push_back({p, [](void* q) { static_cast<T*>(q)->~T(); }});
    return obj;
  }

  // Rewinds every block for reuse. Memory stays claimed; owned objects are
  // destroyed (reverse creation order). Pointers handed out before the
  // Reset are invalidated.
  void Reset() {
    RunDestructors();
    for (Block& b : blocks_) b.used = 0;
    current_ = 0;
  }

  size_t block_count() const { return blocks_.size(); }
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  size_t bytes_used() const {
    size_t total = 0;
    for (size_t i = 0; i <= current_ && i < blocks_.size(); ++i) {
      total += blocks_[i].used;
    }
    return total;
  }

 private:
  struct Block {
    char* data = nullptr;
    size_t size = 0;
    size_t used = 0;
  };
  struct Owned {
    void* object;
    void (*destroy)(void*);
  };

  void RunDestructors() {
    for (size_t i = owned_.size(); i > 0; --i) {
      owned_[i - 1].destroy(owned_[i - 1].object);
    }
    owned_.clear();
  }

  size_t block_bytes_;
  size_t current_ = 0;
  std::vector<Block> blocks_;
  std::vector<Owned> owned_;
};

// Freelist pool for one fixed slot size (every caller must pass the same
// size — Expr nodes are the one client). All shared state is behind a leaky
// singleton so donation at thread exit never races static destruction.
class NodePool {
 public:
  // Pops a slot from the calling thread's cache, refilling from the global
  // pool or a fresh slab when empty.
  static void* Take(size_t slot_size) {
    ThreadCache& tc = cache();
    if (tc.head == nullptr) Refill(&tc, slot_size);
    FreeNode* n = tc.head;
    tc.head = n->next;
    --tc.count;
    return n;
  }

  // Pushes a slot onto the calling thread's cache.
  static void Put(void* p) {
    ThreadCache& tc = cache();
    FreeNode* n = static_cast<FreeNode*>(p);
    n->next = tc.head;
    tc.head = n;
    ++tc.count;
  }

  // Telemetry for tests.
  static size_t ThreadCacheSize() { return cache().count; }
  static size_t SlabsAllocated() {
    Global* g = global();
    std::lock_guard<std::mutex> lock(g->mu);
    return g->slabs;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct Global {
    std::mutex mu;
    FreeNode* head = nullptr;
    size_t count = 0;
    size_t slabs = 0;
  };
  struct ThreadCache {
    FreeNode* head = nullptr;
    size_t count = 0;
    // Donates the remaining freelist to the global pool at thread exit, so
    // slots allocated by short-lived workers keep circulating.
    ~ThreadCache() {
      if (head == nullptr) return;
      FreeNode* tail = head;
      while (tail->next != nullptr) tail = tail->next;
      Global* g = global();
      std::lock_guard<std::mutex> lock(g->mu);
      tail->next = g->head;
      g->head = head;
      g->count += count;
    }
  };

  static void Refill(ThreadCache* tc, size_t slot_size) {
    Global* g = global();
    {
      std::lock_guard<std::mutex> lock(g->mu);
      if (g->head != nullptr) {  // adopt everything previously donated
        tc->head = g->head;
        tc->count = g->count;
        g->head = nullptr;
        g->count = 0;
        return;
      }
      ++g->slabs;
    }
    // Fresh slab, intentionally immortal (see file comment): slots may be
    // freed from any thread at any time, so the backing memory can never
    // be returned safely — bounded by the peak live node count.
    constexpr size_t kSlabSlots = 256;
    size_t slot = slot_size < sizeof(FreeNode) ? sizeof(FreeNode) : slot_size;
    char* slab = static_cast<char*>(::operator new(slot * kSlabSlots));
    for (size_t i = 0; i < kSlabSlots; ++i) Put(slab + i * slot);
  }

  static Global* global() {
    static Global* g = new Global;  // leaked: outlives every thread cache
    return g;
  }
  static ThreadCache& cache() {
    static thread_local ThreadCache tc;
    return tc;
  }
};

}  // namespace pqs

#endif  // PQS_SRC_COMMON_ARENA_H_
