// Typed SQL statement and expression AST.
//
// The generator produces these nodes, the MiniDB engine interprets them
// directly, and the sqlparser module renders them to SQL text for real
// engines (and for human-readable bug reports). Statements are modeled as a
// small class hierarchy because test cases are heterogeneous statement
// lists; expressions are a single tagged node because the evaluator wants
// one uniform recursion.
#ifndef PQS_SRC_SQLAST_AST_H_
#define PQS_SRC_SQLAST_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sqlvalue/value.h"

namespace pqs {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,         // NOT e, -e
  kBinary,        // comparison / logical / arithmetic / concat
  kIsNull,        // e IS [NOT] NULL
  kInList,        // e [NOT] IN (v, ...)
  kBetween,       // e [NOT] BETWEEN lo AND hi
  kLike,          // e [NOT] LIKE pattern [ESCAPE esc]
  kFunctionCall,  // F(a, b, ...) — F from the sqlexpr function registry
  kCast,          // CAST(e AS type)
  kCase,          // CASE WHEN w THEN t [WHEN ...] [ELSE e] END
  kCollate,       // e COLLATE BINARY|NOCASE
  kAggregate,     // COUNT(*) / COUNT|SUM|AVG|MIN|MAX([DISTINCT] e)
};

// Aggregate functions of the grouping subsystem. Unlike the scalar FuncId
// vocabulary these are not registry-driven: every dialect spells all five
// the same way, and their semantics live in the shared grouping core
// (src/interp), not in the per-dialect function registry.
enum class AggFunc : uint8_t { kCount, kSum, kAvg, kMin, kMax, kNumAggFuncs };

// Uppercase SQL spelling ("COUNT", "SUM", ...), identical in every dialect.
const char* AggFuncName(AggFunc func);

// Scalar functions the typed expression subsystem models. The vocabulary
// lives here because Expr nodes carry a FuncId; everything *about* a
// function (per-dialect name and availability, arity, NULL-propagation
// rule, argument typing) lives in the src/sqlexpr registry.
enum class FuncId : uint8_t {
  kAbs = 0,
  kLength,
  kUpper,
  kLower,
  kCoalesce,
  kNullif,
  kLeast,     // scalar MIN(a, b, ...) in SQLite spelling
  kGreatest,  // scalar MAX(a, b, ...) in SQLite spelling
  kIfnull,    // SQLite/MySQL only; PostgreSQL has no IFNULL
  kNumFuncs,
};

// Explicit text collation of a COLLATE operator. kBinary is byte-wise,
// kNocase folds ASCII case (the SQLite built-in pair this repo models).
enum class Collation : uint8_t { kBinary, kNocase };

enum class UnaryOp { kNot, kNeg };

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kConcat,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  SqlValue literal;                  // kLiteral
  std::string table;                 // kColumnRef (may be empty = unqualified)
  std::string column;                // kColumnRef
  // kColumnRef: interned symbols of table/column (src/common/interner.h),
  // resolved lazily on the first id-based schema lookup and cached on the
  // node. kSymUnresolved = not yet interned; an empty (unqualified) table
  // interns to Interner::kInvalidSymbol. Equality-only ids — never ordered
  // or printed, so caching them cannot perturb deterministic output.
  static constexpr int32_t kSymUnresolved = -2;
  mutable int32_t table_sym = kSymUnresolved;
  mutable int32_t column_sym = kSymUnresolved;
  UnaryOp uop = UnaryOp::kNot;       // kUnary
  BinaryOp bop = BinaryOp::kEq;      // kBinary
  bool negated = false;              // IS NOT NULL / NOT IN / NOT BETWEEN /
                                     // NOT LIKE
  FuncId func = FuncId::kAbs;        // kFunctionCall
  AggFunc agg = AggFunc::kCount;     // kAggregate
  bool agg_distinct = false;         // kAggregate: COUNT(DISTINCT e), ...
  bool agg_star = false;             // kAggregate: COUNT(*) (no operand)
  Affinity cast_to = Affinity::kText;        // kCast target type
  Collation collation = Collation::kBinary;  // kCollate
  bool case_has_else = false;        // kCase: last arg is the ELSE value
  std::vector<ExprPtr> args;         // operands; kInList: args[0] is the
                                     // probe, args[1..] the list; kBetween:
                                     // {value, lo, hi}; kLike: {value,
                                     // pattern[, escape]}; kFunctionCall:
                                     // call arguments; kCase: WHEN/THEN
                                     // pairs, then the ELSE value when
                                     // case_has_else

  // Expr nodes are allocated from a pooled freelist (src/common/arena.h):
  // the generate/clone/rectify/reduce path churns nodes far faster than the
  // general-purpose heap likes, and the pool turns each node's allocation
  // into a thread-local pointer pop. Deleting on a different thread than
  // the allocating one is safe (slabs are immortal; see NodePool).
  static void* operator new(size_t size);
  static void operator delete(void* p, size_t size);
  static void* operator new(size_t, void* p) { return p; }  // placement
  static void operator delete(void*, void*) {}

  ExprPtr Clone() const;
  // Height of the expression tree (a literal is 1).
  int Depth() const;
  // Structural equality: same node kinds, flags, literals (storage class
  // and exact value), and children. The scan planner uses this to decide
  // whether a WHERE conjunct *is* a partial index's predicate.
  bool StructurallyEquals(const Expr& other) const;
  bool ContainsKind(ExprKind k) const;
  bool ContainsBinaryOp(BinaryOp op) const;
  // Count of nodes matching a predicate-free structural query.
  size_t CountBinaryOp(BinaryOp op) const;
  size_t CountKind(ExprKind k) const;
  bool ContainsFunction(FuncId id) const;
  // True if some kIsNull node with the given negation exists.
  bool ContainsIsNull(bool negated_form) const;
  // True if some kBinary comparison has column refs on both sides.
  bool ContainsColumnColumnCompare() const;

  // kCase accessors over the flattened args layout.
  size_t CaseArmCount() const {
    return (args.size() - (case_has_else ? 1 : 0)) / 2;
  }
  const Expr* CaseElse() const {
    return case_has_else ? args.back().get() : nullptr;
  }
};

ExprPtr MakeIntLiteral(int64_t v);
ExprPtr MakeRealLiteral(double v);
ExprPtr MakeTextLiteral(std::string v);
ExprPtr MakeNullLiteral();
ExprPtr MakeLiteral(SqlValue v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeIsNull(ExprPtr operand, bool negated);
ExprPtr MakeInList(ExprPtr probe, std::vector<ExprPtr> list, bool negated);
ExprPtr MakeBetween(ExprPtr value, ExprPtr lo, ExprPtr hi, bool negated);
ExprPtr MakeLike(ExprPtr value, ExprPtr pattern, bool negated);
// LIKE with an explicit ESCAPE character (a one-character text literal).
ExprPtr MakeLikeEscape(ExprPtr value, ExprPtr pattern, ExprPtr escape,
                       bool negated);
ExprPtr MakeFunctionCall(FuncId func, std::vector<ExprPtr> args);
ExprPtr MakeCast(ExprPtr operand, Affinity to);
// Searched CASE: when_then holds WHEN/THEN pairs in order; else_value may
// be null (no ELSE arm ⇒ NULL when nothing matches).
ExprPtr MakeCase(std::vector<std::pair<ExprPtr, ExprPtr>> when_then,
                 ExprPtr else_value);
ExprPtr MakeCollate(ExprPtr operand, Collation collation);
// COUNT|SUM|AVG|MIN|MAX([DISTINCT] arg). COUNT(*) has its own factory
// because it takes no operand (agg_star is set instead).
ExprPtr MakeAggregate(AggFunc func, ExprPtr arg, bool distinct);
ExprPtr MakeCountStar();

bool IsComparisonOp(BinaryOp op);
bool IsArithmeticOp(BinaryOp op);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct ColumnDef {
  std::string name;
  std::string declared_type;  // e.g. "INT", "REAL", "TEXT" (display only)
  Affinity affinity = Affinity::kText;
  bool unique = false;
  bool primary_key = false;
  bool not_null = false;
};

enum class StmtKind {
  kCreateTable,
  kCreateIndex,
  kDropIndex,
  kInsert,
  kSelect,
  kUpdate,
  kDelete,
  kMaintenance,  // REINDEX / OPTIMIZE TABLE, dialect-rendered
  kBegin,        // BEGIN / START TRANSACTION, dialect-rendered
  kCommit,
  kRollback,
  kSetSession,   // scheduler-only: switch the active logical session
};

struct Stmt {
  virtual ~Stmt() = default;
  virtual StmtKind kind() const = 0;
  virtual std::unique_ptr<Stmt> Clone() const = 0;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct CreateTableStmt : Stmt {
  std::string table_name;
  std::vector<ColumnDef> columns;

  StmtKind kind() const override { return StmtKind::kCreateTable; }
  StmtPtr Clone() const override;
};

// The statement-level mutation nodes (CREATE INDEX, DROP INDEX, UPDATE,
// DELETE, maintenance) live in src/sqlstmt/stmt.h; this header keeps the
// Stmt base plus the original schema/data/query statements.

struct InsertStmt : Stmt {
  std::string table_name;
  // One entry per inserted row; each row lists one literal expression per
  // table column, in declaration order.
  std::vector<std::vector<ExprPtr>> rows;

  StmtKind kind() const override { return StmtKind::kInsert; }
  StmtPtr Clone() const override;
};

// Explicit join chain step. A SELECT with joins reads
// `FROM from_tables[0] <join 0> <join 1> ...`; each clause combines the
// rows accumulated so far with one more table. kCross takes no ON
// condition; kInner and kLeft require one (the generator always supplies
// it, and MiniDB rejects a missing ON as a statement error).
enum class JoinKind { kInner, kLeft, kCross };

const char* JoinKindName(JoinKind kind);

struct JoinClause {
  JoinKind kind = JoinKind::kInner;
  std::string table;  // right-hand table of this step
  ExprPtr on;         // null for kCross

  JoinClause Clone() const;
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;

  OrderByItem Clone() const;
};

struct SelectStmt : Stmt {
  bool distinct = false;
  // Empty select_list means `SELECT *` over all FROM-table columns in
  // declaration order.
  std::vector<ExprPtr> select_list;
  // Comma-list FROM (cross product). When `joins` is non-empty this must
  // hold exactly the one base table the join chain starts from.
  std::vector<std::string> from_tables;
  std::vector<JoinClause> joins;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;  // GROUP BY keys (column refs)
  ExprPtr having;                 // may be null; requires/implies grouping
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;  // < 0 means no LIMIT clause
  // Set by the sqlmeta transforms on the rewritten queries they build
  // (NoREC pair, TLP partitions). Never rendered; SqliteConnection keys
  // its prepared-statement cache counters on it so BENCH_throughput can
  // report base-query and meta-query cache behaviour separately.
  bool meta_rewrite = false;

  StmtKind kind() const override { return StmtKind::kSelect; }
  StmtPtr Clone() const override;

  // All FROM tables in join order: from_tables then each join's table.
  std::vector<std::string> AllTables() const;
  // True when the statement needs the grouping/aggregation pipeline: an
  // aggregate call anywhere in the select list or HAVING, or an explicit
  // GROUP BY.
  bool HasAggregates() const;
};

// Figure-3 statement category ("CREATE TABLE", "INSERT", ...).
const char* StatementCategory(const Stmt& stmt);

}  // namespace pqs

#endif  // PQS_SRC_SQLAST_AST_H_
