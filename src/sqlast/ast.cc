#include "src/sqlast/ast.h"

#include <algorithm>

#include "src/common/arena.h"

namespace pqs {

void* Expr::operator new(size_t size) { return NodePool::Take(size); }
void Expr::operator delete(void* p, size_t size) {
  (void)size;
  if (p != nullptr) NodePool::Put(p);
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->uop = uop;
  out->bop = bop;
  out->negated = negated;
  out->func = func;
  out->agg = agg;
  out->agg_distinct = agg_distinct;
  out->agg_star = agg_star;
  out->cast_to = cast_to;
  out->collation = collation;
  out->case_has_else = case_has_else;
  out->args.reserve(args.size());
  for (const ExprPtr& a : args) {
    out->args.push_back(a ? a->Clone() : nullptr);
  }
  return out;
}

int Expr::Depth() const {
  int deepest = 0;
  for (const ExprPtr& a : args) {
    if (a) deepest = std::max(deepest, a->Depth());
  }
  return deepest + 1;
}

bool Expr::ContainsKind(ExprKind k) const {
  if (kind == k) return true;
  for (const ExprPtr& a : args) {
    if (a && a->ContainsKind(k)) return true;
  }
  return false;
}

bool Expr::ContainsBinaryOp(BinaryOp op) const {
  if (kind == ExprKind::kBinary && bop == op) return true;
  for (const ExprPtr& a : args) {
    if (a && a->ContainsBinaryOp(op)) return true;
  }
  return false;
}

size_t Expr::CountBinaryOp(BinaryOp op) const {
  size_t count = (kind == ExprKind::kBinary && bop == op) ? 1 : 0;
  for (const ExprPtr& a : args) {
    if (a) count += a->CountBinaryOp(op);
  }
  return count;
}

size_t Expr::CountKind(ExprKind k) const {
  size_t count = kind == k ? 1 : 0;
  for (const ExprPtr& a : args) {
    if (a) count += a->CountKind(k);
  }
  return count;
}

bool Expr::ContainsFunction(FuncId id) const {
  if (kind == ExprKind::kFunctionCall && func == id) return true;
  for (const ExprPtr& a : args) {
    if (a && a->ContainsFunction(id)) return true;
  }
  return false;
}

bool Expr::ContainsIsNull(bool negated_form) const {
  if (kind == ExprKind::kIsNull && negated == negated_form) return true;
  for (const ExprPtr& a : args) {
    if (a && a->ContainsIsNull(negated_form)) return true;
  }
  return false;
}

bool Expr::StructurallyEquals(const Expr& other) const {
  if (kind != other.kind || negated != other.negated ||
      args.size() != other.args.size()) {
    return false;
  }
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.cls != other.literal.cls) return false;
      switch (literal.cls) {
        case StorageClass::kNull:
          break;
        case StorageClass::kInteger:
          if (literal.i != other.literal.i) return false;
          break;
        case StorageClass::kReal:
          if (literal.r != other.literal.r) return false;
          break;
        case StorageClass::kText:
          if (literal.t != other.literal.t) return false;
          break;
      }
      break;
    case ExprKind::kColumnRef:
      if (table != other.table || column != other.column) return false;
      break;
    case ExprKind::kUnary:
      if (uop != other.uop) return false;
      break;
    case ExprKind::kBinary:
      if (bop != other.bop) return false;
      break;
    case ExprKind::kFunctionCall:
      if (func != other.func) return false;
      break;
    case ExprKind::kAggregate:
      if (agg != other.agg || agg_distinct != other.agg_distinct ||
          agg_star != other.agg_star) {
        return false;
      }
      break;
    case ExprKind::kCast:
      if (cast_to != other.cast_to) return false;
      break;
    case ExprKind::kCollate:
      if (collation != other.collation) return false;
      break;
    case ExprKind::kCase:
      if (case_has_else != other.case_has_else) return false;
      break;
    default:
      break;
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if ((args[i] == nullptr) != (other.args[i] == nullptr)) return false;
    if (args[i] != nullptr && !args[i]->StructurallyEquals(*other.args[i])) {
      return false;
    }
  }
  return true;
}

bool Expr::ContainsColumnColumnCompare() const {
  if (kind == ExprKind::kBinary && IsComparisonOp(bop) && args.size() == 2 &&
      args[0] && args[1] && args[0]->kind == ExprKind::kColumnRef &&
      args[1]->kind == ExprKind::kColumnRef) {
    return true;
  }
  for (const ExprPtr& a : args) {
    if (a && a->ContainsColumnColumnCompare()) return true;
  }
  return false;
}

ExprPtr MakeLiteral(SqlValue v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeIntLiteral(int64_t v) { return MakeLiteral(SqlValue::Int(v)); }
ExprPtr MakeRealLiteral(double v) { return MakeLiteral(SqlValue::Real(v)); }
ExprPtr MakeTextLiteral(std::string v) {
  return MakeLiteral(SqlValue::Text(std::move(v)));
}
ExprPtr MakeNullLiteral() { return MakeLiteral(SqlValue::Null()); }

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = op;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeIsNull(ExprPtr operand, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIsNull;
  e->negated = negated;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeInList(ExprPtr probe, std::vector<ExprPtr> list, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInList;
  e->negated = negated;
  e->args.push_back(std::move(probe));
  for (ExprPtr& item : list) e->args.push_back(std::move(item));
  return e;
}

ExprPtr MakeBetween(ExprPtr value, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBetween;
  e->negated = negated;
  e->args.push_back(std::move(value));
  e->args.push_back(std::move(lo));
  e->args.push_back(std::move(hi));
  return e;
}

ExprPtr MakeLike(ExprPtr value, ExprPtr pattern, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLike;
  e->negated = negated;
  e->args.push_back(std::move(value));
  e->args.push_back(std::move(pattern));
  return e;
}

ExprPtr MakeLikeEscape(ExprPtr value, ExprPtr pattern, ExprPtr escape,
                       bool negated) {
  ExprPtr e = MakeLike(std::move(value), std::move(pattern), negated);
  e->args.push_back(std::move(escape));
  return e;
}

ExprPtr MakeFunctionCall(FuncId func, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->func = func;
  e->args = std::move(args);
  return e;
}

ExprPtr MakeCast(ExprPtr operand, Affinity to) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCast;
  e->cast_to = to;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeCase(std::vector<std::pair<ExprPtr, ExprPtr>> when_then,
                 ExprPtr else_value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  for (auto& [when, then] : when_then) {
    e->args.push_back(std::move(when));
    e->args.push_back(std::move(then));
  }
  if (else_value != nullptr) {
    e->case_has_else = true;
    e->args.push_back(std::move(else_value));
  }
  return e;
}

ExprPtr MakeCollate(ExprPtr operand, Collation collation) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCollate;
  e->collation = collation;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeAggregate(AggFunc func, ExprPtr arg, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg = func;
  e->agg_distinct = distinct;
  e->args.push_back(std::move(arg));
  return e;
}

ExprPtr MakeCountStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg = AggFunc::kCount;
  e->agg_star = true;
  return e;
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kNumAggFuncs:
      break;
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return true;
    default:
      return false;
  }
}

StmtPtr CreateTableStmt::Clone() const {
  auto out = std::make_unique<CreateTableStmt>();
  out->table_name = table_name;
  out->columns = columns;
  return out;
}

StmtPtr InsertStmt::Clone() const {
  auto out = std::make_unique<InsertStmt>();
  out->table_name = table_name;
  out->rows.reserve(rows.size());
  for (const auto& row : rows) {
    out->rows.emplace_back();
    out->rows.back().reserve(row.size());
    for (const ExprPtr& v : row) {
      out->rows.back().push_back(v ? v->Clone() : nullptr);
    }
  }
  return out;
}

const char* JoinKindName(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
      return "inner";
    case JoinKind::kLeft:
      return "left";
    case JoinKind::kCross:
      return "cross";
  }
  return "?";
}

JoinClause JoinClause::Clone() const {
  JoinClause out;
  out.kind = kind;
  out.table = table;
  out.on = on ? on->Clone() : nullptr;
  return out;
}

OrderByItem OrderByItem::Clone() const {
  OrderByItem out;
  out.expr = expr ? expr->Clone() : nullptr;
  out.descending = descending;
  return out;
}

StmtPtr SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  out->select_list.reserve(select_list.size());
  for (const ExprPtr& e : select_list) {
    out->select_list.push_back(e ? e->Clone() : nullptr);
  }
  out->from_tables = from_tables;
  out->joins.reserve(joins.size());
  for (const JoinClause& j : joins) out->joins.push_back(j.Clone());
  out->where = where ? where->Clone() : nullptr;
  out->group_by.reserve(group_by.size());
  for (const ExprPtr& g : group_by) {
    out->group_by.push_back(g ? g->Clone() : nullptr);
  }
  out->having = having ? having->Clone() : nullptr;
  out->order_by.reserve(order_by.size());
  for (const OrderByItem& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  out->meta_rewrite = meta_rewrite;
  return out;
}

bool SelectStmt::HasAggregates() const {
  if (!group_by.empty() || having != nullptr) return true;
  for (const ExprPtr& e : select_list) {
    if (e && e->ContainsKind(ExprKind::kAggregate)) return true;
  }
  return false;
}

std::vector<std::string> SelectStmt::AllTables() const {
  std::vector<std::string> out = from_tables;
  out.reserve(from_tables.size() + joins.size());
  for (const JoinClause& j : joins) out.push_back(j.table);
  return out;
}

const char* StatementCategory(const Stmt& stmt) {
  switch (stmt.kind()) {
    case StmtKind::kCreateTable:
      return "CREATE TABLE";
    case StmtKind::kCreateIndex:
      return "CREATE INDEX";
    case StmtKind::kDropIndex:
      return "DROP INDEX";
    case StmtKind::kInsert:
      return "INSERT";
    case StmtKind::kSelect:
      return "SELECT";
    case StmtKind::kUpdate:
      return "UPDATE";
    case StmtKind::kDelete:
      return "DELETE";
    case StmtKind::kMaintenance:
      return "REINDEX";
    case StmtKind::kBegin:
      return "BEGIN";
    case StmtKind::kCommit:
      return "COMMIT";
    case StmtKind::kRollback:
      return "ROLLBACK";
    case StmtKind::kSetSession:
      return "SET SESSION";
  }
  return "?";
}

}  // namespace pqs
