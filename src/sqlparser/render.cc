#include "src/sqlparser/render.h"

#include "src/sqlexpr/registry.h"
#include "src/sqlstmt/stmt.h"

namespace pqs {

namespace {

const char* BinaryOpToken(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

std::string ColumnRefText(const Expr& e) {
  if (e.table.empty()) return e.column;
  return e.table + "." + e.column;
}

// Dialect spelling of a join step. MySQL idiomatically writes a bare JOIN
// for an inner join; SQLite and PostgreSQL get the explicit INNER keyword.
const char* JoinToken(JoinKind kind, Dialect dialect) {
  switch (kind) {
    case JoinKind::kInner:
      return dialect == Dialect::kMysqlLike ? "JOIN" : "INNER JOIN";
    case JoinKind::kLeft:
      return "LEFT JOIN";
    case JoinKind::kCross:
      return "CROSS JOIN";
  }
  return "JOIN";
}

}  // namespace

std::string RenderExpr(const Expr& expr, Dialect dialect) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return ColumnRefText(expr);
    case ExprKind::kUnary: {
      std::string inner = RenderExpr(*expr.args[0], dialect);
      if (expr.uop == UnaryOp::kNot) return "(NOT " + inner + ")";
      return "(-" + inner + ")";
    }
    case ExprKind::kBinary:
      return "(" + RenderExpr(*expr.args[0], dialect) + " " +
             BinaryOpToken(expr.bop) + " " +
             RenderExpr(*expr.args[1], dialect) + ")";
    case ExprKind::kIsNull:
      return "(" + RenderExpr(*expr.args[0], dialect) +
             (expr.negated ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kInList: {
      std::string out = "(" + RenderExpr(*expr.args[0], dialect) +
                        (expr.negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < expr.args.size(); ++i) {
        if (i > 1) out += ", ";
        out += RenderExpr(*expr.args[i], dialect);
      }
      return out + "))";
    }
    case ExprKind::kBetween:
      return "(" + RenderExpr(*expr.args[0], dialect) +
             (expr.negated ? " NOT BETWEEN " : " BETWEEN ") +
             RenderExpr(*expr.args[1], dialect) + " AND " +
             RenderExpr(*expr.args[2], dialect) + ")";
    case ExprKind::kLike: {
      std::string out = "(" + RenderExpr(*expr.args[0], dialect) +
                        (expr.negated ? " NOT LIKE " : " LIKE ") +
                        RenderExpr(*expr.args[1], dialect);
      if (expr.args.size() > 2 && expr.args[2] != nullptr) {
        out += " ESCAPE " + RenderExpr(*expr.args[2], dialect);
      }
      return out + ")";
    }
    case ExprKind::kFunctionCall: {
      const FunctionSig& sig = LookupFunction(expr.func);
      const char* name = sig.NameFor(dialect);
      // Defensive spelling for a dialect the registry says lacks the
      // function: the SQLite name keeps the output parseable-looking.
      std::string out = std::string(name != nullptr ? name : sig.names[0]);
      out += "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += RenderExpr(*expr.args[i], dialect);
      }
      return out + ")";
    }
    case ExprKind::kCast:
      return "CAST(" + RenderExpr(*expr.args[0], dialect) + " AS " +
             CastTypeName(expr.cast_to, dialect) + ")";
    case ExprKind::kCase: {
      std::string out = "(CASE";
      size_t arms = expr.CaseArmCount();
      for (size_t i = 0; i < arms; ++i) {
        out += " WHEN " + RenderExpr(*expr.args[2 * i], dialect);
        out += " THEN " + RenderExpr(*expr.args[2 * i + 1], dialect);
      }
      if (expr.case_has_else) {
        out += " ELSE " + RenderExpr(*expr.CaseElse(), dialect);
      }
      return out + " END)";
    }
    case ExprKind::kCollate:
      return "(" + RenderExpr(*expr.args[0], dialect) + " COLLATE " +
             CollationName(expr.collation) + ")";
    case ExprKind::kAggregate: {
      if (expr.agg_star) return std::string(AggFuncName(expr.agg)) + "(*)";
      std::string out = std::string(AggFuncName(expr.agg)) + "(";
      if (expr.agg_distinct) out += "DISTINCT ";
      out += RenderExpr(*expr.args[0], dialect);
      return out + ")";
    }
  }
  return "?";
}

std::string RenderStmt(const Stmt& stmt, Dialect dialect) {
  switch (stmt.kind()) {
    case StmtKind::kCreateTable: {
      const auto& ct = static_cast<const CreateTableStmt&>(stmt);
      std::string out = "CREATE TABLE " + ct.table_name + " (";
      for (size_t i = 0; i < ct.columns.size(); ++i) {
        const ColumnDef& col = ct.columns[i];
        if (i > 0) out += ", ";
        out += col.name + " " + col.declared_type;
        if (col.primary_key) out += " PRIMARY KEY";
        if (col.unique) out += " UNIQUE";
        if (col.not_null) out += " NOT NULL";
      }
      return out + ")";
    }
    case StmtKind::kCreateIndex: {
      const auto& ci = static_cast<const CreateIndexStmt&>(stmt);
      std::string out = "CREATE ";
      if (ci.unique) out += "UNIQUE ";
      out += "INDEX " + ci.index_name + " ON " + ci.table_name + " (";
      for (size_t i = 0; i < ci.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += ci.columns[i];
      }
      out += ")";
      if (ci.where) out += " WHERE " + RenderExpr(*ci.where, dialect);
      return out;
    }
    case StmtKind::kDropIndex: {
      const auto& di = static_cast<const DropIndexStmt&>(stmt);
      // MySQL scopes the index name to its table; the others don't.
      if (dialect == Dialect::kMysqlLike) {
        return "DROP INDEX " + di.index_name + " ON " + di.table_name;
      }
      return "DROP INDEX " + di.index_name;
    }
    case StmtKind::kUpdate: {
      const auto& up = static_cast<const UpdateStmt&>(stmt);
      std::string out = "UPDATE " + up.table_name + " SET ";
      for (size_t i = 0; i < up.assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += up.assignments[i].column + " = " +
               RenderExpr(*up.assignments[i].value, dialect);
      }
      if (up.where) out += " WHERE " + RenderExpr(*up.where, dialect);
      return out;
    }
    case StmtKind::kDelete: {
      const auto& del = static_cast<const DeleteStmt&>(stmt);
      std::string out = "DELETE FROM " + del.table_name;
      if (del.where) out += " WHERE " + RenderExpr(*del.where, dialect);
      return out;
    }
    case StmtKind::kMaintenance: {
      const auto& m = static_cast<const MaintenanceStmt&>(stmt);
      switch (dialect) {
        case Dialect::kSqliteFlex:
          return "REINDEX " + m.table_name;
        case Dialect::kMysqlLike:
          return "OPTIMIZE TABLE " + m.table_name;
        case Dialect::kPostgresStrict:
          return "REINDEX TABLE " + m.table_name;
      }
      return "REINDEX " + m.table_name;
    }
    case StmtKind::kInsert: {
      const auto& ins = static_cast<const InsertStmt&>(stmt);
      std::string out = "INSERT INTO " + ins.table_name + " VALUES ";
      for (size_t r = 0; r < ins.rows.size(); ++r) {
        if (r > 0) out += ", ";
        out += "(";
        for (size_t c = 0; c < ins.rows[r].size(); ++c) {
          if (c > 0) out += ", ";
          out += RenderExpr(*ins.rows[r][c], dialect);
        }
        out += ")";
      }
      return out;
    }
    case StmtKind::kSelect: {
      const auto& sel = static_cast<const SelectStmt&>(stmt);
      std::string out = "SELECT ";
      if (sel.distinct) out += "DISTINCT ";
      if (sel.select_list.empty()) {
        out += "*";
      } else {
        for (size_t i = 0; i < sel.select_list.size(); ++i) {
          if (i > 0) out += ", ";
          out += RenderExpr(*sel.select_list[i], dialect);
        }
      }
      out += " FROM ";
      for (size_t i = 0; i < sel.from_tables.size(); ++i) {
        if (i > 0) out += ", ";
        out += sel.from_tables[i];
      }
      for (const JoinClause& join : sel.joins) {
        out += std::string(" ") + JoinToken(join.kind, dialect) + " " +
               join.table;
        if (join.on) out += " ON " + RenderExpr(*join.on, dialect);
      }
      if (sel.where) out += " WHERE " + RenderExpr(*sel.where, dialect);
      if (!sel.group_by.empty()) {
        out += " GROUP BY ";
        for (size_t i = 0; i < sel.group_by.size(); ++i) {
          if (i > 0) out += ", ";
          out += RenderExpr(*sel.group_by[i], dialect);
        }
      }
      if (sel.having) out += " HAVING " + RenderExpr(*sel.having, dialect);
      if (!sel.order_by.empty()) {
        out += " ORDER BY ";
        for (size_t i = 0; i < sel.order_by.size(); ++i) {
          const OrderByItem& item = sel.order_by[i];
          if (i > 0) out += ", ";
          out += RenderExpr(*item.expr, dialect);
          out += item.descending ? " DESC" : " ASC";
          // PostgreSQL defaults to NULLS LAST on ASC (the reverse of the
          // SQLite/MySQL model this repo evaluates with), so the strict
          // dialect pins the NULL position explicitly.
          if (dialect == Dialect::kPostgresStrict) {
            out += item.descending ? " NULLS LAST" : " NULLS FIRST";
          }
        }
      }
      if (sel.limit >= 0) out += " LIMIT " + std::to_string(sel.limit);
      return out;
    }
  }
  return "";
}

std::string RenderScript(const std::vector<StmtPtr>& statements,
                         Dialect dialect) {
  std::string out;
  for (const StmtPtr& s : statements) {
    if (s == nullptr) continue;
    out += RenderStmt(*s, dialect);
    out += ";\n";
  }
  return out;
}

}  // namespace pqs
