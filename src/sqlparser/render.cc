#include "src/sqlparser/render.h"

#include "src/sqlexpr/registry.h"
#include "src/sqlstmt/stmt.h"

namespace pqs {

namespace {

const char* BinaryOpToken(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

// Dialect spelling of a join step. MySQL idiomatically writes a bare JOIN
// for an inner join; SQLite and PostgreSQL get the explicit INNER keyword.
const char* JoinToken(JoinKind kind, Dialect dialect) {
  switch (kind) {
    case JoinKind::kInner:
      return dialect == Dialect::kMysqlLike ? "JOIN" : "INNER JOIN";
    case JoinKind::kLeft:
      return "LEFT JOIN";
    case JoinKind::kCross:
      return "CROSS JOIN";
  }
  return "JOIN";
}

// Appends `expr` to *out. When `params` is non-null the expression is
// rendered as a prepared-statement template: every literal becomes a `?`
// placeholder and a pointer to its value is appended to *params (bind
// order == placeholder order == depth-first render order). The pointers
// borrow the AST, so they are valid only while the statement is alive.
void AppendExpr(const Expr& expr, Dialect dialect, std::string* out,
                std::vector<const SqlValue*>* params) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      if (params != nullptr) {
        *out += '?';
        params->push_back(&expr.literal);
      } else {
        *out += expr.literal.ToSqlLiteral();
      }
      return;
    case ExprKind::kColumnRef:
      if (!expr.table.empty()) {
        *out += expr.table;
        *out += '.';
      }
      *out += expr.column;
      return;
    case ExprKind::kUnary:
      *out += expr.uop == UnaryOp::kNot ? "(NOT " : "(-";
      AppendExpr(*expr.args[0], dialect, out, params);
      *out += ')';
      return;
    case ExprKind::kBinary:
      *out += '(';
      AppendExpr(*expr.args[0], dialect, out, params);
      *out += ' ';
      *out += BinaryOpToken(expr.bop);
      *out += ' ';
      AppendExpr(*expr.args[1], dialect, out, params);
      *out += ')';
      return;
    case ExprKind::kIsNull:
      *out += '(';
      AppendExpr(*expr.args[0], dialect, out, params);
      *out += expr.negated ? " IS NOT NULL)" : " IS NULL)";
      return;
    case ExprKind::kInList:
      *out += '(';
      AppendExpr(*expr.args[0], dialect, out, params);
      *out += expr.negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < expr.args.size(); ++i) {
        if (i > 1) *out += ", ";
        AppendExpr(*expr.args[i], dialect, out, params);
      }
      *out += "))";
      return;
    case ExprKind::kBetween:
      *out += '(';
      AppendExpr(*expr.args[0], dialect, out, params);
      *out += expr.negated ? " NOT BETWEEN " : " BETWEEN ";
      AppendExpr(*expr.args[1], dialect, out, params);
      *out += " AND ";
      AppendExpr(*expr.args[2], dialect, out, params);
      *out += ')';
      return;
    case ExprKind::kLike:
      *out += '(';
      AppendExpr(*expr.args[0], dialect, out, params);
      *out += expr.negated ? " NOT LIKE " : " LIKE ";
      AppendExpr(*expr.args[1], dialect, out, params);
      if (expr.args.size() > 2 && expr.args[2] != nullptr) {
        *out += " ESCAPE ";
        AppendExpr(*expr.args[2], dialect, out, params);
      }
      *out += ')';
      return;
    case ExprKind::kFunctionCall: {
      const FunctionSig& sig = LookupFunction(expr.func);
      const char* name = sig.NameFor(dialect);
      // Defensive spelling for a dialect the registry says lacks the
      // function: the SQLite name keeps the output parseable-looking.
      *out += name != nullptr ? name : sig.names[0];
      *out += '(';
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) *out += ", ";
        AppendExpr(*expr.args[i], dialect, out, params);
      }
      *out += ')';
      return;
    }
    case ExprKind::kCast:
      *out += "CAST(";
      AppendExpr(*expr.args[0], dialect, out, params);
      *out += " AS ";
      *out += CastTypeName(expr.cast_to, dialect);
      *out += ')';
      return;
    case ExprKind::kCase: {
      *out += "(CASE";
      size_t arms = expr.CaseArmCount();
      for (size_t i = 0; i < arms; ++i) {
        *out += " WHEN ";
        AppendExpr(*expr.args[2 * i], dialect, out, params);
        *out += " THEN ";
        AppendExpr(*expr.args[2 * i + 1], dialect, out, params);
      }
      if (expr.case_has_else) {
        *out += " ELSE ";
        AppendExpr(*expr.CaseElse(), dialect, out, params);
      }
      *out += " END)";
      return;
    }
    case ExprKind::kCollate:
      *out += '(';
      AppendExpr(*expr.args[0], dialect, out, params);
      *out += " COLLATE ";
      *out += CollationName(expr.collation);
      *out += ')';
      return;
    case ExprKind::kAggregate:
      *out += AggFuncName(expr.agg);
      if (expr.agg_star) {
        *out += "(*)";
        return;
      }
      *out += '(';
      if (expr.agg_distinct) *out += "DISTINCT ";
      AppendExpr(*expr.args[0], dialect, out, params);
      *out += ')';
      return;
  }
  *out += '?';
}

// Appends a SELECT. `params`, when non-null, parameterizes ONLY the
// filter positions — WHERE, HAVING, and JOIN ON — where a literal cannot
// change the statement's shape. Select-list, GROUP BY, and ORDER BY
// literals stay literal: swapping them through `?` would alter projected
// values, grouping keys, or sort keys across cache hits, and LIMIT cannot
// be a parameter at all in some engines.
void AppendSelect(const SelectStmt& sel, Dialect dialect, std::string* out,
                  std::vector<const SqlValue*>* params) {
  *out += "SELECT ";
  if (sel.distinct) *out += "DISTINCT ";
  if (sel.select_list.empty()) {
    *out += '*';
  } else {
    for (size_t i = 0; i < sel.select_list.size(); ++i) {
      if (i > 0) *out += ", ";
      AppendExpr(*sel.select_list[i], dialect, out, nullptr);
    }
  }
  *out += " FROM ";
  for (size_t i = 0; i < sel.from_tables.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += sel.from_tables[i];
  }
  for (const JoinClause& join : sel.joins) {
    *out += ' ';
    *out += JoinToken(join.kind, dialect);
    *out += ' ';
    *out += join.table;
    if (join.on) {
      *out += " ON ";
      AppendExpr(*join.on, dialect, out, params);
    }
  }
  if (sel.where) {
    *out += " WHERE ";
    AppendExpr(*sel.where, dialect, out, params);
  }
  if (!sel.group_by.empty()) {
    *out += " GROUP BY ";
    for (size_t i = 0; i < sel.group_by.size(); ++i) {
      if (i > 0) *out += ", ";
      AppendExpr(*sel.group_by[i], dialect, out, nullptr);
    }
  }
  if (sel.having) {
    *out += " HAVING ";
    AppendExpr(*sel.having, dialect, out, params);
  }
  if (!sel.order_by.empty()) {
    *out += " ORDER BY ";
    for (size_t i = 0; i < sel.order_by.size(); ++i) {
      const OrderByItem& item = sel.order_by[i];
      if (i > 0) *out += ", ";
      AppendExpr(*item.expr, dialect, out, nullptr);
      *out += item.descending ? " DESC" : " ASC";
      // PostgreSQL defaults to NULLS LAST on ASC (the reverse of the
      // SQLite/MySQL model this repo evaluates with), so the strict
      // dialect pins the NULL position explicitly.
      if (dialect == Dialect::kPostgresStrict) {
        *out += item.descending ? " NULLS LAST" : " NULLS FIRST";
      }
    }
  }
  if (sel.limit >= 0) {
    *out += " LIMIT ";
    *out += std::to_string(sel.limit);
  }
}

}  // namespace

void RenderExprTo(const Expr& expr, Dialect dialect, std::string* out) {
  AppendExpr(expr, dialect, out, nullptr);
}

std::string RenderExpr(const Expr& expr, Dialect dialect) {
  std::string out;
  RenderExprTo(expr, dialect, &out);
  return out;
}

void RenderStmtTo(const Stmt& stmt, Dialect dialect, std::string* out) {
  switch (stmt.kind()) {
    case StmtKind::kCreateTable: {
      const auto& ct = static_cast<const CreateTableStmt&>(stmt);
      *out += "CREATE TABLE ";
      *out += ct.table_name;
      *out += " (";
      for (size_t i = 0; i < ct.columns.size(); ++i) {
        const ColumnDef& col = ct.columns[i];
        if (i > 0) *out += ", ";
        *out += col.name;
        *out += ' ';
        *out += col.declared_type;
        if (col.primary_key) *out += " PRIMARY KEY";
        if (col.unique) *out += " UNIQUE";
        if (col.not_null) *out += " NOT NULL";
      }
      *out += ')';
      return;
    }
    case StmtKind::kCreateIndex: {
      const auto& ci = static_cast<const CreateIndexStmt&>(stmt);
      *out += "CREATE ";
      if (ci.unique) *out += "UNIQUE ";
      *out += "INDEX ";
      *out += ci.index_name;
      *out += " ON ";
      *out += ci.table_name;
      *out += " (";
      for (size_t i = 0; i < ci.columns.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += ci.columns[i];
      }
      *out += ')';
      if (ci.where) {
        *out += " WHERE ";
        AppendExpr(*ci.where, dialect, out, nullptr);
      }
      return;
    }
    case StmtKind::kDropIndex: {
      const auto& di = static_cast<const DropIndexStmt&>(stmt);
      *out += "DROP INDEX ";
      *out += di.index_name;
      // MySQL scopes the index name to its table; the others don't.
      if (dialect == Dialect::kMysqlLike) {
        *out += " ON ";
        *out += di.table_name;
      }
      return;
    }
    case StmtKind::kUpdate: {
      const auto& up = static_cast<const UpdateStmt&>(stmt);
      *out += "UPDATE ";
      *out += up.table_name;
      *out += " SET ";
      for (size_t i = 0; i < up.assignments.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += up.assignments[i].column;
        *out += " = ";
        AppendExpr(*up.assignments[i].value, dialect, out, nullptr);
      }
      if (up.where) {
        *out += " WHERE ";
        AppendExpr(*up.where, dialect, out, nullptr);
      }
      return;
    }
    case StmtKind::kDelete: {
      const auto& del = static_cast<const DeleteStmt&>(stmt);
      *out += "DELETE FROM ";
      *out += del.table_name;
      if (del.where) {
        *out += " WHERE ";
        AppendExpr(*del.where, dialect, out, nullptr);
      }
      return;
    }
    case StmtKind::kMaintenance: {
      const auto& m = static_cast<const MaintenanceStmt&>(stmt);
      switch (dialect) {
        case Dialect::kSqliteFlex:
          *out += "REINDEX ";
          break;
        case Dialect::kMysqlLike:
          *out += "OPTIMIZE TABLE ";
          break;
        case Dialect::kPostgresStrict:
          *out += "REINDEX TABLE ";
          break;
      }
      *out += m.table_name;
      return;
    }
    case StmtKind::kInsert: {
      const auto& ins = static_cast<const InsertStmt&>(stmt);
      *out += "INSERT INTO ";
      *out += ins.table_name;
      *out += " VALUES ";
      for (size_t r = 0; r < ins.rows.size(); ++r) {
        if (r > 0) *out += ", ";
        *out += '(';
        for (size_t c = 0; c < ins.rows[r].size(); ++c) {
          if (c > 0) *out += ", ";
          AppendExpr(*ins.rows[r][c], dialect, out, nullptr);
        }
        *out += ')';
      }
      return;
    }
    case StmtKind::kSelect:
      AppendSelect(static_cast<const SelectStmt&>(stmt), dialect, out,
                   nullptr);
      return;
    case StmtKind::kBegin:
      // MySQL accepts bare BEGIN only outside stored programs; START
      // TRANSACTION is the unambiguous spelling there.
      *out += dialect == Dialect::kMysqlLike ? "START TRANSACTION" : "BEGIN";
      return;
    case StmtKind::kCommit:
      *out += "COMMIT";
      return;
    case StmtKind::kRollback:
      *out += "ROLLBACK";
      return;
    case StmtKind::kSetSession: {
      const auto& ss = static_cast<const SetSessionStmt&>(stmt);
      // Bookkeeping only — rendered as a comment so a reproduction script
      // stays valid SQL while still recording the interleaving.
      *out += "/* session ";
      *out += std::to_string(ss.session);
      *out += " */";
      return;
    }
  }
}

std::string RenderStmt(const Stmt& stmt, Dialect dialect) {
  std::string out;
  RenderStmtTo(stmt, dialect, &out);
  return out;
}

void RenderSelectTemplate(const SelectStmt& stmt, Dialect dialect,
                          std::string* sql,
                          std::vector<const SqlValue*>* params) {
  sql->clear();
  params->clear();
  AppendSelect(stmt, dialect, sql, params);
}

std::string RenderScript(const std::vector<StmtPtr>& statements,
                         Dialect dialect) {
  std::string out;
  for (const StmtPtr& s : statements) {
    if (s == nullptr) continue;
    RenderStmtTo(*s, dialect, &out);
    out += ";\n";
  }
  return out;
}

}  // namespace pqs
