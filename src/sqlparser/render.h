// AST → SQL text rendering.
//
// Used by the real-engine adapters (the libsqlite3 connection feeds rendered
// text to sqlite3_prepare) and by bug reports / reduced test cases, which
// are printed as plain SQL so a finding can be replayed against a stock
// DBMS shell.
#ifndef PQS_SRC_SQLPARSER_RENDER_H_
#define PQS_SRC_SQLPARSER_RENDER_H_

#include <string>
#include <vector>

#include "src/engine/connection.h"
#include "src/sqlast/ast.h"

namespace pqs {

std::string RenderExpr(const Expr& expr, Dialect dialect);
std::string RenderStmt(const Stmt& stmt, Dialect dialect);

// Buffer-reuse variants: append the rendering to *out instead of building
// a fresh string. The per-statement adapters (SqliteConnection renders
// every statement it executes) call these with a long-lived buffer so the
// hot path stops paying an allocation per rendered statement.
void RenderExprTo(const Expr& expr, Dialect dialect, std::string* out);
void RenderStmtTo(const Stmt& stmt, Dialect dialect, std::string* out);

// Prepared-statement template for a SELECT: literals in the filter
// positions (WHERE, HAVING, JOIN ON) render as `?` placeholders and
// pointers to their values are collected into *params in bind order
// (1-based placeholder i binds (*params)[i-1]). Literals whose position
// affects the statement's shape — select list, GROUP BY, ORDER BY keys,
// LIMIT — stay literal, so two templates are interchangeable exactly when
// their text matches. The pointers borrow `stmt`'s AST. Both outputs are
// cleared first (reuse-friendly).
void RenderSelectTemplate(const SelectStmt& stmt, Dialect dialect,
                          std::string* sql,
                          std::vector<const SqlValue*>* params);

// Renders a whole test case, one statement per line, ';'-terminated.
std::string RenderScript(const std::vector<StmtPtr>& statements,
                         Dialect dialect);

}  // namespace pqs

#endif  // PQS_SRC_SQLPARSER_RENDER_H_
