// AST → SQL text rendering.
//
// Used by the real-engine adapters (the libsqlite3 connection feeds rendered
// text to sqlite3_prepare) and by bug reports / reduced test cases, which
// are printed as plain SQL so a finding can be replayed against a stock
// DBMS shell.
#ifndef PQS_SRC_SQLPARSER_RENDER_H_
#define PQS_SRC_SQLPARSER_RENDER_H_

#include <string>
#include <vector>

#include "src/engine/connection.h"
#include "src/sqlast/ast.h"

namespace pqs {

std::string RenderExpr(const Expr& expr, Dialect dialect);
std::string RenderStmt(const Stmt& stmt, Dialect dialect);

// Renders a whole test case, one statement per line, ';'-terminated.
std::string RenderScript(const std::vector<StmtPtr>& statements,
                         Dialect dialect);

}  // namespace pqs

#endif  // PQS_SRC_SQLPARSER_RENDER_H_
