// The PQS loop (paper Algorithm 1): generate a database, pick a pivot row,
// synthesize a rectified query, and check the three oracles.
#ifndef PQS_SRC_PQS_RUNNER_H_
#define PQS_SRC_PQS_RUNNER_H_

#include <cstdint>
#include <vector>

#include "src/engine/connection.h"
#include "src/pqs/generator.h"
#include "src/pqs/oracles.h"

namespace pqs {

struct RunnerOptions {
  uint64_t seed = 1;
  int databases = 10;
  int queries_per_database = 20;
  bool stop_on_first_finding = false;
  GeneratorOptions gen;
};

struct RunStats {
  uint64_t statements_executed = 0;  // every Execute() on the connection
  uint64_t queries_checked = 0;      // oracle-checked SELECTs
  uint64_t queries_skipped = 0;      // e.g. a FROM table was empty
  uint64_t databases_created = 0;
  // Algorithm-3 branch tallies: raw predicate outcome on the pivot row.
  uint64_t rectified_true = 0;
  uint64_t rectified_false = 0;
  uint64_t rectified_null = 0;
  uint64_t constraint_violations = 0;  // tolerated INSERT rejections
};

struct RunReport {
  RunStats stats;
  std::vector<Finding> findings;
  // True when the engine answered kUnsupported (e.g. stub SQLite adapter);
  // the run ends early and reports whatever it had.
  bool unsupported_engine = false;
};

class PqsRunner {
 public:
  PqsRunner(EngineFactory factory, RunnerOptions options);

  RunReport Run();

 private:
  EngineFactory factory_;
  RunnerOptions options_;
};

}  // namespace pqs

#endif  // PQS_SRC_PQS_RUNNER_H_
