// The PQS loop (paper Algorithm 1): generate a database, pick a pivot row,
// synthesize a rectified query, and check the three oracles.
//
// The loop is sharded: a run is first laid out as a deterministic
// ShardPlan (one independent RNG stream per database, derived with
// splitmix64 stream splitting from the run seed), then executed by
// `RunnerOptions::workers` threads that each run the unchanged
// Algorithm 1+3 body over the databases they claim. Per-database results
// are merged back in plan order, so the merged report of an N-worker run
// is identical to the 1-worker run — including under
// `stop_on_first_finding`, where merging truncates at the first database
// whose report carries a finding (exactly where the sequential loop would
// have returned). See DESIGN.md §6.
#ifndef PQS_SRC_PQS_RUNNER_H_
#define PQS_SRC_PQS_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/engine/connection.h"
#include "src/obs/metrics.h"
#include "src/pqs/generator.h"
#include "src/pqs/oracles.h"

namespace pqs {

struct RunnerOptions {
  uint64_t seed = 1;
  int databases = 10;
  int queries_per_database = 20;
  bool stop_on_first_finding = false;
  // Worker threads executing the shard plan. 1 runs the plan inline on the
  // calling thread; the merged report is the same for every value.
  int workers = 1;
  // Which semantic oracle checks each generated query: classic pivot
  // containment, NoREC, or TLP. kAuto is normalized to containment here
  // (campaign-level HuntBug resolves it to the hunted bug's intended
  // finder first). The error/crash oracles and the ground-truth mutation
  // state comparison stay on for every family.
  OracleFamily family = OracleFamily::kContainment;
  // Observability: when set, called once per completed database session
  // with the session's plan index and its wall-clock seconds (generation,
  // execution, mutations, and oracle checks included). Fired from
  // whichever worker ran the session — the callback must be thread-safe.
  // It has no effect on the merged report, which stays byte-identical
  // with or without it (bench/recorder.h aggregates these into latency
  // percentiles).
  std::function<void(int db_index, double seconds)> session_latency_hook;
  GeneratorOptions gen;
};

struct RunStats {
  uint64_t statements_executed = 0;  // every Execute() on the connection
  uint64_t queries_checked = 0;      // oracle-checked SELECTs
  uint64_t queries_skipped = 0;      // e.g. a FROM table was empty
  uint64_t databases_created = 0;
  // Algorithm-3 branch tallies: raw predicate outcome on the pivot row.
  uint64_t rectified_true = 0;
  uint64_t rectified_false = 0;
  uint64_t rectified_null = 0;
  uint64_t constraint_violations = 0;  // tolerated INSERT rejections
  // Query-space widening tallies: explicit ON conditions rectified against
  // the pivot, and queries issued with a pivot-safe LIMIT attached.
  uint64_t join_conditions_rectified = 0;
  uint64_t limited_queries = 0;
  // Typed-expression tallies over the generated WHERE predicates:
  // Expr::Depth() histogram (buckets 1-2, 3-4, 5-6, 7-8, ≥9 — see
  // sqlexpr::ExprDepthBucket) plus how many predicates carried at least
  // one registry function call and how many calls were generated in total.
  static constexpr int kDepthBuckets = 5;
  uint64_t predicate_depth_buckets[kDepthBuckets] = {0, 0, 0, 0, 0};
  uint64_t predicates_with_function = 0;
  uint64_t function_calls_generated = 0;
  // Statement-stream tallies (DESIGN §9): mutation statements the
  // ActionScheduler issued between pivot checks, and how many ground-truth
  // state comparisons (engine table vs model table, as multisets) the
  // pivot-selection phase performed.
  // Metamorphic-oracle tallies: completed NoREC / TLP checks, the TLP
  // partition queries those checks executed, and how many checked queries
  // carried aggregates / GROUP BY / HAVING. Merged like every other
  // counter, so N-worker reports stay byte-identical.
  uint64_t norec_checks = 0;
  uint64_t tlp_checks = 0;
  uint64_t tlp_partition_queries = 0;
  uint64_t aggregate_queries = 0;
  uint64_t group_by_queries = 0;
  uint64_t having_queries = 0;
  uint64_t actions_insert = 0;
  uint64_t actions_update = 0;
  uint64_t actions_delete = 0;
  uint64_t actions_create_index = 0;
  uint64_t actions_drop_index = 0;
  uint64_t actions_maintenance = 0;
  uint64_t state_compares = 0;
  // Transaction-stream tallies (DESIGN §14): statements of the interleaved
  // K-session stream, snapshot-isolation checks inside open transactions,
  // and serial-replay comparisons after commits. Conflicts are expected
  // first-committer-wins aborts, not findings.
  uint64_t txn_begins = 0;
  uint64_t txn_commits = 0;
  uint64_t txn_rollbacks = 0;
  uint64_t txn_conflicts = 0;
  uint64_t txn_snapshot_checks = 0;
  uint64_t txn_serial_replays = 0;

  // Value merge: adds `other`'s tallies into this one. Merging the
  // per-shard stats of a run in any order equals the single-run totals.
  void Merge(const RunStats& other);
};

struct RunReport {
  RunStats stats;
  // Telemetry registry merged from every session in plan order: counters,
  // gauges, and per-phase logical-tick histograms (src/obs). All-zero when
  // the telemetry kill switch is off. Like `stats`, byte-identical for
  // every worker count.
  obs::MetricsRegistry metrics;
  std::vector<Finding> findings;
  // True when the engine answered kUnsupported (e.g. stub SQLite adapter);
  // the run ends early and reports whatever it had.
  bool unsupported_engine = false;
  // Non-empty when GeneratorOptions::Validate() rejected the options; the
  // run performed no work.
  std::string invalid_options;
};

// Deterministic layout of one run: which per-database seed each database
// index uses. Derived from the run seed alone, never from thread timing,
// so every worker count executes byte-identical per-database work.
struct ShardPlan {
  struct Task {
    int db_index = 0;
    uint64_t seed = 0;  // seed of this database's private RNG stream
  };
  std::vector<Task> tasks;

  static ShardPlan Build(uint64_t seed, int databases);
};

class PqsRunner {
 public:
  PqsRunner(EngineFactory factory, RunnerOptions options);
  // Worker-aware variant: the factory learns which worker thread is asking,
  // so callers can give each worker its own coverage sink (bench_table4).
  PqsRunner(WorkerEngineFactory factory, RunnerOptions options);

  RunReport Run();

 private:
  WorkerEngineFactory factory_;
  RunnerOptions options_;
};

}  // namespace pqs

#endif  // PQS_SRC_PQS_RUNNER_H_
