#include "src/pqs/generator.h"

#include <memory>
#include <utility>

#include "src/sqlexpr/registry.h"
#include "src/sqlstmt/stmt.h"

namespace pqs {

namespace {

const char* DeclaredTypeFor(Affinity affinity) {
  switch (affinity) {
    case Affinity::kInteger:
      return "INT";
    case Affinity::kReal:
      return "REAL";
    case Affinity::kText:
      return "TEXT";
  }
  return "TEXT";
}

BinaryOp RandomComparison(Rng* rng) {
  switch (rng->Below(6)) {
    case 0:
      return BinaryOp::kEq;
    case 1:
      return BinaryOp::kNe;
    case 2:
      return BinaryOp::kLt;
    case 3:
      return BinaryOp::kLe;
    case 4:
      return BinaryOp::kGt;
    default:
      return BinaryOp::kGe;
  }
}

bool IsNumericAffinity(Affinity a) {
  return a == Affinity::kInteger || a == Affinity::kReal;
}

}  // namespace

std::string GeneratorOptions::Validate() const {
  auto check_count = [](const char* name, int v) -> std::string {
    if (v < 0) return std::string(name) + " must be non-negative";
    return "";
  };
  auto check_prob = [](const char* name, double p) -> std::string {
    if (!(p >= 0.0 && p <= 1.0)) {
      return std::string(name) + " must be within [0, 1]";
    }
    return "";
  };
  const std::pair<const char*, int> counts[] = {
      {"min_rows", min_rows},
      {"max_rows", max_rows},
      {"max_tables", max_tables},
      {"max_columns", max_columns},
      {"max_predicate_depth", max_predicate_depth},
      {"max_order_keys", max_order_keys},
  };
  for (const auto& [name, v] : counts) {
    std::string err = check_count(name, v);
    if (!err.empty()) return err;
  }
  if (min_rows > max_rows) return "min_rows must not exceed max_rows";
  const std::pair<const char*, double> probs[] = {
      {"index_probability", index_probability},
      {"partial_index_probability", partial_index_probability},
      {"null_probability", null_probability},
      {"multi_table_query_probability", multi_table_query_probability},
      {"explicit_join_probability", explicit_join_probability},
      {"third_table_probability", third_table_probability},
      {"left_join_probability", left_join_probability},
      {"cross_join_probability", cross_join_probability},
      {"distinct_probability", distinct_probability},
      {"order_by_probability", order_by_probability},
      {"limit_probability", limit_probability},
      {"function_probability", function_probability},
      {"cast_probability", cast_probability},
      {"case_probability", case_probability},
      {"collate_probability", collate_probability},
      {"like_escape_probability", like_escape_probability},
      {"in_list_null_probability", in_list_null_probability},
      {"tlp_rows_shape_probability", tlp_rows_shape_probability},
      {"count_distinct_probability", count_distinct_probability},
      {"group_by_probability", group_by_probability},
      {"having_probability", having_probability},
  };
  for (const auto& [name, p] : probs) {
    std::string err = check_prob(name, p);
    if (!err.empty()) return err;
  }
  const std::pair<const char*, double> weights[] = {
      {"pivot_check_weight", pivot_check_weight},
      {"insert_weight", insert_weight},
      {"update_weight", update_weight},
      {"delete_weight", delete_weight},
      {"create_index_weight", create_index_weight},
      {"drop_index_weight", drop_index_weight},
      {"maintenance_weight", maintenance_weight},
  };
  for (const auto& [name, w] : weights) {
    if (!(w >= 0.0)) return std::string(name) + " must be non-negative";
  }
  if (!(pivot_check_weight > 0.0)) {
    return "pivot_check_weight must be positive";
  }
  std::string err = check_count("max_actions_per_check",
                                max_actions_per_check);
  if (!err.empty()) return err;
  err = check_prob("partial_probe_probability", partial_probe_probability);
  if (!err.empty()) return err;
  if (txn_sessions < 1 || txn_sessions > 8) {
    return "txn_sessions must be within [1, 8]";
  }
  const std::pair<const char*, double> txn_probs[] = {
      {"txn_begin_probability", txn_begin_probability},
      {"txn_commit_probability", txn_commit_probability},
      {"txn_rollback_probability", txn_rollback_probability},
  };
  for (const auto& [name, p] : txn_probs) {
    err = check_prob(name, p);
    if (!err.empty()) return err;
  }
  if (txn_commit_probability + txn_rollback_probability > 1.0) {
    return "txn_commit_probability + txn_rollback_probability must not "
           "exceed 1";
  }
  if (max_txn_statements < 1) {
    return "max_txn_statements must be positive";
  }
  return "";
}

JoinKind Generator::RandomJoinKind(Rng* rng) const {
  double roll = rng->Unit();
  if (roll < options_.left_join_probability) return JoinKind::kLeft;
  if (roll < options_.left_join_probability + options_.cross_join_probability) {
    return JoinKind::kCross;
  }
  return JoinKind::kInner;
}

Generator::Generator(const GeneratorOptions& options, Dialect dialect)
    : options_(options),
      dialect_(dialect),
      strict_(dialect == Dialect::kPostgresStrict) {}

std::string Generator::RandomText(Rng* rng) const {
  // Includes strings carrying literal SQL wildcards ('a%b', '_x', ...) so
  // LIKE ... ESCAPE patterns have something to distinguish: an escaped
  // wildcard matches these, an unescaped one matches almost anything.
  return rng->Pick<std::string>({"", "a", "A", "B", "ab", "aB", "Ab", "ba",
                                 "12", "12ab", "-3", "xyz", "x", "aa", "a%b",
                                 "a_", "100%", "_x", "%"});
}

SqlValue Generator::RandomLiteralNear(Affinity affinity, Rng* rng) const {
  switch (affinity) {
    case Affinity::kInteger:
      return SqlValue::Int(rng->IntIn(-10, 10));
    case Affinity::kReal:
      return SqlValue::Real(rng->Pick<double>(
          {-3.25, -0.5, 0.0, 0.5, 1.5, 2.0, 7.25}));
    case Affinity::kText:
      return SqlValue::Text(RandomText(rng));
  }
  return SqlValue::Null();
}

SqlValue Generator::RandomValueFor(Affinity affinity, Rng* rng) const {
  switch (affinity) {
    case Affinity::kInteger:
      // Flexible dialects occasionally insert numeric-looking text to
      // exercise affinity coercion; strict typing forbids it.
      if (!strict_ && rng->Chance(0.1)) {
        return SqlValue::Text(std::to_string(rng->IntIn(-9, 9)));
      }
      return SqlValue::Int(rng->IntIn(-9, 9));
    case Affinity::kReal:
      if (rng->Chance(0.3)) return SqlValue::Real(rng->IntIn(-9, 9));
      return SqlValue::Real(rng->Pick<double>(
          {-3.25, -0.5, 0.0, 0.5, 1.5, 2.0, 7.25}));
    case Affinity::kText:
      return SqlValue::Text(RandomText(rng));
  }
  return SqlValue::Null();
}

DatabasePlan Generator::GenerateDatabase(Rng* rng) const {
  DatabasePlan plan;
  int table_count =
      static_cast<int>(rng->IntIn(1, options_.max_tables > 0
                                         ? options_.max_tables
                                         : 1));
  int column_counter = 0;
  for (int t = 0; t < table_count; ++t) {
    TableSchema table;
    table.name = "t" + std::to_string(t);
    int column_count = static_cast<int>(
        rng->IntIn(1, options_.max_columns > 0 ? options_.max_columns : 1));
    bool has_pk = false;
    for (int c = 0; c < column_count; ++c) {
      ColumnDef col;
      // Column names are globally unique across tables so joined rows never
      // need disambiguation.
      col.name = "c" + std::to_string(column_counter++);
      double roll = rng->Unit();
      col.affinity = roll < 0.45 ? Affinity::kInteger
                                 : (roll < 0.65 ? Affinity::kReal
                                                : Affinity::kText);
      col.declared_type = DeclaredTypeFor(col.affinity);
      if (!has_pk && rng->Chance(0.15)) {
        col.primary_key = true;
        has_pk = true;
      } else if (rng->Chance(0.2)) {
        col.unique = true;
      }
      if (rng->Chance(0.12)) col.not_null = true;
      table.columns.push_back(std::move(col));
    }
    auto create = std::make_unique<CreateTableStmt>();
    create->table_name = table.name;
    create->columns = table.columns;
    plan.statements.push_back(std::move(create));
    plan.tables.push_back(std::move(table));
  }

  // Indexes, before data so unique indexes constrain the inserts.
  int index_counter = 0;
  for (const TableSchema& table : plan.tables) {
    for (int i = 0; i < 2 && rng->Chance(options_.index_probability); ++i) {
      plan.statements.push_back(GenerateIndex(
          table, "i" + std::to_string(index_counter++), rng));
    }
  }

  // Data: min_rows..max_rows rows per table, split into 1-3-row INSERTs so
  // delta debugging has statement-level granularity.
  for (const TableSchema& table : plan.tables) {
    int rows = static_cast<int>(
        rng->IntIn(options_.min_rows, options_.max_rows));
    while (rows > 0) {
      int in_stmt = static_cast<int>(rng->IntIn(1, rows < 3 ? rows : 3));
      auto insert = std::make_unique<InsertStmt>();
      insert->table_name = table.name;
      for (int r = 0; r < in_stmt; ++r) {
        insert->rows.push_back(GenerateRowValues(table, rng));
      }
      rows -= in_stmt;
      plan.statements.push_back(std::move(insert));
    }
  }
  return plan;
}

std::unique_ptr<CreateIndexStmt> Generator::GenerateIndex(
    const TableSchema& table, std::string index_name, Rng* rng) const {
  auto index = std::make_unique<CreateIndexStmt>();
  index->index_name = std::move(index_name);
  index->table_name = table.name;
  size_t first = rng->Below(table.columns.size());
  index->columns.push_back(table.columns[first].name);
  if (table.columns.size() > 1 && rng->Chance(0.3)) {
    size_t second = rng->Below(table.columns.size());
    if (second != first) {
      index->columns.push_back(table.columns[second].name);
    }
  }
  index->unique = rng->Chance(0.25);
  if (rng->Chance(options_.partial_index_probability)) {
    const ColumnDef& col = table.columns[rng->Below(table.columns.size())];
    double form = rng->Unit();
    if (form < 0.5) {
      index->where = MakeIsNull(MakeColumnRef(table.name, col.name),
                                /*negated=*/true);
    } else if (form < 0.75) {
      index->where = MakeIsNull(MakeColumnRef(table.name, col.name),
                                /*negated=*/false);
    } else {
      index->where = MakeBinary(
          BinaryOp::kGt, MakeColumnRef(table.name, col.name),
          MakeLiteral(RandomLiteralNear(col.affinity, rng)));
    }
  }
  return index;
}

std::vector<ExprPtr> Generator::GenerateRowValues(const TableSchema& table,
                                                  Rng* rng) const {
  std::vector<ExprPtr> row;
  row.reserve(table.columns.size());
  for (const ColumnDef& col : table.columns) {
    double null_p = col.not_null ? 0.02 : options_.null_probability;
    if (rng->Chance(null_p)) {
      row.push_back(MakeNullLiteral());
      continue;
    }
    SqlValue v = RandomValueFor(col.affinity, rng);
    if ((col.unique || col.primary_key) &&
        col.affinity == Affinity::kInteger &&
        v.cls == StorageClass::kInteger) {
      // Wider range keeps most unique inserts from colliding.
      v = SqlValue::Int(rng->IntIn(-99, 99));
    }
    row.push_back(MakeLiteral(std::move(v)));
  }
  return row;
}

std::unique_ptr<InsertStmt> Generator::GenerateInsertRows(
    const TableSchema& table, Rng* rng) const {
  auto insert = std::make_unique<InsertStmt>();
  insert->table_name = table.name;
  int rows = rng->Chance(0.3) ? 2 : 1;
  for (int r = 0; r < rows; ++r) {
    insert->rows.push_back(GenerateRowValues(table, rng));
  }
  return insert;
}

std::unique_ptr<UpdateStmt> Generator::GenerateUpdate(
    const TableSchema& table,
    const std::vector<std::string>& literal_only_columns,
    const std::vector<std::string>& hot_columns, Rng* rng) const {
  auto update = std::make_unique<UpdateStmt>();
  update->table_name = table.name;

  size_t first = rng->Below(table.columns.size());
  if (!hot_columns.empty() && rng->Chance(0.5)) {
    const std::string& hot = hot_columns[rng->Below(hot_columns.size())];
    for (size_t c = 0; c < table.columns.size(); ++c) {
      if (table.columns[c].name == hot) {
        first = c;
        break;
      }
    }
  }
  std::vector<size_t> targets{first};
  if (table.columns.size() > 1 && rng->Chance(0.35)) {
    size_t second = rng->Below(table.columns.size());
    if (second != first) targets.push_back(second);
  }

  auto literal_only = [&](const ColumnDef& col) {
    if (col.unique || col.primary_key) return true;
    for (const std::string& name : literal_only_columns) {
      if (name == col.name) return true;
    }
    return false;
  };
  // Same-type-class source columns for column-ref / arithmetic values.
  // Value expressions are evaluated against the row's pre-update values
  // and coerced with the same insert-position affinity rules, so the
  // restrictions below (no REAL sources for INTEGER targets, text targets
  // take text sources only) keep the model's stored values byte-identical
  // to real SQLite's.
  auto same_class_source = [&](const ColumnDef& target) -> const ColumnDef* {
    std::vector<const ColumnDef*> pool;
    for (const ColumnDef& col : table.columns) {
      if (target.affinity == Affinity::kInteger &&
          col.affinity != Affinity::kInteger) {
        continue;  // a REAL source would defeat integer-affinity rounding
      }
      if (target.affinity == Affinity::kReal &&
          col.affinity == Affinity::kText) {
        continue;
      }
      if (target.affinity == Affinity::kText &&
          col.affinity != Affinity::kText) {
        continue;
      }
      pool.push_back(&col);
    }
    if (pool.empty()) return nullptr;
    return pool[rng->Below(pool.size())];
  };

  for (size_t t : targets) {
    const ColumnDef& col = table.columns[t];
    UpdateStmt::Assignment assign;
    assign.column = col.name;
    bool nullable =
        !col.not_null &&
        !(col.primary_key && dialect_ != Dialect::kSqliteFlex);
    if (nullable && rng->Chance(0.12)) {
      // NULL assignments flip IS [NOT] NULL partial-index membership —
      // the data movement the partial-index bug classes need.
      assign.value = MakeNullLiteral();
    } else if (literal_only(col)) {
      SqlValue v = RandomValueFor(col.affinity, rng);
      if (col.affinity == Affinity::kInteger &&
          v.cls == StorageClass::kInteger) {
        v = SqlValue::Int(rng->IntIn(-99, 99));
      }
      assign.value = MakeLiteral(std::move(v));
    } else {
      double roll = rng->Unit();
      const ColumnDef* source =
          roll >= 0.45 ? same_class_source(col) : nullptr;
      if (source == nullptr || roll < 0.45) {
        assign.value = MakeLiteral(RandomValueFor(col.affinity, rng));
      } else if (roll < 0.7 || col.affinity == Affinity::kText) {
        if (col.affinity == Affinity::kText &&
            dialect_ == Dialect::kSqliteFlex && rng->Chance(0.25)) {
          assign.value =
              MakeBinary(BinaryOp::kConcat,
                         MakeColumnRef(table.name, source->name),
                         MakeTextLiteral(RandomText(rng)));
        } else {
          assign.value = MakeColumnRef(table.name, source->name);
        }
      } else {
        // col ± small literal over a numeric source.
        assign.value = MakeBinary(
            rng->Chance(0.5) ? BinaryOp::kAdd : BinaryOp::kSub,
            MakeColumnRef(table.name, source->name),
            MakeIntLiteral(rng->IntIn(1, 3)));
      }
    }
    update->assignments.push_back(std::move(assign));
  }

  if (rng->Chance(0.9)) {
    std::vector<const TableSchema*> tables{&table};
    update->where = GeneratePredicate(tables, rng);
  }
  return update;
}

std::unique_ptr<DeleteStmt> Generator::GenerateDelete(
    const TableSchema& table, Rng* rng) const {
  auto del = std::make_unique<DeleteStmt>();
  del->table_name = table.name;
  std::vector<const TableSchema*> tables{&table};
  del->where = GeneratePredicate(tables, rng);
  return del;
}

QueryShape Generator::GenerateQueryShape(const DatabasePlan& plan,
                                         Rng* rng) const {
  QueryShape shape;
  size_t first = rng->Below(plan.tables.size());
  shape.tables.push_back(&plan.tables[first]);

  if (plan.tables.size() > 1 &&
      rng->Chance(options_.multi_table_query_probability)) {
    // Remaining tables, in declaration order, for growing the FROM list.
    std::vector<const TableSchema*> remaining;
    for (size_t t = 0; t < plan.tables.size(); ++t) {
      if (t != first) remaining.push_back(&plan.tables[t]);
    }
    const TableSchema* second = remaining[rng->Below(remaining.size())];
    shape.tables.push_back(second);
    if (rng->Chance(options_.explicit_join_probability)) {
      shape.join_kinds.push_back(RandomJoinKind(rng));
      if (remaining.size() > 1 &&
          rng->Chance(options_.third_table_probability)) {
        std::vector<const TableSchema*> rest;
        for (const TableSchema* t : remaining) {
          if (t != second) rest.push_back(t);
        }
        shape.tables.push_back(rest[rng->Below(rest.size())]);
        shape.join_kinds.push_back(RandomJoinKind(rng));
      }
    }
  }

  shape.distinct = rng->Chance(options_.distinct_probability);
  if (rng->Chance(options_.order_by_probability)) {
    int keys = static_cast<int>(rng->IntIn(
        1, options_.max_order_keys > 0 ? options_.max_order_keys : 1));
    for (int k = 0; k < keys; ++k) {
      const TableSchema* table = nullptr;
      const ColumnDef* col = PickColumn(shape.tables, &table, rng);
      OrderByItem item;
      item.expr = MakeColumnRef(table->name, col->name);
      item.descending = rng->Chance(0.5);
      shape.order_by.push_back(std::move(item));
    }
  }
  // LIMIT without an ORDER BY is only sound when it spans the whole result
  // (any row order is legal), so it is generated more rarely.
  shape.want_limit = rng->Chance(shape.order_by.empty()
                                     ? options_.limit_probability * 0.3
                                     : options_.limit_probability);
  return shape;
}

ExprPtr Generator::GenerateJoinCondition(
    const std::vector<const TableSchema*>& earlier, const TableSchema* joined,
    Rng* rng) const {
  const ColumnDef* col = &joined->columns[rng->Below(joined->columns.size())];
  ExprPtr lhs = MakeColumnRef(joined->name, col->name);
  // Half equi-joins, half range joins (range joins multiply matches, which
  // stresses the duplicate-right-row paths).
  BinaryOp op = rng->Chance(0.5) ? BinaryOp::kEq : RandomComparison(rng);
  if (!earlier.empty() && rng->Chance(0.65)) {
    const TableSchema* other = earlier[rng->Below(earlier.size())];
    const ColumnDef* ocol = &other->columns[rng->Below(other->columns.size())];
    // Same type-class restriction as column-vs-column leaves in
    // GenLeaf: keeps the model aligned with real SQLite affinity rules.
    if (IsNumericAffinity(col->affinity) == IsNumericAffinity(ocol->affinity)) {
      return MakeBinary(op, std::move(lhs),
                        MakeColumnRef(other->name, ocol->name));
    }
  }
  return MakeBinary(op, std::move(lhs),
                    MakeLiteral(RandomLiteralNear(col->affinity, rng)));
}

const ColumnDef* Generator::PickColumn(
    const std::vector<const TableSchema*>& tables, const TableSchema** table,
    Rng* rng) const {
  const TableSchema* t = tables[rng->Below(tables.size())];
  const ColumnDef* col = &t->columns[rng->Below(t->columns.size())];
  if (table != nullptr) *table = t;
  return col;
}

ExprPtr Generator::GenOperand(const std::vector<const TableSchema*>& tables,
                              Rng* rng) const {
  const TableSchema* table = nullptr;
  const ColumnDef* col = PickColumn(tables, &table, rng);
  if (rng->Chance(0.7)) return MakeColumnRef(table->name, col->name);
  return MakeLiteral(RandomLiteralNear(col->affinity, rng));
}

ExprPtr Generator::MaybeCollate(ExprPtr text_operand, Rng* rng,
                                bool* collated) const {
  if (collated != nullptr) *collated = false;
  if (dialect_ != Dialect::kSqliteFlex ||
      !rng->Chance(options_.collate_probability)) {
    return text_operand;
  }
  if (collated != nullptr) *collated = true;
  // NOCASE dominates: BINARY is the default anyway, so an explicit BINARY
  // only exercises the operator plumbing, not new orderings.
  Collation collation =
      rng->Chance(0.75) ? Collation::kNocase : Collation::kBinary;
  return MakeCollate(std::move(text_operand), collation);
}

ExprPtr Generator::GenFunctionExpr(
    const std::vector<const TableSchema*>& tables, Rng* rng,
    Affinity* result_affinity) const {
  // Columns of each type class, for building statically typed arguments.
  std::vector<std::pair<const TableSchema*, const ColumnDef*>> numeric;
  std::vector<std::pair<const TableSchema*, const ColumnDef*>> text;
  for (const TableSchema* table : tables) {
    for (const ColumnDef& col : table->columns) {
      (IsNumericAffinity(col.affinity) ? numeric : text)
          .emplace_back(table, &col);
    }
  }

  // Availability is the registry's call; the NULL-handling family
  // (COALESCE / NULLIF / IFNULL) is listed twice so the bug classes living
  // in those code paths are reached at a useful rate.
  std::vector<const FunctionSig*> pool;
  for (const FunctionSig* sig : FunctionsForDialect(dialect_)) {
    pool.push_back(sig);
    if (sig->null_rule == NullRule::kCustom) pool.push_back(sig);
  }
  const FunctionSig& sig = *pool[rng->Below(pool.size())];

  auto column_arg =
      [&](const std::vector<std::pair<const TableSchema*, const ColumnDef*>>&
              candidates) -> std::pair<ExprPtr, Affinity> {
    const auto& [table, col] = candidates[rng->Below(candidates.size())];
    return {MakeColumnRef(table->name, col->name), col->affinity};
  };

  switch (sig.arg_class) {
    case ArgClass::kNumeric: {
      ExprPtr arg;
      Affinity affinity = Affinity::kInteger;
      if (!numeric.empty()) {
        auto [expr, a] = column_arg(numeric);
        arg = std::move(expr);
        affinity = a;
      } else {
        arg = MakeIntLiteral(rng->IntIn(-9, 9));
      }
      *result_affinity = affinity;
      std::vector<ExprPtr> args;
      args.push_back(std::move(arg));
      return MakeFunctionCall(sig.id, std::move(args));
    }
    case ArgClass::kText: {
      ExprPtr arg = !text.empty()
                        ? column_arg(text).first
                        : MakeTextLiteral(RandomText(rng));
      *result_affinity =
          sig.id == FuncId::kLength ? Affinity::kInteger : Affinity::kText;
      std::vector<ExprPtr> args;
      args.push_back(std::move(arg));
      return MakeFunctionCall(sig.id, std::move(args));
    }
    case ArgClass::kUniform: {
      // Anchor on one column; every further argument stays in its type
      // class (a same-class column or a literal near it), which is what
      // keeps kPostgresStrict calls statically well-typed.
      const TableSchema* anchor_table = nullptr;
      const ColumnDef* anchor = PickColumn(tables, &anchor_table, rng);
      const auto& same_class =
          IsNumericAffinity(anchor->affinity) ? numeric : text;
      int argc = static_cast<int>(rng->IntIn(sig.min_args, sig.max_args));
      std::vector<ExprPtr> args;
      // First argument: the anchor column — or, for the NULL-handling
      // family, occasionally NULLIF(anchor, lit) nested inside, so the
      // custom NULL paths see NULL first arguments from non-NULL data too.
      if (sig.null_rule == NullRule::kCustom && rng->Chance(0.3)) {
        std::vector<ExprPtr> inner;
        inner.push_back(MakeColumnRef(anchor_table->name, anchor->name));
        inner.push_back(
            MakeLiteral(RandomLiteralNear(anchor->affinity, rng)));
        args.push_back(MakeFunctionCall(FuncId::kNullif, std::move(inner)));
      } else {
        args.push_back(MakeColumnRef(anchor_table->name, anchor->name));
      }
      for (int i = 1; i < argc; ++i) {
        if (!same_class.empty() && rng->Chance(0.35)) {
          args.push_back(column_arg(same_class).first);
        } else {
          args.push_back(
              MakeLiteral(RandomLiteralNear(anchor->affinity, rng)));
        }
      }
      *result_affinity = anchor->affinity;
      return MakeFunctionCall(sig.id, std::move(args));
    }
  }
  *result_affinity = Affinity::kInteger;
  return MakeIntLiteral(0);
}

ExprPtr Generator::GenCastExpr(const std::vector<const TableSchema*>& tables,
                               Rng* rng, Affinity* result_affinity,
                               bool* operand_numeric) const {
  const TableSchema* table = nullptr;
  const ColumnDef* col = PickColumn(tables, &table, rng);
  *operand_numeric = IsNumericAffinity(col->affinity);
  // Bias toward REAL → INTEGER: the truncation-toward-zero rule is where
  // CAST semantics actually diverge between engines (and where the
  // cast-trunc-affinity bug class lives).
  if (rng->Chance(0.6)) {
    for (const TableSchema* t : tables) {
      for (const ColumnDef& c : t->columns) {
        if (c.affinity == Affinity::kReal) {
          *result_affinity = Affinity::kInteger;
          *operand_numeric = true;
          return MakeCast(MakeColumnRef(t->name, c.name),
                          Affinity::kInteger);
        }
      }
    }
  }
  Affinity target;
  if (strict_ && !IsNumericAffinity(col->affinity)) {
    // PostgreSQL rejects text→numeric casts of arbitrary text at runtime
    // (invalid input syntax), so the strict dialect only casts text to
    // TEXT — the numeric targets come from numeric sources.
    target = Affinity::kText;
  } else {
    target = rng->Pick<Affinity>(
        {Affinity::kInteger, Affinity::kReal, Affinity::kText});
  }
  *result_affinity = target;
  return MakeCast(MakeColumnRef(table->name, col->name), target);
}

ExprPtr Generator::GenCasePredicate(
    const std::vector<const TableSchema*>& tables, Rng* rng) const {
  std::vector<std::pair<ExprPtr, ExprPtr>> arms;
  int arm_count = static_cast<int>(rng->IntIn(1, 2));
  for (int i = 0; i < arm_count; ++i) {
    arms.emplace_back(GenLeaf(tables, rng), GenLeaf(tables, rng));
  }
  ExprPtr else_value =
      rng->Chance(0.75) ? GenLeaf(tables, rng) : nullptr;
  return MakeCase(std::move(arms), std::move(else_value));
}

ExprPtr Generator::GenLeaf(const std::vector<const TableSchema*>& tables,
                           Rng* rng) const {
  const TableSchema* table = nullptr;
  const ColumnDef* col = PickColumn(tables, &table, rng);
  ExprPtr col_ref = MakeColumnRef(table->name, col->name);
  double roll = rng->Unit();

  if (roll < 0.30) {
    // Comparison leaf. The left operand is a registry function call, a
    // CAST, or the plain column (with an occasional explicit COLLATE on
    // text); the literal follows the operand's result affinity.
    if (rng->Chance(options_.function_probability)) {
      Affinity result = Affinity::kInteger;
      ExprPtr call = GenFunctionExpr(tables, rng, &result);
      return MakeBinary(RandomComparison(rng), std::move(call),
                        MakeLiteral(RandomLiteralNear(result, rng)));
    }
    if (rng->Chance(options_.cast_probability)) {
      Affinity result = Affinity::kInteger;
      bool operand_numeric = false;
      ExprPtr cast = GenCastExpr(tables, rng, &result, &operand_numeric);
      // Half the integer casts of a numeric column compare against their
      // own operand (CAST(x AS INTEGER) <= x — the metamorphic shape whose
      // outcome hinges entirely on the conversion rule); the rest compare
      // against a literal kept inside the cast image. Text operands never
      // self-compare: see GenCastExpr on CAST affinity.
      if (result == Affinity::kInteger && operand_numeric &&
          cast->args[0]->kind == ExprKind::kColumnRef &&
          rng->Chance(0.5)) {
        ExprPtr operand = cast->args[0]->Clone();
        return MakeBinary(RandomComparison(rng), std::move(cast),
                          std::move(operand));
      }
      ExprPtr lit = result == Affinity::kInteger
                        ? MakeIntLiteral(rng->IntIn(-3, 3))
                        : MakeLiteral(RandomLiteralNear(result, rng));
      return MakeBinary(RandomComparison(rng), std::move(cast),
                        std::move(lit));
    }
    // Column vs literal comparison.
    SqlValue lit = RandomLiteralNear(col->affinity, rng);
    if (!strict_) {
      if (dialect_ == Dialect::kMysqlLike && rng->Chance(0.3)) {
        // MySQL-like numeric coercion of text.
        lit = IsNumericAffinity(col->affinity)
                  ? SqlValue::Text(rng->Pick<std::string>(
                        {"12ab", "-3", "2", "0x", "abc"}))
                  : SqlValue::Int(rng->IntIn(-5, 5));
      } else if (dialect_ == Dialect::kSqliteFlex && rng->Chance(0.12) &&
                 IsNumericAffinity(col->affinity)) {
        // Cross-storage-class comparison; non-numeric text only, so the
        // model agrees with real SQLite's affinity rules.
        lit = SqlValue::Text(rng->Pick<std::string>({"abc", "x", "zz"}));
      }
    }
    if (col->affinity == Affinity::kText && lit.cls == StorageClass::kText) {
      bool collated = false;
      col_ref = MaybeCollate(std::move(col_ref), rng, &collated);
      // Collation only matters for case-variant text, so collated
      // comparisons draw their literal from the case-rich subset.
      if (collated) {
        lit = SqlValue::Text(rng->Pick<std::string>(
            {"A", "B", "a", "ab", "aB", "Ab", "ba", "aa"}));
      }
    }
    return MakeBinary(RandomComparison(rng), std::move(col_ref),
                      MakeLiteral(std::move(lit)));
  }
  if (roll < 0.40) {
    // Column vs column comparison, restricted to the same type class in
    // every dialect: SQLite applies numeric affinity across such a
    // comparison ('12' TEXT vs INT compares numerically), which the
    // storage-class model deliberately does not reproduce.
    const TableSchema* other_table = nullptr;
    const ColumnDef* other = PickColumn(tables, &other_table, rng);
    bool compatible = IsNumericAffinity(col->affinity) ==
                      IsNumericAffinity(other->affinity);
    if (compatible) {
      if (col->affinity == Affinity::kText &&
          other->affinity == Affinity::kText) {
        col_ref = MaybeCollate(std::move(col_ref), rng);
      }
      return MakeBinary(RandomComparison(rng), std::move(col_ref),
                        MakeColumnRef(other_table->name, other->name));
    }
    return MakeBinary(RandomComparison(rng), std::move(col_ref),
                      MakeLiteral(RandomLiteralNear(col->affinity, rng)));
  }
  if (roll < 0.55) {
    // Arithmetic comparison: (col op operand) cmp literal.
    if (!IsNumericAffinity(col->affinity)) {
      if (strict_) {
        return MakeBinary(RandomComparison(rng), std::move(col_ref),
                          MakeLiteral(RandomLiteralNear(col->affinity, rng)));
      }
      // Flexible dialects define arithmetic on text (numeric prefix).
    }
    BinaryOp op = rng->Pick<BinaryOp>(
        {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv});
    ExprPtr rhs;
    if (op == BinaryOp::kDiv) {
      if (strict_) {
        rhs = MakeIntLiteral(rng->IntIn(1, 4));  // never a zero divisor
      } else if (rng->Chance(0.5)) {
        const TableSchema* div_table = nullptr;
        const ColumnDef* divisor = PickColumn(tables, &div_table, rng);
        rhs = MakeColumnRef(div_table->name, divisor->name);
      } else {
        rhs = MakeIntLiteral(rng->IntIn(0, 4));  // zero divisor → NULL
      }
    } else if (rng->Chance(0.5)) {
      const TableSchema* rhs_table = nullptr;
      const ColumnDef* rhs_col = PickColumn(tables, &rhs_table, rng);
      if (strict_ && !IsNumericAffinity(rhs_col->affinity)) {
        rhs = MakeIntLiteral(rng->IntIn(-9, 9));
      } else {
        rhs = MakeColumnRef(rhs_table->name, rhs_col->name);
      }
    } else {
      rhs = MakeIntLiteral(rng->IntIn(-9, 9));
    }
    ExprPtr arith = MakeBinary(op, std::move(col_ref), std::move(rhs));
    return MakeBinary(RandomComparison(rng), std::move(arith),
                      MakeIntLiteral(rng->IntIn(-9, 9)));
  }
  if (roll < 0.68) {
    // IS [NOT] NULL over a column or (for NULL-propagation coverage) an
    // arithmetic expression.
    ExprPtr operand;
    if (rng->Chance(0.3) &&
        (IsNumericAffinity(col->affinity) || !strict_)) {
      const TableSchema* rhs_table = nullptr;
      const ColumnDef* rhs_col = PickColumn(tables, &rhs_table, rng);
      ExprPtr rhs = (strict_ && !IsNumericAffinity(rhs_col->affinity))
                        ? MakeIntLiteral(rng->IntIn(-9, 9))
                        : MakeColumnRef(rhs_table->name, rhs_col->name);
      operand = MakeBinary(
          rng->Pick<BinaryOp>({BinaryOp::kAdd, BinaryOp::kSub,
                               BinaryOp::kMul}),
          std::move(col_ref), std::move(rhs));
    } else {
      operand = std::move(col_ref);
    }
    return MakeIsNull(std::move(operand), rng->Chance(0.5));
  }
  if (roll < 0.78) {
    // IN list (small literal pools make duplicates reasonably likely). A
    // NULL element turns a miss into UNKNOWN — the three-valued corner
    // the in-list-null-semantics bug class lives in.
    std::vector<ExprPtr> list;
    int n = static_cast<int>(rng->IntIn(2, 4));
    for (int i = 0; i < n; ++i) {
      list.push_back(MakeLiteral(RandomLiteralNear(col->affinity, rng)));
    }
    if (rng->Chance(options_.in_list_null_probability)) {
      list[rng->Below(list.size())] = MakeNullLiteral();
    }
    return MakeInList(std::move(col_ref), std::move(list),
                      rng->Chance(0.25));
  }
  if (roll < 0.88) {
    // BETWEEN with bounds in random order (an inverted range is valid SQL;
    // it just selects nothing). A text BETWEEN may collate explicitly —
    // BETWEEN desugars to two range comparisons, the exact spot the
    // collate-nocase-range bug class corrupts.
    ExprPtr lo = MakeLiteral(RandomLiteralNear(col->affinity, rng));
    ExprPtr hi = MakeLiteral(RandomLiteralNear(col->affinity, rng));
    if (col->affinity == Affinity::kText) {
      col_ref = MaybeCollate(std::move(col_ref), rng);
    }
    return MakeBetween(std::move(col_ref), std::move(lo), std::move(hi),
                       rng->Chance(0.25));
  }
  // LIKE over a text column; fall back to a plain comparison when the
  // chosen column is not text (or, in flexible dialects, allow the
  // engine-defined text conversion occasionally).
  if (col->affinity == Affinity::kText || (!strict_ && rng->Chance(0.3))) {
    if (rng->Chance(options_.like_escape_probability)) {
      // Escaped-wildcard patterns ('!' is the ESCAPE character): they only
      // match values carrying a literal % or _, which the text pool
      // deliberately contains.
      std::string pattern = rng->Pick<std::string>(
          {"%!%%", "a!%%", "!_%", "%a!%%", "%!__"});
      return MakeLikeEscape(std::move(col_ref), MakeTextLiteral(pattern),
                            MakeTextLiteral("!"), rng->Chance(0.3));
    }
    std::string pattern = rng->Pick<std::string>(
        {"%a%", "a%", "%b", "_", "%12%", "%ab%", "ab%", "%xy%", "%"});
    if (dialect_ == Dialect::kSqliteFlex && rng->Chance(0.1)) {
      // Concat feeding LIKE: exercises || (and the sqlite concat bug).
      const TableSchema* rhs_table = nullptr;
      const ColumnDef* rhs_col = PickColumn(tables, &rhs_table, rng);
      col_ref = MakeBinary(BinaryOp::kConcat, std::move(col_ref),
                           MakeColumnRef(rhs_table->name, rhs_col->name));
    }
    return MakeLike(std::move(col_ref), MakeTextLiteral(pattern),
                    rng->Chance(0.3));
  }
  return MakeBinary(RandomComparison(rng), std::move(col_ref),
                    MakeLiteral(RandomLiteralNear(col->affinity, rng)));
}

ExprPtr Generator::GenPredicate(const std::vector<const TableSchema*>& tables,
                                int depth, Rng* rng) const {
  if (depth <= 0 || rng->Chance(0.4)) return GenLeaf(tables, rng);
  // Searched CASE in predicate position: WHEN/THEN/ELSE arms are leaf
  // predicates, so the whole node stays boolean-shaped for rectification.
  if (rng->Chance(options_.case_probability)) {
    return GenCasePredicate(tables, rng);
  }
  double roll = rng->Unit();
  if (roll < 0.42) {
    return MakeBinary(BinaryOp::kAnd, GenPredicate(tables, depth - 1, rng),
                      GenPredicate(tables, depth - 1, rng));
  }
  if (roll < 0.84) {
    return MakeBinary(BinaryOp::kOr, GenPredicate(tables, depth - 1, rng),
                      GenPredicate(tables, depth - 1, rng));
  }
  return MakeUnary(UnaryOp::kNot, GenPredicate(tables, depth - 1, rng));
}

ExprPtr Generator::GeneratePredicate(
    const std::vector<const TableSchema*>& tables, Rng* rng) const {
  return GenPredicate(tables, options_.max_predicate_depth, rng);
}

std::unique_ptr<SelectStmt> Generator::GenerateAggregateQuery(
    const TableSchema& table, Rng* rng) const {
  auto q = std::make_unique<SelectStmt>();
  q->from_tables.push_back(table.name);

  std::vector<const ColumnDef*> numeric;
  for (const ColumnDef& c : table.columns) {
    if (c.affinity != Affinity::kText) numeric.push_back(&c);
  }

  // Dedicated COUNT(DISTINCT c) shape: exactly one item, no grouping.
  if (rng->Chance(options_.count_distinct_probability)) {
    const ColumnDef& col = table.columns[rng->Below(table.columns.size())];
    q->select_list.push_back(MakeAggregate(
        AggFunc::kCount, MakeColumnRef(table.name, col.name),
        /*distinct=*/true));
    return q;
  }

  // Random aggregate call. `numeric_only` restricts the result to calls
  // whose value is numeric in every dialect (what HAVING comparisons need
  // under strict typing); SUM/AVG are numeric-argument-only regardless.
  auto gen_agg = [&](bool numeric_only) -> ExprPtr {
    for (;;) {
      switch (rng->Below(6)) {
        case 0:
          return MakeCountStar();
        case 1: {
          const ColumnDef& col =
              table.columns[rng->Below(table.columns.size())];
          return MakeAggregate(AggFunc::kCount,
                               MakeColumnRef(table.name, col.name), false);
        }
        case 2:
        case 3: {
          if (numeric.empty()) break;  // redraw
          const ColumnDef& col = *numeric[rng->Below(numeric.size())];
          AggFunc func = rng->Chance(0.5) ? AggFunc::kSum : AggFunc::kAvg;
          return MakeAggregate(func, MakeColumnRef(table.name, col.name),
                               false);
        }
        default: {
          const ColumnDef* col = nullptr;
          if (numeric_only) {
            if (numeric.empty()) break;  // redraw (COUNT always lands)
            col = numeric[rng->Below(numeric.size())];
          } else {
            col = &table.columns[rng->Below(table.columns.size())];
          }
          AggFunc func = rng->Chance(0.5) ? AggFunc::kMin : AggFunc::kMax;
          return MakeAggregate(func, MakeColumnRef(table.name, col->name),
                               false);
        }
      }
    }
  };

  const bool grouped = rng->Chance(options_.group_by_probability);
  if (grouped) {
    const ColumnDef& key = table.columns[rng->Below(table.columns.size())];
    q->group_by.push_back(MakeColumnRef(table.name, key.name));
    q->select_list.push_back(MakeColumnRef(table.name, key.name));
  }

  const int aggs = 1 + static_cast<int>(rng->Below(2));
  for (int i = 0; i < aggs; ++i) {
    q->select_list.push_back(gen_agg(/*numeric_only=*/false));
  }

  if (grouped && rng->Chance(options_.having_probability)) {
    // HAVING: a numeric aggregate against a small integer bound, so the
    // comparison is statically typed in every dialect. AVG yields REAL;
    // numeric-vs-numeric comparisons are legal even under strict typing.
    BinaryOp op = rng->Chance(0.5) ? BinaryOp::kGe : BinaryOp::kLt;
    q->having = MakeBinary(op, gen_agg(/*numeric_only=*/true),
                           MakeIntLiteral(static_cast<int64_t>(rng->Below(4))));
  }
  return q;
}

}  // namespace pqs
