#include "src/pqs/scheduler.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "src/obs/telemetry.h"

namespace pqs {

ActionScheduler::ActionScheduler(const Generator* generator,
                                 const GeneratorOptions& options,
                                 const DatabasePlan* plan)
    : generator_(generator), options_(options), plan_(plan) {}

const TableSchema* ActionScheduler::PickTable(Rng* rng) const {
  return &plan_->tables[rng->Below(plan_->tables.size())];
}

std::vector<std::string> ActionScheduler::LiteralOnlyColumns(
    const TableSchema& table) const {
  std::vector<std::string> out;
  for (const ColumnDef& col : table.columns) {
    if (col.unique || col.primary_key) out.push_back(col.name);
  }
  for (const LiveIndex& index : live_) {
    if (!index.unique || index.table != table.name) continue;
    for (const std::string& col : index.columns) out.push_back(col);
  }
  return out;
}

namespace {

void CollectColumnRefs(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == ExprKind::kColumnRef) out->push_back(expr.column);
  for (const ExprPtr& a : expr.args) {
    if (a != nullptr) CollectColumnRefs(*a, out);
  }
}

}  // namespace

std::vector<std::string> ActionScheduler::IndexedColumns(
    const TableSchema& table) const {
  std::vector<std::string> out;
  for (const LiveIndex& index : live_) {
    if (index.table != table.name) continue;
    for (const std::string& col : index.columns) out.push_back(col);
    if (index.where != nullptr) CollectColumnRefs(*index.where, &out);
  }
  return out;
}

std::vector<StmtPtr> ActionScheduler::NextBatch(Rng* rng) {
  // Drawing the batch is pure generation; covers every caller.
  obs::ScopedPhase span(obs::Phase::kGenerate);
  std::vector<StmtPtr> batch;
  const GeneratorOptions& o = options_;
  double mutation_total = o.insert_weight + o.update_weight +
                          o.delete_weight + o.create_index_weight +
                          o.drop_index_weight + o.maintenance_weight;
  if (!(mutation_total > 0.0)) return batch;
  // live_ is only updated by Observe() once the batch executes, so the
  // statements already drawn this batch must be accounted for here:
  // an index chosen as a DROP victim cannot be dropped twice, and an
  // UPDATE drawn after a CREATE UNIQUE INDEX must already treat the new
  // index's key columns as literal-only (the row-visit-order-independence
  // invariant of DESIGN §9 — non-literal values on a column that *will*
  // be unique when the UPDATE executes could make constraint decisions
  // visit-order-dependent and diverge from real SQLite).
  std::vector<std::string> dropped_in_batch;
  std::vector<std::pair<std::string, std::string>> unique_cols_in_batch;
  for (int i = 0; i < o.max_actions_per_check; ++i) {
    double roll = rng->Unit() * (o.pivot_check_weight + mutation_total);
    if (roll < o.pivot_check_weight) break;  // the pivot check comes up
    roll -= o.pivot_check_weight;
    const TableSchema* table = PickTable(rng);
    if (roll < o.insert_weight) {
      batch.push_back(generator_->GenerateInsertRows(*table, rng));
      continue;
    }
    roll -= o.insert_weight;
    if (roll < o.update_weight) {
      std::vector<std::string> literal_only = LiteralOnlyColumns(*table);
      for (const auto& [index_table, col] : unique_cols_in_batch) {
        if (index_table == table->name) literal_only.push_back(col);
      }
      batch.push_back(generator_->GenerateUpdate(
          *table, literal_only, IndexedColumns(*table), rng));
      continue;
    }
    roll -= o.update_weight;
    if (roll < o.delete_weight) {
      batch.push_back(generator_->GenerateDelete(*table, rng));
      continue;
    }
    roll -= o.delete_weight;
    if (roll < o.create_index_weight) {
      auto index = generator_->GenerateIndex(
          *table, "i" + std::to_string(index_counter_++), rng);
      if (index->unique) {
        for (const std::string& col : index->columns) {
          unique_cols_in_batch.emplace_back(index->table_name, col);
        }
      }
      batch.push_back(std::move(index));
      continue;
    }
    roll -= o.create_index_weight;
    if (roll < o.drop_index_weight) {
      std::vector<const LiveIndex*> droppable;
      for (const LiveIndex& index : live_) {
        bool gone = false;
        for (const std::string& name : dropped_in_batch) {
          gone |= name == index.name;
        }
        if (!gone) droppable.push_back(&index);
      }
      if (droppable.empty()) continue;  // nothing to drop this slot
      const LiveIndex& victim = *droppable[rng->Below(droppable.size())];
      auto drop = std::make_unique<DropIndexStmt>();
      drop->index_name = victim.name;
      drop->table_name = victim.table;
      dropped_in_batch.push_back(victim.name);
      batch.push_back(std::move(drop));
      continue;
    }
    auto maintenance = std::make_unique<MaintenanceStmt>();
    maintenance->table_name = table->name;
    batch.push_back(std::move(maintenance));
  }
  return batch;
}

StmtPtr ActionScheduler::NextTxnDml(Rng* rng) {
  const GeneratorOptions& o = options_;
  const TableSchema* table = PickTable(rng);
  double dml_total = o.insert_weight + o.update_weight + o.delete_weight;
  double roll = rng->Unit() * (dml_total > 0.0 ? dml_total : 1.0);
  if (dml_total <= 0.0 || roll < o.insert_weight) {
    return generator_->GenerateInsertRows(*table, rng);
  }
  roll -= o.insert_weight;
  if (roll < o.update_weight) {
    return generator_->GenerateUpdate(*table, LiteralOnlyColumns(*table),
                                      IndexedColumns(*table), rng);
  }
  return generator_->GenerateDelete(*table, rng);
}

std::vector<SessionAction> ActionScheduler::NextTxnBatch(Rng* rng) {
  obs::ScopedPhase span(obs::Phase::kGenerate);
  std::vector<SessionAction> batch;
  const GeneratorOptions& o = options_;
  int sessions = o.txn_sessions < 1 ? 1 : o.txn_sessions;
  if (txn_sessions_.empty()) {
    txn_sessions_.resize(static_cast<size_t>(sessions));
  }
  // The batch length mirrors NextBatch's weighted stopping rule (the pivot
  // check "comes up"), scaled by the session count so each session gets a
  // comparable number of steps between checks.
  double dml_total = o.insert_weight + o.update_weight + o.delete_weight;
  if (!(dml_total > 0.0)) dml_total = 1.0;
  int cap = o.max_actions_per_check * sessions;
  for (int i = 0; i < cap; ++i) {
    if (rng->Unit() * (o.pivot_check_weight + dml_total) <
        o.pivot_check_weight) {
      break;
    }
    int s = static_cast<int>(rng->Below(static_cast<size_t>(sessions)));
    TxnSession& state = txn_sessions_[static_cast<size_t>(s)];
    SessionAction action;
    action.session = s;
    if (!state.in_txn) {
      if (rng->Chance(o.txn_begin_probability)) {
        action.stmt = std::make_unique<BeginStmt>();
        state.in_txn = true;
        state.stmts_in_txn = 0;
      } else {
        action.stmt = NextTxnDml(rng);  // autocommit statement
      }
    } else if (state.stmts_in_txn >= o.max_txn_statements) {
      // Forced resolution: every transaction commits within a bounded
      // number of steps, so no schedule ends with work stuck open.
      action.stmt = std::make_unique<CommitStmt>();
      state.in_txn = false;
    } else {
      double r = rng->Unit();
      if (r < o.txn_commit_probability) {
        action.stmt = std::make_unique<CommitStmt>();
        state.in_txn = false;
      } else if (r < o.txn_commit_probability + o.txn_rollback_probability) {
        action.stmt = std::make_unique<RollbackStmt>();
        state.in_txn = false;
      } else {
        action.stmt = NextTxnDml(rng);
        ++state.stmts_in_txn;
      }
    }
    batch.push_back(std::move(action));
  }
  return batch;
}

void ActionScheduler::Observe(const Stmt& stmt, bool applied) {
  switch (stmt.kind()) {
    case StmtKind::kCreateIndex: {
      const auto& ci = static_cast<const CreateIndexStmt&>(stmt);
      // Advance the fresh-name counter past every observed "i<N>" (setup
      // indexes included), applied or not — a rejected name is still used.
      if (!ci.index_name.empty() && ci.index_name[0] == 'i') {
        int n = std::atoi(ci.index_name.c_str() + 1);
        if (n + 1 > index_counter_) index_counter_ = n + 1;
      }
      if (!applied) break;
      LiveIndex live;
      live.name = ci.index_name;
      live.table = ci.table_name;
      live.columns = ci.columns;
      live.unique = ci.unique;
      live.where = ci.where ? ci.where->Clone() : nullptr;
      live_.push_back(std::move(live));
      break;
    }
    case StmtKind::kDropIndex: {
      if (!applied) break;
      const auto& di = static_cast<const DropIndexStmt&>(stmt);
      for (size_t i = 0; i < live_.size(); ++i) {
        if (live_[i].name != di.index_name) continue;
        live_.erase(live_.begin() + static_cast<long>(i));
        break;
      }
      break;
    }
    default:
      break;
  }
}

ExprPtr ActionScheduler::MaybePartialIndexProbe(const std::string& table,
                                                Rng* rng) const {
  if (!rng->Chance(options_.partial_probe_probability)) return nullptr;
  std::vector<const LiveIndex*> partial;
  for (const LiveIndex& index : live_) {
    if (index.table == table && index.where != nullptr) {
      partial.push_back(&index);
    }
  }
  if (partial.empty()) return nullptr;
  return partial[rng->Below(partial.size())]->where->Clone();
}

}  // namespace pqs
