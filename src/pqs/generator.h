// Random database and predicate generation (paper §3.1/§3.2).
//
// The generator is dialect-aware: in kPostgresStrict it only emits
// statements and expressions that are statically type-correct, which is
// what makes the error oracle sound — any error the engine reports on a
// generated statement (other than a constraint violation on INSERT) is a
// bug by construction.
#ifndef PQS_SRC_PQS_GENERATOR_H_
#define PQS_SRC_PQS_GENERATOR_H_

#include <string>
#include <vector>

#include <memory>

#include "src/common/rng.h"
#include "src/engine/connection.h"
#include "src/sqlast/ast.h"
#include "src/sqlstmt/stmt.h"

namespace pqs {

struct GeneratorOptions {
  // Algorithm-3 rectification toggle. With it off, the runner still tallies
  // raw predicate outcomes but must skip the containment check — a raw
  // predicate is only TRUE on the pivot by chance.
  bool rectify = true;

  int min_rows = 3;
  int max_rows = 12;
  int max_tables = 3;
  int max_columns = 4;
  // Composite predicate nesting (leaves add their own internal depth).
  int max_predicate_depth = 3;

  double index_probability = 0.7;            // ≥1 CREATE INDEX per table
  double partial_index_probability = 0.4;    // ...of which partial
  double null_probability = 0.18;            // NULL cell values
  double multi_table_query_probability = 0.35;

  // --- Query-shape features (joins / DISTINCT / ORDER BY / LIMIT). -------
  // Probability a multi-table query uses explicit JOIN syntax (INNER /
  // LEFT / CROSS chain) rather than the comma-list cross product.
  double explicit_join_probability = 0.55;
  // Probability an explicit join chain grows to a third table.
  double third_table_probability = 0.5;
  double left_join_probability = 0.35;   // join step is LEFT ...
  double cross_join_probability = 0.15;  // ... or CROSS (else INNER)
  double distinct_probability = 0.3;
  double order_by_probability = 0.45;
  // LIMIT attach probability, given an ORDER BY (LIMIT without ORDER BY is
  // generated more rarely; its sound bound is the whole result).
  double limit_probability = 0.5;
  int max_order_keys = 2;

  // --- Typed expression subsystem (functions / CAST / CASE / LIKE ESCAPE
  // --- / collations / NULL-bearing IN lists). ---------------------------
  // Probability a comparison leaf anchors on a registry function call
  // (dialect availability comes from sqlexpr::FunctionsForDialect).
  double function_probability = 0.3;
  // Probability a comparison leaf anchors on CAST(col AS type).
  double cast_probability = 0.2;
  // Probability a composite level emits a searched CASE predicate.
  double case_probability = 0.12;
  // Probability a text comparison operand gets an explicit COLLATE
  // (kSqliteFlex only; the other dialects never emit the operator).
  double collate_probability = 0.35;
  // Probability a LIKE leaf uses an escaped pattern with an ESCAPE clause.
  double like_escape_probability = 0.4;
  // Probability an IN list includes a NULL element (UNKNOWN semantics).
  double in_list_null_probability = 0.25;

  // --- Aggregate query space (metamorphic-oracle campaigns only; the
  // --- containment oracle cannot judge aggregates, so the runner calls
  // --- GenerateAggregateQuery exclusively on the TLP path). -------------
  // Probability a TLP check uses the plain row-set shape (SELECT * with
  // multiset-union recombination) instead of an aggregate query.
  double tlp_rows_shape_probability = 0.25;
  // Probability an aggregate query is the dedicated COUNT(DISTINCT c)
  // shape (its partials recombine by value-set union, not summation).
  double count_distinct_probability = 0.2;
  // Probability an aggregate query groups by one column.
  double group_by_probability = 0.45;
  // Probability a grouped query carries a HAVING clause (a numeric
  // aggregate compared against a small integer literal).
  double having_probability = 0.5;

  // --- Statement-level mutation stream (indexes / UPDATE / DELETE /
  // --- maintenance — DESIGN §9). ----------------------------------------
  // Weighted statement mix the ActionScheduler draws between pivot checks:
  // each batch keeps drawing from the mix until the pivot-check action
  // comes up (capped at max_actions_per_check). Zeroing every mutation
  // weight reproduces the earlier all-SELECT sessions.
  double pivot_check_weight = 6.0;
  double insert_weight = 1.0;
  double update_weight = 1.2;
  double delete_weight = 0.7;
  double create_index_weight = 0.5;
  double drop_index_weight = 0.25;
  double maintenance_weight = 0.3;
  int max_actions_per_check = 6;
  // Probability a generated WHERE AND-prepends the predicate of a live
  // partial index over the queried table, which is what makes the
  // partial-index scan planner (and its bug classes) reachable.
  double partial_probe_probability = 0.3;

  // --- Interleaved transaction sessions (MVCC campaigns — DESIGN §14). --
  // Number of logical sessions the scheduler interleaves. 1 (the default)
  // keeps the classic autocommit stream; above 1 the runner switches to
  // the transaction branch: BEGIN/COMMIT/ROLLBACK streams over K sessions
  // with snapshot-isolation checks and the serial-replay oracle.
  int txn_sessions = 1;
  // Probability an idle session opens a transaction rather than issuing
  // one autocommit DML statement.
  double txn_begin_probability = 0.6;
  // Per-step probability an open transaction COMMITs...
  double txn_commit_probability = 0.35;
  // ...or ROLLBACKs (else it issues another DML statement inside the
  // transaction).
  double txn_rollback_probability = 0.08;
  // Forced-COMMIT cap on statements inside one transaction, so every
  // transaction resolves within a bounded number of scheduler steps.
  int max_txn_statements = 6;

  // Validates ranges: depths/counts non-negative, row bounds ordered, and
  // every probability within [0, 1]. Returns an empty string when valid,
  // else a description of the first offending field. RunnerOptions /
  // CampaignOptions setup calls this so a bad CLI flag fails loudly
  // instead of silently skewing generation.
  std::string Validate() const;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
};

// Plan for one generated database state: the schema plus the DDL/DML
// statements that build it.
struct DatabasePlan {
  std::vector<TableSchema> tables;
  std::vector<StmtPtr> statements;
};

// Shape of one generated query: the FROM tables, the join plan over them,
// and the DISTINCT / ORDER BY / LIMIT features. ON conditions and the WHERE
// predicate are generated separately so the runner can rectify each of them
// against the pivot row (Algorithm 3, extended join-aware); the LIMIT value
// itself is chosen by the runner from the pivot's ground-truth rank so
// containment stays decidable.
struct QueryShape {
  std::vector<const TableSchema*> tables;  // FROM order; [0] is the base
  // One entry per join step (tables[i+1] joins via join_kinds[i]); empty
  // means comma-list FROM (cross product).
  std::vector<JoinKind> join_kinds;
  bool distinct = false;
  std::vector<OrderByItem> order_by;  // column-ref keys over `tables`
  bool want_limit = false;
};

class Generator {
 public:
  Generator(const GeneratorOptions& options, Dialect dialect);

  // Generates schema + data statements for a fresh database.
  DatabasePlan GenerateDatabase(Rng* rng) const;

  // Picks the FROM tables, join plan, and query features for the next
  // query (at least one table).
  QueryShape GenerateQueryShape(const DatabasePlan& plan, Rng* rng) const;

  // Random ON condition for joining `joined` to the `earlier` tables:
  // a comparison anchored on a `joined` column (column-vs-column when a
  // type-compatible earlier column exists, else column-vs-literal).
  ExprPtr GenerateJoinCondition(
      const std::vector<const TableSchema*>& earlier,
      const TableSchema* joined, Rng* rng) const;

  // Random predicate over the given tables' columns.
  ExprPtr GeneratePredicate(
      const std::vector<const TableSchema*>& tables, Rng* rng) const;

  // Random single-table aggregate query for a TLP check: 1-2 aggregate
  // calls (COUNT(*) / COUNT / SUM / AVG / MIN / MAX), sometimes GROUP BY
  // one column (the key is then also projected), sometimes HAVING, or the
  // dedicated COUNT(DISTINCT c) shape. SUM/AVG arguments are restricted to
  // numeric-affinity columns in every dialect, which keeps the query
  // differentially comparable against real SQLite (no text-to-number
  // coercion paths) and statically typed for the strict dialect's error
  // oracle. The query never carries WHERE / DISTINCT / ORDER BY / LIMIT:
  // the TLP partitions supply the predicates.
  std::unique_ptr<SelectStmt> GenerateAggregateQuery(const TableSchema& table,
                                                     Rng* rng) const;

  // --- Statement-level mutations (drawn by the ActionScheduler). --------
  // 1-2 fresh rows for `table`, same value model as the setup inserts.
  std::unique_ptr<InsertStmt> GenerateInsertRows(const TableSchema& table,
                                                 Rng* rng) const;
  // UPDATE with 1-2 assignments and (usually) a WHERE predicate. Columns
  // named in `literal_only_columns` (declared UNIQUE/PK plus live unique
  // index keys) only ever receive literal values, which keeps constraint
  // decisions independent of the engine's row visit order — the property
  // that lets the ground-truth model mirror real SQLite exactly (DESIGN
  // §9). Other columns may also receive same-type-class column refs,
  // numeric col±lit arithmetic, or (SQLite) a text concat. `hot_columns`
  // (live index key/predicate columns, from the scheduler) bias the first
  // assignment target: updating an indexed column is what moves index
  // entries, so the index-maintenance bug classes stay reachable at a
  // useful rate.
  std::unique_ptr<UpdateStmt> GenerateUpdate(
      const TableSchema& table,
      const std::vector<std::string>& literal_only_columns,
      const std::vector<std::string>& hot_columns, Rng* rng) const;
  // DELETE with a WHERE predicate (never the whole table).
  std::unique_ptr<DeleteStmt> GenerateDelete(const TableSchema& table,
                                             Rng* rng) const;
  // Random index over `table` (single/two-column, sometimes UNIQUE,
  // sometimes partial); used for both the setup phase and mid-session
  // CREATE INDEX actions.
  std::unique_ptr<CreateIndexStmt> GenerateIndex(const TableSchema& table,
                                                 std::string index_name,
                                                 Rng* rng) const;

 private:
  // One row of literal value expressions for `table`, in column order.
  std::vector<ExprPtr> GenerateRowValues(const TableSchema& table,
                                         Rng* rng) const;
  JoinKind RandomJoinKind(Rng* rng) const;
  ExprPtr GenPredicate(const std::vector<const TableSchema*>& tables,
                       int depth, Rng* rng) const;
  ExprPtr GenLeaf(const std::vector<const TableSchema*>& tables,
                  Rng* rng) const;
  ExprPtr GenOperand(const std::vector<const TableSchema*>& tables,
                     Rng* rng) const;
  // Registry-driven function-call operand: picks a function available in
  // the dialect, builds statically type-correct arguments over the tables'
  // columns, and reports the result's affinity class for the enclosing
  // comparison.
  ExprPtr GenFunctionExpr(const std::vector<const TableSchema*>& tables,
                          Rng* rng, Affinity* result_affinity) const;
  // CAST(col AS type) operand; strict dialects never cast text sources to
  // numeric targets. *operand_numeric reports whether the cast source is a
  // numeric-affinity column (callers must not compare the cast against a
  // text-affinity operand: a CAST carries its target type's affinity in
  // real SQLite, which would coerce the text side numerically — a rule the
  // storage-class model deliberately does not reproduce).
  ExprPtr GenCastExpr(const std::vector<const TableSchema*>& tables,
                      Rng* rng, Affinity* result_affinity,
                      bool* operand_numeric) const;
  // Searched CASE predicate with comparison-leaf arms.
  ExprPtr GenCasePredicate(const std::vector<const TableSchema*>& tables,
                           Rng* rng) const;
  // Wraps a text operand in COLLATE BINARY/NOCASE (kSqliteFlex only).
  // *collated (optional) reports whether the wrap happened.
  ExprPtr MaybeCollate(ExprPtr text_operand, Rng* rng,
                       bool* collated = nullptr) const;
  const ColumnDef* PickColumn(const std::vector<const TableSchema*>& tables,
                              const TableSchema** table, Rng* rng) const;
  SqlValue RandomValueFor(Affinity affinity, Rng* rng) const;
  SqlValue RandomLiteralNear(Affinity affinity, Rng* rng) const;
  std::string RandomText(Rng* rng) const;

  GeneratorOptions options_;
  Dialect dialect_;
  bool strict_;
};

}  // namespace pqs

#endif  // PQS_SRC_PQS_GENERATOR_H_
