// Random database and predicate generation (paper §3.1/§3.2).
//
// The generator is dialect-aware: in kPostgresStrict it only emits
// statements and expressions that are statically type-correct, which is
// what makes the error oracle sound — any error the engine reports on a
// generated statement (other than a constraint violation on INSERT) is a
// bug by construction.
#ifndef PQS_SRC_PQS_GENERATOR_H_
#define PQS_SRC_PQS_GENERATOR_H_

#include <vector>

#include "src/common/rng.h"
#include "src/engine/connection.h"
#include "src/sqlast/ast.h"

namespace pqs {

struct GeneratorOptions {
  // Algorithm-3 rectification toggle. With it off, the runner still tallies
  // raw predicate outcomes but must skip the containment check — a raw
  // predicate is only TRUE on the pivot by chance.
  bool rectify = true;

  int min_rows = 3;
  int max_rows = 12;
  int max_tables = 2;
  int max_columns = 4;
  // Composite predicate nesting (leaves add their own internal depth).
  int max_predicate_depth = 3;

  double index_probability = 0.7;            // ≥1 CREATE INDEX per table
  double partial_index_probability = 0.4;    // ...of which partial
  double null_probability = 0.18;            // NULL cell values
  double multi_table_query_probability = 0.35;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
};

// Plan for one generated database state: the schema plus the DDL/DML
// statements that build it.
struct DatabasePlan {
  std::vector<TableSchema> tables;
  std::vector<StmtPtr> statements;
};

class Generator {
 public:
  Generator(const GeneratorOptions& options, Dialect dialect);

  // Generates schema + data statements for a fresh database.
  DatabasePlan GenerateDatabase(Rng* rng) const;

  // Picks the FROM tables for the next query (at least one).
  std::vector<const TableSchema*> PickFromTables(const DatabasePlan& plan,
                                                 Rng* rng) const;

  // Random predicate over the given tables' columns.
  ExprPtr GeneratePredicate(
      const std::vector<const TableSchema*>& tables, Rng* rng) const;

 private:
  ExprPtr GenPredicate(const std::vector<const TableSchema*>& tables,
                       int depth, Rng* rng) const;
  ExprPtr GenLeaf(const std::vector<const TableSchema*>& tables,
                  Rng* rng) const;
  ExprPtr GenOperand(const std::vector<const TableSchema*>& tables,
                     Rng* rng) const;
  const ColumnDef* PickColumn(const std::vector<const TableSchema*>& tables,
                              const TableSchema** table, Rng* rng) const;
  SqlValue RandomValueFor(Affinity affinity, Rng* rng) const;
  SqlValue RandomLiteralNear(Affinity affinity, Rng* rng) const;
  std::string RandomText(Rng* rng) const;

  GeneratorOptions options_;
  Dialect dialect_;
  bool strict_;
};

}  // namespace pqs

#endif  // PQS_SRC_PQS_GENERATOR_H_
