// Campaign layer: systematic bug hunts over MiniDB's injected-bug registry.
//
// A campaign enables each registered bug of a dialect in turn, runs the PQS
// loop until the bug is detected (or a budget is exhausted), optionally
// reduces the finding, and tabulates the results the way the paper's
// Tables 2/3 and Figures 2/3 do.
#ifndef PQS_SRC_PQS_CAMPAIGN_H_
#define PQS_SRC_PQS_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/bugs.h"
#include "src/engine/connection.h"
#include "src/pqs/generator.h"
#include "src/pqs/oracles.h"
#include "src/pqs/runner.h"

namespace pqs {

// Resolution status the upstream bug report reached (paper Table 2).
enum class ReportOutcome { kFixed, kVerified, kIntended, kDuplicate };

const char* ReportOutcomeName(ReportOutcome outcome);

struct CampaignOptions {
  uint64_t seed = 1;
  // Detection budget per bug: up to this many generated databases...
  // (480 holds the whole 42-bug registry's worst observed detection
  // latency across seeds with headroom; the heavy tail moved from the
  // data-dependent expression bugs to the index-maintenance classes —
  // update-index-stale and partial-index-update-miss need an UPDATE to an
  // indexed column *and* a prompt index-scanned query over it, observed up
  // to ~410 databases on adversarial seeds. Cheap on average: HuntBug
  // stops at the first finding, so only the tail pays.)
  int databases_per_bug = 480;
  // ...with this many oracle-checked queries each.
  int queries_per_database = 20;
  bool reduce = true;
  // Worker threads. RunCampaign shards the dialect's bug list across the
  // workers (each hunt is an independent RNG stream, so the merged report
  // is identical for every worker count); a standalone HuntBug instead
  // hands the workers to its runner's shard plan. Either way the paper's
  // "many concurrent fuzzing threads per DBMS" shape is preserved without
  // giving up seed determinism.
  int workers = 1;
  // Oracle family the hunts run with. kAuto resolves per bug to the
  // registry entry's intended finder (a containment-blind aggregation bug
  // is hunted with TLP, the classic classes with containment); forcing a
  // family instead is what the per-family detection-latency benchmark
  // does.
  OracleFamily family = OracleFamily::kAuto;
  GeneratorOptions gen;
};

struct BugHuntResult {
  // Registry metadata for the hunted bug.
  BugId bug = BugId::kPartialIndexIsNotInference;
  const char* name = "";
  Dialect dialect = Dialect::kSqliteFlex;
  ReportOutcome outcome = ReportOutcome::kFixed;

  bool detected = false;
  // Non-empty when GeneratorOptions::Validate() rejected the options; the
  // hunt performed no work (distinguishes "not found in budget" from
  // "never hunted").
  std::string invalid_options;
  OracleKind oracle = OracleKind::kContainment;  // oracle that fired
  // The finding (reduced when CampaignOptions::reduce, raw otherwise).
  Finding reduced;
  uint64_t statements_used = 0;
  uint64_t databases_used = 0;
};

struct CampaignReport {
  Dialect dialect = Dialect::kSqliteFlex;
  // One entry per registered bug of the dialect, in registry order.
  std::vector<BugHuntResult> results;

  size_t DetectedCount() const;
  // Detected bugs whose firing oracle was `kind`.
  size_t CountByOracle(OracleKind kind) const;
  // Detected bugs whose modeled report outcome is `outcome`.
  size_t CountByOutcome(ReportOutcome outcome) const;
  // Test-case statistics over all detected findings.
  AggregateStats Aggregate() const;
};

// Hunts every registered bug of `dialect`.
CampaignReport RunCampaign(Dialect dialect, const CampaignOptions& options);

// Hunts one bug (dialect comes from the registry entry).
BugHuntResult HuntBug(BugId bug, const CampaignOptions& options);

}  // namespace pqs

#endif  // PQS_SRC_PQS_CAMPAIGN_H_
