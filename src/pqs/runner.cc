#include "src/pqs/runner.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "src/common/rng.h"
#include "src/interp/bytecode.h"
#include "src/interp/eval.h"
#include "src/minidb/database.h"
#include "src/obs/telemetry.h"
#include "src/pqs/scheduler.h"
#include "src/sqlexpr/rectify.h"
#include "src/sqlmeta/oracle.h"

namespace pqs {

// The runner indexes RunStats::predicate_depth_buckets with
// sqlexpr::ExprDepthBucket; the two bucket counts must agree.
static_assert(RunStats::kDepthBuckets == kExprDepthBuckets,
              "RunStats depth histogram width must match ExprDepthBucket");

namespace {

// Clones the first `count` statements of `plan` (the setup prefix executed
// so far), optionally appending `last`. Only called when a finding is
// recorded, so the common path never copies ASTs.
std::vector<StmtPtr> CloneLog(const DatabasePlan& plan, size_t count,
                              const Stmt* last) {
  std::vector<StmtPtr> out;
  out.reserve(count + 1);
  for (size_t i = 0; i < count && i < plan.statements.size(); ++i) {
    out.push_back(plan.statements[i]->Clone());
  }
  if (last != nullptr) out.push_back(last->Clone());
  return out;
}

// Clones the whole replayable session: the setup plan, every mutation
// executed so far, and optionally the triggering statement. Mutation
// statements never read their own results, so this flat order reproduces
// the exact state the finding was observed in.
std::vector<StmtPtr> CloneSession(const DatabasePlan& plan,
                                  const std::vector<StmtPtr>& mutations,
                                  const Stmt* last) {
  std::vector<StmtPtr> out;
  out.reserve(plan.statements.size() + mutations.size() + 1);
  for (const StmtPtr& s : plan.statements) out.push_back(s->Clone());
  for (const StmtPtr& m : mutations) out.push_back(m->Clone());
  if (last != nullptr) out.push_back(last->Clone());
  return out;
}

// Statement-stream distribution tallies for the mutation actions, mirrored
// into the telemetry registry (the obs counters are the migration target
// for these tallies; RunStats keeps them because report consumers read it).
void TallyAction(const Stmt& stmt, RunStats* stats) {
  switch (stmt.kind()) {
    case StmtKind::kInsert:
      ++stats->actions_insert;
      obs::Count(obs::Counter::kSchedInsert);
      break;
    case StmtKind::kUpdate:
      ++stats->actions_update;
      obs::Count(obs::Counter::kSchedUpdate);
      break;
    case StmtKind::kDelete:
      ++stats->actions_delete;
      obs::Count(obs::Counter::kSchedDelete);
      break;
    case StmtKind::kCreateIndex:
      ++stats->actions_create_index;
      obs::Count(obs::Counter::kSchedCreateIndex);
      break;
    case StmtKind::kDropIndex:
      ++stats->actions_drop_index;
      obs::Count(obs::Counter::kSchedDropIndex);
      break;
    case StmtKind::kMaintenance:
      ++stats->actions_maintenance;
      obs::Count(obs::Counter::kSchedMaintenance);
      break;
    default:
      break;
  }
}

// True when every row of `subset` occurs in `superset` as a multiset
// (each superset row consumed at most once). On failure *missing (when
// non-null) receives the first unmatched subset row.
bool RowsMultisetContained(
    const std::vector<std::vector<SqlValue>>& subset,
    const std::vector<std::vector<SqlValue>>& superset,
    std::vector<SqlValue>* missing) {
  std::vector<bool> used(superset.size(), false);
  for (const auto& row : subset) {
    bool found = false;
    for (size_t i = 0; i < superset.size(); ++i) {
      if (used[i] || superset[i].size() != row.size()) continue;
      bool equal = true;
      for (size_t c = 0; c < row.size(); ++c) {
        if (!ValueEquals(superset[i][c], row[c])) {
          equal = false;
          break;
        }
      }
      if (equal) {
        used[i] = true;
        found = true;
        break;
      }
    }
    if (!found) {
      if (missing != nullptr) *missing = row;
      return false;
    }
  }
  return true;
}

// Worst-case 1-based position of the pivot in `query`'s result under
// reference semantics: the number of result rows whose ORDER BY keys sort
// at-or-before the pivot's (ties may legally precede it), or the full
// result size when the query has no ORDER BY (any row order is legal
// then). A LIMIT of at least this bound provably keeps the pivot in the
// result whatever tie-breaking the engine uses — the paper's restriction
// to queries where containment stays decidable. The base-table rows were
// already fetched for pivot selection, so this reuses them with the same
// shared relational core the engine runs.
bool PivotWorstCaseRank(
    const SelectStmt& query, const std::vector<const TableSchema*>& from,
    const std::vector<std::vector<std::vector<SqlValue>>>& table_rows,
    const RowSchema& joined_schema, const std::vector<SqlValue>& pivot,
    const EvalContext& ctx, int64_t* rank) {
  std::vector<JoinInput> inputs;
  inputs.reserve(from.size());
  for (size_t t = 0; t < from.size(); ++t) {
    JoinInput input;
    for (const ColumnDef& col : from[t]->columns) {
      input.schema.cols.emplace_back(from[t]->name, col.name);
    }
    input.rows = &table_rows[t];
    inputs.push_back(std::move(input));
  }
  std::vector<std::vector<SqlValue>> joined;
  std::string error;
  if (!JoinRows(inputs, query.joins, ctx, &joined, &error, nullptr)) {
    return false;
  }
  // The WHERE runs once per joined row — compile it once.
  CompiledExpr where_code;
  if (query.where != nullptr) {
    where_code = CompileExpr(*query.where, joined_schema, ctx.dialect);
  }
  std::vector<std::vector<SqlValue>> result;
  for (std::vector<SqlValue>& row : joined) {
    if (query.where != nullptr) {
      RowView view{&joined_schema, &row};
      EvalResult evaluated = where_code.Run(view, ctx);
      if (evaluated.error) return false;
      if (Truthiness(evaluated.value, ctx.dialect) != Bool3::kTrue) continue;
    }
    result.push_back(std::move(row));
  }
  if (query.distinct) {
    std::vector<size_t> keep = DistinctKeepIndexes(result, ctx);
    std::vector<std::vector<SqlValue>> deduped;
    deduped.reserve(keep.size());
    for (size_t idx : keep) deduped.push_back(std::move(result[idx]));
    result = std::move(deduped);
  }
  if (query.order_by.empty()) {
    *rank = static_cast<int64_t>(result.size());
  } else {
    // Key expressions run once per kept row — compile each once.
    std::vector<CompiledExpr> key_code;
    key_code.reserve(query.order_by.size());
    for (const OrderByItem& item : query.order_by) {
      if (item.expr == nullptr) return false;
      key_code.push_back(CompileExpr(*item.expr, joined_schema, ctx.dialect));
    }
    auto eval_keys = [&](const RowView& view, std::vector<SqlValue>* keys) {
      keys->clear();
      keys->reserve(key_code.size());
      for (const CompiledExpr& code : key_code) {
        EvalResult evaluated = code.Run(view, ctx);
        if (evaluated.error) return false;
        keys->push_back(std::move(evaluated.value));
      }
      return true;
    };
    RowView pivot_view{&joined_schema, &pivot};
    std::vector<SqlValue> pivot_keys;
    if (!eval_keys(pivot_view, &pivot_keys)) return false;
    int64_t at_or_before = 0;
    std::vector<SqlValue> keys;
    for (const std::vector<SqlValue>& row : result) {
      RowView view{&joined_schema, &row};
      if (!eval_keys(view, &keys)) return false;
      if (CompareOrderKeys(keys, pivot_keys, query.order_by) <= 0) {
        ++at_or_before;
      }
    }
    *rank = at_or_before;
  }
  // Rectification guarantees the pivot is in the reference result, so the
  // bound is structurally >= 1; clamp defensively (LIMIT 0 would be an
  // instant false positive).
  if (*rank < 1) *rank = 1;
  return true;
}

// Outcome of one database of the shard plan. Merging these in db_index
// order reconstructs exactly what the sequential loop would have reported.
struct DbRunResult {
  RunStats stats;
  obs::MetricsRegistry metrics;
  std::vector<Finding> findings;
  bool unsupported_engine = false;
  bool factory_failed = false;  // factory returned null; run ends before it
};

// One database of the interleaved-transaction branch (DESIGN §14): K
// logical sessions drive BEGIN/COMMIT/ROLLBACK streams against the engine
// under test while two clean MiniDB instances hold the ground truth. The
// *mirror* executes the identical interleaved stream (SetSession included)
// and answers "what should this session see right now" — the
// snapshot-isolation oracle. The *replay* model never sees a BEGIN: it
// receives each committed transaction's successful DML serially, in commit
// order, and answers "what must the committed state be" — the serial-replay
// oracle. Under SI with first-committer-wins at table granularity, applying
// committed transactions' writes in commit order reproduces the committed
// state exactly (no committer's written tables changed between its snapshot
// and its commit), which is what makes the serial comparison sound.
DbRunResult RunTxnDatabase(const WorkerEngineFactory& factory, int worker,
                           const RunnerOptions& options, uint64_t db_seed) {
  DbRunResult out;
  Rng rng(db_seed);
  ConnectionPtr conn = factory(worker);
  if (conn == nullptr) {
    out.factory_failed = true;
    return out;
  }
  Dialect dialect = conn->dialect();
  Generator generator(options.gen, dialect);
  DatabasePlan plan;
  {
    obs::ScopedPhase span(obs::Phase::kGenerate);
    plan = generator.GenerateDatabase(&rng);
    // Guarantee at least one index per table: the transaction stream never
    // issues DDL, so only setup indexes keep the index-maintenance paths
    // (and the rollback-stale-index probe below) reachable. A unique index
    // over already-inserted duplicate data is rejected as a tolerated
    // constraint violation, same as mid-session CREATE INDEX.
    int index_counter = 0;
    for (const StmtPtr& s : plan.statements) {
      if (s->kind() == StmtKind::kCreateIndex) ++index_counter;
    }
    for (const TableSchema& table : plan.tables) {
      plan.statements.push_back(generator.GenerateIndex(
          table, "i" + std::to_string(index_counter++), &rng));
    }
  }
  ++out.stats.databases_created;

  minidb::Database mirror(dialect);  // interleaved ground truth
  minidb::Database replay(dialect);  // serial committed-state ground truth
  ActionScheduler scheduler(&generator, options.gen, &plan);
  std::vector<StmtPtr> stream_log;

  bool finding_in_db = false;
  auto record = [&](Finding finding) {
    finding.dialect = dialect;
    finding.seed = options.seed;
    if (obs::SessionTelemetry* t = obs::CurrentTelemetry()) {
      t->metrics.Count(obs::Counter::kFindingsRecorded);
      t->recorder.Emit(t->clock, obs::EventKind::kFindingRecorded,
                       static_cast<uint32_t>(finding.oracle));
      finding.flight = t->recorder.Dump();
    }
    out.findings.push_back(std::move(finding));
    finding_in_db = true;
  };

  auto exec_engine = [&](const Stmt& stmt) {
    StatementResult r;
    {
      obs::ScopedPhase span(obs::Phase::kEngineExecute);
      r = conn->Execute(stmt);
      obs::CountStatement(static_cast<uint32_t>(stmt.kind()), !r.ok());
    }
    ++out.stats.statements_executed;
    return r;
  };
  auto exec_mirror = [&](const Stmt& stmt) {
    obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
    return mirror.Execute(stmt);
  };

  // Key columns of setup indexes the mirror accepted, for the index-probe
  // check (a corrupted index shows up only through an indexed lookup).
  std::vector<std::pair<std::string, std::string>> probe_cols;

  // --- Setup on all three engines (DDL + base data + indexes). ---------
  size_t setup_done = 0;
  for (const StmtPtr& stmt : plan.statements) {
    StatementResult result = exec_engine(*stmt);
    ++setup_done;
    StatementResult mirror_result = exec_mirror(*stmt);
    {
      obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
      replay.Execute(*stmt);
    }
    scheduler.Observe(*stmt, mirror_result.ok());
    if (mirror_result.ok() && stmt->kind() == StmtKind::kCreateIndex) {
      const auto& ci = static_cast<const CreateIndexStmt&>(*stmt);
      if (!ci.columns.empty()) {
        probe_cols.emplace_back(ci.table_name, ci.columns[0]);
      }
    }
    if (result.status == StatementStatus::kConstraintViolation) {
      ++out.stats.constraint_violations;
      continue;
    }
    if (result.status == StatementStatus::kUnsupported) {
      out.unsupported_engine = true;
      return out;
    }
    if (result.status == StatementStatus::kError ||
        result.status == StatementStatus::kCrash) {
      Finding finding;
      finding.oracle = result.status == StatementStatus::kError
                           ? OracleKind::kError
                           : OracleKind::kCrash;
      finding.statements = CloneLog(plan, setup_done, nullptr);
      finding.message = result.error;
      record(std::move(finding));
      break;
    }
  }
  if (finding_in_db) return out;

  // Per-session bookkeeping for the serial-replay model: the successful
  // DML of each open transaction, forwarded on commit.
  struct SessionTxn {
    bool open = false;
    std::vector<StmtPtr> committed_dml;
  };
  int sessions = options.gen.txn_sessions;
  std::vector<SessionTxn> session_txns(static_cast<size_t>(sessions));
  int current_session = 0;

  // Routes a statement to the engine and the mirror, prefixing a session
  // switch when `session` differs from the last action's. Every executed
  // stream statement lands in stream_log so findings replay flat.
  auto switch_session = [&](int session) {
    if (session == current_session) return;
    auto set = std::make_unique<SetSessionStmt>();
    set->session = session;
    exec_engine(*set);
    exec_mirror(*set);
    current_session = session;
    stream_log.push_back(std::move(set));
  };

  // Engine-vs-replay committed-state comparison: the engine's post-commit
  // autocommit view of every table must equal the serial replay of the
  // committed transactions. Returns false when a finding was recorded.
  auto committed_state_matches = [&]() {
    ++out.stats.txn_serial_replays;
    for (const TableSchema& table : plan.tables) {
      SelectStmt fetch;
      fetch.from_tables = {table.name};
      StatementResult rows = exec_engine(fetch);
      if (rows.status == StatementStatus::kUnsupported) {
        out.unsupported_engine = true;
        return false;
      }
      if (!rows.ok()) {
        Finding finding;
        finding.oracle = rows.status == StatementStatus::kCrash
                             ? OracleKind::kCrash
                             : OracleKind::kError;
        finding.statements = CloneSession(plan, stream_log, &fetch);
        finding.message = rows.error;
        record(std::move(finding));
        return false;
      }
      const std::vector<std::vector<SqlValue>>* serial_rows =
          replay.TableRows(table.name);
      bool diverged;
      {
        obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
        diverged = serial_rows != nullptr &&
                   !SameRowMultiset(rows.rows, *serial_rows);
      }
      if (diverged) {
        Finding finding;
        finding.oracle = OracleKind::kTxnSerial;
        finding.statements = CloneSession(plan, stream_log, &fetch);
        finding.message =
            "table " + table.name +
            " diverged from the serial replay of committed transactions: "
            "engine has " +
            std::to_string(rows.rows.size()) + " row(s), serial replay " +
            std::to_string(serial_rows->size());
        record(std::move(finding));
        return false;
      }
    }
    return true;
  };

  // --- Interleaved transaction stream + checks. ------------------------
  for (int q = 0; q < options.queries_per_database && !finding_in_db; ++q) {
    for (SessionAction& action : scheduler.NextTxnBatch(&rng)) {
      switch_session(action.session);
      SessionTxn& sess = session_txns[static_cast<size_t>(action.session)];
      StmtKind kind = action.stmt->kind();
      StatementResult engine_result = exec_engine(*action.stmt);
      TallyAction(*action.stmt, &out.stats);
      StatementResult mirror_result = exec_mirror(*action.stmt);
      uint32_t clock = static_cast<uint32_t>(mirror.commit_clock());
      bool committed = false;
      switch (kind) {
        case StmtKind::kBegin:
          if (mirror_result.ok()) {
            sess.open = true;
            sess.committed_dml.clear();
            ++out.stats.txn_begins;
            obs::Count(obs::Counter::kTxnBegins);
            obs::Emit(obs::EventKind::kTxnBegin,
                      static_cast<uint32_t>(action.session), clock);
          }
          break;
        case StmtKind::kCommit:
          if (mirror_result.ok()) {
            ++out.stats.txn_commits;
            obs::Count(obs::Counter::kTxnCommits);
            obs::Emit(obs::EventKind::kTxnCommit,
                      static_cast<uint32_t>(action.session), clock);
            obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
            for (const StmtPtr& dml : sess.committed_dml) {
              replay.Execute(*dml);
            }
          } else if (mirror_result.status == StatementStatus::kTxnConflict) {
            ++out.stats.txn_conflicts;
            obs::Count(obs::Counter::kTxnConflicts);
            obs::Emit(obs::EventKind::kTxnAbort,
                      static_cast<uint32_t>(action.session), 1);
          }
          sess.open = false;
          sess.committed_dml.clear();
          committed = true;
          break;
        case StmtKind::kRollback:
          if (mirror_result.ok()) {
            ++out.stats.txn_rollbacks;
            obs::Count(obs::Counter::kTxnRollbacks);
            obs::Emit(obs::EventKind::kTxnAbort,
                      static_cast<uint32_t>(action.session), 0);
          }
          sess.open = false;
          sess.committed_dml.clear();
          break;
        default:  // DML
          if (mirror_result.ok()) {
            if (sess.open) {
              sess.committed_dml.push_back(action.stmt->Clone());
            } else {
              // Autocommit DML is its own committed transaction; the
              // serial model receives it immediately.
              obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
              replay.Execute(*action.stmt);
            }
          }
          break;
      }
      StatementStatus status = engine_result.status;
      std::string error = std::move(engine_result.error);
      stream_log.push_back(std::move(action.stmt));
      if (status == StatementStatus::kUnsupported) {
        out.unsupported_engine = true;
        return out;
      }
      if (status == StatementStatus::kTxnConflict ||
          status == StatementStatus::kConstraintViolation) {
        if (status == StatementStatus::kConstraintViolation) {
          ++out.stats.constraint_violations;
        }
        // A first-committer-wins conflict is expected SI behavior, never
        // a finding; the serial model only ever sees the winner.
      } else if (status == StatementStatus::kError ||
                 status == StatementStatus::kCrash) {
        Finding finding;
        finding.oracle = status == StatementStatus::kError
                             ? OracleKind::kError
                             : OracleKind::kCrash;
        finding.statements = CloneSession(plan, stream_log, nullptr);
        finding.message = error;
        record(std::move(finding));
        break;
      }
      // Committed-state check right after every COMMIT: the strongest
      // point to compare, since the committing session is back in
      // autocommit and reads the latest committed state.
      if (committed && !committed_state_matches()) break;
    }
    if (finding_in_db || out.unsupported_engine) break;

    // Snapshot check: inside a randomly chosen session's view, the engine
    // must agree with the mirror (which replays the identical interleaved
    // stream on a clean engine). Runs *before* the index probe so a
    // dirty-read divergence always attributes to the transaction oracle.
    switch_session(static_cast<int>(rng.Below(static_cast<size_t>(sessions))));
    for (const TableSchema& table : plan.tables) {
      SelectStmt fetch;
      fetch.from_tables = {table.name};
      StatementResult engine_rows = exec_engine(fetch);
      ++out.stats.txn_snapshot_checks;
      if (engine_rows.status == StatementStatus::kUnsupported) {
        out.unsupported_engine = true;
        return out;
      }
      if (!engine_rows.ok()) {
        Finding finding;
        finding.oracle = engine_rows.status == StatementStatus::kCrash
                             ? OracleKind::kCrash
                             : OracleKind::kError;
        finding.statements = CloneSession(plan, stream_log, &fetch);
        finding.message = engine_rows.error;
        record(std::move(finding));
        break;
      }
      StatementResult mirror_rows = exec_mirror(fetch);
      if (!mirror_rows.ok()) continue;  // clean mirror; defensive
      if (!SameRowMultiset(engine_rows.rows, mirror_rows.rows)) {
        Finding finding;
        finding.oracle = OracleKind::kTxnSerial;
        finding.statements = CloneSession(plan, stream_log, &fetch);
        finding.message =
            "session " + std::to_string(current_session) +
            " snapshot of table " + table.name +
            " diverged from the interleaved ground-truth replay: engine "
            "has " +
            std::to_string(engine_rows.rows.size()) + " row(s), reference " +
            std::to_string(mirror_rows.rows.size());
        record(std::move(finding));
        break;
      }
    }
    if (finding_in_db) break;

    // Index probe: an equality lookup on an indexed column. The mirror's
    // rows must be multiset-contained in the engine's — a stale index
    // entry left by a rolled-back transaction makes the engine's indexed
    // scan *miss* rows, while extra rows (a dirty read) never misfire
    // this check.
    if (!probe_cols.empty()) {
      const auto& [probe_table, probe_col] =
          probe_cols[rng.Below(probe_cols.size())];
      const std::vector<std::vector<SqlValue>>* committed_rows =
          replay.TableRows(probe_table);
      const TableSchema* schema = nullptr;
      size_t col_index = 0;
      for (const TableSchema& table : plan.tables) {
        if (table.name != probe_table) continue;
        schema = &table;
        for (size_t c = 0; c < table.columns.size(); ++c) {
          if (table.columns[c].name == probe_col) col_index = c;
        }
      }
      if (schema != nullptr && committed_rows != nullptr &&
          !committed_rows->empty()) {
        const auto& sample =
            (*committed_rows)[rng.Below(committed_rows->size())];
        if (col_index < sample.size()) {
          SelectStmt probe;
          probe.from_tables = {probe_table};
          probe.where =
              MakeBinary(BinaryOp::kEq, MakeColumnRef(probe_table, probe_col),
                         MakeLiteral(sample[col_index]));
          StatementResult engine_rows = exec_engine(probe);
          if (engine_rows.status == StatementStatus::kUnsupported) {
            out.unsupported_engine = true;
            return out;
          }
          if (!engine_rows.ok()) {
            Finding finding;
            finding.oracle = engine_rows.status == StatementStatus::kCrash
                                 ? OracleKind::kCrash
                                 : OracleKind::kError;
            finding.statements = CloneSession(plan, stream_log, &probe);
            finding.message = engine_rows.error;
            record(std::move(finding));
            continue;
          }
          StatementResult mirror_rows = exec_mirror(probe);
          std::vector<SqlValue> missing;
          if (mirror_rows.ok() &&
              !RowsMultisetContained(mirror_rows.rows, engine_rows.rows,
                                     &missing)) {
            Finding finding;
            finding.oracle = OracleKind::kContainment;
            finding.statements = CloneSession(plan, stream_log, &probe);
            finding.pivot = missing;
            finding.message =
                "indexed lookup on " + probe_table + "." + probe_col +
                " dropped committed row(s): engine returned " +
                std::to_string(engine_rows.rows.size()) +
                " row(s), ground-truth replay " +
                std::to_string(mirror_rows.rows.size());
            record(std::move(finding));
          }
        }
      }
    }
  }
  return out;
}

// One iteration of the Algorithm 1+3 loop: build a database from its
// private RNG stream, then pivot-check queries against the oracles. This
// body is what the paper runs in every fuzzing thread; workers execute it
// unchanged and only the merge below is sharding-aware. Runs under an
// installed SessionTelemetry (see the RunOneDatabase wrapper), so engine
// internals emit into this session's registry and flight ring.
DbRunResult RunOneDatabaseImpl(const WorkerEngineFactory& factory, int worker,
                               const RunnerOptions& options,
                               uint64_t db_seed) {
  if (options.gen.txn_sessions > 1) {
    // Interleaved-transaction branch: K sessions, snapshot isolation, and
    // the serial-replay oracle in place of pivot containment.
    return RunTxnDatabase(factory, worker, options, db_seed);
  }
  DbRunResult out;
  Rng rng(db_seed);
  ConnectionPtr conn = factory(worker);
  if (conn == nullptr) {
    out.factory_failed = true;
    return out;
  }
  Dialect dialect = conn->dialect();
  Generator generator(options.gen, dialect);
  DatabasePlan plan;
  {
    obs::ScopedPhase span(obs::Phase::kGenerate);
    plan = generator.GenerateDatabase(&rng);
  }
  ++out.stats.databases_created;

  // Ground truth under mutation (DESIGN §9): a clean MiniDB instance —
  // the reference implementation of the shared interp core — replays
  // every setup and mutation statement alongside the engine under test.
  // At each pivot selection the engine's table contents are compared with
  // the model's as multisets, so a mutation the engine applied wrongly
  // (lost row, ghost row, wrong value) is caught even though the later
  // rectified query can only prove *pivot* containment.
  minidb::Database model(dialect);
  ActionScheduler scheduler(&generator, options.gen, &plan);
  std::vector<StmtPtr> mutation_log;

  bool finding_in_db = false;
  auto record = [&](Finding finding) {
    finding.dialect = dialect;
    finding.seed = options.seed;
    // Provenance: stamp the finding into the flight ring, then ship the
    // ring's contents with the finding. The dump is therefore never empty
    // (it at least holds its own kFindingRecorded marker) and is a pure
    // function of the session seed — worker-count-invariant.
    if (obs::SessionTelemetry* t = obs::CurrentTelemetry()) {
      t->metrics.Count(obs::Counter::kFindingsRecorded);
      t->recorder.Emit(t->clock, obs::EventKind::kFindingRecorded,
                       static_cast<uint32_t>(finding.oracle));
      finding.flight = t->recorder.Dump();
    }
    out.findings.push_back(std::move(finding));
    finding_in_db = true;
  };

  // --- Setup phase: DDL + DML. ---------------------------------------
  size_t setup_done = 0;
  for (const StmtPtr& stmt : plan.statements) {
    StatementResult result;
    {
      obs::ScopedPhase span(obs::Phase::kEngineExecute);
      result = conn->Execute(*stmt);
      obs::CountStatement(static_cast<uint32_t>(stmt->kind()), !result.ok());
    }
    ++out.stats.statements_executed;
    ++setup_done;
    StatementResult model_result;
    {
      obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
      model_result = model.Execute(*stmt);
    }
    scheduler.Observe(*stmt, model_result.ok());
    if (result.status == StatementStatus::kConstraintViolation) {
      ++out.stats.constraint_violations;
      continue;
    }
    if (result.status == StatementStatus::kUnsupported) {
      out.unsupported_engine = true;
      return out;
    }
    if (result.status == StatementStatus::kError ||
        result.status == StatementStatus::kCrash) {
      Finding finding;
      finding.oracle = result.status == StatementStatus::kError
                           ? OracleKind::kError
                           : OracleKind::kCrash;
      finding.statements = CloneLog(plan, setup_done, nullptr);
      finding.message = result.error;
      record(std::move(finding));
      break;
    }
  }
  if (finding_in_db) return out;

  // --- Query phase. ---------------------------------------------------
  for (int q = 0; q < options.queries_per_database && !finding_in_db; ++q) {
    // Mutation phase: the weighted statement stream between pivot checks
    // (DESIGN §9). Every action runs on the engine *and* the ground-truth
    // model; a spurious error or crash is an oracle violation right here.
    for (StmtPtr& action : scheduler.NextBatch(&rng)) {
      StatementResult engine_result;
      {
        obs::ScopedPhase span(obs::Phase::kEngineExecute);
        engine_result = conn->Execute(*action);
        obs::CountStatement(static_cast<uint32_t>(action->kind()),
                            !engine_result.ok());
      }
      ++out.stats.statements_executed;
      TallyAction(*action, &out.stats);
      StatementResult model_result;
      {
        obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
        model_result = model.Execute(*action);
      }
      scheduler.Observe(*action, model_result.ok());
      StatementStatus status = engine_result.status;
      std::string error = std::move(engine_result.error);
      mutation_log.push_back(std::move(action));
      if (status == StatementStatus::kUnsupported) {
        out.unsupported_engine = true;
        return out;
      }
      if (status == StatementStatus::kConstraintViolation) {
        ++out.stats.constraint_violations;
        continue;
      }
      if (status == StatementStatus::kError ||
          status == StatementStatus::kCrash) {
        Finding finding;
        finding.oracle = status == StatementStatus::kError
                             ? OracleKind::kError
                             : OracleKind::kCrash;
        // The triggering mutation is already the log's last statement.
        finding.statements = CloneSession(plan, mutation_log, nullptr);
        finding.message = error;
        record(std::move(finding));
        break;
      }
    }
    if (finding_in_db) break;

    if (options.family == OracleFamily::kNorec ||
        options.family == OracleFamily::kTlp) {
      // Metamorphic check: one random table. The ground-truth state
      // comparison stays on as for containment — a mutation the engine
      // lost is caught before it can masquerade as a metamorphic
      // mismatch — then the family's transformed queries run in place of
      // the pivot-containment query.
      const TableSchema& table = plan.tables[rng.Below(plan.tables.size())];
      SelectStmt fetch;
      fetch.from_tables = {table.name};
      StatementResult rows;
      {
        obs::ScopedPhase span(obs::Phase::kEngineExecute);
        rows = conn->Execute(fetch);
        obs::CountStatement(static_cast<uint32_t>(StmtKind::kSelect),
                            !rows.ok());
      }
      ++out.stats.statements_executed;
      if (rows.status == StatementStatus::kUnsupported) {
        out.unsupported_engine = true;
        return out;
      }
      if (!rows.ok()) {
        Finding finding;
        finding.oracle = rows.status == StatementStatus::kCrash
                             ? OracleKind::kCrash
                             : OracleKind::kError;
        finding.statements = CloneSession(plan, mutation_log, &fetch);
        finding.message = rows.error;
        record(std::move(finding));
        break;
      }
      // The model is a concrete clean MiniDB, so the state comparison can
      // read its stored rows directly — the same multiset a bare SELECT *
      // through Execute would return, without the query machinery.
      const std::vector<std::vector<SqlValue>>* model_rows =
          model.TableRows(table.name);
      ++out.stats.state_compares;
      bool state_diverged;
      {
        obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
        state_diverged = model_rows != nullptr &&
                         !SameRowMultiset(rows.rows, *model_rows);
      }
      if (state_diverged) {
        Finding finding;
        finding.oracle = OracleKind::kContainment;
        finding.statements = CloneSession(plan, mutation_log, &fetch);
        finding.message =
            "table " + table.name +
            " diverged from the ground-truth mutation replay: engine has " +
            std::to_string(rows.rows.size()) + " row(s), reference " +
            std::to_string(model_rows->size());
        record(std::move(finding));
        break;
      }

      std::vector<const TableSchema*> single{&table};
      ExprPtr predicate;
      {
        obs::ScopedPhase span(obs::Phase::kGenerate);
        predicate = generator.GeneratePredicate(single, &rng);
        if (options.family == OracleFamily::kNorec) {
          // NoREC's optimized side engages the planner; the partial-index
          // probe keeps the partial-index scan paths reachable there too.
          if (ExprPtr probe =
                  scheduler.MaybePartialIndexProbe(table.name, &rng)) {
            predicate = MakeBinary(BinaryOp::kAnd, std::move(probe),
                                   std::move(predicate));
          }
        }
      }
      int meta_depth = predicate->Depth();
      ++out.stats.predicate_depth_buckets[ExprDepthBucket(meta_depth)];
      size_t meta_calls = predicate->CountKind(ExprKind::kFunctionCall);
      out.stats.function_calls_generated += meta_calls;
      if (meta_calls > 0) ++out.stats.predicates_with_function;

      sqlmeta::MetaOutcome outcome;
      OracleKind mismatch_oracle = OracleKind::kNorec;
      if (options.family == OracleFamily::kNorec) {
        obs::ScopedPhase span(obs::Phase::kOracleCheck);
        outcome = sqlmeta::RunNorecCheck(*conn, table.name, *predicate);
      } else {
        mismatch_oracle = OracleKind::kTlp;
        std::unique_ptr<SelectStmt> full;
        {
          obs::ScopedPhase span(obs::Phase::kGenerate);
          if (rng.Chance(options.gen.tlp_rows_shape_probability)) {
            // Plain row-set shape: SELECT * recombined by multiset union.
            full = std::make_unique<SelectStmt>();
            full->from_tables.push_back(table.name);
          } else {
            full = generator.GenerateAggregateQuery(table, &rng);
          }
        }
        if (full->HasAggregates()) {
          ++out.stats.aggregate_queries;
          if (!full->group_by.empty()) ++out.stats.group_by_queries;
          if (full->having != nullptr) ++out.stats.having_queries;
        }
        obs::ScopedPhase span(obs::Phase::kOracleCheck);
        outcome = sqlmeta::RunTlpCheck(*conn, *full, *predicate);
      }
      out.stats.statements_executed += outcome.executed.size();
      if (outcome.verdict == sqlmeta::MetaVerdict::kSkipped) {
        ++out.stats.queries_skipped;
        continue;
      }
      if (outcome.verdict == sqlmeta::MetaVerdict::kUnsupported) {
        out.unsupported_engine = true;
        return out;
      }
      ++out.stats.queries_checked;
      obs::Emit(obs::EventKind::kOracleCheck,
                static_cast<uint32_t>(mismatch_oracle),
                outcome.verdict != sqlmeta::MetaVerdict::kOk ? 1u : 0u);
      if (options.family == OracleFamily::kNorec) {
        ++out.stats.norec_checks;
      } else {
        ++out.stats.tlp_checks;
        size_t executed = outcome.executed.size();
        out.stats.tlp_partition_queries += executed > 3 ? 3 : executed;
      }
      if (outcome.verdict == sqlmeta::MetaVerdict::kOk) continue;
      Finding finding;
      if (outcome.verdict == sqlmeta::MetaVerdict::kMismatch) {
        finding.oracle = mismatch_oracle;
      } else if (outcome.verdict == sqlmeta::MetaVerdict::kEngineCrash) {
        finding.oracle = OracleKind::kCrash;
      } else {
        finding.oracle = OracleKind::kError;
      }
      // The replayable session plus every transformed query the check ran;
      // the query that decided the verdict is last.
      finding.statements = CloneSession(plan, mutation_log, nullptr);
      for (StmtPtr& s : outcome.executed) {
        finding.statements.push_back(std::move(s));
      }
      finding.message = outcome.message;
      record(std::move(finding));
      break;
    }

    QueryShape shape;
    {
      obs::ScopedPhase span(obs::Phase::kGenerate);
      shape = generator.GenerateQueryShape(plan, &rng);
    }
    const std::vector<const TableSchema*>& from = shape.tables;

    // Pivot selection through the Connection API: fetch each FROM
    // table's rows and pick one at random (paper §3.2 step 2 — re-run
    // after every mutation batch, so the pivot is always re-selected from
    // the mutated state). The full rowsets are retained: the LIMIT bound
    // below recomputes the query on them under reference semantics.
    RowSchema pivot_schema;
    std::vector<SqlValue> pivot;
    std::vector<std::vector<std::vector<SqlValue>>> table_rows;
    bool have_pivot = true;
    for (const TableSchema* table : from) {
      SelectStmt fetch;
      fetch.from_tables = {table->name};
      StatementResult rows;
      {
        obs::ScopedPhase span(obs::Phase::kEngineExecute);
        rows = conn->Execute(fetch);
        obs::CountStatement(static_cast<uint32_t>(StmtKind::kSelect),
                            !rows.ok());
      }
      ++out.stats.statements_executed;
      if (rows.status == StatementStatus::kUnsupported) {
        out.unsupported_engine = true;
        return out;
      }
      if (rows.status == StatementStatus::kError ||
          rows.status == StatementStatus::kCrash ||
          rows.status == StatementStatus::kConstraintViolation) {
        Finding finding;
        finding.oracle = rows.status == StatementStatus::kCrash
                             ? OracleKind::kCrash
                             : OracleKind::kError;
        finding.statements = CloneSession(plan, mutation_log, &fetch);
        finding.message = rows.error;
        record(std::move(finding));
        have_pivot = false;
        break;
      }
      // Ground-truth state comparison: after replaying the same mutations
      // through the shared interp core, the engine's table must hold
      // exactly the model's rows. This is what keeps containment exact
      // under UPDATE/DELETE — a wrongly-deleted row could otherwise never
      // be picked as a pivot and would go unnoticed.
      const std::vector<std::vector<SqlValue>>* model_rows =
          model.TableRows(table->name);
      ++out.stats.state_compares;
      bool state_diverged;
      {
        obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
        state_diverged = model_rows != nullptr &&
                         !SameRowMultiset(rows.rows, *model_rows);
      }
      if (state_diverged) {
        Finding finding;
        finding.oracle = OracleKind::kContainment;
        finding.statements = CloneSession(plan, mutation_log, &fetch);
        // The pivot is the first ground-truth row the engine lost (empty
        // when the engine instead has rows the model does not).
        for (const auto& model_row : *model_rows) {
          bool present = false;
          for (const auto& engine_row : rows.rows) {
            if (engine_row.size() == model_row.size()) {
              bool equal = true;
              for (size_t c = 0; c < model_row.size(); ++c) {
                if (!ValueEquals(engine_row[c], model_row[c])) {
                  equal = false;
                  break;
                }
              }
              if (equal) present = true;
            }
            if (present) break;
          }
          if (!present) {
            finding.pivot = model_row;
            break;
          }
        }
        finding.message =
            "table " + table->name +
            " diverged from the ground-truth mutation replay: engine has " +
            std::to_string(rows.rows.size()) + " row(s), reference " +
            std::to_string(model_rows->size());
        record(std::move(finding));
        have_pivot = false;
        break;
      }
      if (rows.rows.empty()) {
        have_pivot = false;  // empty after rejections or deletes
        ++out.stats.queries_skipped;
        break;
      }
      table_rows.push_back(std::move(rows.rows));
      obs::PivotSelected(static_cast<uint32_t>(table_rows.size() - 1),
                         static_cast<uint32_t>(table_rows.back().size()));
      const auto& row = table_rows.back()[rng.Below(table_rows.back().size())];
      for (size_t c = 0; c < table->columns.size() && c < row.size(); ++c) {
        pivot_schema.cols.emplace_back(table->name, table->columns[c].name);
        pivot.push_back(row[c]);
      }
    }
    if (!have_pivot) continue;

    EvalContext ground_truth{dialect, nullptr};
    RowView pivot_view{&pivot_schema, &pivot};

    // Join plan: generate each explicit ON condition and rectify it to
    // TRUE on the pivot (join-aware Algorithm 3), so the multi-table pivot
    // combination survives every INNER/LEFT step un-padded. With
    // rectification ablated the raw ON is used (and, as with WHERE, the
    // containment check is skipped).
    std::vector<JoinClause> joins;
    bool shape_ok = true;
    for (size_t j = 0; j < shape.join_kinds.size(); ++j) {
      JoinClause clause;
      clause.kind = shape.join_kinds[j];
      clause.table = from[j + 1]->name;
      if (clause.kind != JoinKind::kCross) {
        std::vector<const TableSchema*> earlier(from.begin(),
                                                from.begin() + j + 1);
        ExprPtr on;
        {
          obs::ScopedPhase span(obs::Phase::kGenerate);
          on = generator.GenerateJoinCondition(earlier, from[j + 1], &rng);
        }
        // Covers the ON evaluation on the pivot and the rectifying wrap.
        obs::ScopedPhase rectify_span(obs::Phase::kRectify);
        bool on_error = false;
        Bool3 raw_on =
            EvaluatePredicate(*on, pivot_view, ground_truth, &on_error);
        if (on_error) {
          shape_ok = false;  // generator statically prevents this
          break;
        }
        if (options.gen.rectify) {
          clause.on = RectifyToTrue(std::move(on), raw_on);
          ++out.stats.join_conditions_rectified;
        } else {
          clause.on = std::move(on);
        }
      }
      joins.push_back(std::move(clause));
    }
    if (!shape_ok) {
      ++out.stats.queries_skipped;
      continue;
    }

    ExprPtr predicate;
    {
      obs::ScopedPhase span(obs::Phase::kGenerate);
      predicate = generator.GeneratePredicate(from, &rng);

      // Partial-index probe: sometimes AND a live partial index's predicate
      // in front of the WHERE, making the partial-index scan planner
      // reachable. Rectification leaves the conjunct intact exactly when
      // the raw composite is TRUE on the pivot (the other branches wrap
      // the whole expression, and the planner then simply falls back to a
      // full scan — sound either way).
      if (ExprPtr probe =
              scheduler.MaybePartialIndexProbe(from[0]->name, &rng)) {
        predicate = MakeBinary(BinaryOp::kAnd, std::move(probe),
                               std::move(predicate));
      }
    }

    // Algorithm 3: evaluate the raw predicate on the pivot with
    // reference semantics, tally the branch, and rectify to TRUE.
    bool eval_error = false;
    Bool3 raw;
    {
      obs::ScopedPhase span(obs::Phase::kRectify);
      raw = EvaluatePredicate(*predicate, pivot_view, ground_truth,
                              &eval_error);
    }
    if (eval_error) {
      // The generator statically prevents this; defensive skip.
      ++out.stats.queries_skipped;
      continue;
    }
    // Typed-expression stats: generated-predicate depth histogram and
    // function-call tallies (surfaced through bench_figure3).
    int depth = predicate->Depth();
    ++out.stats.predicate_depth_buckets[ExprDepthBucket(depth)];
    size_t calls = predicate->CountKind(ExprKind::kFunctionCall);
    out.stats.function_calls_generated += calls;
    if (calls > 0) ++out.stats.predicates_with_function;

    // The raw outcome is tallied in both modes (the ablation bench
    // prints it either way); rectification additionally wraps the
    // predicate so it is TRUE on the pivot.
    switch (raw) {
      case Bool3::kTrue:
        ++out.stats.rectified_true;
        break;
      case Bool3::kFalse:
        ++out.stats.rectified_false;
        break;
      case Bool3::kNull:
        ++out.stats.rectified_null;
        break;
    }
    ExprPtr where;
    {
      obs::ScopedPhase span(obs::Phase::kRectify);
      where = options.gen.rectify ? RectifyToTrue(std::move(predicate), raw)
                                  : std::move(predicate);
    }

    SelectStmt query;
    query.distinct = shape.distinct;
    if (!joins.empty()) {
      query.from_tables.push_back(from[0]->name);
      query.joins = std::move(joins);
    } else {
      for (const TableSchema* table : from) {
        query.from_tables.push_back(table->name);
      }
    }
    query.where = std::move(where);
    query.order_by = std::move(shape.order_by);

    // LIMIT: only attached with a provably pivot-safe bound (worst-case
    // ordered rank of the pivot, or the whole result when unordered),
    // sometimes with slack so non-binding limits are exercised too.
    if (shape.want_limit && options.gen.rectify) {
      int64_t rank = 0;
      bool rank_ok;
      {
        // The rank bound reruns the query under reference semantics — the
        // same work the ground-truth model does, so it profiles there.
        obs::ScopedPhase span(obs::Phase::kGroundTruthReplay);
        rank_ok = PivotWorstCaseRank(query, from, table_rows, pivot_schema,
                                     pivot, ground_truth, &rank);
      }
      if (!rank_ok) {
        ++out.stats.queries_skipped;
        continue;
      }
      query.limit =
          rank + (rng.Chance(0.5) ? 0 : static_cast<int64_t>(rng.Below(4)));
      ++out.stats.limited_queries;
    }

    StatementResult result;
    {
      obs::ScopedPhase span(obs::Phase::kEngineExecute);
      result = conn->Execute(query);
      obs::CountStatement(static_cast<uint32_t>(StmtKind::kSelect),
                          !result.ok());
    }
    ++out.stats.statements_executed;
    ++out.stats.queries_checked;
    if (result.status == StatementStatus::kUnsupported) {
      out.unsupported_engine = true;
      return out;
    }
    if (result.status == StatementStatus::kCrash) {
      Finding finding;
      finding.oracle = OracleKind::kCrash;
      finding.statements = CloneSession(plan, mutation_log, &query);
      finding.message = result.error;
      record(std::move(finding));
      break;
    }
    if (result.status == StatementStatus::kError ||
        result.status == StatementStatus::kConstraintViolation) {
      Finding finding;
      finding.oracle = OracleKind::kError;
      finding.statements = CloneSession(plan, mutation_log, &query);
      finding.message = result.error;
      record(std::move(finding));
      break;
    }
    bool contains = true;
    if (options.gen.rectify) {
      obs::ScopedPhase span(obs::Phase::kOracleCheck);
      contains = ResultContainsRow(result, pivot);
      obs::Emit(obs::EventKind::kOracleCheck,
                static_cast<uint32_t>(OracleKind::kContainment),
                contains ? 0u : 1u);
    }
    if (options.gen.rectify && !contains) {
      Finding finding;
      finding.oracle = OracleKind::kContainment;
      finding.statements = CloneSession(plan, mutation_log, &query);
      finding.pivot = pivot;
      std::string row_text;
      for (const SqlValue& v : pivot) {
        if (!row_text.empty()) row_text += ", ";
        row_text += v.ToDisplay();
      }
      finding.message = "pivot row (" + row_text +
                        ") missing from a rectified query's result of " +
                        std::to_string(result.rows.size()) + " rows";
      record(std::move(finding));
      break;
    }
  }
  return out;
}

// Telemetry wrapper around the Algorithm 1+3 body: installs a fresh
// per-session telemetry context (registry + flight ring) for the duration
// of the session and harvests the registry into the result. When the kill
// switch is off, installation leaves the thread-local slot null and every
// emit in the body is a single predictable branch.
DbRunResult RunOneDatabase(const WorkerEngineFactory& factory, int worker,
                           const RunnerOptions& options, uint64_t db_seed) {
  obs::SessionTelemetry session;
  DbRunResult out;
  {
    obs::ScopedSessionTelemetry install(&session);
    out = RunOneDatabaseImpl(factory, worker, options, db_seed);
  }
  session.metrics.GaugeMax(obs::Gauge::kMaxFlightEvents,
                           session.recorder.total_emitted());
  out.metrics = session.metrics;
  return out;
}

// Folds one database's result into the report, in plan order. Returns
// false when the run terminates at this database: a null factory ends the
// run before it (sequential `break`), an unsupported engine ends it after
// its partial stats (sequential early `return`), and under
// stop_on_first_finding the first database carrying a finding is the last
// one reported.
bool MergeDbResult(DbRunResult&& r, bool stop_on_first_finding,
                   RunReport* report) {
  if (r.factory_failed) return false;
  report->stats.Merge(r.stats);
  report->metrics.Merge(r.metrics);
  bool had_finding = !r.findings.empty();
  for (Finding& f : r.findings) report->findings.push_back(std::move(f));
  if (r.unsupported_engine) {
    report->unsupported_engine = true;
    return false;
  }
  return !(stop_on_first_finding && had_finding);
}

// True when databases after this one can never reach the merged report.
bool TerminatesRun(const DbRunResult& r, bool stop_on_first_finding) {
  return r.factory_failed || r.unsupported_engine ||
         (stop_on_first_finding && !r.findings.empty());
}

// Runs one plan task, timing the whole session for the latency hook. The
// clock is only read when a hook is installed, so unhooked runs pay
// nothing; the hook cannot change the result, so reports stay
// byte-identical either way.
DbRunResult RunTask(const WorkerEngineFactory& factory, int worker,
                    const RunnerOptions& options,
                    const ShardPlan::Task& task) {
  if (!options.session_latency_hook) {
    return RunOneDatabase(factory, worker, options, task.seed);
  }
  auto start = std::chrono::steady_clock::now();
  DbRunResult r = RunOneDatabase(factory, worker, options, task.seed);
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  options.session_latency_hook(task.db_index, elapsed.count());
  return r;
}

}  // namespace

void RunStats::Merge(const RunStats& other) {
  statements_executed += other.statements_executed;
  queries_checked += other.queries_checked;
  queries_skipped += other.queries_skipped;
  databases_created += other.databases_created;
  rectified_true += other.rectified_true;
  rectified_false += other.rectified_false;
  rectified_null += other.rectified_null;
  constraint_violations += other.constraint_violations;
  join_conditions_rectified += other.join_conditions_rectified;
  limited_queries += other.limited_queries;
  norec_checks += other.norec_checks;
  tlp_checks += other.tlp_checks;
  tlp_partition_queries += other.tlp_partition_queries;
  aggregate_queries += other.aggregate_queries;
  group_by_queries += other.group_by_queries;
  having_queries += other.having_queries;
  actions_insert += other.actions_insert;
  actions_update += other.actions_update;
  actions_delete += other.actions_delete;
  actions_create_index += other.actions_create_index;
  actions_drop_index += other.actions_drop_index;
  actions_maintenance += other.actions_maintenance;
  state_compares += other.state_compares;
  txn_begins += other.txn_begins;
  txn_commits += other.txn_commits;
  txn_rollbacks += other.txn_rollbacks;
  txn_conflicts += other.txn_conflicts;
  txn_snapshot_checks += other.txn_snapshot_checks;
  txn_serial_replays += other.txn_serial_replays;
  for (int i = 0; i < kDepthBuckets; ++i) {
    predicate_depth_buckets[i] += other.predicate_depth_buckets[i];
  }
  predicates_with_function += other.predicates_with_function;
  function_calls_generated += other.function_calls_generated;
}

ShardPlan ShardPlan::Build(uint64_t seed, int databases) {
  ShardPlan plan;
  plan.tasks.reserve(databases > 0 ? static_cast<size_t>(databases) : 0);
  for (int i = 0; i < databases; ++i) {
    plan.tasks.push_back(
        Task{i, Rng::StreamSeed(seed, static_cast<uint64_t>(i))});
  }
  return plan;
}

PqsRunner::PqsRunner(EngineFactory factory, RunnerOptions options)
    : factory_([f = std::move(factory)](int) { return f(); }),
      options_(options) {}

PqsRunner::PqsRunner(WorkerEngineFactory factory, RunnerOptions options)
    : factory_(std::move(factory)), options_(options) {}

RunReport PqsRunner::Run() {
  RunReport report;
  // Fail loudly on out-of-range generator options (a negative depth or a
  // probability outside [0,1] would otherwise skew generation silently).
  report.invalid_options = options_.gen.Validate();
  if (!report.invalid_options.empty()) return report;
  ShardPlan plan = ShardPlan::Build(options_.seed, options_.databases);
  size_t task_count = plan.tasks.size();
  int workers = options_.workers;
  if (workers < 1) workers = 1;
  if (static_cast<size_t>(workers) > task_count && task_count > 0) {
    workers = static_cast<int>(task_count);
  }

  if (workers <= 1) {
    // Inline path: identical to the classic sequential loop, including the
    // early exits (no database beyond a terminating one is ever run).
    for (const ShardPlan::Task& task : plan.tasks) {
      DbRunResult r = RunTask(factory_, 0, options_, task);
      if (!MergeDbResult(std::move(r), options_.stop_on_first_finding,
                         &report)) {
        break;
      }
    }
    return report;
  }

  // Sharded path: workers claim database indexes in plan order. Claiming is
  // dynamic (timing-dependent) but each database's work depends only on its
  // plan seed, so who ran it cannot change what it produced. `stop_before`
  // is the lowest index known to terminate the run; databases after it are
  // skipped as wasted work, and any that already ran are discarded by the
  // in-order merge below, which keeps the merged report byte-identical to
  // the 1-worker run.
  std::vector<DbRunResult> results(task_count);
  std::atomic<size_t> next_task{0};
  std::atomic<size_t> stop_before{task_count};
  bool stop_on_first = options_.stop_on_first_finding;

  auto worker_main = [&](int worker_index) {
    for (;;) {
      size_t i = next_task.fetch_add(1, std::memory_order_relaxed);
      if (i >= task_count) break;
      if (i > stop_before.load(std::memory_order_acquire)) break;
      results[i] = RunTask(factory_, worker_index, options_, plan.tasks[i]);
      if (TerminatesRun(results[i], stop_on_first)) {
        size_t current = stop_before.load(std::memory_order_relaxed);
        while (i < current && !stop_before.compare_exchange_weak(
                                  current, i, std::memory_order_release)) {
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_main, w);
  for (std::thread& t : threads) t.join();

  for (size_t i = 0; i < task_count; ++i) {
    if (!MergeDbResult(std::move(results[i]),
                       options_.stop_on_first_finding, &report)) {
      break;
    }
  }
  return report;
}

}  // namespace pqs
