#include "src/pqs/runner.h"

#include <memory>
#include <utility>

#include "src/common/rng.h"
#include "src/interp/eval.h"

namespace pqs {

namespace {

// Clones the first `count` statements of `plan` (the setup prefix executed
// so far), optionally appending `last`. Only called when a finding is
// recorded, so the common path never copies ASTs.
std::vector<StmtPtr> CloneLog(const DatabasePlan& plan, size_t count,
                              const Stmt* last) {
  std::vector<StmtPtr> out;
  out.reserve(count + 1);
  for (size_t i = 0; i < count && i < plan.statements.size(); ++i) {
    out.push_back(plan.statements[i]->Clone());
  }
  if (last != nullptr) out.push_back(last->Clone());
  return out;
}

}  // namespace

PqsRunner::PqsRunner(EngineFactory factory, RunnerOptions options)
    : factory_(std::move(factory)), options_(options) {}

RunReport PqsRunner::Run() {
  RunReport report;
  Rng master(options_.seed);

  for (int db_index = 0; db_index < options_.databases; ++db_index) {
    // One independent stream per database: the number of random draws one
    // database consumes never shifts the next database's choices.
    Rng rng = master.Fork();
    ConnectionPtr conn = factory_();
    if (conn == nullptr) break;
    Dialect dialect = conn->dialect();
    Generator generator(options_.gen, dialect);
    DatabasePlan plan = generator.GenerateDatabase(&rng);
    ++report.stats.databases_created;

    bool finding_in_db = false;
    auto record = [&](Finding finding) {
      finding.dialect = dialect;
      finding.seed = options_.seed;
      report.findings.push_back(std::move(finding));
      finding_in_db = true;
    };

    // --- Setup phase: DDL + DML. ---------------------------------------
    size_t setup_done = 0;
    for (const StmtPtr& stmt : plan.statements) {
      StatementResult result = conn->Execute(*stmt);
      ++report.stats.statements_executed;
      ++setup_done;
      if (result.status == StatementStatus::kConstraintViolation) {
        ++report.stats.constraint_violations;
        continue;
      }
      if (result.status == StatementStatus::kUnsupported) {
        report.unsupported_engine = true;
        return report;
      }
      if (result.status == StatementStatus::kError ||
          result.status == StatementStatus::kCrash) {
        Finding finding;
        finding.oracle = result.status == StatementStatus::kError
                             ? OracleKind::kError
                             : OracleKind::kCrash;
        finding.statements = CloneLog(plan, setup_done, nullptr);
        finding.message = result.error;
        record(std::move(finding));
        break;
      }
    }
    if (finding_in_db) {
      if (options_.stop_on_first_finding) return report;
      continue;
    }

    // --- Query phase. ---------------------------------------------------
    for (int q = 0; q < options_.queries_per_database && !finding_in_db;
         ++q) {
      std::vector<const TableSchema*> from =
          generator.PickFromTables(plan, &rng);

      // Pivot selection through the Connection API: fetch each FROM
      // table's rows and pick one at random (paper §3.2 step 2).
      RowSchema pivot_schema;
      std::vector<SqlValue> pivot;
      bool have_pivot = true;
      for (const TableSchema* table : from) {
        SelectStmt fetch;
        fetch.from_tables = {table->name};
        StatementResult rows = conn->Execute(fetch);
        ++report.stats.statements_executed;
        if (rows.status == StatementStatus::kUnsupported) {
          report.unsupported_engine = true;
          return report;
        }
        if (rows.status == StatementStatus::kError ||
            rows.status == StatementStatus::kCrash ||
            rows.status == StatementStatus::kConstraintViolation) {
          Finding finding;
          finding.oracle = rows.status == StatementStatus::kCrash
                               ? OracleKind::kCrash
                               : OracleKind::kError;
          finding.statements =
              CloneLog(plan, plan.statements.size(), &fetch);
          finding.message = rows.error;
          record(std::move(finding));
          have_pivot = false;
          break;
        }
        if (rows.rows.empty()) {
          have_pivot = false;  // all inserts into this table were rejected
          ++report.stats.queries_skipped;
          break;
        }
        const auto& row = rows.rows[rng.Below(rows.rows.size())];
        for (size_t c = 0; c < table->columns.size() && c < row.size();
             ++c) {
          pivot_schema.cols.emplace_back(table->name,
                                         table->columns[c].name);
          pivot.push_back(row[c]);
        }
      }
      if (!have_pivot) continue;

      ExprPtr predicate = generator.GeneratePredicate(from, &rng);

      // Algorithm 3: evaluate the raw predicate on the pivot with
      // reference semantics, tally the branch, and rectify to TRUE.
      EvalContext ground_truth{dialect, nullptr};
      RowView pivot_view{&pivot_schema, &pivot};
      bool eval_error = false;
      Bool3 raw =
          EvaluatePredicate(*predicate, pivot_view, ground_truth,
                            &eval_error);
      if (eval_error) {
        // The generator statically prevents this; defensive skip.
        ++report.stats.queries_skipped;
        continue;
      }
      // The raw outcome is tallied in both modes (the ablation bench
      // prints it either way); rectification additionally wraps the
      // predicate so it is TRUE on the pivot.
      switch (raw) {
        case Bool3::kTrue:
          ++report.stats.rectified_true;
          break;
        case Bool3::kFalse:
          ++report.stats.rectified_false;
          break;
        case Bool3::kNull:
          ++report.stats.rectified_null;
          break;
      }
      ExprPtr where;
      if (!options_.gen.rectify || raw == Bool3::kTrue) {
        where = std::move(predicate);
      } else if (raw == Bool3::kFalse) {
        where = MakeUnary(UnaryOp::kNot, std::move(predicate));
      } else {
        where = MakeIsNull(std::move(predicate), /*negated=*/false);
      }

      SelectStmt query;
      for (const TableSchema* table : from) {
        query.from_tables.push_back(table->name);
      }
      query.where = std::move(where);

      StatementResult result = conn->Execute(query);
      ++report.stats.statements_executed;
      ++report.stats.queries_checked;
      if (result.status == StatementStatus::kUnsupported) {
        report.unsupported_engine = true;
        return report;
      }
      if (result.status == StatementStatus::kCrash) {
        Finding finding;
        finding.oracle = OracleKind::kCrash;
        finding.statements = CloneLog(plan, plan.statements.size(), &query);
        finding.message = result.error;
        record(std::move(finding));
        break;
      }
      if (result.status == StatementStatus::kError ||
          result.status == StatementStatus::kConstraintViolation) {
        Finding finding;
        finding.oracle = OracleKind::kError;
        finding.statements = CloneLog(plan, plan.statements.size(), &query);
        finding.message = result.error;
        record(std::move(finding));
        break;
      }
      if (options_.gen.rectify && !ResultContainsRow(result, pivot)) {
        Finding finding;
        finding.oracle = OracleKind::kContainment;
        finding.statements = CloneLog(plan, plan.statements.size(), &query);
        finding.pivot = pivot;
        std::string row_text;
        for (const SqlValue& v : pivot) {
          if (!row_text.empty()) row_text += ", ";
          row_text += v.ToDisplay();
        }
        finding.message = "pivot row (" + row_text +
                          ") missing from a rectified query's result of " +
                          std::to_string(result.rows.size()) + " rows";
        record(std::move(finding));
        break;
      }
    }

    if (finding_in_db && options_.stop_on_first_finding) return report;
  }
  return report;
}

}  // namespace pqs
