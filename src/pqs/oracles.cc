#include "src/pqs/oracles.h"

#include "src/sqlstmt/stmt.h"

namespace pqs {

const char* OracleName(OracleKind kind) {
  switch (kind) {
    case OracleKind::kContainment:
      return "contains";
    case OracleKind::kError:
      return "error";
    case OracleKind::kCrash:
      return "crash";
    case OracleKind::kNorec:
      return "norec";
    case OracleKind::kTlp:
      return "tlp";
    case OracleKind::kTxnSerial:
      return "txn-serial";
  }
  return "?";
}

const char* OracleFamilyName(OracleFamily family) {
  switch (family) {
    case OracleFamily::kAuto:
      return "auto";
    case OracleFamily::kContainment:
      return "containment";
    case OracleFamily::kNorec:
      return "norec";
    case OracleFamily::kTlp:
      return "tlp";
  }
  return "?";
}

OracleFamily FamilyForOracle(OracleKind kind) {
  switch (kind) {
    case OracleKind::kNorec:
      return OracleFamily::kNorec;
    case OracleKind::kTlp:
      return OracleFamily::kTlp;
    default:
      return OracleFamily::kContainment;
  }
}

Finding Finding::Clone() const {
  Finding out;
  out.oracle = oracle;
  out.dialect = dialect;
  out.statements.reserve(statements.size());
  for (const StmtPtr& s : statements) {
    out.statements.push_back(s ? s->Clone() : nullptr);
  }
  out.pivot = pivot;
  out.message = message;
  out.seed = seed;
  out.flight = flight;
  return out;
}

bool ResultContainsRow(const StatementResult& result,
                       const std::vector<SqlValue>& pivot) {
  for (const auto& row : result.rows) {
    if (row.size() != pivot.size()) continue;
    bool match = true;
    for (size_t i = 0; i < row.size(); ++i) {
      if (!ValueEquals(row[i], pivot[i])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

void AggregateStats::Add(const TestCaseStats& tc) {
  ++total_cases;
  loc_values.push_back(tc.statement_count);
  for (const std::string& category : tc.categories) {
    ++per_category[category].test_cases_containing;
  }
  if (!tc.trigger_category.empty() && !tc.oracle_name.empty()) {
    ++per_category[tc.trigger_category].trigger_by_oracle[tc.oracle_name];
  }
  with_unique += tc.has_unique ? 1 : 0;
  with_primary_key += tc.has_primary_key ? 1 : 0;
  with_create_index += tc.has_create_index ? 1 : 0;
  single_table += tc.single_table ? 1 : 0;
  with_explicit_join += tc.has_explicit_join ? 1 : 0;
  with_left_join += tc.has_left_join ? 1 : 0;
  with_distinct += tc.has_distinct ? 1 : 0;
  with_order_by += tc.has_order_by ? 1 : 0;
  with_limit += tc.has_limit ? 1 : 0;
  with_function_call += tc.has_function_call ? 1 : 0;
  with_cast += tc.has_cast ? 1 : 0;
  with_case += tc.has_case ? 1 : 0;
  with_collate += tc.has_collate ? 1 : 0;
  if (tc.max_expr_depth > max_expr_depth) {
    max_expr_depth = tc.max_expr_depth;
  }
  with_update += tc.has_update ? 1 : 0;
  with_delete += tc.has_delete ? 1 : 0;
  with_drop_index += tc.has_drop_index ? 1 : 0;
  with_maintenance += tc.has_maintenance ? 1 : 0;
  with_aggregate += tc.has_aggregate ? 1 : 0;
  with_group_by += tc.has_group_by ? 1 : 0;
  with_having += tc.has_having ? 1 : 0;
  with_transaction += tc.has_transaction ? 1 : 0;
}

void AggregateStats::Merge(const AggregateStats& other) {
  total_cases += other.total_cases;
  loc_values.insert(loc_values.end(), other.loc_values.begin(),
                    other.loc_values.end());
  for (const auto& [category, stat] : other.per_category) {
    CategoryStat& mine = per_category[category];
    mine.test_cases_containing += stat.test_cases_containing;
    for (const auto& [oracle, count] : stat.trigger_by_oracle) {
      mine.trigger_by_oracle[oracle] += count;
    }
  }
  with_unique += other.with_unique;
  with_primary_key += other.with_primary_key;
  with_create_index += other.with_create_index;
  single_table += other.single_table;
  with_explicit_join += other.with_explicit_join;
  with_left_join += other.with_left_join;
  with_distinct += other.with_distinct;
  with_order_by += other.with_order_by;
  with_limit += other.with_limit;
  with_function_call += other.with_function_call;
  with_cast += other.with_cast;
  with_case += other.with_case;
  with_collate += other.with_collate;
  if (other.max_expr_depth > max_expr_depth) {
    max_expr_depth = other.max_expr_depth;
  }
  with_update += other.with_update;
  with_delete += other.with_delete;
  with_drop_index += other.with_drop_index;
  with_maintenance += other.with_maintenance;
  with_aggregate += other.with_aggregate;
  with_group_by += other.with_group_by;
  with_having += other.with_having;
  with_transaction += other.with_transaction;
}

double AggregateStats::AverageLoc() const {
  if (loc_values.empty()) return 0.0;
  size_t sum = 0;
  for (size_t v : loc_values) sum += v;
  return static_cast<double>(sum) / static_cast<double>(loc_values.size());
}

size_t AggregateStats::MaxLoc() const {
  size_t max = 0;
  for (size_t v : loc_values) max = v > max ? v : max;
  return max;
}

double AggregateStats::CdfAt(size_t loc) const {
  if (loc_values.empty()) return 0.0;
  size_t below = 0;
  for (size_t v : loc_values) below += v <= loc ? 1 : 0;
  return static_cast<double>(below) / static_cast<double>(loc_values.size());
}

TestCaseStats AnalyzeTestCase(const Finding& finding) {
  TestCaseStats stats;
  stats.statement_count = finding.statements.size();
  stats.oracle_name = OracleName(finding.oracle);
  size_t tables_created = 0;
  for (const StmtPtr& s : finding.statements) {
    if (s == nullptr) continue;
    stats.categories.insert(StatementCategory(*s));
    switch (s->kind()) {
      case StmtKind::kCreateTable: {
        ++tables_created;
        const auto& ct = static_cast<const CreateTableStmt&>(*s);
        for (const ColumnDef& col : ct.columns) {
          stats.has_unique |= col.unique;
          stats.has_primary_key |= col.primary_key;
        }
        break;
      }
      case StmtKind::kCreateIndex:
        stats.has_create_index = true;
        break;
      case StmtKind::kUpdate: {
        stats.has_update = true;
        const auto& up = static_cast<const UpdateStmt&>(*s);
        if (up.where != nullptr) {
          int depth = up.where->Depth();
          if (depth > stats.max_expr_depth) stats.max_expr_depth = depth;
        }
        break;
      }
      case StmtKind::kDelete: {
        stats.has_delete = true;
        const auto& del = static_cast<const DeleteStmt&>(*s);
        if (del.where != nullptr) {
          int depth = del.where->Depth();
          if (depth > stats.max_expr_depth) stats.max_expr_depth = depth;
        }
        break;
      }
      case StmtKind::kDropIndex:
        stats.has_drop_index = true;
        break;
      case StmtKind::kMaintenance:
        stats.has_maintenance = true;
        break;
      case StmtKind::kBegin:
      case StmtKind::kCommit:
      case StmtKind::kRollback:
        stats.has_transaction = true;
        break;
      case StmtKind::kSelect: {
        const auto& sel = static_cast<const SelectStmt&>(*s);
        stats.has_explicit_join |= !sel.joins.empty();
        auto scan_expr = [&stats](const Expr& e) {
          stats.has_function_call |= e.ContainsKind(ExprKind::kFunctionCall);
          stats.has_cast |= e.ContainsKind(ExprKind::kCast);
          stats.has_case |= e.ContainsKind(ExprKind::kCase);
          stats.has_collate |= e.ContainsKind(ExprKind::kCollate);
          int depth = e.Depth();
          if (depth > stats.max_expr_depth) stats.max_expr_depth = depth;
        };
        for (const JoinClause& join : sel.joins) {
          stats.has_left_join |= join.kind == JoinKind::kLeft;
          if (join.on != nullptr) scan_expr(*join.on);
        }
        if (sel.where != nullptr) scan_expr(*sel.where);
        for (const ExprPtr& item : sel.select_list) {
          if (item != nullptr) scan_expr(*item);
        }
        if (sel.having != nullptr) scan_expr(*sel.having);
        stats.has_distinct |= sel.distinct;
        stats.has_order_by |= !sel.order_by.empty();
        stats.has_limit |= sel.limit >= 0;
        stats.has_aggregate |= sel.HasAggregates();
        stats.has_group_by |= !sel.group_by.empty();
        stats.has_having |= sel.having != nullptr;
        break;
      }
      default:
        break;
    }
  }
  if (!finding.statements.empty() && finding.statements.back() != nullptr) {
    stats.trigger_category = StatementCategory(*finding.statements.back());
  }
  stats.single_table = tables_created == 1;
  return stats;
}

}  // namespace pqs
