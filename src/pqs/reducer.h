// Delta-debugging reduction of findings (paper §3.5, Figure 2).
//
// A raw finding carries every statement that built the database state plus
// the triggering statement. Reduction first normalizes multi-row INSERTs
// into single-row ones (statement-level granularity is what Figure 2
// measures), then greedily removes statement chunks while the finding still
// reproduces. Reproduction is checked differentially when a reference
// factory is supplied: the reduced script must still make the buggy engine
// disagree with the reference engine (or crash/error where the reference
// does not). One buggy and one reference connection serve all probes of a
// reduction — engines supporting Connection::Reset() are recycled in place
// instead of being re-constructed per ddmin probe.
#ifndef PQS_SRC_PQS_REDUCER_H_
#define PQS_SRC_PQS_REDUCER_H_

#include "src/engine/connection.h"
#include "src/pqs/oracles.h"

namespace pqs {

// Returns a reduced copy of `finding`. `buggy` must produce engines
// exhibiting the bug; `reference` (optional but strongly recommended)
// produces clean engines for the differential check. The input finding is
// not modified.
Finding ReduceFinding(const EngineFactory& buggy, const Finding& finding,
                      const EngineFactory* reference = nullptr);

// True if replaying `finding`'s statements still triggers its oracle, using
// the same decision procedure the reducer uses. Exposed for tests.
bool FindingReproduces(const EngineFactory& buggy, const Finding& finding,
                       const EngineFactory* reference);

}  // namespace pqs

#endif  // PQS_SRC_PQS_REDUCER_H_
