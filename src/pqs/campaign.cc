#include "src/pqs/campaign.h"

#include <memory>
#include <utility>

#include "src/minidb/bug_registry.h"
#include "src/minidb/database.h"
#include "src/pqs/reducer.h"

namespace pqs {

const char* ReportOutcomeName(ReportOutcome outcome) {
  switch (outcome) {
    case ReportOutcome::kFixed:
      return "fixed";
    case ReportOutcome::kVerified:
      return "verified";
    case ReportOutcome::kIntended:
      return "intended";
    case ReportOutcome::kDuplicate:
      return "duplicate";
  }
  return "?";
}

size_t CampaignReport::DetectedCount() const {
  size_t count = 0;
  for (const BugHuntResult& r : results) count += r.detected ? 1 : 0;
  return count;
}

size_t CampaignReport::CountByOracle(OracleKind kind) const {
  size_t count = 0;
  for (const BugHuntResult& r : results) {
    count += (r.detected && r.oracle == kind) ? 1 : 0;
  }
  return count;
}

size_t CampaignReport::CountByOutcome(ReportOutcome outcome) const {
  size_t count = 0;
  for (const BugHuntResult& r : results) {
    count += (r.detected && r.outcome == outcome) ? 1 : 0;
  }
  return count;
}

AggregateStats CampaignReport::Aggregate() const {
  AggregateStats agg;
  for (const BugHuntResult& r : results) {
    if (!r.detected) continue;
    agg.Add(AnalyzeTestCase(r.reduced));
  }
  return agg;
}

BugHuntResult HuntBug(BugId bug, const CampaignOptions& options) {
  const minidb::BugInfo& info = minidb::LookupBug(bug);

  BugHuntResult result;
  result.bug = info.id;
  result.name = info.name;
  result.dialect = info.dialect;
  result.outcome = info.outcome;

  Dialect dialect = info.dialect;
  EngineFactory buggy = [dialect, bug]() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(dialect,
                                              BugConfig::Single(bug));
  };
  EngineFactory reference = [dialect]() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(dialect);
  };

  RunnerOptions runner_options;
  // Decorrelate per-bug streams; the campaign seed still fully determines
  // every hunt.
  runner_options.seed =
      options.seed + 0x51ed2701u * (static_cast<uint64_t>(bug) + 1);
  runner_options.databases = options.databases_per_bug;
  runner_options.queries_per_database = options.queries_per_database;
  runner_options.stop_on_first_finding = true;
  runner_options.gen = options.gen;

  PqsRunner runner(buggy, runner_options);
  RunReport report = runner.Run();
  result.statements_used = report.stats.statements_executed;
  result.databases_used = report.stats.databases_created;
  if (report.findings.empty()) return result;

  result.detected = true;
  Finding& finding = report.findings.front();
  result.oracle = finding.oracle;
  result.reduced = options.reduce
                       ? ReduceFinding(buggy, finding, &reference)
                       : std::move(finding);
  return result;
}

CampaignReport RunCampaign(Dialect dialect, const CampaignOptions& options) {
  CampaignReport report;
  report.dialect = dialect;
  for (const minidb::BugInfo& info : minidb::BugsForDialect(dialect)) {
    report.results.push_back(HuntBug(info.id, options));
  }
  return report;
}

}  // namespace pqs
