#include "src/pqs/campaign.h"

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "src/common/rng.h"
#include "src/minidb/bug_registry.h"
#include "src/minidb/database.h"
#include "src/pqs/reducer.h"

namespace pqs {

const char* ReportOutcomeName(ReportOutcome outcome) {
  switch (outcome) {
    case ReportOutcome::kFixed:
      return "fixed";
    case ReportOutcome::kVerified:
      return "verified";
    case ReportOutcome::kIntended:
      return "intended";
    case ReportOutcome::kDuplicate:
      return "duplicate";
  }
  return "?";
}

size_t CampaignReport::DetectedCount() const {
  size_t count = 0;
  for (const BugHuntResult& r : results) count += r.detected ? 1 : 0;
  return count;
}

size_t CampaignReport::CountByOracle(OracleKind kind) const {
  size_t count = 0;
  for (const BugHuntResult& r : results) {
    count += (r.detected && r.oracle == kind) ? 1 : 0;
  }
  return count;
}

size_t CampaignReport::CountByOutcome(ReportOutcome outcome) const {
  size_t count = 0;
  for (const BugHuntResult& r : results) {
    count += (r.detected && r.outcome == outcome) ? 1 : 0;
  }
  return count;
}

AggregateStats CampaignReport::Aggregate() const {
  AggregateStats agg;
  for (const BugHuntResult& r : results) {
    if (!r.detected) continue;
    agg.Add(AnalyzeTestCase(r.reduced));
  }
  return agg;
}

BugHuntResult HuntBug(BugId bug, const CampaignOptions& options) {
  const minidb::BugInfo& info = minidb::LookupBug(bug);

  BugHuntResult result;
  result.bug = info.id;
  result.name = info.name;
  result.dialect = info.dialect;
  result.outcome = info.outcome;

  // Reject malformed generator options up front (the runner would also
  // refuse them, but a campaign should not silently hunt nothing).
  result.invalid_options = options.gen.Validate();
  if (!result.invalid_options.empty()) return result;

  Dialect dialect = info.dialect;
  EngineFactory buggy = [dialect, bug]() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(dialect,
                                              BugConfig::Single(bug));
  };
  EngineFactory reference = [dialect]() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(dialect);
  };

  RunnerOptions runner_options;
  // Decorrelate per-bug streams via splitmix64 stream splitting; the
  // campaign seed still fully determines every hunt, and the per-bug seeds
  // derived from it can never collide with each other (per-database
  // streams nested under different bug seeds are distinct only
  // statistically, like any hashed seeds).
  runner_options.seed =
      Rng::StreamSeed(options.seed, static_cast<uint64_t>(bug));
  runner_options.databases = options.databases_per_bug;
  runner_options.queries_per_database = options.queries_per_database;
  runner_options.stop_on_first_finding = true;
  runner_options.workers = options.workers;
  runner_options.family = options.family == OracleFamily::kAuto
                              ? FamilyForOracle(info.oracle)
                              : options.family;
  runner_options.gen = options.gen;
  // Transaction bugs only surface under the interleaved-session branch;
  // arm it unless the caller already chose a session count.
  if (IsTxnBug(bug) && runner_options.gen.txn_sessions <= 1) {
    runner_options.gen.txn_sessions = 3;
  }

  PqsRunner runner(buggy, runner_options);
  RunReport report = runner.Run();
  result.statements_used = report.stats.statements_executed;
  result.databases_used = report.stats.databases_created;
  if (report.findings.empty()) return result;

  result.detected = true;
  Finding& finding = report.findings.front();
  result.oracle = finding.oracle;
  result.reduced = options.reduce
                       ? ReduceFinding(buggy, finding, &reference)
                       : std::move(finding);
  return result;
}

CampaignReport RunCampaign(Dialect dialect, const CampaignOptions& options) {
  CampaignReport report;
  report.dialect = dialect;
  std::vector<minidb::BugInfo> bugs = minidb::BugsForDialect(dialect);

  int workers = options.workers;
  if (workers > static_cast<int>(bugs.size())) {
    workers = static_cast<int>(bugs.size());
  }
  if (workers <= 1) {
    for (const minidb::BugInfo& info : bugs) {
      report.results.push_back(HuntBug(info.id, options));
    }
    return report;
  }

  // Shard the bug list across the workers. Every hunt consumes only its own
  // stream-split seed, so result slot `i` is the same no matter which worker
  // claims it or in which order — the merged report is identical to the
  // sequential one. Each hunt runs single-threaded here (workers = 1);
  // the campaign already owns the parallelism, and nesting sharded runners
  // inside sharded hunts would oversubscribe the machine.
  CampaignOptions hunt_options = options;
  hunt_options.workers = 1;
  report.results.resize(bugs.size());
  std::atomic<size_t> next_bug{0};
  auto worker_main = [&]() {
    for (;;) {
      size_t i = next_bug.fetch_add(1, std::memory_order_relaxed);
      if (i >= bugs.size()) break;
      report.results[i] = HuntBug(bugs[i].id, hunt_options);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_main);
  for (std::thread& t : threads) t.join();
  return report;
}

}  // namespace pqs
