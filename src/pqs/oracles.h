// PQS test oracles and test-case analysis.
//
// PQS detects bugs with three oracles (paper §3.3):
//  - containment: the rectified query must return the pivot row;
//  - error: a statement the generator guarantees valid must not fail;
//  - crash: the engine must not die.
// A Finding is the self-contained evidence for one oracle violation: the
// full statement log that provoked it (replayable SQL), which oracle fired,
// and — for containment — the pivot row that went missing.
#ifndef PQS_SRC_PQS_ORACLES_H_
#define PQS_SRC_PQS_ORACLES_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/engine/connection.h"
#include "src/obs/flight_recorder.h"
#include "src/sqlast/ast.h"
#include "src/sqlvalue/value.h"

namespace pqs {

// kTxnSerial: the committed state of the concurrent K-session workload
// diverged from a serial replay of the committed transactions in commit
// order — the MVCC anomaly oracle (sound under snapshot isolation with
// table-granular first-committer-wins; DESIGN §14).
enum class OracleKind { kContainment, kError, kCrash, kNorec, kTlp,
                        kTxnSerial };

const char* OracleName(OracleKind kind);

// Which oracle family a campaign runs its query phase with. Error and
// crash detection are always on; the family chooses the semantic check:
// PQS pivot containment, NoREC's optimized-vs-unoptimized count compare,
// or TLP's ternary partition recombination (the only family that can
// judge aggregate/GROUP BY queries). kAuto lets HuntBug pick the family
// a bug's registry entry names as its intended finder.
enum class OracleFamily { kAuto, kContainment, kNorec, kTlp };

const char* OracleFamilyName(OracleFamily family);

// The family that runs a given oracle's semantic check: kNorec/kTlp map to
// their own families, everything else (containment, error, crash) to
// kContainment — error and crash findings surface under every family.
OracleFamily FamilyForOracle(OracleKind kind);

struct Finding {
  OracleKind oracle = OracleKind::kContainment;
  Dialect dialect = Dialect::kSqliteFlex;
  // Everything executed on the connection, in order; the statement that
  // triggered the oracle is last.
  std::vector<StmtPtr> statements;
  // Containment only: the joined pivot row the query should have returned.
  std::vector<SqlValue> pivot;
  std::string message;
  uint64_t seed = 0;
  // Flight-recorder provenance: the session's most recent events at the
  // moment the finding was recorded, oldest first (empty only when the
  // telemetry kill switch was off). The last event is always the
  // kFindingRecorded marker for this finding.
  std::vector<obs::FlightEvent> flight;

  Finding() = default;
  Finding(Finding&&) = default;
  Finding& operator=(Finding&&) = default;

  // Deep copy (statements own their ASTs).
  Finding Clone() const;
};

// Containment check used by the runner and the reducer: does the result set
// contain `pivot` as one of its rows?
bool ResultContainsRow(const StatementResult& result,
                       const std::vector<SqlValue>& pivot);

// ---------------------------------------------------------------------------
// Reduced-test-case analysis (Figures 2 and 3, §4.3)
// ---------------------------------------------------------------------------

struct TestCaseStats {
  size_t statement_count = 0;
  std::set<std::string> categories;   // statement categories present
  std::string trigger_category;       // category of the triggering statement
  std::string oracle_name;            // oracle that fired
  bool has_unique = false;            // UNIQUE column constraint present
  bool has_primary_key = false;
  bool has_create_index = false;
  bool single_table = false;          // exactly one table created
  // Query-space feature buckets (PR 3): explicit JOIN syntax (with LEFT
  // singled out), DISTINCT, ORDER BY, and LIMIT in any SELECT.
  bool has_explicit_join = false;
  bool has_left_join = false;
  bool has_distinct = false;
  bool has_order_by = false;
  bool has_limit = false;
  // Typed-expression buckets (PR 4): registry function calls, CAST, CASE,
  // and COLLATE anywhere in a SELECT's expressions, plus the maximum
  // expression depth seen across the test case's WHERE/ON predicates.
  bool has_function_call = false;
  bool has_cast = false;
  bool has_case = false;
  bool has_collate = false;
  int max_expr_depth = 0;
  // Statement-mutation buckets (PR 5): the state-changing statement kinds
  // of the action stream present in the test case.
  bool has_update = false;
  bool has_delete = false;
  bool has_drop_index = false;
  bool has_maintenance = false;
  // Aggregate buckets (PR 6): grouping grammar in any SELECT.
  bool has_aggregate = false;
  bool has_group_by = false;
  bool has_having = false;
  // Transaction bucket (PR 10): explicit BEGIN/COMMIT/ROLLBACK present.
  bool has_transaction = false;
};

struct CategoryStat {
  size_t test_cases_containing = 0;
  // Oracle name → number of test cases whose triggering statement has this
  // category and fired that oracle.
  std::map<std::string, size_t> trigger_by_oracle;
};

struct AggregateStats {
  size_t total_cases = 0;
  std::vector<size_t> loc_values;  // statement counts, one per test case
  std::map<std::string, CategoryStat> per_category;
  size_t with_unique = 0;
  size_t with_primary_key = 0;
  size_t with_create_index = 0;
  size_t single_table = 0;
  // Query-space feature buckets: test cases whose statements exercise the
  // widened SELECT grammar.
  size_t with_explicit_join = 0;
  size_t with_left_join = 0;
  size_t with_distinct = 0;
  size_t with_order_by = 0;
  size_t with_limit = 0;
  // Typed-expression buckets.
  size_t with_function_call = 0;
  size_t with_cast = 0;
  size_t with_case = 0;
  size_t with_collate = 0;
  // Deepest WHERE/ON expression seen across all test cases.
  int max_expr_depth = 0;
  // Statement-mutation buckets.
  size_t with_update = 0;
  size_t with_delete = 0;
  size_t with_drop_index = 0;
  size_t with_maintenance = 0;
  // Aggregate buckets.
  size_t with_aggregate = 0;
  size_t with_group_by = 0;
  size_t with_having = 0;
  // Transaction bucket.
  size_t with_transaction = 0;

  void Add(const TestCaseStats& tc);
  // Value merge of per-shard aggregates: Merge(a, b) of disjoint shards
  // equals Add()-ing every underlying test case into one aggregate.
  void Merge(const AggregateStats& other);
  double AverageLoc() const;
  size_t MaxLoc() const;
  // Fraction of test cases with statement count <= loc.
  double CdfAt(size_t loc) const;
};

TestCaseStats AnalyzeTestCase(const Finding& finding);

}  // namespace pqs

#endif  // PQS_SRC_PQS_ORACLES_H_
