#include "src/pqs/reducer.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/interp/eval.h"
#include "src/obs/telemetry.h"

namespace pqs {

namespace {

// Multiset equality of result rows (row order is engine-defined and may
// legitimately differ once rows are dropped).
bool SameResultRows(const StatementResult& a, const StatementResult& b) {
  return SameRowMultiset(a.rows, b.rows);
}

// Replays all statements but the last; returns false if the engine died.
// Setup errors (e.g. an INSERT whose CREATE TABLE was removed) are
// tolerated — the final differential decides whether the candidate still
// reproduces.
bool ReplaySetup(Connection* conn, const std::vector<StmtPtr>& statements) {
  for (size_t i = 0; i + 1 < statements.size(); ++i) {
    if (statements[i] == nullptr) continue;
    StatementResult r = conn->Execute(*statements[i]);
    obs::CountStatement(static_cast<uint32_t>(statements[i]->kind()),
                        !r.ok());
    if (r.status == StatementStatus::kCrash ||
        r.status == StatementStatus::kUnsupported) {
      return false;
    }
  }
  return true;
}

// Holds one buggy and one reference connection for the lifetime of a
// reduction. A ddmin reduction runs hundreds of replay probes; engines
// whose Connection::Reset() can clear back to an empty database are
// constructed once and recycled across probes instead of once per probe.
// Engines without in-place reset transparently fall back to the factory.
class ProbeEngines {
 public:
  ProbeEngines(const EngineFactory& buggy, const EngineFactory* reference)
      : buggy_factory_(buggy), reference_factory_(reference) {}

  // A fresh, empty buggy engine; null if the factory failed.
  Connection* FreshBuggy() { return Fresh(buggy_factory_, &buggy_conn_); }

  // A fresh, empty reference engine; null if none was supplied or the
  // factory failed.
  Connection* FreshReference() {
    if (reference_factory_ == nullptr) return nullptr;
    return Fresh(*reference_factory_, &reference_conn_);
  }

 private:
  static Connection* Fresh(const EngineFactory& factory, ConnectionPtr* slot) {
    if (*slot != nullptr && (*slot)->Reset()) return slot->get();
    *slot = factory();
    return slot->get();
  }

  const EngineFactory& buggy_factory_;
  const EngineFactory* reference_factory_;
  ConnectionPtr buggy_conn_;
  ConnectionPtr reference_conn_;
};

bool Reproduces(ProbeEngines& engines,
                const std::vector<StmtPtr>& statements, OracleKind oracle,
                const std::vector<SqlValue>& pivot) {
  if (statements.empty() || statements.back() == nullptr) return false;
  Connection* buggy_conn = engines.FreshBuggy();
  if (buggy_conn == nullptr) return false;
  if (!ReplaySetup(buggy_conn, statements)) return false;
  StatementResult buggy_result = buggy_conn->Execute(*statements.back());

  StatementResult reference_result;
  bool have_reference = false;
  Connection* ref_conn = engines.FreshReference();
  if (ref_conn != nullptr && ReplaySetup(ref_conn, statements)) {
    reference_result = ref_conn->Execute(*statements.back());
    have_reference = true;
  }

  switch (oracle) {
    case OracleKind::kCrash:
      if (buggy_result.status != StatementStatus::kCrash) return false;
      return !have_reference ||
             reference_result.status != StatementStatus::kCrash;
    case OracleKind::kError:
      if (buggy_result.status != StatementStatus::kError &&
          buggy_result.status != StatementStatus::kConstraintViolation) {
        return false;
      }
      return !have_reference || reference_result.ok();
    case OracleKind::kContainment:
      if (!buggy_result.ok()) return false;
      if (have_reference) {
        return reference_result.ok() &&
               !SameResultRows(buggy_result, reference_result);
      }
      // Pivot-based fallback when no reference engine is available.
      return !pivot.empty() && !ResultContainsRow(buggy_result, pivot);
    case OracleKind::kNorec:
    case OracleKind::kTlp:
    case OracleKind::kTxnSerial:
      // Transaction findings reduce differentially, like the metamorphic
      // oracles: the decisive SELECT (snapshot or committed-state fetch)
      // must still disagree with a clean engine replaying the same
      // interleaved stream. BEGIN/COMMIT/ROLLBACK statements removed by a
      // ddmin chunk merely reshape the schedule — the final differential
      // decides whether the shrunken schedule still reproduces.
      // Metamorphic findings reduce differentially: the decisive (last)
      // transformed query must still disagree with the reference engine.
      // Without a reference — or when the disagreement sat in an earlier
      // transformed query — nothing reproduces and the finding is kept
      // unreduced, never wrongly shrunk.
      if (!buggy_result.ok()) return false;
      return have_reference && reference_result.ok() &&
             !SameResultRows(buggy_result, reference_result);
  }
  return false;
}

// Splits every multi-row INSERT into single-row INSERT statements.
std::vector<StmtPtr> NormalizeStatements(
    const std::vector<StmtPtr>& statements) {
  std::vector<StmtPtr> out;
  for (const StmtPtr& stmt : statements) {
    if (stmt == nullptr) continue;
    if (stmt->kind() == StmtKind::kInsert) {
      const auto& insert = static_cast<const InsertStmt&>(*stmt);
      if (insert.rows.size() > 1) {
        for (const auto& row : insert.rows) {
          auto single = std::make_unique<InsertStmt>();
          single->table_name = insert.table_name;
          single->rows.emplace_back();
          for (const ExprPtr& v : row) {
            single->rows.back().push_back(v ? v->Clone() : nullptr);
          }
          out.push_back(std::move(single));
        }
        continue;
      }
    }
    out.push_back(stmt->Clone());
  }
  return out;
}

std::vector<StmtPtr> CloneStatements(const std::vector<StmtPtr>& statements) {
  std::vector<StmtPtr> out;
  out.reserve(statements.size());
  for (const StmtPtr& s : statements) {
    out.push_back(s ? s->Clone() : nullptr);
  }
  return out;
}

}  // namespace

bool FindingReproduces(const EngineFactory& buggy, const Finding& finding,
                       const EngineFactory* reference) {
  ProbeEngines engines(buggy, reference);
  return Reproduces(engines, finding.statements, finding.oracle,
                    finding.pivot);
}

Finding ReduceFinding(const EngineFactory& buggy, const Finding& finding,
                      const EngineFactory* reference) {
  // Reduction probes profile under kReduce when a telemetry session is
  // installed; campaign-level reduction runs outside any session and the
  // span is then a no-op.
  obs::ScopedPhase span(obs::Phase::kReduce);
  Finding out;
  out.oracle = finding.oracle;
  out.dialect = finding.dialect;
  out.pivot = finding.pivot;
  out.message = finding.message;
  out.seed = finding.seed;
  // The reduced finding keeps the original's flight-recorder provenance:
  // the events describe the session that *found* the bug, which the
  // shrunken statement list no longer replays on its own.
  out.flight = finding.flight;

  // One connection pair serves every probe of this reduction.
  ProbeEngines engines(buggy, reference);

  std::vector<StmtPtr> current = NormalizeStatements(finding.statements);
  if (!Reproduces(engines, current, finding.oracle, finding.pivot)) {
    // Normalization (or the finding itself) does not replay; return the
    // original statements untouched.
    out.statements = CloneStatements(finding.statements);
    return out;
  }

  // Greedy ddmin over the setup prefix; the triggering statement (last) is
  // pinned. Chunk sizes halve from n/2 down to 1; repeat whole passes until
  // none removes anything.
  bool progress = true;
  while (progress) {
    progress = false;
    size_t setup = current.size() - 1;
    size_t chunk = setup / 2 > 0 ? setup / 2 : 1;
    while (true) {
      size_t start = 0;
      while (start < current.size() - 1) {
        size_t end = start + chunk;
        if (end > current.size() - 1) end = current.size() - 1;
        std::vector<StmtPtr> candidate;
        candidate.reserve(current.size() - (end - start));
        for (size_t i = 0; i < current.size(); ++i) {
          if (i >= start && i < end) continue;
          candidate.push_back(current[i]->Clone());
        }
        if (Reproduces(engines, candidate, finding.oracle, finding.pivot)) {
          current = std::move(candidate);
          progress = true;
          // Keep `start` in place: later statements shifted left into it.
        } else {
          start = end;
        }
      }
      if (chunk == 1) break;
      chunk /= 2;
    }
  }

  out.statements = std::move(current);
  return out;
}

}  // namespace pqs
