// Session action scheduler: drives each PQS session as a weighted
// statement stream (DESIGN §9).
//
// The paper's Algorithm 1 does not query one frozen database: between
// pivot checks it keeps mutating the state — more inserts, UPDATE/DELETE,
// index creation and removal, maintenance statements — and re-selects the
// pivot afterwards. The scheduler owns that stream: it draws the next
// statement kind from the weights in GeneratorOptions, asks the Generator
// for a concrete statement, and tracks the live index inventory (fed back
// from the ground-truth model's accept/reject decisions) so DROP INDEX
// always names a real index and UPDATE knows which columns sit under a
// unique index. Every draw comes from the session's private RNG stream,
// so scheduling is deterministic under ShardPlan sharding.
#ifndef PQS_SRC_PQS_SCHEDULER_H_
#define PQS_SRC_PQS_SCHEDULER_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/pqs/generator.h"
#include "src/sqlast/ast.h"
#include "src/sqlstmt/stmt.h"

namespace pqs {

// One step of the interleaved transaction stream: which logical session
// issues the statement. The runner prefixes a SetSessionStmt whenever the
// session differs from the previous action's, so the rendered statement log
// stays a flat replayable stream.
struct SessionAction {
  int session = 0;
  StmtPtr stmt;
};

class ActionScheduler {
 public:
  ActionScheduler(const Generator* generator, const GeneratorOptions& options,
                  const DatabasePlan* plan);

  // Mutation statements to execute before the next pivot check: keeps
  // drawing from the weighted mix until the pivot-check action comes up,
  // capped at options.max_actions_per_check. Empty when every mutation
  // weight is zero.
  std::vector<StmtPtr> NextBatch(Rng* rng);

  // Interleaved transaction stream over options.txn_sessions logical
  // sessions (DESIGN §14). Each drawn step picks a session from the RNG and
  // advances that session's state machine: an idle session BEGINs (with
  // txn_begin_probability) or issues one autocommit DML statement; an open
  // transaction COMMITs / ROLLBACKs / issues DML inside the transaction,
  // with a forced COMMIT once it reaches max_txn_statements. The whole
  // interleaving is a pure function of the session's RNG stream, so
  // transaction schedules replay byte-identically under ShardPlan sharding.
  // DDL and maintenance never appear in the stream — indexes come from the
  // setup phase only, keeping every transactional statement MVCC-visible.
  std::vector<SessionAction> NextTxnBatch(Rng* rng);

  // Bookkeeping callback for every statement executed on the ground-truth
  // model (setup and mutations alike): `applied` is whether the model
  // accepted it. Keeps the live index inventory in sync with reality —
  // a rejected unique CREATE INDEX never becomes a DROP INDEX target.
  void Observe(const Stmt& stmt, bool applied);

  // Clone of a live partial-index predicate over `table`, gated on
  // options.partial_probe_probability; null otherwise. The runner ANDs it
  // in front of generated WHERE clauses so the partial-index scan planner
  // is reachable.
  ExprPtr MaybePartialIndexProbe(const std::string& table, Rng* rng) const;

  // Columns of `table` the UPDATE generator must restrict to literal
  // values: declared UNIQUE/PRIMARY KEY columns plus the key columns of
  // every live unique index over the table (DESIGN §9 explains why this
  // keeps constraint decisions row-order-independent).
  std::vector<std::string> LiteralOnlyColumns(const TableSchema& table) const;

  // Key and partial-predicate columns of every live index over `table`:
  // the columns whose updates actually move index entries.
  std::vector<std::string> IndexedColumns(const TableSchema& table) const;

  size_t live_index_count() const { return live_.size(); }

 private:
  struct LiveIndex {
    std::string name;
    std::string table;
    std::vector<std::string> columns;
    bool unique = false;
    ExprPtr where;  // clone of the partial predicate (nullable)
  };

  // State machine for one logical session of the transaction stream.
  struct TxnSession {
    bool in_txn = false;
    int stmts_in_txn = 0;
  };

  const TableSchema* PickTable(Rng* rng) const;
  // One DML statement (INSERT/UPDATE/DELETE by weight) for the transaction
  // stream; never DDL or maintenance.
  StmtPtr NextTxnDml(Rng* rng);

  const Generator* generator_;
  GeneratorOptions options_;
  const DatabasePlan* plan_;
  // Next fresh index name suffix; advanced past every observed "i<N>" so
  // mid-session CREATE INDEX never reuses a name.
  int index_counter_ = 0;
  std::vector<LiveIndex> live_;
  // Per-session transaction state, created lazily on the first
  // NextTxnBatch call (size == options.txn_sessions).
  std::vector<TxnSession> txn_sessions_;
};

}  // namespace pqs

#endif  // PQS_SRC_PQS_SCHEDULER_H_
