#include "src/sqlvalue/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pqs {

namespace {

std::string FormatReal(double v) {
  char buf[64];
  // %.17g round-trips every double; trim the noise for the common short
  // values the generator actually emits (0.5, -3.25, ...).
  snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = strtod(buf, nullptr);
  if (parsed == v) {
    char shorter[64];
    snprintf(shorter, sizeof(shorter), "%g", v);
    if (strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

}  // namespace

std::string SqlValue::ToSqlLiteral() const {
  switch (cls) {
    case StorageClass::kNull:
      return "NULL";
    case StorageClass::kInteger:
      return std::to_string(i);
    case StorageClass::kReal: {
      std::string s = FormatReal(r);
      // Ensure the literal stays a REAL when re-parsed ("1" → "1.0").
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case StorageClass::kText: {
      std::string out = "'";
      for (char c : t) {
        out += c;
        if (c == '\'') out += '\'';
      }
      out += '\'';
      return out;
    }
  }
  return "NULL";
}

std::string SqlValue::ToDisplay() const {
  switch (cls) {
    case StorageClass::kNull:
      return "NULL";
    case StorageClass::kInteger:
      return std::to_string(i);
    case StorageClass::kReal: {
      // Match SQLite's REAL→TEXT conversion: always keep a decimal point
      // ('2.0', not '2') so concatenation agrees with the real engine.
      std::string s = FormatReal(r);
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case StorageClass::kText:
      return t;
  }
  return "NULL";
}

bool ValueEquals(const SqlValue& a, const SqlValue& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_numeric() && b.is_numeric()) return a.AsReal() == b.AsReal();
  if (a.cls != b.cls) return false;
  return a.t == b.t;
}

int ValueCompare(const SqlValue& a, const SqlValue& b) {
  auto rank = [](const SqlValue& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(a);
  int rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;
  if (ra == 1) {
    double da = a.AsReal();
    double db = b.AsReal();
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  int c = a.t.compare(b.t);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

bool ParseFullNumeric(const std::string& s, SqlValue* out) {
  if (s.empty()) return false;
  const char* begin = s.c_str();
  char* end = nullptr;
  long long as_int = strtoll(begin, &end, 10);
  if (end != begin && *end == '\0') {
    *out = SqlValue::Int(as_int);
    return true;
  }
  end = nullptr;
  double as_real = strtod(begin, &end);
  if (end != begin && *end == '\0') {
    *out = SqlValue::Real(as_real);
    return true;
  }
  return false;
}

double ParseNumericPrefix(const std::string& s) {
  const char* begin = s.c_str();
  char* end = nullptr;
  double v = strtod(begin, &end);
  if (end == begin) return 0.0;
  return v;
}

Bool3 Not3(Bool3 v) {
  switch (v) {
    case Bool3::kFalse:
      return Bool3::kTrue;
    case Bool3::kTrue:
      return Bool3::kFalse;
    case Bool3::kNull:
      return Bool3::kNull;
  }
  return Bool3::kNull;
}

Bool3 And3(Bool3 a, Bool3 b) {
  if (a == Bool3::kFalse || b == Bool3::kFalse) return Bool3::kFalse;
  if (a == Bool3::kNull || b == Bool3::kNull) return Bool3::kNull;
  return Bool3::kTrue;
}

Bool3 Or3(Bool3 a, Bool3 b) {
  if (a == Bool3::kTrue || b == Bool3::kTrue) return Bool3::kTrue;
  if (a == Bool3::kNull || b == Bool3::kNull) return Bool3::kNull;
  return Bool3::kFalse;
}

const char* Bool3Name(Bool3 v) {
  switch (v) {
    case Bool3::kFalse:
      return "FALSE";
    case Bool3::kTrue:
      return "TRUE";
    case Bool3::kNull:
      return "NULL";
  }
  return "?";
}

}  // namespace pqs
