// Typed SQL values and three-valued logic.
//
// A SqlValue models the dynamic value a cell, literal, or expression result
// holds at runtime: one of the four SQLite storage classes (NULL, INTEGER,
// REAL, TEXT). Affinity is the *static* column typing hint; how strictly it
// is enforced is a dialect decision made by the engine, not by this module.
#ifndef PQS_SRC_SQLVALUE_VALUE_H_
#define PQS_SRC_SQLVALUE_VALUE_H_

#include <cstdint>
#include <string>

namespace pqs {

enum class StorageClass { kNull, kInteger, kReal, kText };

// Column typing hint. kInteger/kReal columns coerce numeric-looking text on
// insert in the flexible dialects; kPostgresStrict rejects mismatches.
enum class Affinity { kInteger, kReal, kText };

// SQL three-valued logic outcome of a predicate.
enum class Bool3 { kFalse, kTrue, kNull };

struct SqlValue {
  StorageClass cls = StorageClass::kNull;
  int64_t i = 0;
  double r = 0.0;
  std::string t;

  static SqlValue Null() { return SqlValue(); }
  static SqlValue Int(int64_t v) {
    SqlValue out;
    out.cls = StorageClass::kInteger;
    out.i = v;
    return out;
  }
  static SqlValue Real(double v) {
    SqlValue out;
    out.cls = StorageClass::kReal;
    out.r = v;
    return out;
  }
  static SqlValue Text(std::string v) {
    SqlValue out;
    out.cls = StorageClass::kText;
    out.t = std::move(v);
    return out;
  }
  static SqlValue Bool(bool b) { return Int(b ? 1 : 0); }
  static SqlValue FromBool3(Bool3 b) {
    return b == Bool3::kNull ? Null() : Bool(b == Bool3::kTrue);
  }

  bool is_null() const { return cls == StorageClass::kNull; }
  bool is_numeric() const {
    return cls == StorageClass::kInteger || cls == StorageClass::kReal;
  }
  double AsReal() const {
    return cls == StorageClass::kInteger ? static_cast<double>(i) : r;
  }

  // SQL literal spelling ('quoted' text, NULL keyword). Round-trips through
  // the renderer into real SQLite.
  std::string ToSqlLiteral() const;
  // Human-readable form for reports and logs (no quotes).
  std::string ToDisplay() const;
};

// Storage-identical equality used for result-set containment: NULLs match
// NULLs (we are matching a concrete fetched row, not evaluating SQL `=`),
// INTEGER and REAL compare numerically (engines are free to return 1 vs
// 1.0), TEXT compares byte-wise.
bool ValueEquals(const SqlValue& a, const SqlValue& b);

// Total order used for ORDER-less deterministic row comparison in tests and
// for the cross-storage-class comparison rules of the flexible dialects:
// NULL < numeric < TEXT, numerics by value, text byte-wise.
// Returns <0, 0, >0.
int ValueCompare(const SqlValue& a, const SqlValue& b);

// Best-effort text→number coercion. Returns true and sets *out when the
// whole string parses as a number (used by flexible-typing inserts).
bool ParseFullNumeric(const std::string& s, SqlValue* out);

// MySQL-style prefix coercion: '12ab' → 12, 'x' → 0. Always succeeds.
double ParseNumericPrefix(const std::string& s);

Bool3 Not3(Bool3 v);
Bool3 And3(Bool3 a, Bool3 b);
Bool3 Or3(Bool3 a, Bool3 b);

const char* Bool3Name(Bool3 v);

}  // namespace pqs

#endif  // PQS_SRC_SQLVALUE_VALUE_H_
