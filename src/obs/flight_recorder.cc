#include "src/obs/flight_recorder.h"

#include <cstdio>

namespace pqs {
namespace obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStatement:
      return "stmt";
    case EventKind::kPivotSelected:
      return "pivot";
    case EventKind::kEviction:
      return "evict";
    case EventKind::kCacheInvalidation:
      return "cache_invalidate";
    case EventKind::kOracleCheck:
      return "oracle_check";
    case EventKind::kFindingRecorded:
      return "finding";
    case EventKind::kPhaseBegin:
      return "phase_begin";
    case EventKind::kPhaseEnd:
      return "phase_end";
    case EventKind::kTxnBegin:
      return "txn_begin";
    case EventKind::kTxnCommit:
      return "txn_commit";
    case EventKind::kTxnAbort:
      return "txn_abort";
  }
  return "?";
}

std::string FormatFlightEvent(const FlightEvent& e) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%llu %s a=%u b=%u",
                static_cast<unsigned long long>(e.tick), EventKindName(e.kind),
                e.a, e.b);
  return buf;
}

std::vector<FlightEvent> FlightRecorder::Dump() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (next_ <= capacity_) {
    out = ring_;
  } else {
    size_t head = next_ % capacity_;  // oldest surviving event
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

}  // namespace obs
}  // namespace pqs
