// Telemetry context: wires the metrics registry and flight recorder to the
// code that emits into them, without plumbing a handle through every layer.
//
// A SessionTelemetry is created per fuzzed database session and installed in
// a thread-local slot for the session's duration (each session runs entirely
// on one thread — the sharding invariant the runner already relies on).
// Engine internals (BufferPool, SqliteConnection) emit through the free
// helpers below, which are a TLS load plus a null check when no session is
// installed. The process-wide kill switch (same idiom as SetBytecodeEnabled)
// disables installation itself, so with telemetry off the per-event cost is
// the null branch and nothing else — enforced by the perf-smoke gate.
//
// Determinism contract (DESIGN.md §13): everything emitted in deterministic
// mode is keyed to the session's logical clock — the count of engine
// statements executed — never wall time. Wall-clock span durations exist
// only behind SetPhaseWallClock(true), which benches opt into, and are
// excluded from deterministic exports.
#ifndef PQS_SRC_OBS_TELEMETRY_H_
#define PQS_SRC_OBS_TELEMETRY_H_

#include <cstdint>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace pqs {
namespace obs {

// Process-wide kill switch. Safe to toggle between runs; not meant to be
// flipped while sessions are in flight.
void SetTelemetryEnabled(bool enabled);
bool TelemetryEnabled();

// Bench opt-in: also record wall-clock span durations. Never enabled on
// deterministic campaign paths.
void SetPhaseWallClock(bool enabled);
bool PhaseWallClockEnabled();

// All telemetry state for one database session.
struct SessionTelemetry {
  explicit SessionTelemetry(size_t flight_capacity =
                                FlightRecorder::kDefaultCapacity)
      : recorder(flight_capacity) {}

  MetricsRegistry metrics;
  FlightRecorder recorder;
  uint64_t clock = 0;      // logical clock: engine statements executed
  uint32_t span_depth = 0; // current phase-span nesting
};

// The session installed on this thread, or nullptr.
SessionTelemetry* CurrentTelemetry();

// Installs `session` in the thread-local slot for this scope. Installs
// nothing (leaving emits as no-ops) when the kill switch is off or
// `session` is null.
class ScopedSessionTelemetry {
 public:
  explicit ScopedSessionTelemetry(SessionTelemetry* session);
  ~ScopedSessionTelemetry();

  ScopedSessionTelemetry(const ScopedSessionTelemetry&) = delete;
  ScopedSessionTelemetry& operator=(const ScopedSessionTelemetry&) = delete;

 private:
  SessionTelemetry* previous_;
};

// ---- Emit helpers (hot path: TLS load + null branch when idle) ----

inline void Count(Counter c, uint64_t delta = 1) {
  SessionTelemetry* t = CurrentTelemetry();
  if (t != nullptr) t->metrics.Count(c, delta);
}

// One engine statement executed: advances the logical clock, counts it, and
// drops a kStatement event in the ring. `kind_ordinal` is the StmtKind,
// `failed` marks StatementStatus::kError.
inline void CountStatement(uint32_t kind_ordinal, bool failed) {
  SessionTelemetry* t = CurrentTelemetry();
  if (t == nullptr) return;
  ++t->clock;
  t->metrics.Count(Counter::kStatementsExecuted);
  if (failed) t->metrics.Count(Counter::kStatementErrors);
  t->recorder.Emit(t->clock, EventKind::kStatement, kind_ordinal,
                   failed ? 1u : 0u);
}

inline void Emit(EventKind kind, uint32_t a = 0, uint32_t b = 0) {
  SessionTelemetry* t = CurrentTelemetry();
  if (t != nullptr) t->recorder.Emit(t->clock, kind, a, b);
}

inline void PivotSelected(uint32_t table_ordinal, uint32_t row_count) {
  SessionTelemetry* t = CurrentTelemetry();
  if (t == nullptr) return;
  t->metrics.Count(Counter::kPivotSelections);
  t->recorder.Emit(t->clock, EventKind::kPivotSelected, table_ordinal,
                   row_count);
}

// Scoped span over one Algorithm-1 phase. Records the logical-tick delta
// into the phase histogram (plus wall micros when the bench opt-in is on)
// and bracketing kPhaseBegin/kPhaseEnd events in the ring.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  SessionTelemetry* session_;  // captured at entry; null when idle
  Phase phase_;
  uint64_t start_tick_ = 0;
  uint64_t start_wall_us_ = 0;
};

}  // namespace obs
}  // namespace pqs

#endif  // PQS_SRC_OBS_TELEMETRY_H_
