#include "src/obs/json.h"

#include <cmath>
#include <cstdio>

namespace pqs {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendJsonKey(std::string* out, const std::string& key) {
  out->push_back('"');
  *out += JsonEscape(key);
  *out += "\": ";
}

std::string JsonNumber(double value, int decimals) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

void JsonBuilder::Comma() {
  if (scope_has_member_.empty()) return;
  if (scope_has_member_.back()) out_ += ", ";
  scope_has_member_.back() = true;
}

void JsonBuilder::Key(const std::string& key) { AppendJsonKey(&out_, key); }

void JsonBuilder::OpenScope(char bracket, const std::string* key) {
  Comma();
  if (key != nullptr) Key(*key);
  out_.push_back(bracket);
  scope_has_member_.push_back(false);
}

void JsonBuilder::CloseScope(char bracket) {
  scope_has_member_.pop_back();
  out_.push_back(bracket);
}

void JsonBuilder::Field(const std::string& key, uint64_t value) {
  Comma();
  Key(key);
  out_ += std::to_string(value);
}

void JsonBuilder::Field(const std::string& key, int64_t value) {
  Comma();
  Key(key);
  out_ += std::to_string(value);
}

void JsonBuilder::Field(const std::string& key, bool value) {
  Comma();
  Key(key);
  out_ += value ? "true" : "false";
}

void JsonBuilder::Field(const std::string& key, double value, int decimals) {
  Comma();
  Key(key);
  out_ += JsonNumber(value, decimals);
}

void JsonBuilder::Field(const std::string& key, const std::string& value) {
  Comma();
  Key(key);
  out_.push_back('"');
  out_ += JsonEscape(value);
  out_.push_back('"');
}

void JsonBuilder::Element(uint64_t value) {
  Comma();
  out_ += std::to_string(value);
}

void JsonBuilder::Element(const std::string& value) {
  Comma();
  out_.push_back('"');
  out_ += JsonEscape(value);
  out_.push_back('"');
}

void JsonBuilder::RawField(const std::string& key, const std::string& json) {
  Comma();
  Key(key);
  out_ += json;
}

}  // namespace obs
}  // namespace pqs
