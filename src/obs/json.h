// One JSON emission path for every machine-readable artifact.
//
// The bench binaries each grew their own snprintf-based JSON formatting
// (bench_common.h escaping vs recorder.h field layout), which meant two
// escaping rules and two numeric formats could drift apart. This header is
// the single serializer: the telemetry metrics exporter (src/obs/metrics),
// the latency recorder (bench/recorder.h), and the bench helpers
// (bench/bench_common.h) all escape strings and format fields through it,
// so every BENCH_*.json section shares one format path.
//
// JsonBuilder is deliberately small: objects, arrays, and typed fields with
// comma management. It produces compact output (no pretty-printing) —
// callers that want indentation for human eyes keep writing their own
// layout but must still escape through JsonEscape.
#ifndef PQS_SRC_OBS_JSON_H_
#define PQS_SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pqs {
namespace obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included): quote, backslash, and control characters per RFC 8259.
std::string JsonEscape(const std::string& s);

// Appends `"key": ` to `out` (escaped), without any comma handling. The
// low-level piece JsonBuilder and the hand-layout bench printers share.
void AppendJsonKey(std::string* out, const std::string& key);

// Formats a double the way every artifact does: fixed notation with
// `decimals` fractional digits (JSON has no NaN/Inf; both serialize as 0).
std::string JsonNumber(double value, int decimals);

// Comma-managed builder for compact JSON.
class JsonBuilder {
 public:
  // Root value: exactly one of BeginObject()/BeginArray() without a key.
  void BeginObject() { OpenScope('{', nullptr); }
  void BeginObject(const std::string& key) { OpenScope('{', &key); }
  void EndObject() { CloseScope('}'); }
  void BeginArray() { OpenScope('[', nullptr); }
  void BeginArray(const std::string& key) { OpenScope('[', &key); }
  void EndArray() { CloseScope(']'); }

  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, int64_t value);
  void Field(const std::string& key, int value) {
    Field(key, static_cast<int64_t>(value));
  }
  void Field(const std::string& key, bool value);
  // Doubles carry an explicit precision so artifacts stay byte-stable
  // across compilers (default %g formatting is not).
  void Field(const std::string& key, double value, int decimals);
  void Field(const std::string& key, const std::string& value);
  // Array element forms (no key).
  void Element(uint64_t value);
  void Element(const std::string& value);

  // Splices an already-formatted JSON value (e.g. a nested builder's
  // output) as the value of `key`. The caller vouches for its validity.
  void RawField(const std::string& key, const std::string& json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void OpenScope(char bracket, const std::string* key);
  void CloseScope(char bracket);
  void Comma();
  void Key(const std::string& key);

  std::string out_;
  // One bool per open scope: has this scope emitted a member yet?
  std::vector<bool> scope_has_member_;
};

}  // namespace obs
}  // namespace pqs

#endif  // PQS_SRC_OBS_JSON_H_
