// Flight recorder: a fixed-capacity ring of recent events, dumped into every
// Finding so a bug report ships with its own provenance trace.
//
// The recorder is per *session* (one fuzzed database), not per process or per
// worker thread: a session always replays identically from its stream seed,
// so the ring contents at the moment a finding fires are a pure function of
// (seed, statement index) — byte-identical whether the campaign ran with 1
// worker or 16. Events are small PODs (no strings, no allocation after
// construction); formatting to text happens only when a dump is rendered
// into a report.
//
// This subsumes the bespoke BufferPool::set_trace/eviction_log API: eviction
// and cache-invalidation events from the storage layer now land in the same
// ring as statement and pivot events from the runner, in logical-clock order.
#ifndef PQS_SRC_OBS_FLIGHT_RECORDER_H_
#define PQS_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pqs {
namespace obs {

enum class EventKind : uint8_t {
  kStatement = 0,        // a=StmtKind, b=StatementStatus (0 ok, 1 error)
  kPivotSelected,        // a=table ordinal, b=row count at selection
  kEviction,             // a=table id, b=page id  (from BufferPool)
  kCacheInvalidation,    // a=entries dropped     (stmt cache / pool flush)
  kOracleCheck,          // a=oracle ordinal, b=1 if it fired
  kFindingRecorded,      // a=oracle ordinal
  kPhaseBegin,           // a=Phase ordinal, b=nesting depth
  kPhaseEnd,             // a=Phase ordinal, b=tick delta since begin
  kTxnBegin,             // a=session, b=snapshot timestamp
  kTxnCommit,            // a=session, b=commit timestamp
  kTxnAbort,             // a=session, b=1 conflict / 0 explicit ROLLBACK
};

const char* EventKindName(EventKind kind);

// One recorded event. `tick` is the session's logical clock: the number of
// engine statements executed so far (never wall time — see DESIGN.md §13).
struct FlightEvent {
  uint64_t tick = 0;
  EventKind kind = EventKind::kStatement;
  uint32_t a = 0;
  uint32_t b = 0;
};

// Renders one event as a stable single-line string for reports.
std::string FormatFlightEvent(const FlightEvent& e);

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  void Emit(uint64_t tick, EventKind kind, uint32_t a = 0, uint32_t b = 0) {
    FlightEvent e;
    e.tick = tick;
    e.kind = kind;
    e.a = a;
    e.b = b;
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[next_ % capacity_] = e;
    }
    ++next_;
  }

  // Events oldest-first. At most `capacity()` entries; earlier events have
  // been overwritten once total_emitted() exceeds capacity().
  std::vector<FlightEvent> Dump() const;

  size_t capacity() const { return capacity_; }
  uint64_t total_emitted() const { return next_; }
  void Clear() {
    ring_.clear();
    next_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<FlightEvent> ring_;
  uint64_t next_ = 0;  // total events ever emitted
};

}  // namespace obs
}  // namespace pqs

#endif  // PQS_SRC_OBS_FLIGHT_RECORDER_H_
