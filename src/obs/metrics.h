// Metrics registry: named counters, gauges, and exact-bucket histograms.
//
// Design mirrors RunStats: one registry per worker session, no atomics on
// the hot path, merged value-wise after the run. Because counter increments
// are a pure function of the session's seed and histogram buckets are exact
// (power-of-two boundaries, merge = add counts, unlike approximating HDR
// schemes), the merged registry of an N-worker campaign is byte-identical
// to the 1-worker run once sessions merge in plan order.
//
// Metric identity is a closed enum, not a string lookup: registration races
// and hash-order iteration are the two classic ways metric output goes
// nondeterministic, and a closed set sidesteps both. New metrics are a
// one-line enum + name-table addition.
#ifndef PQS_SRC_OBS_METRICS_H_
#define PQS_SRC_OBS_METRICS_H_

#include <cstdint>
#include <string>

namespace pqs {
namespace obs {

// Monotonic counters. Keep in sync with CounterName().
enum class Counter : uint8_t {
  kStatementsExecuted = 0,
  kStatementErrors,
  kPivotSelections,
  kPoolHits,           // buffer-pool page hits
  kPoolMisses,         //   "      "   page faults
  kPoolEvictions,
  kPoolWritebacks,
  kStmtCacheHits,      // sqlite3 prepared-statement cache
  kStmtCacheMisses,
  kCacheInvalidations,
  kSchedInsert,        // scheduler action tallies (mirrors RunStats)
  kSchedUpdate,
  kSchedDelete,
  kSchedCreateIndex,
  kSchedDropIndex,
  kSchedMaintenance,
  kFindingsRecorded,
  kTxnBegins,          // transaction workload (K interleaved sessions)
  kTxnCommits,
  kTxnRollbacks,
  kTxnConflicts,       // COMMIT refused (first-committer-wins)
  kCount_,  // sentinel
};

// Gauges record a level; merge takes the max (high-water semantics).
enum class Gauge : uint8_t {
  kMaxSpanDepth = 0,   // deepest phase-span nesting observed
  kMaxFlightEvents,    // most events ever emitted by one session's ring
  kCount_,
};

// Algorithm-1 pipeline phases, in pipeline order. Keep in sync with
// PhaseName() and the phase_profile section of BENCH_throughput.json.
enum class Phase : uint8_t {
  kGenerate = 0,
  kRectify,
  kRender,
  kEngineExecute,
  kGroundTruthReplay,
  kOracleCheck,
  kReduce,
  kCount_,
};

const char* CounterName(Counter c);
const char* GaugeName(Gauge g);
const char* PhaseName(Phase p);

// Exact-bucket histogram: bucket i counts values in [2^(i-1), 2^i), with
// bucket 0 counting zeros and the last bucket open-ended. Merging adds
// bucket counts and sums — exact, so merge order never changes output.
class Histogram {
 public:
  static constexpr int kBuckets = 16;

  void Record(uint64_t value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(int i) const { return buckets_[i]; }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  void Count(Counter c, uint64_t delta = 1) {
    counters_[static_cast<size_t>(c)] += delta;
  }
  uint64_t counter(Counter c) const {
    return counters_[static_cast<size_t>(c)];
  }

  // High-water gauge: keeps the max of all observed values.
  void GaugeMax(Gauge g, uint64_t value) {
    size_t i = static_cast<size_t>(g);
    if (value > gauges_[i]) gauges_[i] = value;
  }
  uint64_t gauge(Gauge g) const { return gauges_[static_cast<size_t>(g)]; }

  // Phase histograms record logical-clock tick deltas per span. Wall-clock
  // micros are recorded separately and only in bench opt-in mode; they are
  // excluded from deterministic output (ToJson(false)).
  void RecordPhaseTicks(Phase p, uint64_t ticks) {
    phase_ticks_[static_cast<size_t>(p)].Record(ticks);
  }
  void RecordPhaseWallMicros(Phase p, uint64_t micros) {
    phase_wall_us_[static_cast<size_t>(p)].Record(micros);
  }
  const Histogram& phase_ticks(Phase p) const {
    return phase_ticks_[static_cast<size_t>(p)];
  }
  const Histogram& phase_wall_micros(Phase p) const {
    return phase_wall_us_[static_cast<size_t>(p)];
  }

  // Value-wise merge, RunStats::Merge style.
  void Merge(const MetricsRegistry& other);

  // Compact JSON object: {"counters": {...}, "gauges": {...},
  // "phase_profile": {...}}. With include_wall the per-phase wall-clock
  // histograms are added; deterministic consumers must pass false.
  std::string ToJson(bool include_wall) const;

 private:
  uint64_t counters_[static_cast<size_t>(Counter::kCount_)] = {};
  uint64_t gauges_[static_cast<size_t>(Gauge::kCount_)] = {};
  Histogram phase_ticks_[static_cast<size_t>(Phase::kCount_)];
  Histogram phase_wall_us_[static_cast<size_t>(Phase::kCount_)];
};

}  // namespace obs
}  // namespace pqs

#endif  // PQS_SRC_OBS_METRICS_H_
