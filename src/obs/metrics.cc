#include "src/obs/metrics.h"

#include "src/obs/json.h"

namespace pqs {
namespace obs {

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kStatementsExecuted:
      return "statements_executed";
    case Counter::kStatementErrors:
      return "statement_errors";
    case Counter::kPivotSelections:
      return "pivot_selections";
    case Counter::kPoolHits:
      return "pool_hits";
    case Counter::kPoolMisses:
      return "pool_misses";
    case Counter::kPoolEvictions:
      return "pool_evictions";
    case Counter::kPoolWritebacks:
      return "pool_writebacks";
    case Counter::kStmtCacheHits:
      return "stmt_cache_hits";
    case Counter::kStmtCacheMisses:
      return "stmt_cache_misses";
    case Counter::kCacheInvalidations:
      return "cache_invalidations";
    case Counter::kSchedInsert:
      return "sched_insert";
    case Counter::kSchedUpdate:
      return "sched_update";
    case Counter::kSchedDelete:
      return "sched_delete";
    case Counter::kSchedCreateIndex:
      return "sched_create_index";
    case Counter::kSchedDropIndex:
      return "sched_drop_index";
    case Counter::kSchedMaintenance:
      return "sched_maintenance";
    case Counter::kFindingsRecorded:
      return "findings_recorded";
    case Counter::kTxnBegins:
      return "txn_begins";
    case Counter::kTxnCommits:
      return "txn_commits";
    case Counter::kTxnRollbacks:
      return "txn_rollbacks";
    case Counter::kTxnConflicts:
      return "txn_conflicts";
    case Counter::kCount_:
      break;
  }
  return "?";
}

const char* GaugeName(Gauge g) {
  switch (g) {
    case Gauge::kMaxSpanDepth:
      return "max_span_depth";
    case Gauge::kMaxFlightEvents:
      return "max_flight_events";
    case Gauge::kCount_:
      break;
  }
  return "?";
}

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kGenerate:
      return "generate";
    case Phase::kRectify:
      return "rectify";
    case Phase::kRender:
      return "render";
    case Phase::kEngineExecute:
      return "engine_execute";
    case Phase::kGroundTruthReplay:
      return "ground_truth_replay";
    case Phase::kOracleCheck:
      return "oracle_check";
    case Phase::kReduce:
      return "reduce";
    case Phase::kCount_:
      break;
  }
  return "?";
}

void Histogram::Record(uint64_t value) {
  int b = 0;
  // Bucket i (i >= 1) holds values in [2^(i-1), 2^i); clamp to last bucket.
  while (b < kBuckets - 1 && value >= (1ull << b)) ++b;
  ++buckets_[b];
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (size_t i = 0; i < static_cast<size_t>(Counter::kCount_); ++i) {
    counters_[i] += other.counters_[i];
  }
  for (size_t i = 0; i < static_cast<size_t>(Gauge::kCount_); ++i) {
    if (other.gauges_[i] > gauges_[i]) gauges_[i] = other.gauges_[i];
  }
  for (size_t i = 0; i < static_cast<size_t>(Phase::kCount_); ++i) {
    phase_ticks_[i].Merge(other.phase_ticks_[i]);
    phase_wall_us_[i].Merge(other.phase_wall_us_[i]);
  }
}

namespace {

void AppendHistogram(JsonBuilder* jb, const std::string& key,
                     const Histogram& h) {
  jb->BeginObject(key);
  jb->Field("spans", h.count());
  jb->Field("total", h.sum());
  jb->Field("max", h.max());
  jb->BeginArray("buckets");
  for (int i = 0; i < Histogram::kBuckets; ++i) jb->Element(h.bucket(i));
  jb->EndArray();
  jb->EndObject();
}

}  // namespace

std::string MetricsRegistry::ToJson(bool include_wall) const {
  JsonBuilder jb;
  jb.BeginObject();
  jb.BeginObject("counters");
  for (size_t i = 0; i < static_cast<size_t>(Counter::kCount_); ++i) {
    jb.Field(CounterName(static_cast<Counter>(i)), counters_[i]);
  }
  jb.EndObject();
  jb.BeginObject("gauges");
  for (size_t i = 0; i < static_cast<size_t>(Gauge::kCount_); ++i) {
    jb.Field(GaugeName(static_cast<Gauge>(i)), gauges_[i]);
  }
  jb.EndObject();
  jb.BeginObject("phase_profile");
  for (size_t i = 0; i < static_cast<size_t>(Phase::kCount_); ++i) {
    AppendHistogram(&jb, PhaseName(static_cast<Phase>(i)), phase_ticks_[i]);
  }
  jb.EndObject();
  if (include_wall) {
    jb.BeginObject("phase_wall_micros");
    for (size_t i = 0; i < static_cast<size_t>(Phase::kCount_); ++i) {
      AppendHistogram(&jb, PhaseName(static_cast<Phase>(i)),
                      phase_wall_us_[i]);
    }
    jb.EndObject();
  }
  jb.EndObject();
  return jb.TakeString();
}

}  // namespace obs
}  // namespace pqs
