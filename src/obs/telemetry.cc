#include "src/obs/telemetry.h"

#include <atomic>
#include <chrono>

namespace pqs {
namespace obs {

namespace {

std::atomic<bool> g_telemetry_enabled{true};
std::atomic<bool> g_phase_wall_clock{false};

thread_local SessionTelemetry* t_session = nullptr;

uint64_t WallMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void SetTelemetryEnabled(bool enabled) {
  g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

bool TelemetryEnabled() {
  return g_telemetry_enabled.load(std::memory_order_relaxed);
}

void SetPhaseWallClock(bool enabled) {
  g_phase_wall_clock.store(enabled, std::memory_order_relaxed);
}

bool PhaseWallClockEnabled() {
  return g_phase_wall_clock.load(std::memory_order_relaxed);
}

SessionTelemetry* CurrentTelemetry() { return t_session; }

ScopedSessionTelemetry::ScopedSessionTelemetry(SessionTelemetry* session)
    : previous_(t_session) {
  t_session = TelemetryEnabled() ? session : nullptr;
}

ScopedSessionTelemetry::~ScopedSessionTelemetry() { t_session = previous_; }

ScopedPhase::ScopedPhase(Phase phase) : session_(t_session), phase_(phase) {
  if (session_ == nullptr) return;
  start_tick_ = session_->clock;
  ++session_->span_depth;
  session_->metrics.GaugeMax(Gauge::kMaxSpanDepth, session_->span_depth);
  session_->recorder.Emit(session_->clock, EventKind::kPhaseBegin,
                          static_cast<uint32_t>(phase_),
                          session_->span_depth);
  if (PhaseWallClockEnabled()) start_wall_us_ = WallMicros();
}

ScopedPhase::~ScopedPhase() {
  if (session_ == nullptr) return;
  uint64_t ticks = session_->clock - start_tick_;
  session_->metrics.RecordPhaseTicks(phase_, ticks);
  if (start_wall_us_ != 0) {
    session_->metrics.RecordPhaseWallMicros(phase_,
                                            WallMicros() - start_wall_us_);
  }
  session_->recorder.Emit(session_->clock, EventKind::kPhaseEnd,
                          static_cast<uint32_t>(phase_),
                          static_cast<uint32_t>(ticks));
  --session_->span_depth;
}

}  // namespace obs
}  // namespace pqs
