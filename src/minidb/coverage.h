// MiniDB feature-coverage tracking.
//
// The paper reports gcov line coverage of the tested DBMS after a PQS run
// (Table 4). gcov of a third-party binary is unavailable offline, so MiniDB
// instruments itself at feature granularity instead: every structurally
// distinct engine behavior a statement exercises marks one Feature. A
// CoverageMap accumulates hit counts; bench_table4 merges the maps of every
// connection in a session to report "features covered / total".
#ifndef PQS_SRC_MINIDB_COVERAGE_H_
#define PQS_SRC_MINIDB_COVERAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace pqs {
namespace minidb {

enum class Feature : size_t {
  kCreateTable = 0,
  kColumnInteger,
  kColumnReal,
  kColumnText,
  kConstraintUnique,
  kConstraintPrimaryKey,
  kConstraintNotNull,
  kCreateIndex,
  kUniqueIndex,
  kPartialIndex,
  kInsert,
  kMultiRowInsert,
  kInsertNullValue,
  kInsertAffinityCoercion,
  kConstraintViolationRejected,
  kSelect,
  kSelectWhere,
  kSelectJoin,
  kSelectProjection,
  kSelectDistinct,
  kSelectOrderBy,
  kSelectLimit,
  kJoinInner,
  kJoinLeft,
  kJoinCross,
  kLeftJoinNullPad,
  kRowMatched,
  kRowFiltered,
  kExprColumnRef,
  kExprComparison,
  kExprLogicalAnd,
  kExprLogicalOr,
  kExprNot,
  kExprArithmetic,
  kExprDivision,
  kExprConcat,
  kExprIsNull,
  kExprInList,
  kExprBetween,
  kExprLike,
  kNullComparison,
  kCrossTypeComparison,
  kStatementError,
  // Typed expression subsystem (functions / CAST / CASE / collations).
  kExprFunction,          // any registry function call
  kExprFunctionVariadic,  // function call with ≥3 arguments
  kExprCast,
  kExprCase,
  kExprCaseElse,          // CASE carrying an ELSE arm
  kExprCollate,
  kExprLikeEscape,        // LIKE with an ESCAPE clause
  kExprInListNull,        // IN list containing a NULL element
  // Statement-level mutation engine (indexes / UPDATE / DELETE /
  // maintenance).
  kUpdate,
  kUpdateAllRows,         // UPDATE without a WHERE clause
  kDelete,
  kDropIndex,
  kMaintenance,           // REINDEX / OPTIMIZE TABLE rebuild
  kIndexScan,             // SELECT answered through a secondary index
  kPartialIndexScan,      // ...through a *partial* index
  // Aggregation / grouping pipeline.
  kExprAggregate,         // COUNT/SUM/AVG/MIN/MAX call in a SELECT
  kSelectGroupBy,
  kSelectHaving,
  kAggregateDistinct,     // COUNT(DISTINCT e) and friends
  kAggregateEmptyInput,   // global aggregate over zero input rows
  // MVCC transaction layer.
  kTxnBegin,
  kTxnCommit,
  kTxnRollback,
  kTxnConflict,           // COMMIT refused (first-committer-wins)
  kTxnSnapshotRead,       // SELECT answered from an in-transaction snapshot

  kFeatureCount,
};

inline constexpr size_t kNumFeatures =
    static_cast<size_t>(Feature::kFeatureCount);

const char* FeatureName(Feature f);

class CoverageMap {
 public:
  void Mark(Feature f) { ++hits_[static_cast<size_t>(f)]; }

  uint64_t Hits(Feature f) const { return hits_[static_cast<size_t>(f)]; }

  size_t CoveredFeatures() const {
    size_t covered = 0;
    for (uint64_t h : hits_) covered += h > 0 ? 1 : 0;
    return covered;
  }

  double CoverageRatio() const {
    return static_cast<double>(CoveredFeatures()) /
           static_cast<double>(kNumFeatures);
  }

  uint64_t TotalHits() const {
    uint64_t total = 0;
    for (uint64_t h : hits_) total += h;
    return total;
  }

  // Value merge: adds `other`'s hit counts into this map. Merging the
  // per-worker maps of a sharded run in any order yields the same totals
  // as a single-threaded run over the same shard plan (addition commutes).
  void Merge(const CoverageMap& other) {
    for (size_t i = 0; i < kNumFeatures; ++i) hits_[i] += other.hits_[i];
  }

  void Reset() { hits_.fill(0); }

 private:
  std::array<uint64_t, kNumFeatures> hits_{};
};

}  // namespace minidb
}  // namespace pqs

#endif  // PQS_SRC_MINIDB_COVERAGE_H_
