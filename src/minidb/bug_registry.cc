#include "src/minidb/bug_registry.h"

namespace pqs {
namespace minidb {

namespace {

// The distribution across dialects and oracles deliberately mirrors the
// paper's findings: the SQLite component found by far the most bugs, the
// containment oracle dominates overall, and the PostgreSQL findings skew
// toward the error oracle (Tables 2 and 3).
const std::vector<BugInfo>& BuildRegistry() {
  static const std::vector<BugInfo> registry = {
      // SQLite-flavored dialect: 10 containment, 3 error, 1 crash.
      {BugId::kPartialIndexIsNotInference, "partial-index-is-not-inference",
       Dialect::kSqliteFlex, OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kIndexedOrSkip, "indexed-or-skip", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kUniqueNullLost, "unique-null-lost", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kTextEqInterning, "text-eq-interning", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kNegIntCompare, "neg-int-compare", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kRealTruncCompare, "real-trunc-compare", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kLikeAnchored, "like-anchored", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kNotNullNot, "not-null-not", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kJoinDupRightMatch, "join-dup-right-match",
       Dialect::kSqliteFlex, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kDistinctTruncMerge, "distinct-trunc-merge",
       Dialect::kSqliteFlex, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kOrTermLimit, "or-term-limit", Dialect::kSqliteFlex,
       OracleKind::kError, ReportOutcome::kFixed},
      {BugId::kConcatNumericError, "concat-numeric-error",
       Dialect::kSqliteFlex, OracleKind::kError, ReportOutcome::kFixed},
      {BugId::kBetweenSwapError, "between-swap-error", Dialect::kSqliteFlex,
       OracleKind::kError, ReportOutcome::kIntended},
      {BugId::kDeepExprCrash, "deep-expr-crash", Dialect::kSqliteFlex,
       OracleKind::kCrash, ReportOutcome::kDuplicate},

      // MySQL-flavored dialect: 5 containment, 2 error, 2 crash.
      {BugId::kStrNumCoercionPrefix, "str-num-coercion-prefix",
       Dialect::kMysqlLike, OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kInListFirstOnly, "in-list-first-only", Dialect::kMysqlLike,
       OracleKind::kContainment, ReportOutcome::kVerified},
      {BugId::kJoinPredicatePushdown, "join-predicate-pushdown",
       Dialect::kMysqlLike, OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kUnsignedSubWrap, "unsigned-sub-wrap", Dialect::kMysqlLike,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kOrderLimitOffByOne, "order-limit-off-by-one",
       Dialect::kMysqlLike, OracleKind::kContainment,
       ReportOutcome::kVerified},
      {BugId::kDivZeroError, "div-zero-error", Dialect::kMysqlLike,
       OracleKind::kError, ReportOutcome::kVerified},
      {BugId::kDupInListError, "dup-in-list-error", Dialect::kMysqlLike,
       OracleKind::kError, ReportOutcome::kIntended},
      {BugId::kLikeWildcardCrash, "like-wildcard-crash", Dialect::kMysqlLike,
       OracleKind::kCrash, ReportOutcome::kDuplicate},
      {BugId::kDistinctOrderCrash, "distinct-order-crash",
       Dialect::kMysqlLike, OracleKind::kCrash, ReportOutcome::kFixed},

      // PostgreSQL-flavored dialect: 1 containment, 4 error, 1 crash.
      {BugId::kIsNullArithLost, "is-null-arith-lost",
       Dialect::kPostgresStrict, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kParallelWorkerError, "parallel-worker-error",
       Dialect::kPostgresStrict, OracleKind::kError,
       ReportOutcome::kVerified},
      {BugId::kMultiJoinOrderError, "multi-join-order-error",
       Dialect::kPostgresStrict, OracleKind::kError,
       ReportOutcome::kVerified},
      {BugId::kNumericOverflowError, "numeric-overflow-error",
       Dialect::kPostgresStrict, OracleKind::kError,
       ReportOutcome::kIntended},
      {BugId::kCollationMismatchError, "collation-mismatch-error",
       Dialect::kPostgresStrict, OracleKind::kError,
       ReportOutcome::kIntended},
      {BugId::kBetweenNullCrash, "between-null-crash",
       Dialect::kPostgresStrict, OracleKind::kCrash,
       ReportOutcome::kDuplicate},

      // Typed expression subsystem (functions / CAST / CASE / LIKE ESCAPE /
      // collations): 4 SQLite, 1 MySQL, 1 PostgreSQL, all containment —
      // expression semantics drift silently, it does not error or crash.
      {BugId::kLikeEscapeMiss, "like-escape-miss", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kCastTruncAffinity, "cast-trunc-affinity",
       Dialect::kSqliteFlex, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kCollateNocaseRange, "collate-nocase-range",
       Dialect::kSqliteFlex, OracleKind::kContainment,
       ReportOutcome::kVerified},
      {BugId::kCoalesceFirstNull, "coalesce-first-null",
       Dialect::kSqliteFlex, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kCaseElseSkip, "case-else-skip", Dialect::kMysqlLike,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kInListNullSemantics, "in-list-null-semantics",
       Dialect::kPostgresStrict, OracleKind::kContainment,
       ReportOutcome::kVerified},

      // Statement-level mutation engine (indexes / UPDATE / DELETE /
      // maintenance): 3 SQLite, 2 MySQL, 2 PostgreSQL. Index corruption
      // drifts silently (containment); the mutation-path crash and the
      // spurious maintenance error keep the crash/error oracles exercised
      // on the new statement kinds.
      {BugId::kIndexLookupSkipLast, "index-lookup-skip-last",
       Dialect::kSqliteFlex, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kUpdateIndexStale, "update-index-stale", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kReindexTruncate, "reindex-truncate", Dialect::kSqliteFlex,
       OracleKind::kContainment, ReportOutcome::kVerified},
      {BugId::kDeleteOverrun, "delete-overrun", Dialect::kMysqlLike,
       OracleKind::kContainment, ReportOutcome::kFixed},
      {BugId::kUpdateSetOrCrash, "update-set-or-crash", Dialect::kMysqlLike,
       OracleKind::kCrash, ReportOutcome::kDuplicate},
      {BugId::kPartialIndexUpdateMiss, "partial-index-update-miss",
       Dialect::kPostgresStrict, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kReindexPartialError, "reindex-partial-error",
       Dialect::kPostgresStrict, OracleKind::kError,
       ReportOutcome::kIntended},

      // Aggregation / grouping pipeline: 2 SQLite, 2 MySQL, 2 PostgreSQL.
      // Containment is structurally blind here (no pivot row survives
      // grouping); TLP's partition recombination is the intended finder
      // for all six, with NoREC occasionally co-detecting the ones that
      // alter COUNT-visible row flow.
      {BugId::kAggEmptyGroupZero, "agg-empty-group-zero",
       Dialect::kSqliteFlex, OracleKind::kTlp, ReportOutcome::kFixed},
      {BugId::kSumOverflowWrap, "sum-overflow-wrap", Dialect::kSqliteFlex,
       OracleKind::kTlp, ReportOutcome::kFixed},
      {BugId::kAvgIntegerDiv, "avg-integer-div", Dialect::kMysqlLike,
       OracleKind::kTlp, ReportOutcome::kVerified},
      {BugId::kCountDistinctDup, "count-distinct-dup", Dialect::kMysqlLike,
       OracleKind::kTlp, ReportOutcome::kFixed},
      {BugId::kHavingBeforeGroup, "having-before-group",
       Dialect::kPostgresStrict, OracleKind::kTlp, ReportOutcome::kFixed},
      {BugId::kTlpNullPartitionDrop, "tlp-null-partition-drop",
       Dialect::kPostgresStrict, OracleKind::kTlp,
       ReportOutcome::kVerified},

      // Paged storage engine (buffer pool / page heap): 2 SQLite, 1 MySQL,
      // 1 PostgreSQL, all containment — storage corruption silently loses
      // or resurrects rows, which the pivot check observes as a missing
      // pivot or a state-compare mismatch; nothing errors or crashes.
      {BugId::kEvictDropsDirtyPage, "evict-drops-dirty-page",
       Dialect::kSqliteFlex, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kPageSplitRowLoss, "page-split-row-loss",
       Dialect::kSqliteFlex, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kStalePageReadAfterUpdate, "stale-page-read-after-update",
       Dialect::kMysqlLike, OracleKind::kContainment,
       ReportOutcome::kVerified},
      {BugId::kIndexHeapDesync, "index-heap-desync",
       Dialect::kPostgresStrict, OracleKind::kContainment,
       ReportOutcome::kFixed},

      // MVCC transaction layer: 2 SQLite, 2 MySQL, 1 PostgreSQL. The
      // anomaly classes (lost update, dirty read, write skew, uncommitted
      // snapshot read) diverge from the serial replay of the committed
      // transactions — the txn-serial oracle; the rollback bug corrupts
      // indexes only, so in-snapshot pivot probes (containment) find it.
      {BugId::kTxnLostUpdate, "txn-lost-update", Dialect::kSqliteFlex,
       OracleKind::kTxnSerial, ReportOutcome::kFixed},
      {BugId::kTxnRollbackStaleIndex, "txn-rollback-stale-index",
       Dialect::kSqliteFlex, OracleKind::kContainment,
       ReportOutcome::kFixed},
      {BugId::kTxnDirtyRead, "txn-dirty-read", Dialect::kMysqlLike,
       OracleKind::kTxnSerial, ReportOutcome::kVerified},
      {BugId::kTxnSnapshotUncommittedRead, "txn-snapshot-uncommitted-read",
       Dialect::kMysqlLike, OracleKind::kTxnSerial, ReportOutcome::kFixed},
      {BugId::kTxnWriteSkew, "txn-write-skew", Dialect::kPostgresStrict,
       OracleKind::kTxnSerial, ReportOutcome::kVerified},
  };
  return registry;
}

}  // namespace

const std::vector<BugInfo>& BugRegistry() { return BuildRegistry(); }

const BugInfo& LookupBug(BugId id) {
  for (const BugInfo& info : BugRegistry()) {
    if (info.id == id) return info;
  }
  // BugId values not in the registry are a programming error; returning the
  // first entry keeps this function total without exceptions.
  return BugRegistry().front();
}

std::vector<BugInfo> BugsForDialect(Dialect dialect) {
  std::vector<BugInfo> out;
  for (const BugInfo& info : BugRegistry()) {
    if (info.dialect == dialect) out.push_back(info);
  }
  return out;
}

}  // namespace minidb
}  // namespace pqs
