#include "src/minidb/coverage.h"

namespace pqs {
namespace minidb {

const char* FeatureName(Feature f) {
  switch (f) {
    case Feature::kCreateTable: return "create-table";
    case Feature::kColumnInteger: return "column-integer";
    case Feature::kColumnReal: return "column-real";
    case Feature::kColumnText: return "column-text";
    case Feature::kConstraintUnique: return "constraint-unique";
    case Feature::kConstraintPrimaryKey: return "constraint-primary-key";
    case Feature::kConstraintNotNull: return "constraint-not-null";
    case Feature::kCreateIndex: return "create-index";
    case Feature::kUniqueIndex: return "unique-index";
    case Feature::kPartialIndex: return "partial-index";
    case Feature::kInsert: return "insert";
    case Feature::kMultiRowInsert: return "multi-row-insert";
    case Feature::kInsertNullValue: return "insert-null-value";
    case Feature::kInsertAffinityCoercion: return "insert-affinity-coercion";
    case Feature::kConstraintViolationRejected:
      return "constraint-violation-rejected";
    case Feature::kSelect: return "select";
    case Feature::kSelectWhere: return "select-where";
    case Feature::kSelectJoin: return "select-join";
    case Feature::kSelectProjection: return "select-projection";
    case Feature::kSelectDistinct: return "select-distinct";
    case Feature::kSelectOrderBy: return "select-order-by";
    case Feature::kSelectLimit: return "select-limit";
    case Feature::kJoinInner: return "join-inner";
    case Feature::kJoinLeft: return "join-left";
    case Feature::kJoinCross: return "join-cross";
    case Feature::kLeftJoinNullPad: return "left-join-null-pad";
    case Feature::kRowMatched: return "row-matched";
    case Feature::kRowFiltered: return "row-filtered";
    case Feature::kExprColumnRef: return "expr-column-ref";
    case Feature::kExprComparison: return "expr-comparison";
    case Feature::kExprLogicalAnd: return "expr-logical-and";
    case Feature::kExprLogicalOr: return "expr-logical-or";
    case Feature::kExprNot: return "expr-not";
    case Feature::kExprArithmetic: return "expr-arithmetic";
    case Feature::kExprDivision: return "expr-division";
    case Feature::kExprConcat: return "expr-concat";
    case Feature::kExprIsNull: return "expr-is-null";
    case Feature::kExprInList: return "expr-in-list";
    case Feature::kExprBetween: return "expr-between";
    case Feature::kExprLike: return "expr-like";
    case Feature::kNullComparison: return "null-comparison";
    case Feature::kCrossTypeComparison: return "cross-type-comparison";
    case Feature::kStatementError: return "statement-error";
    case Feature::kExprFunction: return "expr-function";
    case Feature::kExprFunctionVariadic: return "expr-function-variadic";
    case Feature::kExprCast: return "expr-cast";
    case Feature::kExprCase: return "expr-case";
    case Feature::kExprCaseElse: return "expr-case-else";
    case Feature::kExprCollate: return "expr-collate";
    case Feature::kExprLikeEscape: return "expr-like-escape";
    case Feature::kExprInListNull: return "expr-in-list-null";
    case Feature::kUpdate: return "update";
    case Feature::kUpdateAllRows: return "update-all-rows";
    case Feature::kDelete: return "delete";
    case Feature::kDropIndex: return "drop-index";
    case Feature::kMaintenance: return "maintenance-rebuild";
    case Feature::kIndexScan: return "index-scan";
    case Feature::kPartialIndexScan: return "partial-index-scan";
    case Feature::kExprAggregate: return "expr-aggregate";
    case Feature::kSelectGroupBy: return "select-group-by";
    case Feature::kSelectHaving: return "select-having";
    case Feature::kAggregateDistinct: return "aggregate-distinct";
    case Feature::kAggregateEmptyInput: return "aggregate-empty-input";
    case Feature::kTxnBegin: return "txn-begin";
    case Feature::kTxnCommit: return "txn-commit";
    case Feature::kTxnRollback: return "txn-rollback";
    case Feature::kTxnConflict: return "txn-conflict";
    case Feature::kTxnSnapshotRead: return "txn-snapshot-read";
    case Feature::kFeatureCount: break;
  }
  return "?";
}

}  // namespace minidb
}  // namespace pqs
