#include "src/minidb/storage.h"

#include <utility>

namespace pqs {
namespace minidb {

void TableStore::Configure(BufferPool* pool, uint32_t table_id,
                           const StorageOptions* opts,
                           const BugConfig* bugs) {
  pool_ = pool;
  table_id_ = table_id;
  bugs_ = bugs;
  paged_ = opts->paged;
  page_rows_ = opts->page_rows == 0 ? 1 : opts->page_rows;
}

size_t TableStore::Append(StoredRow row) {
  ++version_;
  if (!paged_) {
    flat_.push_back(std::move(row));
    ++row_count_;
    return flat_.size() - 1;
  }
  if (disk_.empty() || next_slot_ == page_rows_) {
    // Allocate a fresh tail page. When the heap already has pages this
    // models a page split, and kPageSplitRowLoss makes the split lose the
    // last row of the page that just filled up.
    if (!disk_.empty() && bugs_ != nullptr &&
        bugs_->enabled(BugId::kPageSplitRowLoss)) {
      int fi = pool_->Fetch(table_id_, static_cast<uint32_t>(next_page_),
                            &disk_[next_page_], BufferPool::Intent::kWrite);
      BufferPool::Frame& f = pool_->frame(fi);
      if (!f.rows.empty()) f.rows.pop_back();
      pool_->Unpin(fi);
    }
    disk_.emplace_back();
    next_page_ = disk_.size() - 1;
    next_slot_ = 0;
  }
  size_t pos = next_page_ * static_cast<size_t>(page_rows_) + next_slot_;
  int fi = pool_->Fetch(table_id_, static_cast<uint32_t>(next_page_),
                        &disk_[next_page_], BufferPool::Intent::kWrite);
  pool_->frame(fi).rows.push_back(std::move(row));
  pool_->Unpin(fi);
  ++next_slot_;
  ++row_count_;
  return pos;
}

void TableStore::Overwrite(size_t pos, StoredRow row) {
  ++version_;
  if (!paged_) {
    if (pos < flat_.size()) flat_[pos] = std::move(row);
    return;
  }
  size_t page = pos / page_rows_;
  size_t slot = pos % page_rows_;
  if (page >= disk_.size()) return;
  int fi = pool_->Fetch(table_id_, static_cast<uint32_t>(page), &disk_[page],
                        BufferPool::Intent::kUpdate);
  BufferPool::Frame& f = pool_->frame(fi);
  if (slot < f.rows.size()) f.rows[slot] = std::move(row);
  pool_->Unpin(fi);
}

void TableStore::ReplaceAll(std::vector<StoredRow> rows) {
  ++version_;
  if (!paged_) {
    flat_ = std::move(rows);
    row_count_ = flat_.size();
    return;
  }
  // The old disk image is dead wholesale: frames caching it must be
  // forgotten (not written back) before their backing pointers dangle.
  pool_->DiscardTable(table_id_);
  disk_.clear();
  next_page_ = 0;
  next_slot_ = 0;
  row_count_ = rows.size();
  size_t i = 0;
  while (i < rows.size()) {
    disk_.emplace_back();
    DiskPage& page = disk_.back();
    for (size_t s = 0; s < page_rows_ && i < rows.size(); ++s, ++i) {
      page.rows.push_back(std::move(rows[i]));
    }
  }
  if (disk_.empty()) disk_.emplace_back();
  next_page_ = disk_.size() - 1;
  next_slot_ = disk_.back().rows.size();
}

void TableStore::Clear() { ReplaceAll({}); }

const StoredRow* TableStore::Cursor::TryRow(size_t pos) {
  const TableStore& s = *store_;
  if (!s.paged_) {
    return pos < s.flat_.size() ? &s.flat_[pos] : nullptr;
  }
  size_t page = pos / s.page_rows_;
  size_t slot = pos % s.page_rows_;
  if (page >= s.disk_.size()) return nullptr;
  if (frame_ < 0 || page_ != page) {
    Release();
    frame_ = s.pool_->Fetch(s.table_id_, static_cast<uint32_t>(page),
                            const_cast<DiskPage*>(&s.disk_[page]),
                            BufferPool::Intent::kRead);
    page_ = page;
  }
  const BufferPool::Frame& f = s.pool_->frame(frame_);
  return slot < f.rows.size() ? &f.rows[slot] : nullptr;
}

void TableStore::Cursor::Release() {
  if (frame_ >= 0) {
    store_->pool_->Unpin(frame_);
    frame_ = -1;
  }
}

const std::vector<StoredRow>& TableStore::Materialized() const {
  if (!paged_) return flat_;
  bool cacheable = bugs_ == nullptr || !HasStorageBug(*bugs_);
  if (cacheable && scratch_version_ == version_) return scratch_;
  scratch_.clear();
  scratch_.reserve(row_count_);
  ForEachBatch([this](size_t, const StoredRow* rows, size_t n) {
    for (size_t i = 0; i < n; ++i) scratch_.push_back(rows[i]);
    return true;
  });
  scratch_version_ = cacheable ? version_ : ~uint64_t{0};
  return scratch_;
}

}  // namespace minidb
}  // namespace pqs
