#include "src/minidb/database.h"

#include <algorithm>

#include "src/common/interner.h"
#include "src/interp/bytecode.h"

namespace pqs {
namespace minidb {

namespace {

// Splits a WHERE tree into its top-level AND conjuncts (a non-AND node is
// its own single conjunct). The scan planner matches index probes and
// partial-index predicates against these.
void FlattenConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kBinary && expr.bop == BinaryOp::kAnd &&
      expr.args.size() == 2 && expr.args[0] && expr.args[1]) {
    FlattenConjuncts(*expr.args[0], out);
    FlattenConjuncts(*expr.args[1], out);
    return;
  }
  out->push_back(&expr);
}

// Lexicographic total order of index key tuples (ValueCompare per cell:
// NULL < numeric < TEXT), with the row position as the tie-break — the
// "B-tree page order" the ordered entry lists maintain.
bool KeyEntryLess(const std::pair<std::vector<SqlValue>, size_t>& a,
                  const std::pair<std::vector<SqlValue>, size_t>& b) {
  size_t n = a.first.size() < b.first.size() ? a.first.size() : b.first.size();
  for (size_t i = 0; i < n; ++i) {
    int c = ValueCompare(a.first[i], b.first[i]);
    if (c != 0) return c < 0;
  }
  if (a.first.size() != b.first.size()) {
    return a.first.size() < b.first.size();
  }
  return a.second < b.second;
}

// True if `conjunct` is a `col <cmp> literal` (either side) comparison over
// one of the index's key columns — the probe shape the planner can answer
// from the ordered entries alone.
bool IsIndexProbe(const std::vector<std::string>& index_columns,
                  const std::string& table_name, const Expr& conjunct) {
  if (conjunct.kind != ExprKind::kBinary || !IsComparisonOp(conjunct.bop) ||
      conjunct.args.size() != 2 || !conjunct.args[0] || !conjunct.args[1]) {
    return false;
  }
  for (int side = 0; side < 2; ++side) {
    const Expr& col = *conjunct.args[side];
    const Expr& lit = *conjunct.args[1 - side];
    if (col.kind != ExprKind::kColumnRef || lit.kind != ExprKind::kLiteral) {
      continue;
    }
    if (!col.table.empty() && col.table != table_name) continue;
    for (const std::string& key_col : index_columns) {
      if (key_col == col.column) return true;
    }
  }
  return false;
}

// Finds the first column=column comparison node in the expression, if any
// (used by the join-predicate-pushdown bug to pick its victim term).
const Expr* FirstColumnColumnCompare(const Expr& expr) {
  if (expr.kind == ExprKind::kBinary && IsComparisonOp(expr.bop) &&
      expr.args.size() == 2 && expr.args[0] && expr.args[1] &&
      expr.args[0]->kind == ExprKind::kColumnRef &&
      expr.args[1]->kind == ExprKind::kColumnRef) {
    return &expr;
  }
  for (const ExprPtr& a : expr.args) {
    if (a == nullptr) continue;
    if (const Expr* found = FirstColumnColumnCompare(*a)) return found;
  }
  return nullptr;
}

// True if some comparison mixes a text literal with a numeric-affinity
// column or a numeric literal with a text-affinity column (the
// cross-type-comparison coverage feature).
bool HasCrossTypeCompare(
    const Expr& expr,
    const std::vector<std::pair<std::string, Affinity>>& column_affinity) {
  if (expr.kind == ExprKind::kBinary && IsComparisonOp(expr.bop) &&
      expr.args.size() == 2 && expr.args[0] && expr.args[1]) {
    for (int side = 0; side < 2; ++side) {
      const Expr& lit = *expr.args[side];
      const Expr& col = *expr.args[1 - side];
      if (lit.kind != ExprKind::kLiteral || col.kind != ExprKind::kColumnRef) {
        continue;
      }
      for (const auto& [name, affinity] : column_affinity) {
        if (name != col.column) continue;
        bool text_col = affinity == Affinity::kText;
        bool text_lit = lit.literal.cls == StorageClass::kText;
        if (!lit.literal.is_null() && text_col != text_lit) return true;
      }
    }
  }
  for (const ExprPtr& a : expr.args) {
    if (a != nullptr && HasCrossTypeCompare(*a, column_affinity)) return true;
  }
  return false;
}

bool ContainsLongWildcardLike(const Expr& expr) {
  if (expr.kind == ExprKind::kLike && expr.args.size() == 2 &&
      expr.args[1] != nullptr && expr.args[1]->kind == ExprKind::kLiteral &&
      expr.args[1]->literal.cls == StorageClass::kText) {
    const std::string& p = expr.args[1]->literal.t;
    if (p.size() >= 4 && p.front() == '%' && p.back() == '%') return true;
  }
  for (const ExprPtr& a : expr.args) {
    if (a != nullptr && ContainsLongWildcardLike(*a)) return true;
  }
  return false;
}

// True if the (nullable) partial-index predicate covers `row`.
bool RowCoveredByPartial(const Expr* where, const RowSchema& schema,
                         const EvalContext& ctx,
                         const std::vector<SqlValue>& row) {
  if (where == nullptr) return true;
  RowView view{&schema, &row};
  bool error = false;
  return EvaluatePredicate(*where, view, ctx, &error) == Bool3::kTrue &&
         !error;
}

// Same, through the predicate program compiled at CREATE INDEX. Index
// maintenance runs this once per row; the program falls back to the tree
// evaluator when invalid, so results match RowCoveredByPartial exactly.
bool RowCoveredByPartialCode(const Expr* where, const CompiledExpr& code,
                             const RowSchema& schema, const EvalContext& ctx,
                             const std::vector<SqlValue>& row) {
  if (where == nullptr) return true;
  RowView view{&schema, &row};
  EvalResult r = code.Run(view, ctx);
  return !r.error && Truthiness(r.value, ctx.dialect) == Bool3::kTrue;
}

// True if two rows collide on the key columns: every key value non-NULL
// (SQL NULLs are distinct under UNIQUE) and pairwise equal.
bool KeyColumnsCollide(const std::vector<int>& key_indexes,
                       const std::vector<SqlValue>& a,
                       const std::vector<SqlValue>& b) {
  for (int idx : key_indexes) {
    const SqlValue& va = a[static_cast<size_t>(idx)];
    const SqlValue& vb = b[static_cast<size_t>(idx)];
    if (va.is_null() || vb.is_null() || !ValueEquals(va, vb)) return false;
  }
  return true;
}

// When a storage-layer bug class is armed, a paged engine runs on tiny
// pages and a tiny pool so generator-scale tables (3-12 rows) reach page
// splits and eviction pressure within HuntBug's default budget; the
// caller's seed is preserved so shard determinism is unaffected.
StorageOptions ArmStorage(StorageOptions opts, const BugConfig& bugs) {
  if (opts.paged && HasStorageBug(bugs)) {
    uint64_t seed = opts.seed;
    opts = StorageOptions::Stress();
    opts.seed = seed;
  }
  return opts;
}

}  // namespace

Database::Database(Dialect dialect, BugConfig bugs, StorageOptions storage)
    : dialect_(dialect),
      bugs_(bugs),
      storage_opts_(ArmStorage(storage, bugs)),
      pool_(storage_opts_.pool_frames, storage_opts_.seed, &bugs_) {}

std::string Database::EngineName() const {
  return std::string("minidb-") + DialectName(dialect_);
}

bool Database::Reset() {
  // Frames point into the tables' disk pages; drop them (no write-back)
  // before the pages are destroyed. Table ids are NOT recycled, so a
  // frame of a dead table could never be mistaken for a new table's page
  // even if one survived — but its write-back pointer would dangle.
  pool_.Reset();
  tables_.clear();
  indexes_.clear();
  // An aborted session may leave open transactions behind; a reset rolls
  // them back implicitly with everything else.
  txns_.clear();
  active_session_ = 0;
  commit_clock_ = 0;
  in_epoch_ = false;
  last_write_ts_.clear();
  rollback_corrupted_.clear();
  alive_ = true;
  return true;
}

StatementResult Database::Crash(const std::string& why) {
  alive_ = false;
  return StatementResult::Failure(StatementStatus::kCrash,
                                  "simulated SEGFAULT: " + why);
}

StatementResult Database::Execute(const Stmt& stmt) {
  if (!alive_) {
    return StatementResult::Failure(StatementStatus::kCrash,
                                    "connection died earlier");
  }
  StatementResult result;
  switch (stmt.kind()) {
    case StmtKind::kCreateTable:
      result = ExecuteCreateTable(static_cast<const CreateTableStmt&>(stmt));
      break;
    case StmtKind::kCreateIndex:
      result = ExecuteCreateIndex(static_cast<const CreateIndexStmt&>(stmt));
      break;
    case StmtKind::kDropIndex:
      result = ExecuteDropIndex(static_cast<const DropIndexStmt&>(stmt));
      break;
    case StmtKind::kInsert:
      // During the MVCC epoch all DML is diverted through the versioned
      // write path; outside it the classic single-user path is untouched.
      result = in_epoch_
                   ? ExecuteTxnInsert(static_cast<const InsertStmt&>(stmt))
                   : ExecuteInsert(static_cast<const InsertStmt&>(stmt));
      break;
    case StmtKind::kSelect:
      result = ExecuteSelect(static_cast<const SelectStmt&>(stmt));
      break;
    case StmtKind::kUpdate:
      result = in_epoch_
                   ? ExecuteTxnUpdate(static_cast<const UpdateStmt&>(stmt))
                   : ExecuteUpdate(static_cast<const UpdateStmt&>(stmt));
      break;
    case StmtKind::kDelete:
      result = in_epoch_
                   ? ExecuteTxnDelete(static_cast<const DeleteStmt&>(stmt))
                   : ExecuteDelete(static_cast<const DeleteStmt&>(stmt));
      break;
    case StmtKind::kMaintenance:
      result = ExecuteMaintenance(static_cast<const MaintenanceStmt&>(stmt));
      break;
    case StmtKind::kBegin:
      result = ExecuteBegin();
      break;
    case StmtKind::kCommit:
      result = ExecuteCommit();
      break;
    case StmtKind::kRollback:
      result = ExecuteRollback();
      break;
    case StmtKind::kSetSession:
      active_session_ = static_cast<const SetSessionStmt&>(stmt).session;
      result = StatementResult::Ok();
      break;
  }
  if (result.status == StatementStatus::kError) Mark(Feature::kStatementError);
  return result;
}

StatementResult Database::ExecuteCreateTable(const CreateTableStmt& stmt) {
  if (FindTable(stmt.table_name) != nullptr) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "table already exists: " +
                                        stmt.table_name);
  }
  if (stmt.columns.empty()) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "table without columns");
  }
  Mark(Feature::kCreateTable);
  for (const ColumnDef& col : stmt.columns) {
    switch (col.affinity) {
      case Affinity::kInteger:
        Mark(Feature::kColumnInteger);
        break;
      case Affinity::kReal:
        Mark(Feature::kColumnReal);
        break;
      case Affinity::kText:
        Mark(Feature::kColumnText);
        break;
    }
    if (col.unique) Mark(Feature::kConstraintUnique);
    if (col.primary_key) Mark(Feature::kConstraintPrimaryKey);
    if (col.not_null) Mark(Feature::kConstraintNotNull);
  }
  TableData table;
  table.name = stmt.table_name;
  table.name_sym = Interner::Intern(stmt.table_name);
  table.columns = stmt.columns;
  for (const ColumnDef& def : table.columns) {
    table.schema.Add(table.name, def.name);
  }
  table.store.Configure(&pool_, next_table_id_++, &storage_opts_, &bugs_);
  tables_.push_back(std::move(table));
  return StatementResult::Ok();
}

StatementResult Database::ExecuteCreateIndex(const CreateIndexStmt& stmt) {
  TableData* table = FindTable(stmt.table_name);
  if (table == nullptr) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "no such table: " + stmt.table_name);
  }
  if (FindIndex(stmt.index_name) != nullptr) {
    return StatementResult::Failure(
        StatementStatus::kError, "index already exists: " + stmt.index_name);
  }
  for (const std::string& col : stmt.columns) {
    bool found = false;
    for (const ColumnDef& def : table->columns) found |= def.name == col;
    if (!found) {
      return StatementResult::Failure(StatementStatus::kError,
                                      "no such column: " + col);
    }
  }
  Mark(Feature::kCreateIndex);
  if (stmt.unique) Mark(Feature::kUniqueIndex);
  if (stmt.where != nullptr) Mark(Feature::kPartialIndex);

  if (stmt.unique) {
    // A unique index over existing duplicate data is a constraint
    // violation, not an engine error; the index is not created.
    const RowSchema& schema = table->schema;
    EvalContext ctx{dialect_, &bugs_};
    std::vector<int> key_indexes;
    for (const std::string& col : stmt.columns) {
      key_indexes.push_back(schema.IndexOf(stmt.table_name, col));
    }
    // Pairwise check over a materialized snapshot: CREATE INDEX is rare,
    // and the O(n²) scan through page cursors would thrash a tiny pool.
    const std::vector<std::vector<SqlValue>>& rows =
        table->store.Materialized();
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!RowCoveredByPartial(stmt.where.get(), schema, ctx, rows[i])) {
        continue;
      }
      for (size_t j = i + 1; j < rows.size(); ++j) {
        if (!RowCoveredByPartial(stmt.where.get(), schema, ctx, rows[j])) {
          continue;
        }
        if (KeyColumnsCollide(key_indexes, rows[i], rows[j])) {
          Mark(Feature::kConstraintViolationRejected);
          return StatementResult::Failure(
              StatementStatus::kConstraintViolation,
              "unique index over duplicate rows");
        }
      }
    }
  }

  IndexData index;
  index.name = stmt.index_name;
  index.name_sym = Interner::Intern(stmt.index_name);
  index.table_name = stmt.table_name;
  index.columns = stmt.columns;
  index.unique = stmt.unique;
  index.where = stmt.where ? stmt.where->Clone() : nullptr;
  if (index.where != nullptr) {
    index.where_code = CompileExpr(*index.where, table->schema, dialect_);
  }
  for (const std::string& col : stmt.columns) {
    index.key_cols.push_back(table->schema.IndexOf(stmt.table_name, col));
  }
  indexes_.push_back(std::move(index));
  RebuildIndex(&indexes_.back(), *table);
  if (in_epoch_) RefreshIndexVis(&indexes_.back(), *table);
  return StatementResult::Ok();
}

StatementResult Database::ExecuteDropIndex(const DropIndexStmt& stmt) {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].name != stmt.index_name) continue;
    Mark(Feature::kDropIndex);
    indexes_.erase(indexes_.begin() + static_cast<long>(i));
    return StatementResult::Ok();
  }
  return StatementResult::Failure(StatementStatus::kError,
                                  "no such index: " + stmt.index_name);
}

void Database::AddIndexEntry(IndexData* index, const TableData& table,
                             size_t pos) {
  TableStore::Cursor cursor(table.store);
  const std::vector<SqlValue>* row = cursor.TryRow(pos);
  if (row == nullptr) return;  // vanished under an injected storage bug
  if (index->where != nullptr) {
    EvalContext ctx{dialect_, &bugs_};
    if (!RowCoveredByPartialCode(index->where.get(), index->where_code,
                                 table.schema, ctx, *row)) {
      return;
    }
  }
  std::pair<std::vector<SqlValue>, size_t> entry;
  entry.first.reserve(index->key_cols.size());
  for (int c : index->key_cols) {
    entry.first.push_back((*row)[static_cast<size_t>(c)]);
  }
  entry.second = pos;
  auto at = std::upper_bound(index->entries.begin(), index->entries.end(),
                             entry, KeyEntryLess);
  index->entries.insert(at, std::move(entry));
}

void Database::RebuildIndex(IndexData* index, const TableData& table) {
  // Bulk build: collect every covered row's key, then one sort. Produces
  // the same order the incremental upper_bound inserts would (KeyEntryLess
  // tie-breaks on row position, so the order is total) without the
  // per-row shifting that dominated UPDATE/DELETE profiles. The scan is
  // page-batched; a partial predicate runs through the batch evaluator.
  index->entries.clear();
  index->entries.reserve(table.store.size());
  EvalContext ctx{dialect_, &bugs_};
  std::vector<EvalResult> covered;
  table.store.ForEachBatch([&](size_t base, const std::vector<SqlValue>* rows,
                               size_t n) {
    if (index->where != nullptr) {
      index->where_code.RunBatch(table.schema, rows, n, ctx, &covered);
    }
    for (size_t i = 0; i < n; ++i) {
      if (index->where != nullptr) {
        const EvalResult& r = covered[i];
        if (r.error ||
            Truthiness(r.value, ctx.dialect) != Bool3::kTrue) {
          continue;
        }
      }
      std::pair<std::vector<SqlValue>, size_t> entry;
      entry.first.reserve(index->key_cols.size());
      for (int c : index->key_cols) {
        entry.first.push_back(rows[i][static_cast<size_t>(c)]);
      }
      entry.second = base + i;
      index->entries.push_back(std::move(entry));
    }
    return true;
  });
  std::sort(index->entries.begin(), index->entries.end(), KeyEntryLess);
}


bool Database::CoerceForInsert(const ColumnDef& col, SqlValue* value,
                               StatementResult* failure) {
  if (value->is_null()) {
    Mark(Feature::kInsertNullValue);
    return true;  // NOT NULL is checked later as a constraint
  }
  bool strict = dialect_ == Dialect::kPostgresStrict;
  switch (col.affinity) {
    case Affinity::kInteger:
      if (value->cls == StorageClass::kInteger) return true;
      if (value->cls == StorageClass::kReal) {
        if (strict) {
          double t = value->r;
          if (t != static_cast<double>(static_cast<int64_t>(t))) {
            *failure = StatementResult::Failure(
                StatementStatus::kError, "invalid input for integer column");
            return false;
          }
        }
        *value = SqlValue::Int(static_cast<int64_t>(value->r));
        Mark(Feature::kInsertAffinityCoercion);
        return true;
      }
      // Text into an integer column.
      if (strict) {
        *failure = StatementResult::Failure(
            StatementStatus::kError, "invalid input for integer column");
        return false;
      }
      {
        SqlValue parsed;
        if (ParseFullNumeric(value->t, &parsed)) {
          if (parsed.cls == StorageClass::kReal) {
            parsed = SqlValue::Int(static_cast<int64_t>(parsed.r));
          }
          *value = parsed;
          Mark(Feature::kInsertAffinityCoercion);
        } else if (dialect_ == Dialect::kMysqlLike) {
          *value = SqlValue::Int(
              static_cast<int64_t>(ParseNumericPrefix(value->t)));
          Mark(Feature::kInsertAffinityCoercion);
        }
        // kSqliteFlex keeps unparseable text as-is (flexible typing).
      }
      return true;
    case Affinity::kReal:
      if (value->cls == StorageClass::kReal) return true;
      if (value->cls == StorageClass::kInteger) {
        *value = SqlValue::Real(static_cast<double>(value->i));
        Mark(Feature::kInsertAffinityCoercion);
        return true;
      }
      if (strict) {
        *failure = StatementResult::Failure(
            StatementStatus::kError, "invalid input for real column");
        return false;
      }
      {
        SqlValue parsed;
        if (ParseFullNumeric(value->t, &parsed)) {
          *value = SqlValue::Real(parsed.AsReal());
          Mark(Feature::kInsertAffinityCoercion);
        } else if (dialect_ == Dialect::kMysqlLike) {
          *value = SqlValue::Real(ParseNumericPrefix(value->t));
          Mark(Feature::kInsertAffinityCoercion);
        }
      }
      return true;
    case Affinity::kText:
      if (value->cls == StorageClass::kText) return true;
      if (strict) {
        *failure = StatementResult::Failure(
            StatementStatus::kError, "invalid input for text column");
        return false;
      }
      *value = SqlValue::Text(value->ToDisplay());
      Mark(Feature::kInsertAffinityCoercion);
      return true;
  }
  return true;
}

StatementResult Database::CheckConstraints(
    const TableData& table, const std::vector<SqlValue>& candidate,
    const std::vector<std::vector<SqlValue>>& pending, int exclude_row) {
  for (size_t c = 0; c < table.columns.size(); ++c) {
    const ColumnDef& col = table.columns[c];
    // SQLite quirk, preserved for fidelity with the real engine: a
    // non-INTEGER PRIMARY KEY column admits NULLs (historic bug, kept for
    // compatibility), and the generator declares PKs as "INT". The strict
    // dialects enforce PK ⇒ NOT NULL.
    bool needs_value =
        col.not_null ||
        (col.primary_key && dialect_ != Dialect::kSqliteFlex);
    if (needs_value && candidate[c].is_null()) {
      Mark(Feature::kConstraintViolationRejected);
      return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                      "NOT NULL constraint failed: " +
                                          col.name);
    }
    bool must_be_distinct = col.unique || col.primary_key;
    if (!must_be_distinct || candidate[c].is_null()) continue;
    auto collides = [&](const std::vector<SqlValue>& other) {
      return !other[c].is_null() && ValueEquals(other[c], candidate[c]);
    };
    bool stored_collision = false;
    table.store.ForEachBatch([&](size_t base, const std::vector<SqlValue>* rows,
                                 size_t n) {
      for (size_t r = 0; r < n; ++r) {
        if (static_cast<int>(base + r) == exclude_row) continue;
        if (collides(rows[r])) {
          stored_collision = true;
          return false;
        }
      }
      return true;
    });
    if (stored_collision) {
      Mark(Feature::kConstraintViolationRejected);
      return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                      "UNIQUE constraint failed: " +
                                          col.name);
    }
    for (const auto& row : pending) {
      if (collides(row)) {
        Mark(Feature::kConstraintViolationRejected);
        return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                        "UNIQUE constraint failed: " +
                                            col.name);
      }
    }
  }

  // Unique indexes (including partial ones) also enforce uniqueness.
  const RowSchema& schema = table.schema;
  EvalContext ctx{dialect_, &bugs_};
  for (const IndexData& index : indexes_) {
    if (!index.unique || index.table_name != table.name) continue;
    if (!RowCoveredByPartialCode(index.where.get(), index.where_code, schema,
                                 ctx, candidate)) {
      continue;
    }
    auto collides = [&](const std::vector<SqlValue>& other) {
      return RowCoveredByPartialCode(index.where.get(), index.where_code,
                                     schema, ctx, other) &&
             KeyColumnsCollide(index.key_cols, other, candidate);
    };
    bool stored_collision = false;
    table.store.ForEachBatch([&](size_t base, const std::vector<SqlValue>* rows,
                                 size_t n) {
      for (size_t r = 0; r < n; ++r) {
        if (static_cast<int>(base + r) == exclude_row) continue;
        if (collides(rows[r])) {
          stored_collision = true;
          return false;
        }
      }
      return true;
    });
    if (stored_collision) {
      Mark(Feature::kConstraintViolationRejected);
      return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                      "unique index constraint failed: " +
                                          index.name);
    }
    for (const auto& row : pending) {
      if (collides(row)) {
        Mark(Feature::kConstraintViolationRejected);
        return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                        "unique index constraint failed: " +
                                            index.name);
      }
    }
  }
  return StatementResult::Ok();
}

StatementResult Database::ExecuteInsert(const InsertStmt& stmt) {
  TableData* table = FindTable(stmt.table_name);
  if (table == nullptr) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "no such table: " + stmt.table_name);
  }
  Mark(Feature::kInsert);
  if (stmt.rows.size() > 1) Mark(Feature::kMultiRowInsert);

  EvalContext ctx{dialect_, &bugs_};
  RowView no_row;  // literal rows cannot reference columns
  std::vector<std::vector<SqlValue>> accepted;
  for (const auto& row_exprs : stmt.rows) {
    if (row_exprs.size() != table->columns.size()) {
      return StatementResult::Failure(
          StatementStatus::kError,
          "value count does not match column count");
    }
    std::vector<SqlValue> row;
    row.reserve(row_exprs.size());
    for (size_t c = 0; c < row_exprs.size(); ++c) {
      if (row_exprs[c] == nullptr) {
        return StatementResult::Failure(StatementStatus::kError,
                                        "missing value expression");
      }
      // Generated INSERT rows are almost always literal tuples; skip the
      // evaluator dispatch for that common case.
      const Expr& cell = *row_exprs[c];
      EvalResult v = cell.kind == ExprKind::kLiteral
                         ? EvalResult::Of(cell.literal)
                         : Evaluate(cell, no_row, ctx);
      if (v.error) {
        return StatementResult::Failure(StatementStatus::kError, v.message);
      }
      StatementResult failure;
      if (!CoerceForInsert(table->columns[c], &v.value, &failure)) {
        return failure;
      }
      row.push_back(std::move(v.value));
    }
    StatementResult violation = CheckConstraints(*table, row, accepted);
    if (!violation.ok()) {
      // Statement-level abort: no row of a failing INSERT is applied,
      // matching SQLite's default ON CONFLICT ABORT with a statement
      // journal.
      return violation;
    }
    accepted.push_back(std::move(row));
  }
  std::vector<size_t> new_positions;
  new_positions.reserve(accepted.size());
  for (auto& row : accepted) {
    new_positions.push_back(table->store.Append(std::move(row)));
  }
  for (IndexData& index : indexes_) {
    if (index.table_name != table->name) continue;
    for (size_t pos : new_positions) {
      AddIndexEntry(&index, *table, pos);
    }
  }
  return StatementResult::Ok();
}

StatementResult Database::ExecuteUpdate(const UpdateStmt& stmt) {
  TableData* table = FindTable(stmt.table_name);
  if (table == nullptr) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "no such table: " + stmt.table_name);
  }
  const RowSchema& schema = table->schema;
  std::vector<std::pair<size_t, const Expr*>> targets;  // (column, value)
  for (const UpdateStmt::Assignment& a : stmt.assignments) {
    int c = schema.IndexOf(table->name, a.column);
    if (c < 0) {
      return StatementResult::Failure(StatementStatus::kError,
                                      "no such column: " + a.column);
    }
    if (a.value == nullptr) {
      return StatementResult::Failure(StatementStatus::kError,
                                      "missing assignment expression");
    }
    targets.emplace_back(static_cast<size_t>(c), a.value.get());
  }
  if (targets.empty()) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "UPDATE without assignments");
  }

  Mark(Feature::kUpdate);
  if (stmt.where == nullptr) Mark(Feature::kUpdateAllRows);
  if (stmt.where != nullptr) MarkExprFeatures(*stmt.where);
  for (const UpdateStmt::Assignment& a : stmt.assignments) {
    if (a.value != nullptr) MarkExprFeatures(*a.value);
  }

  if (BugOn(BugId::kUpdateSetOrCrash) && stmt.assignments.size() >= 2 &&
      stmt.where != nullptr &&
      stmt.where->ContainsBinaryOp(BinaryOp::kOr)) {
    return Crash("update trigger recursion");
  }

  EvalContext ctx{dialect_, &bugs_};

  // Pass 1: decide the matched set on the pre-update snapshot (SQL UPDATE
  // semantics: the WHERE never observes this statement's own writes). The
  // scan is page-batched, the WHERE compiled once and run per batch.
  CompiledExpr where_code;
  if (stmt.where != nullptr) where_code = CompileExpr(*stmt.where, schema, dialect_);
  std::vector<size_t> matched_pos;
  bool where_failed = false;
  std::vector<EvalResult> where_out;
  table->store.ForEachBatch([&](size_t base, const std::vector<SqlValue>* rows,
                                size_t n) {
    if (stmt.where == nullptr) {
      for (size_t r = 0; r < n; ++r) matched_pos.push_back(base + r);
      return true;
    }
    where_code.RunBatch(schema, rows, n, ctx, &where_out);
    for (size_t r = 0; r < n; ++r) {
      if (where_out[r].error) {
        where_failed = true;
        return false;
      }
      if (Truthiness(where_out[r].value, dialect_) == Bool3::kTrue) {
        matched_pos.push_back(base + r);
      }
    }
    return true;
  });
  if (where_failed) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "UPDATE WHERE evaluation failed");
  }
  if (matched_pos.empty()) {
    // Nothing to write: skip the statement journal and the index rebuild
    // (random WHEREs miss often, and UPDATE sits in the fuzzing hot loop).
    return StatementResult::Ok();
  }

  // Pass 2: apply in row order with immediate per-row constraint checks
  // (the SQLite visit-and-check model: a violation aborts the statement
  // and rolls every earlier row back). The statement journal is sparse:
  // (row, pre-image) pairs for written rows only, undone in reverse —
  // the former full-table copy dominated the UPDATE profile.
  std::vector<CompiledExpr> target_code;
  target_code.reserve(targets.size());
  for (const auto& [c, value_expr] : targets) {
    (void)c;
    target_code.push_back(CompileExpr(*value_expr, schema, dialect_));
  }
  std::vector<std::pair<size_t, std::vector<SqlValue>>> undo;
  undo.reserve(matched_pos.size());
  auto rollback = [&]() {
    for (size_t u = undo.size(); u-- > 0;) {
      table->store.Overwrite(undo[u].first, std::move(undo[u].second));
    }
  };
  TableStore::Cursor cursor(table->store);
  for (size_t pos : matched_pos) {
    // Each matched row is written at most once, so the cursor still reads
    // this row's pre-update values here. A position a storage bug made
    // vanish between the passes is skipped, like a bounds-guarded index
    // candidate.
    const std::vector<SqlValue>* current = cursor.TryRow(pos);
    if (current == nullptr) continue;
    // Copy the pre-image out of the frame before anything below touches
    // the pool again (the nested constraint scan can revalidate or evict
    // around the pinned page and reallocate its row vectors).
    std::vector<SqlValue> pre = *current;
    RowView view{&schema, &pre};
    std::vector<SqlValue> updated = pre;
    for (size_t t = 0; t < targets.size(); ++t) {
      EvalResult v = target_code[t].Run(view, ctx);
      if (v.error) {
        rollback();
        return StatementResult::Failure(StatementStatus::kError, v.message);
      }
      StatementResult failure;
      if (!CoerceForInsert(table->columns[targets[t].first], &v.value,
                           &failure)) {
        rollback();
        return failure;
      }
      updated[targets[t].first] = std::move(v.value);
    }
    StatementResult violation = CheckConstraints(
        *table, updated, {}, static_cast<int>(pos));
    if (!violation.ok()) {
      rollback();
      return violation;
    }
    undo.emplace_back(pos, std::move(pre));
    table->store.Overwrite(pos, std::move(updated));
  }

  // Index maintenance: the clean path rebuilds every index of the table.
  // kUpdateIndexStale skips the rebuild wholesale (keys go stale);
  // kPartialIndexUpdateMiss rebuilds only the non-partial indexes, so
  // partial-index membership reflects the pre-update rows.
  if (!BugOn(BugId::kUpdateIndexStale)) {
    for (IndexData& index : indexes_) {
      if (index.table_name != table->name) continue;
      if (BugOn(BugId::kPartialIndexUpdateMiss) && index.where != nullptr) {
        continue;
      }
      RebuildIndex(&index, *table);
    }
  }
  return StatementResult::Ok();
}

StatementResult Database::ExecuteDelete(const DeleteStmt& stmt) {
  TableData* table = FindTable(stmt.table_name);
  if (table == nullptr) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "no such table: " + stmt.table_name);
  }
  Mark(Feature::kDelete);
  if (stmt.where != nullptr) MarkExprFeatures(*stmt.where);

  const RowSchema& schema = table->schema;
  EvalContext ctx{dialect_, &bugs_};
  CompiledExpr where_code;
  if (stmt.where != nullptr) where_code = CompileExpr(*stmt.where, schema, dialect_);
  // One page-batched pass copies every surviving row out (the compaction
  // rewrites the heap wholesale) and records doomed flags in scan order.
  std::vector<std::vector<SqlValue>> scanned;
  std::vector<size_t> positions;
  std::vector<char> doomed;
  scanned.reserve(table->store.size());
  positions.reserve(table->store.size());
  doomed.reserve(table->store.size());
  size_t doomed_count = 0;
  size_t last_doomed = 0;  // index into the scan-order arrays
  bool where_failed = false;
  std::vector<EvalResult> where_out;
  table->store.ForEachBatch([&](size_t base, const std::vector<SqlValue>* rows,
                                size_t n) {
    if (stmt.where != nullptr) {
      where_code.RunBatch(schema, rows, n, ctx, &where_out);
    }
    for (size_t r = 0; r < n; ++r) {
      bool hit = true;
      if (stmt.where != nullptr) {
        if (where_out[r].error) {
          where_failed = true;
          return false;
        }
        hit = Truthiness(where_out[r].value, dialect_) == Bool3::kTrue;
      }
      scanned.push_back(rows[r]);
      positions.push_back(base + r);
      doomed.push_back(hit ? 1 : 0);
      if (hit) {
        ++doomed_count;
        last_doomed = scanned.size() - 1;
      }
    }
    return true;
  });
  if (where_failed) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "DELETE WHERE evaluation failed");
  }
  if (BugOn(BugId::kDeleteOverrun) && doomed_count >= 2) {
    // Off-by-one in the delete cursor: the row following the last match is
    // swept up as well.
    for (size_t r = last_doomed + 1; r < scanned.size(); ++r) {
      if (!doomed[r]) {
        doomed[r] = 1;
        break;
      }
    }
  }
  if (doomed_count > 0 || stmt.where == nullptr) {
    // kIndexHeapDesync: on a multi-page table, the DELETE's index rebuild
    // is driven by a "pages dirtied" bitmap that only covers the doomed
    // pages — but the compaction below shifts every surviving row after
    // the first doomed position across page boundaries, so the rebuild is
    // skipped wholesale here and the index keeps pre-compaction positions.
    // Probes then resolve to the wrong row (filtered out by the WHERE
    // re-check) or to nothing (bounds-guarded), and rows go missing from
    // index-assisted scans only; the heap itself — and with it the bare
    // state comparison — stays correct.
    bool skip_rebuild = BugOn(BugId::kIndexHeapDesync) && doomed_count > 0 &&
                        table->store.paged() &&
                        table->store.page_count() >= 2;
    std::vector<std::vector<SqlValue>> kept;
    kept.reserve(scanned.size());
    for (size_t r = 0; r < scanned.size(); ++r) {
      if (!doomed[r]) kept.push_back(std::move(scanned[r]));
    }
    table->store.ReplaceAll(std::move(kept));
    // kPartialIndexUpdateMiss: partial-index membership is not recomputed
    // on row mutations — after a DELETE its entries keep pre-delete keys
    // and positions (dangling ones are bounds-guarded at scan time).
    for (IndexData& index : indexes_) {
      if (index.table_name != table->name) continue;
      if (skip_rebuild) continue;
      if (BugOn(BugId::kPartialIndexUpdateMiss) && index.where != nullptr) {
        continue;
      }
      RebuildIndex(&index, *table);
    }
  }
  return StatementResult::Ok();
}

StatementResult Database::ExecuteMaintenance(const MaintenanceStmt& stmt) {
  TableData* table = FindTable(stmt.table_name);
  if (table == nullptr) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "no such table: " + stmt.table_name);
  }
  if (BugOn(BugId::kReindexPartialError)) {
    for (const IndexData& index : indexes_) {
      if (index.table_name == table->name && index.where != nullptr) {
        return StatementResult::Failure(
            StatementStatus::kError,
            "could not reindex: partial index predicate mismatch "
            "(spurious)");
      }
    }
  }
  Mark(Feature::kMaintenance);
  for (IndexData& index : indexes_) {
    if (index.table_name != table->name) continue;
    RebuildIndex(&index, *table);
    if (BugOn(BugId::kReindexTruncate) && index.entries.size() >= 2) {
      // The rebuild "runs out of page budget" and silently keeps only the
      // first half of the entries.
      index.entries.resize((index.entries.size() + 1) / 2);
    }
    if (in_epoch_) RefreshIndexVis(&index, *table);
  }
  return StatementResult::Ok();
}

void Database::MarkExprFeatures(const Expr& expr) {
  if (coverage_ == nullptr) return;
  switch (expr.kind) {
    case ExprKind::kLiteral:
      break;
    case ExprKind::kColumnRef:
      Mark(Feature::kExprColumnRef);
      break;
    case ExprKind::kUnary:
      if (expr.uop == UnaryOp::kNot) Mark(Feature::kExprNot);
      break;
    case ExprKind::kBinary:
      if (IsComparisonOp(expr.bop)) Mark(Feature::kExprComparison);
      if (expr.bop == BinaryOp::kAnd) Mark(Feature::kExprLogicalAnd);
      if (expr.bop == BinaryOp::kOr) Mark(Feature::kExprLogicalOr);
      if (IsArithmeticOp(expr.bop)) Mark(Feature::kExprArithmetic);
      if (expr.bop == BinaryOp::kDiv) Mark(Feature::kExprDivision);
      if (expr.bop == BinaryOp::kConcat) Mark(Feature::kExprConcat);
      break;
    case ExprKind::kIsNull:
      Mark(Feature::kExprIsNull);
      break;
    case ExprKind::kInList:
      Mark(Feature::kExprInList);
      for (size_t i = 1; i < expr.args.size(); ++i) {
        if (expr.args[i] != nullptr &&
            expr.args[i]->kind == ExprKind::kLiteral &&
            expr.args[i]->literal.is_null()) {
          Mark(Feature::kExprInListNull);
          break;
        }
      }
      break;
    case ExprKind::kBetween:
      Mark(Feature::kExprBetween);
      break;
    case ExprKind::kLike:
      Mark(Feature::kExprLike);
      if (expr.args.size() > 2 && expr.args[2] != nullptr) {
        Mark(Feature::kExprLikeEscape);
      }
      break;
    case ExprKind::kFunctionCall:
      Mark(Feature::kExprFunction);
      if (expr.args.size() >= 3) Mark(Feature::kExprFunctionVariadic);
      break;
    case ExprKind::kCast:
      Mark(Feature::kExprCast);
      break;
    case ExprKind::kCase:
      Mark(Feature::kExprCase);
      if (expr.case_has_else) Mark(Feature::kExprCaseElse);
      break;
    case ExprKind::kCollate:
      Mark(Feature::kExprCollate);
      break;
    case ExprKind::kAggregate:
      Mark(Feature::kExprAggregate);
      if (expr.agg_distinct) Mark(Feature::kAggregateDistinct);
      break;
  }
  for (const ExprPtr& a : expr.args) {
    if (a != nullptr) MarkExprFeatures(*a);
  }
}

StatementResult Database::ExecuteSelect(const SelectStmt& stmt) {
  if (stmt.from_tables.empty()) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "SELECT without FROM");
  }
  if (!stmt.joins.empty() && stmt.from_tables.size() != 1) {
    return StatementResult::Failure(
        StatementStatus::kError,
        "explicit joins require a single base table");
  }
  const bool has_agg = stmt.HasAggregates();
  if (has_agg) {
    if (stmt.select_list.empty()) {
      return StatementResult::Failure(
          StatementStatus::kError,
          "aggregate query requires an explicit select list");
    }
    if (stmt.distinct || !stmt.order_by.empty() || stmt.limit >= 0) {
      return StatementResult::Failure(
          StatementStatus::kError,
          "DISTINCT/ORDER BY/LIMIT on an aggregate query is outside the "
          "modeled query space");
    }
  }
  std::vector<TableData*> from;
  for (const std::string& name : stmt.AllTables()) {
    TableData* table = FindTable(name);
    if (table == nullptr) {
      return StatementResult::Failure(StatementStatus::kError,
                                      "no such table: " + name);
    }
    from.push_back(table);
  }

  // Bare single-table `SELECT *` — the pivot-fetch / state-comparison hot
  // path. With no injected bug armed, no statement- or scan-level hook can
  // observe this shape, so the result is a straight copy of the stored
  // rows; the general path below produces exactly the same rows via
  // JoinRows + star projection. Marks stay identical: this shape only ever
  // marks kSelect.
  if (!bugs_.any() && !in_epoch_ && from.size() == 1 && stmt.joins.empty() &&
      stmt.where == nullptr && !has_agg && stmt.select_list.empty() &&
      stmt.group_by.empty() && stmt.having == nullptr &&
      stmt.order_by.empty() && !stmt.distinct && stmt.limit < 0) {
    Mark(Feature::kSelect);
    StatementResult fast;
    fast.column_names.reserve(from[0]->columns.size());
    for (const ColumnDef& def : from[0]->columns) {
      fast.column_names.push_back(def.name);
    }
    fast.rows = from[0]->store.Materialized();
    return fast;
  }

  Mark(Feature::kSelect);
  if (stmt.where != nullptr) Mark(Feature::kSelectWhere);
  if (from.size() > 1) Mark(Feature::kSelectJoin);
  if (!stmt.select_list.empty()) Mark(Feature::kSelectProjection);
  if (stmt.distinct) Mark(Feature::kSelectDistinct);
  if (!stmt.order_by.empty()) Mark(Feature::kSelectOrderBy);
  if (stmt.limit >= 0) Mark(Feature::kSelectLimit);
  for (const JoinClause& join : stmt.joins) {
    switch (join.kind) {
      case JoinKind::kInner:
        Mark(Feature::kJoinInner);
        break;
      case JoinKind::kLeft:
        Mark(Feature::kJoinLeft);
        break;
      case JoinKind::kCross:
        Mark(Feature::kJoinCross);
        break;
    }
    if (join.on != nullptr) MarkExprFeatures(*join.on);
  }
  for (const OrderByItem& item : stmt.order_by) {
    if (item.expr != nullptr) MarkExprFeatures(*item.expr);
  }
  if (stmt.where != nullptr) MarkExprFeatures(*stmt.where);
  for (const ExprPtr& e : stmt.select_list) {
    if (e != nullptr) MarkExprFeatures(*e);
  }
  if (!stmt.group_by.empty()) Mark(Feature::kSelectGroupBy);
  for (const ExprPtr& g : stmt.group_by) {
    if (g != nullptr) MarkExprFeatures(*g);
  }
  if (stmt.having != nullptr) {
    Mark(Feature::kSelectHaving);
    MarkExprFeatures(*stmt.having);
  }
  if (coverage_ != nullptr && stmt.where != nullptr) {
    std::vector<std::pair<std::string, Affinity>> column_affinity;
    for (const TableData* table : from) {
      for (const ColumnDef& def : table->columns) {
        column_affinity.emplace_back(def.name, def.affinity);
      }
    }
    if (HasCrossTypeCompare(*stmt.where, column_affinity)) {
      Mark(Feature::kCrossTypeComparison);
    }
  }

  // --- Statement-level injected bugs (spurious errors and crashes). ------
  if (stmt.where != nullptr) {
    const Expr& where = *stmt.where;
    if (BugOn(BugId::kOrTermLimit) &&
        where.CountBinaryOp(BinaryOp::kOr) >= 2) {
      return StatementResult::Failure(
          StatementStatus::kError,
          "too many OR terms for the WHERE optimizer (spurious)");
    }
    if (BugOn(BugId::kParallelWorkerError) && from.size() >= 2 &&
        where.ContainsBinaryOp(BinaryOp::kAnd)) {
      return StatementResult::Failure(
          StatementStatus::kError,
          "could not start background parallel worker (spurious)");
    }
    if (BugOn(BugId::kDeepExprCrash) && where.Depth() >= 6) {
      return Crash("expression stack overflow");
    }
    if (BugOn(BugId::kLikeWildcardCrash) && ContainsLongWildcardLike(where)) {
      return Crash("pattern buffer overread");
    }
    if (BugOn(BugId::kBetweenNullCrash) &&
        where.ContainsKind(ExprKind::kBetween) &&
        where.ContainsKind(ExprKind::kIsNull)) {
      return Crash("null range plan dereference");
    }
  }
  if (BugOn(BugId::kMultiJoinOrderError) && stmt.joins.size() >= 2 &&
      !stmt.order_by.empty()) {
    return StatementResult::Failure(
        StatementStatus::kError,
        "could not devise a query plan for the ordered multi-join "
        "(spurious)");
  }
  if (BugOn(BugId::kDistinctOrderCrash) && stmt.distinct &&
      !stmt.order_by.empty()) {
    return Crash("sort-dedup buffer overflow");
  }

  // --- Scan-level injected bugs: decide per-row drop predicates. ---------
  const Expr* partial_index_where = nullptr;
  std::string partial_index_table;
  if (BugOn(BugId::kPartialIndexIsNotInference) && stmt.where != nullptr &&
      stmt.where->ContainsIsNull(/*negated_form=*/true)) {
    for (const IndexData& index : indexes_) {
      if (index.where == nullptr) continue;
      for (const TableData* table : from) {
        if (index.table_name == table->name) {
          partial_index_where = index.where.get();
          partial_index_table = index.table_name;
          break;
        }
      }
      if (partial_index_where != nullptr) break;
    }
  }
  bool indexed_or_skip = false;
  if (BugOn(BugId::kIndexedOrSkip) && stmt.where != nullptr &&
      stmt.where->ContainsBinaryOp(BinaryOp::kOr)) {
    for (const IndexData& index : indexes_) {
      for (const TableData* table : from) {
        indexed_or_skip |= index.table_name == table->name;
      }
    }
  }
  int unique_null_col = -1;
  const Expr* join_pushdown_term = nullptr;
  if (BugOn(BugId::kJoinPredicatePushdown) && from.size() >= 2 &&
      stmt.where != nullptr) {
    join_pushdown_term = FirstColumnColumnCompare(*stmt.where);
  }

  // Combined (joined) schema in FROM order. Single-table statements (the
  // pivot-fetch hot path) borrow the table's cached schema outright.
  RowSchema joined_schema_storage;
  StatementResult result;
  for (const TableData* table : from) {
    for (size_t c = 0; c < table->columns.size(); ++c) {
      if (from.size() > 1) {
        joined_schema_storage.Add(table->name, table->columns[c].name);
      }
      result.column_names.push_back(table->columns[c].name);
      if (unique_null_col < 0 && BugOn(BugId::kUniqueNullLost) &&
          stmt.where != nullptr &&
          stmt.where->ContainsIsNull(/*negated_form=*/false) &&
          table->columns[c].unique) {
        unique_null_col = static_cast<int>(result.column_names.size()) - 1;
      }
    }
  }
  const RowSchema& schema =
      from.size() == 1 ? from[0]->schema : joined_schema_storage;

  EvalContext ctx{dialect_, &bugs_};

  // Materialize the (joined) FROM rows through the shared relational core:
  // comma-list FROM is the cross product, explicit join clauses run
  // INNER/LEFT/CROSS steps (with the join-path injected bugs hooked
  // inside). A single-table FROM — the pivot-fetch hot path — streams the
  // table's pages directly instead of materializing a copy.
  std::vector<std::vector<SqlValue>> joined;
  std::string relational_error;
  const TableStore* scan_store = nullptr;
  // Single-table scans may be answered through a secondary index (the
  // planner below); candidates are re-checked against the full WHERE, so
  // on a consistent index the result is identical to the full scan — which
  // is exactly why corrupted entries (the index and storage bug classes)
  // surface as missing rows.
  std::vector<size_t> index_positions;
  bool used_index = false;
  // During the MVCC epoch the raw store is not the truth (it holds
  // tombstoned rows and none of the open transactions' buffered writes), so
  // every FROM table is read through its snapshot image instead. The image
  // is where the read-path transaction bugs hook in.
  const Transaction* cur_txn = in_epoch_ ? CurrentTxn() : nullptr;
  std::vector<std::vector<std::vector<SqlValue>>> epoch_rows;
  const std::vector<std::vector<SqlValue>>* direct_rows = nullptr;
  if (in_epoch_) {
    if (cur_txn != nullptr) Mark(Feature::kTxnSnapshotRead);
    epoch_rows.reserve(from.size());
    for (TableData* table : from) {
      std::vector<ImageRow> image =
          BuildReadImage(table, cur_txn, /*for_select=*/true);
      std::vector<std::vector<SqlValue>> data;
      data.reserve(image.size());
      for (ImageRow& ir : image) data.push_back(std::move(ir.data));
      epoch_rows.push_back(std::move(data));
    }
  }
  if (from.size() == 1 && stmt.joins.empty()) {
    if (in_epoch_) {
      // In-transaction reads always scan the snapshot image. Autocommit
      // reads (snapshot = latest committed state) may still go through the
      // planner: index entries carry version visibility windows, and the
      // current store row at a visible entry's position *is* the latest
      // committed version.
      if (cur_txn == nullptr && use_index_scan_ && stmt.where != nullptr) {
        bool used_partial = false;
        used_index = PlanIndexScan(*from[0], *stmt.where, ctx,
                                   &index_positions, &used_partial);
        if (used_index) {
          scan_store = &from[0]->store;
          Mark(Feature::kIndexScan);
          if (used_partial) Mark(Feature::kPartialIndexScan);
        }
      }
      if (!used_index) direct_rows = &epoch_rows[0];
    } else {
      scan_store = &from[0]->store;
      if (use_index_scan_ && stmt.where != nullptr) {
        bool used_partial = false;
        used_index = PlanIndexScan(*from[0], *stmt.where, ctx,
                                   &index_positions, &used_partial);
        if (used_index) {
          Mark(Feature::kIndexScan);
          if (used_partial) Mark(Feature::kPartialIndexScan);
        }
      }
    }
  } else {
    std::vector<JoinInput> inputs;
    inputs.reserve(from.size());
    for (size_t t = 0; t < from.size(); ++t) {
      const TableData* table = from[t];
      JoinInput input;
      input.schema = table->schema;
      input.rows =
          in_epoch_ ? &epoch_rows[t] : &table->store.Materialized();
      inputs.push_back(std::move(input));
    }
    size_t null_padded = 0;
    if (!JoinRows(inputs, stmt.joins, ctx, &joined, &relational_error,
                  &null_padded)) {
      return StatementResult::Failure(StatementStatus::kError,
                                      relational_error);
    }
    if (null_padded > 0) Mark(Feature::kLeftJoinNullPad);
  }

  // WHERE filter + scan-level injected bugs, then projection. `kept`
  // retains the surviving pre-projection rows as the ORDER BY key source;
  // unordered queries never need it.
  bool need_kept = !stmt.order_by.empty();
  std::vector<std::vector<SqlValue>> kept;
  // Aggregate queries route the surviving rows into the shared grouping
  // core instead of the per-row projection below.
  std::vector<std::vector<SqlValue>> agg_input;
  // Injected: an aggregate query whose WHERE is a bare top-level IS NULL
  // loses every matching row — exactly the shape of TLP's third partition.
  const bool tlp_null_drop =
      has_agg && BugOn(BugId::kTlpNullPartitionDrop) &&
      stmt.where != nullptr && stmt.where->kind == ExprKind::kIsNull &&
      !stmt.where->negated;
  // The WHERE and the projection run once per surviving row; compile them
  // once against the combined schema.
  CompiledExpr where_code;
  if (stmt.where != nullptr) where_code = CompileExpr(*stmt.where, schema, dialect_);
  std::vector<CompiledExpr> select_code;
  if (!has_agg) {
    select_code.reserve(stmt.select_list.size());
    for (const ExprPtr& e : stmt.select_list) {
      select_code.push_back(CompileExpr(*e, schema, dialect_));
    }
  }
  // The scan runs batch-at-a-time: the WHERE evaluates over the whole
  // batch through RunBatch, then the rows are walked in order (per-row bug
  // hooks, emit, first-error abort — identical to the old row-at-a-time
  // loop), and a fully-surviving batch gets its projection evaluated
  // batch-wise too.
  StatementResult scan_failure;
  bool scan_failed = false;
  std::vector<EvalResult> where_out;
  std::vector<std::vector<EvalResult>> proj_out(select_code.size());
  std::vector<size_t> survivors;
  auto process_batch = [&](const std::vector<SqlValue>* rows,
                           size_t n) -> bool {
    if (n == 0) return true;
    if (stmt.where != nullptr) {
      where_code.RunBatch(schema, rows, n, ctx, &where_out);
    }
    survivors.clear();
    for (size_t i = 0; i < n; ++i) {
      const std::vector<SqlValue>& combined = rows[i];
      RowView view{&schema, &combined};

      bool keep = true;
      if (stmt.where != nullptr) {
        const EvalResult& evaluated = where_out[i];
        if (evaluated.error) {
          scan_failed = true;
          scan_failure = StatementResult::Failure(StatementStatus::kError,
                                                  evaluated.message);
          return false;
        }
        Bool3 match = Truthiness(evaluated.value, dialect_);
        keep = match == Bool3::kTrue;
        Mark(keep ? Feature::kRowMatched : Feature::kRowFiltered);
        if (coverage_ != nullptr && match == Bool3::kNull) {
          Mark(Feature::kNullComparison);
        }
      }

      if (keep && partial_index_where != nullptr) {
        // Wrongly re-filter rows through the partial index predicate, as if
        // the index were usable for IS NOT NULL inference.
        size_t offset = 0;
        for (const TableData* table : from) {
          if (table->name == partial_index_table) break;
          offset += table->columns.size();
        }
        RowSchema sub;
        std::vector<SqlValue> slice;
        for (const TableData* table : from) {
          if (table->name != partial_index_table) continue;
          for (const ColumnDef& def : table->columns) {
            sub.cols.emplace_back(table->name, def.name);
          }
          slice.assign(combined.begin() + static_cast<long>(offset),
                       combined.begin() +
                           static_cast<long>(offset + table->columns.size()));
          break;
        }
        RowView sub_view{&sub, &slice};
        bool error = false;
        if (EvaluatePredicate(*partial_index_where, sub_view, ctx, &error) !=
                Bool3::kTrue ||
            error) {
          keep = false;
        }
      }
      if (keep && indexed_or_skip && stmt.where != nullptr &&
          stmt.where->kind == ExprKind::kBinary &&
          stmt.where->bop == BinaryOp::kOr) {
        // Rows satisfying the first OR arm "come from the corrupted index
        // scan" and are dropped.
        bool error = false;
        if (EvaluatePredicate(*stmt.where->args[0], view, ctx, &error) ==
                Bool3::kTrue &&
            !error) {
          keep = false;
        }
      }
      if (keep && unique_null_col >= 0 &&
          combined[static_cast<size_t>(unique_null_col)].is_null()) {
        keep = false;
      }
      if (keep && join_pushdown_term != nullptr) {
        bool error = false;
        if (EvaluatePredicate(*join_pushdown_term, view, ctx, &error) ==
                Bool3::kTrue &&
            !error) {
          keep = false;
        }
      }

      if (keep && tlp_null_drop) keep = false;

      if (!keep) continue;
      if (has_agg) {
        agg_input.push_back(combined);
        continue;
      }
      if (stmt.select_list.empty()) {
        result.rows.push_back(combined);
      } else {
        survivors.push_back(i);
      }
      if (need_kept) kept.push_back(combined);
    }

    if (survivors.empty()) return true;
    if (survivors.size() == n) {
      // Whole batch survived: evaluate each select expression over the
      // batch, then assemble row-major — picking up the first error in
      // (row, expr) order, exactly where the per-row loop would abort
      // (the kernels are pure, so the extra evaluations past an aborting
      // row are unobservable).
      for (size_t s = 0; s < select_code.size(); ++s) {
        select_code[s].RunBatch(schema, rows, n, ctx, &proj_out[s]);
      }
      for (size_t i = 0; i < n; ++i) {
        std::vector<SqlValue> projected;
        projected.reserve(select_code.size());
        for (size_t s = 0; s < select_code.size(); ++s) {
          EvalResult& v = proj_out[s][i];
          if (v.error) {
            scan_failed = true;
            scan_failure = StatementResult::Failure(StatementStatus::kError,
                                                    v.message);
            return false;
          }
          projected.push_back(std::move(v.value));
        }
        result.rows.push_back(std::move(projected));
      }
    } else {
      // Filtered batch: project only the survivors, row-at-a-time.
      for (size_t i : survivors) {
        RowView view{&schema, &rows[i]};
        std::vector<SqlValue> projected;
        projected.reserve(select_code.size());
        for (const CompiledExpr& code : select_code) {
          EvalResult v = code.Run(view, ctx);
          if (v.error) {
            scan_failed = true;
            scan_failure = StatementResult::Failure(StatementStatus::kError,
                                                    v.message);
            return false;
          }
          projected.push_back(std::move(v.value));
        }
        result.rows.push_back(std::move(projected));
      }
    }
    return true;
  };

  if (scan_store != nullptr && !used_index) {
    scan_store->ForEachBatch(
        [&](size_t, const std::vector<SqlValue>* rows, size_t n) {
          return process_batch(rows, n);
        });
  } else if (direct_rows != nullptr) {
    process_batch(direct_rows->data(), direct_rows->size());
  } else if (used_index) {
    // Candidate positions are ascending (page-coherent), so the cursor
    // pins each page once; a position a storage bug invalidated resolves
    // to null and is dropped, like any other bounds-guarded candidate.
    TableStore::Cursor cursor(*scan_store);
    for (size_t pos : index_positions) {
      const std::vector<SqlValue>* row = cursor.TryRow(pos);
      if (row == nullptr) continue;
      if (!process_batch(row, 1)) break;
    }
  } else {
    process_batch(joined.data(), joined.size());
  }
  if (scan_failed) return scan_failure;

  if (has_agg) {
    if (stmt.group_by.empty() && agg_input.empty()) {
      Mark(Feature::kAggregateEmptyInput);
    }
    if (!AggregateSelect(stmt, schema, agg_input, ctx, &result.rows,
                         &relational_error)) {
      return StatementResult::Failure(StatementStatus::kError,
                                      relational_error);
    }
    result.column_names.clear();
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      result.column_names.push_back("expr" + std::to_string(i));
    }
    return result;
  }

  // DISTINCT dedups the projected rows (set semantics; first occurrence
  // survives), then ORDER BY sorts by keys evaluated on the pre-projection
  // rows, then LIMIT truncates — the SQL pipeline order.
  if (stmt.distinct) {
    std::vector<size_t> keep_idx = DistinctKeepIndexes(result.rows, ctx);
    std::vector<std::vector<SqlValue>> deduped_out;
    std::vector<std::vector<SqlValue>> deduped_kept;
    deduped_out.reserve(keep_idx.size());
    deduped_kept.reserve(need_kept ? keep_idx.size() : 0);
    for (size_t idx : keep_idx) {
      deduped_out.push_back(std::move(result.rows[idx]));
      if (need_kept) deduped_kept.push_back(std::move(kept[idx]));
    }
    result.rows = std::move(deduped_out);
    kept = std::move(deduped_kept);
  }
  if (!stmt.order_by.empty()) {
    std::vector<size_t> perm;
    if (!SortIndexesByOrder(schema, kept, stmt.order_by, ctx, &perm,
                            &relational_error)) {
      return StatementResult::Failure(StatementStatus::kError,
                                      relational_error);
    }
    std::vector<std::vector<SqlValue>> sorted;
    sorted.reserve(perm.size());
    for (size_t idx : perm) sorted.push_back(std::move(result.rows[idx]));
    result.rows = std::move(sorted);
  }
  ApplyLimit(stmt.limit, !stmt.order_by.empty(), ctx, &result.rows);

  if (stmt.select_list.empty() && result.column_names.empty()) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "SELECT * with no columns");
  }
  if (!stmt.select_list.empty()) {
    result.column_names.clear();
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      result.column_names.push_back("expr" + std::to_string(i));
    }
  }
  return result;
}

bool Database::PlanIndexScan(const TableData& table, const Expr& where,
                             const EvalContext& ctx,
                             std::vector<size_t>* positions,
                             bool* used_partial) {
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);
  for (IndexData& index : indexes_) {
    if (index.table_name != table.name) continue;
    const Expr* probe = nullptr;
    for (const Expr* c : conjuncts) {
      if (IsIndexProbe(index.columns, table.name, *c)) {
        probe = c;
        break;
      }
    }
    if (index.where != nullptr) {
      // A partial index is only sound when the WHERE provably implies its
      // predicate; the decidable case this planner accepts is the
      // predicate appearing verbatim as a top-level conjunct.
      bool predicate_is_conjunct = false;
      for (const Expr* c : conjuncts) {
        if (c->StructurallyEquals(*index.where)) {
          predicate_is_conjunct = true;
          break;
        }
      }
      if (!predicate_is_conjunct) continue;
    } else if (probe == nullptr) {
      continue;  // an unprobed full index is never better than the scan
    }

    // Candidate rows from the ordered entries: the probe is evaluated on
    // the stored *key tuple* (that is the point of an index — and why a
    // stale or truncated entry list changes answers), then every candidate
    // row is still re-checked against the full WHERE by the scan loop.
    RowSchema key_schema;
    for (const std::string& col : index.columns) {
      key_schema.Add(table.name, col);
    }
    CompiledExpr probe_code;
    if (probe != nullptr) probe_code = CompileExpr(*probe, key_schema, ctx.dialect);
    std::vector<size_t> candidates;
    bool eval_failed = false;
    // Only autocommit statements reach the planner during the MVCC epoch,
    // so the reading snapshot is the latest committed state.
    const uint64_t snap = commit_clock_;
    for (size_t ei = 0; ei < index.entries.size(); ++ei) {
      const auto& [key, pos] = index.entries[ei];
      if (in_epoch_ && ei < index.vis.size()) {
        const IndexData::EntryVis& v = index.vis[ei];
        if (!(v.begin_ts <= snap && snap < v.end_ts)) continue;
      }
      if (probe != nullptr) {
        RowView view{&key_schema, &key};
        EvalResult evaluated = probe_code.Run(view, ctx);
        bool error = evaluated.error;
        Bool3 hit =
            error ? Bool3::kNull : Truthiness(evaluated.value, ctx.dialect);
        if (error) {
          eval_failed = true;
          break;
        }
        if (hit != Bool3::kTrue) continue;
      }
      candidates.push_back(pos);
    }
    if (eval_failed) continue;  // defensive: fall back to the full scan
    if (BugOn(BugId::kIndexLookupSkipLast) && candidates.size() >= 2) {
      // Entries are key-ordered, so the last candidate is the
      // greatest-key match — the one the off-by-one upper bound loses.
      candidates.pop_back();
    }
    // Table order (and bounds-guard against corrupted positions), so an
    // index scan is row-for-row identical to the full scan when healthy.
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    positions->clear();
    for (size_t pos : candidates) {
      // Positions past the current heap extent (possible only when an
      // injected index/storage bug left stale entries) are dropped here;
      // in-extent positions that no longer resolve to a row are dropped
      // later by the page cursor.
      size_t extent = table.store.paged()
                          ? table.store.page_count() * table.store.page_rows()
                          : table.store.size();
      if (pos < extent) positions->push_back(pos);
    }
    *used_partial = index.where != nullptr;
    return true;
  }
  return false;
}

// --- MVCC transaction layer (DESIGN §14). --------------------------------

Database::Transaction* Database::CurrentTxn() {
  auto it = txns_.find(active_session_);
  if (it == txns_.end() || !it->second.open) return nullptr;
  return &it->second;
}

void Database::EnterEpoch() {
  if (in_epoch_) return;
  in_epoch_ = true;
  for (TableData& table : tables_) {
    table.meta.clear();
    table.store.ForEachBatch(
        [&](size_t base, const std::vector<SqlValue>* rows, size_t n) {
          (void)rows;
          for (size_t r = 0; r < n; ++r) table.meta[base + r];
          return true;
        });
  }
  for (IndexData& index : indexes_) {
    TableData* table = FindTable(index.table_name);
    if (table != nullptr) RefreshIndexVis(&index, *table);
  }
}

void Database::PruneIfQuiescent() {
  if (txns_.empty()) PruneHistory();
}

void Database::PruneHistory() {
  if (!in_epoch_) return;
  // Materialize the latest committed version of every table back into a
  // flat heap: tombstoned rows drop out, version chains are garbage. The
  // relative order of surviving rows is preserved, which is what keeps the
  // serial-replay model's row order identical to the engine's.
  for (TableData& table : tables_) {
    std::vector<std::vector<SqlValue>> kept;
    kept.reserve(table.store.size());
    table.store.ForEachBatch(
        [&](size_t base, const std::vector<SqlValue>* rows, size_t n) {
          for (size_t r = 0; r < n; ++r) {
            auto mit = table.meta.find(base + r);
            if (mit != table.meta.end() && mit->second.end_ts != kTsInf) {
              continue;  // deleted
            }
            kept.push_back(rows[r]);
          }
          return true;
        });
    table.store.ReplaceAll(std::move(kept));
    table.meta.clear();
  }
  in_epoch_ = false;  // commit_clock_ stays monotonic for the next epoch
  for (IndexData& index : indexes_) {
    index.vis.clear();
    if (rollback_corrupted_.count(index.table_name) != 0) {
      // kTxnRollbackStaleIndex: the aborted transaction's entries survive
      // the prune unrepaired; probes through them now miss real rows.
      continue;
    }
    TableData* table = FindTable(index.table_name);
    if (table != nullptr) RebuildIndex(&index, *table);
  }
  rollback_corrupted_.clear();
}

void Database::RefreshIndexVis(IndexData* index, const TableData& table) {
  index->vis.clear();
  if (!in_epoch_) return;
  index->vis.reserve(index->entries.size());
  for (const auto& [key, pos] : index->entries) {
    (void)key;
    IndexData::EntryVis v;
    auto mit = table.meta.find(pos);
    if (mit != table.meta.end()) {
      v.begin_ts = mit->second.begin_ts;
      v.end_ts = mit->second.end_ts;
    }
    index->vis.push_back(v);
  }
}

StatementResult Database::ExecuteBegin() {
  if (CurrentTxn() != nullptr) {
    return StatementResult::Failure(
        StatementStatus::kError,
        "cannot start a transaction within a transaction");
  }
  EnterEpoch();
  Transaction txn;
  txn.open = true;
  txn.begin_ts = commit_clock_;
  txns_[active_session_] = std::move(txn);
  Mark(Feature::kTxnBegin);
  return StatementResult::Ok();
}

bool Database::CommitConflicts(const Transaction& txn) const {
  for (const auto& [tname, w] : txn.writes) {
    if (w.Empty()) continue;
    // kTxnLostUpdate: the conflict check "optimizes away" for update-only
    // write sets, so a stale-snapshot UPDATE clobbers a concurrent commit.
    if (bugs_.enabled(BugId::kTxnLostUpdate) && w.UpdatesOnly()) continue;
    if (bugs_.enabled(BugId::kTxnWriteSkew)) {
      // kTxnWriteSkew: conflict detection weakened from table to row
      // granularity — only rows this transaction itself updated or deleted
      // are checked, so a concurrent INSERT the snapshot never saw slips
      // past (UPDATE matched-set phantoms under claimed SI).
      for (const TableData& table : tables_) {
        if (table.name != tname) continue;
        auto touched = [&](size_t pos) {
          auto mit = table.meta.find(pos);
          if (mit == table.meta.end()) return true;
          return mit->second.begin_ts > txn.begin_ts ||
                 mit->second.end_ts != kTsInf;
        };
        for (const auto& [pos, row] : w.updated) {
          (void)row;
          if (touched(pos)) return true;
        }
        for (size_t pos : w.deleted) {
          if (touched(pos)) return true;
        }
      }
      continue;
    }
    // First-committer-wins at table granularity: sound because generated
    // DML is single-table, so "no other commit wrote any table I wrote"
    // implies my snapshot of every written table is still current.
    auto lit = last_write_ts_.find(tname);
    if (lit != last_write_ts_.end() && lit->second > txn.begin_ts) {
      return true;
    }
  }
  return false;
}

void Database::ApplyCommit(Transaction* txn) {
  bool any = false;
  for (const auto& [tname, w] : txn->writes) {
    (void)tname;
    if (!w.Empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;  // read-only commit: no new timestamp
  const uint64_t c = ++commit_clock_;
  for (auto& [tname, w] : txn->writes) {
    if (w.Empty()) continue;
    TableData* table = FindTable(tname);
    if (table == nullptr) continue;
    {
      TableStore::Cursor cursor(table->store);
      for (auto& [pos, row] : w.updated) {
        RowMeta& m = table->meta[pos];
        const std::vector<SqlValue>* current = cursor.TryRow(pos);
        if (current != nullptr) {
          RowVersion v;
          v.begin_ts = m.begin_ts;
          v.end_ts = c;
          v.data = *current;
          m.older.push_back(std::move(v));
        }
        table->store.Overwrite(pos, std::move(row));
        m.begin_ts = c;
      }
    }
    for (size_t pos : w.deleted) {
      // Position-stable tombstone: the row stays in the heap (older
      // snapshots still read it) until PruneHistory compacts.
      table->meta[pos].end_ts = c;
    }
    for (size_t i = 0; i < w.inserted.size(); ++i) {
      if (!w.inserted_alive[i]) continue;
      size_t pos = table->store.Append(std::move(w.inserted[i]));
      table->meta[pos].begin_ts = c;
    }
    last_write_ts_[tname] = c;
    for (IndexData& index : indexes_) {
      if (index.table_name != tname) continue;
      RebuildIndex(&index, *table);
      RefreshIndexVis(&index, *table);
    }
  }
}

StatementResult Database::ExecuteCommit() {
  auto it = txns_.find(active_session_);
  if (it == txns_.end() || !it->second.open) {
    return StatementResult::Failure(
        StatementStatus::kError, "cannot commit - no transaction is active");
  }
  Transaction txn = std::move(it->second);
  txns_.erase(it);
  if (CommitConflicts(txn)) {
    Mark(Feature::kTxnConflict);
    PruneIfQuiescent();
    return StatementResult::Failure(
        StatementStatus::kTxnConflict,
        "could not serialize access due to concurrent update "
        "(first-committer-wins)");
  }
  ApplyCommit(&txn);
  Mark(Feature::kTxnCommit);
  PruneIfQuiescent();
  return StatementResult::Ok();
}

StatementResult Database::ExecuteRollback() {
  auto it = txns_.find(active_session_);
  if (it == txns_.end() || !it->second.open) {
    return StatementResult::Failure(
        StatementStatus::kError,
        "cannot rollback - no transaction is active");
  }
  Transaction txn = std::move(it->second);
  txns_.erase(it);
  if (BugOn(BugId::kTxnRollbackStaleIndex)) {
    for (const auto& [tname, w] : txn.writes) {
      if (w.Empty()) continue;
      TableData* table = FindTable(tname);
      if (table != nullptr) CorruptIndexesFromAbort(table, txn);
    }
  }
  Mark(Feature::kTxnRollback);
  PruneIfQuiescent();
  return StatementResult::Ok();
}

std::vector<Database::ImageRow> Database::BuildReadImage(TableData* table,
                                                         const Transaction* txn,
                                                         bool for_select) {
  const uint64_t snap =
      (txn != nullptr && txn->open) ? txn->begin_ts : commit_clock_;
  const TxnWrites* own = nullptr;
  if (txn != nullptr) {
    auto wit = txn->writes.find(table->name);
    if (wit != txn->writes.end()) own = &wit->second;
  }
  std::vector<ImageRow> image;
  image.reserve(table->store.size());
  auto push = [&](const std::vector<SqlValue>& data, size_t pos,
                  int own_insert) {
    ImageRow ir;
    ir.data = data;
    ir.pos = pos;
    ir.own_insert = own_insert;
    image.push_back(std::move(ir));
  };
  table->store.ForEachBatch(
      [&](size_t base, const std::vector<SqlValue>* rows, size_t n) {
        for (size_t r = 0; r < n; ++r) {
          const size_t pos = base + r;
          if (own != nullptr) {
            if (own->deleted.count(pos) != 0) continue;
            auto uit = own->updated.find(pos);
            if (uit != own->updated.end()) {
              push(uit->second, pos, -1);
              continue;
            }
          }
          // kTxnSnapshotUncommittedRead: the snapshot read resolves to the
          // newest *pending* version when some other open transaction has
          // updated this row — its write buffer leaks into our reads.
          if (for_select && BugOn(BugId::kTxnSnapshotUncommittedRead)) {
            bool substituted = false;
            for (const auto& [sid, other] : txns_) {
              (void)sid;
              if (&other == txn || !other.open) continue;
              auto owit = other.writes.find(table->name);
              if (owit == other.writes.end()) continue;
              auto ouit = owit->second.updated.find(pos);
              if (ouit != owit->second.updated.end()) {
                push(ouit->second, pos, -1);
                substituted = true;
                break;
              }
            }
            if (substituted) continue;
          }
          auto mit = table->meta.find(pos);
          if (mit == table->meta.end()) {
            push(rows[r], pos, -1);  // predates the epoch: always visible
            continue;
          }
          const RowMeta& m = mit->second;
          if (m.begin_ts <= snap && snap < m.end_ts) {
            push(rows[r], pos, -1);
            continue;
          }
          // The current version is too new (or deleted): walk the
          // superseded versions, oldest first, for the one covering snap.
          for (const RowVersion& v : m.older) {
            if (v.begin_ts <= snap && snap < v.end_ts) {
              push(v.data, pos, -1);
              break;
            }
          }
        }
        return true;
      });
  if (own != nullptr) {
    for (size_t i = 0; i < own->inserted.size(); ++i) {
      if (!own->inserted_alive[i]) continue;
      push(own->inserted[i], 0, static_cast<int>(i));
    }
  }
  // kTxnDirtyRead: SELECTs also see rows *inserted* by other transactions
  // that have not committed (and may never commit). DML matched sets are
  // exempt so the corruption stays read-only.
  if (for_select && BugOn(BugId::kTxnDirtyRead)) {
    for (const auto& [sid, other] : txns_) {
      (void)sid;
      if (&other == txn || !other.open) continue;
      auto owit = other.writes.find(table->name);
      if (owit == other.writes.end()) continue;
      const TxnWrites& ow = owit->second;
      for (size_t i = 0; i < ow.inserted.size(); ++i) {
        if (!ow.inserted_alive[i]) continue;
        push(ow.inserted[i], 0, -1);
      }
    }
  }
  return image;
}

StatementResult Database::CheckConstraintsImage(
    const TableData& table, const std::vector<SqlValue>& candidate,
    const std::vector<ImageRow>& image,
    const std::vector<std::vector<SqlValue>>& pending, int exclude_row) {
  for (size_t c = 0; c < table.columns.size(); ++c) {
    const ColumnDef& col = table.columns[c];
    bool needs_value =
        col.not_null ||
        (col.primary_key && dialect_ != Dialect::kSqliteFlex);
    if (needs_value && candidate[c].is_null()) {
      Mark(Feature::kConstraintViolationRejected);
      return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                      "NOT NULL constraint failed: " +
                                          col.name);
    }
    bool must_be_distinct = col.unique || col.primary_key;
    if (!must_be_distinct || candidate[c].is_null()) continue;
    auto collides = [&](const std::vector<SqlValue>& other) {
      return !other[c].is_null() && ValueEquals(other[c], candidate[c]);
    };
    for (size_t i = 0; i < image.size(); ++i) {
      if (static_cast<int>(i) == exclude_row) continue;
      if (collides(image[i].data)) {
        Mark(Feature::kConstraintViolationRejected);
        return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                        "UNIQUE constraint failed: " +
                                            col.name);
      }
    }
    for (const auto& row : pending) {
      if (collides(row)) {
        Mark(Feature::kConstraintViolationRejected);
        return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                        "UNIQUE constraint failed: " +
                                            col.name);
      }
    }
  }

  const RowSchema& schema = table.schema;
  EvalContext ctx{dialect_, &bugs_};
  for (const IndexData& index : indexes_) {
    if (!index.unique || index.table_name != table.name) continue;
    if (!RowCoveredByPartialCode(index.where.get(), index.where_code, schema,
                                 ctx, candidate)) {
      continue;
    }
    auto collides = [&](const std::vector<SqlValue>& other) {
      return RowCoveredByPartialCode(index.where.get(), index.where_code,
                                     schema, ctx, other) &&
             KeyColumnsCollide(index.key_cols, other, candidate);
    };
    for (size_t i = 0; i < image.size(); ++i) {
      if (static_cast<int>(i) == exclude_row) continue;
      if (collides(image[i].data)) {
        Mark(Feature::kConstraintViolationRejected);
        return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                        "unique index constraint failed: " +
                                            index.name);
      }
    }
    for (const auto& row : pending) {
      if (collides(row)) {
        Mark(Feature::kConstraintViolationRejected);
        return StatementResult::Failure(StatementStatus::kConstraintViolation,
                                        "unique index constraint failed: " +
                                            index.name);
      }
    }
  }
  return StatementResult::Ok();
}

void Database::CorruptIndexesFromAbort(TableData* table,
                                       const Transaction& txn) {
  // Rebuild the table's indexes from the aborted transaction's overlay
  // image — as if index maintenance had been done eagerly per-statement and
  // ROLLBACK forgot to undo it. Own-insert rows get positions past the
  // heap; discarded updates keep real positions under discarded keys.
  std::vector<ImageRow> image =
      BuildReadImage(table, &txn, /*for_select=*/false);
  EvalContext ctx{dialect_, &bugs_};
  for (IndexData& index : indexes_) {
    if (index.table_name != table->name) continue;
    index.entries.clear();
    for (const ImageRow& ir : image) {
      if (!RowCoveredByPartialCode(index.where.get(), index.where_code,
                                   table->schema, ctx, ir.data)) {
        continue;
      }
      std::pair<std::vector<SqlValue>, size_t> entry;
      entry.first.reserve(index.key_cols.size());
      for (int c : index.key_cols) {
        entry.first.push_back(ir.data[static_cast<size_t>(c)]);
      }
      entry.second = ir.own_insert >= 0
                         ? table->store.size() +
                               static_cast<size_t>(ir.own_insert)
                         : ir.pos;
      index.entries.push_back(std::move(entry));
    }
    std::sort(index.entries.begin(), index.entries.end(), KeyEntryLess);
    index.vis.assign(index.entries.size(), IndexData::EntryVis{});
  }
  rollback_corrupted_.insert(table->name);
}

StatementResult Database::ExecuteTxnInsert(const InsertStmt& stmt) {
  if (Transaction* txn = CurrentTxn()) return TxnInsertInto(stmt, txn);
  // Autocommit during the epoch: an implicit single-statement transaction
  // at the latest snapshot, committed immediately. It can never conflict —
  // no other commit can interleave within one statement.
  Transaction local;
  local.open = true;
  local.begin_ts = commit_clock_;
  StatementResult r = TxnInsertInto(stmt, &local);
  if (r.ok()) ApplyCommit(&local);
  return r;
}

StatementResult Database::ExecuteTxnUpdate(const UpdateStmt& stmt) {
  if (Transaction* txn = CurrentTxn()) return TxnUpdateInto(stmt, txn);
  Transaction local;
  local.open = true;
  local.begin_ts = commit_clock_;
  StatementResult r = TxnUpdateInto(stmt, &local);
  if (r.ok()) ApplyCommit(&local);
  return r;
}

StatementResult Database::ExecuteTxnDelete(const DeleteStmt& stmt) {
  if (Transaction* txn = CurrentTxn()) return TxnDeleteInto(stmt, txn);
  Transaction local;
  local.open = true;
  local.begin_ts = commit_clock_;
  StatementResult r = TxnDeleteInto(stmt, &local);
  if (r.ok()) ApplyCommit(&local);
  return r;
}

StatementResult Database::TxnInsertInto(const InsertStmt& stmt,
                                        Transaction* txn) {
  TableData* table = FindTable(stmt.table_name);
  if (table == nullptr) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "no such table: " + stmt.table_name);
  }
  Mark(Feature::kInsert);
  if (stmt.rows.size() > 1) Mark(Feature::kMultiRowInsert);

  std::vector<ImageRow> image =
      BuildReadImage(table, txn, /*for_select=*/false);
  EvalContext ctx{dialect_, &bugs_};
  RowView no_row;
  std::vector<std::vector<SqlValue>> accepted;
  for (const auto& row_exprs : stmt.rows) {
    if (row_exprs.size() != table->columns.size()) {
      return StatementResult::Failure(
          StatementStatus::kError,
          "value count does not match column count");
    }
    std::vector<SqlValue> row;
    row.reserve(row_exprs.size());
    for (size_t c = 0; c < row_exprs.size(); ++c) {
      if (row_exprs[c] == nullptr) {
        return StatementResult::Failure(StatementStatus::kError,
                                        "missing value expression");
      }
      const Expr& cell = *row_exprs[c];
      EvalResult v = cell.kind == ExprKind::kLiteral
                         ? EvalResult::Of(cell.literal)
                         : Evaluate(cell, no_row, ctx);
      if (v.error) {
        return StatementResult::Failure(StatementStatus::kError, v.message);
      }
      StatementResult failure;
      if (!CoerceForInsert(table->columns[c], &v.value, &failure)) {
        return failure;
      }
      row.push_back(std::move(v.value));
    }
    StatementResult violation =
        CheckConstraintsImage(*table, row, image, accepted, -1);
    if (!violation.ok()) return violation;  // statement-level rollback
    accepted.push_back(std::move(row));
  }
  // Nothing reached the write set until every row passed; apply now.
  TxnWrites& w = txn->writes[table->name];
  for (auto& row : accepted) {
    w.inserted.push_back(std::move(row));
    w.inserted_alive.push_back(1);
  }
  return StatementResult::Ok();
}

StatementResult Database::TxnUpdateInto(const UpdateStmt& stmt,
                                        Transaction* txn) {
  TableData* table = FindTable(stmt.table_name);
  if (table == nullptr) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "no such table: " + stmt.table_name);
  }
  const RowSchema& schema = table->schema;
  std::vector<std::pair<size_t, const Expr*>> targets;
  for (const UpdateStmt::Assignment& a : stmt.assignments) {
    int c = schema.IndexOf(table->name, a.column);
    if (c < 0) {
      return StatementResult::Failure(StatementStatus::kError,
                                      "no such column: " + a.column);
    }
    if (a.value == nullptr) {
      return StatementResult::Failure(StatementStatus::kError,
                                      "missing assignment expression");
    }
    targets.emplace_back(static_cast<size_t>(c), a.value.get());
  }
  if (targets.empty()) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "UPDATE without assignments");
  }

  Mark(Feature::kUpdate);
  if (stmt.where == nullptr) Mark(Feature::kUpdateAllRows);
  if (stmt.where != nullptr) MarkExprFeatures(*stmt.where);
  for (const UpdateStmt::Assignment& a : stmt.assignments) {
    if (a.value != nullptr) MarkExprFeatures(*a.value);
  }

  EvalContext ctx{dialect_, &bugs_};
  std::vector<ImageRow> image =
      BuildReadImage(table, txn, /*for_select=*/false);

  // Pass 1: the matched set, decided on the pre-update snapshot image.
  CompiledExpr where_code;
  if (stmt.where != nullptr) {
    where_code = CompileExpr(*stmt.where, schema, dialect_);
  }
  std::vector<size_t> matched;
  for (size_t i = 0; i < image.size(); ++i) {
    bool hit = true;
    if (stmt.where != nullptr) {
      RowView view{&schema, &image[i].data};
      EvalResult v = where_code.Run(view, ctx);
      if (v.error) {
        return StatementResult::Failure(StatementStatus::kError,
                                        "UPDATE WHERE evaluation failed");
      }
      hit = Truthiness(v.value, dialect_) == Bool3::kTrue;
    }
    if (hit) matched.push_back(i);
  }
  if (matched.empty()) return StatementResult::Ok();

  // Pass 2: apply in image order with immediate per-row constraint checks
  // (the SQLite visit-and-check model). Everything is buffered locally —
  // the write set is only touched once all matched rows pass, which is the
  // statement-level rollback.
  std::vector<CompiledExpr> target_code;
  target_code.reserve(targets.size());
  for (const auto& [c, value_expr] : targets) {
    (void)c;
    target_code.push_back(CompileExpr(*value_expr, schema, dialect_));
  }
  std::vector<std::pair<size_t, std::vector<SqlValue>>> changes;
  changes.reserve(matched.size());
  for (size_t i : matched) {
    RowView view{&schema, &image[i].data};
    std::vector<SqlValue> updated = image[i].data;
    for (size_t t = 0; t < targets.size(); ++t) {
      EvalResult v = target_code[t].Run(view, ctx);
      if (v.error) {
        return StatementResult::Failure(StatementStatus::kError, v.message);
      }
      StatementResult failure;
      if (!CoerceForInsert(table->columns[targets[t].first], &v.value,
                           &failure)) {
        return failure;
      }
      updated[targets[t].first] = std::move(v.value);
    }
    StatementResult violation = CheckConstraintsImage(
        *table, updated, image, {}, static_cast<int>(i));
    if (!violation.ok()) return violation;
    image[i].data = updated;  // later checks see this statement's writes
    changes.emplace_back(i, std::move(updated));
  }
  TxnWrites& w = txn->writes[table->name];
  for (auto& [i, row] : changes) {
    if (image[i].own_insert >= 0) {
      w.inserted[static_cast<size_t>(image[i].own_insert)] = std::move(row);
    } else {
      w.updated[image[i].pos] = std::move(row);
    }
  }
  return StatementResult::Ok();
}

StatementResult Database::TxnDeleteInto(const DeleteStmt& stmt,
                                        Transaction* txn) {
  TableData* table = FindTable(stmt.table_name);
  if (table == nullptr) {
    return StatementResult::Failure(StatementStatus::kError,
                                    "no such table: " + stmt.table_name);
  }
  Mark(Feature::kDelete);
  if (stmt.where != nullptr) MarkExprFeatures(*stmt.where);

  const RowSchema& schema = table->schema;
  EvalContext ctx{dialect_, &bugs_};
  std::vector<ImageRow> image =
      BuildReadImage(table, txn, /*for_select=*/false);
  CompiledExpr where_code;
  if (stmt.where != nullptr) {
    where_code = CompileExpr(*stmt.where, schema, dialect_);
  }
  std::vector<size_t> matched;
  for (size_t i = 0; i < image.size(); ++i) {
    bool hit = true;
    if (stmt.where != nullptr) {
      RowView view{&schema, &image[i].data};
      EvalResult v = where_code.Run(view, ctx);
      if (v.error) {
        return StatementResult::Failure(StatementStatus::kError,
                                        "DELETE WHERE evaluation failed");
      }
      hit = Truthiness(v.value, dialect_) == Bool3::kTrue;
    }
    if (hit) matched.push_back(i);
  }
  TxnWrites& w = txn->writes[table->name];
  for (size_t i : matched) {
    if (image[i].own_insert >= 0) {
      w.inserted_alive[static_cast<size_t>(image[i].own_insert)] = 0;
    } else {
      w.updated.erase(image[i].pos);
      w.deleted.insert(image[i].pos);
    }
  }
  return StatementResult::Ok();
}

Database::TableData* Database::FindTable(const std::string& name) {
  const int32_t sym = Interner::Intern(name);
  for (TableData& table : tables_) {
    if (table.name_sym == sym) return &table;
  }
  return nullptr;
}

Database::IndexData* Database::FindIndex(const std::string& name) {
  const int32_t sym = Interner::Intern(name);
  for (IndexData& index : indexes_) {
    if (index.name_sym == sym) return &index;
  }
  return nullptr;
}

}  // namespace minidb
}  // namespace pqs
