// TableStore: one table's row heap, either flat or paged behind BufferPool.
//
// Positions. Every stored row has a stable *position* `pos`; in paged mode
// pos = page * page_rows + slot. On a clean engine appends fill pages
// densely, so positions coincide with the classic dense row index and the
// scan order (page-major, slot-ascending) is exactly the old vector order —
// which is what keeps paged and flat executions byte-identical. Injected
// storage bugs can make pages shorter than their intended fill; readers
// therefore never trust size() for bounds and instead bound-check the slot
// against the actual page content (Cursor::TryRow returns null for a
// vanished row, and batch scans enumerate what the page really holds).
//
// Reads and writes of page content always go through the pool (so eviction,
// write-back, and the storage bug classes see every access); the deque of
// disk pages only changes shape on append/compaction, never on scan.
#ifndef PQS_SRC_MINIDB_STORAGE_H_
#define PQS_SRC_MINIDB_STORAGE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/minidb/buffer_pool.h"

namespace pqs {
namespace minidb {

class TableStore {
 public:
  TableStore() = default;

  // Must be called once before use. `pool` and `opts` must outlive the
  // store (Database owns both); `table_id` must be unique per store for
  // the pool's lifetime (Database hands out a monotonically increasing
  // id, so frames of a dropped table can never alias a new table's).
  void Configure(BufferPool* pool, uint32_t table_id,
                 const StorageOptions* opts, const BugConfig* bugs);

  // Appends a row and returns its intended position.
  size_t Append(StoredRow row);

  // Replaces the row at `pos` in place (UPDATE). A no-op if the row has
  // vanished under an injected storage bug.
  void Overwrite(size_t pos, StoredRow row);

  // Rewrites the whole heap densely from `rows` (DELETE compaction).
  void ReplaceAll(std::vector<StoredRow> rows);
  void Clear();

  // Logical row count: rows appended minus rows compacted away. Under
  // injected storage bugs the physical content can hold fewer rows; use
  // this only for sizing hints, never for bounds.
  size_t size() const { return row_count_; }
  bool paged() const { return paged_; }
  uint32_t page_rows() const { return page_rows_; }
  size_t page_count() const { return paged_ ? disk_.size() : 1; }

  // Bumped on every mutation; keys the materialization cache.
  uint64_t version() const { return version_; }

  // Streams the heap page by page in position order. `fn` is called as
  // fn(base_pos, rows, n) with the page pinned for the duration of the
  // call; row i of the batch is at position base_pos + i. Return false
  // from `fn` to stop the scan early (statement error abort).
  template <typename Fn>
  void ForEachBatch(Fn&& fn) const {
    if (!paged_) {
      fn(size_t{0}, flat_.data(), flat_.size());
      return;
    }
    for (size_t p = 0; p < disk_.size(); ++p) {
      int fi = pool_->Fetch(table_id_, static_cast<uint32_t>(p),
                            const_cast<DiskPage*>(&disk_[p]),
                            BufferPool::Intent::kRead);
      const BufferPool::Frame& f = pool_->frame(fi);
      bool more = fn(p * static_cast<size_t>(page_rows_), f.rows.data(),
                     f.rows.size());
      pool_->Unpin(fi);
      if (!more) return;
    }
  }

  // Random access for index probes and constraint checks. Holds at most
  // one page pinned (the one containing the last accessed position);
  // returned pointers are valid until the next TryRow on the same cursor.
  class Cursor {
   public:
    explicit Cursor(const TableStore& store) : store_(&store) {}
    ~Cursor() { Release(); }
    Cursor(const Cursor&) = delete;
    Cursor& operator=(const Cursor&) = delete;

    // Null if `pos` names no stored row (past the end, or vanished under
    // an injected storage bug).
    const StoredRow* TryRow(size_t pos);

   private:
    void Release();
    const TableStore* store_;
    int frame_ = -1;
    size_t page_ = 0;
  };

  // A flat copy of the heap in position order, cached per version. For a
  // clean engine the cache makes this as cheap as the old direct vector
  // access (the ground-truth model and join inputs read through it); when
  // a storage bug is armed the copy is rebuilt on every call, because pool
  // activity between calls can change what a read observes.
  const std::vector<StoredRow>& Materialized() const;

 private:
  BufferPool* pool_ = nullptr;       // not owned
  const BugConfig* bugs_ = nullptr;  // not owned; null = clean
  uint32_t table_id_ = 0;
  uint32_t page_rows_ = 64;
  bool paged_ = false;

  std::vector<StoredRow> flat_;  // flat mode storage
  std::deque<DiskPage> disk_;    // paged-mode disk image; deque for stable
                                 // element addresses across growth
  size_t next_page_ = 0;         // intended append target
  size_t next_slot_ = 0;
  size_t row_count_ = 0;
  uint64_t version_ = 0;

  mutable std::vector<StoredRow> scratch_;  // Materialized() cache
  mutable uint64_t scratch_version_ = ~uint64_t{0};
};

}  // namespace minidb
}  // namespace pqs

#endif  // PQS_SRC_MINIDB_STORAGE_H_
