// MiniDB: the in-process SQL engine under test.
//
// Implements the pqs::Connection contract for all three dialect flavors.
// Semantics are interpreted directly over the typed AST (no SQL text round
// trip) using the shared src/interp evaluator, which is what makes the
// containment oracle exact on a clean engine. A BugConfig turns on injected
// bug classes from the registry in src/minidb/bug_registry.h; scan-level
// and statement-level bugs are implemented here, expression-level bugs in
// the evaluator.
#ifndef PQS_SRC_MINIDB_DATABASE_H_
#define PQS_SRC_MINIDB_DATABASE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/engine/bugs.h"
#include "src/engine/connection.h"
#include "src/interp/bytecode.h"
#include "src/interp/eval.h"
#include "src/minidb/buffer_pool.h"
#include "src/minidb/coverage.h"
#include "src/minidb/storage.h"
#include "src/sqlast/ast.h"
#include "src/sqlstmt/stmt.h"

namespace pqs {
namespace minidb {

class Database : public Connection {
 public:
  // `storage` selects the paged (default) or flat row heap; see
  // StorageOptions. When `bugs` arms a storage-layer bug class, a paged
  // configuration is automatically tightened to StorageOptions::Stress()
  // so generator-scale tables (3-12 rows) still reach page splits and
  // eviction pressure — HuntBug's default budget depends on that.
  explicit Database(Dialect dialect, BugConfig bugs = BugConfig(),
                    StorageOptions storage = StorageOptions());

  StatementResult Execute(const Stmt& stmt) override;
  Dialect dialect() const override { return dialect_; }
  std::string EngineName() const override;
  bool alive() const override { return alive_; }
  // In-place reset back to an empty database. Dialect, bug config, and the
  // coverage sink are preserved; data, indexes, and a simulated crash are
  // not. The reducer relies on this to reuse one connection per reduction.
  bool Reset() override;

  // Feature coverage is recorded into an external sink so a whole session's
  // connections can share one map (bench_table4). Null disables tracking.
  void set_coverage_sink(CoverageMap* sink) { coverage_ = sink; }
  CoverageMap* coverage_sink() const { return coverage_; }

  size_t table_count() const { return tables_.size(); }
  size_t index_count() const { return indexes_.size(); }

  // Read-only view of a table's stored rows in position order (nullptr
  // when the table does not exist) — identical to the row set a bare
  // `SELECT *` returns on a clean instance. The runner's ground-truth
  // state comparison reads the model through this instead of paying for a
  // full SELECT round trip; on a clean paged engine the materialized copy
  // is cached per table version, so repeated reads stay as cheap as the
  // old direct vector access. The pointer is invalidated by the next
  // mutation of the same table.
  const std::vector<std::vector<SqlValue>>* TableRows(
      const std::string& name) {
    TableData* table = FindTable(name);
    return table != nullptr ? &table->store.Materialized() : nullptr;
  }

  // Disables the secondary-index scan planner: every SELECT falls back to
  // the full table scan. The index-consistency property test runs the same
  // session with the planner on and off and requires identical results.
  void set_use_index_scan(bool enabled) { use_index_scan_ = enabled; }

  // Introspection for the storage tests and benches.
  const StorageOptions& storage_options() const { return storage_opts_; }
  BufferPool& buffer_pool() { return pool_; }
  const TableStore* table_store(const std::string& name) {
    TableData* table = FindTable(name);
    return table != nullptr ? &table->store : nullptr;
  }

  // MVCC introspection for the transaction tests. The engine is "in the
  // epoch" from the first BEGIN until the next quiescent point (no open
  // transaction), when version history is pruned back to a flat heap.
  bool in_mvcc_epoch() const { return in_epoch_; }
  uint64_t commit_clock() const { return commit_clock_; }
  int active_session() const { return active_session_; }
  size_t open_transactions() const { return txns_.size(); }

 private:
  // --- MVCC transaction layer (DESIGN §14). ------------------------------
  // Timestamps are commit-clock values: 0 = predates the epoch, kTsInf =
  // still current. A row version is visible to snapshot S iff
  // begin_ts <= S < end_ts.
  static constexpr uint64_t kTsInf = ~uint64_t{0};
  struct RowVersion {
    uint64_t begin_ts = 0;
    uint64_t end_ts = kTsInf;
    std::vector<SqlValue> data;
  };
  // Per-position version metadata, active only during the epoch. The store
  // row at the position is the newest committed version ([begin_ts,
  // end_ts)); `older` holds superseded versions, oldest first. Deleted rows
  // stay in the store as tombstones (end_ts set) until PruneHistory.
  struct RowMeta {
    uint64_t begin_ts = 0;
    uint64_t end_ts = kTsInf;
    std::vector<RowVersion> older;
  };
  // One transaction's buffered write set for one table. Nothing touches the
  // store until COMMIT; statement-level rollback is free because failing
  // statements never reach the buffer.
  struct TxnWrites {
    std::vector<std::vector<SqlValue>> inserted;
    std::vector<char> inserted_alive;  // parallel; 0 = deleted again in-txn
    std::map<size_t, std::vector<SqlValue>> updated;  // store pos → new row
    std::set<size_t> deleted;                         // store positions

    bool Empty() const {
      if (!updated.empty() || !deleted.empty()) return false;
      for (char a : inserted_alive) {
        if (a) return false;
      }
      return true;
    }
    bool UpdatesOnly() const {
      if (updated.empty() || !deleted.empty()) return false;
      for (char a : inserted_alive) {
        if (a) return false;
      }
      return true;
    }
  };
  struct Transaction {
    bool open = false;
    uint64_t begin_ts = 0;  // snapshot: sees commits with ts <= begin_ts
    std::map<std::string, TxnWrites> writes;
  };
  // One row of a transaction's read image, with provenance so the DML paths
  // can route writes back to the store position or own-insert they hit.
  struct ImageRow {
    std::vector<SqlValue> data;
    size_t pos = 0;       // store position (valid when own_insert < 0)
    int own_insert = -1;  // index into the transaction's inserted list
  };
  struct TableData {
    std::string name;
    int32_t name_sym = -1;  // interned `name` (equality-only)
    std::vector<ColumnDef> columns;
    // Single-table row schema with interned column symbols, built once at
    // CREATE TABLE. Every scan, constraint check, and index-maintenance
    // path borrows this instead of re-materializing (table, column) string
    // pairs per statement.
    RowSchema schema;
    // The row heap: flat or paged behind the connection's buffer pool
    // (storage.h). Row *positions* (page-strided ids, dense on a clean
    // engine) replace the old vector indexes everywhere — index entries,
    // UPDATE journals, constraint exclusions.
    TableStore store;
    // Version metadata by store position, populated only during the MVCC
    // epoch (EnterEpoch fills it, PruneHistory clears it). Outside the
    // epoch the store alone is the truth and this map is empty.
    std::map<size_t, RowMeta> meta;
  };
  struct IndexData {
    std::string name;
    int32_t name_sym = -1;  // interned `name` (equality-only)
    std::string table_name;
    std::vector<std::string> columns;
    bool unique = false;
    ExprPtr where;  // partial index predicate (nullable)
    // `where` compiled against the owning table's schema at CREATE INDEX.
    // The program borrows the `where` tree, whose pointee is stable under
    // IndexData moves, so index maintenance (which runs the predicate per
    // row) skips the per-call tree walk.
    CompiledExpr where_code;
    // B-tree-ish ordered secondary index: (key tuple, row position) pairs
    // kept sorted by key (ValueCompare lexicographic, position tie-break).
    // Positions reference TableData::store; every maintenance path (INSERT
    // append, UPDATE/DELETE rebuild, REINDEX) keeps them consistent —
    // unless an injected index or storage bug is the one corrupting them
    // (scans bounds-guard every position through the page cursor).
    std::vector<int> key_cols;  // column positions within the table
    std::vector<std::pair<std::vector<SqlValue>, size_t>> entries;
    // Per-entry version visibility, parallel to `entries` and populated only
    // while the MVCC epoch is active: the planner filters out entries whose
    // [begin_ts, end_ts) window does not cover the reading snapshot. Empty
    // outside the epoch (every entry visible).
    struct EntryVis {
      uint64_t begin_ts = 0;
      uint64_t end_ts = kTsInf;
    };
    std::vector<EntryVis> vis;
  };

  StatementResult ExecuteCreateTable(const CreateTableStmt& stmt);
  StatementResult ExecuteCreateIndex(const CreateIndexStmt& stmt);
  StatementResult ExecuteDropIndex(const DropIndexStmt& stmt);
  StatementResult ExecuteInsert(const InsertStmt& stmt);
  StatementResult ExecuteSelect(const SelectStmt& stmt);
  StatementResult ExecuteUpdate(const UpdateStmt& stmt);
  StatementResult ExecuteDelete(const DeleteStmt& stmt);
  StatementResult ExecuteMaintenance(const MaintenanceStmt& stmt);

  // --- MVCC transaction execution (DESIGN §14). --------------------------
  StatementResult ExecuteBegin();
  StatementResult ExecuteCommit();
  StatementResult ExecuteRollback();
  // During the epoch all DML is diverted here: inside a transaction it
  // buffers into the write set; outside one it runs as an implicit
  // single-statement transaction committed immediately.
  StatementResult ExecuteTxnInsert(const InsertStmt& stmt);
  StatementResult ExecuteTxnUpdate(const UpdateStmt& stmt);
  StatementResult ExecuteTxnDelete(const DeleteStmt& stmt);
  StatementResult TxnInsertInto(const InsertStmt& stmt, Transaction* txn);
  StatementResult TxnUpdateInto(const UpdateStmt& stmt, Transaction* txn);
  StatementResult TxnDeleteInto(const DeleteStmt& stmt, Transaction* txn);
  // Returns the active session's open transaction, or nullptr.
  Transaction* CurrentTxn();
  // Starts version bookkeeping on first BEGIN: every existing row gets meta
  // {0, kTsInf} and index entries get visibility windows.
  void EnterEpoch();
  // When the last transaction closes: materializes the latest committed
  // version of every table back into a flat heap, drops version history and
  // tombstones, rebuilds indexes, and leaves the epoch. The commit clock
  // stays monotonic so later epochs never reuse timestamps.
  void PruneHistory();
  void PruneIfQuiescent();
  // First-committer-wins check + version-chain apply at a fresh commit
  // timestamp. Returns false on write conflict (nothing applied).
  bool CommitConflicts(const Transaction& txn) const;
  void ApplyCommit(Transaction* txn);
  // The rows `txn` (nullable = autocommit reader) sees in `table`:
  // snapshot-visible committed versions overlaid with the transaction's own
  // writes. `for_select` enables the read-path bug hooks (dirty read /
  // uncommitted-version read), which must not leak into DML matched sets.
  std::vector<ImageRow> BuildReadImage(TableData* table,
                                       const Transaction* txn,
                                       bool for_select);
  // CheckConstraints against a read image instead of the store: collision
  // scans run over `image` rows (skipping `exclude_row`, an index into
  // `image`) plus the statement's own `pending` rows.
  StatementResult CheckConstraintsImage(
      const TableData& table, const std::vector<SqlValue>& candidate,
      const std::vector<ImageRow>& image,
      const std::vector<std::vector<SqlValue>>& pending, int exclude_row);
  // Rebuilds `index->vis` from the owning table's row meta (clears it
  // outside the epoch).
  void RefreshIndexVis(IndexData* index, const TableData& table);
  // kTxnRollbackStaleIndex: rebuilds the aborted transaction's written
  // indexes from its discarded overlay image, as if ROLLBACK forgot to undo
  // index maintenance; PruneHistory then skips repairing them.
  void CorruptIndexesFromAbort(TableData* table, const Transaction& txn);

  TableData* FindTable(const std::string& name);
  IndexData* FindIndex(const std::string& name);

  // --- Secondary-index maintenance. ------------------------------------
  // Appends entries for `table`'s row at `pos` (skipping rows a partial
  // predicate does not cover), keeping the entry list key-sorted.
  void AddIndexEntry(IndexData* index, const TableData& table, size_t pos);
  // Rebuilds the index from the table's current rows.
  void RebuildIndex(IndexData* index, const TableData& table);

  // --- Scan planner. -----------------------------------------------------
  // Decides whether a single-table SELECT's WHERE can be answered through
  // a secondary index: a non-partial index needs a `col <cmp> literal`
  // conjunct over one of its key columns; a partial index additionally
  // requires its own predicate to appear as a top-level WHERE conjunct
  // (structural equality), which is what makes using it sound. On success
  // fills `positions` with the candidate row positions in table order.
  bool PlanIndexScan(const TableData& table, const Expr& where,
                     const EvalContext& ctx, std::vector<size_t>* positions,
                     bool* used_partial);

  // Returns an error/violation result if `candidate` (to be added to
  // `table`) breaks a declared constraint, also considering `pending` rows
  // of the same statement. `exclude_row` (≥ 0) skips one stored row in the
  // collision scans — the row an UPDATE is about to replace.
  StatementResult CheckConstraints(
      const TableData& table, const std::vector<SqlValue>& candidate,
      const std::vector<std::vector<SqlValue>>& pending,
      int exclude_row = -1);
  // Applies dialect insert-position coercion of `value` into `col`.
  // Returns false (and fills *failure) when the dialect rejects the value.
  bool CoerceForInsert(const ColumnDef& col, SqlValue* value,
                       StatementResult* failure);

  void Mark(Feature f) {
    if (coverage_ != nullptr) coverage_->Mark(f);
  }
  void MarkExprFeatures(const Expr& expr);

  bool BugOn(BugId id) const { return bugs_.enabled(id); }
  StatementResult Crash(const std::string& why);

  Dialect dialect_;
  BugConfig bugs_;
  // Declared before pool_/tables_: the pool and every TableStore borrow
  // &bugs_ and &storage_opts_ for their lifetime.
  StorageOptions storage_opts_;
  BufferPool pool_;
  CoverageMap* coverage_ = nullptr;
  bool alive_ = true;
  bool use_index_scan_ = true;
  // Monotonic across Reset(): a recycled id could match a stale frame of a
  // destroyed table still sitting in the pool.
  uint32_t next_table_id_ = 0;
  std::vector<TableData> tables_;
  std::vector<IndexData> indexes_;

  // --- MVCC transaction state. ------------------------------------------
  // Open transactions by logical session id; entries are erased at
  // COMMIT/ROLLBACK, so `txns_.empty()` means quiescent.
  std::map<int, Transaction> txns_;
  int active_session_ = 0;  // switched by SetSessionStmt
  // Commit timestamps, monotonic across epochs (PruneHistory never rewinds
  // it). Snapshot of a new transaction = current value.
  uint64_t commit_clock_ = 0;
  bool in_epoch_ = false;
  // Last commit timestamp that wrote each table — the whole first-committer
  // -wins check, sound because generated DML is single-table.
  std::map<std::string, uint64_t> last_write_ts_;
  // Tables whose indexes kTxnRollbackStaleIndex corrupted; PruneHistory
  // skips rebuilding them once, leaving stale entries behind.
  std::set<std::string> rollback_corrupted_;
};

// Scoped coverage collection: attaches a CoverageMap to a Database for the
// lifetime of the session and restores the previous sink on destruction.
class CoverageSession {
 public:
  CoverageSession(Database* db, CoverageMap* map)
      : db_(db), previous_(db->coverage_sink()) {
    db_->set_coverage_sink(map);
  }
  ~CoverageSession() { db_->set_coverage_sink(previous_); }

  CoverageSession(const CoverageSession&) = delete;
  CoverageSession& operator=(const CoverageSession&) = delete;

 private:
  Database* db_;
  CoverageMap* previous_;
};

}  // namespace minidb
}  // namespace pqs

#endif  // PQS_SRC_MINIDB_DATABASE_H_
