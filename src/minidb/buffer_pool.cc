#include "src/minidb/buffer_pool.h"

#include "src/obs/telemetry.h"

namespace pqs {
namespace minidb {

bool HasStorageBug(const BugConfig& bugs) {
  return bugs.enabled(BugId::kEvictDropsDirtyPage) ||
         bugs.enabled(BugId::kPageSplitRowLoss) ||
         bugs.enabled(BugId::kStalePageReadAfterUpdate) ||
         bugs.enabled(BugId::kIndexHeapDesync);
}

BufferPool::BufferPool(uint32_t frames, uint64_t seed, const BugConfig* bugs)
    : bugs_(bugs) {
  // A fetch can nest (batch scan holding one page while a constraint check
  // or an Overwrite pins another), so the pool refuses to run with fewer
  // than 4 frames regardless of how tight the stress configuration is.
  if (frames < 4) frames = 4;
  frames_.resize(frames);
  // splitmix64 finalizer: the hand start depends only on the seed, never
  // on addresses or time, so eviction order is a pure function of
  // (seed, access sequence).
  uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  configured_frames_ = frames;
  initial_hand_ = static_cast<size_t>(z % frames);
  hand_ = initial_hand_;
}

void BufferPool::Reset() {
  frames_.assign(configured_frames_, Frame());
  hand_ = initial_hand_;
  ++epoch_;
}

int BufferPool::FindFrame(uint32_t table, uint32_t page) const {
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.in_use && f.table == table && f.page == page) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int BufferPool::PickVictim() {
  // Classic clock: sweep from the hand; a set reference bit buys the frame
  // one more lap. Two laps guarantee either a victim or proof that every
  // frame is pinned.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    size_t i = hand_;
    hand_ = (hand_ + 1) % n;
    Frame& f = frames_[i];
    if (!f.in_use) return static_cast<int>(i);
    if (f.pins > 0) continue;
    if (f.ref) {
      f.ref = false;
      continue;
    }
    return static_cast<int>(i);
  }
  return -1;
}

void BufferPool::EvictFrame(int index) {
  Frame& f = frames_[index];
  if (!f.in_use) return;
  ++stats_.evictions;
  ++epoch_;
  obs::Count(obs::Counter::kPoolEvictions);
  obs::Emit(obs::EventKind::kEviction, f.table, f.page);
  if (f.dirty) {
    // kEvictDropsDirtyPage: the write-back is skipped, so everything
    // modified since the page was loaded silently reverts to the disk
    // image the next time the page is fetched.
    if (bugs_ != nullptr && bugs_->enabled(BugId::kEvictDropsDirtyPage)) {
      // drop the frame content on the floor
    } else {
      f.backing->rows = f.rows;
      ++stats_.dirty_writebacks;
      obs::Count(obs::Counter::kPoolWritebacks);
    }
  }
  f.in_use = false;
  f.dirty = false;
  f.update_dirtied = false;
  f.ref = false;
  f.backing = nullptr;
  f.rows.clear();
}

int BufferPool::Fetch(uint32_t table, uint32_t page, DiskPage* disk,
                      Intent intent) {
  int idx = FindFrame(table, page);
  if (idx >= 0) {
    ++stats_.hits;
    obs::Count(obs::Counter::kPoolHits);
    Frame& f = frames_[idx];
    // kStalePageReadAfterUpdate: a read hit on a frame dirtied by UPDATE
    // "revalidates" it from disk, discarding the in-frame modifications —
    // subsequent reads observe the pre-update rows.
    if (intent == Intent::kRead && f.update_dirtied && f.dirty &&
        bugs_ != nullptr &&
        bugs_->enabled(BugId::kStalePageReadAfterUpdate)) {
      f.rows = f.backing->rows;
      f.dirty = false;
      f.update_dirtied = false;
      ++epoch_;
    }
    f.ref = true;
    ++f.pins;
    if (intent != Intent::kRead) {
      f.dirty = true;
      if (intent == Intent::kUpdate) f.update_dirtied = true;
    }
    return idx;
  }

  ++stats_.misses;
  obs::Count(obs::Counter::kPoolMisses);
  idx = PickVictim();
  if (idx < 0) {
    // Every frame is pinned (deeply nested access on a tiny pool): grow by
    // one emergency frame rather than deadlock. The growth is itself
    // deterministic — it depends only on the access sequence.
    frames_.emplace_back();
    idx = static_cast<int>(frames_.size() - 1);
    ++stats_.emergency_frames;
  } else {
    EvictFrame(idx);
  }

  Frame& f = frames_[idx];
  f.in_use = true;
  f.table = table;
  f.page = page;
  f.backing = disk;
  f.rows = disk->rows;  // copy-on-load; the frame is the working copy
  f.dirty = intent != Intent::kRead;
  f.update_dirtied = intent == Intent::kUpdate;
  f.ref = true;
  f.pins = 1;
  return idx;
}

void BufferPool::Unpin(int frame_index) {
  Frame& f = frames_[frame_index];
  if (f.pins > 0) --f.pins;
}

void BufferPool::FlushTable(uint32_t table) {
  for (Frame& f : frames_) {
    if (f.in_use && f.table == table && f.dirty) {
      f.backing->rows = f.rows;
      f.dirty = false;
      f.update_dirtied = false;
      ++stats_.dirty_writebacks;
      obs::Count(obs::Counter::kPoolWritebacks);
      ++epoch_;
    }
  }
}

void BufferPool::DiscardTable(uint32_t table) {
  uint32_t dropped = 0;
  for (Frame& f : frames_) {
    if (f.in_use && f.table == table) {
      ++dropped;
      f.in_use = false;
      f.dirty = false;
      f.update_dirtied = false;
      f.ref = false;
      f.pins = 0;
      f.backing = nullptr;
      f.rows.clear();
      ++epoch_;
    }
  }
  // A wholesale discard is a cache invalidation: every cached frame of the
  // table is dropped without write-back (the disk image was rewritten).
  if (dropped > 0) {
    obs::Count(obs::Counter::kCacheInvalidations);
    obs::Emit(obs::EventKind::kCacheInvalidation, dropped);
  }
}

int BufferPool::pinned_frames() const {
  int n = 0;
  for (const Frame& f : frames_) {
    if (f.in_use && f.pins > 0) ++n;
  }
  return n;
}

}  // namespace minidb
}  // namespace pqs
