// Metadata registry of MiniDB's injected bug classes.
//
// Each entry models one *class* of real-world bug from the PQS paper's
// study: which dialect exhibits it, which oracle is expected to catch it,
// and how the upstream report was resolved (Table 2's Fixed / Verified /
// Intended / Duplicate columns). The campaign layer iterates this table;
// the behaviors themselves are implemented in the engine and evaluator,
// keyed by BugId.
#ifndef PQS_SRC_MINIDB_BUG_REGISTRY_H_
#define PQS_SRC_MINIDB_BUG_REGISTRY_H_

#include <cstddef>
#include <vector>

#include "src/engine/bugs.h"
#include "src/engine/connection.h"
#include "src/pqs/campaign.h"
#include "src/pqs/oracles.h"

namespace pqs {
namespace minidb {

struct BugInfo {
  BugId id;
  const char* name;
  Dialect dialect;          // dialect flavor exhibiting the bug
  OracleKind oracle;        // oracle expected to catch it
  ReportOutcome outcome;    // modeled report resolution
};

// All registered bugs, in BugId order.
const std::vector<BugInfo>& BugRegistry();

// Entry for one bug (must exist).
const BugInfo& LookupBug(BugId id);

// Registered bugs exhibited by the given dialect.
std::vector<BugInfo> BugsForDialect(Dialect dialect);

}  // namespace minidb
}  // namespace pqs

#endif  // PQS_SRC_MINIDB_BUG_REGISTRY_H_
