// Fixed-size page frames behind a deterministic clock-eviction buffer pool.
//
// MiniDB's paged storage keeps every table as a sequence of fixed-size
// "disk" pages (see storage.h). All reads and writes of page content go
// through a BufferPool: a bounded set of in-memory frames holding copies of
// disk pages. A frame is pinned while a caller holds a reference into it;
// unpinned frames are eviction candidates for the clock sweep, which writes
// dirty frames back to their disk page before reuse.
//
// Determinism: the pool has no wall-clock or address-dependent state. The
// clock hand starts at a position derived from the configured seed and
// advances only as a function of the fetch/unpin sequence, so two engines
// configured identically and driven with the same statement stream evict
// the same pages in the same order — which keeps N-worker campaign reports
// byte-identical and makes every storage-bug finding replayable.
//
// The storage-layer injected bugs (BugId::kEvictDropsDirtyPage and
// BugId::kStalePageReadAfterUpdate) live here because eviction and read
// revalidation are pool concerns; the page-split and index-desync bugs live
// in TableStore / Database where splits and rebuilds happen.
#ifndef PQS_SRC_MINIDB_BUFFER_POOL_H_
#define PQS_SRC_MINIDB_BUFFER_POOL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/engine/bugs.h"
#include "src/sqlvalue/value.h"

namespace pqs {
namespace minidb {

using StoredRow = std::vector<SqlValue>;

// One fixed-capacity page of the backing "disk" image. Rows are stored
// row-major; a page holds at most StorageOptions::page_rows rows.
struct DiskPage {
  std::vector<StoredRow> rows;
};

// Knobs for the paged storage layer. The defaults keep generator-scale
// tables (3-12 rows) fully resident so the clean hot path pays only the
// frame lookup; Stress() shrinks both axes to force splits and eviction on
// every statement, and Flat() bypasses paging entirely (used by the ground
// truth model and by the paging-on/off determinism tests).
struct StorageOptions {
  bool paged = true;
  uint32_t page_rows = 64;    // rows per page (>= 1)
  uint32_t pool_frames = 32;  // frames in the pool (clamped up to >= 4)
  uint64_t seed = 0x9e3779b97f4a7c15ull;  // clock-hand start derivation

  static StorageOptions Flat() {
    StorageOptions o;
    o.paged = false;
    return o;
  }
  // Tiny pages + tiny pool: every multi-row table spans pages and every
  // scan cycles the pool. Used automatically when a storage bug is armed
  // (see Database) and by the forced-eviction property tests.
  static StorageOptions Stress() {
    StorageOptions o;
    o.page_rows = 2;
    o.pool_frames = 4;
    return o;
  }
};

// True if `bugs` enables any of the storage-layer bug classes. Database
// uses this to auto-arm Stress() storage so the default HuntBug budget
// reaches eviction/split trigger states at generator-scale tables, and
// TableStore uses it to bypass the materialization cache (pool activity can
// change observed content when these are armed).
bool HasStorageBug(const BugConfig& bugs);

class BufferPool {
 public:
  // How a fetch intends to use the page. kUpdate is a write that modifies
  // existing rows in place (the UPDATE path); it marks the frame as a
  // candidate for the stale-read-after-update injected bug.
  enum class Intent { kRead, kWrite, kUpdate };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;
    uint64_t emergency_frames = 0;  // all frames pinned; pool grew by one
  };

  struct Frame {
    uint32_t table = 0;
    uint32_t page = 0;
    bool in_use = false;
    bool dirty = false;          // frame content diverged from disk
    bool update_dirtied = false; // dirtied via Intent::kUpdate
    bool ref = false;            // clock reference bit
    int pins = 0;
    DiskPage* backing = nullptr; // disk page this frame caches
    std::vector<StoredRow> rows;
  };

  BufferPool(uint32_t frames, uint64_t seed, const BugConfig* bugs);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns the index of a pinned frame caching (table, page), loading it
  // from `disk` on a miss (possibly evicting an unpinned frame first).
  // `disk` must stay valid until the frame is evicted or discarded; the
  // deque-backed page store in TableStore guarantees stable addresses.
  int Fetch(uint32_t table, uint32_t page, DiskPage* disk, Intent intent);
  void Unpin(int frame_index);

  Frame& frame(int i) { return frames_[i]; }
  const Frame& frame(int i) const { return frames_[i]; }

  // Writes every dirty frame of `table` back to its disk page (subject to
  // the evict-drops-dirty bug NOT applying: an explicit flush models a
  // checkpoint and is kept correct so Materialize sees mutations).
  void FlushTable(uint32_t table);

  // Forgets every frame of `table` without write-back. Used when the
  // table's disk image is rewritten wholesale (DELETE compaction, DROP,
  // Clear): the frames' content is dead and their backing pointers would
  // dangle.
  void DiscardTable(uint32_t table);

  // Drops every frame without write-back and rewinds the clock hand to its
  // seed-derived start — the state a freshly constructed pool would have.
  // Used by Database::Reset, where the tables (and with them every disk
  // page the frames point into) are destroyed wholesale. Stats accumulate
  // across resets.
  void Reset();

  // Monotonic counter bumped whenever pool activity could have changed
  // what a subsequent read observes (eviction, write-back, revalidation).
  // Only meaningful to cache-invalidation when storage bugs are armed; on
  // a clean pool, frame traffic never changes logical content.
  uint64_t epoch() const { return epoch_; }

  const Stats& stats() const { return stats_; }
  size_t frame_count() const { return frames_.size(); }
  int pinned_frames() const;

  // Pool activity is also emitted as telemetry when a session context is
  // installed (src/obs/telemetry.h): hits/misses/evictions/writebacks as
  // counters, and each eviction as a kEviction flight-recorder event
  // carrying (table, page) — the replacement for the old set_trace /
  // eviction_log bespoke API, in the same deterministic order.

 private:
  int FindFrame(uint32_t table, uint32_t page) const;
  int PickVictim();  // clock sweep; -1 if every frame is pinned
  void EvictFrame(int index);

  std::vector<Frame> frames_;
  size_t configured_frames_ = 0;  // before any emergency growth
  size_t hand_ = 0;               // clock hand, seeded deterministically
  size_t initial_hand_ = 0;
  const BugConfig* bugs_;  // not owned; may be null (clean pool)
  Stats stats_;
  uint64_t epoch_ = 0;
};

}  // namespace minidb
}  // namespace pqs

#endif  // PQS_SRC_MINIDB_BUFFER_POOL_H_
