#include "src/sqlstmt/stmt.h"

#include <memory>

namespace pqs {

StmtPtr CreateIndexStmt::Clone() const {
  auto out = std::make_unique<CreateIndexStmt>();
  out->index_name = index_name;
  out->table_name = table_name;
  out->columns = columns;
  out->unique = unique;
  out->where = where ? where->Clone() : nullptr;
  return out;
}

StmtPtr DropIndexStmt::Clone() const {
  auto out = std::make_unique<DropIndexStmt>();
  out->index_name = index_name;
  out->table_name = table_name;
  return out;
}

StmtPtr UpdateStmt::Clone() const {
  auto out = std::make_unique<UpdateStmt>();
  out->table_name = table_name;
  out->assignments.reserve(assignments.size());
  for (const Assignment& a : assignments) {
    Assignment copy;
    copy.column = a.column;
    copy.value = a.value ? a.value->Clone() : nullptr;
    out->assignments.push_back(std::move(copy));
  }
  out->where = where ? where->Clone() : nullptr;
  return out;
}

StmtPtr DeleteStmt::Clone() const {
  auto out = std::make_unique<DeleteStmt>();
  out->table_name = table_name;
  out->where = where ? where->Clone() : nullptr;
  return out;
}

StmtPtr MaintenanceStmt::Clone() const {
  auto out = std::make_unique<MaintenanceStmt>();
  out->table_name = table_name;
  return out;
}

StmtPtr BeginStmt::Clone() const { return std::make_unique<BeginStmt>(); }

StmtPtr CommitStmt::Clone() const { return std::make_unique<CommitStmt>(); }

StmtPtr RollbackStmt::Clone() const {
  return std::make_unique<RollbackStmt>();
}

StmtPtr SetSessionStmt::Clone() const {
  auto out = std::make_unique<SetSessionStmt>();
  out->session = session;
  return out;
}

}  // namespace pqs
