#include "src/sqlmeta/oracle.h"

#include <string>

#include "src/interp/eval.h"
#include "src/obs/telemetry.h"
#include "src/sqlast/ast.h"
#include "src/sqlvalue/value.h"

namespace pqs {
namespace sqlmeta {

namespace {

MetaVerdict ClassifyStatus(StatementStatus s) {
  switch (s) {
    case StatementStatus::kOk:
      return MetaVerdict::kOk;
    case StatementStatus::kConstraintViolation:
    case StatementStatus::kError:
      return MetaVerdict::kEngineError;
    case StatementStatus::kCrash:
      return MetaVerdict::kEngineCrash;
    case StatementStatus::kUnsupported:
      return MetaVerdict::kUnsupported;
  }
  return MetaVerdict::kEngineError;
}

// Executes `q`, logging its clone into outcome->executed first (so a crash
// still leaves the provoking statement last). Returns true on success;
// otherwise the outcome's verdict and message are final.
bool Run(Connection& conn, const SelectStmt& q, MetaOutcome* outcome,
         StatementResult* result) {
  outcome->executed.push_back(q.Clone());
  {
    obs::ScopedPhase span(obs::Phase::kEngineExecute);
    *result = conn.Execute(q);
    obs::CountStatement(static_cast<uint32_t>(StmtKind::kSelect),
                        !result->ok());
  }
  if (result->ok()) return true;
  outcome->verdict = ClassifyStatus(result->status);
  outcome->message = result->error;
  return false;
}

void Mismatch(MetaOutcome* out, std::string message) {
  out->verdict = MetaVerdict::kMismatch;
  out->message = std::move(message);
}

}  // namespace

MetaOutcome RunNorecCheck(Connection& conn, const std::string& table,
                          const Expr& predicate) {
  MetaOutcome out;
  auto optimized = NorecOptimized(table, predicate);
  auto unoptimized = NorecUnoptimized(table, predicate);
  StatementResult opt_result;
  StatementResult unopt_result;
  if (!Run(conn, *unoptimized, &out, &unopt_result)) return out;
  if (!Run(conn, *optimized, &out, &opt_result)) return out;
  if (opt_result.rows.size() != 1 || opt_result.rows[0].size() != 1) {
    Mismatch(&out, "NoREC optimized COUNT(*) did not return a single cell");
    return out;
  }
  int64_t truthy = 0;
  for (const auto& row : unopt_result.rows) {
    if (!row.empty() && Truthiness(row[0], conn.dialect()) == Bool3::kTrue) {
      ++truthy;
    }
  }
  const SqlValue& count = opt_result.rows[0][0];
  if (!ValueEquals(count, SqlValue::Int(truthy))) {
    Mismatch(&out, "NoREC mismatch: optimized COUNT(*) = " +
                       count.ToDisplay() +
                       ", unoptimized truthy projection count = " +
                       std::to_string(truthy));
  }
  return out;
}

MetaOutcome RunTlpCheck(Connection& conn, const SelectStmt& query,
                        const Expr& predicate) {
  MetaOutcome out;
  TlpPlan plan;
  std::string why;
  if (!BuildTlpPlan(query, predicate, &plan, &why)) {
    out.verdict = MetaVerdict::kSkipped;
    out.message = why;
    return out;
  }

  std::vector<StatementResult> parts(plan.partitions.size());
  for (size_t i = 0; i < plan.partitions.size(); ++i) {
    if (!Run(conn, *plan.partitions[i], &out, &parts[i])) return out;
  }
  StatementResult full;
  if (!Run(conn, query, &out, &full)) return out;

  const std::string tag =
      std::string("TLP(") + TlpShapeName(plan.shape) + ") mismatch: ";

  if (plan.shape == TlpShape::kRows) {
    std::vector<std::vector<SqlValue>> expected;
    for (const StatementResult& pr : parts) {
      for (const auto& row : pr.rows) expected.push_back(row);
    }
    if (!SameRowMultiset(expected, full.rows)) {
      Mismatch(&out, tag + "partition union has " +
                         std::to_string(expected.size()) +
                         " row(s), full query returned " +
                         std::to_string(full.rows.size()));
    }
    return out;
  }

  if (plan.shape == TlpShape::kCountDistinct) {
    // Dedup the union of the per-partition DISTINCT value sets ourselves
    // (summing per-partition counts would be unsound: one value can sit in
    // several partitions). NULL never counts.
    std::vector<SqlValue> values;
    for (const StatementResult& pr : parts) {
      for (const auto& row : pr.rows) {
        if (row.empty() || row[0].is_null()) continue;
        bool seen = false;
        for (const SqlValue& v : values) {
          if (ValueEquals(v, row[0])) {
            seen = true;
            break;
          }
        }
        if (!seen) values.push_back(row[0]);
      }
    }
    int64_t expected = static_cast<int64_t>(values.size());
    if (full.rows.size() != 1 || full.rows[0].size() != 1) {
      Mismatch(&out, tag + "full query did not return a single cell");
      return out;
    }
    if (!ValueEquals(full.rows[0][0], SqlValue::Int(expected))) {
      Mismatch(&out, tag + "recombined distinct count = " +
                         std::to_string(expected) +
                         ", full COUNT(DISTINCT) = " +
                         full.rows[0][0].ToDisplay());
    }
    return out;
  }

  // kAggregate / kGroupBy: merge the partition groups by group key,
  // recombine each aggregate from its partials with a *clean* accumulator,
  // re-apply HAVING on the recombined values, and compare the rebuilt rows
  // against the full query's result.
  EvalContext ref{conn.dialect(), nullptr};
  const size_t gcols = static_cast<size_t>(plan.group_cols);
  size_t partial_width = gcols;
  for (const TlpAggTerm& term : plan.aggs) {
    partial_width += term.count_index >= 0 ? 2 : 1;
  }

  std::vector<std::vector<SqlValue>> keys;
  std::vector<std::vector<const std::vector<SqlValue>*>> group_partials;
  for (const StatementResult& pr : parts) {
    for (const auto& row : pr.rows) {
      if (row.size() != partial_width) {
        Mismatch(&out, tag + "partition row arity " +
                           std::to_string(row.size()) + ", expected " +
                           std::to_string(partial_width));
        return out;
      }
      size_t slot = keys.size();
      for (size_t k = 0; k < keys.size(); ++k) {
        bool same = true;
        for (size_t c = 0; c < gcols; ++c) {
          if (ValueCompare(keys[k][c], row[c]) != 0) {
            same = false;
            break;
          }
        }
        if (same) {
          slot = k;
          break;
        }
      }
      if (slot == keys.size()) {
        keys.emplace_back(row.begin(), row.begin() + static_cast<long>(gcols));
        group_partials.emplace_back();
      }
      group_partials[slot].push_back(&row);
    }
  }

  RowSchema key_schema;
  for (const ExprPtr& g : query.group_by) {
    key_schema.cols.emplace_back(g->table, g->column);
  }
  std::vector<const Expr*> agg_nodes;
  for (const TlpAggTerm& term : plan.aggs) {
    agg_nodes.push_back(term.original);
  }

  std::vector<std::vector<SqlValue>> expected_rows;
  for (size_t g = 0; g < keys.size(); ++g) {
    std::vector<SqlValue> agg_values;
    for (const TlpAggTerm& term : plan.aggs) {
      const size_t value_col = static_cast<size_t>(term.value_index);
      std::string err;
      if (term.original->agg == AggFunc::kAvg) {
        AggAccumulator sum_acc(AggFunc::kSum, false, ref);
        AggAccumulator cnt_acc(AggFunc::kSum, false, ref);
        const size_t count_col = static_cast<size_t>(term.count_index);
        for (const std::vector<SqlValue>* row : group_partials[g]) {
          if (!sum_acc.Add((*row)[value_col], &err) ||
              !cnt_acc.Add((*row)[count_col], &err)) {
            Mismatch(&out, tag + "unexpected AVG partial: " + err);
            return out;
          }
        }
        SqlValue sum = sum_acc.Final();
        SqlValue cnt = cnt_acc.Final();
        if (cnt.is_null() || cnt.AsReal() == 0.0 || sum.is_null()) {
          agg_values.push_back(SqlValue::Null());
        } else {
          agg_values.push_back(SqlValue::Real(sum.AsReal() / cnt.AsReal()));
        }
        continue;
      }
      // COUNT partials recombine by summation; SUM by summation; MIN/MAX
      // by taking the extreme of the extremes.
      AggFunc recombine = term.original->agg;
      if (recombine == AggFunc::kCount) recombine = AggFunc::kSum;
      AggAccumulator acc(recombine, false, ref);
      for (const std::vector<SqlValue>* row : group_partials[g]) {
        if (!acc.Add((*row)[value_col], &err)) {
          Mismatch(&out, tag + "unexpected partial: " + err);
          return out;
        }
      }
      SqlValue v = acc.Final();
      // A COUNT over a group every partition starved of rows cannot
      // happen (the group would not exist), but a NULL sum of counts is
      // the engine's junk, not ours — surface it as the recombined value.
      if (term.original->agg == AggFunc::kCount && v.is_null()) {
        v = SqlValue::Int(0);
      }
      agg_values.push_back(std::move(v));
    }

    RowView key_view{&key_schema, &keys[g]};
    if (query.having != nullptr) {
      ExprPtr hav =
          SubstituteAggregates(*query.having, agg_nodes, agg_values);
      EvalResult r = Evaluate(*hav, key_view, ref);
      if (r.error) {
        out.verdict = MetaVerdict::kSkipped;
        out.message = "recombined HAVING evaluation failed: " + r.message;
        return out;
      }
      if (Truthiness(r.value, conn.dialect()) != Bool3::kTrue) continue;
    }

    std::vector<SqlValue> row_out;
    row_out.reserve(query.select_list.size());
    for (const ExprPtr& item : query.select_list) {
      ExprPtr sub = SubstituteAggregates(*item, agg_nodes, agg_values);
      EvalResult r = Evaluate(*sub, key_view, ref);
      if (r.error) {
        out.verdict = MetaVerdict::kSkipped;
        out.message = "recombined select item evaluation failed: " + r.message;
        return out;
      }
      row_out.push_back(std::move(r.value));
    }
    expected_rows.push_back(std::move(row_out));
  }

  if (!SameRowMultiset(expected_rows, full.rows)) {
    std::string detail = tag + "recombined " +
                         std::to_string(expected_rows.size()) +
                         " group row(s), full query returned " +
                         std::to_string(full.rows.size());
    if (expected_rows.size() == 1 && full.rows.size() == 1) {
      detail += " (";
      for (size_t i = 0; i < expected_rows[0].size(); ++i) {
        if (i > 0) detail += ", ";
        detail += expected_rows[0][i].ToDisplay() + " vs " +
                  (i < full.rows[0].size() ? full.rows[0][i].ToDisplay()
                                           : std::string("<missing>"));
      }
      detail += ")";
    }
    Mismatch(&out, detail);
  }
  return out;
}

}  // namespace sqlmeta
}  // namespace pqs
