#include "src/sqlmeta/transform.h"

#include "src/interp/eval.h"

namespace pqs {
namespace sqlmeta {

namespace {

// where ∧ extra, or just extra when the query had no WHERE.
ExprPtr AndWhere(const ExprPtr& base, ExprPtr extra) {
  if (base == nullptr) return extra;
  return MakeBinary(BinaryOp::kAnd, base->Clone(), std::move(extra));
}

bool IsBareAggregate(const Expr* e) {
  return e != nullptr && e->kind == ExprKind::kAggregate;
}

}  // namespace

std::unique_ptr<SelectStmt> NorecOptimized(const std::string& table,
                                           const Expr& predicate) {
  auto q = std::make_unique<SelectStmt>();
  q->select_list.push_back(MakeCountStar());
  q->from_tables.push_back(table);
  q->where = predicate.Clone();
  q->meta_rewrite = true;
  return q;
}

std::unique_ptr<SelectStmt> NorecUnoptimized(const std::string& table,
                                             const Expr& predicate) {
  auto q = std::make_unique<SelectStmt>();
  q->select_list.push_back(predicate.Clone());
  q->from_tables.push_back(table);
  q->meta_rewrite = true;
  return q;
}

std::vector<ExprPtr> TlpPartitionPredicates(const Expr& predicate) {
  std::vector<ExprPtr> out;
  out.push_back(predicate.Clone());
  out.push_back(MakeUnary(UnaryOp::kNot, predicate.Clone()));
  out.push_back(MakeIsNull(predicate.Clone(), /*negated=*/false));
  return out;
}

const char* TlpShapeName(TlpShape shape) {
  switch (shape) {
    case TlpShape::kRows:
      return "rows";
    case TlpShape::kAggregate:
      return "aggregate";
    case TlpShape::kCountDistinct:
      return "count-distinct";
    case TlpShape::kGroupBy:
      return "group-by";
  }
  return "?";
}

bool BuildTlpPlan(const SelectStmt& query, const Expr& predicate,
                  TlpPlan* plan, std::string* error) {
  plan->group_cols = 0;
  plan->aggs.clear();
  plan->partitions.clear();
  auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (query.from_tables.size() != 1 || !query.joins.empty()) {
    return fail("TLP requires a single-table query");
  }
  if (query.distinct || !query.order_by.empty() || query.limit >= 0) {
    return fail("TLP query must not use DISTINCT/ORDER BY/LIMIT");
  }
  std::vector<ExprPtr> preds = TlpPartitionPredicates(predicate);

  if (!query.HasAggregates()) {
    // Plain row-set query: partitions are the same query with the
    // partition predicate ANDed onto any existing WHERE; recombination is
    // multiset union.
    plan->shape = TlpShape::kRows;
    for (ExprPtr& p : preds) {
      auto part = std::unique_ptr<SelectStmt>(
          static_cast<SelectStmt*>(query.Clone().release()));
      part->where = AndWhere(query.where, std::move(p));
      part->meta_rewrite = true;
      plan->partitions.push_back(std::move(part));
    }
    return true;
  }

  if (query.having != nullptr && query.group_by.empty()) {
    return fail("TLP does not model HAVING without GROUP BY");
  }

  // COUNT(DISTINCT c) is special: summing per-partition COUNT(DISTINCT)
  // partials is unsound (one value may appear in several partitions), so
  // its partitions project the DISTINCT value sets and the oracle dedups
  // their union itself.
  if (query.group_by.empty() && query.select_list.size() == 1 &&
      IsBareAggregate(query.select_list[0].get()) &&
      query.select_list[0]->agg == AggFunc::kCount &&
      query.select_list[0]->agg_distinct) {
    plan->shape = TlpShape::kCountDistinct;
    for (ExprPtr& p : preds) {
      auto part = std::make_unique<SelectStmt>();
      part->distinct = true;
      part->select_list.push_back(query.select_list[0]->args[0]->Clone());
      part->from_tables = query.from_tables;
      part->where = AndWhere(query.where, std::move(p));
      part->meta_rewrite = true;
      plan->partitions.push_back(std::move(part));
    }
    return true;
  }

  // Aggregate / GROUP BY shape: partition select lists carry the group
  // keys followed by decomposed partials of every unique aggregate node
  // (AVG → SUM + COUNT); HAVING is stripped — the oracle re-applies it on
  // the recombined aggregates.
  plan->shape =
      query.group_by.empty() ? TlpShape::kAggregate : TlpShape::kGroupBy;
  plan->group_cols = static_cast<int>(query.group_by.size());
  for (const ExprPtr& g : query.group_by) {
    if (g == nullptr || g->kind != ExprKind::kColumnRef) {
      return fail("TLP GROUP BY keys must be column references");
    }
  }
  std::vector<const Expr*> agg_nodes;
  for (const ExprPtr& item : query.select_list) {
    if (item == nullptr) return fail("null select item");
    CollectAggregates(*item, &agg_nodes);
    // Non-aggregate select items must be group-key references so the
    // recombined output row can be reconstructed from the group key.
    if (item->kind != ExprKind::kAggregate &&
        item->ContainsKind(ExprKind::kAggregate) == false &&
        item->kind != ExprKind::kColumnRef) {
      return fail("TLP select items must be aggregates or group keys");
    }
  }
  if (query.having != nullptr) CollectAggregates(*query.having, &agg_nodes);
  if (agg_nodes.empty()) return fail("aggregate shape without aggregates");

  int next_col = plan->group_cols;
  for (const Expr* node : agg_nodes) {
    if (node->agg_distinct) {
      // DISTINCT partials do not recombine soundly across partitions.
      return fail("TLP cannot decompose DISTINCT aggregates in this shape");
    }
    TlpAggTerm term;
    term.original = node;
    term.value_index = next_col++;
    if (node->agg == AggFunc::kAvg) term.count_index = next_col++;
    plan->aggs.push_back(term);
  }

  for (ExprPtr& p : preds) {
    auto part = std::make_unique<SelectStmt>();
    part->from_tables = query.from_tables;
    for (const ExprPtr& g : query.group_by) {
      part->select_list.push_back(g->Clone());
      part->group_by.push_back(g->Clone());
    }
    for (const TlpAggTerm& term : plan->aggs) {
      const Expr& node = *term.original;
      if (node.agg == AggFunc::kAvg) {
        part->select_list.push_back(
            MakeAggregate(AggFunc::kSum, node.args[0]->Clone(), false));
        part->select_list.push_back(
            MakeAggregate(AggFunc::kCount, node.args[0]->Clone(), false));
      } else if (node.agg_star) {
        part->select_list.push_back(MakeCountStar());
      } else {
        part->select_list.push_back(
            MakeAggregate(node.agg, node.args[0]->Clone(), false));
      }
    }
    part->where = AndWhere(query.where, std::move(p));
    part->meta_rewrite = true;
    plan->partitions.push_back(std::move(part));
  }
  return true;
}

}  // namespace sqlmeta
}  // namespace pqs
