// Metamorphic query transformations: NoREC and TLP rewrites.
//
// These are pure AST→AST functions; executing the rewritten queries and
// comparing their results is the oracle's job (src/sqlmeta/oracle.h). The
// split keeps the transformations unit-testable per dialect through the
// renderer without touching an engine, and keeps the oracle code free of
// query-construction details.
//
// NoREC (Rigger & Su, ESEC/FSE '20): a WHERE predicate drives two queries
// that a correct engine must answer identically in cardinality — the
// *optimized* `SELECT COUNT(*) FROM t WHERE p` (planner engaged: index
// scans, pushdowns) and the *unoptimized* `SELECT p FROM t` (the predicate
// demoted to a projected value, where no WHERE optimization can touch it).
//
// TLP (Rigger & Su, OOPSLA '20): any predicate p ternary-partitions a
// table's rows into p / NOT p / p IS NULL. A query over the whole table
// must equal the recombination of the same query over the three partitions.
// For plain row sets the recombination is multiset union (UNION ALL); for
// aggregates it is per-function arithmetic over decomposed partials (SUM of
// SUMs, SUM of COUNTs, AVG from SUM+COUNT, MIN of MINs, MAX of MAXes), and
// COUNT(DISTINCT) — where summing per-partition counts would be unsound,
// a value can appear in several partitions — recombines by deduplicating
// the union of per-partition DISTINCT value sets.
#ifndef PQS_SRC_SQLMETA_TRANSFORM_H_
#define PQS_SRC_SQLMETA_TRANSFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sqlast/ast.h"

namespace pqs {
namespace sqlmeta {

// `SELECT COUNT(*) FROM table WHERE p` — the planner-visible side.
std::unique_ptr<SelectStmt> NorecOptimized(const std::string& table,
                                           const Expr& predicate);

// `SELECT p FROM table` — the predicate as a projected boolean; the oracle
// counts rows whose projected value is truthy.
std::unique_ptr<SelectStmt> NorecUnoptimized(const std::string& table,
                                             const Expr& predicate);

// The three TLP partition predicates: p, NOT p, (p) IS NULL.
std::vector<ExprPtr> TlpPartitionPredicates(const Expr& predicate);

// The recombination strategy a TLP-checkable query calls for, inferred
// from its shape by BuildTlpPlan.
enum class TlpShape {
  kRows,           // plain SELECT *: multiset union of partitions
  kAggregate,      // global aggregates: arithmetic over partials
  kCountDistinct,  // single COUNT(DISTINCT c): dedup partition value sets
  kGroupBy,        // GROUP BY [HAVING]: merge groups, recombine per group
};

const char* TlpShapeName(TlpShape shape);

// One aggregate term of an aggregate/GROUP BY plan: where its decomposed
// partials land in the partition queries' select lists. AVG(e) decomposes
// into SUM(e) + COUNT(e) (both indexes set); every other function is its
// own partial (only value_index set).
struct TlpAggTerm {
  const Expr* original = nullptr;  // kAggregate node in the full query
  int value_index = -1;            // partial column in partition results
  int count_index = -1;            // AVG only: the COUNT(e) partial
};

struct TlpPlan {
  TlpShape shape = TlpShape::kRows;
  // kGroupBy: number of leading group-key columns in each partition's
  // select list (clones of the full query's GROUP BY column refs).
  int group_cols = 0;
  // kAggregate/kGroupBy: the unique aggregate nodes of the full query's
  // select list and HAVING, in discovery order.
  std::vector<TlpAggTerm> aggs;
  // The three partition queries, in p / NOT p / IS NULL order. Partition
  // queries never carry the full query's HAVING — the oracle re-applies it
  // on recombined aggregates, which is what makes HAVING-stage bugs
  // visible.
  std::vector<std::unique_ptr<SelectStmt>> partitions;
};

// Classifies `query` and builds its three partition queries. Returns false
// and fills *error for shapes outside the TLP-checkable space (joins,
// DISTINCT, ORDER BY, LIMIT, non-column GROUP BY keys, aggregate-free
// explicit select lists).
bool BuildTlpPlan(const SelectStmt& query, const Expr& predicate,
                  TlpPlan* plan, std::string* error);

}  // namespace sqlmeta
}  // namespace pqs

#endif  // PQS_SRC_SQLMETA_TRANSFORM_H_
