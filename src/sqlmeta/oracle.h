// Metamorphic oracle execution: run a NoREC or TLP check against a live
// connection and classify the outcome.
//
// A check executes the transformed queries (src/sqlmeta/transform.h) and
// compares results. The recombination arithmetic reuses the shared
// aggregation core (src/interp) with a *clean* EvalContext, so a mismatch
// is evidence of an engine bug, never of oracle-side drift — the same
// soundness argument the containment oracle makes by sharing the
// expression interpreter.
#ifndef PQS_SRC_SQLMETA_ORACLE_H_
#define PQS_SRC_SQLMETA_ORACLE_H_

#include <string>
#include <vector>

#include "src/engine/connection.h"
#include "src/sqlast/ast.h"
#include "src/sqlmeta/transform.h"

namespace pqs {
namespace sqlmeta {

enum class MetaVerdict {
  kOk,           // both sides agree
  kMismatch,     // metamorphic relation violated — the oracle's finding
  kEngineError,  // a transformed query failed (error-oracle territory)
  kEngineCrash,  // the engine died executing a transformed query
  kUnsupported,  // the engine cannot run these statements at all
  kSkipped,      // query shape outside the transform's space (not a check)
};

struct MetaOutcome {
  MetaVerdict verdict = MetaVerdict::kOk;
  std::string message;
  // Every query the check executed, in execution order; the query that
  // decided the verdict is last. Callers splice these onto the session log
  // to build a replayable Finding.
  std::vector<StmtPtr> executed;
};

// NoREC: optimized `SELECT COUNT(*) FROM table WHERE p` must equal the
// number of truthy rows of unoptimized `SELECT p FROM table`.
MetaOutcome RunNorecCheck(Connection& conn, const std::string& table,
                          const Expr& predicate);

// TLP: `query` over the whole table must equal the recombination of the
// three partition queries under `predicate` (shape-dependent; see
// TlpShape). `query` itself is executed as the final statement.
MetaOutcome RunTlpCheck(Connection& conn, const SelectStmt& query,
                        const Expr& predicate);

}  // namespace sqlmeta
}  // namespace pqs

#endif  // PQS_SRC_SQLMETA_ORACLE_H_
