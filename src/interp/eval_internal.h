// Shared internals of the expression evaluator.
//
// These are the semantic kernels of src/interp/eval.cc — comparison with
// dialect coercion and collation determination, arithmetic, the registry
// function evaluator, CAST — factored out of the tree walker so the
// bytecode evaluator (src/interp/bytecode.cc) executes the *same* code for
// every leaf semantic, bug hook included. That sharing is the core of the
// bytecode differential safety argument (DESIGN §11): the two evaluators
// can only diverge in dispatch order, never in per-operator semantics.
//
// Not a public API: only eval.cc and bytecode.cc may include this.
#ifndef PQS_SRC_INTERP_EVAL_INTERNAL_H_
#define PQS_SRC_INTERP_EVAL_INTERNAL_H_

#include <string>

#include "src/interp/eval.h"

namespace pqs {
namespace evalin {

// Numeric coercion in arithmetic position ('12ab' → 12, 'x' → 0; an
// integer-looking prefix stays INTEGER so '12'/5 keeps integer division).
SqlValue ArithValue(const SqlValue& v);

// Text rendering of a value in || position.
std::string ConcatOperand(const SqlValue& v);

// Three-valued comparison honoring dialect coercion rules. The raw Expr
// operands (nullable for synthetic comparisons inside IN/BETWEEN) ride
// along because several injected bug classes and the COLLATE determination
// trigger on the *shape* of the comparison, not just the values.
EvalResult Compare(BinaryOp op, const Expr* lhs, const Expr* rhs,
                   const SqlValue& a, const SqlValue& b,
                   const EvalContext& ctx);

// +, -, *, / with dialect coercion, wrap-safe integer math, and the
// arithmetic bug hooks.
EvalResult Arithmetic(const Expr& node, const SqlValue& a, const SqlValue& b,
                      const EvalContext& ctx);

// Registry-driven scalar function call (expr.kind == kFunctionCall).
EvalResult EvaluateFunction(const Expr& expr, const RowView& row,
                            const EvalContext& ctx);

// Function body over already-evaluated arguments. Preconditions the caller
// must have checked (the tree evaluator checks them before evaluating any
// argument; the bytecode compiler checks them at compile time and falls
// back to the tree on failure): the function is available in ctx.dialect,
// the arg count is in range, and the function is not COALESCE (lazy).
EvalResult ApplyFunction(const Expr& expr, std::vector<SqlValue> args,
                         const EvalContext& ctx);

// CAST of an already-evaluated operand (expr.kind == kCast).
EvalResult EvaluateCast(const Expr& expr, const SqlValue& v,
                        const EvalContext& ctx);

}  // namespace evalin
}  // namespace pqs

#endif  // PQS_SRC_INTERP_EVAL_INTERNAL_H_
