// Dialect-aware three-valued expression interpreter.
//
// This is the single implementation of expression semantics in the
// repository: MiniDB filters rows with it, and the PQS runner uses it (with
// a clean configuration) to evaluate and rectify predicates on the pivot
// row. Sharing the code is what makes the containment oracle sound on a
// clean engine — any divergence an oracle observes is, by construction, an
// injected bug or a real-engine discrepancy, never interpreter drift.
//
// Injected bug classes that corrupt *expression evaluation* hook in here,
// gated on EvalContext::bugs; scan-level and statement-level bugs live in
// the MiniDB engine itself.
#ifndef PQS_SRC_INTERP_EVAL_H_
#define PQS_SRC_INTERP_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/bugs.h"
#include "src/engine/connection.h"
#include "src/sqlast/ast.h"
#include "src/sqlvalue/value.h"

namespace pqs {

// Flattened schema of a (possibly joined) row: qualified column names in
// projection order.
struct RowSchema {
  std::vector<std::pair<std::string, std::string>> cols;  // (table, column)
  // Interned (table, column) symbols parallel to `cols`, populated by Add().
  // Schemas assembled by hand (pushing into `cols` directly) leave this
  // empty and fall back to string resolution. Symbol ids are equality-only
  // (src/common/interner.h) — never ordered or printed.
  std::vector<std::pair<int32_t, int32_t>> ids;

  // Appends one column and its interned symbols.
  void Add(const std::string& table, const std::string& column);

  bool has_ids() const { return !cols.empty() && ids.size() == cols.size(); }

  int IndexOf(const std::string& table, const std::string& column) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].second != column) continue;
      if (table.empty() || cols[i].first == table) return static_cast<int>(i);
    }
    return -1;
  }

  // Id-based resolution; `table_sym < 0` means unqualified (any table).
  // Only meaningful when has_ids().
  int IndexOfSyms(int32_t table_sym, int32_t column_sym) const {
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i].second != column_sym) continue;
      if (table_sym < 0 || ids[i].first == table_sym) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // Resolution for a kColumnRef node: interns the node's names once
  // (cached on the node) and matches by id when this schema carries ids.
  int Resolve(const Expr& column_ref) const;
};

struct RowView {
  const RowSchema* schema = nullptr;
  const std::vector<SqlValue>* values = nullptr;
};

struct EvalContext {
  Dialect dialect = Dialect::kSqliteFlex;
  // Null or empty ⇒ reference semantics (the ground truth the runner uses).
  const BugConfig* bugs = nullptr;

  bool BugEnabled(BugId id) const { return bugs != nullptr && bugs->enabled(id); }
};

struct EvalResult {
  SqlValue value;
  bool error = false;
  std::string message;

  static EvalResult Of(SqlValue v) {
    EvalResult out;
    out.value = std::move(v);
    return out;
  }
  static EvalResult Error(std::string msg) {
    EvalResult out;
    out.error = true;
    out.message = std::move(msg);
    return out;
  }
};

EvalResult Evaluate(const Expr& expr, const RowView& row,
                    const EvalContext& ctx);

// Truthiness of a value in WHERE position for the given dialect.
Bool3 Truthiness(const SqlValue& v, Dialect dialect);

// Convenience: evaluate an expression as a predicate. Sets *error on
// evaluation failure (in which case the Bool3 is kNull).
Bool3 EvaluatePredicate(const Expr& expr, const RowView& row,
                        const EvalContext& ctx, bool* error);

// SQL LIKE with % and _ wildcards and an optional ESCAPE character
// (escape < 0 means no ESCAPE clause; an escaped wildcard matches itself
// literally, and a pattern ending in a bare escape character matches
// nothing, as in real SQLite). Exposed for tests.
bool LikeMatch(const std::string& text, const std::string& pattern,
               bool case_insensitive, int escape = -1);

// ---------------------------------------------------------------------------
// Relational helpers (joins, DISTINCT, ORDER BY, LIMIT)
// ---------------------------------------------------------------------------
// Like the expression evaluator above, these are shared between MiniDB's
// scan (with its BugConfig in the EvalContext) and the runner's ground-truth
// computation for join-aware pivot containment and LIMIT rank bounds (with a
// clean context). Sharing the code is what keeps the widened query space
// free of oracle false positives: injected join/DISTINCT/LIMIT bugs hook in
// here gated on ctx.bugs, and a null BugConfig is reference semantics.

// One FROM entry of a relational evaluation: the table's column schema plus
// its materialized rows.
struct JoinInput {
  RowSchema schema;
  const std::vector<std::vector<SqlValue>>* rows = nullptr;
};

// Nested-loop join of inputs[0] with inputs[1..]. With `joins` empty this is
// the comma-list FROM (cross product of every input); otherwise
// joins.size() must equal inputs.size() - 1 and each clause combines the
// rows accumulated so far with the next input (INNER/CROSS keep matching
// combinations, LEFT additionally null-pads left rows without a match).
// ON conditions may reference any column joined so far. Returns false and
// fills *error on an evaluation error; *null_padded_rows (optional) counts
// LEFT-join padding rows produced.
bool JoinRows(const std::vector<JoinInput>& inputs,
              const std::vector<JoinClause>& joins, const EvalContext& ctx,
              std::vector<std::vector<SqlValue>>* out, std::string* error,
              size_t* null_padded_rows);

// SQL DISTINCT over materialized rows: returns the indexes of the rows kept
// (the first occurrence of each duplicate group), in ascending order. NULL
// cells compare equal to each other and INTEGER/REAL cells compare
// numerically, matching real engines' DISTINCT semantics.
std::vector<size_t> DistinctKeepIndexes(
    const std::vector<std::vector<SqlValue>>& rows, const EvalContext& ctx);

// Evaluates the ORDER BY key expressions on one row.
bool EvalOrderKeys(const std::vector<OrderByItem>& order, const RowView& row,
                   const EvalContext& ctx, std::vector<SqlValue>* keys,
                   std::string* error);

// Lexicographic three-way comparison of two key vectors under the order
// spec: ValueCompare per key (NULL < numeric < TEXT, the SQLite/MySQL
// default NULL position), inverted for descending keys.
int CompareOrderKeys(const std::vector<SqlValue>& a,
                     const std::vector<SqlValue>& b,
                     const std::vector<OrderByItem>& order);

// Stable sorted permutation of [0, rows.size()) under the order spec, with
// keys evaluated against `schema`. Returns false on an evaluation error.
bool SortIndexesByOrder(const RowSchema& schema,
                        const std::vector<std::vector<SqlValue>>& rows,
                        const std::vector<OrderByItem>& order,
                        const EvalContext& ctx, std::vector<size_t>* perm,
                        std::string* error);

// Truncates `rows` to `limit` (< 0 means no LIMIT). `ordered` reports
// whether the statement carried an ORDER BY (the kOrderLimitOffByOne bug
// triggers only on ordered, binding limits).
void ApplyLimit(int64_t limit, bool ordered, const EvalContext& ctx,
                std::vector<std::vector<SqlValue>>* rows);

// ---------------------------------------------------------------------------
// Grouping / aggregation core (GROUP BY, HAVING, COUNT/SUM/AVG/MIN/MAX)
// ---------------------------------------------------------------------------
// One shared implementation of aggregate semantics, mirroring real SQLite:
// SUM skips NULLs, stays INTEGER over all-integer input and switches to REAL
// once any REAL (or, in the flexible dialects, TEXT coerced by numeric
// prefix) operand appears; SUM over no non-NULL input is NULL; AVG is always
// REAL; MIN/MAX use the NULL < numeric < TEXT ValueCompare order and skip
// NULLs; COUNT(DISTINCT e) dedups with ValueEquals (1 and 1.0 collide).
// MiniDB's executor runs it with its BugConfig; the runner's ground truth
// and the TLP oracle's partition recombination run it with a clean context,
// which is what makes a recombination mismatch evidence of an engine bug
// rather than of oracle-side arithmetic drift.

class AggAccumulator {
 public:
  AggAccumulator(AggFunc func, bool distinct, const EvalContext& ctx)
      : func_(func), distinct_(distinct), ctx_(ctx) {}

  // Feed one operand value (or one row, for COUNT(*), via AddRow). Returns
  // false and fills *error when the dialect rejects the operand (strict
  // dialect: SUM/AVG over TEXT).
  bool Add(const SqlValue& v, std::string* error);
  void AddRow() {
    ++rows_seen_;
    ++star_rows_;
  }

  // Final aggregate value; applies the aggregate bug hooks gated on the
  // context's BugConfig.
  SqlValue Final() const;

 private:
  AggFunc func_;
  bool distinct_;
  const EvalContext& ctx_;
  uint64_t rows_seen_ = 0;     // inputs fed (Add or AddRow)
  uint64_t star_rows_ = 0;     // AddRow calls (COUNT(*))
  uint64_t non_null_ = 0;      // non-NULL operands fed (pre-DISTINCT)
  uint64_t distinct_seen_ = 0; // distinct non-NULL operands accumulated
  bool approx_ = false;        // some operand forced REAL accumulation
  int64_t int_sum_ = 0;
  double real_sum_ = 0.0;
  SqlValue extreme_;           // running MIN/MAX (NULL = none yet)
  std::vector<SqlValue> seen_; // DISTINCT dedup set
};

// Full grouping pipeline over the post-WHERE input rows of a SELECT with
// aggregates: groups by stmt.group_by (no GROUP BY ⇒ one global group, which
// exists even over empty input), computes every aggregate node of the select
// list and HAVING per group via AggAccumulator, applies HAVING, and emits
// one output row per surviving group in first-seen group order. Returns
// false and fills *error on an evaluation error or unsupported shape.
bool AggregateSelect(const SelectStmt& stmt, const RowSchema& schema,
                     const std::vector<std::vector<SqlValue>>& input_rows,
                     const EvalContext& ctx,
                     std::vector<std::vector<SqlValue>>* out_rows,
                     std::string* error);

// Clone of `e` with every kAggregate subtree replaced by a literal: node
// `nodes[i]` (matched by StructurallyEquals) becomes `values[i]`. Shared by
// AggregateSelect and the TLP oracle's recombined-HAVING evaluation.
ExprPtr SubstituteAggregates(const Expr& e,
                             const std::vector<const Expr*>& nodes,
                             const std::vector<SqlValue>& values);

// Appends every distinct (by StructurallyEquals) kAggregate subtree of `e`
// to *nodes, in discovery order.
void CollectAggregates(const Expr& e, std::vector<const Expr*>* nodes);

// Multiset equality of two materialized rowsets (row order is
// engine-defined and may legitimately differ): same row count and a
// ValueEquals-identical pairing. Used by the runner's ground-truth state
// comparison after mutations (DESIGN §9) and by the reducer's containment
// differential.
bool SameRowMultiset(const std::vector<std::vector<SqlValue>>& a,
                     const std::vector<std::vector<SqlValue>>& b);

}  // namespace pqs

#endif  // PQS_SRC_INTERP_EVAL_H_
