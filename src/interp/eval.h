// Dialect-aware three-valued expression interpreter.
//
// This is the single implementation of expression semantics in the
// repository: MiniDB filters rows with it, and the PQS runner uses it (with
// a clean configuration) to evaluate and rectify predicates on the pivot
// row. Sharing the code is what makes the containment oracle sound on a
// clean engine — any divergence an oracle observes is, by construction, an
// injected bug or a real-engine discrepancy, never interpreter drift.
//
// Injected bug classes that corrupt *expression evaluation* hook in here,
// gated on EvalContext::bugs; scan-level and statement-level bugs live in
// the MiniDB engine itself.
#ifndef PQS_SRC_INTERP_EVAL_H_
#define PQS_SRC_INTERP_EVAL_H_

#include <string>
#include <vector>

#include "src/engine/bugs.h"
#include "src/engine/connection.h"
#include "src/sqlast/ast.h"
#include "src/sqlvalue/value.h"

namespace pqs {

// Flattened schema of a (possibly joined) row: qualified column names in
// projection order.
struct RowSchema {
  std::vector<std::pair<std::string, std::string>> cols;  // (table, column)

  int IndexOf(const std::string& table, const std::string& column) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].second != column) continue;
      if (table.empty() || cols[i].first == table) return static_cast<int>(i);
    }
    return -1;
  }
};

struct RowView {
  const RowSchema* schema = nullptr;
  const std::vector<SqlValue>* values = nullptr;
};

struct EvalContext {
  Dialect dialect = Dialect::kSqliteFlex;
  // Null or empty ⇒ reference semantics (the ground truth the runner uses).
  const BugConfig* bugs = nullptr;

  bool BugEnabled(BugId id) const { return bugs != nullptr && bugs->enabled(id); }
};

struct EvalResult {
  SqlValue value;
  bool error = false;
  std::string message;

  static EvalResult Of(SqlValue v) {
    EvalResult out;
    out.value = std::move(v);
    return out;
  }
  static EvalResult Error(std::string msg) {
    EvalResult out;
    out.error = true;
    out.message = std::move(msg);
    return out;
  }
};

EvalResult Evaluate(const Expr& expr, const RowView& row,
                    const EvalContext& ctx);

// Truthiness of a value in WHERE position for the given dialect.
Bool3 Truthiness(const SqlValue& v, Dialect dialect);

// Convenience: evaluate an expression as a predicate. Sets *error on
// evaluation failure (in which case the Bool3 is kNull).
Bool3 EvaluatePredicate(const Expr& expr, const RowView& row,
                        const EvalContext& ctx, bool* error);

// SQL LIKE with % and _ wildcards. Exposed for tests.
bool LikeMatch(const std::string& text, const std::string& pattern,
               bool case_insensitive);

}  // namespace pqs

#endif  // PQS_SRC_INTERP_EVAL_H_
