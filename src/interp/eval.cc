#include "src/interp/eval.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <utility>

#include "src/common/interner.h"
#include "src/interp/bytecode.h"
#include "src/interp/eval_internal.h"
#include "src/sqlexpr/registry.h"

namespace pqs {

void RowSchema::Add(const std::string& table, const std::string& column) {
  cols.emplace_back(table, column);
  ids.emplace_back(table.empty() ? Interner::kInvalidSymbol
                                 : Interner::Intern(table),
                   Interner::Intern(column));
}

int RowSchema::Resolve(const Expr& column_ref) const {
  if (!has_ids()) return IndexOf(column_ref.table, column_ref.column);
  if (column_ref.column_sym == Expr::kSymUnresolved) {
    column_ref.table_sym = column_ref.table.empty()
                               ? Interner::kInvalidSymbol
                               : Interner::Intern(column_ref.table);
    column_ref.column_sym = Interner::Intern(column_ref.column);
  }
  return IndexOfSyms(column_ref.table_sym, column_ref.column_sym);
}

namespace {

bool TextEqualsFold(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int TextCompareFold(const std::string& a, const std::string& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int ca = std::tolower(static_cast<unsigned char>(a[i]));
    int cb = std::tolower(static_cast<unsigned char>(b[i]));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

}  // namespace

// The semantic kernels below live in evalin (declared in eval_internal.h)
// so the bytecode evaluator shares them verbatim; see that header.
namespace evalin {

// Numeric coercion in arithmetic position: SQLite and MySQL both take the
// numeric prefix of text ('12ab' → 12, 'x' → 0). An integer-looking prefix
// yields an INTEGER — that keeps '12'/5 doing integer division exactly
// like real SQLite.
SqlValue ArithValue(const SqlValue& v) {
  if (v.is_numeric()) return v;
  const char* begin = v.t.c_str();
  char* int_end = nullptr;
  long long as_int = strtoll(begin, &int_end, 10);
  char* real_end = nullptr;
  double as_real = strtod(begin, &real_end);
  if (real_end == begin) return SqlValue::Int(0);
  if (int_end == real_end) return SqlValue::Int(as_int);
  return SqlValue::Real(as_real);
}

std::string ConcatOperand(const SqlValue& v) { return v.ToDisplay(); }

}  // namespace evalin

namespace {

bool IsNegativeIntLiteral(const Expr& e) {
  return e.kind == ExprKind::kLiteral &&
         e.literal.cls == StorageClass::kInteger && e.literal.i < 0;
}

// Explicit collation of a comparison, SQLite's determination rule reduced
// to this grammar: the leftmost operand carrying a COLLATE operator wins;
// without one the dialect default applies (kMysqlLike folds case, the
// others compare bytes). Columns have no declared collations here, so only
// the explicit operator can override the default.
bool ExplicitCollation(const Expr* lhs, const Expr* rhs, Collation* out) {
  if (lhs != nullptr && lhs->kind == ExprKind::kCollate) {
    *out = lhs->collation;
    return true;
  }
  if (rhs != nullptr && rhs->kind == ExprKind::kCollate) {
    *out = rhs->collation;
    return true;
  }
  return false;
}

}  // namespace

namespace evalin {

// Three-valued comparison honoring dialect coercion rules. The raw Expr
// operands (nullable for synthetic comparisons inside IN/BETWEEN) are
// passed alongside the values because several injected bug classes trigger
// on the *shape* of the comparison, not just the values.
EvalResult Compare(BinaryOp op, const Expr* lhs, const Expr* rhs,
                   const SqlValue& a, const SqlValue& b,
                   const EvalContext& ctx) {
  if (ctx.BugEnabled(BugId::kNegIntCompare) &&
      ((lhs != nullptr && IsNegativeIntLiteral(*lhs)) ||
       (rhs != nullptr && IsNegativeIntLiteral(*rhs)))) {
    return EvalResult::Of(SqlValue::Bool(false));
  }
  if (ctx.BugEnabled(BugId::kCollationMismatchError) && lhs != nullptr &&
      rhs != nullptr && lhs->kind == ExprKind::kColumnRef &&
      rhs->kind == ExprKind::kColumnRef &&
      a.cls == StorageClass::kText && b.cls == StorageClass::kText) {
    return EvalResult::Error("could not determine collation for comparison");
  }
  if (a.is_null() || b.is_null()) return EvalResult::Of(SqlValue::Null());

  int cmp = 0;
  if (a.is_numeric() && b.is_numeric()) {
    double da = a.AsReal();
    double db = b.AsReal();
    if (ctx.BugEnabled(BugId::kRealTruncCompare) &&
        (a.cls == StorageClass::kReal) != (b.cls == StorageClass::kReal)) {
      da = std::trunc(da);
      db = std::trunc(db);
    }
    cmp = da < db ? -1 : (da > db ? 1 : 0);
  } else if (a.cls == StorageClass::kText && b.cls == StorageClass::kText) {
    Collation explicit_coll = Collation::kBinary;
    bool has_explicit = ExplicitCollation(lhs, rhs, &explicit_coll);
    bool fold = has_explicit ? explicit_coll == Collation::kNocase
                             : ctx.dialect == Dialect::kMysqlLike;
    // Injected: the NOCASE collation is applied by the equality paths but
    // the range-scan comparator falls back to binary ordering.
    if (has_explicit && explicit_coll == Collation::kNocase &&
        op != BinaryOp::kEq && op != BinaryOp::kNe &&
        ctx.BugEnabled(BugId::kCollateNocaseRange)) {
      fold = false;
    }
    if (fold) {
      // Case-insensitive: MySQL's default collation, or an explicit
      // COLLATE NOCASE in any dialect.
      cmp = TextCompareFold(a.t, b.t);
    } else {
      cmp = a.t.compare(b.t);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    if (op == BinaryOp::kEq && cmp == 0 && a.t.size() > 1 &&
        ctx.BugEnabled(BugId::kTextEqInterning)) {
      return EvalResult::Of(SqlValue::Bool(false));
    }
  } else {
    // Mixed numeric/text.
    switch (ctx.dialect) {
      case Dialect::kSqliteFlex:
        // Storage-class ordering: numerics sort before text.
        cmp = ValueCompare(a, b);
        break;
      case Dialect::kMysqlLike: {
        double da;
        double db;
        if (a.is_numeric()) {
          da = a.AsReal();
          db = ctx.BugEnabled(BugId::kStrNumCoercionPrefix)
                   ? 0.0
                   : ParseNumericPrefix(b.t);
        } else {
          da = ctx.BugEnabled(BugId::kStrNumCoercionPrefix)
                   ? 0.0
                   : ParseNumericPrefix(a.t);
          db = b.AsReal();
        }
        cmp = da < db ? -1 : (da > db ? 1 : 0);
        break;
      }
      case Dialect::kPostgresStrict:
        return EvalResult::Error("operator does not exist: mixed-type "
                                 "comparison");
    }
  }

  bool truth = false;
  switch (op) {
    case BinaryOp::kEq:
      truth = cmp == 0;
      break;
    case BinaryOp::kNe:
      truth = cmp != 0;
      break;
    case BinaryOp::kLt:
      truth = cmp < 0;
      break;
    case BinaryOp::kLe:
      truth = cmp <= 0;
      break;
    case BinaryOp::kGt:
      truth = cmp > 0;
      break;
    case BinaryOp::kGe:
      truth = cmp >= 0;
      break;
    default:
      return EvalResult::Error("not a comparison");
  }
  return EvalResult::Of(SqlValue::Bool(truth));
}

EvalResult Arithmetic(const Expr& node, const SqlValue& a, const SqlValue& b,
                      const EvalContext& ctx) {
  if (ctx.dialect == Dialect::kPostgresStrict &&
      (a.cls == StorageClass::kText || b.cls == StorageClass::kText)) {
    return EvalResult::Error("operator does not exist: arithmetic on text");
  }
  if (a.is_null() || b.is_null()) return EvalResult::Of(SqlValue::Null());

  BinaryOp op = node.bop;
  SqlValue ca = ArithValue(a);
  SqlValue cb = ArithValue(b);
  bool int_math = ca.cls == StorageClass::kInteger &&
                  cb.cls == StorageClass::kInteger;
  if (op == BinaryOp::kDiv) {
    double divisor = cb.AsReal();
    if (divisor == 0.0) {
      if (ctx.BugEnabled(BugId::kDivZeroError)) {
        return EvalResult::Error("division by zero (spurious)");
      }
      if (ctx.dialect == Dialect::kPostgresStrict) {
        return EvalResult::Error("division by zero");
      }
      return EvalResult::Of(SqlValue::Null());
    }
    if (int_math) {
      // Integer division truncates toward zero in all three dialects.
      return EvalResult::Of(SqlValue::Int(ca.i / cb.i));
    }
    return EvalResult::Of(SqlValue::Real(ca.AsReal() / divisor));
  }

  SqlValue result;
  if (int_math) {
    uint64_t ua = static_cast<uint64_t>(ca.i);
    uint64_t ub = static_cast<uint64_t>(cb.i);
    uint64_t ur = 0;
    switch (op) {
      case BinaryOp::kAdd:
        ur = ua + ub;
        break;
      case BinaryOp::kSub:
        ur = ua - ub;
        break;
      case BinaryOp::kMul:
        ur = ua * ub;
        break;
      default:
        return EvalResult::Error("not arithmetic");
    }
    int64_t sr = static_cast<int64_t>(ur);
    if (op == BinaryOp::kSub && sr < 0 &&
        ctx.BugEnabled(BugId::kUnsignedSubWrap)) {
      // Models an unsigned-subtraction wraparound: the negative result comes
      // back as a huge positive value.
      result = SqlValue::Real(18446744073709551616.0 +
                              static_cast<double>(sr));
    } else {
      result = SqlValue::Int(sr);
    }
  } else {
    double da = ca.AsReal();
    double db = cb.AsReal();
    double dr = 0;
    switch (op) {
      case BinaryOp::kAdd:
        dr = da + db;
        break;
      case BinaryOp::kSub:
        dr = da - db;
        break;
      case BinaryOp::kMul:
        dr = da * db;
        break;
      default:
        return EvalResult::Error("not arithmetic");
    }
    result = SqlValue::Real(dr);
  }

  if (ctx.BugEnabled(BugId::kNumericOverflowError) &&
      std::fabs(result.AsReal()) > 50.0) {
    return EvalResult::Error("numeric value out of range (spurious)");
  }
  return EvalResult::Of(std::move(result));
}

std::string AsciiFold(const std::string& s, bool to_upper) {
  std::string out = s;
  for (char& c : out) {
    c = to_upper
            ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
            : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Scalar comparator for LEAST/GREATEST: explicit NOCASE-style folding only
// under the MySQL dialect's default collation, byte-wise elsewhere, with
// the cross-storage-class ordering of ValueCompare.
int ScalarMinMaxCompare(const SqlValue& a, const SqlValue& b,
                        const EvalContext& ctx) {
  if (ctx.dialect == Dialect::kMysqlLike &&
      a.cls == StorageClass::kText && b.cls == StorageClass::kText) {
    return TextCompareFold(a.t, b.t);
  }
  return ValueCompare(a, b);
}

// Registry-driven function evaluation: arity and the NULL-propagation rule
// come from the FunctionSig, so the evaluator cannot drift from what the
// generator was promised when it consulted the same registry.
EvalResult EvaluateFunction(const Expr& expr, const RowView& row,
                            const EvalContext& ctx) {
  const FunctionSig& sig = LookupFunction(expr.func);
  if (!sig.available(ctx.dialect)) {
    return EvalResult::Error(std::string("no such function: ") +
                             sig.names[0]);
  }
  int argc = static_cast<int>(expr.args.size());
  if (argc < sig.min_args || argc > sig.max_args) {
    return EvalResult::Error(std::string("wrong number of arguments to ") +
                             sig.NameFor(ctx.dialect));
  }

  // COALESCE evaluates lazily (a later argument must not be able to fail
  // the call once an earlier one is non-NULL); everything else evaluates
  // all arguments up front and applies the registry's NULL rule.
  if (expr.func == FuncId::kCoalesce) {
    bool first = true;
    for (const ExprPtr& arg : expr.args) {
      EvalResult v = Evaluate(*arg, row, ctx);
      if (v.error) return v;
      // Injected: the first-argument NULL check short-circuits the whole
      // call to NULL instead of falling through to the next argument.
      if (first && v.value.is_null() &&
          ctx.BugEnabled(BugId::kCoalesceFirstNull)) {
        return EvalResult::Of(SqlValue::Null());
      }
      first = false;
      if (!v.value.is_null()) return v;
    }
    return EvalResult::Of(SqlValue::Null());
  }

  std::vector<SqlValue> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& arg : expr.args) {
    EvalResult v = Evaluate(*arg, row, ctx);
    if (v.error) return v;
    args.push_back(std::move(v.value));
  }
  return ApplyFunction(expr, std::move(args), ctx);
}

EvalResult ApplyFunction(const Expr& expr, std::vector<SqlValue> args,
                         const EvalContext& ctx) {
  const FunctionSig& sig = LookupFunction(expr.func);
  bool strict = ctx.dialect == Dialect::kPostgresStrict;
  if (sig.null_rule == NullRule::kPropagate) {
    for (const SqlValue& v : args) {
      if (v.is_null()) return EvalResult::Of(SqlValue::Null());
    }
  }

  switch (expr.func) {
    case FuncId::kAbs: {
      const SqlValue& v = args[0];
      if (v.cls == StorageClass::kText) {
        if (strict) {
          return EvalResult::Error("function abs(text) does not exist");
        }
        SqlValue n = ArithValue(v);
        return EvalResult::Of(n.cls == StorageClass::kInteger
                                  ? SqlValue::Int(n.i < 0 ? -n.i : n.i)
                                  : SqlValue::Real(std::fabs(n.r)));
      }
      if (v.cls == StorageClass::kInteger) {
        return EvalResult::Of(SqlValue::Int(v.i < 0 ? -v.i : v.i));
      }
      return EvalResult::Of(SqlValue::Real(std::fabs(v.r)));
    }

    case FuncId::kLength: {
      const SqlValue& v = args[0];
      if (v.cls != StorageClass::kText && strict) {
        return EvalResult::Error("function length(non-text) does not exist");
      }
      std::string s = v.cls == StorageClass::kText ? v.t : v.ToDisplay();
      return EvalResult::Of(SqlValue::Int(static_cast<int64_t>(s.size())));
    }

    case FuncId::kUpper:
    case FuncId::kLower: {
      const SqlValue& v = args[0];
      if (v.cls != StorageClass::kText && strict) {
        return EvalResult::Error("function upper/lower(non-text) does not "
                                 "exist");
      }
      std::string s = v.cls == StorageClass::kText ? v.t : v.ToDisplay();
      return EvalResult::Of(
          SqlValue::Text(AsciiFold(s, expr.func == FuncId::kUpper)));
    }

    case FuncId::kNullif: {
      EvalResult eq = Compare(BinaryOp::kEq, expr.args[0].get(),
                              expr.args[1].get(), args[0], args[1], ctx);
      if (eq.error) return eq;
      if (Truthiness(eq.value, ctx.dialect) == Bool3::kTrue) {
        return EvalResult::Of(SqlValue::Null());
      }
      return EvalResult::Of(args[0]);
    }

    case FuncId::kLeast:
    case FuncId::kGreatest: {
      bool want_greatest = expr.func == FuncId::kGreatest;
      size_t best = 0;
      for (size_t i = 1; i < args.size(); ++i) {
        int cmp = ScalarMinMaxCompare(args[i], args[best], ctx);
        if (want_greatest ? cmp > 0 : cmp < 0) best = i;
      }
      return EvalResult::Of(args[best]);
    }

    case FuncId::kIfnull:
      return EvalResult::Of(args[0].is_null() ? args[1] : args[0]);

    case FuncId::kCoalesce:  // handled above
    case FuncId::kNumFuncs:
      break;
  }
  return EvalResult::Error("unknown function");
}

// CAST per the SQLite affinity-conversion rules the three dialects share
// in this model: text→INTEGER takes the integer prefix, text→REAL the
// numeric prefix, REAL→INTEGER truncates toward zero, and anything→TEXT
// uses the engine's value rendering. kPostgresStrict rejects text sources
// for numeric targets (invalid input syntax) instead of prefix-parsing.
EvalResult EvaluateCast(const Expr& expr, const SqlValue& v,
                        const EvalContext& ctx) {
  if (v.is_null()) return EvalResult::Of(SqlValue::Null());
  bool strict = ctx.dialect == Dialect::kPostgresStrict;
  switch (expr.cast_to) {
    case Affinity::kInteger: {
      if (v.cls == StorageClass::kInteger) return EvalResult::Of(v);
      if (v.cls == StorageClass::kReal) {
        // Injected: "truncation" implemented as rounding away from zero —
        // off by one for every fractional value.
        if (ctx.BugEnabled(BugId::kCastTruncAffinity)) {
          double away = v.r < 0 ? std::floor(v.r) : std::ceil(v.r);
          return EvalResult::Of(SqlValue::Int(static_cast<int64_t>(away)));
        }
        return EvalResult::Of(
            SqlValue::Int(static_cast<int64_t>(std::trunc(v.r))));
      }
      if (strict) {
        return EvalResult::Error("invalid input syntax for type integer");
      }
      const char* begin = v.t.c_str();
      char* end = nullptr;
      long long prefix = strtoll(begin, &end, 10);
      return EvalResult::Of(SqlValue::Int(end == begin ? 0 : prefix));
    }
    case Affinity::kReal: {
      if (v.cls == StorageClass::kReal) return EvalResult::Of(v);
      if (v.cls == StorageClass::kInteger) {
        return EvalResult::Of(SqlValue::Real(static_cast<double>(v.i)));
      }
      if (strict) {
        return EvalResult::Error("invalid input syntax for type double "
                                 "precision");
      }
      return EvalResult::Of(SqlValue::Real(ParseNumericPrefix(v.t)));
    }
    case Affinity::kText:
      return EvalResult::Of(SqlValue::Text(v.ToDisplay()));
  }
  return EvalResult::Of(v);
}

}  // namespace evalin

// Unqualified names below keep reading as before the evalin split.
using evalin::Compare;
using evalin::Arithmetic;
using evalin::EvaluateFunction;
using evalin::EvaluateCast;
using evalin::ConcatOperand;

bool LikeMatch(const std::string& text, const std::string& pattern,
               bool case_insensitive, int escape) {
  // Tokenize the pattern first so an escaped wildcard becomes an ordinary
  // literal token; a trailing escape character matches itself literally.
  enum class Tok : char { kAnyOne, kAnySeq, kLiteral };
  std::vector<std::pair<Tok, char>> tokens;
  tokens.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (escape >= 0 && c == static_cast<char>(escape)) {
      // A pattern ending in a bare escape character matches nothing in
      // real SQLite; anything else escaped is an ordinary literal.
      if (i + 1 >= pattern.size()) return false;
      tokens.emplace_back(Tok::kLiteral, pattern[++i]);
    } else if (c == '_') {
      tokens.emplace_back(Tok::kAnyOne, c);
    } else if (c == '%') {
      tokens.emplace_back(Tok::kAnySeq, c);
    } else {
      tokens.emplace_back(Tok::kLiteral, c);
    }
  }

  // Iterative glob matcher with backtracking over the last kAnySeq.
  size_t ti = 0;
  size_t pi = 0;
  size_t star_pi = std::string::npos;
  size_t star_ti = 0;
  auto norm = [&](char c) {
    return case_insensitive
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
               : c;
  };
  while (ti < text.size()) {
    if (pi < tokens.size() &&
        (tokens[pi].first == Tok::kAnyOne ||
         (tokens[pi].first == Tok::kLiteral &&
          norm(tokens[pi].second) == norm(text[ti])))) {
      ++ti;
      ++pi;
    } else if (pi < tokens.size() && tokens[pi].first == Tok::kAnySeq) {
      star_pi = pi++;
      star_ti = ti;
    } else if (star_pi != std::string::npos) {
      pi = star_pi + 1;
      ti = ++star_ti;
    } else {
      return false;
    }
  }
  while (pi < tokens.size() && tokens[pi].first == Tok::kAnySeq) ++pi;
  return pi == tokens.size();
}

Bool3 Truthiness(const SqlValue& v, Dialect dialect) {
  (void)dialect;  // all three dialects agree on WHERE truthiness here
  switch (v.cls) {
    case StorageClass::kNull:
      return Bool3::kNull;
    case StorageClass::kInteger:
      return v.i != 0 ? Bool3::kTrue : Bool3::kFalse;
    case StorageClass::kReal:
      return v.r != 0.0 ? Bool3::kTrue : Bool3::kFalse;
    case StorageClass::kText:
      return ParseNumericPrefix(v.t) != 0.0 ? Bool3::kTrue : Bool3::kFalse;
  }
  return Bool3::kNull;
}

EvalResult Evaluate(const Expr& expr, const RowView& row,
                    const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return EvalResult::Of(expr.literal);

    case ExprKind::kColumnRef: {
      if (row.schema == nullptr || row.values == nullptr) {
        return EvalResult::Error("column reference outside a row context");
      }
      int idx = row.schema->Resolve(expr);
      if (idx < 0) {
        return EvalResult::Error("no such column: " + expr.column);
      }
      return EvalResult::Of((*row.values)[static_cast<size_t>(idx)]);
    }

    case ExprKind::kUnary: {
      EvalResult operand = Evaluate(*expr.args[0], row, ctx);
      if (operand.error) return operand;
      if (expr.uop == UnaryOp::kNot) {
        Bool3 b = Truthiness(operand.value, ctx.dialect);
        if (b == Bool3::kNull && ctx.BugEnabled(BugId::kNotNullNot)) {
          return EvalResult::Of(SqlValue::Bool(false));
        }
        return EvalResult::Of(SqlValue::FromBool3(Not3(b)));
      }
      // Unary minus.
      const SqlValue& v = operand.value;
      if (v.is_null()) return EvalResult::Of(SqlValue::Null());
      if (v.cls == StorageClass::kInteger) {
        return EvalResult::Of(SqlValue::Int(-v.i));
      }
      if (v.cls == StorageClass::kReal) {
        return EvalResult::Of(SqlValue::Real(-v.r));
      }
      if (ctx.dialect == Dialect::kPostgresStrict) {
        return EvalResult::Error("operator does not exist: -text");
      }
      return EvalResult::Of(SqlValue::Real(-ParseNumericPrefix(v.t)));
    }

    case ExprKind::kBinary: {
      if (expr.bop == BinaryOp::kAnd || expr.bop == BinaryOp::kOr) {
        EvalResult lhs = Evaluate(*expr.args[0], row, ctx);
        if (lhs.error) return lhs;
        EvalResult rhs = Evaluate(*expr.args[1], row, ctx);
        if (rhs.error) return rhs;
        Bool3 a = Truthiness(lhs.value, ctx.dialect);
        Bool3 b = Truthiness(rhs.value, ctx.dialect);
        Bool3 r = expr.bop == BinaryOp::kAnd ? And3(a, b) : Or3(a, b);
        return EvalResult::Of(SqlValue::FromBool3(r));
      }
      EvalResult lhs = Evaluate(*expr.args[0], row, ctx);
      if (lhs.error) return lhs;
      EvalResult rhs = Evaluate(*expr.args[1], row, ctx);
      if (rhs.error) return rhs;
      if (IsComparisonOp(expr.bop)) {
        return Compare(expr.bop, expr.args[0].get(), expr.args[1].get(),
                       lhs.value, rhs.value, ctx);
      }
      if (IsArithmeticOp(expr.bop)) {
        return Arithmetic(expr, lhs.value, rhs.value, ctx);
      }
      // Concat.
      if (ctx.BugEnabled(BugId::kConcatNumericError) &&
          (lhs.value.is_numeric() || rhs.value.is_numeric())) {
        return EvalResult::Error("cannot concatenate non-text operand "
                                 "(spurious)");
      }
      if (ctx.dialect == Dialect::kPostgresStrict &&
          ((lhs.value.is_numeric()) || (rhs.value.is_numeric()))) {
        return EvalResult::Error("operator does not exist: || with non-text");
      }
      if (lhs.value.is_null() || rhs.value.is_null()) {
        return EvalResult::Of(SqlValue::Null());
      }
      return EvalResult::Of(SqlValue::Text(ConcatOperand(lhs.value) +
                                           ConcatOperand(rhs.value)));
    }

    case ExprKind::kIsNull: {
      if (ctx.BugEnabled(BugId::kIsNullArithLost) &&
          expr.args[0]->kind == ExprKind::kBinary &&
          IsArithmeticOp(expr.args[0]->bop)) {
        // NULL propagation through arithmetic is lost: IS NULL → FALSE,
        // IS NOT NULL → TRUE, regardless of the operand.
        return EvalResult::Of(SqlValue::Bool(expr.negated));
      }
      EvalResult operand = Evaluate(*expr.args[0], row, ctx);
      if (operand.error) return operand;
      bool is_null = operand.value.is_null();
      return EvalResult::Of(SqlValue::Bool(is_null != expr.negated));
    }

    case ExprKind::kInList: {
      if (ctx.BugEnabled(BugId::kDupInListError)) {
        for (size_t i = 1; i < expr.args.size(); ++i) {
          for (size_t j = i + 1; j < expr.args.size(); ++j) {
            if (expr.args[i]->kind == ExprKind::kLiteral &&
                expr.args[j]->kind == ExprKind::kLiteral &&
                ValueEquals(expr.args[i]->literal, expr.args[j]->literal)) {
              return EvalResult::Error("duplicate value in IN list "
                                       "(spurious)");
            }
          }
        }
      }
      EvalResult probe = Evaluate(*expr.args[0], row, ctx);
      if (probe.error) return probe;
      if (probe.value.is_null()) return EvalResult::Of(SqlValue::Null());
      size_t limit = expr.args.size();
      if (ctx.BugEnabled(BugId::kInListFirstOnly) && limit > 2) limit = 2;
      bool saw_null = false;
      for (size_t i = 1; i < limit; ++i) {
        EvalResult item = Evaluate(*expr.args[i], row, ctx);
        if (item.error) return item;
        EvalResult eq = Compare(BinaryOp::kEq, expr.args[0].get(),
                                expr.args[i].get(), probe.value, item.value,
                                ctx);
        if (eq.error) return eq;
        Bool3 b = Truthiness(eq.value, ctx.dialect);
        if (b == Bool3::kTrue) {
          return EvalResult::Of(SqlValue::Bool(!expr.negated));
        }
        if (b == Bool3::kNull) saw_null = true;
      }
      // Injected: the UNKNOWN contributed by a NULL list element is
      // dropped, collapsing x IN (..., NULL) to FALSE (NOT IN to TRUE).
      if (saw_null && !ctx.BugEnabled(BugId::kInListNullSemantics)) {
        return EvalResult::Of(SqlValue::Null());
      }
      return EvalResult::Of(SqlValue::Bool(expr.negated));
    }

    case ExprKind::kBetween: {
      if (ctx.BugEnabled(BugId::kBetweenSwapError) &&
          expr.args[1]->kind == ExprKind::kLiteral &&
          expr.args[2]->kind == ExprKind::kLiteral &&
          !expr.args[1]->literal.is_null() &&
          !expr.args[2]->literal.is_null() &&
          ValueCompare(expr.args[1]->literal, expr.args[2]->literal) > 0) {
        return EvalResult::Error("BETWEEN range bounds inverted (spurious)");
      }
      EvalResult v = Evaluate(*expr.args[0], row, ctx);
      if (v.error) return v;
      EvalResult lo = Evaluate(*expr.args[1], row, ctx);
      if (lo.error) return lo;
      EvalResult hi = Evaluate(*expr.args[2], row, ctx);
      if (hi.error) return hi;
      EvalResult above = Compare(BinaryOp::kGe, expr.args[0].get(),
                                 expr.args[1].get(), v.value, lo.value, ctx);
      if (above.error) return above;
      EvalResult below = Compare(BinaryOp::kLe, expr.args[0].get(),
                                 expr.args[2].get(), v.value, hi.value, ctx);
      if (below.error) return below;
      Bool3 r = And3(Truthiness(above.value, ctx.dialect),
                     Truthiness(below.value, ctx.dialect));
      if (expr.negated) r = Not3(r);
      return EvalResult::Of(SqlValue::FromBool3(r));
    }

    case ExprKind::kLike: {
      EvalResult v = Evaluate(*expr.args[0], row, ctx);
      if (v.error) return v;
      EvalResult p = Evaluate(*expr.args[1], row, ctx);
      if (p.error) return p;
      if (v.value.is_null() || p.value.is_null()) {
        return EvalResult::Of(SqlValue::Null());
      }
      if (ctx.dialect == Dialect::kPostgresStrict &&
          (v.value.cls != StorageClass::kText ||
           p.value.cls != StorageClass::kText)) {
        return EvalResult::Error("operator does not exist: LIKE on non-text");
      }
      std::string text = ConcatOperand(v.value);
      std::string pattern = ConcatOperand(p.value);
      if (ctx.BugEnabled(BugId::kLikeAnchored) && !pattern.empty() &&
          pattern.front() == '%') {
        pattern.erase(pattern.begin());
      }
      int escape = -1;
      if (expr.args.size() > 2 && expr.args[2] != nullptr) {
        EvalResult esc = Evaluate(*expr.args[2], row, ctx);
        if (esc.error) return esc;
        if (esc.value.cls != StorageClass::kText || esc.value.t.size() != 1) {
          return EvalResult::Error("ESCAPE expression must be a single "
                                   "character");
        }
        // Injected: the ESCAPE clause parses but the matcher never learns
        // about it — escaped wildcards stay wildcards.
        if (!ctx.BugEnabled(BugId::kLikeEscapeMiss)) {
          escape = static_cast<unsigned char>(esc.value.t[0]);
        }
      }
      bool fold = ctx.dialect != Dialect::kPostgresStrict;
      bool match = LikeMatch(text, pattern, fold, escape);
      return EvalResult::Of(SqlValue::Bool(match != expr.negated));
    }

    case ExprKind::kFunctionCall:
      return EvaluateFunction(expr, row, ctx);

    case ExprKind::kCast: {
      EvalResult operand = Evaluate(*expr.args[0], row, ctx);
      if (operand.error) return operand;
      return EvaluateCast(expr, operand.value, ctx);
    }

    case ExprKind::kCase: {
      size_t arms = expr.CaseArmCount();
      for (size_t i = 0; i < arms; ++i) {
        EvalResult when = Evaluate(*expr.args[2 * i], row, ctx);
        if (when.error) return when;
        if (Truthiness(when.value, ctx.dialect) == Bool3::kTrue) {
          return Evaluate(*expr.args[2 * i + 1], row, ctx);
        }
      }
      // Injected: the fall-through path forgets the ELSE arm exists.
      if (expr.case_has_else && !ctx.BugEnabled(BugId::kCaseElseSkip)) {
        return Evaluate(*expr.CaseElse(), row, ctx);
      }
      return EvalResult::Of(SqlValue::Null());
    }

    case ExprKind::kCollate:
      // The COLLATE operator changes how an enclosing comparison orders
      // text (see ExplicitCollation); the value itself passes through.
      return Evaluate(*expr.args[0], row, ctx);

    case ExprKind::kAggregate:
      // Aggregates never reach the scalar evaluator: AggregateSelect
      // substitutes them with their computed values first.
      return EvalResult::Error("aggregate function in scalar context");
  }
  return EvalResult::Error("unknown expression kind");
}

Bool3 EvaluatePredicate(const Expr& expr, const RowView& row,
                        const EvalContext& ctx, bool* error) {
  EvalResult r = Evaluate(expr, row, ctx);
  if (r.error) {
    if (error != nullptr) *error = true;
    return Bool3::kNull;
  }
  if (error != nullptr) *error = false;
  return Truthiness(r.value, ctx.dialect);
}

bool JoinRows(const std::vector<JoinInput>& inputs,
              const std::vector<JoinClause>& joins, const EvalContext& ctx,
              std::vector<std::vector<SqlValue>>* out, std::string* error,
              size_t* null_padded_rows) {
  out->clear();
  if (null_padded_rows != nullptr) *null_padded_rows = 0;
  if (inputs.empty()) return true;
  if (!joins.empty() && joins.size() != inputs.size() - 1) {
    if (error != nullptr) *error = "join clause count does not match FROM";
    return false;
  }

  RowSchema schema = inputs[0].schema;
  std::vector<std::vector<SqlValue>> acc(inputs[0].rows->begin(),
                                         inputs[0].rows->end());
  for (size_t t = 1; t < inputs.size(); ++t) {
    const JoinInput& right = inputs[t];
    const JoinClause* join = joins.empty() ? nullptr : &joins[t - 1];
    JoinKind kind = join != nullptr ? join->kind : JoinKind::kCross;
    const Expr* on =
        (join != nullptr && join->on != nullptr) ? join->on.get() : nullptr;
    if (on == nullptr && kind != JoinKind::kCross) {
      if (error != nullptr) *error = "join without ON condition";
      return false;
    }

    RowSchema next_schema = schema;
    next_schema.cols.insert(next_schema.cols.end(), right.schema.cols.begin(),
                            right.schema.cols.end());
    if (schema.has_ids() && right.schema.has_ids()) {
      next_schema.ids.insert(next_schema.ids.end(), right.schema.ids.begin(),
                             right.schema.ids.end());
    } else {
      next_schema.ids.clear();
    }
    // The ON condition runs once per row *pair* — compile it against the
    // combined schema instead of re-resolving columns pair by pair.
    CompiledExpr on_code;
    if (on != nullptr) on_code = CompileExpr(*on, next_schema, ctx.dialect);
    std::vector<std::vector<SqlValue>> next;
    for (const std::vector<SqlValue>& lrow : acc) {
      bool matched = false;
      for (const std::vector<SqlValue>& rrow : *right.rows) {
        std::vector<SqlValue> combined;
        combined.reserve(lrow.size() + rrow.size());
        combined.insert(combined.end(), lrow.begin(), lrow.end());
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        if (on != nullptr) {
          RowView view{&next_schema, &combined};
          EvalResult r = on_code.Run(view, ctx);
          if (r.error) {
            if (error != nullptr) *error = r.message;
            return false;
          }
          if (Truthiness(r.value, ctx.dialect) != Bool3::kTrue) continue;
        }
        next.push_back(std::move(combined));
        matched = true;
        // Injected: the scan wrongly assumes the right side is unique on
        // the join key and stops after the first matching right row.
        if (on != nullptr && ctx.BugEnabled(BugId::kJoinDupRightMatch)) {
          break;
        }
      }
      if (!matched && kind == JoinKind::kLeft) {
        std::vector<SqlValue> padded;
        padded.reserve(lrow.size() + right.schema.cols.size());
        padded.insert(padded.end(), lrow.begin(), lrow.end());
        padded.resize(lrow.size() + right.schema.cols.size());  // NULL cells
        next.push_back(std::move(padded));
        if (null_padded_rows != nullptr) ++*null_padded_rows;
      }
    }
    acc = std::move(next);
    schema = std::move(next_schema);
  }
  *out = std::move(acc);
  return true;
}

namespace {

// DISTINCT cell equality: NULLs equal, numerics numeric. The
// kDistinctTruncMerge bug compares mixed/REAL numerics by truncated value,
// wrongly merging rows like (1.5) into an earlier (1.0).
bool DistinctCellsEqual(const SqlValue& a, const SqlValue& b,
                        const EvalContext& ctx) {
  if (ctx.BugEnabled(BugId::kDistinctTruncMerge) && a.is_numeric() &&
      b.is_numeric() &&
      (a.cls == StorageClass::kReal || b.cls == StorageClass::kReal)) {
    return std::trunc(a.AsReal()) == std::trunc(b.AsReal());
  }
  return ValueEquals(a, b);
}

bool DistinctRowsEqual(const std::vector<SqlValue>& a,
                       const std::vector<SqlValue>& b,
                       const EvalContext& ctx) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!DistinctCellsEqual(a[i], b[i], ctx)) return false;
  }
  return true;
}

}  // namespace

std::vector<size_t> DistinctKeepIndexes(
    const std::vector<std::vector<SqlValue>>& rows, const EvalContext& ctx) {
  std::vector<size_t> kept;
  // Sort-based dedup for clean equality: ValueCompare's total order has
  // compare==0 exactly when ValueEquals holds (NULLs equal, numerics by
  // value, text by bytes — there is no second non-numeric class), so the
  // first index of each equal-run is the first occurrence. The
  // kDistinctTruncMerge bug hook wants pairwise equality under a relation
  // that is not order-consistent (trunc buckets), so it keeps the
  // quadratic scan below.
  if (!ctx.BugEnabled(BugId::kDistinctTruncMerge) && rows.size() > 16) {
    std::vector<size_t> order(rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&rows](size_t x, size_t y) {
      const std::vector<SqlValue>& a = rows[x];
      const std::vector<SqlValue>& b = rows[y];
      size_t common = std::min(a.size(), b.size());
      for (size_t i = 0; i < common; ++i) {
        int c = ValueCompare(a[i], b[i]);
        if (c != 0) return c < 0;
      }
      if (a.size() != b.size()) return a.size() < b.size();
      return x < y;  // stable within an equal-run: first occurrence leads
    });
    for (size_t i = 0; i < order.size(); ++i) {
      if (i > 0 && DistinctRowsEqual(rows[order[i]], rows[order[i - 1]], ctx))
        continue;
      kept.push_back(order[i]);
    }
    std::sort(kept.begin(), kept.end());
    return kept;
  }
  // Quadratic first-occurrence scan for small results and the bug hook.
  for (size_t i = 0; i < rows.size(); ++i) {
    bool duplicate = false;
    for (size_t k : kept) {
      if (DistinctRowsEqual(rows[i], rows[k], ctx)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) kept.push_back(i);
  }
  return kept;
}

bool EvalOrderKeys(const std::vector<OrderByItem>& order, const RowView& row,
                   const EvalContext& ctx, std::vector<SqlValue>* keys,
                   std::string* error) {
  keys->clear();
  keys->reserve(order.size());
  for (const OrderByItem& item : order) {
    if (item.expr == nullptr) {
      if (error != nullptr) *error = "ORDER BY without key expression";
      return false;
    }
    EvalResult r = Evaluate(*item.expr, row, ctx);
    if (r.error) {
      if (error != nullptr) *error = r.message;
      return false;
    }
    keys->push_back(std::move(r.value));
  }
  return true;
}

int CompareOrderKeys(const std::vector<SqlValue>& a,
                     const std::vector<SqlValue>& b,
                     const std::vector<OrderByItem>& order) {
  for (size_t i = 0; i < order.size() && i < a.size() && i < b.size(); ++i) {
    int c = ValueCompare(a[i], b[i]);
    if (c != 0) return order[i].descending ? -c : c;
  }
  return 0;
}

bool SortIndexesByOrder(const RowSchema& schema,
                        const std::vector<std::vector<SqlValue>>& rows,
                        const std::vector<OrderByItem>& order,
                        const EvalContext& ctx, std::vector<size_t>* perm,
                        std::string* error) {
  if (rows.empty()) {
    perm->clear();
    return true;
  }
  // Key expressions run once per row: compile each once and evaluate the
  // programs per row. EvalOrderKeys stays as the API for callers that only
  // sort a handful of rows.
  std::vector<CompiledExpr> key_code;
  key_code.reserve(order.size());
  for (const OrderByItem& item : order) {
    if (item.expr == nullptr) {
      if (error != nullptr) *error = "ORDER BY without key expression";
      return false;
    }
    key_code.push_back(CompileExpr(*item.expr, schema, ctx.dialect));
  }
  std::vector<std::vector<SqlValue>> keys(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    RowView view{&schema, &rows[i]};
    keys[i].reserve(order.size());
    for (const CompiledExpr& code : key_code) {
      EvalResult r = code.Run(view, ctx);
      if (r.error) {
        if (error != nullptr) *error = r.message;
        return false;
      }
      keys[i].push_back(std::move(r.value));
    }
  }
  perm->resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) (*perm)[i] = i;
  std::stable_sort(perm->begin(), perm->end(), [&](size_t x, size_t y) {
    return CompareOrderKeys(keys[x], keys[y], order) < 0;
  });
  return true;
}

void ApplyLimit(int64_t limit, bool ordered, const EvalContext& ctx,
                std::vector<std::vector<SqlValue>>* rows) {
  if (limit < 0) return;
  size_t n = static_cast<size_t>(limit);
  // Injected: with an ORDER BY present and a limit that binds the result,
  // the truncation loop runs one iteration short.
  if (ctx.BugEnabled(BugId::kOrderLimitOffByOne) && ordered && n >= 1 &&
      n <= rows->size()) {
    rows->resize(n - 1);
    return;
  }
  if (rows->size() > n) rows->resize(n);
}

// ---------------------------------------------------------------------------
// Grouping / aggregation core
// ---------------------------------------------------------------------------

bool AggAccumulator::Add(const SqlValue& v, std::string* error) {
  ++rows_seen_;
  if (v.is_null()) return true;
  ++non_null_;
  if (distinct_) {
    for (const SqlValue& s : seen_) {
      if (ValueEquals(s, v)) return true;
    }
    seen_.push_back(v);
  }
  ++distinct_seen_;
  switch (func_) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (v.cls == StorageClass::kText) {
        if (ctx_.dialect == Dialect::kPostgresStrict) {
          if (error != nullptr) {
            *error = std::string("function ") + AggFuncName(func_) +
                     "(text) does not exist";
          }
          return false;
        }
        // Flexible dialects coerce by numeric prefix, as sqlite's sumStep
        // does, and the result becomes approximate (REAL).
        approx_ = true;
        real_sum_ += ParseNumericPrefix(v.t);
      } else if (v.cls == StorageClass::kInteger && !approx_) {
        // Wrap-safe addition; the real accumulator shadows the integer one
        // so a later REAL operand can take over seamlessly.
        int_sum_ = static_cast<int64_t>(static_cast<uint64_t>(int_sum_) +
                                        static_cast<uint64_t>(v.i));
        real_sum_ += static_cast<double>(v.i);
      } else {
        approx_ = approx_ || v.cls == StorageClass::kReal;
        real_sum_ += v.AsReal();
      }
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (extreme_.is_null()) {
        extreme_ = v;
      } else {
        int c = ValueCompare(v, extreme_);
        if ((func_ == AggFunc::kMin && c < 0) ||
            (func_ == AggFunc::kMax && c > 0)) {
          extreme_ = v;
        }
      }
      break;
    case AggFunc::kNumAggFuncs:
      break;
  }
  return true;
}

SqlValue AggAccumulator::Final() const {
  // Injected (sqlite): SUM/MIN/MAX over an empty input return 0 where SQL
  // says NULL (COUNT legitimately returns 0, so it stays exempt).
  if (ctx_.BugEnabled(BugId::kAggEmptyGroupZero) && rows_seen_ == 0 &&
      (func_ == AggFunc::kSum || func_ == AggFunc::kMin ||
       func_ == AggFunc::kMax)) {
    return SqlValue::Int(0);
  }
  switch (func_) {
    case AggFunc::kCount:
      // Injected (mysql): COUNT(DISTINCT e) forgets the DISTINCT and
      // counts every non-NULL operand.
      if (distinct_ && ctx_.BugEnabled(BugId::kCountDistinctDup)) {
        return SqlValue::Int(static_cast<int64_t>(non_null_));
      }
      // Exactly one feeding mode is used per accumulator: AddRow for
      // COUNT(*), Add for COUNT(e).
      return SqlValue::Int(static_cast<int64_t>(star_rows_ + distinct_seen_));
    case AggFunc::kSum: {
      if (distinct_seen_ == 0) return SqlValue::Null();
      if (approx_) return SqlValue::Real(real_sum_);
      int64_t s = int_sum_;
      // Injected (sqlite): the integer SUM accumulator wraps at a toy
      // width, as if summed in a too-narrow register.
      if (ctx_.BugEnabled(BugId::kSumOverflowWrap)) {
        while (s > 25) s -= 51;
        while (s < -25) s += 51;
      }
      return SqlValue::Int(s);
    }
    case AggFunc::kAvg:
      if (distinct_seen_ == 0) return SqlValue::Null();
      // Injected (mysql): all-integer AVG truncates to integer division
      // instead of promoting to REAL.
      if (!approx_ && ctx_.BugEnabled(BugId::kAvgIntegerDiv)) {
        return SqlValue::Int(int_sum_ / static_cast<int64_t>(distinct_seen_));
      }
      return SqlValue::Real(real_sum_ / static_cast<double>(distinct_seen_));
    case AggFunc::kMin:
    case AggFunc::kMax:
      return extreme_;
    case AggFunc::kNumAggFuncs:
      break;
  }
  return SqlValue::Null();
}

void CollectAggregates(const Expr& e, std::vector<const Expr*>* nodes) {
  if (e.kind == ExprKind::kAggregate) {
    for (const Expr* n : *nodes) {
      if (n->StructurallyEquals(e)) return;
    }
    nodes->push_back(&e);
    return;  // aggregates don't nest in this query space
  }
  for (const ExprPtr& a : e.args) {
    if (a) CollectAggregates(*a, nodes);
  }
}

ExprPtr SubstituteAggregates(const Expr& e,
                             const std::vector<const Expr*>& nodes,
                             const std::vector<SqlValue>& values) {
  if (e.kind == ExprKind::kAggregate) {
    for (size_t i = 0; i < nodes.size() && i < values.size(); ++i) {
      if (nodes[i]->StructurallyEquals(e)) return MakeLiteral(values[i]);
    }
    return MakeNullLiteral();  // unreachable when `nodes` covers e
  }
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->table = e.table;
  out->column = e.column;
  out->uop = e.uop;
  out->bop = e.bop;
  out->negated = e.negated;
  out->func = e.func;
  out->cast_to = e.cast_to;
  out->collation = e.collation;
  out->case_has_else = e.case_has_else;
  out->args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) {
    out->args.push_back(a ? SubstituteAggregates(*a, nodes, values) : nullptr);
  }
  return out;
}

bool AggregateSelect(const SelectStmt& stmt, const RowSchema& schema,
                     const std::vector<std::vector<SqlValue>>& input_rows,
                     const EvalContext& ctx,
                     std::vector<std::vector<SqlValue>>* out_rows,
                     std::string* error) {
  out_rows->clear();
  if (stmt.select_list.empty()) {
    if (error != nullptr) {
      *error = "aggregate query requires an explicit select list";
    }
    return false;
  }

  // Group the input rows. No GROUP BY ⇒ one global group, which exists even
  // over empty input (SELECT COUNT(*) on an empty table is one row).
  std::vector<std::vector<SqlValue>> group_keys;
  std::vector<std::vector<size_t>> group_rows;
  if (stmt.group_by.empty()) {
    group_keys.emplace_back();
    group_rows.emplace_back();
    for (size_t i = 0; i < input_rows.size(); ++i) {
      group_rows[0].push_back(i);
    }
  } else {
    // Key expressions run once per input row: compile each once. Compiled
    // lazily on the first row so an empty input still yields zero groups
    // without touching the key expressions, as before.
    std::vector<CompiledExpr> group_code;
    if (!input_rows.empty()) {
      group_code.reserve(stmt.group_by.size());
      for (const ExprPtr& g : stmt.group_by) {
        if (g == nullptr) {
          if (error != nullptr) *error = "GROUP BY without key expression";
          return false;
        }
        group_code.push_back(CompileExpr(*g, schema, ctx.dialect));
      }
    }
    for (size_t i = 0; i < input_rows.size(); ++i) {
      RowView view{&schema, &input_rows[i]};
      std::vector<SqlValue> key;
      key.reserve(stmt.group_by.size());
      for (const CompiledExpr& code : group_code) {
        EvalResult r = code.Run(view, ctx);
        if (r.error) {
          if (error != nullptr) *error = r.message;
          return false;
        }
        key.push_back(std::move(r.value));
      }
      // GROUP BY key equality: NULL keys group together and INTEGER/REAL
      // keys group numerically, matching real engines' grouping compare.
      size_t slot = group_keys.size();
      for (size_t k = 0; k < group_keys.size(); ++k) {
        bool same = true;
        for (size_t c = 0; c < key.size(); ++c) {
          if (ValueCompare(group_keys[k][c], key[c]) != 0) {
            same = false;
            break;
          }
        }
        if (same) {
          slot = k;
          break;
        }
      }
      if (slot == group_keys.size()) {
        group_keys.push_back(std::move(key));
        group_rows.emplace_back();
      }
      group_rows[slot].push_back(i);
    }
  }

  // Unique aggregate nodes across the select list and HAVING; each is
  // computed once per group and substituted wherever it appears.
  std::vector<const Expr*> agg_nodes;
  for (const ExprPtr& e : stmt.select_list) {
    if (e) CollectAggregates(*e, &agg_nodes);
  }
  if (stmt.having) CollectAggregates(*stmt.having, &agg_nodes);

  // Aggregate operands run once per member row per group: compile each
  // once. COUNT(*) has no operand, so its slot stays empty and unused.
  std::vector<CompiledExpr> agg_code(agg_nodes.size());
  for (size_t i = 0; i < agg_nodes.size(); ++i) {
    const Expr* node = agg_nodes[i];
    if (!node->agg_star && !node->args.empty() && node->args[0] != nullptr) {
      agg_code[i] = CompileExpr(*node->args[0], schema, ctx.dialect);
    }
  }

  for (size_t g = 0; g < group_keys.size(); ++g) {
    auto compute = [&](const std::vector<size_t>& members,
                       std::vector<SqlValue>* out_vals) -> bool {
      for (size_t ai = 0; ai < agg_nodes.size(); ++ai) {
        const Expr* node = agg_nodes[ai];
        AggAccumulator acc(node->agg, node->agg_distinct, ctx);
        for (size_t ri : members) {
          if (node->agg_star) {
            acc.AddRow();
            continue;
          }
          RowView view{&schema, &input_rows[ri]};
          EvalResult r = agg_code[ai].Run(view, ctx);
          if (r.error) {
            if (error != nullptr) *error = r.message;
            return false;
          }
          if (!acc.Add(r.value, error)) return false;
        }
        out_vals->push_back(acc.Final());
      }
      return true;
    };
    std::vector<SqlValue> agg_values;
    if (!compute(group_rows[g], &agg_values)) return false;

    // Representative row for non-aggregate references (the group keys):
    // the group's first row in scan order, matching what real engines
    // surface for a bare grouped column.
    const std::vector<SqlValue>* rep_values =
        group_rows[g].empty() ? nullptr : &input_rows[group_rows[g][0]];
    RowView rep_view{&schema, rep_values};

    if (stmt.having != nullptr) {
      std::vector<SqlValue> having_values = agg_values;
      // Injected (postgres): HAVING is evaluated before grouping finishes —
      // its aggregates only ever see the group's first row.
      if (ctx.BugEnabled(BugId::kHavingBeforeGroup) &&
          group_rows[g].size() > 1) {
        having_values.clear();
        std::vector<size_t> first_only(1, group_rows[g][0]);
        if (!compute(first_only, &having_values)) return false;
      }
      ExprPtr hav =
          SubstituteAggregates(*stmt.having, agg_nodes, having_values);
      EvalResult r = Evaluate(*hav, rep_view, ctx);
      if (r.error) {
        if (error != nullptr) *error = r.message;
        return false;
      }
      if (Truthiness(r.value, ctx.dialect) != Bool3::kTrue) continue;
    }

    std::vector<SqlValue> out_row;
    out_row.reserve(stmt.select_list.size());
    for (const ExprPtr& item : stmt.select_list) {
      ExprPtr sub = SubstituteAggregates(*item, agg_nodes, agg_values);
      EvalResult r = Evaluate(*sub, rep_view, ctx);
      if (r.error) {
        if (error != nullptr) *error = r.message;
        return false;
      }
      out_row.push_back(std::move(r.value));
    }
    out_rows->push_back(std::move(out_row));
  }
  return true;
}

bool SameRowMultiset(const std::vector<std::vector<SqlValue>>& a,
                     const std::vector<std::vector<SqlValue>>& b) {
  if (a.size() != b.size()) return false;
  // Ordered-equality fast path: the common case is the engine and the model
  // holding the same rows in the same insertion order, so a pairwise scan
  // settles it without sorting. A mismatch here is not a verdict — multisets
  // can still agree in a different order — so fall through to the sort.
  {
    bool ordered_equal = true;
    for (size_t r = 0; ordered_equal && r < a.size(); ++r) {
      if (a[r].size() != b[r].size()) {
        ordered_equal = false;
        break;
      }
      for (size_t c = 0; c < a[r].size(); ++c) {
        if (!ValueEquals(a[r][c], b[r][c])) {
          ordered_equal = false;
          break;
        }
      }
    }
    if (ordered_equal) return true;
  }
  auto row_less = [](const std::vector<SqlValue>& x,
                     const std::vector<SqlValue>& y) {
    if (x.size() != y.size()) return x.size() < y.size();
    for (size_t i = 0; i < x.size(); ++i) {
      int c = ValueCompare(x[i], y[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  // Sort row *pointers*, not row copies — state comparison runs after every
  // mutation and row-deep copies dominated its profile.
  std::vector<const std::vector<SqlValue>*> sa, sb;
  sa.reserve(a.size());
  sb.reserve(b.size());
  for (const auto& row : a) sa.push_back(&row);
  for (const auto& row : b) sb.push_back(&row);
  auto ptr_less = [&row_less](const std::vector<SqlValue>* x,
                              const std::vector<SqlValue>* y) {
    return row_less(*x, *y);
  };
  std::sort(sa.begin(), sa.end(), ptr_less);
  std::sort(sb.begin(), sb.end(), ptr_less);
  for (size_t r = 0; r < sa.size(); ++r) {
    if (sa[r]->size() != sb[r]->size()) return false;
    for (size_t c = 0; c < sa[r]->size(); ++c) {
      if (!ValueEquals((*sa[r])[c], (*sb[r])[c])) return false;
    }
  }
  return true;
}

}  // namespace pqs
