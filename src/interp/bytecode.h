// Compiled postfix (bytecode) form of Expr with a flat stack evaluator.
//
// The tree evaluator (src/interp/eval.cc) re-resolves every ColumnRef by
// string against the RowSchema and pays a virtual-free but branchy
// recursive dispatch per node per row. A CompiledExpr is built once per
// generated statement against the schema the rows will carry: column
// references become array indexes, and the per-row work collapses to a
// linear walk over a small instruction vector with an explicit value stack.
//
// Differential safety (DESIGN §11): every instruction carries its source
// Expr node and executes the SAME semantic kernels the tree evaluator uses
// (evalin::Compare / Arithmetic / EvaluateCast / ..., bug hooks included).
// Lazy or shape-triggered constructs the postfix order cannot reproduce —
// IN lists (early exit + lazy item evaluation), LIKE (escape evaluated
// conditionally), CASE/COALESCE (lazy arms), plus the two bug shapes that
// must NOT evaluate their operands (kIsNullArithLost's IS NULL over
// arithmetic, kBetweenSwapError's literal-inverted BETWEEN) — compile to a
// single kTreeEval instruction that runs the tree evaluator on that
// subtree. Eager-argument function calls compile to kFunc, with the
// availability/arity checks (which the tree evaluator performs before
// evaluating any argument) hoisted to compile time — a call that would
// fail them falls back to the tree so the error order is preserved. The tree evaluator therefore remains the differential
// oracle: tests/test_hotpath.cc asserts value-identical results over
// generated expression corpora in all three dialects, and the process-wide
// kill switch SetBytecodeEnabled(false) reverts every caller to the tree
// path (test_determinism proves reports stay byte-identical either way).
#ifndef PQS_SRC_INTERP_BYTECODE_H_
#define PQS_SRC_INTERP_BYTECODE_H_

#include <cstdint>
#include <vector>

#include "src/interp/eval.h"

namespace pqs {

enum class OpCode : uint8_t {
  kPushLiteral,  // push node->literal
  kPushColumn,   // push row[slot] (resolved at compile time)
  kNot,          // pop a; push NOT a
  kNeg,          // pop a; push -a
  kAnd,          // pop b, a; push a AND b (both sides eager, like the tree)
  kOr,           // pop b, a; push a OR b
  kCompare,      // pop b, a; push evalin::Compare(node->bop, ...)
  kArith,        // pop b, a; push evalin::Arithmetic(node, ...)
  kConcat,       // pop b, a; push a || b
  kIsNull,       // pop a; push (a IS [NOT] NULL)
  kBetween,      // pop hi, lo, v; push v [NOT] BETWEEN lo AND hi
  kCast,         // pop a; push CAST(a AS node->cast_to)
  kFunc,         // pop node->args.size() values; push ApplyFunction(...)
  kTreeEval,     // push Evaluate(*node, row, ctx) — lazy/hazard subtree
};

struct Instr {
  OpCode op = OpCode::kTreeEval;
  int32_t slot = -1;          // kPushColumn: resolved column index
  const Expr* node = nullptr; // source node (literals, bug hooks, fallback)
};

// A compiled expression borrows the Expr tree and the RowSchema it was
// compiled against; both must outlive it (in practice: compiled per
// statement, used for that statement's scan, discarded with it).
class CompiledExpr {
 public:
  CompiledExpr() = default;

  // True when compilation produced a runnable program. An invalid program
  // (unresolvable column, unknown shape) falls back to the tree evaluator
  // inside Run, so callers never need to branch.
  bool valid() const { return valid_; }
  const Expr* root() const { return root_; }
  size_t size() const { return code_.size(); }

  // Evaluates against one row. Identical results to
  // Evaluate(*root, row, ctx) — see the differential safety argument above.
  EvalResult Run(const RowView& row, const EvalContext& ctx) const;

  // Evaluates against a batch of rows, instruction-at-a-time over column
  // vectors (the scan→filter→project path feeds whole page batches here).
  // On return out->size() == n and (*out)[i] is value- and error-identical
  // to Run(RowView{&schema, &rows[i]}, ctx): every instruction runs the
  // same pure semantic kernels, so evaluating instruction-major instead of
  // row-major is unobservable. A row whose evaluation errors is poisoned —
  // it skips the remaining instructions while later rows continue — so the
  // caller can walk the batch in row order and abort at the first error,
  // exactly where the row-at-a-time scan would have.
  void RunBatch(const RowSchema& schema, const std::vector<SqlValue>* rows,
                size_t n, const EvalContext& ctx,
                std::vector<EvalResult>* out) const;

 private:
  friend CompiledExpr CompileExpr(const Expr& root, const RowSchema& schema,
                                  Dialect dialect);

  const Expr* root_ = nullptr;
  bool valid_ = false;
  std::vector<Instr> code_;
};

// Compiles `root` against `schema` for `dialect`. Column references are
// resolved to row indexes now, and function availability/arity is checked
// now (dialect-dependent). An unresolvable reference yields an invalid
// program whose Run defers to the tree evaluator (which reports the proper
// "no such column" error).
CompiledExpr CompileExpr(const Expr& root, const RowSchema& schema,
                         Dialect dialect);

// Process-wide kill switch, default on. Scans and oracles compile + run
// bytecode only while enabled; flipping it is how the determinism test
// proves byte-identical reports with the bytecode evaluator on and off.
bool BytecodeEnabled();
void SetBytecodeEnabled(bool enabled);

}  // namespace pqs

#endif  // PQS_SRC_INTERP_BYTECODE_H_
