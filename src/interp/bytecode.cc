#include "src/interp/bytecode.h"

#include <atomic>
#include <utility>

#include "src/interp/eval_internal.h"
#include "src/sqlexpr/registry.h"

namespace pqs {

namespace {

std::atomic<bool> g_bytecode_enabled{true};

// Emits postfix code for `e`. Returns false when some column reference does
// not resolve against the schema — the whole program is then invalid and
// Run defers to the tree evaluator, which reports the proper error.
bool CompileNode(const Expr& e, const RowSchema& schema, Dialect dialect,
                 std::vector<Instr>* code) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      code->push_back({OpCode::kPushLiteral, -1, &e});
      return true;

    case ExprKind::kColumnRef: {
      int idx = schema.Resolve(e);
      if (idx < 0) return false;
      code->push_back({OpCode::kPushColumn, idx, &e});
      return true;
    }

    case ExprKind::kUnary:
      if (e.args.size() != 1 || e.args[0] == nullptr) return false;
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      code->push_back(
          {e.uop == UnaryOp::kNot ? OpCode::kNot : OpCode::kNeg, -1, &e});
      return true;

    case ExprKind::kBinary: {
      if (e.args.size() != 2 || e.args[0] == nullptr || e.args[1] == nullptr) {
        return false;
      }
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      if (!CompileNode(*e.args[1], schema, dialect, code)) return false;
      OpCode op;
      if (e.bop == BinaryOp::kAnd) {
        op = OpCode::kAnd;
      } else if (e.bop == BinaryOp::kOr) {
        op = OpCode::kOr;
      } else if (IsComparisonOp(e.bop)) {
        op = OpCode::kCompare;
      } else if (IsArithmeticOp(e.bop)) {
        op = OpCode::kArith;
      } else {
        op = OpCode::kConcat;
      }
      code->push_back({op, -1, &e});
      return true;
    }

    case ExprKind::kIsNull:
      if (e.args.size() != 1 || e.args[0] == nullptr) return false;
      // Hazard shape: kIsNullArithLost answers WITHOUT evaluating an
      // arithmetic operand; postfix order would evaluate it first and could
      // surface an error the tree path never sees. Keep the tree path.
      if (e.args[0]->kind == ExprKind::kBinary &&
          IsArithmeticOp(e.args[0]->bop)) {
        code->push_back({OpCode::kTreeEval, -1, &e});
        return true;
      }
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      code->push_back({OpCode::kIsNull, -1, &e});
      return true;

    case ExprKind::kBetween: {
      if (e.args.size() != 3 || e.args[0] == nullptr ||
          e.args[1] == nullptr || e.args[2] == nullptr) {
        return false;
      }
      // Hazard shape: kBetweenSwapError errors out BEFORE evaluating the
      // operands when both bounds are non-NULL literals in inverted order.
      const Expr& lo = *e.args[1];
      const Expr& hi = *e.args[2];
      if (lo.kind == ExprKind::kLiteral && hi.kind == ExprKind::kLiteral &&
          !lo.literal.is_null() && !hi.literal.is_null() &&
          ValueCompare(lo.literal, hi.literal) > 0) {
        code->push_back({OpCode::kTreeEval, -1, &e});
        return true;
      }
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      if (!CompileNode(*e.args[1], schema, dialect, code)) return false;
      if (!CompileNode(*e.args[2], schema, dialect, code)) return false;
      code->push_back({OpCode::kBetween, -1, &e});
      return true;
    }

    case ExprKind::kCast:
      if (e.args.size() != 1 || e.args[0] == nullptr) return false;
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      code->push_back({OpCode::kCast, -1, &e});
      return true;

    case ExprKind::kCollate:
      // Value passes through; the enclosing kCompare reads the collation
      // from its own operand nodes (which stay the kCollate nodes).
      if (e.args.size() != 1 || e.args[0] == nullptr) return false;
      return CompileNode(*e.args[0], schema, dialect, code);

    case ExprKind::kFunctionCall: {
      // The tree evaluator checks availability and arity BEFORE evaluating
      // any argument; hoist those checks to compile time so the postfix
      // order cannot surface an argument error the tree path never sees.
      // COALESCE stays on the tree path (lazy argument evaluation).
      const FunctionSig& sig = LookupFunction(e.func);
      const int argc = static_cast<int>(e.args.size());
      if (e.func == FuncId::kCoalesce || !sig.available(dialect) ||
          argc < sig.min_args || argc > sig.max_args) {
        code->push_back({OpCode::kTreeEval, -1, &e});
        return true;
      }
      for (const ExprPtr& a : e.args) {
        if (a == nullptr) return false;
        if (!CompileNode(*a, schema, dialect, code)) return false;
      }
      code->push_back({OpCode::kFunc, -1, &e});
      return true;
    }

    case ExprKind::kInList:       // lazy item evaluation + early exit
    case ExprKind::kLike:         // ESCAPE arg evaluated conditionally
    case ExprKind::kCase:         // lazy arms
    case ExprKind::kAggregate:    // scalar context error, tree-reported
      code->push_back({OpCode::kTreeEval, -1, &e});
      return true;
  }
  return false;
}

}  // namespace

bool BytecodeEnabled() {
  return g_bytecode_enabled.load(std::memory_order_relaxed);
}

void SetBytecodeEnabled(bool enabled) {
  g_bytecode_enabled.store(enabled, std::memory_order_relaxed);
}

CompiledExpr CompileExpr(const Expr& root, const RowSchema& schema,
                         Dialect dialect) {
  CompiledExpr c;
  c.root_ = &root;
  c.code_.reserve(16);  // most generated expressions fit without regrowth
  c.valid_ = CompileNode(root, schema, dialect, &c.code_);
  if (!c.valid_) c.code_.clear();
  return c;
}

EvalResult CompiledExpr::Run(const RowView& row, const EvalContext& ctx) const {
  if (!valid_ || !BytecodeEnabled()) return Evaluate(*root_, row, ctx);

  // Reused per-thread value stack. Run is reentrant (a kTreeEval subtree
  // never re-enters Run, but nested scans interleave calls): every frame
  // works relative to the stack size it entered with.
  static thread_local std::vector<SqlValue> stack;
  const size_t base = stack.size();
  auto bail = [&](EvalResult r) {
    stack.resize(base);
    return r;
  };

  for (const Instr& ins : code_) {
    switch (ins.op) {
      case OpCode::kPushLiteral:
        stack.push_back(ins.node->literal);
        break;

      case OpCode::kPushColumn:
        if (row.schema == nullptr || row.values == nullptr) {
          return bail(
              EvalResult::Error("column reference outside a row context"));
        }
        stack.push_back((*row.values)[static_cast<size_t>(ins.slot)]);
        break;

      case OpCode::kNot: {
        SqlValue& v = stack.back();
        Bool3 b = Truthiness(v, ctx.dialect);
        if (b == Bool3::kNull && ctx.BugEnabled(BugId::kNotNullNot)) {
          v = SqlValue::Bool(false);
        } else {
          v = SqlValue::FromBool3(Not3(b));
        }
        break;
      }

      case OpCode::kNeg: {
        SqlValue& v = stack.back();
        if (v.is_null()) {
          v = SqlValue::Null();
        } else if (v.cls == StorageClass::kInteger) {
          v = SqlValue::Int(-v.i);
        } else if (v.cls == StorageClass::kReal) {
          v = SqlValue::Real(-v.r);
        } else if (ctx.dialect == Dialect::kPostgresStrict) {
          return bail(EvalResult::Error("operator does not exist: -text"));
        } else {
          v = SqlValue::Real(-ParseNumericPrefix(v.t));
        }
        break;
      }

      case OpCode::kAnd:
      case OpCode::kOr: {
        SqlValue b = std::move(stack.back());
        stack.pop_back();
        SqlValue& a = stack.back();
        Bool3 ta = Truthiness(a, ctx.dialect);
        Bool3 tb = Truthiness(b, ctx.dialect);
        a = SqlValue::FromBool3(ins.op == OpCode::kAnd ? And3(ta, tb)
                                                       : Or3(ta, tb));
        break;
      }

      case OpCode::kCompare: {
        SqlValue b = std::move(stack.back());
        stack.pop_back();
        SqlValue& a = stack.back();
        EvalResult r =
            evalin::Compare(ins.node->bop, ins.node->args[0].get(),
                            ins.node->args[1].get(), a, b, ctx);
        if (r.error) return bail(std::move(r));
        a = std::move(r.value);
        break;
      }

      case OpCode::kArith: {
        SqlValue b = std::move(stack.back());
        stack.pop_back();
        SqlValue& a = stack.back();
        EvalResult r = evalin::Arithmetic(*ins.node, a, b, ctx);
        if (r.error) return bail(std::move(r));
        a = std::move(r.value);
        break;
      }

      case OpCode::kConcat: {
        SqlValue b = std::move(stack.back());
        stack.pop_back();
        SqlValue& a = stack.back();
        if (ctx.BugEnabled(BugId::kConcatNumericError) &&
            (a.is_numeric() || b.is_numeric())) {
          return bail(EvalResult::Error(
              "cannot concatenate non-text operand (spurious)"));
        }
        if (ctx.dialect == Dialect::kPostgresStrict &&
            (a.is_numeric() || b.is_numeric())) {
          return bail(
              EvalResult::Error("operator does not exist: || with non-text"));
        }
        if (a.is_null() || b.is_null()) {
          a = SqlValue::Null();
        } else {
          a = SqlValue::Text(evalin::ConcatOperand(a) +
                             evalin::ConcatOperand(b));
        }
        break;
      }

      case OpCode::kIsNull: {
        SqlValue& v = stack.back();
        v = SqlValue::Bool(v.is_null() != ins.node->negated);
        break;
      }

      case OpCode::kBetween: {
        SqlValue hi = std::move(stack.back());
        stack.pop_back();
        SqlValue lo = std::move(stack.back());
        stack.pop_back();
        SqlValue& v = stack.back();
        const Expr& node = *ins.node;
        EvalResult above =
            evalin::Compare(BinaryOp::kGe, node.args[0].get(),
                            node.args[1].get(), v, lo, ctx);
        if (above.error) return bail(std::move(above));
        EvalResult below =
            evalin::Compare(BinaryOp::kLe, node.args[0].get(),
                            node.args[2].get(), v, hi, ctx);
        if (below.error) return bail(std::move(below));
        Bool3 r = And3(Truthiness(above.value, ctx.dialect),
                       Truthiness(below.value, ctx.dialect));
        if (node.negated) r = Not3(r);
        v = SqlValue::FromBool3(r);
        break;
      }

      case OpCode::kCast: {
        SqlValue& v = stack.back();
        EvalResult r = evalin::EvaluateCast(*ins.node, v, ctx);
        if (r.error) return bail(std::move(r));
        v = std::move(r.value);
        break;
      }

      case OpCode::kFunc: {
        const size_t argc = ins.node->args.size();
        std::vector<SqlValue> args;
        args.reserve(argc);
        for (size_t i = stack.size() - argc; i < stack.size(); ++i) {
          args.push_back(std::move(stack[i]));
        }
        stack.resize(stack.size() - argc);
        EvalResult r = evalin::ApplyFunction(*ins.node, std::move(args), ctx);
        if (r.error) return bail(std::move(r));
        stack.push_back(std::move(r.value));
        break;
      }

      case OpCode::kTreeEval: {
        EvalResult r = Evaluate(*ins.node, row, ctx);
        if (r.error) return bail(std::move(r));
        stack.push_back(std::move(r.value));
        break;
      }
    }
  }

  EvalResult out = EvalResult::Of(std::move(stack.back()));
  stack.resize(base);
  return out;
}

void CompiledExpr::RunBatch(const RowSchema& schema,
                            const std::vector<SqlValue>* rows, size_t n,
                            const EvalContext& ctx,
                            std::vector<EvalResult>* out) const {
  out->clear();
  out->resize(n);
  if (n == 0) return;

  if (!valid_ || !BytecodeEnabled()) {
    for (size_t i = 0; i < n; ++i) {
      RowView row{&schema, &rows[i]};
      (*out)[i] = Evaluate(*root_, row, ctx);
    }
    return;
  }

  // Column-vector stack, pooled per thread. RunBatch can nest (a batch
  // scan's callback may trigger another batch, e.g. an index rebuild after
  // a mutation), so frames address columns relative to the pool watermark
  // they entered with; vectors above the watermark keep their capacity
  // between calls.
  static thread_local std::vector<std::vector<SqlValue>> pool;
  static thread_local size_t pool_used = 0;
  const size_t base = pool_used;
  size_t depth = 0;

  auto push = [&]() -> std::vector<SqlValue>& {
    if (pool.size() < base + depth + 1) pool.emplace_back();
    std::vector<SqlValue>& c = pool[base + depth];
    c.clear();
    c.resize(n);
    ++depth;
    pool_used = base + depth;
    return c;
  };
  auto col = [&](size_t from_top) -> std::vector<SqlValue>& {
    return pool[base + depth - 1 - from_top];
  };

  std::vector<char> poisoned(n, 0);
  auto poison = [&](size_t i, EvalResult r) {
    (*out)[i] = std::move(r);
    poisoned[i] = 1;
  };

  for (const Instr& ins : code_) {
    switch (ins.op) {
      case OpCode::kPushLiteral: {
        std::vector<SqlValue>& c = push();
        for (size_t i = 0; i < n; ++i) c[i] = ins.node->literal;
        break;
      }

      case OpCode::kPushColumn: {
        std::vector<SqlValue>& c = push();
        const size_t slot = static_cast<size_t>(ins.slot);
        for (size_t i = 0; i < n; ++i) {
          if (!poisoned[i]) c[i] = rows[i][slot];
        }
        break;
      }

      case OpCode::kNot: {
        std::vector<SqlValue>& c = col(0);
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          Bool3 b = Truthiness(c[i], ctx.dialect);
          if (b == Bool3::kNull && ctx.BugEnabled(BugId::kNotNullNot)) {
            c[i] = SqlValue::Bool(false);
          } else {
            c[i] = SqlValue::FromBool3(Not3(b));
          }
        }
        break;
      }

      case OpCode::kNeg: {
        std::vector<SqlValue>& c = col(0);
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          SqlValue& v = c[i];
          if (v.is_null()) {
            v = SqlValue::Null();
          } else if (v.cls == StorageClass::kInteger) {
            v = SqlValue::Int(-v.i);
          } else if (v.cls == StorageClass::kReal) {
            v = SqlValue::Real(-v.r);
          } else if (ctx.dialect == Dialect::kPostgresStrict) {
            poison(i, EvalResult::Error("operator does not exist: -text"));
          } else {
            v = SqlValue::Real(-ParseNumericPrefix(v.t));
          }
        }
        break;
      }

      case OpCode::kAnd:
      case OpCode::kOr: {
        std::vector<SqlValue>& b = col(0);
        std::vector<SqlValue>& a = col(1);
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          Bool3 ta = Truthiness(a[i], ctx.dialect);
          Bool3 tb = Truthiness(b[i], ctx.dialect);
          a[i] = SqlValue::FromBool3(ins.op == OpCode::kAnd ? And3(ta, tb)
                                                            : Or3(ta, tb));
        }
        --depth;
        pool_used = base + depth;
        break;
      }

      case OpCode::kCompare: {
        std::vector<SqlValue>& b = col(0);
        std::vector<SqlValue>& a = col(1);
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          EvalResult r =
              evalin::Compare(ins.node->bop, ins.node->args[0].get(),
                              ins.node->args[1].get(), a[i], b[i], ctx);
          if (r.error) {
            poison(i, std::move(r));
          } else {
            a[i] = std::move(r.value);
          }
        }
        --depth;
        pool_used = base + depth;
        break;
      }

      case OpCode::kArith: {
        std::vector<SqlValue>& b = col(0);
        std::vector<SqlValue>& a = col(1);
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          EvalResult r = evalin::Arithmetic(*ins.node, a[i], b[i], ctx);
          if (r.error) {
            poison(i, std::move(r));
          } else {
            a[i] = std::move(r.value);
          }
        }
        --depth;
        pool_used = base + depth;
        break;
      }

      case OpCode::kConcat: {
        std::vector<SqlValue>& b = col(0);
        std::vector<SqlValue>& a = col(1);
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          if (ctx.BugEnabled(BugId::kConcatNumericError) &&
              (a[i].is_numeric() || b[i].is_numeric())) {
            poison(i, EvalResult::Error(
                          "cannot concatenate non-text operand (spurious)"));
            continue;
          }
          if (ctx.dialect == Dialect::kPostgresStrict &&
              (a[i].is_numeric() || b[i].is_numeric())) {
            poison(i, EvalResult::Error(
                          "operator does not exist: || with non-text"));
            continue;
          }
          if (a[i].is_null() || b[i].is_null()) {
            a[i] = SqlValue::Null();
          } else {
            a[i] = SqlValue::Text(evalin::ConcatOperand(a[i]) +
                                  evalin::ConcatOperand(b[i]));
          }
        }
        --depth;
        pool_used = base + depth;
        break;
      }

      case OpCode::kIsNull: {
        std::vector<SqlValue>& c = col(0);
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          c[i] = SqlValue::Bool(c[i].is_null() != ins.node->negated);
        }
        break;
      }

      case OpCode::kBetween: {
        std::vector<SqlValue>& hi = col(0);
        std::vector<SqlValue>& lo = col(1);
        std::vector<SqlValue>& v = col(2);
        const Expr& node = *ins.node;
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          EvalResult above =
              evalin::Compare(BinaryOp::kGe, node.args[0].get(),
                              node.args[1].get(), v[i], lo[i], ctx);
          if (above.error) {
            poison(i, std::move(above));
            continue;
          }
          EvalResult below =
              evalin::Compare(BinaryOp::kLe, node.args[0].get(),
                              node.args[2].get(), v[i], hi[i], ctx);
          if (below.error) {
            poison(i, std::move(below));
            continue;
          }
          Bool3 r = And3(Truthiness(above.value, ctx.dialect),
                         Truthiness(below.value, ctx.dialect));
          if (node.negated) r = Not3(r);
          v[i] = SqlValue::FromBool3(r);
        }
        depth -= 2;
        pool_used = base + depth;
        break;
      }

      case OpCode::kCast: {
        std::vector<SqlValue>& c = col(0);
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          EvalResult r = evalin::EvaluateCast(*ins.node, c[i], ctx);
          if (r.error) {
            poison(i, std::move(r));
          } else {
            c[i] = std::move(r.value);
          }
        }
        break;
      }

      case OpCode::kFunc: {
        const size_t argc = ins.node->args.size();
        if (argc == 0) {
          std::vector<SqlValue>& c = push();
          for (size_t i = 0; i < n; ++i) {
            if (poisoned[i]) continue;
            EvalResult r = evalin::ApplyFunction(*ins.node, {}, ctx);
            if (r.error) {
              poison(i, std::move(r));
            } else {
              c[i] = std::move(r.value);
            }
          }
          break;
        }
        std::vector<SqlValue>& dst = col(argc - 1);
        std::vector<SqlValue> args;
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          args.clear();
          args.reserve(argc);
          for (size_t a = 0; a < argc; ++a) {
            args.push_back(std::move(col(argc - 1 - a)[i]));
          }
          EvalResult r = evalin::ApplyFunction(*ins.node, std::move(args),
                                               ctx);
          args = {};
          if (r.error) {
            poison(i, std::move(r));
          } else {
            dst[i] = std::move(r.value);
          }
        }
        depth -= argc - 1;
        pool_used = base + depth;
        break;
      }

      case OpCode::kTreeEval: {
        std::vector<SqlValue>& c = push();
        for (size_t i = 0; i < n; ++i) {
          if (poisoned[i]) continue;
          RowView row{&schema, &rows[i]};
          EvalResult r = Evaluate(*ins.node, row, ctx);
          if (r.error) {
            poison(i, std::move(r));
          } else {
            c[i] = std::move(r.value);
          }
        }
        break;
      }
    }
  }

  std::vector<SqlValue>& result = pool[base];
  for (size_t i = 0; i < n; ++i) {
    if (!poisoned[i]) (*out)[i] = EvalResult::Of(std::move(result[i]));
  }
  pool_used = base;
}

}  // namespace pqs
