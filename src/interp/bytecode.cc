#include "src/interp/bytecode.h"

#include <atomic>
#include <utility>

#include "src/interp/eval_internal.h"
#include "src/sqlexpr/registry.h"

namespace pqs {

namespace {

std::atomic<bool> g_bytecode_enabled{true};

// Emits postfix code for `e`. Returns false when some column reference does
// not resolve against the schema — the whole program is then invalid and
// Run defers to the tree evaluator, which reports the proper error.
bool CompileNode(const Expr& e, const RowSchema& schema, Dialect dialect,
                 std::vector<Instr>* code) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      code->push_back({OpCode::kPushLiteral, -1, &e});
      return true;

    case ExprKind::kColumnRef: {
      int idx = schema.Resolve(e);
      if (idx < 0) return false;
      code->push_back({OpCode::kPushColumn, idx, &e});
      return true;
    }

    case ExprKind::kUnary:
      if (e.args.size() != 1 || e.args[0] == nullptr) return false;
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      code->push_back(
          {e.uop == UnaryOp::kNot ? OpCode::kNot : OpCode::kNeg, -1, &e});
      return true;

    case ExprKind::kBinary: {
      if (e.args.size() != 2 || e.args[0] == nullptr || e.args[1] == nullptr) {
        return false;
      }
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      if (!CompileNode(*e.args[1], schema, dialect, code)) return false;
      OpCode op;
      if (e.bop == BinaryOp::kAnd) {
        op = OpCode::kAnd;
      } else if (e.bop == BinaryOp::kOr) {
        op = OpCode::kOr;
      } else if (IsComparisonOp(e.bop)) {
        op = OpCode::kCompare;
      } else if (IsArithmeticOp(e.bop)) {
        op = OpCode::kArith;
      } else {
        op = OpCode::kConcat;
      }
      code->push_back({op, -1, &e});
      return true;
    }

    case ExprKind::kIsNull:
      if (e.args.size() != 1 || e.args[0] == nullptr) return false;
      // Hazard shape: kIsNullArithLost answers WITHOUT evaluating an
      // arithmetic operand; postfix order would evaluate it first and could
      // surface an error the tree path never sees. Keep the tree path.
      if (e.args[0]->kind == ExprKind::kBinary &&
          IsArithmeticOp(e.args[0]->bop)) {
        code->push_back({OpCode::kTreeEval, -1, &e});
        return true;
      }
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      code->push_back({OpCode::kIsNull, -1, &e});
      return true;

    case ExprKind::kBetween: {
      if (e.args.size() != 3 || e.args[0] == nullptr ||
          e.args[1] == nullptr || e.args[2] == nullptr) {
        return false;
      }
      // Hazard shape: kBetweenSwapError errors out BEFORE evaluating the
      // operands when both bounds are non-NULL literals in inverted order.
      const Expr& lo = *e.args[1];
      const Expr& hi = *e.args[2];
      if (lo.kind == ExprKind::kLiteral && hi.kind == ExprKind::kLiteral &&
          !lo.literal.is_null() && !hi.literal.is_null() &&
          ValueCompare(lo.literal, hi.literal) > 0) {
        code->push_back({OpCode::kTreeEval, -1, &e});
        return true;
      }
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      if (!CompileNode(*e.args[1], schema, dialect, code)) return false;
      if (!CompileNode(*e.args[2], schema, dialect, code)) return false;
      code->push_back({OpCode::kBetween, -1, &e});
      return true;
    }

    case ExprKind::kCast:
      if (e.args.size() != 1 || e.args[0] == nullptr) return false;
      if (!CompileNode(*e.args[0], schema, dialect, code)) return false;
      code->push_back({OpCode::kCast, -1, &e});
      return true;

    case ExprKind::kCollate:
      // Value passes through; the enclosing kCompare reads the collation
      // from its own operand nodes (which stay the kCollate nodes).
      if (e.args.size() != 1 || e.args[0] == nullptr) return false;
      return CompileNode(*e.args[0], schema, dialect, code);

    case ExprKind::kFunctionCall: {
      // The tree evaluator checks availability and arity BEFORE evaluating
      // any argument; hoist those checks to compile time so the postfix
      // order cannot surface an argument error the tree path never sees.
      // COALESCE stays on the tree path (lazy argument evaluation).
      const FunctionSig& sig = LookupFunction(e.func);
      const int argc = static_cast<int>(e.args.size());
      if (e.func == FuncId::kCoalesce || !sig.available(dialect) ||
          argc < sig.min_args || argc > sig.max_args) {
        code->push_back({OpCode::kTreeEval, -1, &e});
        return true;
      }
      for (const ExprPtr& a : e.args) {
        if (a == nullptr) return false;
        if (!CompileNode(*a, schema, dialect, code)) return false;
      }
      code->push_back({OpCode::kFunc, -1, &e});
      return true;
    }

    case ExprKind::kInList:       // lazy item evaluation + early exit
    case ExprKind::kLike:         // ESCAPE arg evaluated conditionally
    case ExprKind::kCase:         // lazy arms
    case ExprKind::kAggregate:    // scalar context error, tree-reported
      code->push_back({OpCode::kTreeEval, -1, &e});
      return true;
  }
  return false;
}

}  // namespace

bool BytecodeEnabled() {
  return g_bytecode_enabled.load(std::memory_order_relaxed);
}

void SetBytecodeEnabled(bool enabled) {
  g_bytecode_enabled.store(enabled, std::memory_order_relaxed);
}

CompiledExpr CompileExpr(const Expr& root, const RowSchema& schema,
                         Dialect dialect) {
  CompiledExpr c;
  c.root_ = &root;
  c.code_.reserve(16);  // most generated expressions fit without regrowth
  c.valid_ = CompileNode(root, schema, dialect, &c.code_);
  if (!c.valid_) c.code_.clear();
  return c;
}

EvalResult CompiledExpr::Run(const RowView& row, const EvalContext& ctx) const {
  if (!valid_ || !BytecodeEnabled()) return Evaluate(*root_, row, ctx);

  // Reused per-thread value stack. Run is reentrant (a kTreeEval subtree
  // never re-enters Run, but nested scans interleave calls): every frame
  // works relative to the stack size it entered with.
  static thread_local std::vector<SqlValue> stack;
  const size_t base = stack.size();
  auto bail = [&](EvalResult r) {
    stack.resize(base);
    return r;
  };

  for (const Instr& ins : code_) {
    switch (ins.op) {
      case OpCode::kPushLiteral:
        stack.push_back(ins.node->literal);
        break;

      case OpCode::kPushColumn:
        if (row.schema == nullptr || row.values == nullptr) {
          return bail(
              EvalResult::Error("column reference outside a row context"));
        }
        stack.push_back((*row.values)[static_cast<size_t>(ins.slot)]);
        break;

      case OpCode::kNot: {
        SqlValue& v = stack.back();
        Bool3 b = Truthiness(v, ctx.dialect);
        if (b == Bool3::kNull && ctx.BugEnabled(BugId::kNotNullNot)) {
          v = SqlValue::Bool(false);
        } else {
          v = SqlValue::FromBool3(Not3(b));
        }
        break;
      }

      case OpCode::kNeg: {
        SqlValue& v = stack.back();
        if (v.is_null()) {
          v = SqlValue::Null();
        } else if (v.cls == StorageClass::kInteger) {
          v = SqlValue::Int(-v.i);
        } else if (v.cls == StorageClass::kReal) {
          v = SqlValue::Real(-v.r);
        } else if (ctx.dialect == Dialect::kPostgresStrict) {
          return bail(EvalResult::Error("operator does not exist: -text"));
        } else {
          v = SqlValue::Real(-ParseNumericPrefix(v.t));
        }
        break;
      }

      case OpCode::kAnd:
      case OpCode::kOr: {
        SqlValue b = std::move(stack.back());
        stack.pop_back();
        SqlValue& a = stack.back();
        Bool3 ta = Truthiness(a, ctx.dialect);
        Bool3 tb = Truthiness(b, ctx.dialect);
        a = SqlValue::FromBool3(ins.op == OpCode::kAnd ? And3(ta, tb)
                                                       : Or3(ta, tb));
        break;
      }

      case OpCode::kCompare: {
        SqlValue b = std::move(stack.back());
        stack.pop_back();
        SqlValue& a = stack.back();
        EvalResult r =
            evalin::Compare(ins.node->bop, ins.node->args[0].get(),
                            ins.node->args[1].get(), a, b, ctx);
        if (r.error) return bail(std::move(r));
        a = std::move(r.value);
        break;
      }

      case OpCode::kArith: {
        SqlValue b = std::move(stack.back());
        stack.pop_back();
        SqlValue& a = stack.back();
        EvalResult r = evalin::Arithmetic(*ins.node, a, b, ctx);
        if (r.error) return bail(std::move(r));
        a = std::move(r.value);
        break;
      }

      case OpCode::kConcat: {
        SqlValue b = std::move(stack.back());
        stack.pop_back();
        SqlValue& a = stack.back();
        if (ctx.BugEnabled(BugId::kConcatNumericError) &&
            (a.is_numeric() || b.is_numeric())) {
          return bail(EvalResult::Error(
              "cannot concatenate non-text operand (spurious)"));
        }
        if (ctx.dialect == Dialect::kPostgresStrict &&
            (a.is_numeric() || b.is_numeric())) {
          return bail(
              EvalResult::Error("operator does not exist: || with non-text"));
        }
        if (a.is_null() || b.is_null()) {
          a = SqlValue::Null();
        } else {
          a = SqlValue::Text(evalin::ConcatOperand(a) +
                             evalin::ConcatOperand(b));
        }
        break;
      }

      case OpCode::kIsNull: {
        SqlValue& v = stack.back();
        v = SqlValue::Bool(v.is_null() != ins.node->negated);
        break;
      }

      case OpCode::kBetween: {
        SqlValue hi = std::move(stack.back());
        stack.pop_back();
        SqlValue lo = std::move(stack.back());
        stack.pop_back();
        SqlValue& v = stack.back();
        const Expr& node = *ins.node;
        EvalResult above =
            evalin::Compare(BinaryOp::kGe, node.args[0].get(),
                            node.args[1].get(), v, lo, ctx);
        if (above.error) return bail(std::move(above));
        EvalResult below =
            evalin::Compare(BinaryOp::kLe, node.args[0].get(),
                            node.args[2].get(), v, hi, ctx);
        if (below.error) return bail(std::move(below));
        Bool3 r = And3(Truthiness(above.value, ctx.dialect),
                       Truthiness(below.value, ctx.dialect));
        if (node.negated) r = Not3(r);
        v = SqlValue::FromBool3(r);
        break;
      }

      case OpCode::kCast: {
        SqlValue& v = stack.back();
        EvalResult r = evalin::EvaluateCast(*ins.node, v, ctx);
        if (r.error) return bail(std::move(r));
        v = std::move(r.value);
        break;
      }

      case OpCode::kFunc: {
        const size_t argc = ins.node->args.size();
        std::vector<SqlValue> args;
        args.reserve(argc);
        for (size_t i = stack.size() - argc; i < stack.size(); ++i) {
          args.push_back(std::move(stack[i]));
        }
        stack.resize(stack.size() - argc);
        EvalResult r = evalin::ApplyFunction(*ins.node, std::move(args), ctx);
        if (r.error) return bail(std::move(r));
        stack.push_back(std::move(r.value));
        break;
      }

      case OpCode::kTreeEval: {
        EvalResult r = Evaluate(*ins.node, row, ctx);
        if (r.error) return bail(std::move(r));
        stack.push_back(std::move(r.value));
        break;
      }
    }
  }

  EvalResult out = EvalResult::Of(std::move(stack.back()));
  stack.resize(base);
  return out;
}

}  // namespace pqs
