#include "src/engine/connection.h"

namespace pqs {

const char* DialectName(Dialect d) {
  switch (d) {
    case Dialect::kSqliteFlex:
      return "sqlite";
    case Dialect::kMysqlLike:
      return "mysql";
    case Dialect::kPostgresStrict:
      return "postgres";
  }
  return "?";
}

}  // namespace pqs
