// Injected-bug identifiers and the per-connection enable set.
//
// MiniDB deliberately ships a registry of historical-bug *classes* (modeled
// on the kinds of defects the PQS paper found in SQLite, MySQL, and
// PostgreSQL). A BugConfig selects which of them a given engine instance
// exhibits; the default configuration is a clean engine. The enum lives in
// the engine-agnostic layer because campaign code and benches name bugs
// without caring which engine implements them.
#ifndef PQS_SRC_ENGINE_BUGS_H_
#define PQS_SRC_ENGINE_BUGS_H_

#include <cstdint>

namespace pqs {

enum class BugId : uint32_t {
  // --- SQLite-flavored dialect -------------------------------------------
  // Rows filtered through a partial index are wrongly restricted to the
  // index predicate when the query contains an IS NOT NULL term (models
  // SQLite's "partial index used for IS NOT inference" corruption).
  kPartialIndexIsNotInference = 0,
  kIndexedOrSkip,          // OR-query over an indexed table drops rows
  kUniqueNullLost,         // rows with NULL in a UNIQUE column vanish
  kTextEqInterning,        // multi-char text equality spuriously FALSE
  kNegIntCompare,          // comparisons against negative literals FALSE
  kRealTruncCompare,       // REAL operand truncated in mixed comparison
  kLikeAnchored,           // '%x%' patterns wrongly anchored at the start
  kNotNullNot,             // NOT NULL evaluates to FALSE instead of NULL
  kJoinDupRightMatch,      // ON-join keeps only the first matching right row
  kDistinctTruncMerge,     // DISTINCT dedups REAL cells by truncated value
  kOrTermLimit,            // ≥3 OR terms → spurious optimizer error
  kConcatNumericError,     // || with a numeric operand → spurious error
  kBetweenSwapError,       // BETWEEN hi..lo (empty range) → spurious error
  kDeepExprCrash,          // expression depth ≥6 → simulated SEGFAULT

  // --- MySQL-flavored dialect --------------------------------------------
  kStrNumCoercionPrefix,   // '12ab' coerces to 0 instead of 12
  kInListFirstOnly,        // IN (a, b, ...) only checks the first element
  kJoinPredicatePushdown,  // join rows satisfying a col=col term dropped
  kUnsignedSubWrap,        // negative subtraction result wraps positive
  kOrderLimitOffByOne,     // ORDER BY + binding LIMIT returns one row fewer
  kDivZeroError,           // x / 0 errors instead of yielding NULL
  kDupInListError,         // duplicate IN-list literal → spurious error
  kLikeWildcardCrash,      // long '%...%' pattern → simulated SEGFAULT
  kDistinctOrderCrash,     // DISTINCT + ORDER BY together → SEGFAULT

  // --- PostgreSQL-flavored dialect ---------------------------------------
  kIsNullArithLost,        // (a+b) IS NULL loses NULL propagation
  kParallelWorkerError,    // 2-table AND query → "parallel worker" error
  kMultiJoinOrderError,    // ≥2 join steps + ORDER BY → spurious plan error
  kNumericOverflowError,   // |arith result| > 50 → spurious overflow
  kCollationMismatchError, // text col-vs-col compare → collation error
  kBetweenNullCrash,       // BETWEEN + IS NULL in one query → SEGFAULT

  // --- Typed expression subsystem (functions / CAST / CASE / LIKE ESCAPE /
  // --- collations), spread across the dialect flavors -------------------
  kLikeEscapeMiss,         // LIKE ... ESCAPE processed as if no ESCAPE
  kCastTruncAffinity,      // CAST(real AS INTEGER) rounds instead of
                           // truncating toward zero
  kCollateNocaseRange,     // NOCASE honored for =/<> but range comparisons
                           // fall back to binary collation
  kCoalesceFirstNull,      // COALESCE yields NULL when its first argument
                           // is NULL (remaining args never consulted)
  kCaseElseSkip,           // CASE with no matching WHEN skips the ELSE arm
  kInListNullSemantics,    // NULL list element ignored: IN yields FALSE /
                           // NOT IN yields TRUE instead of NULL

  // --- Statement-level mutation engine (indexes / UPDATE / DELETE /
  // --- maintenance), spread across the dialect flavors ------------------
  kIndexLookupSkipLast,    // index lookup drops the greatest-key match
  kUpdateIndexStale,       // UPDATE leaves stale index keys behind
  kReindexTruncate,        // REINDEX rebuild keeps only half the entries
  kDeleteOverrun,          // DELETE of ≥2 rows also removes the row after
                           // the last match
  kUpdateSetOrCrash,       // multi-assignment UPDATE with OR in the WHERE
                           // → simulated SEGFAULT
  kPartialIndexUpdateMiss, // UPDATE/DELETE skip partial-index membership
                           // recomputation (entries reflect pre-mutation
                           // rows)
  kReindexPartialError,    // REINDEX of a table with a partial index →
                           // spurious "could not reindex" error

  // --- Aggregation / grouping pipeline (metamorphic-oracle targets),
  // --- spread across the dialect flavors. Containment has no pivot row
  // --- once rows are grouped, so only NoREC/TLP can see these. ----------
  kAggEmptyGroupZero,      // SUM/MIN/MAX over empty input → 0 instead of
                           // NULL
  kSumOverflowWrap,        // integer SUM wraps in a too-narrow register
  kAvgIntegerDiv,          // all-integer AVG truncates (integer division)
  kCountDistinctDup,       // COUNT(DISTINCT e) counts duplicates
  kHavingBeforeGroup,      // HAVING aggregates see only the group's first
                           // row (evaluated before grouping finishes)
  kTlpNullPartitionDrop,   // aggregate query with top-level IS NULL WHERE
                           // drops every matching row

  // --- Paged storage engine (buffer pool / page heap). These corrupt the
  // --- storage layer underneath statement semantics, so they only manifest
  // --- under paging (page splits, eviction pressure, page-crossing
  // --- mutations); the engine arms a deliberately tiny pool when one is
  // --- enabled so campaigns reach the trigger states quickly. -----------
  kEvictDropsDirtyPage,    // evicting a dirty frame skips the write-back:
                           // every modification since the page was loaded
                           // reverts to the on-"disk" version
  kPageSplitRowLoss,       // allocating a fresh page on overflow ("split")
                           // loses the last row of the page that filled up
  kStalePageReadAfterUpdate, // a read of a page dirtied by UPDATE
                           // "revalidates" the frame from disk, discarding
                           // the update (reads observe pre-update rows)
  kIndexHeapDesync,        // a DELETE confined to the tail page skips the
                           // index rebuild (positions of earlier rows are
                           // assumed unchanged), leaving entries that point
                           // at shifted or vanished heap rows

  // --- MVCC transaction layer (snapshot isolation over K interleaved
  // --- sessions). Only the concurrent workload (txn_sessions > 1) can
  // --- reach these paths; HuntBug arms that workload automatically. -----
  kTxnLostUpdate,          // COMMIT skips the first-committer-wins check
                           // for update-only write sets: a stale-snapshot
                           // UPDATE silently clobbers a committed one
  kTxnDirtyRead,           // in-transaction SELECTs also see rows inserted
                           // by other transactions that are still open
  kTxnWriteSkew,           // conflict detection degraded to row granularity
                           // under claimed SI: concurrent inserts to a
                           // table this txn ranged over never conflict
  kTxnRollbackStaleIndex,  // ROLLBACK rebuilds indexes from the discarded
                           // write set and the next quiescent rebuild is
                           // skipped, leaving uncommitted keys behind
  kTxnSnapshotUncommittedRead, // snapshot reads resolve a row's newest
                           // version even when its writer has not
                           // committed (sees uncommitted UPDATE values)

  kNumBugs,
};

inline constexpr uint32_t kNumBugIds = static_cast<uint32_t>(BugId::kNumBugs);

// True for the MVCC transaction-layer bug classes — the ones a single
// serial session can never trigger. Campaign code uses this to arm the
// K-session interleaved workload when hunting them.
inline constexpr bool IsTxnBug(BugId id) {
  return id >= BugId::kTxnLostUpdate &&
         id <= BugId::kTxnSnapshotUncommittedRead;
}

class BugConfig {
 public:
  BugConfig() = default;

  static BugConfig Single(BugId id) {
    BugConfig config;
    config.Enable(id);
    return config;
  }

  void Enable(BugId id) { mask_ |= Bit(id); }
  void Disable(BugId id) { mask_ &= ~Bit(id); }
  bool enabled(BugId id) const { return (mask_ & Bit(id)) != 0; }
  bool any() const { return mask_ != 0; }

 private:
  static uint64_t Bit(BugId id) {
    return uint64_t{1} << static_cast<uint32_t>(id);
  }
  uint64_t mask_ = 0;
};

static_assert(kNumBugIds <= 64, "BugConfig mask is 64 bits wide");

}  // namespace pqs

#endif  // PQS_SRC_ENGINE_BUGS_H_
