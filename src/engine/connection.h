// The engine-agnostic core API the PQS runner codes against.
//
// Everything above this line of the stack (runner, oracles, reducer,
// campaign, benches) talks to a database exclusively through Connection:
// submit one typed AST statement, get back a typed result set plus an
// error/crash status. Everything below it (MiniDB, the real-SQLite adapter,
// future sharded/async/remote backends) implements it. Keeping this surface
// narrow is what lets later work swap engines without touching the runner.
#ifndef PQS_SRC_ENGINE_CONNECTION_H_
#define PQS_SRC_ENGINE_CONNECTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sqlast/ast.h"
#include "src/sqlvalue/value.h"

namespace pqs {

// SQL semantics flavor an engine implements. MiniDB implements all three;
// the libsqlite3 adapter is kSqliteFlex by construction.
enum class Dialect {
  kSqliteFlex = 0,      // flexible typing, affinity coercion on insert
  kMysqlLike = 1,       // numeric coercion of text, div-by-zero → NULL
  kPostgresStrict = 2,  // strict typing, type mismatches are errors
};

enum class StatementStatus {
  kOk,
  // The statement violated a declared constraint (UNIQUE / PRIMARY KEY /
  // NOT NULL). This is an *expected* failure mode for randomly generated
  // inserts; the error oracle does not fire on it.
  kConstraintViolation,
  // The engine rejected or failed a statement the generator guarantees to
  // be valid — the error oracle's signal.
  kError,
  // Simulated (MiniDB) or real (adapter) process death. The connection is
  // unusable afterwards.
  kCrash,
  // The engine cannot run this statement at all (e.g. the SQLite adapter
  // compiled without libsqlite3). Not a finding; the runner skips out.
  kUnsupported,
};

struct StatementResult {
  StatementStatus status = StatementStatus::kOk;
  std::string error;  // diagnostic when status != kOk
  std::vector<std::string> column_names;
  std::vector<std::vector<SqlValue>> rows;

  bool ok() const { return status == StatementStatus::kOk; }

  static StatementResult Ok() { return StatementResult(); }
  static StatementResult Failure(StatementStatus s, std::string message) {
    StatementResult out;
    out.status = s;
    out.error = std::move(message);
    return out;
  }
};

class Connection {
 public:
  virtual ~Connection() = default;

  // Executes one statement. Never throws; failures are reported through
  // StatementResult::status.
  virtual StatementResult Execute(const Stmt& stmt) = 0;

  virtual Dialect dialect() const = 0;
  virtual std::string EngineName() const = 0;

  // False once the engine has crashed; Execute returns kCrash from then on.
  virtual bool alive() const { return true; }
};

using ConnectionPtr = std::unique_ptr<Connection>;

// Factory producing a fresh, empty database. The runner creates one
// connection per generated database state, so factories must be cheap and
// must not share mutable state between the connections they produce.
using EngineFactory = std::function<ConnectionPtr()>;

const char* DialectName(Dialect d);

}  // namespace pqs

#endif  // PQS_SRC_ENGINE_CONNECTION_H_
