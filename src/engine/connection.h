// The engine-agnostic core API the PQS runner codes against.
//
// Everything above this line of the stack (runner, oracles, reducer,
// campaign, benches) talks to a database exclusively through Connection:
// submit one typed AST statement, get back a typed result set plus an
// error/crash status. Everything below it (MiniDB, the real-SQLite adapter,
// future sharded/async/remote backends) implements it. Keeping this surface
// narrow is what lets later work swap engines without touching the runner.
#ifndef PQS_SRC_ENGINE_CONNECTION_H_
#define PQS_SRC_ENGINE_CONNECTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sqlast/ast.h"
#include "src/sqlvalue/value.h"

namespace pqs {

// SQL semantics flavor an engine implements. MiniDB implements all three;
// the libsqlite3 adapter is kSqliteFlex by construction.
enum class Dialect {
  kSqliteFlex = 0,      // flexible typing, affinity coercion on insert
  kMysqlLike = 1,       // numeric coercion of text, div-by-zero → NULL
  kPostgresStrict = 2,  // strict typing, type mismatches are errors
};

enum class StatementStatus {
  kOk,
  // The statement violated a declared constraint (UNIQUE / PRIMARY KEY /
  // NOT NULL). This is an *expected* failure mode for randomly generated
  // inserts; the error oracle does not fire on it.
  kConstraintViolation,
  // The engine rejected or failed a statement the generator guarantees to
  // be valid — the error oracle's signal.
  kError,
  // COMMIT refused under first-committer-wins: another transaction
  // committed to a table this one wrote after its snapshot was taken. An
  // *expected* outcome of the concurrent workload (like kConstraintViolation
  // for random inserts); the transaction is rolled back, no oracle fires.
  kTxnConflict,
  // Simulated (MiniDB) or real (adapter) process death. The connection is
  // unusable afterwards.
  kCrash,
  // The engine cannot run this statement at all (e.g. the SQLite adapter
  // compiled without libsqlite3). Not a finding; the runner skips out.
  kUnsupported,
};

struct StatementResult {
  StatementStatus status = StatementStatus::kOk;
  std::string error;  // diagnostic when status != kOk
  std::vector<std::string> column_names;
  std::vector<std::vector<SqlValue>> rows;

  bool ok() const { return status == StatementStatus::kOk; }

  static StatementResult Ok() { return StatementResult(); }
  static StatementResult Failure(StatementStatus s, std::string message) {
    StatementResult out;
    out.status = s;
    out.error = std::move(message);
    return out;
  }
};

class Connection {
 public:
  virtual ~Connection() = default;

  // Executes one statement. Never throws; failures are reported through
  // StatementResult::status.
  virtual StatementResult Execute(const Stmt& stmt) = 0;

  virtual Dialect dialect() const = 0;
  virtual std::string EngineName() const = 0;

  // False once the engine has crashed; Execute returns kCrash from then on.
  virtual bool alive() const { return true; }

  // Restores the connection to a fresh, empty database — equivalent to a
  // newly factory-produced connection (same dialect, same bug config) but
  // without paying for construction. Returns false when the engine cannot
  // reset in place; callers must then fall back to the factory. A crashed
  // connection that resets successfully is alive again.
  virtual bool Reset() { return false; }
};

using ConnectionPtr = std::unique_ptr<Connection>;

// Factory producing a fresh, empty database. The runner creates one
// connection per generated database state, so factories must be cheap and
// must not share mutable state between the connections they produce.
// Sharded runs call the factory concurrently from several worker threads,
// so it must also be thread-safe (stateless closures trivially are).
using EngineFactory = std::function<ConnectionPtr()>;

// Worker-aware factory: `worker` is the 0-based index of the campaign
// worker asking, so callers can hand each worker thread its own coverage
// sink or other per-thread state and merge at join. Must be safe to call
// concurrently from distinct workers. Caveat: under stop_on_first_finding
// with workers > 1, shards past the terminating database may run
// speculatively before the stop propagates — their results are discarded
// from the merged report (which stays deterministic), but any side effects
// they left in external sinks are not rolled back, so sink contents are
// timing-dependent in that mode. Merge external sinks only in runs without
// early exit (the bench_table4 pattern).
using WorkerEngineFactory = std::function<ConnectionPtr(int worker)>;

const char* DialectName(Dialect d);

}  // namespace pqs

#endif  // PQS_SRC_ENGINE_CONNECTION_H_
