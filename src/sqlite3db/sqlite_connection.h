// Real-SQLite adapter: pqs::Connection over an in-memory libsqlite3
// database.
//
// Statements are rendered to SQL text (src/sqlparser) and executed through
// the prepared-statement API; result values come back as typed SqlValues.
// SELECTs are prepared once and cached per *parameterized template*
// (filter literals become `?` and are bound per execution): the PQS loop
// probes every FROM table with the identical `SELECT * FROM tN` before
// each query (pivot selection), and the NoREC/TLP rewrite families repeat
// the same query shapes with fresh literals, so reset-bind-rerun beats
// re-preparing (the v2 interface transparently re-prepares on schema
// change, so caching across DDL is safe). When the build has no libsqlite3
// (PQS_HAVE_SQLITE3 == 0)
// the class still exists so the benches compile unchanged, but every
// Execute reports kUnsupported and the runner skips out gracefully.
#ifndef PQS_SRC_SQLITE3DB_SQLITE_CONNECTION_H_
#define PQS_SRC_SQLITE3DB_SQLITE_CONNECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/connection.h"
#include "src/sqlast/ast.h"

struct sqlite3;       // avoid leaking sqlite3.h into every bench TU
struct sqlite3_stmt;

namespace pqs {

class SqliteConnection : public Connection {
 public:
  SqliteConnection();
  ~SqliteConnection() override;

  SqliteConnection(const SqliteConnection&) = delete;
  SqliteConnection& operator=(const SqliteConnection&) = delete;

  StatementResult Execute(const Stmt& stmt) override;
  Dialect dialect() const override { return Dialect::kSqliteFlex; }
  std::string EngineName() const override;
  bool alive() const override { return alive_; }
  // In-place reset: rolls back any transaction an aborted session left
  // open, drops every user object, and clears the statement cache.
  bool Reset() override;

  // Statement-cache controls (bench_throughput measures the cache off/on).
  void set_statement_cache(bool enabled);
  uint64_t statement_cache_hits() const { return cache_hits_; }
  uint64_t statement_cache_misses() const { return cache_misses_; }
  // Subset tallies for metamorphic rewrites (SelectStmt::meta_rewrite —
  // NoREC's two queries and TLP's partitions): the NoREC/TLP loops re-issue
  // the same rewritten texts across checks, so these show whether the cache
  // capacity holds the rewrite working set too (bench_throughput reports
  // them alongside the totals).
  uint64_t meta_statement_cache_hits() const { return meta_cache_hits_; }
  uint64_t meta_statement_cache_misses() const { return meta_cache_misses_; }

  // libsqlite3 version string, or "unavailable" in a sqlite3-less build.
  static std::string LibraryVersion();
  static bool Available();

 private:
  struct CachedStmt {
    std::string sql;
    sqlite3_stmt* stmt = nullptr;
  };

  void ClearStatementCache();

  sqlite3* db_ = nullptr;
  bool alive_ = true;
  bool cache_enabled_ = true;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t meta_cache_hits_ = 0;
  uint64_t meta_cache_misses_ = 0;
  // Small MRU list (front = most recent); linear scan beats hashing at
  // this size, and the PQS workload repeats only a handful of SELECT
  // templates.
  std::vector<CachedStmt> cache_;
  // Reused render buffers: one SQL text and one bind list per Execute,
  // recycled across calls so rendering stops allocating per statement.
  std::string sql_buf_;
  std::vector<const SqlValue*> param_buf_;
};

}  // namespace pqs

#endif  // PQS_SRC_SQLITE3DB_SQLITE_CONNECTION_H_
