// Real-SQLite adapter: pqs::Connection over an in-memory libsqlite3
// database.
//
// Statements are rendered to SQL text (src/sqlparser) and executed through
// the prepared-statement API; result values come back as typed SqlValues.
// When the build has no libsqlite3 (PQS_HAVE_SQLITE3 == 0) the class still
// exists so the benches compile unchanged, but every Execute reports
// kUnsupported and the runner skips out gracefully.
#ifndef PQS_SRC_SQLITE3DB_SQLITE_CONNECTION_H_
#define PQS_SRC_SQLITE3DB_SQLITE_CONNECTION_H_

#include <string>

#include "src/engine/connection.h"
#include "src/sqlast/ast.h"

struct sqlite3;  // avoid leaking sqlite3.h into every bench TU

namespace pqs {

class SqliteConnection : public Connection {
 public:
  SqliteConnection();
  ~SqliteConnection() override;

  SqliteConnection(const SqliteConnection&) = delete;
  SqliteConnection& operator=(const SqliteConnection&) = delete;

  StatementResult Execute(const Stmt& stmt) override;
  Dialect dialect() const override { return Dialect::kSqliteFlex; }
  std::string EngineName() const override;
  bool alive() const override { return alive_; }

  // libsqlite3 version string, or "unavailable" in a sqlite3-less build.
  static std::string LibraryVersion();
  static bool Available();

 private:
  sqlite3* db_ = nullptr;
  bool alive_ = true;
};

}  // namespace pqs

#endif  // PQS_SRC_SQLITE3DB_SQLITE_CONNECTION_H_
