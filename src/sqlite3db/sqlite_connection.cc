#include "src/sqlite3db/sqlite_connection.h"

#include <utility>

#include "src/obs/telemetry.h"
#include "src/sqlparser/render.h"

#ifndef PQS_HAVE_SQLITE3
#define PQS_HAVE_SQLITE3 0
#endif

#if PQS_HAVE_SQLITE3
#include <sqlite3.h>
#endif

namespace pqs {

#if PQS_HAVE_SQLITE3

SqliteConnection::SqliteConnection() {
  if (sqlite3_open(":memory:", &db_) != SQLITE_OK) {
    alive_ = false;
    if (db_ != nullptr) {
      sqlite3_close(db_);
      db_ = nullptr;
    }
  }
}

SqliteConnection::~SqliteConnection() {
  ClearStatementCache();
  if (db_ != nullptr) sqlite3_close(db_);
}

void SqliteConnection::ClearStatementCache() {
  if (!cache_.empty()) {
    obs::Count(obs::Counter::kCacheInvalidations);
    obs::Emit(obs::EventKind::kCacheInvalidation,
              static_cast<uint32_t>(cache_.size()));
  }
  for (CachedStmt& entry : cache_) {
    if (entry.stmt != nullptr) sqlite3_finalize(entry.stmt);
  }
  cache_.clear();
}

void SqliteConnection::set_statement_cache(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) ClearStatementCache();
}

bool SqliteConnection::Reset() {
  if (db_ == nullptr) return false;
  // Cached prepared statements hold the old schema; drop them first so no
  // statement can observe the teardown below.
  ClearStatementCache();
  // An aborted session may have left a transaction open. DDL inside a
  // transaction would be rolled back with it, so resolve the transaction
  // before dropping objects.
  if (sqlite3_get_autocommit(db_) == 0 &&
      sqlite3_exec(db_, "ROLLBACK", nullptr, nullptr, nullptr) != SQLITE_OK) {
    return false;
  }
  // Drop every user table (their indexes and triggers go with them).
  sqlite3_stmt* list = nullptr;
  if (sqlite3_prepare_v2(db_,
                         "SELECT name FROM sqlite_master WHERE type = "
                         "'table' AND name NOT LIKE 'sqlite_%'",
                         -1, &list, nullptr) != SQLITE_OK) {
    return false;
  }
  std::vector<std::string> tables;
  while (sqlite3_step(list) == SQLITE_ROW) {
    const unsigned char* name = sqlite3_column_text(list, 0);
    if (name != nullptr) {
      tables.push_back(reinterpret_cast<const char*>(name));
    }
  }
  sqlite3_finalize(list);
  for (const std::string& table : tables) {
    std::string drop = "DROP TABLE IF EXISTS \"" + table + "\"";
    if (sqlite3_exec(db_, drop.c_str(), nullptr, nullptr, nullptr) !=
        SQLITE_OK) {
      return false;
    }
  }
  alive_ = true;
  return true;
}

std::string SqliteConnection::EngineName() const {
  return std::string("sqlite-") + sqlite3_libversion();
}

std::string SqliteConnection::LibraryVersion() {
  return sqlite3_libversion();
}

bool SqliteConnection::Available() { return true; }

StatementResult SqliteConnection::Execute(const Stmt& stmt) {
  if (!alive_ || db_ == nullptr) {
    return StatementResult::Failure(StatementStatus::kCrash,
                                    "sqlite connection unavailable");
  }
  // Session switches are a scheduling construct of the interleaved
  // transaction stream; they render as a bare comment, which prepares to a
  // null statement. One real connection is one session, so succeed without
  // touching the engine.
  if (stmt.kind() == StmtKind::kSetSession) return StatementResult::Ok();
  // No cache invalidation on DDL/DML: sqlite3_prepare_v2 statements
  // transparently re-prepare themselves when the schema changes
  // (SQLITE_SCHEMA handling is internal to the v2 interface), and data
  // changes are always visible to a reset statement. Dropping the cache on
  // every UPDATE/DELETE/DDL — as an earlier revision did — made the
  // mutation-heavy workload churn prepares and erased the cache's win.
  //
  // SELECTs are cached by *parameterized template*: literals in the filter
  // positions render as `?` and are bound per execution, so the NoREC/TLP
  // rewrite families (same shape, fresh literals every check) and the
  // pivot probes all collapse onto a handful of prepared statements.
  bool cacheable = cache_enabled_ && stmt.kind() == StmtKind::kSelect;
  // Metamorphic rewrites are tallied separately (as a subset of the
  // totals) so the bench can tell whether the NoREC/TLP rewrite texts
  // revisit the cache or churn it.
  bool meta = stmt.kind() == StmtKind::kSelect &&
              static_cast<const SelectStmt&>(stmt).meta_rewrite;
  sql_buf_.clear();
  param_buf_.clear();
  {
    // Rendering AST → SQL text happens only on this adapter (MiniDB
    // executes the AST directly), so the kRender phase profiles it here.
    obs::ScopedPhase span(obs::Phase::kRender);
    if (cacheable) {
      RenderSelectTemplate(static_cast<const SelectStmt&>(stmt),
                           Dialect::kSqliteFlex, &sql_buf_, &param_buf_);
    } else {
      RenderStmtTo(stmt, Dialect::kSqliteFlex, &sql_buf_);
    }
  }

  // Prepare-once / reset-and-rerun (MRU-ordered; hits move to the front).
  sqlite3_stmt* prepared = nullptr;
  bool in_cache = false;
  if (cacheable) {
    for (size_t i = 0; i < cache_.size(); ++i) {
      if (cache_[i].sql != sql_buf_) continue;
      prepared = cache_[i].stmt;
      sqlite3_reset(prepared);
      if (i != 0) {
        CachedStmt hit = std::move(cache_[i]);
        cache_.erase(cache_.begin() + static_cast<long>(i));
        cache_.insert(cache_.begin(), std::move(hit));
      }
      in_cache = true;
      ++cache_hits_;
      obs::Count(obs::Counter::kStmtCacheHits);
      if (meta) ++meta_cache_hits_;
      break;
    }
  }
  if (prepared == nullptr) {
    int prc =
        sqlite3_prepare_v2(db_, sql_buf_.c_str(), -1, &prepared, nullptr);
    if (prc != SQLITE_OK) {
      StatementStatus status = prc == SQLITE_CONSTRAINT
                                   ? StatementStatus::kConstraintViolation
                                   : StatementStatus::kError;
      return StatementResult::Failure(status, sqlite3_errmsg(db_));
    }
    if (cacheable) {
      ++cache_misses_;
      obs::Count(obs::Counter::kStmtCacheMisses);
      if (meta) ++meta_cache_misses_;
      cache_.insert(cache_.begin(), CachedStmt{sql_buf_, prepared});
      // 32 slots: the pivot-probe SELECTs plus the NoREC/TLP rewrite
      // working set (up to four templates per TLP check) fit without
      // eviction churn; linear MRU scan is still cheap at this size.
      constexpr size_t kMaxCachedStatements = 32;
      while (cache_.size() > kMaxCachedStatements) {
        sqlite3_finalize(cache_.back().stmt);
        cache_.pop_back();
      }
      in_cache = true;
    }
  }
  // Bind the filter literals (placeholder i ← param_buf_[i-1]). TRANSIENT
  // text: the AST the pointers borrow can die before the cached statement.
  for (size_t i = 0; i < param_buf_.size(); ++i) {
    const SqlValue& v = *param_buf_[i];
    int slot = static_cast<int>(i) + 1;
    switch (v.cls) {
      case StorageClass::kNull:
        sqlite3_bind_null(prepared, slot);
        break;
      case StorageClass::kInteger:
        sqlite3_bind_int64(prepared, slot, v.i);
        break;
      case StorageClass::kReal:
        sqlite3_bind_double(prepared, slot, v.r);
        break;
      case StorageClass::kText:
        sqlite3_bind_text(prepared, slot, v.t.c_str(),
                          static_cast<int>(v.t.size()), SQLITE_TRANSIENT);
        break;
    }
  }
  // A cached statement is reset (kept prepared) instead of finalized;
  // bindings are cleared so no stale literal outlives this execution.
  auto release = [&]() {
    if (in_cache) {
      sqlite3_reset(prepared);
      sqlite3_clear_bindings(prepared);
    } else {
      sqlite3_finalize(prepared);
    }
  };
  StatementResult result;
  int rc;
  int columns = sqlite3_column_count(prepared);
  for (int c = 0; c < columns; ++c) {
    const char* name = sqlite3_column_name(prepared, c);
    result.column_names.push_back(name != nullptr ? name : "");
  }
  while ((rc = sqlite3_step(prepared)) == SQLITE_ROW) {
    std::vector<SqlValue> row;
    row.reserve(static_cast<size_t>(columns));
    for (int c = 0; c < columns; ++c) {
      switch (sqlite3_column_type(prepared, c)) {
        case SQLITE_NULL:
          row.push_back(SqlValue::Null());
          break;
        case SQLITE_INTEGER:
          row.push_back(SqlValue::Int(sqlite3_column_int64(prepared, c)));
          break;
        case SQLITE_FLOAT:
          row.push_back(SqlValue::Real(sqlite3_column_double(prepared, c)));
          break;
        default: {
          const unsigned char* text = sqlite3_column_text(prepared, c);
          row.push_back(SqlValue::Text(
              text != nullptr ? reinterpret_cast<const char*>(text) : ""));
          break;
        }
      }
    }
    result.rows.push_back(std::move(row));
  }
  if (rc != SQLITE_DONE) {
    int base = rc & 0xff;
    std::string message = sqlite3_errmsg(db_);
    release();
    StatementStatus status = base == SQLITE_CONSTRAINT
                                 ? StatementStatus::kConstraintViolation
                                 : StatementStatus::kError;
    return StatementResult::Failure(status, message);
  }
  release();
  return result;
}

#else  // !PQS_HAVE_SQLITE3

SqliteConnection::SqliteConnection() { alive_ = true; }
SqliteConnection::~SqliteConnection() = default;

void SqliteConnection::ClearStatementCache() {}
void SqliteConnection::set_statement_cache(bool enabled) {
  cache_enabled_ = enabled;
}

bool SqliteConnection::Reset() { return false; }

std::string SqliteConnection::EngineName() const { return "sqlite-stub"; }

std::string SqliteConnection::LibraryVersion() { return "unavailable"; }

bool SqliteConnection::Available() { return false; }

StatementResult SqliteConnection::Execute(const Stmt& stmt) {
  (void)stmt;
  return StatementResult::Failure(
      StatementStatus::kUnsupported,
      "built without libsqlite3; SqliteConnection is a stub");
}

#endif  // PQS_HAVE_SQLITE3

}  // namespace pqs
