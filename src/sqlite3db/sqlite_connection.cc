#include "src/sqlite3db/sqlite_connection.h"

#include "src/sqlparser/render.h"

#ifndef PQS_HAVE_SQLITE3
#define PQS_HAVE_SQLITE3 0
#endif

#if PQS_HAVE_SQLITE3
#include <sqlite3.h>
#endif

namespace pqs {

#if PQS_HAVE_SQLITE3

SqliteConnection::SqliteConnection() {
  if (sqlite3_open(":memory:", &db_) != SQLITE_OK) {
    alive_ = false;
    if (db_ != nullptr) {
      sqlite3_close(db_);
      db_ = nullptr;
    }
  }
}

SqliteConnection::~SqliteConnection() {
  if (db_ != nullptr) sqlite3_close(db_);
}

std::string SqliteConnection::EngineName() const {
  return std::string("sqlite-") + sqlite3_libversion();
}

std::string SqliteConnection::LibraryVersion() {
  return sqlite3_libversion();
}

bool SqliteConnection::Available() { return true; }

StatementResult SqliteConnection::Execute(const Stmt& stmt) {
  if (!alive_ || db_ == nullptr) {
    return StatementResult::Failure(StatementStatus::kCrash,
                                    "sqlite connection unavailable");
  }
  std::string sql = RenderStmt(stmt, Dialect::kSqliteFlex);
  sqlite3_stmt* prepared = nullptr;
  int rc = sqlite3_prepare_v2(db_, sql.c_str(), -1, &prepared, nullptr);
  if (rc != SQLITE_OK) {
    StatementStatus status = rc == SQLITE_CONSTRAINT
                                 ? StatementStatus::kConstraintViolation
                                 : StatementStatus::kError;
    return StatementResult::Failure(status, sqlite3_errmsg(db_));
  }
  StatementResult result;
  int columns = sqlite3_column_count(prepared);
  for (int c = 0; c < columns; ++c) {
    const char* name = sqlite3_column_name(prepared, c);
    result.column_names.push_back(name != nullptr ? name : "");
  }
  while ((rc = sqlite3_step(prepared)) == SQLITE_ROW) {
    std::vector<SqlValue> row;
    row.reserve(static_cast<size_t>(columns));
    for (int c = 0; c < columns; ++c) {
      switch (sqlite3_column_type(prepared, c)) {
        case SQLITE_NULL:
          row.push_back(SqlValue::Null());
          break;
        case SQLITE_INTEGER:
          row.push_back(SqlValue::Int(sqlite3_column_int64(prepared, c)));
          break;
        case SQLITE_FLOAT:
          row.push_back(SqlValue::Real(sqlite3_column_double(prepared, c)));
          break;
        default: {
          const unsigned char* text = sqlite3_column_text(prepared, c);
          row.push_back(SqlValue::Text(
              text != nullptr ? reinterpret_cast<const char*>(text) : ""));
          break;
        }
      }
    }
    result.rows.push_back(std::move(row));
  }
  if (rc != SQLITE_DONE) {
    int base = rc & 0xff;
    sqlite3_finalize(prepared);
    StatementStatus status = base == SQLITE_CONSTRAINT
                                 ? StatementStatus::kConstraintViolation
                                 : StatementStatus::kError;
    return StatementResult::Failure(status, sqlite3_errmsg(db_));
  }
  sqlite3_finalize(prepared);
  return result;
}

#else  // !PQS_HAVE_SQLITE3

SqliteConnection::SqliteConnection() { alive_ = true; }
SqliteConnection::~SqliteConnection() = default;

std::string SqliteConnection::EngineName() const { return "sqlite-stub"; }

std::string SqliteConnection::LibraryVersion() { return "unavailable"; }

bool SqliteConnection::Available() { return false; }

StatementResult SqliteConnection::Execute(const Stmt& stmt) {
  (void)stmt;
  return StatementResult::Failure(
      StatementStatus::kUnsupported,
      "built without libsqlite3; SqliteConnection is a stub");
}

#endif  // PQS_HAVE_SQLITE3

}  // namespace pqs
