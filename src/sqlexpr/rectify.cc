#include "src/sqlexpr/rectify.h"

#include <utility>

namespace pqs {

namespace {

// True when the node kind carries its own NOT flag whose flip is an exact
// three-valued negation of the node (NULL stays NULL in every case).
bool IsNegatable(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIsNull:
    case ExprKind::kInList:
    case ExprKind::kBetween:
    case ExprKind::kLike:
      return true;
    default:
      return false;
  }
}

}  // namespace

ExprPtr RectifyToTrue(ExprPtr predicate, Bool3 raw) {
  if (raw == Bool3::kTrue) return predicate;
  if (raw == Bool3::kFalse) {
    // NOT (NOT φ) → φ and flipping a negatable node's own flag are both
    // exact involutions under three-valued logic.
    if (predicate->kind == ExprKind::kUnary &&
        predicate->uop == UnaryOp::kNot) {
      return std::move(predicate->args[0]);
    }
    if (IsNegatable(*predicate)) {
      predicate->negated = !predicate->negated;
      return predicate;
    }
    return MakeUnary(UnaryOp::kNot, std::move(predicate));
  }
  return MakeIsNull(std::move(predicate), /*negated=*/false);
}

bool RectifyOnPivot(ExprPtr* predicate, const RowView& pivot,
                    const EvalContext& ctx, Bool3* raw_out) {
  bool error = false;
  Bool3 raw = EvaluatePredicate(**predicate, pivot, ctx, &error);
  if (error) return false;
  if (raw_out != nullptr) *raw_out = raw;
  *predicate = RectifyToTrue(std::move(*predicate), raw);
  return true;
}

int ExprDepthBucket(int depth) {
  int bucket = (depth - 1) / 2;
  if (bucket < 0) bucket = 0;
  if (bucket >= kExprDepthBuckets) bucket = kExprDepthBuckets - 1;
  return bucket;
}

}  // namespace pqs
