// Dialect-aware scalar-function registry of the typed expression subsystem.
//
// One FunctionSig per FuncId records everything the rest of the stack needs
// to stay agreement-exact across layers: the per-dialect rendering name
// (SQLite spells scalar MIN/MAX as MIN/MAX, MySQL and PostgreSQL as
// LEAST/GREATEST), per-dialect availability (PostgreSQL has no IFNULL),
// arity bounds, the NULL-propagation rule the shared evaluator applies
// before dispatch, and the argument typing class the generator must honor
// so kPostgresStrict expressions stay statically type-correct (which is
// what keeps the error oracle sound over function calls).
//
// The registry is the single source of truth consulted by the generator
// (what to emit per dialect), the renderer (how to spell it), the
// evaluator (how NULLs propagate), and the rectifier's soundness argument
// (every registered function is total over the arguments the generator
// feeds it, so a rectified wrapper around any function result is always
// evaluable on the pivot).
#ifndef PQS_SRC_SQLEXPR_REGISTRY_H_
#define PQS_SRC_SQLEXPR_REGISTRY_H_

#include <vector>

#include "src/engine/connection.h"
#include "src/sqlast/ast.h"

namespace pqs {

// How a function treats NULL arguments. kPropagate: any NULL argument makes
// the result NULL before the function body runs (ABS, LENGTH, UPPER, LOWER,
// LEAST, GREATEST — the SQL-standard rule). kCustom: the function defines
// its own NULL behavior (COALESCE, NULLIF, IFNULL exist *because* of it).
enum class NullRule : uint8_t { kPropagate, kCustom };

// Static argument typing class the generator enforces. kNumeric/kText pin
// every argument to that affinity class; kUniform requires all arguments to
// share one affinity class (numeric vs text), whichever the call site picks.
enum class ArgClass : uint8_t { kNumeric, kText, kUniform };

struct FunctionSig {
  FuncId id = FuncId::kAbs;
  // Rendering name per dialect, indexed by static_cast<int>(Dialect).
  const char* names[3] = {nullptr, nullptr, nullptr};
  int min_args = 1;
  int max_args = 1;
  NullRule null_rule = NullRule::kPropagate;
  ArgClass arg_class = ArgClass::kNumeric;
  // Bit per dialect (1u << static_cast<int>(Dialect)).
  uint8_t dialect_mask = 0x7;

  bool available(Dialect d) const {
    return (dialect_mask & (1u << static_cast<unsigned>(d))) != 0;
  }
  const char* NameFor(Dialect d) const {
    return names[static_cast<int>(d)];
  }
};

// All registered functions, in FuncId order.
const std::vector<FunctionSig>& FunctionRegistry();

// Signature for one function (total: FuncId is a closed enum).
const FunctionSig& LookupFunction(FuncId id);

// Registered functions available in the given dialect, in FuncId order.
std::vector<const FunctionSig*> FunctionsForDialect(Dialect d);

// Spelling of a CAST target type per dialect (e.g. Affinity::kInteger →
// INTEGER / SIGNED / INTEGER).
const char* CastTypeName(Affinity affinity, Dialect d);

// COLLATE operand spelling (BINARY / NOCASE).
const char* CollationName(Collation collation);

}  // namespace pqs

#endif  // PQS_SRC_SQLEXPR_REGISTRY_H_
