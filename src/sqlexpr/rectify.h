// Algorithm-3 rectification over the full typed expression grammar.
//
// Rectification wraps an arbitrary boolean expression φ so it evaluates
// TRUE on the pivot row: TRUE → φ, FALSE → ¬φ, NULL → φ IS NULL. The
// wrapper is sound for *any* expression the evaluator can run — function
// results, CASE arms, CAST and COLLATE operands included — because it only
// depends on φ's three-valued outcome, never on φ's shape. The function
// registry backs the soundness argument: every registered function is
// total over the arguments the generator emits (the registry's ArgClass
// typing is what the generator enforces per dialect), so the raw
// evaluation on the pivot cannot fail where the engine's would succeed.
//
// The FALSE branch is structure-aware rather than a blind NOT wrap: the
// negatable node kinds (IS NULL, IN, BETWEEN, LIKE) flip their own negated
// flag, and NOT φ unwraps to φ — both exact three-valued involutions —
// which keeps rectified SQL (and therefore reduced test cases) small.
#ifndef PQS_SRC_SQLEXPR_RECTIFY_H_
#define PQS_SRC_SQLEXPR_RECTIFY_H_

#include "src/interp/eval.h"
#include "src/sqlast/ast.h"
#include "src/sqlvalue/value.h"

namespace pqs {

// Wraps `predicate` per Algorithm 3 given its raw outcome on the pivot.
ExprPtr RectifyToTrue(ExprPtr predicate, Bool3 raw);

// Evaluates `*predicate` on the pivot row under `ctx` (the runner passes
// reference semantics) and replaces it with its rectified form. Returns
// false on an evaluation error — the generator statically prevents this,
// so callers treat it as a defensive skip. `*raw_out` (optional) receives
// the raw three-valued outcome for the Algorithm-3 branch tallies.
bool RectifyOnPivot(ExprPtr* predicate, const RowView& pivot,
                    const EvalContext& ctx, Bool3* raw_out);

// Histogram bucket of an expression depth for RunStats: buckets are depths
// 1-2, 3-4, 5-6, 7-8, and ≥9.
constexpr int kExprDepthBuckets = 5;
int ExprDepthBucket(int depth);

}  // namespace pqs

#endif  // PQS_SRC_SQLEXPR_RECTIFY_H_
