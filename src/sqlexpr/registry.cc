#include "src/sqlexpr/registry.h"

namespace pqs {

namespace {

constexpr uint8_t kAllDialects = 0x7;
constexpr uint8_t kSqliteMysql =
    (1u << static_cast<unsigned>(Dialect::kSqliteFlex)) |
    (1u << static_cast<unsigned>(Dialect::kMysqlLike));

const std::vector<FunctionSig>& BuildRegistry() {
  // Order must match FuncId so LookupFunction can index directly.
  static const std::vector<FunctionSig> registry = {
      {FuncId::kAbs, {"ABS", "ABS", "ABS"}, 1, 1, NullRule::kPropagate,
       ArgClass::kNumeric, kAllDialects},
      {FuncId::kLength, {"LENGTH", "LENGTH", "LENGTH"}, 1, 1,
       NullRule::kPropagate, ArgClass::kText, kAllDialects},
      {FuncId::kUpper, {"UPPER", "UPPER", "UPPER"}, 1, 1,
       NullRule::kPropagate, ArgClass::kText, kAllDialects},
      {FuncId::kLower, {"LOWER", "LOWER", "LOWER"}, 1, 1,
       NullRule::kPropagate, ArgClass::kText, kAllDialects},
      {FuncId::kCoalesce, {"COALESCE", "COALESCE", "COALESCE"}, 2, 4,
       NullRule::kCustom, ArgClass::kUniform, kAllDialects},
      {FuncId::kNullif, {"NULLIF", "NULLIF", "NULLIF"}, 2, 2,
       NullRule::kCustom, ArgClass::kUniform, kAllDialects},
      // SQLite's multi-argument scalar MIN/MAX are LEAST/GREATEST
      // elsewhere; one FuncId, three spellings.
      {FuncId::kLeast, {"MIN", "LEAST", "LEAST"}, 2, 3,
       NullRule::kPropagate, ArgClass::kUniform, kAllDialects},
      {FuncId::kGreatest, {"MAX", "GREATEST", "GREATEST"}, 2, 3,
       NullRule::kPropagate, ArgClass::kUniform, kAllDialects},
      // Genuine availability gap: PostgreSQL has no IFNULL (COALESCE only).
      {FuncId::kIfnull, {"IFNULL", "IFNULL", nullptr}, 2, 2,
       NullRule::kCustom, ArgClass::kUniform, kSqliteMysql},
  };
  return registry;
}

}  // namespace

const std::vector<FunctionSig>& FunctionRegistry() { return BuildRegistry(); }

const FunctionSig& LookupFunction(FuncId id) {
  return FunctionRegistry()[static_cast<size_t>(id)];
}

std::vector<const FunctionSig*> FunctionsForDialect(Dialect d) {
  std::vector<const FunctionSig*> out;
  for (const FunctionSig& sig : FunctionRegistry()) {
    if (sig.available(d)) out.push_back(&sig);
  }
  return out;
}

const char* CastTypeName(Affinity affinity, Dialect d) {
  switch (affinity) {
    case Affinity::kInteger:
      return d == Dialect::kMysqlLike ? "SIGNED" : "INTEGER";
    case Affinity::kReal:
      return d == Dialect::kMysqlLike
                 ? "DOUBLE"
                 : (d == Dialect::kPostgresStrict ? "DOUBLE PRECISION"
                                                  : "REAL");
    case Affinity::kText:
      return d == Dialect::kMysqlLike ? "CHAR" : "TEXT";
  }
  return "TEXT";
}

const char* CollationName(Collation collation) {
  switch (collation) {
    case Collation::kBinary:
      return "BINARY";
    case Collation::kNocase:
      return "NOCASE";
  }
  return "BINARY";
}

}  // namespace pqs
