// Ablation: row-count sweep (§3.4 "Number of rows").
//
// The paper found most bugs with 10–30 rows per table: fewer rows → less
// state to trip over; more rows → joins explode and throughput collapses.
// This bench sweeps the row budget and reports (a) detection time for a
// representative bug and (b) query throughput, reproducing the trade-off.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/minidb/database.h"
#include "src/pqs/runner.h"

namespace pqs {

void PrintRowSweep() {
  bench::PrintHeader("Ablation: rows-per-table sweep (Listing 1 bug hunt)");
  printf("%-12s %-14s %-18s\n", "max rows", "detected", "statements used");
  for (int rows : {2, 6, 12, 30, 80}) {
    RunnerOptions opts;
    opts.seed = 31;
    opts.databases = 60;
    opts.queries_per_database = 25;
    opts.stop_on_first_finding = true;
    opts.gen.min_rows = 1;
    opts.gen.max_rows = rows;
    EngineFactory factory = []() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(
          Dialect::kSqliteFlex,
          BugConfig::Single(BugId::kPartialIndexIsNotInference));
    };
    PqsRunner runner(factory, opts);
    RunReport report = runner.Run();
    printf("%-12d %-14s %llu\n", rows,
           report.findings.empty() ? "no" : "yes",
           static_cast<unsigned long long>(
               report.stats.statements_executed));
  }
}

void BM_QueryThroughputByRows(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  uint64_t queries = 0;
  uint64_t seed = 7;
  for (auto _ : state) {
    RunnerOptions opts;
    opts.seed = seed++;
    opts.databases = 1;
    opts.queries_per_database = 20;
    opts.gen.min_rows = rows;
    opts.gen.max_rows = rows;
    opts.gen.max_tables = 3;
    EngineFactory factory = []() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
    };
    PqsRunner runner(factory, opts);
    queries += runner.Run().stats.queries_checked;
  }
  state.counters["queries_per_second"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QueryThroughputByRows)
    ->Arg(2)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace pqs

int main(int argc, char** argv) {
  pqs::PrintRowSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
