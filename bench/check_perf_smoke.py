#!/usr/bin/env python3
"""CI perf-smoke gate over BENCH_throughput.json.

Fails (exit 1) when the bench JSON is missing the tail-latency /
zipf-workload structure DESIGN §11 promises, or when the 1-worker sweep
throughput drops more than 30% below the checked-in floor
(bench/throughput_floor.json). Keys are asserted by name so a refactor
that silently drops a reported metric breaks CI, not the perf trajectory.

Usage: check_perf_smoke.py BENCH_throughput.json throughput_floor.json
"""

import json
import sys

LATENCY_KEYS = ("count", "mean_ms", "p50_ms", "p99_ms", "p999_ms")


def fail(msg):
    print("perf-smoke FAIL: " + msg)
    sys.exit(1)


def check_latency(obj, where):
    if not isinstance(obj, dict):
        fail("%s is not an object" % where)
    for key in LATENCY_KEYS:
        if key not in obj:
            fail("%s is missing %r" % (where, key))
    if obj["count"] <= 0:
        fail("%s recorded no samples" % where)


def main(argv):
    if len(argv) != 3:
        fail("usage: check_perf_smoke.py BENCH.json FLOOR.json")
    with open(argv[1]) as f:
        bench = json.load(f)
    with open(argv[2]) as f:
        floor = json.load(f)

    sweep = bench.get("worker_sweep")
    if not sweep:
        fail("worker_sweep missing or empty")
    for point in sweep:
        check_latency(point.get("session_latency"),
                      "worker_sweep[workers=%s].session_latency"
                      % point.get("workers"))

    zipf = bench.get("zipf_workload")
    if not isinstance(zipf, dict):
        fail("zipf_workload section missing")
    if not zipf.get("buckets"):
        fail("zipf_workload.buckets missing or empty")
    for bucket in zipf["buckets"]:
        check_latency(bucket.get("session_latency"),
                      "zipf_workload.buckets[max_rows=%s].session_latency"
                      % bucket.get("max_rows"))
    check_latency(zipf.get("session_latency"), "zipf_workload.session_latency")

    scan = bench.get("scan_rows_sweep")
    if not isinstance(scan, list) or not scan:
        fail("scan_rows_sweep missing or empty")
    sizes = sorted(p.get("rows", 0) for p in scan)
    if sizes != [10**4, 10**5, 10**6]:
        fail("scan_rows_sweep sizes are %s, expected 10^4/10^5/10^6" % sizes)
    scan_floor = floor["scan_rows_per_second"]
    scan_minimum = 0.7 * scan_floor
    for point in scan:
        where = "scan_rows_sweep[rows=%s]" % point.get("rows")
        check_latency(point.get("query_latency"), where + ".query_latency")
        rps = point.get("rows_per_second", 0.0)
        if rps < scan_minimum:
            fail("%s: %.0f rows/sec is below %.0f (70%% of the checked-in "
                 "floor %.0f)" % (where, rps, scan_minimum, scan_floor))

    txn = bench.get("txn_workload")
    if not isinstance(txn, list) or not txn:
        fail("txn_workload missing or empty")
    sessions = sorted(p.get("sessions", 0) for p in txn)
    if sessions != [2, 3, 4]:
        fail("txn_workload sessions are %s, expected K in {2, 3, 4}" % sessions)
    for point in txn:
        where = "txn_workload[sessions=%s]" % point.get("sessions")
        if point.get("commits", 0) <= 0:
            fail("%s committed no transactions" % where)
        if point.get("serial_replays", 0) <= 0:
            fail("%s ran no serial-replay comparisons" % where)
        if point.get("statements_per_second", 0.0) <= 0:
            fail("%s reports no throughput" % where)

    telemetry = bench.get("telemetry")
    if not isinstance(telemetry, dict):
        fail("telemetry section missing")
    profile = telemetry.get("phase_profile")
    if not isinstance(profile, dict):
        fail("telemetry.phase_profile section missing")
    # Stages every minidb run exercises must have recorded spans. "render"
    # is legitimately 0 on minidb (only the sqlite3 adapter renders SQL
    # text) and "reduce" only fires on findings, so neither is gated.
    for phase in ("generate", "rectify", "engine_execute",
                  "ground_truth_replay", "oracle_check"):
        stage = profile.get(phase)
        if not isinstance(stage, dict):
            fail("phase_profile.%s missing" % phase)
        if stage.get("spans", 0) <= 0:
            fail("phase_profile.%s recorded no spans" % phase)
    if "phase_wall_micros" not in telemetry:
        fail("telemetry.phase_wall_micros missing (bench runs opt into "
             "wall-clock spans)")

    overhead = bench.get("telemetry_overhead")
    if not isinstance(overhead, dict):
        fail("telemetry_overhead section missing")
    ratio = overhead.get("throughput_ratio_on_vs_off", 0.0)
    if ratio < 0.95:
        fail("telemetry-on throughput is %.1f%% of telemetry-off "
             "(must stay above 95%%)" % (ratio * 100.0))

    one_worker = [p for p in sweep if p.get("workers") == 1]
    if not one_worker:
        fail("no 1-worker sweep point")
    got = one_worker[0].get("statements_per_second", 0.0)
    floor_value = floor["statements_per_second_1worker"]
    minimum = 0.7 * floor_value
    if got < minimum:
        fail("1-worker throughput %.0f stmts/sec is below %.0f "
             "(70%% of the checked-in floor %.0f)"
             % (got, minimum, floor_value))

    print("perf-smoke OK: 1-worker %.0f stmts/sec (floor %.0f), "
          "latency + zipf keys present" % (got, floor_value))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
