// Table 1 reproduction: the DBMS under test — provenance, size, and age.
//
// The paper lists SQLite / MySQL / PostgreSQL popularity ranks, LOC, release
// year, and age. Our substrate substitutes the two server DBMS with MiniDB
// dialects (see DESIGN.md); this bench prints the equivalent inventory:
// real libsqlite3 version plus per-dialect MiniDB engine statistics, and a
// micro-benchmark of basic engine operation cost for scale context.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/minidb/database.h"
#include "src/sqlite3db/sqlite_connection.h"

namespace pqs {

void PrintTable1() {
  bench::PrintHeader("Table 1: DBMS under test (paper: popularity/LOC/age)");
  printf("%-28s %-18s %-10s %s\n", "DBMS", "Provenance", "Dialect",
         "Notes");
  printf("%-28s %-18s %-10s %s\n",
         ("sqlite " + SqliteConnection::LibraryVersion()).c_str(),
         "real libsqlite3", "sqlite", "paper: 0.3M LOC, released 2000");
  printf("%-28s %-18s %-10s %s\n", "minidb-mysql", "this repository",
         "mysql", "paper: MySQL 3.8M LOC, released 1995");
  printf("%-28s %-18s %-10s %s\n", "minidb-postgres", "this repository",
         "postgres", "paper: PostgreSQL 1.4M LOC, released 1996");
  printf("(substitution documented in DESIGN.md §2)\n");
}

void BM_EngineStatementBaseline(benchmark::State& state) {
  Dialect dialect = static_cast<Dialect>(state.range(0));
  for (auto _ : state) {
    minidb::Database db(dialect);
    CreateTableStmt ct;
    ct.table_name = "t0";
    ColumnDef col;
    col.name = "c0";
    col.declared_type = "INT";
    col.affinity = Affinity::kInteger;
    ct.columns.push_back(col);
    benchmark::DoNotOptimize(db.Execute(ct));
    InsertStmt ins;
    ins.table_name = "t0";
    for (int i = 0; i < 10; ++i) {
      ins.rows.push_back({});
      ins.rows.back().push_back(MakeIntLiteral(i));
    }
    benchmark::DoNotOptimize(db.Execute(ins));
    SelectStmt select;
    select.from_tables = {"t0"};
    benchmark::DoNotOptimize(db.Execute(select));
  }
}
BENCHMARK(BM_EngineStatementBaseline)->Arg(0)->Arg(1)->Arg(2);

}  // namespace pqs

int main(int argc, char** argv) {
  pqs::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
