// Latency recorder: per-session samples in, tail percentiles out.
//
// The throughput sweep's headline number (statements/sec) hides tail
// behavior — one database session with a pathological cross product can
// stall a worker while the average stays flat. The runner's
// `session_latency_hook` feeds one wall-clock sample per completed
// database session into a LatencyRecorder; the bench reports p50/p99/p999
// next to the mean so tail regressions are visible in
// BENCH_throughput.json, not just local-run vibes.
#ifndef PQS_BENCH_RECORDER_H_
#define PQS_BENCH_RECORDER_H_

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace pqs {
namespace bench {

// Collects latency samples (seconds) and reports nearest-rank percentiles.
// Record() is thread-safe — the runner fires the session hook from worker
// threads; everything else is meant for the single-threaded reporting
// phase after the run.
class LatencyRecorder {
 public:
  void Record(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(seconds);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  // Nearest-rank percentile (p in [0, 100]) over all recorded samples;
  // 0.0 when nothing was recorded. p=50 on a sorted list of n picks
  // element ceil(n * 0.50) (1-based), the classic nearest-rank rule.
  double Percentile(double p) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    return PercentileOfSorted(sorted, p);
  }

  double Mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0.0;
    double total = 0.0;
    for (double s : samples_) total += s;
    return total / static_cast<double>(samples_.size());
  }

  // JSON object body (no braces) with the standard tail fields, latencies
  // in milliseconds: "count": N, "mean_ms": ..., "p50_ms": ...,
  // "p99_ms": ..., "p999_ms": ... One locked snapshot and one sort serve
  // all four statistics, so the fields describe a single consistent view
  // even if workers are still recording.
  std::string JsonFields() const {
    std::vector<double> sorted;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sorted = samples_;
    }
    std::sort(sorted.begin(), sorted.end());
    double mean = 0.0;
    if (!sorted.empty()) {
      double total = 0.0;
      for (double s : sorted) total += s;
      mean = total / static_cast<double>(sorted.size());
    }
    // Formatted through the shared serializer (src/obs/json.h) so the
    // numeric format matches every other BENCH_*.json section.
    std::string out;
    obs::AppendJsonKey(&out, "count");
    out += std::to_string(sorted.size());
    const struct { const char* key; double ms; } fields[] = {
        {"mean_ms", mean * 1e3},
        {"p50_ms", PercentileOfSorted(sorted, 50) * 1e3},
        {"p99_ms", PercentileOfSorted(sorted, 99) * 1e3},
        {"p999_ms", PercentileOfSorted(sorted, 99.9) * 1e3},
    };
    for (const auto& f : fields) {
      out += ", ";
      obs::AppendJsonKey(&out, f.key);
      out += obs::JsonNumber(f.ms, 4);
    }
    return out;
  }

 private:
  // Nearest-rank over an already-sorted snapshot. The 1-based rank
  // ceil(p/100 * n) is computed exactly in integers: p is taken at
  // per-mille resolution (the finest any caller uses — p999), so
  // rank = ceil(pm * n / 1000) with pm = round(p * 10). The old
  // floating-point version added 0.9999999 as a "ceil" and was off by one
  // at exact integral ranks for some (p, n).
  static double PercentileOfSorted(const std::vector<double>& sorted,
                                   double p) {
    if (sorted.empty()) return 0.0;
    if (p <= 0) return sorted.front();
    if (p >= 100) return sorted.back();
    unsigned long long pm =
        static_cast<unsigned long long>(p * 10.0 + 0.5);  // per-mille
    unsigned long long n = sorted.size();
    unsigned long long rank = (pm * n + 999) / 1000;  // ceil(pm*n/1000)
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    return sorted[rank - 1];
  }

  mutable std::mutex mu_;
  std::vector<double> samples_;
};

}  // namespace bench
}  // namespace pqs

#endif  // PQS_BENCH_RECORDER_H_
