// Table 3 reproduction: which oracle found how many bugs.
//
// Paper:            Contains  Error  SEGFAULT
//   SQLite              46      17       2
//   MySQL               14      10       1
//   PostgreSQL           1       7       1
//   Sum                 61      34       4
//
// We attribute each detected injected bug to the oracle that fired first.
// The target shape: containment dominates overall, the error oracle is a
// strong second, crashes are rare — and PostgreSQL's findings skew to the
// error oracle, exactly as in the paper. A fourth (beyond-paper) column
// counts the metamorphic oracles' findings: the aggregation-pipeline bug
// classes are structurally invisible to containment (a pivot row proves
// nothing about a SUM), so under the default auto family they surface via
// NoREC/TLP instead.
//
// The second table compares the three oracle families head-to-head:
// every bug of every dialect is hunted three times with the family forced
// to PQS containment, NoREC, and TLP, and the table reports how many
// databases each family needed to first detection ("-" = not detected
// within the trimmed budget — the blind spots are the point of the
// comparison). Both tables land in BENCH_table3_oracles.json.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace pqs {

std::string PrintTable3() {
  bench::PrintHeader("Table 3: detected bugs per oracle");
  printf("%-28s %9s %7s %9s %7s\n", "DBMS", "Contains", "Error", "SEGFAULT",
         "Meta");
  size_t sum_contains = 0;
  size_t sum_error = 0;
  size_t sum_crash = 0;
  size_t sum_meta = 0;
  CampaignOptions options = bench::DefaultCampaignOptions();
  // The campaigns run sharded; the merged report is identical to workers=1.
  options.workers = 4;
  std::string rows_json;
  for (Dialect d : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                    Dialect::kPostgresStrict}) {
    CampaignReport report = RunCampaign(d, options);
    size_t contains = report.CountByOracle(OracleKind::kContainment);
    size_t error = report.CountByOracle(OracleKind::kError);
    size_t crash = report.CountByOracle(OracleKind::kCrash);
    size_t meta = report.CountByOracle(OracleKind::kNorec) +
                  report.CountByOracle(OracleKind::kTlp);
    sum_contains += contains;
    sum_error += error;
    sum_crash += crash;
    sum_meta += meta;
    printf("%-28s %9zu %7zu %9zu %7zu\n", bench::DialectDisplayName(d),
           contains, error, crash, meta);
    char buf[224];
    std::snprintf(buf, sizeof buf,
                  "    {\"dbms\": \"%s\", \"contains\": %zu, \"error\": %zu, "
                  "\"segfault\": %zu, \"meta\": %zu},\n",
                  bench::JsonEscape(bench::DialectDisplayName(d)).c_str(),
                  contains, error, crash, meta);
    rows_json += buf;
  }
  printf("%-28s %9zu %7zu %9zu %7zu\n", "Sum", sum_contains, sum_error,
         sum_crash, sum_meta);
  printf("(paper: 61 / 34 / 4 — expect contains > error > segfault, the\n"
         " PostgreSQL row skewed toward the error oracle; Meta is the\n"
         " beyond-paper NoREC/TLP column for the aggregation bug classes)\n");

  char sum_buf[192];
  std::snprintf(sum_buf, sizeof sum_buf,
                "    {\"dbms\": \"Sum\", \"contains\": %zu, \"error\": %zu, "
                "\"segfault\": %zu, \"meta\": %zu}\n",
                sum_contains, sum_error, sum_crash, sum_meta);
  return std::string("  \"rows\": [\n") + rows_json + sum_buf + "  ],\n";
}

// Head-to-head oracle-family comparison: databases to first detection per
// bug class under each forced family.
std::string PrintFamilyLatency() {
  bench::PrintHeader(
      "Oracle families: databases to first detection (PQS / NoREC / TLP)");
  CampaignOptions options = bench::DefaultCampaignOptions();
  options.workers = 4;
  // Trimmed budget: a family that is blind to a bug burns the whole budget
  // before giving up, and this table runs every (bug, family) pair. The
  // intended-family detections land far below this bound (the default
  // auto-family budget stays at DefaultCampaignOptions' value); "-" rows
  // are expected and meaningful.
  options.databases_per_bug = 192;
  // Latency is the metric here; reduction would only add replay time.
  options.reduce = false;

  struct FamilyCol {
    OracleFamily family;
    const char* label;
  };
  const FamilyCol cols[] = {
      {OracleFamily::kContainment, "pqs"},
      {OracleFamily::kNorec, "norec"},
      {OracleFamily::kTlp, "tlp"},
  };

  std::string json = "  \"families\": [\n";
  bool first_row = true;
  for (Dialect d : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                    Dialect::kPostgresStrict}) {
    CampaignReport reports[3];
    for (int f = 0; f < 3; ++f) {
      options.family = cols[f].family;
      reports[f] = RunCampaign(d, options);
    }
    printf("\n%s\n", bench::DialectDisplayName(d));
    printf("  %-28s %8s %8s %8s\n", "bug", "pqs", "norec", "tlp");
    for (size_t b = 0; b < reports[0].results.size(); ++b) {
      printf("  %-28s", reports[0].results[b].name);
      std::string cells;
      for (int f = 0; f < 3; ++f) {
        const BugHuntResult& r = reports[f].results[b];
        if (r.detected) {
          printf(" %8llu", static_cast<unsigned long long>(r.databases_used));
        } else {
          printf(" %8s", "-");
        }
        char cell[96];
        std::snprintf(cell, sizeof cell,
                      "\"%s\": {\"detected\": %s, \"databases\": %llu}",
                      cols[f].label, r.detected ? "true" : "false",
                      static_cast<unsigned long long>(r.databases_used));
        if (f > 0) cells += ", ";
        cells += cell;
      }
      printf("\n");
      char row[384];
      std::snprintf(row, sizeof row, "%s    {\"dbms\": \"%s\", \"bug\": "
                    "\"%s\", %s}",
                    first_row ? "" : ",\n",
                    bench::JsonEscape(bench::DialectDisplayName(d)).c_str(),
                    bench::JsonEscape(reports[0].results[b].name).c_str(),
                    cells.c_str());
      json += row;
      first_row = false;
    }
  }
  printf("\n(databases to first detection; \"-\" = not within %d databases.\n"
         " Containment cannot see the aggregation classes; TLP is their\n"
         " intended finder, NoREC co-detects only where the optimized\n"
         " COUNT(*) path crosses the bug)\n",
         options.databases_per_bug);
  json += "\n  ]\n";
  return json;
}

void BM_FullCampaignOneDialect(benchmark::State& state) {
  CampaignOptions options = bench::DefaultCampaignOptions();
  options.databases_per_bug = 40;  // trimmed budget for the timed loop
  Dialect d = static_cast<Dialect>(state.range(0));
  for (auto _ : state) {
    CampaignReport report = RunCampaign(d, options);
    benchmark::DoNotOptimize(report.DetectedCount());
  }
}
BENCHMARK(BM_FullCampaignOneDialect)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace pqs

int main(int argc, char** argv) {
  std::string rows_json = pqs::PrintTable3();
  std::string families_json = pqs::PrintFamilyLatency();
  pqs::bench::WriteBenchJson(
      "BENCH_table3_oracles.json",
      std::string("{\n  \"bench\": \"table3_oracles\",\n"
                  "  \"paper\": {\"contains\": 61, \"error\": 34, "
                  "\"segfault\": 4},\n") +
          rows_json + families_json + "}");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
