// Table 3 reproduction: which oracle found how many bugs.
//
// Paper:            Contains  Error  SEGFAULT
//   SQLite              46      17       2
//   MySQL               14      10       1
//   PostgreSQL           1       7       1
//   Sum                 61      34       4
//
// We attribute each detected injected bug to the oracle that fired first.
// The target shape: containment dominates overall, the error oracle is a
// strong second, crashes are rare — and PostgreSQL's findings skew to the
// error oracle, exactly as in the paper.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace pqs {

void PrintTable3() {
  bench::PrintHeader("Table 3: detected bugs per oracle");
  printf("%-28s %9s %7s %9s\n", "DBMS", "Contains", "Error", "SEGFAULT");
  size_t sum_contains = 0;
  size_t sum_error = 0;
  size_t sum_crash = 0;
  CampaignOptions options = bench::DefaultCampaignOptions();
  // The campaigns run sharded; the merged report is identical to workers=1.
  options.workers = 4;
  std::string rows_json;
  for (Dialect d : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                    Dialect::kPostgresStrict}) {
    CampaignReport report = RunCampaign(d, options);
    size_t contains = report.CountByOracle(OracleKind::kContainment);
    size_t error = report.CountByOracle(OracleKind::kError);
    size_t crash = report.CountByOracle(OracleKind::kCrash);
    sum_contains += contains;
    sum_error += error;
    sum_crash += crash;
    printf("%-28s %9zu %7zu %9zu\n", bench::DialectDisplayName(d), contains,
           error, crash);
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "    {\"dbms\": \"%s\", \"contains\": %zu, \"error\": %zu, "
                  "\"segfault\": %zu},\n",
                  bench::JsonEscape(bench::DialectDisplayName(d)).c_str(),
                  contains, error, crash);
    rows_json += buf;
  }
  printf("%-28s %9zu %7zu %9zu\n", "Sum", sum_contains, sum_error, sum_crash);
  printf("(paper: 61 / 34 / 4 — expect contains > error > segfault, and the\n"
         " PostgreSQL row skewed toward the error oracle)\n");

  char sum_buf[160];
  std::snprintf(sum_buf, sizeof sum_buf,
                "    {\"dbms\": \"Sum\", \"contains\": %zu, \"error\": %zu, "
                "\"segfault\": %zu}\n",
                sum_contains, sum_error, sum_crash);
  bench::WriteBenchJson(
      "BENCH_table3_oracles.json",
      std::string("{\n  \"bench\": \"table3_oracles\",\n"
                  "  \"paper\": {\"contains\": 61, \"error\": 34, "
                  "\"segfault\": 4},\n  \"rows\": [\n") +
          rows_json + sum_buf + "  ]\n}");
}

void BM_FullCampaignOneDialect(benchmark::State& state) {
  CampaignOptions options = bench::DefaultCampaignOptions();
  options.databases_per_bug = 40;  // trimmed budget for the timed loop
  Dialect d = static_cast<Dialect>(state.range(0));
  for (auto _ : state) {
    CampaignReport report = RunCampaign(d, options);
    benchmark::DoNotOptimize(report.DetectedCount());
  }
}
BENCHMARK(BM_FullCampaignOneDialect)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace pqs

int main(int argc, char** argv) {
  pqs::PrintTable3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
