// Shared helpers for the paper-reproduction benchmark binaries. Each binary
// regenerates one table or figure of the paper's evaluation section and
// prints it in a comparable layout.
#ifndef PQS_BENCH_BENCH_COMMON_H_
#define PQS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/obs/json.h"
#include "src/pqs/campaign.h"

namespace pqs {
namespace bench {

inline CampaignOptions DefaultCampaignOptions() {
  CampaignOptions options;
  options.seed = 20200604;  // OSDI'20 camera-ready vintage
  options.databases_per_bug = 400;
  options.queries_per_database = 30;
  options.reduce = true;
  return options;
}

inline void PrintHeader(const std::string& title) {
  printf("\n=== %s ===\n", title.c_str());
}

inline const char* DialectDisplayName(Dialect d) {
  switch (d) {
    case Dialect::kSqliteFlex:
      return "SQLite (minidb dialect)";
    case Dialect::kMysqlLike:
      return "MySQL (minidb dialect)";
    case Dialect::kPostgresStrict:
      return "PostgreSQL (minidb dialect)";
  }
  return "?";
}

// Single escaping rule for every artifact; see src/obs/json.h.
inline std::string JsonEscape(const std::string& s) {
  return obs::JsonEscape(s);
}

// Writes one machine-readable result artifact next to the stdout table.
// `filename` should follow the BENCH_<name>.json convention so the perf
// trajectory tooling picks it up; PQS_BENCH_JSON_DIR overrides the
// destination directory (default: current working directory).
inline void WriteBenchJson(const std::string& filename,
                           const std::string& body) {
  const char* dir = std::getenv("PQS_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/" + filename
                         : filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("[wrote %s]\n", path.c_str());
}

}  // namespace bench
}  // namespace pqs

#endif  // PQS_BENCH_BENCH_COMMON_H_
