// Shared helpers for the paper-reproduction benchmark binaries. Each binary
// regenerates one table or figure of the paper's evaluation section and
// prints it in a comparable layout.
#ifndef PQS_BENCH_BENCH_COMMON_H_
#define PQS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/pqs/campaign.h"

namespace pqs {
namespace bench {

inline CampaignOptions DefaultCampaignOptions() {
  CampaignOptions options;
  options.seed = 20200604;  // OSDI'20 camera-ready vintage
  options.databases_per_bug = 400;
  options.queries_per_database = 30;
  options.reduce = true;
  return options;
}

inline void PrintHeader(const std::string& title) {
  printf("\n=== %s ===\n", title.c_str());
}

inline const char* DialectDisplayName(Dialect d) {
  switch (d) {
    case Dialect::kSqliteFlex:
      return "SQLite (minidb dialect)";
    case Dialect::kMysqlLike:
      return "MySQL (minidb dialect)";
    case Dialect::kPostgresStrict:
      return "PostgreSQL (minidb dialect)";
  }
  return "?";
}

}  // namespace bench
}  // namespace pqs

#endif  // PQS_BENCH_BENCH_COMMON_H_
