// §3.4 throughput reproduction: "Typically, SQLancer generates 5,000 to
// 20,000 statements per second, depending on the DBMS under test."
//
// Measures end-to-end PQS statement throughput (generation + execution +
// oracle checking) per engine, including the real SQLite adapter, and
// sweeps the sharded runner's worker count (`--workers N`, default 4) over
// one fixed workload. The sweep prints aggregate tests/sec per worker
// count and writes BENCH_throughput.json for the perf trajectory. The
// merged report is seed-deterministic at every worker count, so the sweep
// also doubles as a quick sanity check that sharding changes nothing but
// the wall clock.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/recorder.h"
#include "src/minidb/database.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/pqs/runner.h"
#include "src/sqlite3db/sqlite_connection.h"

namespace pqs {

namespace {

struct SweepPoint {
  int workers = 1;
  double seconds = 0;
  double statements_per_second = 0;
  double tests_per_second = 0;  // oracle-checked queries ("tests")
  uint64_t statements = 0;
  uint64_t tests = 0;
  // Per-session wall-clock latency tail of the best rep (recorder.h).
  std::string latency_json;
  double p99_ms = 0;
};

SweepPoint MeasureWorkers(int workers) {
  RunnerOptions opts;
  opts.seed = 20200604;
  opts.databases = 192;
  opts.queries_per_database = 25;
  opts.workers = workers;
  bench::LatencyRecorder recorder;
  opts.session_latency_hook = [&recorder](int /*db_index*/, double seconds) {
    recorder.Record(seconds);
  };
  EngineFactory factory = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
  };

  SweepPoint point;
  point.workers = workers;
  point.seconds = 1e30;
  // Best of three repetitions: the workload is identical each time, so the
  // minimum is the least-noisy estimate of the achievable rate. The
  // latency percentiles are snapshotted from whichever rep wins, so the
  // tail numbers describe the same run as the headline rate.
  for (int rep = 0; rep < 3; ++rep) {
    recorder.Clear();
    PqsRunner runner(factory, opts);
    auto start = std::chrono::steady_clock::now();
    RunReport report = runner.Run();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (elapsed.count() < point.seconds) {
      point.seconds = elapsed.count();
      point.statements = report.stats.statements_executed;
      point.tests = report.stats.queries_checked;
      point.latency_json = recorder.JsonFields();
      point.p99_ms = recorder.Percentile(99) * 1e3;
    }
  }
  if (point.seconds > 0) {
    point.statements_per_second =
        static_cast<double>(point.statements) / point.seconds;
    point.tests_per_second = static_cast<double>(point.tests) / point.seconds;
  }
  return point;
}

// Zipf-skewed table-size workload: session bucket of rank k gets a
// database share proportional to 1/k, so the workload is dominated by
// small-table sessions with a heavy tail of large ones — the shape a
// long-running fuzzing campaign actually sees (most generated schemas are
// small; occasionally the generator rolls a large cross product). The
// tail buckets are what stress per-row costs; the recorder's percentiles
// make their latency visible next to the aggregate rate.
std::string MeasureZipfWorkload() {
  struct Bucket {
    int max_rows;
    int databases;  // 96 total, split by zipf(s=1) weights 1/k
    double seconds = 0;
    uint64_t statements = 0;
    // Per-bucket session latency: the aggregate tail is dominated by the
    // large-table buckets, and without the per-bucket split a regression
    // confined to one size class is invisible in the blended percentiles.
    bench::LatencyRecorder latency;
  };
  // Weights 1, 1/2, 1/3, 1/4 over 96 databases → 46, 23, 15, 12.
  Bucket buckets[] = {{4, 46}, {8, 23}, {16, 15}, {32, 12}};

  bench::LatencyRecorder recorder;
  EngineFactory factory = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
  };
  double total_seconds = 0;
  uint64_t total_statements = 0;
  for (Bucket& bucket : buckets) {
    RunnerOptions opts;
    opts.seed = 20200604 + static_cast<uint64_t>(bucket.max_rows);
    opts.databases = bucket.databases;
    opts.queries_per_database = 25;
    opts.gen.min_rows = bucket.max_rows / 2;
    opts.gen.max_rows = bucket.max_rows;
    opts.session_latency_hook = [&recorder, &bucket](int /*db*/,
                                                     double seconds) {
      recorder.Record(seconds);
      bucket.latency.Record(seconds);
    };
    PqsRunner runner(factory, opts);
    auto start = std::chrono::steady_clock::now();
    RunReport report = runner.Run();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    bucket.seconds = elapsed.count();
    bucket.statements = report.stats.statements_executed;
    total_seconds += bucket.seconds;
    total_statements += bucket.statements;
  }

  bench::PrintHeader("Zipf-skewed table sizes: session latency tail");
  printf("%10s %10s %10s %14s %10s %10s\n", "max_rows", "databases",
         "seconds", "stmts/sec", "p50(ms)", "p99(ms)");
  for (Bucket& bucket : buckets) {
    printf("%10d %10d %10.4f %14.0f %10.3f %10.3f\n", bucket.max_rows,
           bucket.databases, bucket.seconds,
           bucket.seconds > 0
               ? static_cast<double>(bucket.statements) / bucket.seconds
               : 0.0,
           bucket.latency.Percentile(50) * 1e3,
           bucket.latency.Percentile(99) * 1e3);
  }
  printf("  aggregate: %.4fs, %.0f stmts/sec; session latency %s\n",
         total_seconds,
         total_seconds > 0
             ? static_cast<double>(total_statements) / total_seconds
             : 0.0,
         recorder.JsonFields().c_str());

  std::string json = "  \"zipf_workload\": {\"buckets\": [\n";
  for (size_t i = 0; i < sizeof buckets / sizeof buckets[0]; ++i) {
    Bucket& bucket = buckets[i];
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "    {\"max_rows\": %d, \"databases\": %d, "
                  "\"seconds\": %.6f, \"statements_per_second\": %.1f, "
                  "\"session_latency\": {%s}}%s\n",
                  bucket.max_rows, bucket.databases, bucket.seconds,
                  bucket.seconds > 0
                      ? static_cast<double>(bucket.statements) / bucket.seconds
                      : 0.0,
                  bucket.latency.JsonFields().c_str(),
                  i + 1 < sizeof buckets / sizeof buckets[0] ? "," : "");
    json += buf;
  }
  json += "  ], \"session_latency\": {" + recorder.JsonFields() + "}},\n";
  return json;
}

// Rows-per-second axis: raw paged-scan throughput at table sizes far past
// generator scale (10^4 / 10^5 / 10^6 rows). The tables are built once per
// size through the normal INSERT path (which exercises page allocation and
// splits), then swept with a selective single-table WHERE so the number
// measures the scan→filter→project batch path over the buffer pool —
// pages faulting through the clock-eviction pool on every sweep, since
// 10^5+ rows never fit the default 32 frames. Per-sweep latency goes
// through the recorder so the large-table tail is visible, and the pool
// counters land in the JSON so eviction behavior is trackable over time.
std::string MeasureScanRows() {
  struct Point {
    int64_t rows;
    double build_seconds = 0;
    double scan_seconds = 0;
    int sweeps = 0;
    double rows_per_second = 0;
    std::string latency_json;
    minidb::BufferPool::Stats pool;
  };
  std::vector<Point> points;
  for (int64_t n : {10000LL, 100000LL, 1000000LL}) {
    Point point;
    point.rows = n;
    minidb::Database db(Dialect::kSqliteFlex);

    auto create = std::make_unique<CreateTableStmt>();
    create->table_name = "t0";
    ColumnDef a;
    a.name = "c0";
    a.declared_type = "INT";
    a.affinity = Affinity::kInteger;
    ColumnDef b = a;
    b.name = "c1";
    create->columns = {a, b};
    db.Execute(*create);

    auto build_start = std::chrono::steady_clock::now();
    constexpr int64_t kBatch = 1000;
    for (int64_t base = 0; base < n; base += kBatch) {
      InsertStmt insert;
      insert.table_name = "t0";
      insert.rows.reserve(kBatch);
      for (int64_t i = base; i < base + kBatch && i < n; ++i) {
        std::vector<ExprPtr> row;
        row.push_back(MakeIntLiteral(i));
        row.push_back(MakeIntLiteral((i * 7) % 97));
        insert.rows.push_back(std::move(row));
      }
      db.Execute(insert);
    }
    point.build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      build_start)
            .count();

    // ~5% selectivity keeps the measurement scan-dominated instead of
    // result-copy-dominated; 2M rows scanned per size point bounds the
    // bench's wall clock while giving the small sizes enough sweeps for
    // stable percentiles.
    SelectStmt query;
    query.from_tables = {"t0"};
    query.where = MakeBinary(BinaryOp::kLt, MakeColumnRef("t0", "c0"),
                             MakeIntLiteral(n / 20));
    point.sweeps = static_cast<int>(2000000 / n);
    if (point.sweeps < 2) point.sweeps = 2;
    bench::LatencyRecorder latency;
    auto scan_start = std::chrono::steady_clock::now();
    for (int s = 0; s < point.sweeps; ++s) {
      auto sweep_start = std::chrono::steady_clock::now();
      StatementResult result = db.Execute(query);
      latency.Record(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sweep_start)
                         .count());
      if (result.rows.size() != static_cast<size_t>(n / 20)) {
        printf("scan_rows: unexpected result size %zu at n=%lld\n",
               result.rows.size(), static_cast<long long>(n));
      }
    }
    point.scan_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      scan_start)
            .count();
    if (point.scan_seconds > 0) {
      point.rows_per_second =
          static_cast<double>(n) * point.sweeps / point.scan_seconds;
    }
    point.latency_json = latency.JsonFields();
    point.pool = db.buffer_pool().stats();
    points.push_back(std::move(point));
  }

  bench::PrintHeader("Paged scan throughput: rows/second by table size");
  printf("%10s %8s %10s %14s %12s %12s\n", "rows", "sweeps", "build(s)",
         "rows/sec", "pool hits", "evictions");
  for (const Point& p : points) {
    printf("%10lld %8d %10.3f %14.0f %12llu %12llu\n",
           static_cast<long long>(p.rows), p.sweeps, p.build_seconds,
           p.rows_per_second, static_cast<unsigned long long>(p.pool.hits),
           static_cast<unsigned long long>(p.pool.evictions));
  }

  std::string json = "  \"scan_rows_sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "    {\"rows\": %lld, \"sweeps\": %d, \"build_seconds\": %.6f, "
        "\"scan_seconds\": %.6f, \"rows_per_second\": %.1f, "
        "\"query_latency\": {%s}, "
        "\"pool\": {\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu, "
        "\"dirty_writebacks\": %llu}}%s\n",
        static_cast<long long>(p.rows), p.sweeps, p.build_seconds,
        p.scan_seconds, p.rows_per_second, p.latency_json.c_str(),
        static_cast<unsigned long long>(p.pool.hits),
        static_cast<unsigned long long>(p.pool.misses),
        static_cast<unsigned long long>(p.pool.evictions),
        static_cast<unsigned long long>(p.pool.dirty_writebacks),
        i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  return json;
}

// Satellite: measure the SqliteConnection prepared-statement cache on the
// repeated pivot-probe pattern (the runner re-issues `SELECT * FROM tN`
// before every generated query, and reduction-style replays repeat whole
// statement prefixes). Same seeded workload with the cache off vs on; the
// speedup and hit counts go into BENCH_throughput.json.
std::string MeasureSqliteStmtCache() {
  if (!SqliteConnection::Available()) {
    printf("\n(real sqlite3 unavailable; statement-cache bench skipped)\n");
    return "  \"sqlite_stmt_cache\": {\"available\": false},\n";
  }
  RunnerOptions opts;
  opts.seed = 20200604;
  opts.databases = 48;
  opts.queries_per_database = 25;

  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t meta_hits = 0;
  uint64_t meta_misses = 0;
  auto measure = [&](bool cache_on, OracleFamily family) {
    EngineFactory factory = [cache_on, &hits, &misses, &meta_hits,
                             &meta_misses]() -> ConnectionPtr {
      struct Tracked : SqliteConnection {
        explicit Tracked(bool on, uint64_t* h, uint64_t* m, uint64_t* mh,
                         uint64_t* mm)
            : hits(h), misses(m), mhits(mh), mmisses(mm) {
          set_statement_cache(on);
        }
        ~Tracked() override {
          *hits += statement_cache_hits();
          *misses += statement_cache_misses();
          *mhits += meta_statement_cache_hits();
          *mmisses += meta_statement_cache_misses();
        }
        uint64_t* hits;
        uint64_t* misses;
        uint64_t* mhits;
        uint64_t* mmisses;
      };
      return std::make_unique<Tracked>(cache_on, &hits, &misses, &meta_hits,
                                       &meta_misses);
    };
    double best = 1e30;
    RunnerOptions family_opts = opts;
    family_opts.family = family;
    for (int rep = 0; rep < 3; ++rep) {
      // Counts are identical every rep (seeded workload); resetting here
      // leaves one rep's tallies, matching the best-of-3 seconds' scope.
      hits = 0;
      misses = 0;
      meta_hits = 0;
      meta_misses = 0;
      PqsRunner runner(factory, family_opts);
      auto start = std::chrono::steady_clock::now();
      RunReport report = runner.Run();
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      (void)report;
      if (elapsed.count() < best) best = elapsed.count();
    }
    return best;
  };

  double uncached = measure(false, OracleFamily::kContainment);
  double cached = measure(true, OracleFamily::kContainment);
  double speedup = cached > 0 ? uncached / cached : 0.0;
  uint64_t pivot_hits = hits;
  uint64_t pivot_misses = misses;

  // Metamorphic rewrite reuse: the same workload TLP-driven. The rewritten
  // partition texts vary per check (fresh predicates), but the cache must
  // keep absorbing the repeated probe SELECTs around them; the meta subset
  // counters show how much of the rewrite stream itself revisits.
  double meta_seconds = measure(true, OracleFamily::kTlp);

  bench::PrintHeader("SqliteConnection statement cache (pivot-probe reuse)");
  printf("  uncached: %.4fs   cached: %.4fs   speedup: %.2fx   "
         "(%llu hits / %llu misses)\n",
         uncached, cached, speedup,
         static_cast<unsigned long long>(pivot_hits),
         static_cast<unsigned long long>(pivot_misses));
  printf("  tlp workload: %.4fs   meta rewrites: %llu hits / %llu misses   "
         "(totals: %llu / %llu)\n",
         meta_seconds, static_cast<unsigned long long>(meta_hits),
         static_cast<unsigned long long>(meta_misses),
         static_cast<unsigned long long>(hits),
         static_cast<unsigned long long>(misses));

  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"sqlite_stmt_cache\": {\"available\": true, "
                "\"seconds_uncached\": %.6f, \"seconds_cached\": %.6f, "
                "\"speedup\": %.3f, \"hits\": %llu, \"misses\": %llu, "
                "\"tlp_seconds\": %.6f, \"tlp_hits\": %llu, "
                "\"tlp_misses\": %llu, \"tlp_meta_hits\": %llu, "
                "\"tlp_meta_misses\": %llu},\n",
                uncached, cached, speedup,
                static_cast<unsigned long long>(pivot_hits),
                static_cast<unsigned long long>(pivot_misses), meta_seconds,
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(meta_hits),
                static_cast<unsigned long long>(meta_misses));
  return buf;
}

// One telemetry-instrumented run of the sweep workload with wall-clock
// spans enabled, exported as the "telemetry" section. The logical-clock
// histograms ("phase_profile") are deterministic — byte-identical across
// worker counts and machines — while the wall-clock histograms
// ("phase_wall_micros") are the bench-only opt-in that ties Algorithm-1
// stages to real time. check_perf_smoke.py gates on the profile's pipeline
// stages being populated.
std::string MeasurePhaseProfile() {
  RunnerOptions opts;
  opts.seed = 20200604;
  opts.databases = 192;
  opts.queries_per_database = 25;
  EngineFactory factory = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
  };
  obs::SetPhaseWallClock(true);
  PqsRunner runner(factory, opts);
  RunReport report = runner.Run();
  obs::SetPhaseWallClock(false);

  bench::PrintHeader("Phase profile: Algorithm-1 pipeline stages");
  printf("%20s %10s %12s %10s %14s\n", "phase", "spans", "ticks/span",
         "max_ticks", "wall(us)/span");
  for (int p = 0; p < static_cast<int>(obs::Phase::kCount_); ++p) {
    obs::Phase phase = static_cast<obs::Phase>(p);
    const obs::Histogram& ticks = report.metrics.phase_ticks(phase);
    const obs::Histogram& wall = report.metrics.phase_wall_micros(phase);
    printf("%20s %10llu %12.2f %10llu %14.2f\n", obs::PhaseName(phase),
           static_cast<unsigned long long>(ticks.count()),
           ticks.count() > 0
               ? static_cast<double>(ticks.sum()) / ticks.count()
               : 0.0,
           static_cast<unsigned long long>(ticks.max()),
           wall.count() > 0 ? static_cast<double>(wall.sum()) / wall.count()
                            : 0.0);
  }
  return "  \"telemetry\": " + report.metrics.ToJson(true) + ",\n";
}

// Kill-switch cost: the 1-worker workload with telemetry enabled vs
// disabled (disabled leaves the session TLS slot null, so every emit is a
// null-branch). check_perf_smoke.py fails the run if the enabled rate
// drops more than 5% below the disabled one.
std::string MeasureTelemetryOverhead() {
  SweepPoint on = MeasureWorkers(1);
  obs::SetTelemetryEnabled(false);
  SweepPoint off = MeasureWorkers(1);
  obs::SetTelemetryEnabled(true);
  double ratio = off.statements_per_second > 0
                     ? on.statements_per_second / off.statements_per_second
                     : 0.0;
  bench::PrintHeader("Telemetry overhead: enabled vs kill-switched");
  printf("  enabled: %.4fs (%.0f stmts/sec)   disabled: %.4fs "
         "(%.0f stmts/sec)   ratio: %.4f\n",
         on.seconds, on.statements_per_second, off.seconds,
         off.statements_per_second, ratio);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"telemetry_overhead\": {\"seconds_on\": %.6f, "
                "\"seconds_off\": %.6f, \"stmts_per_second_on\": %.1f, "
                "\"stmts_per_second_off\": %.1f, "
                "\"throughput_ratio_on_vs_off\": %.4f},\n",
                on.seconds, off.seconds, on.statements_per_second,
                off.statements_per_second, ratio);
  return buf;
}

// Transaction-mix sweep (DESIGN §14): the interleaved K-session MVCC
// branch on a clean engine, K ∈ {2, 3, 4}. Every statement here pays for
// version-chain bookkeeping, the mirror replay, and the serial-replay
// oracle, so this rate tracks the transaction branch's end-to-end cost the
// way the worker sweep tracks the autocommit loop's. The commit/conflict
// tallies land in the JSON so check_perf_smoke.py can assert the workload
// actually transacted.
std::string MeasureTxnWorkload() {
  struct TxnPoint {
    int sessions = 0;
    double seconds = 0;
    uint64_t statements = 0;
    RunStats stats;
  };
  std::vector<TxnPoint> points;
  for (int sessions : {2, 3, 4}) {
    RunnerOptions opts;
    opts.seed = 20200604 + static_cast<uint64_t>(sessions);
    opts.databases = 96;
    opts.queries_per_database = 10;
    opts.gen.txn_sessions = sessions;
    EngineFactory factory = []() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
    };
    TxnPoint point;
    point.sessions = sessions;
    point.seconds = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      PqsRunner runner(factory, opts);
      auto start = std::chrono::steady_clock::now();
      RunReport report = runner.Run();
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() < point.seconds) {
        point.seconds = elapsed.count();
        point.statements = report.stats.statements_executed;
        point.stats = report.stats;
      }
    }
    points.push_back(point);
  }

  bench::PrintHeader("Transaction mix: K interleaved MVCC sessions");
  printf("%10s %10s %14s %10s %10s %10s %10s\n", "sessions", "seconds",
         "stmts/sec", "begins", "commits", "rollbacks", "conflicts");
  for (const TxnPoint& p : points) {
    printf("%10d %10.4f %14.0f %10llu %10llu %10llu %10llu\n", p.sessions,
           p.seconds,
           p.seconds > 0 ? static_cast<double>(p.statements) / p.seconds
                         : 0.0,
           static_cast<unsigned long long>(p.stats.txn_begins),
           static_cast<unsigned long long>(p.stats.txn_commits),
           static_cast<unsigned long long>(p.stats.txn_rollbacks),
           static_cast<unsigned long long>(p.stats.txn_conflicts));
  }

  std::string json = "  \"txn_workload\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const TxnPoint& p = points[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"sessions\": %d, \"seconds\": %.6f, "
        "\"statements_per_second\": %.1f, \"begins\": %llu, "
        "\"commits\": %llu, \"rollbacks\": %llu, \"conflicts\": %llu, "
        "\"snapshot_checks\": %llu, \"serial_replays\": %llu}%s\n",
        p.sessions, p.seconds,
        p.seconds > 0 ? static_cast<double>(p.statements) / p.seconds : 0.0,
        static_cast<unsigned long long>(p.stats.txn_begins),
        static_cast<unsigned long long>(p.stats.txn_commits),
        static_cast<unsigned long long>(p.stats.txn_rollbacks),
        static_cast<unsigned long long>(p.stats.txn_conflicts),
        static_cast<unsigned long long>(p.stats.txn_snapshot_checks),
        static_cast<unsigned long long>(p.stats.txn_serial_replays),
        i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  return json;
}

void RunWorkerSweep(int max_workers, const std::string& extra_json) {
  std::vector<int> counts;
  for (int w = 1; w < max_workers; w *= 2) counts.push_back(w);
  counts.push_back(max_workers);

  unsigned cores = std::thread::hardware_concurrency();
  bench::PrintHeader("Worker sweep: aggregate PQS throughput");
  printf("(minidb sqlite dialect, fixed seed; %u hardware thread(s) —\n"
         " speedup saturates at the core count)\n", cores);
  printf("%8s %10s %16s %12s %8s %10s\n", "workers", "seconds", "stmts/sec",
         "tests/sec", "speedup", "p99(ms)");

  std::vector<SweepPoint> sweep;
  for (int w : counts) sweep.push_back(MeasureWorkers(w));
  double base = sweep.front().tests_per_second;
  for (const SweepPoint& p : sweep) {
    printf("%8d %10.4f %16.0f %12.0f %7.2fx %10.3f\n", p.workers, p.seconds,
           p.statements_per_second, p.tests_per_second,
           base > 0 ? p.tests_per_second / base : 0.0, p.p99_ms);
  }

  std::string json = "{\n  \"bench\": \"throughput\",\n";
  json += "  \"engine\": \"minidb-sqlite\",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(cores) + ",\n";
  json += "  \"databases\": 192,\n  \"queries_per_database\": 25,\n";
  json += extra_json;
  json += "  \"worker_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"workers\": %d, \"seconds\": %.6f, "
                  "\"statements_per_second\": %.1f, "
                  "\"tests_per_second\": %.1f, \"speedup_vs_1\": %.3f, "
                  "\"session_latency\": {%s}}%s\n",
                  p.workers, p.seconds, p.statements_per_second,
                  p.tests_per_second,
                  base > 0 ? p.tests_per_second / base : 0.0,
                  p.latency_json.c_str(), i + 1 < sweep.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}";
  bench::WriteBenchJson("BENCH_throughput.json", json);
}

void RunThroughput(benchmark::State& state, EngineFactory factory,
                   int workers = 1, int databases = 2) {
  uint64_t statements = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    RunnerOptions opts;
    opts.seed = seed++;
    opts.databases = databases;
    opts.queries_per_database = 20;
    opts.workers = workers;
    PqsRunner runner(factory, opts);
    RunReport report = runner.Run();
    statements += report.stats.statements_executed;
  }
  state.counters["statements_per_second"] = benchmark::Counter(
      static_cast<double>(statements), benchmark::Counter::kIsRate);
}

void BM_PqsThroughputMinidb(benchmark::State& state) {
  Dialect d = static_cast<Dialect>(state.range(0));
  RunThroughput(state, [d]() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(d);
  });
}
BENCHMARK(BM_PqsThroughputMinidb)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_PqsThroughputMinidbSharded(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  // 8 databases per run so every swept worker count (the runner clamps
  // workers to the database count) actually runs that many workers.
  RunThroughput(
      state,
      []() -> ConnectionPtr {
        return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
      },
      workers, /*databases=*/8);
}
// Real time, not main-thread CPU time: the workers burn their CPU off the
// timed thread, so CPU-relative rates would be wildly inflated.
BENCHMARK(BM_PqsThroughputMinidbSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_PqsThroughputRealSqlite(benchmark::State& state) {
  RunThroughput(state, []() -> ConnectionPtr {
    return std::make_unique<SqliteConnection>();
  });
}
BENCHMARK(BM_PqsThroughputRealSqlite)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) {
  // Strip our own --workers flag before google-benchmark sees the args.
  int max_workers = 4;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      max_workers = std::atoi(argv[i + 1]);
      ++i;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (max_workers < 1) max_workers = 1;

  pqs::RunWorkerSweep(max_workers, pqs::MeasureScanRows() +
                                       pqs::MeasureSqliteStmtCache() +
                                       pqs::MeasureZipfWorkload() +
                                       pqs::MeasureTxnWorkload() +
                                       pqs::MeasurePhaseProfile() +
                                       pqs::MeasureTelemetryOverhead());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
