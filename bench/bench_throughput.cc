// §3.4 throughput reproduction: "Typically, SQLancer generates 5,000 to
// 20,000 statements per second, depending on the DBMS under test."
//
// Measures end-to-end PQS statement throughput (generation + execution +
// oracle checking) per engine, including the real SQLite adapter.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/minidb/database.h"
#include "src/pqs/runner.h"
#include "src/sqlite3db/sqlite_connection.h"

namespace pqs {

namespace {

void RunThroughput(benchmark::State& state, EngineFactory factory) {
  uint64_t statements = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    RunnerOptions opts;
    opts.seed = seed++;
    opts.databases = 2;
    opts.queries_per_database = 20;
    PqsRunner runner(factory, opts);
    RunReport report = runner.Run();
    statements += report.stats.statements_executed;
  }
  state.counters["statements_per_second"] = benchmark::Counter(
      static_cast<double>(statements), benchmark::Counter::kIsRate);
}

void BM_PqsThroughputMinidb(benchmark::State& state) {
  Dialect d = static_cast<Dialect>(state.range(0));
  RunThroughput(state, [d]() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(d);
  });
}
BENCHMARK(BM_PqsThroughputMinidb)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_PqsThroughputRealSqlite(benchmark::State& state) {
  RunThroughput(state, []() -> ConnectionPtr {
    return std::make_unique<SqliteConnection>();
  });
}
BENCHMARK(BM_PqsThroughputRealSqlite)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pqs

BENCHMARK_MAIN();
