// Figure 2 reproduction: cumulative distribution of the number of SQL
// statements (LOC) in reduced bug test cases.
//
// Paper: average 3.71 LOC, 13 one-line cases, maximum 8. We reduce every
// detected injected bug's statement log with delta debugging and print the
// CDF over the reduced lengths.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/minidb/database.h"
#include "src/pqs/reducer.h"

namespace pqs {

void PrintFigure2() {
  bench::PrintHeader(
      "Figure 2: CDF of reduced test-case LOC (all dialects pooled)");
  AggregateStats agg;
  CampaignOptions options = bench::DefaultCampaignOptions();
  for (Dialect d : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                    Dialect::kPostgresStrict}) {
    // Pool the dialects by value-merging each campaign's aggregate.
    CampaignReport report = RunCampaign(d, options);
    agg.Merge(report.Aggregate());
  }
  printf("reduced test cases: %zu\n", agg.total_cases);
  printf("average LOC: %.2f   (paper: 3.71)\n", agg.AverageLoc());
  printf("maximum LOC: %zu      (paper: 8)\n", agg.MaxLoc());
  printf("\n%-6s %-22s %s\n", "LOC", "cumulative fraction", "");
  for (size_t loc = 1; loc <= agg.MaxLoc(); ++loc) {
    double cdf = agg.CdfAt(loc);
    std::string bar(static_cast<size_t>(cdf * 40), '#');
    printf("%-6zu %-22.3f %s\n", loc, cdf, bar.c_str());
  }
}

// Reduction cost for a representative finding.
void BM_ReduceFinding(benchmark::State& state) {
  CampaignOptions options = bench::DefaultCampaignOptions();
  options.reduce = false;
  BugHuntResult hunt = HuntBug(BugId::kPartialIndexIsNotInference, options);
  if (!hunt.detected) {
    state.SkipWithError("bug not detected under bench budget");
    return;
  }
  EngineFactory buggy = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(
        Dialect::kSqliteFlex,
        BugConfig::Single(BugId::kPartialIndexIsNotInference));
  };
  EngineFactory reference = []() -> ConnectionPtr {
    return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
  };
  for (auto _ : state) {
    Finding reduced = ReduceFinding(buggy, hunt.reduced, &reference);
    benchmark::DoNotOptimize(reduced.statements.size());
  }
}
BENCHMARK(BM_ReduceFinding)->Unit(benchmark::kMillisecond);

}  // namespace pqs

int main(int argc, char** argv) {
  pqs::PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
