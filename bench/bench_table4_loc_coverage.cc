// Table 4 reproduction: size of the PQS components and coverage of the
// tested engine.
//
// Paper: SQLancer per-DBMS components (6.5k / 4.0k / 5.0k LOC) vs DBMS size,
// plus line/branch coverage of each DBMS after a 24h run. We print the
// per-module LOC of this repository (counted at build time from the source
// tree) and MiniDB feature coverage after a fixed PQS session (gcov of a
// third-party binary is unavailable offline; see DESIGN.md §2).
#include <benchmark/benchmark.h>

#include <dirent.h>

#include <fstream>

#include "bench/bench_common.h"
#include "src/minidb/database.h"
#include "src/pqs/runner.h"

namespace pqs {

namespace {

size_t CountFileLines(const std::string& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  return lines;
}

// Resolved at build time so the binary works from any CWD (satellite fix:
// previously this assumed the process ran from the repository root).
#ifndef PQS_SOURCE_DIR
#define PQS_SOURCE_DIR "."
#endif

size_t CountDirLoc(const std::string& dir) {
  size_t total = 0;
  std::string resolved = std::string(PQS_SOURCE_DIR) + "/" + dir;
  DIR* d = opendir(resolved.c_str());
  if (d == nullptr) {
    return 0;
  }
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() > 3 && (name.substr(name.size() - 3) == ".cc" ||
                            name.substr(name.size() - 2) == ".h")) {
      total += CountFileLines(resolved + "/" + name);
    }
  }
  closedir(d);
  return total;
}

}  // namespace

void PrintTable4() {
  bench::PrintHeader("Table 4a: component sizes (LOC of this repository)");
  const char* modules[] = {"common",    "sqlvalue",  "sqlast",
                           "sqlstmt",   "sqlexpr",   "sqlmeta",
                           "interp",    "minidb",    "engine",
                           "obs",       "sqlparser", "sqlite3db",
                           "pqs"};
  size_t total = 0;
  for (const char* m : modules) {
    size_t loc = CountDirLoc(std::string("src/") + m);
    total += loc;
    printf("  src/%-12s %6zu LOC\n", m, loc);
  }
  printf("  %-16s %6zu LOC\n", "total", total);
  printf("(paper: SQLite component 6,501 / MySQL 3,995 / PostgreSQL 4,981, "
         "918 shared)\n");

  bench::PrintHeader(
      "Table 4b: MiniDB feature coverage after a PQS session");
  std::string json = "{\n  \"bench\": \"table4_coverage\",\n";
  json += "  \"total_features\": " + std::to_string(minidb::kNumFeatures) +
          ",\n  \"dialects\": [\n";
  bool first_dialect = true;
  for (Dialect d : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                    Dialect::kPostgresStrict}) {
    // Drive one sharded session. Each worker marks coverage into its own
    // map (the sink must not be shared across threads) and the per-worker
    // maps value-merge into the session totals at the end.
    RunnerOptions opts;
    opts.seed = 77;
    opts.databases = 25;
    opts.queries_per_database = 30;
    opts.workers = 4;
    std::vector<minidb::CoverageMap> per_worker(opts.workers);
    WorkerEngineFactory factory = [d, &per_worker](int worker)
        -> ConnectionPtr {
      auto db = std::make_unique<minidb::Database>(d);
      db->set_coverage_sink(&per_worker[worker]);
      return db;
    };
    PqsRunner runner(std::move(factory), opts);
    RunReport report = runner.Run();
    minidb::CoverageMap merged;
    for (const minidb::CoverageMap& m : per_worker) merged.Merge(m);
    printf("  %-28s features covered: %3zu / %zu  (%.1f%%)   [%llu stmts]\n",
           bench::DialectDisplayName(d), merged.CoveredFeatures(),
           minidb::kNumFeatures, 100.0 * merged.CoverageRatio(),
           static_cast<unsigned long long>(report.stats.statements_executed));
    // The widened-grammar buckets, enumerated explicitly so a session that
    // stopped reaching them is visible here rather than silently folded
    // into the covered-count.
    printf("  %-28s join inner/left/cross: %llu/%llu/%llu  distinct: %llu  "
           "order-by: %llu  limit: %llu\n", "",
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kJoinInner)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kJoinLeft)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kJoinCross)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kSelectDistinct)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kSelectOrderBy)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kSelectLimit)));
    printf("  %-28s function: %llu (variadic: %llu)  cast: %llu  case: %llu "
           "(else: %llu)  collate: %llu  like-escape: %llu  in-null: %llu\n",
           "",
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kExprFunction)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kExprFunctionVariadic)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kExprCast)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kExprCase)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kExprCaseElse)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kExprCollate)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kExprLikeEscape)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kExprInListNull)));
    printf("  %-28s update: %llu (all-rows: %llu)  delete: %llu  "
           "drop-index: %llu  maintenance: %llu  index-scan: %llu "
           "(partial: %llu)\n", "",
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kUpdate)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kUpdateAllRows)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kDelete)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kDropIndex)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kMaintenance)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kIndexScan)),
           static_cast<unsigned long long>(
               merged.Hits(minidb::Feature::kPartialIndexScan)));

    if (!first_dialect) json += ",\n";
    first_dialect = false;
    json += std::string("    {\"dialect\": \"") + DialectName(d) + "\",\n";
    json += "     \"covered\": " + std::to_string(merged.CoveredFeatures()) +
            ",\n     \"hits\": {";
    for (size_t i = 0; i < minidb::kNumFeatures; ++i) {
      auto f = static_cast<minidb::Feature>(i);
      if (i > 0) json += ", ";
      json += std::string("\"") + minidb::FeatureName(f) +
              "\": " + std::to_string(merged.Hits(f));
    }
    json += "}}";
  }
  json += "\n  ]\n}";
  bench::WriteBenchJson("BENCH_table4_coverage.json", json);
  printf("(paper line coverage: SQLite 43.0%% / MySQL 24.4%% / PostgreSQL "
         "23.7%% — partial coverage is expected and matches)\n");
}

void BM_CoverageSession(benchmark::State& state) {
  for (auto _ : state) {
    minidb::Database db(Dialect::kSqliteFlex);
    RunnerOptions opts;
    opts.seed = 3;
    opts.databases = 2;
    opts.queries_per_database = 10;
    EngineFactory factory = []() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
    };
    PqsRunner runner(factory, opts);
    benchmark::DoNotOptimize(runner.Run().stats.statements_executed);
  }
}
BENCHMARK(BM_CoverageSession)->Unit(benchmark::kMillisecond);

}  // namespace pqs

int main(int argc, char** argv) {
  pqs::PrintTable4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
