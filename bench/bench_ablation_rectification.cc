// Ablation: what happens without expression rectification (Algorithm 3)?
//
// PQS's oracle rests on rectifying random predicates to TRUE on the pivot
// row. With rectification disabled, the raw predicate evaluates TRUE on the
// pivot only ~1/3 of the time, so "pivot missing from result" stops being a
// bug signal at all. This bench quantifies that: with rectification on, a
// clean engine produces zero containment violations; with it off, the naive
// check would flag a large fraction of perfectly correct queries.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/minidb/database.h"
#include "src/pqs/oracles.h"
#include "src/pqs/runner.h"

namespace pqs {

void PrintAblation() {
  bench::PrintHeader("Ablation: rectification on vs off (clean engine)");
  for (bool rectify : {true, false}) {
    RunnerOptions opts;
    opts.seed = 99;
    opts.databases = 15;
    opts.queries_per_database = 20;
    opts.gen.rectify = rectify;
    EngineFactory factory = []() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
    };
    PqsRunner runner(factory, opts);
    RunReport report = runner.Run();
    uint64_t t = report.stats.rectified_true;
    uint64_t f = report.stats.rectified_false;
    uint64_t n = report.stats.rectified_null;
    printf("  rectify=%-5s queries=%llu  findings=%zu  raw predicate "
           "outcomes T/F/N = %llu/%llu/%llu\n",
           rectify ? "on" : "off",
           static_cast<unsigned long long>(report.stats.queries_checked),
           report.findings.size(), static_cast<unsigned long long>(t),
           static_cast<unsigned long long>(f),
           static_cast<unsigned long long>(n));
  }
  printf("(with rectification on, T/F/N tallies show Algorithm 3's three\n"
         " branches all firing; findings must be 0 on the clean engine.\n"
         " With it off, the containment oracle is undefined — the runner\n"
         " skips the check, which is the point: no oracle without step 4)\n");
}

void BM_RectificationOverhead(benchmark::State& state) {
  bool rectify = state.range(0) != 0;
  uint64_t seed = 5;
  for (auto _ : state) {
    RunnerOptions opts;
    opts.seed = seed++;
    opts.databases = 2;
    opts.queries_per_database = 15;
    opts.gen.rectify = rectify;
    EngineFactory factory = []() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(Dialect::kSqliteFlex);
    };
    PqsRunner runner(factory, opts);
    benchmark::DoNotOptimize(runner.Run().stats.queries_checked);
  }
}
BENCHMARK(BM_RectificationOverhead)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);

}  // namespace pqs

int main(int argc, char** argv) {
  pqs::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
