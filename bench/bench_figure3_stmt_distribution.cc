// Figure 3 reproduction: per-DBMS distribution of SQL statement categories
// in reduced bug test cases, with the triggering statement attributed to
// the oracle that fired. Also prints the §4.3 column-constraint frequencies
// (UNIQUE 22.2%, PRIMARY KEY 17.2%, CREATE INDEX 28.3%, 90% single-table).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace pqs {

void PrintFigure3() {
  CampaignOptions options = bench::DefaultCampaignOptions();
  size_t pooled_unique = 0;
  size_t pooled_pk = 0;
  size_t pooled_index = 0;
  size_t pooled_single_table = 0;
  size_t pooled_total = 0;
  for (Dialect d : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                    Dialect::kPostgresStrict}) {
    CampaignReport report = RunCampaign(d, options);
    AggregateStats agg = report.Aggregate();
    bench::PrintHeader(std::string("Figure 3 — ") +
                       bench::DialectDisplayName(d));
    printf("%-22s %-12s %s\n", "statement category", "in % cases",
           "triggering oracle tallies");
    for (const auto& [category, stat] : agg.per_category) {
      double pct = agg.total_cases == 0
                       ? 0
                       : 100.0 * static_cast<double>(
                                     stat.test_cases_containing) /
                             static_cast<double>(agg.total_cases);
      std::string triggers;
      for (const auto& [oracle, count] : stat.trigger_by_oracle) {
        triggers += oracle + ":" + std::to_string(count) + " ";
      }
      printf("%-22s %10.1f%% %s\n", category.c_str(), pct, triggers.c_str());
    }
    pooled_unique += agg.with_unique;
    pooled_pk += agg.with_primary_key;
    pooled_index += agg.with_create_index;
    pooled_single_table += agg.single_table;
    pooled_total += agg.total_cases;
  }
  bench::PrintHeader("§4.3 column constraints in reduced test cases");
  auto pct = [&](size_t n) {
    return pooled_total == 0 ? 0.0
                             : 100.0 * static_cast<double>(n) /
                                   static_cast<double>(pooled_total);
  };
  printf("UNIQUE constraint:   %5.1f%%   (paper: 22.2%%)\n",
         pct(pooled_unique));
  printf("PRIMARY KEY:         %5.1f%%   (paper: 17.2%%)\n", pct(pooled_pk));
  printf("CREATE INDEX:        %5.1f%%   (paper: 28.3%%)\n",
         pct(pooled_index));
  printf("single-table cases:  %5.1f%%   (paper: 90.0%%)\n",
         pct(pooled_single_table));
}

void BM_AnalyzeTestCase(benchmark::State& state) {
  Finding f;
  f.oracle = OracleKind::kContainment;
  auto ct = std::make_unique<CreateTableStmt>();
  ct->table_name = "t0";
  ColumnDef col;
  col.name = "c0";
  col.unique = true;
  ct->columns.push_back(col);
  f.statements.push_back(std::move(ct));
  auto select = std::make_unique<SelectStmt>();
  select->from_tables = {"t0"};
  f.statements.push_back(std::move(select));
  for (auto _ : state) {
    TestCaseStats stats = AnalyzeTestCase(f);
    benchmark::DoNotOptimize(stats.statement_count);
  }
}
BENCHMARK(BM_AnalyzeTestCase);

}  // namespace pqs

int main(int argc, char** argv) {
  pqs::PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
