// Figure 3 reproduction: per-DBMS distribution of SQL statement categories
// in reduced bug test cases, with the triggering statement attributed to
// the oracle that fired. Also prints the §4.3 column-constraint frequencies
// (UNIQUE 22.2%, PRIMARY KEY 17.2%, CREATE INDEX 28.3%, 90% single-table).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "src/minidb/database.h"
#include "src/pqs/runner.h"

namespace pqs {

void PrintFigure3() {
  CampaignOptions options = bench::DefaultCampaignOptions();
  AggregateStats pooled;  // all dialects, for the §4.3 frequencies
  std::string json = "{\n  \"bench\": \"figure3\",\n  \"dialects\": [\n";
  bool first_dialect = true;
  for (Dialect d : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                    Dialect::kPostgresStrict}) {
    CampaignReport report = RunCampaign(d, options);
    AggregateStats agg = report.Aggregate();
    bench::PrintHeader(std::string("Figure 3 — ") +
                       bench::DialectDisplayName(d));
    printf("%-22s %-12s %s\n", "statement category", "in % cases",
           "triggering oracle tallies");
    for (const auto& [category, stat] : agg.per_category) {
      double pct = agg.total_cases == 0
                       ? 0
                       : 100.0 * static_cast<double>(
                                     stat.test_cases_containing) /
                             static_cast<double>(agg.total_cases);
      std::string triggers;
      for (const auto& [oracle, count] : stat.trigger_by_oracle) {
        triggers += oracle + ":" + std::to_string(count) + " ";
      }
      printf("%-22s %10.1f%% %s\n", category.c_str(), pct, triggers.c_str());
    }
    // Widened-grammar buckets of this dialect's reduced test cases. These
    // are enumerated explicitly — a reduced join/DISTINCT/ORDER/LIMIT case
    // must show up here, never fold silently into plain SELECT counts.
    printf("%-22s joins:%zu (left:%zu) distinct:%zu order-by:%zu "
           "limit:%zu of %zu cases\n",
           "feature buckets", agg.with_explicit_join, agg.with_left_join,
           agg.with_distinct, agg.with_order_by, agg.with_limit,
           agg.total_cases);
    printf("%-22s function:%zu cast:%zu case:%zu collate:%zu of %zu cases "
           "(max expr depth %d)\n",
           "expression buckets", agg.with_function_call, agg.with_cast,
           agg.with_case, agg.with_collate, agg.total_cases,
           agg.max_expr_depth);
    printf("%-22s update:%zu delete:%zu drop-index:%zu maintenance:%zu "
           "of %zu cases\n",
           "mutation buckets", agg.with_update, agg.with_delete,
           agg.with_drop_index, agg.with_maintenance, agg.total_cases);

    if (!first_dialect) json += ",\n";
    first_dialect = false;
    json += std::string("    {\"dialect\": \"") + DialectName(d) + "\",\n";
    json += "     \"total_cases\": " + std::to_string(agg.total_cases) +
            ",\n     \"categories\": {";
    bool first_cat = true;
    for (const auto& [category, stat] : agg.per_category) {
      if (!first_cat) json += ", ";
      first_cat = false;
      json += "\"" + bench::JsonEscape(category) +
              "\": " + std::to_string(stat.test_cases_containing);
    }
    json += "},\n     \"feature_buckets\": {";
    json += "\"explicit_join\": " + std::to_string(agg.with_explicit_join);
    json += ", \"left_join\": " + std::to_string(agg.with_left_join);
    json += ", \"distinct\": " + std::to_string(agg.with_distinct);
    json += ", \"order_by\": " + std::to_string(agg.with_order_by);
    json += ", \"limit\": " + std::to_string(agg.with_limit);
    json += "},\n     \"expression_buckets\": {";
    json += "\"function\": " + std::to_string(agg.with_function_call);
    json += ", \"cast\": " + std::to_string(agg.with_cast);
    json += ", \"case\": " + std::to_string(agg.with_case);
    json += ", \"collate\": " + std::to_string(agg.with_collate);
    json += ", \"max_expr_depth\": " + std::to_string(agg.max_expr_depth);
    json += "},\n     \"mutation_buckets\": {";
    json += "\"update\": " + std::to_string(agg.with_update);
    json += ", \"delete\": " + std::to_string(agg.with_delete);
    json += ", \"drop_index\": " + std::to_string(agg.with_drop_index);
    json += ", \"maintenance\": " + std::to_string(agg.with_maintenance);
    json += "}}";

    pooled.Merge(agg);
  }
  json += "\n  ],\n";

  // Depth-bucketed stats of the *generated* predicate stream (not just
  // reduced cases) plus the real statement-stream distribution of the
  // action scheduler: one clean seeded session per dialect, tallied by the
  // runner into RunStats (buckets are Expr depths 1-2 / 3-4 / 5-6 / 7-8 /
  // ≥9).
  bench::PrintHeader(
      "Generated-predicate depth histogram + statement stream "
      "(clean session)");
  static const char* kBucketLabels[RunStats::kDepthBuckets] = {
      "1-2", "3-4", "5-6", "7-8", ">=9"};
  json += "  \"predicate_depth_buckets\": [\n";
  std::string stream_json = "  \"statement_stream\": [\n";
  bool first_depth_dialect = true;
  for (Dialect d : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                    Dialect::kPostgresStrict}) {
    RunnerOptions opts;
    opts.seed = 20200604;
    opts.databases = 60;
    opts.queries_per_database = 25;
    EngineFactory factory = [d]() -> ConnectionPtr {
      return std::make_unique<minidb::Database>(d);
    };
    PqsRunner runner(factory, opts);
    RunReport report = runner.Run();
    printf("  %-28s", bench::DialectDisplayName(d));
    for (int b = 0; b < RunStats::kDepthBuckets; ++b) {
      printf("  depth %s: %llu", kBucketLabels[b],
             static_cast<unsigned long long>(
                 report.stats.predicate_depth_buckets[b]));
    }
    printf("\n  %-28s predicates with function call: %llu (%llu calls in "
           "%llu predicates)\n", "",
           static_cast<unsigned long long>(
               report.stats.predicates_with_function),
           static_cast<unsigned long long>(
               report.stats.function_calls_generated),
           static_cast<unsigned long long>(report.stats.queries_checked));
    const RunStats& s = report.stats;
    printf("  %-28s stream: insert:%llu update:%llu delete:%llu "
           "create-index:%llu drop-index:%llu maintenance:%llu "
           "(pivot checks: %llu, state compares: %llu)\n", "",
           static_cast<unsigned long long>(s.actions_insert),
           static_cast<unsigned long long>(s.actions_update),
           static_cast<unsigned long long>(s.actions_delete),
           static_cast<unsigned long long>(s.actions_create_index),
           static_cast<unsigned long long>(s.actions_drop_index),
           static_cast<unsigned long long>(s.actions_maintenance),
           static_cast<unsigned long long>(s.queries_checked),
           static_cast<unsigned long long>(s.state_compares));
    if (!first_depth_dialect) {
      json += ",\n";
      stream_json += ",\n";
    }
    first_depth_dialect = false;
    json += std::string("    {\"dialect\": \"") + DialectName(d) +
            "\", \"buckets\": [";
    for (int b = 0; b < RunStats::kDepthBuckets; ++b) {
      if (b > 0) json += ", ";
      json += std::to_string(report.stats.predicate_depth_buckets[b]);
    }
    json += "], \"predicates_with_function\": " +
            std::to_string(report.stats.predicates_with_function);
    json += ", \"function_calls\": " +
            std::to_string(report.stats.function_calls_generated) + "}";
    stream_json += std::string("    {\"dialect\": \"") + DialectName(d) +
                   "\"";
    stream_json += ", \"insert\": " + std::to_string(s.actions_insert);
    stream_json += ", \"update\": " + std::to_string(s.actions_update);
    stream_json += ", \"delete\": " + std::to_string(s.actions_delete);
    stream_json +=
        ", \"create_index\": " + std::to_string(s.actions_create_index);
    stream_json +=
        ", \"drop_index\": " + std::to_string(s.actions_drop_index);
    stream_json +=
        ", \"maintenance\": " + std::to_string(s.actions_maintenance);
    stream_json +=
        ", \"pivot_checks\": " + std::to_string(s.queries_checked);
    stream_json +=
        ", \"state_compares\": " + std::to_string(s.state_compares) + "}";
  }
  json += "\n  ],\n";
  json += stream_json + "\n  ]\n}";
  bench::WriteBenchJson("BENCH_figure3_features.json", json);

  bench::PrintHeader("§4.3 column constraints in reduced test cases");
  auto pct = [&](size_t n) {
    return pooled.total_cases == 0
               ? 0.0
               : 100.0 * static_cast<double>(n) /
                     static_cast<double>(pooled.total_cases);
  };
  printf("UNIQUE constraint:   %5.1f%%   (paper: 22.2%%)\n",
         pct(pooled.with_unique));
  printf("PRIMARY KEY:         %5.1f%%   (paper: 17.2%%)\n",
         pct(pooled.with_primary_key));
  printf("CREATE INDEX:        %5.1f%%   (paper: 28.3%%)\n",
         pct(pooled.with_create_index));
  printf("single-table cases:  %5.1f%%   (paper: 90.0%%)\n",
         pct(pooled.single_table));
  printf("explicit-join cases: %5.1f%%   (query-space widening, PR 3)\n",
         pct(pooled.with_explicit_join));
}

void BM_AnalyzeTestCase(benchmark::State& state) {
  Finding f;
  f.oracle = OracleKind::kContainment;
  auto ct = std::make_unique<CreateTableStmt>();
  ct->table_name = "t0";
  ColumnDef col;
  col.name = "c0";
  col.unique = true;
  ct->columns.push_back(col);
  f.statements.push_back(std::move(ct));
  auto select = std::make_unique<SelectStmt>();
  select->from_tables = {"t0"};
  f.statements.push_back(std::move(select));
  for (auto _ : state) {
    TestCaseStats stats = AnalyzeTestCase(f);
    benchmark::DoNotOptimize(stats.statement_count);
  }
}
BENCHMARK(BM_AnalyzeTestCase);

}  // namespace pqs

int main(int argc, char** argv) {
  pqs::PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
