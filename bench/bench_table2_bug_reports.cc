// Table 2 reproduction: reported bugs and their status per DBMS.
//
// Paper:            Fixed  Verified  Intended  Duplicate
//   SQLite            65       0         4         2
//   MySQL             15      10         1         4
//   PostgreSQL         5       4         7         6
//
// Our campaign enables each registered injected bug in turn, runs PQS until
// detection, and tabulates detected bugs by the report-outcome metadata the
// registry models from the paper. Absolute counts are smaller (we inject 24
// bug classes, not 123 reports); the *shape* — SQLite ≫ MySQL > PostgreSQL,
// fixed dominating — is the reproduction target.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace pqs {

void PrintTable2() {
  bench::PrintHeader(
      "Table 2: detected injected bugs by modeled report outcome");
  printf("%-28s %7s %9s %9s %10s %8s\n", "DBMS", "Fixed", "Verified",
         "Intended", "Duplicate", "Missed");
  CampaignOptions options = bench::DefaultCampaignOptions();
  for (Dialect d : {Dialect::kSqliteFlex, Dialect::kMysqlLike,
                    Dialect::kPostgresStrict}) {
    CampaignReport report = RunCampaign(d, options);
    size_t missed = report.results.size() - report.DetectedCount();
    printf("%-28s %7zu %9zu %9zu %10zu %8zu\n", bench::DialectDisplayName(d),
           report.CountByOutcome(ReportOutcome::kFixed),
           report.CountByOutcome(ReportOutcome::kVerified),
           report.CountByOutcome(ReportOutcome::kIntended),
           report.CountByOutcome(ReportOutcome::kDuplicate), missed);
  }
  printf("(paper: SQLite 65/0/4/2, MySQL 15/10/1/4, PostgreSQL 5/4/7/6 — \n"
         " expect the same ordering: SQLite most, PostgreSQL fewest)\n");
}

// Cost of one full single-bug hunt (detection + reduction).
void BM_HuntSingleBug(benchmark::State& state) {
  CampaignOptions options = bench::DefaultCampaignOptions();
  for (auto _ : state) {
    BugHuntResult r = HuntBug(BugId::kPartialIndexIsNotInference, options);
    benchmark::DoNotOptimize(r.detected);
  }
}
BENCHMARK(BM_HuntSingleBug)->Unit(benchmark::kMillisecond);

}  // namespace pqs

int main(int argc, char** argv) {
  pqs::PrintTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
